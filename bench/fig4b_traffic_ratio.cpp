// Regenerates Fig. 4(b): the ratio of wearable-device traffic to an owner's
// total traffic (~3 orders of magnitude; 10% of users above 3%).
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace wearscope;
  return bench::run_custom_main(
      argc, argv, "fig4b: wearable share of owner traffic (paper Fig. 4b)",
      [](const bench::BenchOptions& opts) {
        const bench::PipelineRun run = bench::run_pipeline(opts);
        const core::FigureData& fig = run.report.figure("fig4b");
        std::fputs(fig.to_text().c_str(), stdout);
        if (!opts.quiet) {
          const core::ComparisonResult& r = run.report.comparison;
          std::printf("-- wearable/total ratio quantiles --\n");
          for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
            std::printf("   p%-4.0f %.6f\n", q * 100,
                        r.wearable_share.quantile(q));
          }
          std::printf("   transacting owners sampled: %zu\n",
                      r.wearable_share.size());
        }
        if (!opts.csv_dir.empty()) fig.write_csv(opts.csv_dir);
        std::printf("[result] fig4b: %s\n",
                    fig.all_pass() ? "ALL CHECKS PASS" : "CHECK FAILURES");
        return 0;
      });
}
