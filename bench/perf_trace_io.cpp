// Google-benchmark performance suite for trace serialization: binary and
// CSV encode/decode throughput on realistic proxy-log records.
#include <benchmark/benchmark.h>

#include <sstream>

#include "simnet/simulator.h"
#include "trace/binary_io.h"
#include "trace/csv_io.h"

namespace {

using namespace wearscope;

const std::vector<trace::ProxyRecord>& sample_records() {
  static const std::vector<trace::ProxyRecord> records = [] {
    simnet::SimConfig cfg;
    cfg.seed = 3;
    cfg.wearable_users = 100;
    cfg.control_users = 200;
    cfg.through_device_users = 20;
    cfg.detailed_days = 7;
    cfg.cities = 4;
    cfg.sectors_per_city = 8;
    cfg.long_tail_apps = 30;
    simnet::SimResult sim = simnet::Simulator(cfg).run();
    sim.store.proxy.resize(std::min<std::size_t>(sim.store.proxy.size(),
                                                 20000));
    return std::move(sim.store.proxy);
  }();
  return records;
}

void BM_BinaryEncode(benchmark::State& state) {
  const auto& records = sample_records();
  for (auto _ : state) {
    std::ostringstream out;
    trace::BinaryLogWriter<trace::ProxyRecord> writer(out);
    for (const trace::ProxyRecord& r : records) writer.write(r);
    benchmark::DoNotOptimize(out.str().size());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(records.size()) * state.iterations());
}
BENCHMARK(BM_BinaryEncode)->Unit(benchmark::kMillisecond);

void BM_BinaryDecode(benchmark::State& state) {
  const auto& records = sample_records();
  std::ostringstream out;
  {
    trace::BinaryLogWriter<trace::ProxyRecord> writer(out);
    for (const trace::ProxyRecord& r : records) writer.write(r);
  }
  const std::string blob = out.str();
  for (auto _ : state) {
    std::istringstream in(blob);
    trace::BinaryLogReader<trace::ProxyRecord> reader(in);
    trace::ProxyRecord r;
    std::size_t n = 0;
    while (reader.next(r)) ++n;
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(records.size()) * state.iterations());
  state.SetBytesProcessed(
      static_cast<std::int64_t>(blob.size()) * state.iterations());
}
BENCHMARK(BM_BinaryDecode)->Unit(benchmark::kMillisecond);

void BM_CsvEncode(benchmark::State& state) {
  const auto& records = sample_records();
  for (auto _ : state) {
    std::ostringstream out;
    trace::CsvLogWriter<trace::ProxyRecord> writer(out);
    for (const trace::ProxyRecord& r : records) writer.write(r);
    benchmark::DoNotOptimize(out.str().size());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(records.size()) * state.iterations());
}
BENCHMARK(BM_CsvEncode)->Unit(benchmark::kMillisecond);

void BM_CsvDecode(benchmark::State& state) {
  const auto& records = sample_records();
  std::ostringstream out;
  {
    trace::CsvLogWriter<trace::ProxyRecord> writer(out);
    for (const trace::ProxyRecord& r : records) writer.write(r);
  }
  const std::string blob = out.str();
  for (auto _ : state) {
    std::istringstream in(blob);
    trace::CsvLogReader<trace::ProxyRecord> reader(in);
    trace::ProxyRecord r;
    std::size_t n = 0;
    while (reader.next(r)) ++n;
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(records.size()) * state.iterations());
}
BENCHMARK(BM_CsvDecode)->Unit(benchmark::kMillisecond);

void BM_StoreSort(benchmark::State& state) {
  const auto& records = sample_records();
  for (auto _ : state) {
    state.PauseTiming();
    trace::TraceStore store;
    store.proxy = records;
    // Shuffle deterministically so sort has work to do.
    util::Pcg32 rng(4);
    rng.shuffle(store.proxy);
    state.ResumeTiming();
    store.sort_by_time();
    benchmark::DoNotOptimize(store.proxy.size());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(records.size()) * state.iterations());
}
BENCHMARK(BM_StoreSort)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
