// Google-benchmark performance suite for trace serialization: binary v1,
// blocked v2 and CSV encode/decode throughput on realistic proxy-log
// records.  The v2 decode is swept across TaskPool sizes over an mmap'ed
// file — the exact production path of load_bundle.
//
// `--emit-json[=PATH]` skips google-benchmark and writes a v1-vs-v2
// encode/decode summary plus the decoder thread sweep to
// BENCH_trace_io.json, mirroring perf_analysis's emit mode.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "par/task_pool.h"
#include "simnet/simulator.h"
#include "trace/binary_io.h"
#include "trace/block_io.h"
#include "trace/csv_io.h"
#include "util/mapped_file.h"

namespace {

using namespace wearscope;

const std::vector<trace::ProxyRecord>& sample_records() {
  static const std::vector<trace::ProxyRecord> records = [] {
    simnet::SimConfig cfg;
    cfg.seed = 3;
    cfg.wearable_users = 100;
    cfg.control_users = 200;
    cfg.through_device_users = 20;
    cfg.detailed_days = 7;
    cfg.cities = 4;
    cfg.sectors_per_city = 8;
    cfg.long_tail_apps = 30;
    simnet::SimResult sim = simnet::Simulator(cfg).run();
    sim.store.proxy.resize(std::min<std::size_t>(sim.store.proxy.size(),
                                                 20000));
    return std::move(sim.store.proxy);
  }();
  return records;
}

/// Block size small enough that an 8-thread sweep has work on every
/// thread even for this 20k-record sample (~20 blocks).
trace::BlockWriterOptions bench_block_options() {
  trace::BlockWriterOptions options;
  options.max_block_records = 1024;
  return options;
}

const std::string& v1_blob() {
  static const std::string blob = [] {
    std::ostringstream out;
    trace::BinaryLogWriter<trace::ProxyRecord> writer(out);
    for (const trace::ProxyRecord& r : sample_records()) writer.write(r);
    return out.str();
  }();
  return blob;
}

const std::string& v2_blob() {
  static const std::string blob = [] {
    std::ostringstream out;
    trace::BlockLogWriter<trace::ProxyRecord> writer(out,
                                                     bench_block_options());
    for (const trace::ProxyRecord& r : sample_records()) writer.write(r);
    writer.finish();
    return out.str();
  }();
  return blob;
}

/// Writes `blob` next to the other bench inputs and returns its path.
std::filesystem::path bench_file(const char* name, const std::string& blob) {
  const std::filesystem::path p = std::filesystem::temp_directory_path() / name;
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out << blob;
  return p;
}

/// The blobs on disk: decode benchmarks measure the full file-to-records
/// production paths, not in-memory parsing.
const std::filesystem::path& v1_file() {
  static const std::filesystem::path path =
      bench_file("wearscope_perf_trace_io_v1.bin", v1_blob());
  return path;
}

const std::filesystem::path& v2_file() {
  static const std::filesystem::path path =
      bench_file("wearscope_perf_trace_io_v2.bin", v2_blob());
  return path;
}

/// The pre-v2 production load path, verbatim: buffered ifstream into the
/// v1 stream reader, records copied into a growing vector.
std::size_t drain_v1_file() {
  std::ifstream in(v1_file(), std::ios::binary);
  trace::BinaryLogReader<trace::ProxyRecord> reader(in);
  std::vector<trace::ProxyRecord> records;
  trace::ProxyRecord r;
  while (reader.next(r)) records.push_back(r);
  return records.size();
}

/// The v2 production load path: mmap + frame scan + (parallel) block
/// decode into a pre-sized vector.
std::size_t drain_v2_mmap(par::TaskPool* pool) {
  const util::MappedFile file(v2_file(), util::MapMode::kAuto);
  return trace::read_binary_log<trace::ProxyRecord>(file.bytes(), pool).size();
}

void BM_BinaryEncode(benchmark::State& state) {
  const auto& records = sample_records();
  for (auto _ : state) {
    std::ostringstream out;
    trace::BinaryLogWriter<trace::ProxyRecord> writer(out);
    for (const trace::ProxyRecord& r : records) writer.write(r);
    benchmark::DoNotOptimize(out.str().size());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(records.size()) * state.iterations());
}
BENCHMARK(BM_BinaryEncode)->Unit(benchmark::kMillisecond);

void BM_V2Encode(benchmark::State& state) {
  const auto& records = sample_records();
  for (auto _ : state) {
    std::ostringstream out;
    trace::BlockLogWriter<trace::ProxyRecord> writer(out,
                                                     bench_block_options());
    for (const trace::ProxyRecord& r : records) writer.write(r);
    writer.finish();
    benchmark::DoNotOptimize(out.str().size());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(records.size()) * state.iterations());
}
BENCHMARK(BM_V2Encode)->Unit(benchmark::kMillisecond);

void BM_BinaryDecode(benchmark::State& state) {
  const auto& records = sample_records();
  for (auto _ : state) {
    benchmark::DoNotOptimize(drain_v1_file());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(records.size()) * state.iterations());
  state.SetBytesProcessed(
      static_cast<std::int64_t>(v1_blob().size()) * state.iterations());
}
BENCHMARK(BM_BinaryDecode)->Unit(benchmark::kMillisecond);

void BM_V2DecodeMmap(benchmark::State& state) {
  const auto& records = sample_records();
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  // The pool persists across iterations (its workers park between runs);
  // mapping the file stays inside the timed region, as in load_bundle.
  par::TaskPool pool(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(drain_v2_mmap(threads > 1 ? &pool : nullptr));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(records.size()) * state.iterations());
  state.SetBytesProcessed(
      static_cast<std::int64_t>(v2_blob().size()) * state.iterations());
}
BENCHMARK(BM_V2DecodeMmap)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_CsvEncode(benchmark::State& state) {
  const auto& records = sample_records();
  for (auto _ : state) {
    std::ostringstream out;
    trace::CsvLogWriter<trace::ProxyRecord> writer(out);
    for (const trace::ProxyRecord& r : records) writer.write(r);
    benchmark::DoNotOptimize(out.str().size());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(records.size()) * state.iterations());
}
BENCHMARK(BM_CsvEncode)->Unit(benchmark::kMillisecond);

void BM_CsvDecode(benchmark::State& state) {
  const auto& records = sample_records();
  std::ostringstream out;
  {
    trace::CsvLogWriter<trace::ProxyRecord> writer(out);
    for (const trace::ProxyRecord& r : records) writer.write(r);
  }
  const std::string blob = out.str();
  for (auto _ : state) {
    std::istringstream in(blob);
    trace::CsvLogReader<trace::ProxyRecord> reader(in);
    trace::ProxyRecord r;
    std::size_t n = 0;
    while (reader.next(r)) ++n;
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(records.size()) * state.iterations());
}
BENCHMARK(BM_CsvDecode)->Unit(benchmark::kMillisecond);

void BM_StoreSort(benchmark::State& state) {
  const auto& records = sample_records();
  for (auto _ : state) {
    state.PauseTiming();
    trace::TraceStore store;
    store.proxy = records;
    // Shuffle deterministically so sort has work to do.
    util::Pcg32 rng(4);
    rng.shuffle(store.proxy);
    state.ResumeTiming();
    store.sort_by_time();
    benchmark::DoNotOptimize(store.proxy.size());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(records.size()) * state.iterations());
}
BENCHMARK(BM_StoreSort)->Unit(benchmark::kMillisecond);

/// --emit-json mode: v1-vs-v2 encode/decode wall clock plus the v2 mmap
/// decoder thread sweep, best of `kReps` runs per point.  Decode speedups
/// are relative to the v1 istream reader — the path v2 replaces.
int emit_json(const std::string& path) {
  using Clock = std::chrono::steady_clock;
  constexpr int kReps = 3;
  const std::vector<std::size_t> thread_counts = {1, 2, 4, 8};

  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 1;
  }
  const auto& records = sample_records();
  const std::string& v1 = v1_blob();
  const std::string& v2 = v2_blob();
  (void)v1_file();  // materialize the on-disk copies (and warm the page
  (void)v2_file();  // cache) before timing

  const auto best_of = [&](const auto& fn) {
    double best_ms = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      const Clock::time_point t0 = Clock::now();
      fn();
      const double ms =
          std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
      if (rep == 0 || ms < best_ms) best_ms = ms;
    }
    return best_ms;
  };

  const double v1_encode_ms = best_of([&] {
    std::ostringstream enc;
    trace::BinaryLogWriter<trace::ProxyRecord> writer(enc);
    for (const trace::ProxyRecord& r : records) writer.write(r);
    benchmark::DoNotOptimize(enc.str().size());
  });
  const double v2_encode_ms = best_of([&] {
    std::ostringstream enc;
    trace::BlockLogWriter<trace::ProxyRecord> writer(enc,
                                                     bench_block_options());
    for (const trace::ProxyRecord& r : records) writer.write(r);
    writer.finish();
    benchmark::DoNotOptimize(enc.str().size());
  });
  const double v1_decode_ms =
      best_of([&] { benchmark::DoNotOptimize(drain_v1_file()); });

  std::fprintf(out, "{\n  \"bench\": \"perf_trace_io\",\n");
  bench::emit_hardware_concurrency(out);
  std::fprintf(out, "  \"records\": %llu,\n",
               static_cast<unsigned long long>(records.size()));
  std::fprintf(out, "  \"v1_bytes\": %llu,\n",
               static_cast<unsigned long long>(v1.size()));
  std::fprintf(out, "  \"v2_bytes\": %llu,\n",
               static_cast<unsigned long long>(v2.size()));
  std::fprintf(out, "  \"encode\": {\"v1_ms\": %.2f, \"v2_ms\": %.2f},\n",
               v1_encode_ms, v2_encode_ms);
  std::fprintf(out, "  \"v1_decode_ms\": %.2f,\n", v1_decode_ms);
  std::fprintf(out, "  \"v2_decode\": [\n");
  std::printf("encode: v1 %.2f ms, v2 %.2f ms; v1 istream decode %.2f ms\n",
              v1_encode_ms, v2_encode_ms, v1_decode_ms);
  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    const std::size_t threads = thread_counts[i];
    par::TaskPool pool(threads);
    const double ms = best_of([&] {
      benchmark::DoNotOptimize(drain_v2_mmap(threads > 1 ? &pool : nullptr));
    });
    const double speedup = ms > 0.0 ? v1_decode_ms / ms : 0.0;
    std::fprintf(out,
                 "    {\"threads\": %zu, \"mmap_ms\": %.2f, "
                 "\"speedup_vs_v1\": %.2f}%s\n",
                 threads, ms, speedup,
                 i + 1 < thread_counts.size() ? "," : "");
    std::printf("v2 mmap decode, %zu thread(s): %.2f ms (%.2fx vs v1)\n",
                threads, ms, speedup);
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--emit-json", 11) == 0) {
      const char* eq = std::strchr(argv[i], '=');
      return emit_json(eq != nullptr ? eq + 1 : "BENCH_trace_io.json");
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
