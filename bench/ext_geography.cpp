// Extension: spatial adoption map — wearable users per coverage area,
// urban vs rural adoption rates (home = max-dwell sector from the MME).
#include <cstdio>

#include "bench_common.h"
#include "util/ascii_chart.h"

int main(int argc, char** argv) {
  using namespace wearscope;
  return bench::run_custom_main(
      argc, argv, "ext: spatial adoption map (MME home anchoring)",
      [](const bench::BenchOptions& opts) {
        const bench::PipelineRun run = bench::run_pipeline(opts);
        const core::FigureData& fig = run.report.figure("geography");
        std::fputs(fig.to_text().c_str(), stdout);
        if (!opts.quiet) {
          const core::GeographyResult& r = run.report.geography;
          std::printf("-- coverage areas (by resident users) --\n");
          std::vector<std::vector<std::string>> rows;
          for (const core::AreaStats& a : r.areas) {
            rows.push_back(
                {std::to_string(a.area_id), std::to_string(a.sectors),
                 std::to_string(a.users), std::to_string(a.wearable_users),
                 util::format_num(100.0 * a.adoption_rate(), 1) + "%"});
          }
          std::fputs(util::table({"area", "sectors", "users", "wearables",
                                  "adoption"},
                                 rows)
                         .c_str(),
                     stdout);
          std::printf("urban adoption %.1f%% vs rural %.1f%%\n",
                      100.0 * r.urban_adoption, 100.0 * r.rural_adoption);
        }
        if (!opts.csv_dir.empty()) fig.write_csv(opts.csv_dir);
        std::printf("[result] ext_geography: %s\n",
                    fig.all_pass() ? "ALL CHECKS PASS" : "CHECK FAILURES");
        return 0;
      });
}
