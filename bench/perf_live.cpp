// Google-benchmark performance suite for the live-ingest engine: ring
// throughput and end-to-end replay records/sec as a function of shard
// count.
//
// Two modes:
//   perf_live                      # normal google-benchmark run
//   perf_live --emit-json[=PATH]   # shard sweep -> BENCH_live.json
//
// The JSON mode measures records/sec at shards ∈ {1, 2, 4, 8} over a fixed
// synthetic capture and writes a machine-readable trajectory point so
// later PRs have a number to beat.  hardware_concurrency is recorded
// because shard scaling is meaningless without it (a 1-core container
// cannot show a speedup no matter how good the engine is).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "live/engine.h"
#include "live/replayer.h"
#include "live/ring_buffer.h"
#include "simnet/simulator.h"
#include "util/sched_hook.h"

namespace {

using namespace wearscope;

const simnet::SimResult& shared_capture() {
  static const simnet::SimResult sim = [] {
    simnet::SimConfig cfg;
    cfg.seed = 7;
    cfg.wearable_users = 400;
    cfg.control_users = 800;
    cfg.through_device_users = 100;
    cfg.detailed_days = 14;
    cfg.cities = 6;
    cfg.sectors_per_city = 12;
    cfg.long_tail_apps = 60;
    return simnet::Simulator(cfg).run();
  }();
  return sim;
}

live::LiveOptions engine_options(std::size_t shards) {
  const simnet::SimResult& sim = shared_capture();
  live::LiveOptions opt;
  opt.shards = shards;
  opt.observation_days = sim.observation_days;
  opt.detailed_start_day = sim.detailed_start_day;
  opt.long_tail_apps = sim.config.long_tail_apps;
  return opt;
}

/// One full replay at maximum speed; returns records ingested.
std::uint64_t replay_once(std::size_t shards) {
  const simnet::SimResult& sim = shared_capture();
  live::LiveEngine engine(sim.store.devices, engine_options(shards));
  const live::FeedReplayer replayer(sim.store, live::ReplayOptions{});
  const live::ReplayReport report = replayer.replay(engine);
  const live::LiveSnapshot snap = engine.stop();
  benchmark::DoNotOptimize(snap.adoption.ever_registered);
  return report.records_pushed;
}

void BM_RingPushPop(benchmark::State& state) {
  // Uncontended single-thread alternation: the pure fast-path cost.
  live::RingBuffer<std::uint64_t> ring(
      static_cast<std::size_t>(state.range(0)));
  std::uint64_t v = 0;
  for (auto _ : state) {
    ring.push(v);
    ring.pop(v);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RingPushPop)->Arg(1)->Arg(1024);

void BM_SchedHookPassthrough(benchmark::State& state) {
  // The entire production cost of the deterministic-scheduler hook layer
  // (util/sched_hook.h) is one atomic null load per choice point; this
  // guards the "zero cost when no scheduler is attached" claim.  Compare
  // against BM_RingPushPop, whose loop crosses several such points.
  int probe = 0;
  for (auto _ : state) {
    util::sched::point(util::sched::Op::kUserPoint, &probe);
    benchmark::DoNotOptimize(probe);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchedHookPassthrough);

void BM_RingSpscStream(benchmark::State& state) {
  // Real producer/consumer pair streaming a fixed batch per iteration.
  constexpr std::uint64_t kBatch = 100'000;
  for (auto _ : state) {
    live::RingBuffer<std::uint64_t> ring(
        static_cast<std::size_t>(state.range(0)));
    std::thread consumer([&] {
      std::uint64_t v;
      while (ring.pop(v)) benchmark::DoNotOptimize(v);
    });
    for (std::uint64_t i = 0; i < kBatch; ++i) ring.push(i);
    ring.close();
    consumer.join();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(kBatch) *
                          state.iterations());
}
BENCHMARK(BM_RingSpscStream)->Arg(64)->Arg(4096)->Unit(benchmark::kMillisecond);

void BM_LiveIngest(benchmark::State& state) {
  std::uint64_t records = 0;
  for (auto _ : state) {
    records = replay_once(static_cast<std::size_t>(state.range(0)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records) *
                          state.iterations());
}
BENCHMARK(BM_LiveIngest)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

/// --emit-json mode: timed shard sweep, best of `kReps` runs per point.
int emit_json(const std::string& path) {
  using Clock = std::chrono::steady_clock;
  constexpr int kReps = 3;
  const std::vector<std::size_t> shard_counts = {1, 2, 4, 8};

  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 1;
  }
  const std::uint64_t records = shared_capture().store.proxy.size() +
                                shared_capture().store.mme.size();
  std::fprintf(out, "{\n  \"bench\": \"perf_live\",\n");
  bench::emit_hardware_concurrency(out);
  std::fprintf(out, "  \"records\": %llu,\n",
               static_cast<unsigned long long>(records));
  std::fprintf(out, "  \"shards\": [\n");
  for (std::size_t i = 0; i < shard_counts.size(); ++i) {
    const std::size_t shards = shard_counts[i];
    double best_rate = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      const Clock::time_point t0 = Clock::now();
      const std::uint64_t pushed = replay_once(shards);
      const double secs =
          std::chrono::duration<double>(Clock::now() - t0).count();
      if (secs > 0.0) {
        best_rate = std::max(best_rate,
                             static_cast<double>(pushed) / secs);
      }
    }
    std::fprintf(out,
                 "    {\"shards\": %zu, \"records_per_sec\": %.0f}%s\n",
                 shards, best_rate,
                 i + 1 < shard_counts.size() ? "," : "");
    std::printf("shards=%zu: %.0f records/s\n", shards, best_rate);
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--emit-json", 11) == 0) {
      const char* eq = std::strchr(argv[i], '=');
      return emit_json(eq != nullptr ? eq + 1 : "BENCH_live.json");
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
