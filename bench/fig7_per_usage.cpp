// Regenerates Fig. 7: transactions and data during a single app usage
// (60-second-gap sessionization; media apps lead, payments trail).
#include <cstdio>

#include "bench_common.h"
#include "util/ascii_chart.h"

int main(int argc, char** argv) {
  using namespace wearscope;
  return bench::run_custom_main(
      argc, argv, "fig7: per-usage transactions and data (paper Fig. 7)",
      [](const bench::BenchOptions& opts) {
        const bench::PipelineRun run = bench::run_pipeline(opts);
        const core::FigureData& fig = run.report.figure("fig7");
        std::fputs(fig.to_text().c_str(), stdout);
        if (!opts.quiet) {
          const core::UsageResult& r = run.report.usage;
          std::printf("-- per-usage stats (named apps, by data/usage) --\n");
          std::vector<std::vector<std::string>> rows;
          std::size_t shown = 0;
          for (const core::PerUsageStats& s : r.apps) {
            if (s.name.starts_with("LongTail-")) continue;
            rows.push_back({s.name, util::format_num(s.mean_txns_per_usage, 1),
                            util::format_num(s.mean_kb_per_usage, 1),
                            std::to_string(s.usages)});
            if (++shown >= 20) break;
          }
          std::fputs(util::table({"app", "txns/usage", "KB/usage", "usages"},
                                 rows)
                         .c_str(),
                     stdout);
        }
        if (!opts.csv_dir.empty()) fig.write_csv(opts.csv_dir);
        std::printf("[result] fig7: %s\n",
                    fig.all_pass() ? "ALL CHECKS PASS" : "CHECK FAILURES");
        return 0;
      });
}
