// Regenerates Fig. 4(c): max-displacement CDFs of wearable users vs all
// customers, location entropy, and the single-location statistic.
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace wearscope;
  return bench::run_custom_main(
      argc, argv, "fig4c: user mobility comparison (paper Fig. 4c)",
      [](const bench::BenchOptions& opts) {
        const bench::PipelineRun run = bench::run_pipeline(opts);
        const core::FigureData& fig = run.report.figure("fig4c");
        std::fputs(fig.to_text().c_str(), stdout);
        if (!opts.quiet) {
          const core::MobilityResult& r = run.report.mobility;
          std::printf("-- max displacement quantiles (km) --\n");
          for (const double q : {0.25, 0.5, 0.75, 0.9, 0.99}) {
            std::printf("   p%-4.0f wearable=%.1f all=%.1f\n", q * 100,
                        r.wearable_displacement_km.quantile(q),
                        r.all_displacement_km.quantile(q));
          }
          std::printf("   mean: wearable=%.1f km, all=%.1f km (ratio %.2f)\n",
                      r.wearable_mean_km, r.all_mean_km, r.displacement_ratio);
          std::printf(
              "   entropy: wearable=%.2f bits, all=%.2f bits (+%.0f%%)\n",
              r.wearable_entropy_bits, r.all_entropy_bits,
              100.0 * (r.entropy_ratio - 1.0));
          std::printf("   single-location transacting users: %.1f%%\n",
                      100.0 * r.single_location_fraction);
        }
        if (!opts.csv_dir.empty()) fig.write_csv(opts.csv_dir);
        std::printf("[result] fig4c: %s\n",
                    fig.all_pass() ? "ALL CHECKS PASS" : "CHECK FAILURES");
        return 0;
      });
}
