// Google-benchmark performance suite for the analysis pipeline: context
// indexing (device classification + app attribution + sessionization) and
// each per-figure analysis over a fixed synthetic capture.
//
// `--emit-json[=PATH]` skips google-benchmark and writes a thread-sweep
// summary (context build + analysis wall clock at 1/2/4/8 threads) to
// BENCH_analysis.json — the batch-path twin of perf_live's shard sweep.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "bench_common.h"
#include "core/pipeline.h"
#include "core/streaming.h"
#include "simnet/simulator.h"

namespace {

using namespace wearscope;

const simnet::SimResult& shared_capture() {
  static const simnet::SimResult sim = [] {
    simnet::SimConfig cfg;
    cfg.seed = 2;
    cfg.wearable_users = 400;
    cfg.control_users = 800;
    cfg.through_device_users = 100;
    cfg.detailed_days = 14;
    cfg.cities = 6;
    cfg.sectors_per_city = 12;
    cfg.long_tail_apps = 60;
    return simnet::Simulator(cfg).run();
  }();
  return sim;
}

core::AnalysisOptions shared_options(int threads = 1) {
  const simnet::SimResult& sim = shared_capture();
  core::AnalysisOptions opt;
  opt.observation_days = sim.observation_days;
  opt.detailed_start_day = sim.detailed_start_day;
  opt.long_tail_apps = sim.config.long_tail_apps;
  opt.threads = threads;
  return opt;
}

const core::AnalysisContext& shared_context() {
  static const core::AnalysisContext ctx(shared_capture().store,
                                         shared_options());
  return ctx;
}

void BM_ContextBuild(benchmark::State& state) {
  const simnet::SimResult& sim = shared_capture();
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const core::AnalysisContext ctx(sim.store, shared_options(threads));
    benchmark::DoNotOptimize(ctx.users().size());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(sim.store.proxy.size()) * state.iterations());
}
BENCHMARK(BM_ContextBuild)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_HostClassification(benchmark::State& state) {
  const core::AnalysisContext& ctx = shared_context();
  const simnet::SimResult& sim = shared_capture();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& host = sim.store.proxy[i % sim.store.proxy.size()].host;
    benchmark::DoNotOptimize(ctx.signatures().classify_host(host));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HostClassification);

void BM_HostClassificationCached(benchmark::State& state) {
  const core::AnalysisContext& ctx = shared_context();
  const simnet::SimResult& sim = shared_capture();
  core::HostClassCache cache(ctx.signatures());
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& host = sim.store.proxy[i % sim.store.proxy.size()].host;
    benchmark::DoNotOptimize(cache.classify(host));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HostClassificationCached);

template <typename Fn>
void run_analysis_bench(benchmark::State& state, Fn&& fn) {
  const core::AnalysisContext& ctx = shared_context();
  for (auto _ : state) {
    auto result = fn(ctx);
    benchmark::DoNotOptimize(&result);
  }
}

void BM_AnalyzeAdoption(benchmark::State& state) {
  run_analysis_bench(state, core::analyze_adoption);
}
BENCHMARK(BM_AnalyzeAdoption)->Unit(benchmark::kMillisecond);

void BM_AnalyzeDiurnal(benchmark::State& state) {
  run_analysis_bench(state, core::analyze_diurnal);
}
BENCHMARK(BM_AnalyzeDiurnal)->Unit(benchmark::kMillisecond);

void BM_AnalyzeActivity(benchmark::State& state) {
  run_analysis_bench(state, core::analyze_activity);
}
BENCHMARK(BM_AnalyzeActivity)->Unit(benchmark::kMillisecond);

void BM_AnalyzeComparison(benchmark::State& state) {
  run_analysis_bench(state, core::analyze_comparison);
}
BENCHMARK(BM_AnalyzeComparison)->Unit(benchmark::kMillisecond);

void BM_AnalyzeMobility(benchmark::State& state) {
  run_analysis_bench(state, core::analyze_mobility);
}
BENCHMARK(BM_AnalyzeMobility)->Unit(benchmark::kMillisecond);

void BM_AnalyzeApps(benchmark::State& state) {
  run_analysis_bench(state, core::analyze_apps);
}
BENCHMARK(BM_AnalyzeApps)->Unit(benchmark::kMillisecond);

void BM_AnalyzeThirdparty(benchmark::State& state) {
  run_analysis_bench(state, core::analyze_thirdparty);
}
BENCHMARK(BM_AnalyzeThirdparty)->Unit(benchmark::kMillisecond);

void BM_StreamingAdoption(benchmark::State& state) {
  const simnet::SimResult& sim = shared_capture();
  const core::DeviceClassifier devices(sim.store.devices);
  for (auto _ : state) {
    core::StreamingAdoption streaming(devices, sim.observation_days);
    for (const trace::MmeRecord& r : sim.store.mme) streaming.on_mme(r);
    for (const trace::ProxyRecord& r : sim.store.proxy) streaming.on_proxy(r);
    const core::AdoptionResult res = streaming.finalize();
    benchmark::DoNotOptimize(res.ever_registered);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(sim.store.mme.size() +
                                sim.store.proxy.size()) *
      state.iterations());
}
BENCHMARK(BM_StreamingAdoption)->Unit(benchmark::kMillisecond);

void BM_FullPipeline(benchmark::State& state) {
  const simnet::SimResult& sim = shared_capture();
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const core::Pipeline pipeline(sim.store, shared_options(threads));
    const core::StudyReport rep = pipeline.run();
    benchmark::DoNotOptimize(rep.figures.size());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(sim.store.proxy.size()) * state.iterations());
}
BENCHMARK(BM_FullPipeline)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

/// --emit-json mode: thread sweep over the batch pipeline, best of `kReps`
/// runs per point.  Context build and analysis passes are timed separately
/// (they parallelize differently); speedups are relative to 1 thread.
int emit_json(const std::string& path) {
  using Clock = std::chrono::steady_clock;
  constexpr int kReps = 3;
  const std::vector<int> thread_counts = {1, 2, 4, 8};

  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 1;
  }
  const simnet::SimResult& sim = shared_capture();
  const std::uint64_t records = sim.store.proxy.size() + sim.store.mme.size();
  std::fprintf(out, "{\n  \"bench\": \"perf_analysis\",\n");
  bench::emit_hardware_concurrency(out);
  std::fprintf(out, "  \"records\": %llu,\n",
               static_cast<unsigned long long>(records));
  std::fprintf(out, "  \"threads\": [\n");
  double context_ms_1t = 0.0;
  double run_ms_1t = 0.0;
  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    const int threads = thread_counts[i];
    double best_context_ms = 0.0;
    double best_run_ms = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      const Clock::time_point t0 = Clock::now();
      const core::Pipeline pipeline(sim.store, shared_options(threads));
      const Clock::time_point t1 = Clock::now();
      const core::StudyReport rep_out = pipeline.run();
      const Clock::time_point t2 = Clock::now();
      benchmark::DoNotOptimize(rep_out.figures.size());
      const double context_ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      const double run_ms =
          std::chrono::duration<double, std::milli>(t2 - t1).count();
      if (rep == 0 || context_ms < best_context_ms)
        best_context_ms = context_ms;
      if (rep == 0 || run_ms < best_run_ms) best_run_ms = run_ms;
    }
    if (threads == 1) {
      context_ms_1t = best_context_ms;
      run_ms_1t = best_run_ms;
    }
    const double speedup =
        best_context_ms + best_run_ms > 0.0
            ? (context_ms_1t + run_ms_1t) / (best_context_ms + best_run_ms)
            : 0.0;
    std::fprintf(out,
                 "    {\"threads\": %d, \"context_ms\": %.2f, "
                 "\"run_ms\": %.2f, \"speedup_vs_1t\": %.2f}%s\n",
                 threads, best_context_ms, best_run_ms, speedup,
                 i + 1 < thread_counts.size() ? "," : "");
    std::printf("threads=%d: context %.2f ms, analyses %.2f ms (%.2fx)\n",
                threads, best_context_ms, best_run_ms, speedup);
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--emit-json", 11) == 0) {
      const char* eq = std::strchr(argv[i], '=');
      return emit_json(eq != nullptr ? eq + 1 : "BENCH_analysis.json");
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
