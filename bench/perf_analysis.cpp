// Google-benchmark performance suite for the analysis pipeline: context
// indexing (device classification + app attribution + sessionization) and
// each per-figure analysis over a fixed synthetic capture.
#include <benchmark/benchmark.h>

#include "core/pipeline.h"
#include "core/streaming.h"
#include "simnet/simulator.h"

namespace {

using namespace wearscope;

const simnet::SimResult& shared_capture() {
  static const simnet::SimResult sim = [] {
    simnet::SimConfig cfg;
    cfg.seed = 2;
    cfg.wearable_users = 400;
    cfg.control_users = 800;
    cfg.through_device_users = 100;
    cfg.detailed_days = 14;
    cfg.cities = 6;
    cfg.sectors_per_city = 12;
    cfg.long_tail_apps = 60;
    return simnet::Simulator(cfg).run();
  }();
  return sim;
}

core::AnalysisOptions shared_options() {
  const simnet::SimResult& sim = shared_capture();
  core::AnalysisOptions opt;
  opt.observation_days = sim.observation_days;
  opt.detailed_start_day = sim.detailed_start_day;
  opt.long_tail_apps = sim.config.long_tail_apps;
  return opt;
}

const core::AnalysisContext& shared_context() {
  static const core::AnalysisContext ctx(shared_capture().store,
                                         shared_options());
  return ctx;
}

void BM_ContextBuild(benchmark::State& state) {
  const simnet::SimResult& sim = shared_capture();
  for (auto _ : state) {
    const core::AnalysisContext ctx(sim.store, shared_options());
    benchmark::DoNotOptimize(ctx.users().size());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(sim.store.proxy.size()) * state.iterations());
}
BENCHMARK(BM_ContextBuild)->Unit(benchmark::kMillisecond);

void BM_HostClassification(benchmark::State& state) {
  const core::AnalysisContext& ctx = shared_context();
  const simnet::SimResult& sim = shared_capture();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& host = sim.store.proxy[i % sim.store.proxy.size()].host;
    benchmark::DoNotOptimize(ctx.signatures().classify_host(host));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HostClassification);

template <typename Fn>
void run_analysis_bench(benchmark::State& state, Fn&& fn) {
  const core::AnalysisContext& ctx = shared_context();
  for (auto _ : state) {
    auto result = fn(ctx);
    benchmark::DoNotOptimize(&result);
  }
}

void BM_AnalyzeAdoption(benchmark::State& state) {
  run_analysis_bench(state, core::analyze_adoption);
}
BENCHMARK(BM_AnalyzeAdoption)->Unit(benchmark::kMillisecond);

void BM_AnalyzeDiurnal(benchmark::State& state) {
  run_analysis_bench(state, core::analyze_diurnal);
}
BENCHMARK(BM_AnalyzeDiurnal)->Unit(benchmark::kMillisecond);

void BM_AnalyzeActivity(benchmark::State& state) {
  run_analysis_bench(state, core::analyze_activity);
}
BENCHMARK(BM_AnalyzeActivity)->Unit(benchmark::kMillisecond);

void BM_AnalyzeComparison(benchmark::State& state) {
  run_analysis_bench(state, core::analyze_comparison);
}
BENCHMARK(BM_AnalyzeComparison)->Unit(benchmark::kMillisecond);

void BM_AnalyzeMobility(benchmark::State& state) {
  run_analysis_bench(state, core::analyze_mobility);
}
BENCHMARK(BM_AnalyzeMobility)->Unit(benchmark::kMillisecond);

void BM_AnalyzeApps(benchmark::State& state) {
  run_analysis_bench(state, core::analyze_apps);
}
BENCHMARK(BM_AnalyzeApps)->Unit(benchmark::kMillisecond);

void BM_AnalyzeThirdparty(benchmark::State& state) {
  run_analysis_bench(state, core::analyze_thirdparty);
}
BENCHMARK(BM_AnalyzeThirdparty)->Unit(benchmark::kMillisecond);

void BM_StreamingAdoption(benchmark::State& state) {
  const simnet::SimResult& sim = shared_capture();
  const core::DeviceClassifier devices(sim.store.devices);
  for (auto _ : state) {
    core::StreamingAdoption streaming(devices, sim.observation_days);
    for (const trace::MmeRecord& r : sim.store.mme) streaming.on_mme(r);
    for (const trace::ProxyRecord& r : sim.store.proxy) streaming.on_proxy(r);
    const core::AdoptionResult res = streaming.finalize();
    benchmark::DoNotOptimize(res.ever_registered);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(sim.store.mme.size() +
                                sim.store.proxy.size()) *
      state.iterations());
}
BENCHMARK(BM_StreamingAdoption)->Unit(benchmark::kMillisecond);

void BM_FullPipeline(benchmark::State& state) {
  const simnet::SimResult& sim = shared_capture();
  for (auto _ : state) {
    const core::Pipeline pipeline(sim.store, shared_options());
    const core::StudyReport rep = pipeline.run();
    benchmark::DoNotOptimize(rep.figures.size());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(sim.store.proxy.size()) * state.iterations());
}
BENCHMARK(BM_FullPipeline)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
