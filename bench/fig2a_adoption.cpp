// Regenerates Fig. 2(a): daily SIM-enabled wearable users registered with
// the MME over the five-month window, normalized by the final count.
#include <cstdio>

#include "bench_common.h"
#include "util/ascii_chart.h"

int main(int argc, char** argv) {
  using namespace wearscope;
  return bench::run_custom_main(
      argc, argv,
      "fig2a: SIM-enabled wearable adoption over five months (paper Fig. 2a)",
      [](const bench::BenchOptions& opts) {
        const bench::PipelineRun run = bench::run_pipeline(opts);
        const core::FigureData& fig = run.report.figure("fig2a");
        std::fputs(fig.to_text().c_str(), stdout);

        const core::AdoptionResult& r = run.report.adoption;
        if (!opts.quiet) {
          // Weekly averages of the normalized daily counts: the ramp the
          // paper plots.
          std::printf("-- normalized registered users, weekly averages --\n");
          std::vector<double> weekly;
          for (std::size_t d = 0; d + 7 <= r.daily_registered_norm.size();
               d += 7) {
            double sum = 0.0;
            for (std::size_t k = 0; k < 7; ++k)
              sum += r.daily_registered_norm[d + k];
            weekly.push_back(sum / 7.0);
          }
          std::printf("   weeks: [%s]\n", util::sparkline(weekly).c_str());
          std::printf("   first-week avg=%.4f last-week avg=%.4f (+%.1f%%)\n",
                      weekly.front(), weekly.back(),
                      100.0 * (weekly.back() / weekly.front() - 1.0));
          std::printf(
              "   ever registered: %zu users; ever transacted: %zu (%.1f%%)\n",
              r.ever_registered, r.ever_transacted,
              100.0 * r.ever_transacting_fraction);
        }
        if (!opts.csv_dir.empty()) fig.write_csv(opts.csv_dir);
        std::printf("[result] fig2a: %s\n",
                    fig.all_pass() ? "ALL CHECKS PASS" : "CHECK FAILURES");
        return 0;
      });
}
