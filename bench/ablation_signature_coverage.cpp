// Ablation: robustness of the app/category figures to signature-table
// coverage.  The authors' SNI->app mapping was necessarily incomplete;
// this harness degrades the rule table and tracks unknown-traffic share
// and the stability of the headline rankings.
#include <cstdio>
#include <set>

#include "bench_common.h"
#include "core/analysis_apps.h"
#include "core/analysis_categories.h"
#include "core/context.h"
#include "util/ascii_chart.h"

int main(int argc, char** argv) {
  using namespace wearscope;
  return bench::run_custom_main(
      argc, argv, "ablation: signature-table coverage sweep (paper §3.3)",
      [](const bench::BenchOptions& opts) {
        const simnet::SimConfig cfg = bench::config_for_preset(
            opts.preset, static_cast<std::uint64_t>(opts.seed));
        const simnet::SimResult sim = simnet::Simulator(cfg).run();

        std::printf("== ablation: signature coverage sweep ==\n");
        std::set<std::string> full_top5;
        std::vector<std::vector<std::string>> rows;
        for (const double coverage : {1.0, 0.75, 0.5, 0.25, 0.1}) {
          core::AnalysisOptions aopt;
          aopt.observation_days = sim.observation_days;
          aopt.detailed_start_day = sim.detailed_start_day;
          aopt.long_tail_apps = cfg.long_tail_apps;
          aopt.signature_coverage = coverage;
          const core::AnalysisContext ctx(sim.store, aopt);
          const core::AppPopularityResult apps = core::analyze_apps(ctx);
          const core::CategoryResult cats = core::analyze_categories(ctx);

          std::set<std::string> top5;
          for (const core::AppStats& a : apps.apps) {
            if (top5.size() >= 5) break;
            top5.insert(a.name);
          }
          if (coverage == 1.0) full_top5 = top5;
          std::size_t kept = 0;
          for (const std::string& name : top5) {
            if (full_top5.contains(name)) ++kept;
          }
          const std::string top_cat =
              cats.by_users.empty()
                  ? "-"
                  : std::string(appdb::category_name(cats.by_users[0].category));
          rows.push_back(
              {util::format_num(coverage, 2),
               std::to_string(ctx.signatures().rule_count()),
               util::format_num(100.0 * apps.unknown_traffic_fraction, 1) + "%",
               std::to_string(kept) + "/5", top_cat});
        }
        std::fputs(util::table({"coverage", "rules", "unknown traffic",
                                "top-5 apps kept", "top category"},
                               rows)
                       .c_str(),
                   stdout);
        std::printf(
            "note: rules are dropped catalog-order (popular apps first in\n"
            "the table), so low coverage rapidly blinds the analysis — the\n"
            "paper's conclusions need the popular-app signatures most.\n");
        return 0;
      });
}
