// Shared runtime of the figure-regeneration harnesses.
//
// Every fig*/sec6 binary follows the same protocol: simulate the ISP at the
// chosen preset, run the analysis pipeline over the logs, pretty-print the
// regenerated series of its figure, and report paper-vs-measured checks.
#pragma once

#include <cstdio>
#include <functional>
#include <string>

#include "core/pipeline.h"
#include "simnet/simulator.h"

namespace wearscope::bench {

/// Writes the `"hardware_concurrency": N,`, `"thread_sweep_valid": B,`
/// and `"peak_rss_bytes": B,` lines every BENCH_*.json carries (sweep
/// shapes are meaningless without the first two; memory claims — the
/// sketch mode's whole point — without the third) and returns N.
/// thread_sweep_valid is false on a single-core machine, where every
/// parallel sweep is flat no matter how good the code is — consumers
/// must not read such a point as a scaling regression (also warned on
/// stderr).  Peak RSS is the process high-water mark up to the call
/// (getrusage), so call this after the measured work ran.
unsigned emit_hardware_concurrency(std::FILE* out);

/// Process peak resident set size in bytes (0 where unavailable).
std::size_t peak_rss_bytes();

/// Peak RSS of THIS address space in bytes.  getrusage's ru_maxrss is a
/// per-task high-water mark that survives execve, so a worker forked from
/// a parent that held a large capture inherits the parent's peak — on
/// Linux this reads VmHWM from /proc/self/status instead, which exec
/// resets with the address space.  Falls back to peak_rss_bytes()
/// elsewhere.  Use for re-exec'ed measurement workers (perf_fed).
std::size_t own_peak_rss_bytes();

/// Parsed command line shared by every figure harness.
struct BenchOptions {
  std::string preset = "standard";  ///< small | standard | paper.
  std::int64_t seed = 42;
  std::string csv_dir;              ///< When set, series are exported here.
  bool quiet = false;               ///< Suppress series rendering.
};

/// Resolves a preset name to a simulator configuration.
simnet::SimConfig config_for_preset(const std::string& preset,
                                    std::uint64_t seed);

/// Runs the simulation and the full pipeline for `opts`.
struct PipelineRun {
  simnet::SimResult sim;
  core::StudyReport report;
};
PipelineRun run_pipeline(const BenchOptions& opts);

/// Pretty-prints a label-indexed series as a log-scale bar chart (top
/// `limit` entries) and an x/y series as quantile rows or sparkline.
void print_series(const core::FigureData& fig, bool log_scale = true,
                  std::size_t limit = 20);

/// Entry point used by each figure binary:
/// parses flags, runs the pipeline, extracts figure `figure_id`, renders it
/// and returns the process exit code (0 even on check failure — failures
/// are reported in the output; CI asserts via the test suite instead).
int run_figure_main(int argc, const char* const* argv,
                    const std::string& figure_id,
                    const std::string& description);

/// Variant for custom harnesses (ablations): parses flags and hands the
/// options to `body`.
int run_custom_main(int argc, const char* const* argv,
                    const std::string& description,
                    const std::function<int(const BenchOptions&)>& body);

}  // namespace wearscope::bench
