// Extension (paper §6): "we expect that this rise will be sharper once the
// Apple watch is supported by this ISP."  This harness runs the what-if:
// the operator launches Apple Watch support mid-window, post-launch
// adoption accelerates, and the analysis pipeline — whose curated model
// list already contains the Apple Watch (§3.2) — picks the new devices up
// with no changes.
#include <cstdio>

#include "bench_common.h"
#include "core/analysis_adoption.h"
#include "core/context.h"
#include "util/ascii_chart.h"

namespace {

using namespace wearscope;

/// Weekly averages of the normalized daily adoption curve.
std::vector<double> weekly(const std::vector<double>& daily) {
  std::vector<double> out;
  for (std::size_t d = 0; d + 7 <= daily.size(); d += 7) {
    double sum = 0.0;
    for (std::size_t k = 0; k < 7; ++k) sum += daily[d + k];
    out.push_back(sum / 7.0);
  }
  return out;
}

/// Mean week-over-week growth rate of a weekly series segment.
double growth_rate(const std::vector<double>& w, std::size_t lo,
                   std::size_t hi) {
  double acc = 0.0;
  std::size_t n = 0;
  for (std::size_t i = lo + 1; i < hi && i < w.size(); ++i) {
    if (w[i - 1] > 0.0) {
      acc += w[i] / w[i - 1] - 1.0;
      ++n;
    }
  }
  return n > 0 ? acc / static_cast<double>(n) : 0.0;
}

core::AdoptionResult run_scenario(simnet::SimConfig cfg) {
  const simnet::SimResult sim = simnet::Simulator(cfg).run();
  core::AnalysisOptions opt;
  opt.observation_days = sim.observation_days;
  opt.detailed_start_day = sim.detailed_start_day;
  opt.long_tail_apps = cfg.long_tail_apps;
  const core::AnalysisContext ctx(sim.store, opt);
  return core::analyze_adoption(ctx);
}

}  // namespace

int main(int argc, char** argv) {
  return bench::run_custom_main(
      argc, argv,
      "ext: Apple Watch launch what-if (paper conclusion's expectation)",
      [](const bench::BenchOptions& opts) {
        simnet::SimConfig base = bench::config_for_preset(
            opts.preset, static_cast<std::uint64_t>(opts.seed));
        simnet::SimConfig launch = base;
        launch.apple_watch_launch_day = base.observation_days / 2;
        launch.launch_adoption_boost = 3.0;
        launch.apple_watch_share = 0.55;

        std::printf("== baseline (status quo: no Apple Watch support) ==\n");
        const core::AdoptionResult before = run_scenario(base);
        std::printf("== what-if (launch on day %d, 3x adoption boost) ==\n",
                    launch.apple_watch_launch_day);
        const core::AdoptionResult after = run_scenario(launch);

        const std::vector<double> wk_before =
            weekly(before.daily_registered_norm);
        const std::vector<double> wk_after =
            weekly(after.daily_registered_norm);
        std::printf("baseline weekly curve: [%s]\n",
                    util::sparkline(wk_before).c_str());
        std::printf("what-if  weekly curve: [%s]\n",
                    util::sparkline(wk_after).c_str());

        const std::size_t launch_week =
            static_cast<std::size_t>(launch.apple_watch_launch_day / 7);
        const double pre = growth_rate(wk_after, 1, launch_week);
        const double post =
            growth_rate(wk_after, launch_week, wk_after.size());
        std::printf("what-if weekly growth: %.2f%%/wk before launch, "
                    "%.2f%%/wk after\n",
                    100.0 * pre, 100.0 * post);
        std::printf("total 5-month growth: baseline %.1f%%, what-if %.1f%%\n",
                    100.0 * before.total_growth, 100.0 * after.total_growth);

        const bool sharper = post > pre * 1.5 &&
                             after.total_growth > before.total_growth * 1.2;
        std::printf("[result] ext_applewatch_launch: %s\n",
                    sharper ? "SHARPER INCREASE CONFIRMED"
                            : "NO CLEAR ACCELERATION (unexpected)");
        return 0;
      });
}
