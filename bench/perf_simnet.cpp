// Google-benchmark performance suite for the synthetic-ISP generator:
// end-to-end trace generation throughput as the population scales, plus
// the cost of the individual model stages.
#include <benchmark/benchmark.h>

#include "simnet/geography.h"
#include "simnet/mobility.h"
#include "simnet/population.h"
#include "simnet/simulator.h"
#include "simnet/traffic.h"

namespace {

using namespace wearscope;

simnet::SimConfig bench_config(std::int64_t wearables) {
  simnet::SimConfig cfg;
  cfg.seed = 1;
  cfg.wearable_users = static_cast<std::uint32_t>(wearables);
  cfg.control_users = static_cast<std::uint32_t>(wearables * 2);
  cfg.through_device_users = static_cast<std::uint32_t>(wearables / 4 + 1);
  cfg.detailed_days = 14;
  cfg.cities = 6;
  cfg.sectors_per_city = 12;
  cfg.long_tail_apps = 60;
  return cfg;
}

void BM_FullSimulation(benchmark::State& state) {
  const simnet::SimConfig cfg = bench_config(state.range(0));
  std::size_t records = 0;
  for (auto _ : state) {
    const simnet::SimResult r = simnet::Simulator(cfg).run();
    records = r.store.proxy.size() + r.store.mme.size();
    benchmark::DoNotOptimize(records);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records) *
                          state.iterations());
  state.counters["records"] = static_cast<double>(records);
}
BENCHMARK(BM_FullSimulation)->Arg(100)->Arg(400)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_GeographyBuild(benchmark::State& state) {
  simnet::SimConfig cfg = bench_config(100);
  cfg.cities = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    const simnet::Geography geo(cfg, util::Pcg32(7));
    benchmark::DoNotOptimize(geo.sectors().size());
  }
}
BENCHMARK(BM_GeographyBuild)->Arg(6)->Arg(24)->Arg(96);

void BM_PopulationBuild(benchmark::State& state) {
  const simnet::SimConfig cfg = bench_config(state.range(0));
  const appdb::AppCatalog apps(cfg.long_tail_apps);
  const appdb::DeviceModelCatalog devices;
  const simnet::Geography geo(cfg, util::Pcg32(7));
  for (auto _ : state) {
    const simnet::Population pop(cfg, geo, apps, devices, util::Pcg32(8));
    benchmark::DoNotOptimize(pop.subscribers().size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 3);
}
BENCHMARK(BM_PopulationBuild)->Arg(300)->Arg(3000);

void BM_DailyItinerary(benchmark::State& state) {
  const simnet::SimConfig cfg = bench_config(50);
  const appdb::AppCatalog apps(cfg.long_tail_apps);
  const appdb::DeviceModelCatalog devices;
  const simnet::Geography geo(cfg, util::Pcg32(7));
  const simnet::Population pop(cfg, geo, apps, devices, util::Pcg32(8));
  const simnet::MobilityModel mobility(cfg, geo);
  const simnet::Subscriber& sub = pop.subscribers().front();
  util::Pcg32 rng(9);
  int day = 0;
  for (auto _ : state) {
    const simnet::DayItinerary it =
        mobility.build_day(sub, day++ % cfg.observation_days, rng);
    benchmark::DoNotOptimize(it.legs.size());
  }
}
BENCHMARK(BM_DailyItinerary);

void BM_WearableDayGeneration(benchmark::State& state) {
  const simnet::SimConfig cfg = bench_config(50);
  const appdb::AppCatalog apps(cfg.long_tail_apps);
  const appdb::DeviceModelCatalog devices;
  const simnet::Geography geo(cfg, util::Pcg32(7));
  const simnet::Population pop(cfg, geo, apps, devices, util::Pcg32(8));
  const simnet::MobilityModel mobility(cfg, geo);
  const simnet::TrafficModel traffic(cfg, apps);
  // Use a non-silent owner.
  const simnet::Subscriber* sub = nullptr;
  for (const simnet::Subscriber* s :
       pop.of_segment(simnet::Segment::kWearableOwner)) {
    if (!s->silent) {
      sub = s;
      break;
    }
  }
  util::Pcg32 rng(10);
  std::vector<trace::ProxyRecord> out;
  int day = 0;
  for (auto _ : state) {
    out.clear();
    simnet::WearableDayPlan plan;
    // Force an active plan by retrying days (planning cost included).
    while (!plan.active) {
      plan = traffic.plan_wearable_day(*sub, day++ % cfg.observation_days, rng);
    }
    const simnet::DayItinerary it = mobility.build_day(*sub, day, rng);
    traffic.generate_wearable_day(*sub, plan, it, rng, out);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_WearableDayGeneration);

}  // namespace

BENCHMARK_MAIN();
