// Regenerates the conclusion's Through-Device study (§6): fingerprint
// smartphone-relayed wearable traffic (Fitbit, Xiaomi, wearable app
// endpoints) and compare detected users with SIM-enabled wearable users.
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace wearscope;
  return bench::run_custom_main(
      argc, argv, "sec6: Through-Device fingerprinting (paper conclusion)",
      [](const bench::BenchOptions& opts) {
        const bench::PipelineRun run = bench::run_pipeline(opts);
        const core::FigureData& fig = run.report.figure("sec6");
        std::fputs(fig.to_text().c_str(), stdout);
        if (!opts.quiet) {
          bench::print_series(fig, /*log_scale=*/false);
          const core::ThroughDeviceResult& r = run.report.throughdevice;
          std::printf("   detected TD users: %zu\n", r.detected_users);
          std::printf(
              "   TD vs SIM (medians): txns/day %.2fx, bytes/day %.2fx, "
              "entropy %.2fx\n",
              r.daily_txn_ratio, r.daily_bytes_ratio, r.entropy_ratio);
        }
        if (!opts.csv_dir.empty()) fig.write_csv(opts.csv_dir);
        std::printf("[result] sec6: %s\n",
                    fig.all_pass() ? "ALL CHECKS PASS" : "CHECK FAILURES");
        return 0;
      });
}
