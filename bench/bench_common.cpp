#include "bench_common.h"

#include <chrono>
#include <cstdio>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "util/ascii_chart.h"
#include "util/error.h"
#include "util/flags.h"

namespace wearscope::bench {

std::size_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::size_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

std::size_t own_peak_rss_bytes() {
#if defined(__linux__)
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status != nullptr) {
    char line[256];
    while (std::fgets(line, sizeof line, status) != nullptr) {
      unsigned long long kb = 0;
      if (std::sscanf(line, "VmHWM: %llu", &kb) == 1) {
        std::fclose(status);
        return static_cast<std::size_t>(kb) * 1024;
      }
    }
    std::fclose(status);
  }
#endif
  return peak_rss_bytes();
}

unsigned emit_hardware_concurrency(std::FILE* out) {
  const unsigned hc = std::thread::hardware_concurrency();
  std::fprintf(out, "  \"hardware_concurrency\": %u,\n", hc);
  std::fprintf(out, "  \"thread_sweep_valid\": %s,\n",
               hc <= 1 ? "false" : "true");
  std::fprintf(out, "  \"peak_rss_bytes\": %zu,\n", peak_rss_bytes());
  if (hc <= 1) {
    std::fprintf(stderr,
                 "warning: hardware_concurrency=%u — parallel sweeps are "
                 "flat on a single-core machine; do not read this point "
                 "as a scaling regression\n",
                 hc);
  }
  return hc;
}

namespace {

double elapsed_s(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

simnet::SimConfig config_for_preset(const std::string& preset,
                                    std::uint64_t seed) {
  simnet::SimConfig cfg;
  if (preset == "small") {
    cfg = simnet::SimConfig::small();
  } else if (preset == "standard") {
    cfg = simnet::SimConfig::standard();
  } else if (preset == "paper") {
    cfg = simnet::SimConfig::paper();
  } else {
    throw util::ConfigError("unknown preset '" + preset +
                            "' (expected small|standard|paper)");
  }
  cfg.seed = seed;
  return cfg;
}

PipelineRun run_pipeline(const BenchOptions& opts) {
  const simnet::SimConfig cfg =
      config_for_preset(opts.preset, static_cast<std::uint64_t>(opts.seed));
  const auto t0 = std::chrono::steady_clock::now();
  simnet::SimResult sim = simnet::Simulator(cfg).run();
  const double gen_s = elapsed_s(t0);

  core::AnalysisOptions aopt;
  aopt.observation_days = sim.observation_days;
  aopt.detailed_start_day = sim.detailed_start_day;
  aopt.long_tail_apps = cfg.long_tail_apps;

  const auto t1 = std::chrono::steady_clock::now();
  const core::Pipeline pipeline(sim.store, aopt);
  core::StudyReport report = pipeline.run();
  const double an_s = elapsed_s(t1);

  const trace::TraceSummary sum = sim.store.summarize();
  std::printf(
      "[trace] preset=%s seed=%llu proxy=%zu mme=%zu users=%zu "
      "(gen %.2fs, analyze %.2fs)\n",
      opts.preset.c_str(), static_cast<unsigned long long>(opts.seed),
      sum.proxy_records, sum.mme_records, sum.distinct_mme_users, gen_s, an_s);
  return PipelineRun{std::move(sim), std::move(report)};
}

void print_series(const core::FigureData& fig, bool log_scale,
                  std::size_t limit) {
  for (const core::Series& s : fig.series) {
    std::printf("-- series: %s --\n", s.name.c_str());
    if (!s.labels.empty()) {
      std::vector<util::Bar> bars;
      for (std::size_t i = 0; i < s.labels.size() && i < limit; ++i) {
        bars.push_back({s.labels[i], s.y[i]});
      }
      std::fputs(util::bar_chart(bars, 44, log_scale).c_str(), stdout);
      if (s.labels.size() > limit) {
        std::printf("   ... (%zu more rows)\n", s.labels.size() - limit);
      }
    } else if (s.x.size() == 24) {
      // Hour-of-day profile: sparkline plus peak annotation.
      std::printf("   hours 0-23: [%s]\n", util::sparkline(s.y).c_str());
    } else {
      // CDF / relation: print decile rows.
      std::vector<std::vector<std::string>> rows;
      for (int q = 0; q <= 10; ++q) {
        const std::size_t idx =
            s.x.empty() ? 0
                        : std::min(s.x.size() - 1, s.x.size() * static_cast<std::size_t>(q) / 10);
        if (s.x.empty()) break;
        rows.push_back({util::format_num(static_cast<double>(q) / 10.0),
                        util::format_num(s.x[idx]),
                        util::format_num(s.y[idx])});
      }
      std::fputs(util::table({"frac", "x", "y"}, rows).c_str(), stdout);
    }
  }
}

int run_figure_main(int argc, const char* const* argv,
                    const std::string& figure_id,
                    const std::string& description) {
  try {
    BenchOptions opts;
    util::FlagParser flags(description);
    flags.add_string("preset", &opts.preset,
                     "population preset: small|standard|paper");
    flags.add_int("seed", &opts.seed, "generator seed");
    flags.add_string("csv-dir", &opts.csv_dir,
                     "export the figure series as CSV into this directory");
    flags.add_bool("quiet", &opts.quiet, "suppress series rendering");
    if (!flags.parse(argc, argv)) return 0;

    const PipelineRun run = run_pipeline(opts);
    const core::FigureData& fig = run.report.figure(figure_id);
    std::fputs(fig.to_text().c_str(), stdout);
    if (!opts.quiet) print_series(fig);
    if (!opts.csv_dir.empty()) {
      fig.write_csv(opts.csv_dir);
      std::printf("[csv] series written to %s\n", opts.csv_dir.c_str());
    }
    std::printf("[result] %s: %s\n", figure_id.c_str(),
                fig.all_pass() ? "ALL CHECKS PASS" : "CHECK FAILURES (see above)");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

int run_custom_main(int argc, const char* const* argv,
                    const std::string& description,
                    const std::function<int(const BenchOptions&)>& body) {
  try {
    BenchOptions opts;
    util::FlagParser flags(description);
    flags.add_string("preset", &opts.preset,
                     "population preset: small|standard|paper");
    flags.add_int("seed", &opts.seed, "generator seed");
    flags.add_string("csv-dir", &opts.csv_dir, "CSV export directory");
    flags.add_bool("quiet", &opts.quiet, "suppress series rendering");
    if (!flags.parse(argc, argv)) return 0;
    return body(opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

}  // namespace wearscope::bench
