// Extension (Fig. 2b generalized): adoption-week cohort survival curves.
#include <cstdio>

#include "bench_common.h"
#include "util/ascii_chart.h"

int main(int argc, char** argv) {
  using namespace wearscope;
  return bench::run_custom_main(
      argc, argv, "ext: retention cohorts (Fig. 2b generalized)",
      [](const bench::BenchOptions& opts) {
        const bench::PipelineRun run = bench::run_pipeline(opts);
        const core::FigureData& fig = run.report.figure("retention");
        std::fputs(fig.to_text().c_str(), stdout);
        if (!opts.quiet) {
          const core::RetentionResult& r = run.report.retention;
          std::printf("-- cohort survival (weeks since adoption) --\n");
          for (const core::Cohort& c : r.cohorts) {
            if (c.size < 5) continue;  // tiny cohorts are noise
            std::printf("  wk%-3d (n=%4zu): [%s]\n", c.adoption_week, c.size,
                        util::sparkline(c.survival).c_str());
          }
          std::printf("  mean survival: 4w=%.3f 8w=%.3f 12w=%.3f\n",
                      r.survival_4w, r.survival_8w, r.survival_12w);
        }
        if (!opts.csv_dir.empty()) fig.write_csv(opts.csv_dir);
        std::printf("[result] ext_retention: %s\n",
                    fig.all_pass() ? "ALL CHECKS PASS" : "CHECK FAILURES");
        return 0;
      });
}
