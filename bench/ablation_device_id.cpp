// Ablation: curated model-list identification (paper §3.2) vs a naive
// manufacturer-prefix classifier.  Samsung/LG/Huawei also sell most of the
// country's phones, so prefix matching floods the "wearable" population.
#include <cstdio>
#include <set>

#include "bench_common.h"
#include "core/device_id.h"
#include "util/ascii_chart.h"

int main(int argc, char** argv) {
  using namespace wearscope;
  return bench::run_custom_main(
      argc, argv, "ablation: device identification strategy (paper §3.2)",
      [](const bench::BenchOptions& opts) {
        const simnet::SimConfig cfg = bench::config_for_preset(
            opts.preset, static_cast<std::uint64_t>(opts.seed));
        const simnet::SimResult sim = simnet::Simulator(cfg).run();

        const core::DeviceClassifier curated(sim.store.devices);
        const std::vector<std::string_view> vendors = {"Samsung", "LG",
                                                       "Huawei"};
        const core::DeviceClassifier naive =
            core::DeviceClassifier::from_manufacturers(sim.store.devices,
                                                       vendors);

        const auto count_users = [&](const core::DeviceClassifier& c) {
          std::set<trace::UserId> users;
          for (const trace::MmeRecord& r : sim.store.mme) {
            if (c.is_wearable(r.tac)) users.insert(r.user_id);
          }
          return users.size();
        };

        // Ground truth from the generator (available because we built the
        // ISP): the real wearable-owner count.
        std::size_t truth = 0;
        for (const simnet::Subscriber& s : sim.subscribers) {
          if (s.segment == simnet::Segment::kWearableOwner) ++truth;
        }

        const std::size_t curated_users = count_users(curated);
        const std::size_t naive_users = count_users(naive);

        std::printf("== ablation: device identification ==\n");
        std::vector<std::vector<std::string>> rows;
        rows.push_back({"ground truth (generator)", std::to_string(truth),
                        "-", "-"});
        rows.push_back(
            {"curated model list (paper)", std::to_string(curated_users),
             std::to_string(curated.wearable_tacs().size()),
             util::format_num(100.0 * static_cast<double>(curated_users) /
                                  static_cast<double>(truth),
                              1) +
                 "%"});
        rows.push_back(
            {"manufacturer prefixes (naive)", std::to_string(naive_users),
             std::to_string(naive.wearable_tacs().size()),
             util::format_num(100.0 * static_cast<double>(naive_users) /
                                  static_cast<double>(truth),
                              1) +
                 "%"});
        std::fputs(util::table({"strategy", "users flagged", "TACs",
                                "vs truth"},
                               rows)
                       .c_str(),
                   stdout);
        std::printf(
            "note: the naive strategy sweeps in every Samsung/LG/Huawei\n"
            "smartphone owner — hence the paper's careful model-list step.\n");
        return 0;
      });
}
