// Regenerates Fig. 2(b): users present in the first vs the last week of the
// five-month window (still-active / abandoned / newly-adopted shares).
#include "bench_common.h"

int main(int argc, char** argv) {
  return wearscope::bench::run_figure_main(
      argc, argv, "fig2b",
      "fig2b: first-week vs last-week wearable users (paper Fig. 2b)");
}
