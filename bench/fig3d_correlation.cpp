// Regenerates Fig. 3(d): relation between hourly transactions and daily
// active hours (more active users transact more per hour, no burstiness).
#include <cstdio>

#include "bench_common.h"
#include "util/ascii_chart.h"

int main(int argc, char** argv) {
  using namespace wearscope;
  return bench::run_custom_main(
      argc, argv, "fig3d: transactions vs active hours (paper Fig. 3d)",
      [](const bench::BenchOptions& opts) {
        const bench::PipelineRun run = bench::run_pipeline(opts);
        const core::FigureData& fig = run.report.figure("fig3d");
        std::fputs(fig.to_text().c_str(), stdout);
        if (!opts.quiet) {
          const core::ActivityResult& r = run.report.activity;
          std::printf("-- txns/hour by active-hours decile --\n");
          std::vector<std::vector<std::string>> rows;
          for (std::size_t b = 0; b < r.txns_vs_hours.x_centers.size(); ++b) {
            rows.push_back({util::format_num(r.txns_vs_hours.x_centers[b], 2),
                            util::format_num(r.txns_vs_hours.y_means[b], 2),
                            std::to_string(r.txns_vs_hours.n[b])});
          }
          std::fputs(
              util::table({"active h/day", "txns/hour", "users"}, rows)
                  .c_str(),
              stdout);
          std::printf("   Pearson correlation: %.3f\n", r.correlation);
        }
        if (!opts.csv_dir.empty()) fig.write_csv(opts.csv_dir);
        std::printf("[result] fig3d: %s\n",
                    fig.all_pass() ? "ALL CHECKS PASS" : "CHECK FAILURES");
        return 0;
      });
}
