// Regenerates Fig. 3(a): hourly share of active users, data and
// transactions, weekday vs weekend, normalized over the weekly total.
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace wearscope;
  return bench::run_custom_main(
      argc, argv,
      "fig3a: macroscopic hourly wearable usage (paper Fig. 3a)",
      [](const bench::BenchOptions& opts) {
        const bench::PipelineRun run = bench::run_pipeline(opts);
        const core::FigureData& fig = run.report.figure("fig3a");
        std::fputs(fig.to_text().c_str(), stdout);
        if (!opts.quiet) {
          bench::print_series(fig);
          const core::DiurnalResult& r = run.report.diurnal;
          std::printf(
              "   commute-morning (6-9am) weekday/weekend user ratio: %.2f\n",
              r.commute_bump_ratio);
          std::printf(
              "   wearable share of total traffic, weekend/weekday: %.2f\n",
              r.weekend_relative_usage);
        }
        if (!opts.csv_dir.empty()) fig.write_csv(opts.csv_dir);
        std::printf("[result] fig3a: %s\n",
                    fig.all_pass() ? "ALL CHECKS PASS" : "CHECK FAILURES");
        return 0;
      });
}
