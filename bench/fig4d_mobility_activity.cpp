// Regenerates Fig. 4(d): max displacement vs hourly wearable transactions
// (users travelling farther also transact more).
#include <cstdio>

#include "bench_common.h"
#include "util/ascii_chart.h"

int main(int argc, char** argv) {
  using namespace wearscope;
  return bench::run_custom_main(
      argc, argv, "fig4d: mobility vs activity (paper Fig. 4d)",
      [](const bench::BenchOptions& opts) {
        const bench::PipelineRun run = bench::run_pipeline(opts);
        const core::FigureData& fig = run.report.figure("fig4d");
        std::fputs(fig.to_text().c_str(), stdout);
        if (!opts.quiet) {
          const core::MobilityResult& r = run.report.mobility;
          std::printf("-- mean txns/hour by displacement decile --\n");
          std::vector<std::vector<std::string>> rows;
          for (std::size_t b = 0; b < r.displacement_vs_txns.x_centers.size();
               ++b) {
            rows.push_back(
                {util::format_num(r.displacement_vs_txns.x_centers[b], 2),
                 util::format_num(r.displacement_vs_txns.y_means[b], 1),
                 std::to_string(r.displacement_vs_txns.n[b])});
          }
          std::fputs(
              util::table({"displacement km", "txns/hour", "users"}, rows)
                  .c_str(),
              stdout);
          std::printf("   Spearman correlation: %.3f\n",
                      r.mobility_activity_corr);
        }
        if (!opts.csv_dir.empty()) fig.write_csv(opts.csv_dir);
        std::printf("[result] fig4d: %s\n",
                    fig.all_pass() ? "ALL CHECKS PASS" : "CHECK FAILURES");
        return 0;
      });
}
