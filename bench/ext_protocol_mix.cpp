// Extension: HTTP vs HTTPS in wearable traffic ("Are Wearables Ready for
// HTTPS?" — the authors' prior work, cited in §2, asks exactly this).
#include <cstdio>

#include "bench_common.h"
#include "util/ascii_chart.h"

int main(int argc, char** argv) {
  using namespace wearscope;
  return bench::run_custom_main(
      argc, argv, "ext: HTTPS readiness of wearable traffic",
      [](const bench::BenchOptions& opts) {
        const bench::PipelineRun run = bench::run_pipeline(opts);
        const core::FigureData& fig = run.report.figure("protocol");
        std::fputs(fig.to_text().c_str(), stdout);
        if (!opts.quiet) {
          const core::ProtocolResult& r = run.report.protocol;
          std::printf("overall: %.1f%% of transactions / %.1f%% of bytes "
                      "over HTTPS (%g plaintext transactions)\n",
                      100.0 * r.https_txn_share, 100.0 * r.https_data_share,
                      r.http_txns);
          std::printf("-- plaintext share by category --\n");
          std::vector<std::vector<std::string>> rows;
          for (const core::CategoryProtocolMix& m : r.by_category) {
            rows.push_back({std::string(appdb::category_name(m.category)),
                            util::format_num(100.0 * m.http_txn_share, 1) + "%",
                            util::format_num(100.0 * m.http_data_share, 1) + "%",
                            util::format_num(m.txns, 0)});
          }
          std::fputs(util::table({"category", "http txns", "http bytes",
                                  "txns"},
                                 rows)
                         .c_str(),
                     stdout);
        }
        if (!opts.csv_dir.empty()) fig.write_csv(opts.csv_dir);
        std::printf("[result] ext_protocol_mix: %s\n",
                    fig.all_pass() ? "ALL CHECKS PASS" : "CHECK FAILURES");
        return 0;
      });
}
