// Regenerates Fig. 6(a-d): daily popularity of Google-Play app categories
// (associated users, frequency of usage, transactions, data).
#include <cstdio>

#include "bench_common.h"
#include "util/ascii_chart.h"

int main(int argc, char** argv) {
  using namespace wearscope;
  return bench::run_custom_main(
      argc, argv, "fig6: category popularity (paper Fig. 6a-d)",
      [](const bench::BenchOptions& opts) {
        const bench::PipelineRun run = bench::run_pipeline(opts);
        const core::FigureData& fig = run.report.figure("fig6");
        std::fputs(fig.to_text().c_str(), stdout);
        if (!opts.quiet) {
          const core::CategoryResult& r = run.report.categories;
          std::printf("-- category shares (%% of daily total) --\n");
          std::vector<std::vector<std::string>> rows;
          for (const core::CategoryStats& s : r.by_users) {
            rows.push_back({std::string(appdb::category_name(s.category)),
                            util::format_num(s.user_share_pct, 2),
                            util::format_num(s.usage_share_pct, 2),
                            util::format_num(s.txn_share_pct, 2),
                            util::format_num(s.data_share_pct, 2)});
          }
          std::fputs(util::table({"category", "users%", "usage%", "txns%",
                                  "data%"},
                                 rows)
                         .c_str(),
                     stdout);
        }
        if (!opts.csv_dir.empty()) fig.write_csv(opts.csv_dir);
        std::printf("[result] fig6: %s\n",
                    fig.all_pass() ? "ALL CHECKS PASS" : "CHECK FAILURES");
        return 0;
      });
}
