// Regenerates Fig. 3(c): transaction-size CDF (sharply centred near 3 KB)
// plus hourly per-user data/transaction distributions.
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace wearscope;
  return bench::run_custom_main(
      argc, argv, "fig3c: transaction analysis (paper Fig. 3c)",
      [](const bench::BenchOptions& opts) {
        const bench::PipelineRun run = bench::run_pipeline(opts);
        const core::FigureData& fig = run.report.figure("fig3c");
        std::fputs(fig.to_text().c_str(), stdout);
        if (!opts.quiet) {
          const core::ActivityResult& r = run.report.activity;
          std::printf("-- transaction size quantiles (KB) --\n");
          for (const double q : {0.1, 0.25, 0.5, 0.75, 0.8, 0.9, 0.99}) {
            std::printf("   p%-4.0f %10.2f\n", q * 100,
                        r.txn_size_bytes.quantile(q) / 1000.0);
          }
          std::printf("   mean %10.2f  (%zu transactions)\n",
                      r.mean_txn_bytes / 1000.0, r.txn_size_bytes.size());
          std::printf("-- hourly per-user activity --\n");
          std::printf("   txns/hour:  p50=%.1f p90=%.1f\n",
                      r.hourly_txns_per_user.quantile(0.5),
                      r.hourly_txns_per_user.quantile(0.9));
          std::printf("   bytes/hour: p50=%.1fKB p90=%.1fKB\n",
                      r.hourly_bytes_per_user.quantile(0.5) / 1000.0,
                      r.hourly_bytes_per_user.quantile(0.9) / 1000.0);
        }
        if (!opts.csv_dir.empty()) fig.write_csv(opts.csv_dir);
        std::printf("[result] fig3c: %s\n",
                    fig.all_pass() ? "ALL CHECKS PASS" : "CHECK FAILURES");
        return 0;
      });
}
