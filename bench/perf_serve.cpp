// Google-benchmark performance suite for the always-on query layer:
// answer latency per query kind and closed-loop throughput as a function
// of reader-thread count.
//
// Two modes:
//   perf_serve                      # normal google-benchmark run
//   perf_serve --emit-json[=PATH]   # mix x reader sweep -> BENCH_serve.json
//
// The JSON mode replays a fixed synthetic capture through the live engine
// once, publishing periodic snapshots into a serve::SnapshotStore, then
// measures queries/sec for each query mix at readers ∈ {1, 2, 4, 8}.
// Each reader runs closed-loop (issue, wait for the answer, issue the
// next), cycling through its mix — the aggregate rate is what a dashboard
// fleet would see.  A background writer republishes snapshots throughout
// the sweep so the numbers include the RCU publication traffic readers
// ride through; hardware_concurrency is recorded because a reader sweep
// is flat on a single core no matter how good the store is.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "live/engine.h"
#include "live/replayer.h"
#include "serve/query_engine.h"
#include "serve/snapshot_store.h"
#include "simnet/simulator.h"
#include "util/sim_time.h"

namespace {

using namespace wearscope;

const simnet::SimResult& shared_capture() {
  static const simnet::SimResult sim = [] {
    simnet::SimConfig cfg;
    cfg.seed = 7;
    cfg.wearable_users = 400;
    cfg.control_users = 800;
    cfg.through_device_users = 100;
    cfg.detailed_days = 14;
    cfg.cities = 6;
    cfg.sectors_per_city = 12;
    cfg.long_tail_apps = 60;
    return simnet::Simulator(cfg).run();
  }();
  return sim;
}

/// The master store every benchmark reads: one replay of the shared
/// capture, snapshots every 14 simulated days plus the final drain epoch.
serve::SnapshotStore& shared_store() {
  static serve::SnapshotStore store(64);
  static const bool populated = [] {
    const simnet::SimResult& sim = shared_capture();
    live::LiveOptions opt;
    opt.shards = 2;
    opt.observation_days = sim.observation_days;
    opt.detailed_start_day = sim.detailed_start_day;
    opt.long_tail_apps = sim.config.long_tail_apps;
    live::LiveEngine engine(sim.store.devices, opt);
    live::ReplayOptions ropt;
    ropt.snapshot_every_s = 14 * util::kSecondsPerDay;
    ropt.on_snapshot = [](live::LiveSnapshot snap) {
      store.publish(std::move(snap));
    };
    live::FeedReplayer(sim.store, ropt).replay(engine);
    store.publish(engine.stop(), /*final_epoch=*/true);
    return true;
  }();
  (void)populated;
  return store;
}

struct QueryMix {
  const char* name;
  std::vector<std::string> queries;
};

/// The sweep's workload shapes: cheap point lookups, row-heavy top-K
/// scans, and the dashboard blend (current + historical epochs).
std::vector<QueryMix> query_mixes() {
  return {
      {"adoption", {"adoption"}},
      {"topk", {"top-apps 10", "sectors 10"}},
      {"mixed",
       {"adoption", "activity", "top-apps 10", "sectors 10", "quarantine",
        "epochs", "adoption @0", "top-apps 5 @3"}},
  };
}

/// Closed loop: `readers` threads each answer `per_reader` queries,
/// cycling through `mix`, while a writer keeps publishing fresh epochs at
/// a steady cadence (so the numbers include the RCU publication traffic
/// readers ride through).  Returns aggregate queries/sec.
///
/// Each run gets its own window, seeded from the master store, sized so
/// the writer never evicts the historical epochs the mixed workload
/// queries — eviction mid-run would silently swap @EPOCH answers for
/// cheap ERR lines and inflate the rate.
double closed_loop_qps(const QueryMix& mix, std::size_t readers,
                       std::uint64_t per_reader) {
  using Clock = std::chrono::steady_clock;
  serve::SnapshotStore& master = shared_store();
  serve::SnapshotStore store(4096);
  const std::vector<std::uint64_t> epochs = master.retained_epochs();
  for (std::size_t i = 0; i < epochs.size(); ++i) {
    const serve::SnapshotRef ref = master.at_epoch(epochs[i]);
    store.publish(live::LiveSnapshot(ref->snap),
                  /*final_epoch=*/i + 1 == epochs.size());
  }
  serve::QueryEngine engine(store);

  std::atomic<bool> stop_writer{false};
  std::thread writer([&] {
    live::LiveSnapshot snap = store.latest()->snap;
    constexpr int kMaxPublishes = 3'500;  // stay under the window size
    for (int i = 0;
         i < kMaxPublishes && !stop_writer.load(std::memory_order_acquire);
         ++i) {
      snap.epoch += 1;
      store.publish(live::LiveSnapshot(snap), /*final_epoch=*/true);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  const Clock::time_point t0 = Clock::now();
  std::vector<std::thread> pool;
  pool.reserve(readers);
  for (std::size_t r = 0; r < readers; ++r) {
    pool.emplace_back([&, r] {
      std::size_t qi = r % mix.queries.size();
      for (std::uint64_t i = 0; i < per_reader; ++i) {
        const std::string answer = engine.answer(mix.queries[qi]);
        benchmark::DoNotOptimize(answer.size());
        qi = (qi + 1) % mix.queries.size();
      }
    });
  }
  for (std::thread& t : pool) t.join();
  const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
  stop_writer.store(true, std::memory_order_release);
  writer.join();
  return secs > 0.0
             ? static_cast<double>(per_reader * readers) / secs
             : 0.0;
}

void BM_AnswerAdoption(benchmark::State& state) {
  serve::QueryEngine engine(shared_store());
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.answer("adoption").size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AnswerAdoption);

void BM_AnswerTopApps(benchmark::State& state) {
  serve::QueryEngine engine(shared_store());
  const std::string query = "top-apps " + std::to_string(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.answer(query).size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AnswerTopApps)->Arg(10)->Arg(50);

void BM_AnswerHistorical(benchmark::State& state) {
  // @epoch answers walk the retention window under the mutex — the slow
  // path the RCU latest() pointer exists to avoid.
  serve::QueryEngine engine(shared_store());
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.answer("adoption @3").size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AnswerHistorical);

void BM_ClosedLoopMixed(benchmark::State& state) {
  const QueryMix mix = query_mixes().back();  // "mixed"
  const auto readers = static_cast<std::size_t>(state.range(0));
  constexpr std::uint64_t kPerReader = 2'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(closed_loop_qps(mix, readers, kPerReader));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(kPerReader * readers) *
                          state.iterations());
}
BENCHMARK(BM_ClosedLoopMixed)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/// --emit-json mode: mix x reader sweep, best of `kReps` runs per point.
int emit_json(const std::string& path) {
  constexpr int kReps = 3;
  constexpr std::uint64_t kPerReader = 10'000;
  const std::vector<std::size_t> reader_counts = {1, 2, 4, 8};
  const std::vector<QueryMix> mixes = query_mixes();

  shared_store();  // build outside the timed region

  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"perf_serve\",\n");
  bench::emit_hardware_concurrency(out);
  std::fprintf(out, "  \"epochs_retained\": %zu,\n",
               shared_store().retained_epochs().size());
  std::fprintf(out, "  \"queries_per_reader\": %llu,\n",
               static_cast<unsigned long long>(kPerReader));
  std::fprintf(out, "  \"sweep\": [\n");
  for (std::size_t m = 0; m < mixes.size(); ++m) {
    for (std::size_t r = 0; r < reader_counts.size(); ++r) {
      const std::size_t readers = reader_counts[r];
      double best_qps = 0.0;
      for (int rep = 0; rep < kReps; ++rep) {
        best_qps = std::max(best_qps,
                            closed_loop_qps(mixes[m], readers, kPerReader));
      }
      const bool last =
          m + 1 == mixes.size() && r + 1 == reader_counts.size();
      std::fprintf(out,
                   "    {\"mix\": \"%s\", \"readers\": %zu, "
                   "\"queries_per_sec\": %.0f}%s\n",
                   mixes[m].name, readers, best_qps, last ? "" : ",");
      std::printf("mix=%s readers=%zu: %.0f queries/s\n", mixes[m].name,
                  readers, best_qps);
    }
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--emit-json", 11) == 0) {
      const char* eq = std::strchr(argv[i], '=');
      return emit_json(eq != nullptr ? eq + 1 : "BENCH_serve.json");
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
