// Regenerates Fig. 4(a): per-user daily traffic of wearable owners vs the
// remaining customers (+26% data, +48% transactions).
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace wearscope;
  return bench::run_custom_main(
      argc, argv, "fig4a: owner vs remaining-customer traffic (paper Fig. 4a)",
      [](const bench::BenchOptions& opts) {
        const bench::PipelineRun run = bench::run_pipeline(opts);
        const core::FigureData& fig = run.report.figure("fig4a");
        std::fputs(fig.to_text().c_str(), stdout);
        if (!opts.quiet) {
          const core::ComparisonResult& r = run.report.comparison;
          std::printf("-- per-user daily bytes (normalized by max user) --\n");
          for (const double q : {0.25, 0.5, 0.75, 0.9, 0.99}) {
            std::printf("   p%-4.0f owners=%.5f others=%.5f\n", q * 100,
                        r.owner_daily_bytes_norm.quantile(q),
                        r.other_daily_bytes_norm.quantile(q));
          }
          std::printf("   owners sampled: %zu; others: %zu\n",
                      r.owner_daily_bytes_norm.size(),
                      r.other_daily_bytes_norm.size());
        }
        if (!opts.csv_dir.empty()) fig.write_csv(opts.csv_dir);
        std::printf("[result] fig4a: %s\n",
                    fig.all_pass() ? "ALL CHECKS PASS" : "CHECK FAILURES");
        return 0;
      });
}
