// Extension (§4.1): per-device-model cohort breakdown — "most users are
// using LG and Samsung SIM-enabled watches", quantified.
#include <cstdio>

#include "bench_common.h"
#include "util/ascii_chart.h"

int main(int argc, char** argv) {
  using namespace wearscope;
  return bench::run_custom_main(
      argc, argv, "ext: device-model cohorts (§4.1 vendor mix)",
      [](const bench::BenchOptions& opts) {
        const bench::PipelineRun run = bench::run_pipeline(opts);
        const core::FigureData& fig = run.report.figure("cohorts");
        std::fputs(fig.to_text().c_str(), stdout);
        if (!opts.quiet) {
          const core::CohortResult& r = run.report.cohorts;
          std::printf("-- per-model cohort table --\n");
          std::vector<std::vector<std::string>> rows;
          for (const core::ModelCohort& c : r.models) {
            rows.push_back({c.manufacturer + " " + c.model, c.os,
                            std::to_string(c.users),
                            std::to_string(c.active_users),
                            util::format_num(c.bytes / 1e6, 1),
                            util::format_num(c.mean_active_days, 1)});
          }
          std::fputs(util::table({"model", "OS", "users", "active", "MB",
                                  "days/user"},
                                 rows)
                         .c_str(),
                     stdout);
          std::printf("-- manufacturer shares --\n");
          std::vector<util::Bar> bars;
          for (const auto& [vendor, share] : r.manufacturer_share) {
            bars.push_back({vendor, 100.0 * share});
          }
          std::fputs(util::bar_chart(bars, 40).c_str(), stdout);
        }
        if (!opts.csv_dir.empty()) fig.write_csv(opts.csv_dir);
        std::printf("[result] ext_device_cohorts: %s\n",
                    fig.all_pass() ? "ALL CHECKS PASS" : "CHECK FAILURES");
        return 0;
      });
}
