// Regenerates Fig. 8: share of users, transaction frequency and data for
// the four endpoint classes (Application / Utilities / Advertising /
// Analytics) of wearable traffic.
#include <cstdio>

#include "bench_common.h"
#include "util/ascii_chart.h"

int main(int argc, char** argv) {
  using namespace wearscope;
  return bench::run_custom_main(
      argc, argv, "fig8: third-party service classes (paper Fig. 8)",
      [](const bench::BenchOptions& opts) {
        const bench::PipelineRun run = bench::run_pipeline(opts);
        const core::FigureData& fig = run.report.figure("fig8");
        std::fputs(fig.to_text().c_str(), stdout);
        if (!opts.quiet) {
          const core::ThirdPartyResult& r = run.report.thirdparty;
          std::vector<std::vector<std::string>> rows;
          for (const core::ClassStats& s : r.classes) {
            rows.push_back(
                {std::string(appdb::transaction_class_name(s.cls)),
                 util::format_num(s.user_share_pct, 2),
                 util::format_num(s.txn_share_pct, 2),
                 util::format_num(s.data_share_pct, 2)});
          }
          std::fputs(
              util::table({"class", "users%", "frequency%", "data%"}, rows)
                  .c_str(),
              stdout);
          std::printf(
              "   first-party vs third-party data volume ratio: %.2f\n",
              r.app_over_thirdparty_data);
        }
        if (!opts.csv_dir.empty()) fig.write_csv(opts.csv_dir);
        std::printf("[result] fig8: %s\n",
                    fig.all_pass() ? "ALL CHECKS PASS" : "CHECK FAILURES");
        return 0;
      });
}
