// Regenerates Fig. 3(b): CDFs of active days per week and active hours per
// day of transacting wearable users.
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace wearscope;
  return bench::run_custom_main(
      argc, argv, "fig3b: active days and hours (paper Fig. 3b)",
      [](const bench::BenchOptions& opts) {
        const bench::PipelineRun run = bench::run_pipeline(opts);
        const core::FigureData& fig = run.report.figure("fig3b");
        std::fputs(fig.to_text().c_str(), stdout);
        if (!opts.quiet) {
          bench::print_series(fig);
          const core::ActivityResult& r = run.report.activity;
          std::printf("   active days/week: mean=%.2f p50=%.2f p90=%.2f\n",
                      r.mean_active_days, r.active_days_per_week.quantile(0.5),
                      r.active_days_per_week.quantile(0.9));
          std::printf("   active hours/day: mean=%.2f p50=%.2f p90=%.2f\n",
                      r.mean_active_hours,
                      r.active_hours_per_day.quantile(0.5),
                      r.active_hours_per_day.quantile(0.9));
        }
        if (!opts.csv_dir.empty()) fig.write_csv(opts.csv_dir);
        std::printf("[result] fig3b: %s\n",
                    fig.all_pass() ? "ALL CHECKS PASS" : "CHECK FAILURES");
        return 0;
      });
}
