// Ablation: dwell-weighted vs visit-count location entropy (paper §4.4
// normalizes entropy "by the time a user stays in a single location"; this
// harness shows what the naive visit-count variant would have reported).
#include <cstdio>

#include "bench_common.h"
#include "core/analysis_mobility.h"
#include "core/context.h"
#include "util/ascii_chart.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace wearscope;
  return bench::run_custom_main(
      argc, argv, "ablation: entropy normalization (paper §4.4)",
      [](const bench::BenchOptions& opts) {
        const simnet::SimConfig cfg = bench::config_for_preset(
            opts.preset, static_cast<std::uint64_t>(opts.seed));
        const simnet::SimResult sim = simnet::Simulator(cfg).run();
        core::AnalysisOptions aopt;
        aopt.observation_days = sim.observation_days;
        aopt.detailed_start_day = sim.detailed_start_day;
        aopt.long_tail_apps = cfg.long_tail_apps;
        const core::AnalysisContext ctx(sim.store, aopt);

        std::printf("== ablation: entropy normalization ==\n");
        std::vector<std::vector<std::string>> rows;
        for (const core::EntropyNorm norm :
             {core::EntropyNorm::kDwellWeighted,
              core::EntropyNorm::kVisitCount}) {
          util::OnlineStats wearable;
          util::OnlineStats all;
          for (const core::UserView& u : ctx.users()) {
            if (u.mme.empty()) continue;
            const double h = core::user_location_entropy(ctx, u, norm);
            all.add(h);
            if (u.has_wearable) wearable.add(h);
          }
          const double ratio = all.mean() > 0 ? wearable.mean() / all.mean() : 0;
          rows.push_back({norm == core::EntropyNorm::kDwellWeighted
                              ? "dwell-weighted (paper)"
                              : "visit-count (naive)",
                          util::format_num(wearable.mean(), 3),
                          util::format_num(all.mean(), 3),
                          util::format_num(ratio, 3)});
        }
        std::fputs(util::table({"normalization", "wearable bits", "all bits",
                                "ratio"},
                               rows)
                       .c_str(),
                   stdout);
        std::printf(
            "note: visit counts over-weight brief handovers; dwell\n"
            "weighting is what makes the +70%% gap attributable to where\n"
            "users actually spend time.\n");
        return 0;
      });
}
