// Ablation: sensitivity of the per-usage statistics (Fig. 7) to the
// sessionization gap.  The paper fixes the gap at 60 s ("two consecutive
// transactions at least one minute apart"); this harness sweeps it and
// shows how usage counts and per-usage volumes respond.
#include <cstdio>

#include "bench_common.h"
#include "core/context.h"
#include "util/ascii_chart.h"

int main(int argc, char** argv) {
  using namespace wearscope;
  return bench::run_custom_main(
      argc, argv,
      "ablation: sessionization-gap sweep (paper §5.1 usage definition)",
      [](const bench::BenchOptions& opts) {
        const simnet::SimConfig cfg = bench::config_for_preset(
            opts.preset, static_cast<std::uint64_t>(opts.seed));
        const simnet::SimResult sim = simnet::Simulator(cfg).run();

        std::printf("== ablation: usage gap sweep ==\n");
        std::vector<std::vector<std::string>> rows;
        for (const util::SimTime gap : {15, 30, 60, 120, 300}) {
          core::AnalysisOptions aopt;
          aopt.observation_days = sim.observation_days;
          aopt.detailed_start_day = sim.detailed_start_day;
          aopt.long_tail_apps = cfg.long_tail_apps;
          aopt.usage_gap_s = gap;
          const core::AnalysisContext ctx(sim.store, aopt);
          const core::UsageResult usage = core::analyze_usage(ctx);

          std::size_t total_usages = 0;
          double txn_sum = 0.0;
          double kb_sum = 0.0;
          for (const core::PerUsageStats& s : usage.apps) {
            total_usages += s.usages;
            txn_sum += s.mean_txns_per_usage * static_cast<double>(s.usages);
            kb_sum += s.mean_kb_per_usage * static_cast<double>(s.usages);
          }
          const double n = std::max<double>(1.0, static_cast<double>(total_usages));
          rows.push_back({std::to_string(gap) + "s",
                          std::to_string(total_usages),
                          util::format_num(txn_sum / n, 2),
                          util::format_num(kb_sum / n, 1),
                          usage.apps.empty() ? "-" : usage.apps.front().name});
        }
        std::fputs(util::table({"gap", "usages", "txns/usage", "KB/usage",
                                "top app by data"},
                               rows)
                       .c_str(),
                   stdout);
        std::printf(
            "note: shorter gaps split usages (more, smaller); the paper's\n"
            "60 s sits on the plateau because generated intra-usage gaps\n"
            "stay below ~55 s by construction of the traffic profiles.\n");
        return 0;
      });
}
