// Google-benchmark performance suite for the columnar work: the v3
// struct-of-arrays analysis kernels against their row-scan references,
// v2-vs-v3 encode/decode throughput, and the bounded-memory sketch
// aggregates against their exact counterparts.
//
// `--emit-json[=PATH]` skips google-benchmark and writes the kernel
// rows-vs-columnar comparison, the encode/decode sweep and the
// sketch-vs-exact deltas to BENCH_columnar.json.  The speedups recorded
// there back the claim the columnar rewrite makes: the hottest analyze_*
// kernels beat the v2 row scans they replaced, on the same context.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <span>
#include <sstream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bench_common.h"
#include "core/analysis_activity.h"
#include "core/analysis_adoption.h"
#include "core/analysis_diurnal.h"
#include "core/analysis_thirdparty.h"
#include "core/analysis_usage.h"
#include "core/context.h"
#include "par/task_pool.h"
#include "simnet/simulator.h"
#include "sketch/countmin.h"
#include "sketch/hll.h"
#include "sketch/tdigest.h"
#include "trace/block_io.h"
#include "trace/columnar_io.h"
#include "util/sim_time.h"
#include "util/stats.h"

namespace {

using namespace wearscope;

const simnet::SimResult& shared_capture() {
  static const simnet::SimResult sim = [] {
    simnet::SimConfig cfg;
    cfg.seed = 2;
    cfg.wearable_users = 400;
    cfg.control_users = 800;
    cfg.through_device_users = 100;
    cfg.detailed_days = 14;
    cfg.cities = 6;
    cfg.sectors_per_city = 12;
    cfg.long_tail_apps = 60;
    return simnet::Simulator(cfg).run();
  }();
  return sim;
}

/// One shared context with the column views already materialized, so the
/// kernel timings compare scan strategies, not lazy build cost.
const core::AnalysisContext& shared_context() {
  static const core::AnalysisContext& ctx = []() -> const auto& {
    const simnet::SimResult& sim = shared_capture();
    core::AnalysisOptions opt;
    opt.observation_days = sim.observation_days;
    opt.detailed_start_day = sim.detailed_start_day;
    opt.long_tail_apps = sim.config.long_tail_apps;
    static const core::AnalysisContext context(sim.store, opt);
    context.store().build_columns();
    return context;
  }();
  return ctx;
}

/// The five rewritten kernels, each in both scan strategies.
struct KernelPair {
  const char* name;
  std::function<void(const core::AnalysisContext&)> rows;
  std::function<void(const core::AnalysisContext&)> columnar;
};

const std::vector<KernelPair>& kernel_pairs() {
  static const std::vector<KernelPair> kernels = {
      {"adoption",
       [](const core::AnalysisContext& c) {
         benchmark::DoNotOptimize(core::analyze_adoption_rows(c));
       },
       [](const core::AnalysisContext& c) {
         benchmark::DoNotOptimize(core::analyze_adoption(c));
       }},
      {"activity",
       [](const core::AnalysisContext& c) {
         benchmark::DoNotOptimize(core::analyze_activity_rows(c));
       },
       [](const core::AnalysisContext& c) {
         benchmark::DoNotOptimize(core::analyze_activity(c));
       }},
      {"diurnal",
       [](const core::AnalysisContext& c) {
         benchmark::DoNotOptimize(core::analyze_diurnal_rows(c));
       },
       [](const core::AnalysisContext& c) {
         benchmark::DoNotOptimize(core::analyze_diurnal(c));
       }},
      {"usage",
       [](const core::AnalysisContext& c) {
         benchmark::DoNotOptimize(core::analyze_usage_rows(c));
       },
       [](const core::AnalysisContext& c) {
         benchmark::DoNotOptimize(core::analyze_usage(c));
       }},
      {"thirdparty",
       [](const core::AnalysisContext& c) {
         benchmark::DoNotOptimize(core::analyze_thirdparty_rows(c));
       },
       [](const core::AnalysisContext& c) {
         benchmark::DoNotOptimize(core::analyze_thirdparty(c));
       }},
  };
  return kernels;
}

trace::BlockWriterOptions bench_block_options() {
  trace::BlockWriterOptions options;
  options.max_block_records = 1024;
  return options;
}

const std::string& v2_blob() {
  static const std::string blob = [] {
    std::ostringstream out;
    trace::BlockLogWriter<trace::ProxyRecord> writer(out,
                                                     bench_block_options());
    for (const trace::ProxyRecord& r : shared_capture().store.proxy)
      writer.write(r);
    writer.finish();
    return out.str();
  }();
  return blob;
}

const std::string& v3_blob() {
  static const std::string blob = [] {
    std::ostringstream out;
    (void)trace::write_columnar_log(out, shared_capture().store.proxy,
                                    bench_block_options());
    return out.str();
  }();
  return blob;
}

std::span<const std::byte> blob_bytes(const std::string& blob) {
  return std::as_bytes(std::span<const char>(blob.data(), blob.size()));
}

void BM_KernelRows(benchmark::State& state) {
  const KernelPair& k = kernel_pairs()[static_cast<std::size_t>(
      state.range(0))];
  const core::AnalysisContext& ctx = shared_context();
  state.SetLabel(k.name);
  for (auto _ : state) k.rows(ctx);
}
BENCHMARK(BM_KernelRows)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

void BM_KernelColumnar(benchmark::State& state) {
  const KernelPair& k = kernel_pairs()[static_cast<std::size_t>(
      state.range(0))];
  const core::AnalysisContext& ctx = shared_context();
  state.SetLabel(k.name);
  for (auto _ : state) k.columnar(ctx);
}
BENCHMARK(BM_KernelColumnar)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

void BM_V3Encode(benchmark::State& state) {
  const auto& records = shared_capture().store.proxy;
  for (auto _ : state) {
    std::ostringstream out;
    (void)trace::write_columnar_log(out, records, bench_block_options());
    benchmark::DoNotOptimize(out.str().size());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(records.size()) * state.iterations());
}
BENCHMARK(BM_V3Encode)->Unit(benchmark::kMillisecond);

void BM_V3Decode(benchmark::State& state) {
  const auto& records = shared_capture().store.proxy;
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  par::TaskPool pool(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trace::read_binary_log<trace::ProxyRecord>(
            blob_bytes(v3_blob()), threads > 1 ? &pool : nullptr)
            .size());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(records.size()) * state.iterations());
  state.SetBytesProcessed(
      static_cast<std::int64_t>(v3_blob().size()) * state.iterations());
}
BENCHMARK(BM_V3Decode)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_SketchIngest(benchmark::State& state) {
  // The per-record cost of the bounded-memory live mode: one HLL add, one
  // t-digest add and one heavy-hitter add per wearable transaction.
  const auto& records = shared_capture().store.proxy;
  for (auto _ : state) {
    sketch::Hll users;
    sketch::TDigest sizes;
    sketch::HeavyHitters apps;
    for (const trace::ProxyRecord& r : records) {
      users.add(r.user_id);
      sizes.add(static_cast<double>(r.bytes_total()));
      apps.add(r.host);
    }
    benchmark::DoNotOptimize(users.estimate());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(records.size()) * state.iterations());
}
BENCHMARK(BM_SketchIngest)->Unit(benchmark::kMillisecond);

/// Sketch-vs-exact deltas over the capture's wearable traffic — the same
/// populations the live gate tests pin: registered users (wearable MME),
/// detailed-window transaction sizes, per-app transaction counts.
struct SketchDeltas {
  std::size_t exact_users = 0;
  double hll_estimate = 0.0;
  double hll_error_pct = 0.0;
  double p50_error_pct = 0.0;
  double p95_error_pct = 0.0;
  double p99_error_pct = 0.0;
  bool topk_superset = true;
  std::size_t sketch_bytes = 0;
};

SketchDeltas sketch_vs_exact() {
  const simnet::SimResult& sim = shared_capture();
  const core::AnalysisContext& ctx = shared_context();
  const util::SimTime detailed_start = util::day_start(sim.detailed_start_day);

  sketch::Hll hll;
  std::unordered_set<trace::UserId> exact_users;
  for (const trace::MmeRecord& r : sim.store.mme) {
    if (!ctx.devices().is_wearable(r.tac)) continue;
    hll.add(r.user_id);
    exact_users.insert(r.user_id);
  }

  sketch::TDigest digest;
  sketch::HeavyHitters hitters;
  std::vector<double> sizes;
  std::unordered_map<std::string, std::uint64_t> exact_apps;
  core::HostClassCache host_class(ctx.signatures());
  for (const trace::ProxyRecord& r : sim.store.proxy) {
    if (!ctx.devices().is_wearable(r.tac)) continue;
    if (r.timestamp >= detailed_start) {
      digest.add(static_cast<double>(r.bytes_total()));
      sizes.push_back(static_cast<double>(r.bytes_total()));
    }
    const core::EndpointClass cls = host_class.classify(r.host);
    if (cls.cls != appdb::TransactionClass::kApplication) continue;
    const std::string name(ctx.signatures().app_name(cls.app));
    hitters.add(name);
    exact_apps[name] += 1;
  }
  const util::Ecdf ecdf(std::move(sizes));

  SketchDeltas d;
  d.exact_users = exact_users.size();
  d.hll_estimate = hll.estimate();
  d.hll_error_pct =
      exact_users.empty()
          ? 0.0
          : 100.0 * std::abs(d.hll_estimate -
                             static_cast<double>(exact_users.size())) /
                static_cast<double>(exact_users.size());
  const auto q_err = [&](double q) {
    const double exact = ecdf.quantile(q);
    return exact > 0.0 ? 100.0 * std::abs(digest.quantile(q) - exact) / exact
                       : 0.0;
  };
  d.p50_error_pct = q_err(0.50);
  d.p95_error_pct = q_err(0.95);
  d.p99_error_pct = q_err(0.99);

  // Top-K superset: every app strictly heavier than the exact K-th count
  // must surface in the sketch's top K (ties at the boundary may fall
  // either side).
  constexpr std::size_t kTop = 10;
  std::vector<std::uint64_t> counts;
  counts.reserve(exact_apps.size());
  for (const auto& [name, count] : exact_apps) counts.push_back(count);
  std::sort(counts.begin(), counts.end(), std::greater<>());
  const std::uint64_t kth =
      counts.size() < kTop ? 0 : counts[kTop - 1];
  std::unordered_set<std::string> reported;
  for (const auto& [name, count] : hitters.top(kTop)) reported.insert(name);
  // Order-independent conjunction: any missing heavy app flips the flag,
  // regardless of the order the apps are visited in.
  // wearscope-lint: allow(unordered-emit)
  for (const auto& [name, count] : exact_apps) {
    if (count > kth && !reported.contains(name)) d.topk_superset = false;
  }

  d.sketch_bytes =
      hll.memory_bytes() + digest.memory_bytes() + hitters.memory_bytes();
  return d;
}

/// --emit-json mode: rows-vs-columnar kernel wall clock, the v2/v3
/// encode/decode comparison (with a v3 decoder thread sweep), and the
/// sketch-vs-exact deltas, best of `kReps` runs per timed point.
int emit_json(const std::string& path) {
  using Clock = std::chrono::steady_clock;
  constexpr int kReps = 5;
  const std::vector<std::size_t> thread_counts = {1, 2, 4, 8};

  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 1;
  }
  const simnet::SimResult& sim = shared_capture();
  const core::AnalysisContext& ctx = shared_context();

  const auto best_of = [&](const auto& fn) {
    double best_ms = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      const Clock::time_point t0 = Clock::now();
      fn();
      const double ms =
          std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
      if (rep == 0 || ms < best_ms) best_ms = ms;
    }
    return best_ms;
  };

  std::fprintf(out, "{\n  \"bench\": \"perf_columnar\",\n");
  std::fprintf(out, "  \"records\": %llu,\n",
               static_cast<unsigned long long>(sim.store.proxy.size() +
                                               sim.store.mme.size()));

  std::fprintf(out, "  \"kernels\": [\n");
  for (std::size_t i = 0; i < kernel_pairs().size(); ++i) {
    const KernelPair& k = kernel_pairs()[i];
    const double rows_ms = best_of([&] { k.rows(ctx); });
    const double columnar_ms = best_of([&] { k.columnar(ctx); });
    const double speedup = columnar_ms > 0.0 ? rows_ms / columnar_ms : 0.0;
    std::fprintf(out,
                 "    {\"kernel\": \"%s\", \"rows_ms\": %.3f, "
                 "\"columnar_ms\": %.3f, \"speedup\": %.2f}%s\n",
                 k.name, rows_ms, columnar_ms, speedup,
                 i + 1 < kernel_pairs().size() ? "," : "");
    std::printf("%-10s rows %.3f ms, columnar %.3f ms (%.2fx)\n", k.name,
                rows_ms, columnar_ms, speedup);
  }
  std::fprintf(out, "  ],\n");

  const double v2_encode_ms = best_of([&] {
    std::ostringstream enc;
    trace::BlockLogWriter<trace::ProxyRecord> writer(enc,
                                                     bench_block_options());
    for (const trace::ProxyRecord& r : sim.store.proxy) writer.write(r);
    writer.finish();
    benchmark::DoNotOptimize(enc.str().size());
  });
  const double v3_encode_ms = best_of([&] {
    std::ostringstream enc;
    (void)trace::write_columnar_log(enc, sim.store.proxy,
                                    bench_block_options());
    benchmark::DoNotOptimize(enc.str().size());
  });
  std::fprintf(out,
               "  \"encode\": {\"v2_ms\": %.2f, \"v3_ms\": %.2f, "
               "\"v2_bytes\": %llu, \"v3_bytes\": %llu},\n",
               v2_encode_ms, v3_encode_ms,
               static_cast<unsigned long long>(v2_blob().size()),
               static_cast<unsigned long long>(v3_blob().size()));
  std::printf("encode: v2 %.2f ms (%zu bytes), v3 %.2f ms (%zu bytes)\n",
              v2_encode_ms, v2_blob().size(), v3_encode_ms, v3_blob().size());

  std::fprintf(out, "  \"decode\": [\n");
  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    const std::size_t threads = thread_counts[i];
    par::TaskPool pool(threads);
    par::TaskPool* pool_ptr = threads > 1 ? &pool : nullptr;
    const double v2_ms = best_of([&] {
      benchmark::DoNotOptimize(trace::read_binary_log<trace::ProxyRecord>(
                                   blob_bytes(v2_blob()), pool_ptr)
                                   .size());
    });
    const double v3_ms = best_of([&] {
      benchmark::DoNotOptimize(trace::read_binary_log<trace::ProxyRecord>(
                                   blob_bytes(v3_blob()), pool_ptr)
                                   .size());
    });
    std::fprintf(out,
                 "    {\"threads\": %zu, \"v2_ms\": %.2f, \"v3_ms\": %.2f, "
                 "\"v3_speedup_vs_v2\": %.2f}%s\n",
                 threads, v2_ms, v3_ms, v3_ms > 0.0 ? v2_ms / v3_ms : 0.0,
                 i + 1 < thread_counts.size() ? "," : "");
    std::printf("decode, %zu thread(s): v2 %.2f ms, v3 %.2f ms\n", threads,
                v2_ms, v3_ms);
  }
  std::fprintf(out, "  ],\n");

  const SketchDeltas d = sketch_vs_exact();
  std::fprintf(out,
               "  \"sketch\": {\"exact_distinct_users\": %zu, "
               "\"hll_estimate\": %.1f, \"hll_error_pct\": %.3f, "
               "\"p50_error_pct\": %.3f, \"p95_error_pct\": %.3f, "
               "\"p99_error_pct\": %.3f, \"topk_superset\": %s, "
               "\"sketch_bytes\": %zu},\n",
               d.exact_users, d.hll_estimate, d.hll_error_pct,
               d.p50_error_pct, d.p95_error_pct, d.p99_error_pct,
               d.topk_superset ? "true" : "false", d.sketch_bytes);
  std::printf("sketch: users %zu exact vs %.1f HLL (%.2f%%), txn-size "
              "quantile errors p50 %.2f%% p95 %.2f%% p99 %.2f%%, top-10 "
              "superset %s, %zu sketch bytes\n",
              d.exact_users, d.hll_estimate, d.hll_error_pct, d.p50_error_pct,
              d.p95_error_pct, d.p99_error_pct,
              d.topk_superset ? "yes" : "NO", d.sketch_bytes);

  // Peak RSS last: it is a high-water mark over everything measured above.
  bench::emit_hardware_concurrency(out);
  std::fprintf(out, "  \"done\": true\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--emit-json", 11) == 0) {
      const char* eq = std::strchr(argv[i], '=');
      return emit_json(eq != nullptr ? eq + 1 : "BENCH_columnar.json");
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
