// Regenerates Fig. 5(b): per-app frequency of usage, transactions and data
// per day (shares of the daily total).
#include "bench_common.h"

int main(int argc, char** argv) {
  return wearscope::bench::run_figure_main(
      argc, argv, "fig5b",
      "fig5b: app usage frequency, transactions and data (paper Fig. 5b)");
}
