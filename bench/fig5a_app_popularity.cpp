// Regenerates Fig. 5(a): per-app daily associated users and app-used days
// (named-app ranking, log scale), plus the §4.3 per-user app statistics.
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace wearscope;
  return bench::run_custom_main(
      argc, argv, "fig5a: app popularity ranking (paper Fig. 5a)",
      [](const bench::BenchOptions& opts) {
        const bench::PipelineRun run = bench::run_pipeline(opts);
        const core::FigureData& fig = run.report.figure("fig5a");
        std::fputs(fig.to_text().c_str(), stdout);
        if (!opts.quiet) {
          bench::print_series(fig, /*log_scale=*/true, /*limit=*/25);
          const core::AppPopularityResult& r = run.report.apps;
          std::printf("   apps observed per user: mean=%.1f max=%.0f\n",
                      r.mean_apps_per_user, r.max_apps_per_user);
          std::printf("   unknown (unmapped) traffic: %.1f%%\n",
                      100.0 * r.unknown_traffic_fraction);
        }
        if (!opts.csv_dir.empty()) fig.write_csv(opts.csv_dir);
        std::printf("[result] fig5a: %s\n",
                    fig.all_pass() ? "ALL CHECKS PASS" : "CHECK FAILURES");
        return 0;
      });
}
