// Google-benchmark performance suite for federated partitioned ingest:
// partial-snapshot encode/decode cost and N-way federated merge.
//
// Three modes:
//   perf_fed                       # normal google-benchmark run
//   perf_fed --emit-json[=PATH]    # partition sweep -> BENCH_fed.json
//   perf_fed --partition-worker …  # internal: one partition as a process
//
// The JSON mode is the memory story of federation: it re-executes itself
// (fork + exec /proc/self/exe) once per partition so every partition is a
// real OS process whose getrusage peak RSS is its own — RUSAGE_SELF in a
// shared parent would only ever report the running maximum across
// partitions.  Workers run sequentially; the sweep reports the as-if-
// parallel ingest wall (max across workers), the timed parallel load +
// merge, and the per-partition RSS peaks whose drop with N is the point
// of partitioning (each process holds ~1/N of the exact per-user state).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#if defined(__unix__)
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "bench_common.h"
#include "fed/feed_filter.h"
#include "fed/merge.h"
#include "fed/partial_io.h"
#include "live/engine.h"
#include "live/replayer.h"
#include "simnet/config_io.h"
#include "simnet/simulator.h"
#include "trace/bundle.h"
#include "util/error.h"

namespace {

using namespace wearscope;

/// Worker shards inside each partition process (fixed across the sweep so
/// the only variable is the partition count).
constexpr std::size_t kWorkerShards = 2;

const simnet::SimResult& shared_capture() {
  static const simnet::SimResult sim = [] {
    simnet::SimConfig cfg;
    cfg.seed = 11;
    cfg.wearable_users = 400;
    cfg.control_users = 800;
    cfg.through_device_users = 100;
    cfg.detailed_days = 14;
    cfg.cities = 6;
    cfg.sectors_per_city = 12;
    cfg.long_tail_apps = 60;
    return simnet::Simulator(cfg).run();
  }();
  return sim;
}

live::LiveOptions partition_options(const simnet::SimConfig& cfg,
                                    int observation_days,
                                    int detailed_start_day,
                                    std::size_t partition_id,
                                    std::size_t partition_count) {
  live::LiveOptions opt;
  opt.shards = kWorkerShards;
  opt.observation_days = observation_days;
  opt.detailed_start_day = detailed_start_day;
  opt.long_tail_apps = cfg.long_tail_apps;
  opt.partition_id = partition_id;
  opt.partition_count = partition_count;
  opt.capture_tallies = true;
  return opt;
}

/// Runs one partition over `store` and returns its partial.
fed::PartialSnapshot run_partition(const trace::TraceStore& store,
                                   const live::LiveOptions& opt,
                                   std::uint64_t* records_pushed = nullptr) {
  live::LiveEngine engine(store.devices, opt);
  const live::FeedReplayer replayer(store, live::ReplayOptions{});
  const live::ReplayReport report = replayer.replay(engine);
  const live::LiveSnapshot snap = engine.stop();
  if (records_pushed != nullptr) *records_pushed = report.records_pushed;
  return fed::make_partial(snap, opt);
}

/// In-process partials of one N-way cover (for the benchmark suites; the
/// JSON sweep uses real processes instead).
std::vector<fed::PartialSnapshot> cover_partials(std::size_t partitions) {
  const simnet::SimResult& sim = shared_capture();
  std::vector<fed::PartialSnapshot> out;
  out.reserve(partitions);
  for (std::size_t i = 0; i < partitions; ++i) {
    out.push_back(run_partition(
        sim.store,
        partition_options(sim.config, sim.observation_days,
                          sim.detailed_start_day, i, partitions)));
  }
  return out;
}

void BM_PartialEncode(benchmark::State& state) {
  const fed::PartialSnapshot partial = cover_partials(1).front();
  for (auto _ : state) {
    std::string bytes = fed::encode_partial(partial);
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PartialEncode)->Unit(benchmark::kMillisecond);

void BM_PartialDecode(benchmark::State& state) {
  const std::string bytes = fed::encode_partial(cover_partials(1).front());
  const std::span<const std::byte> span =
      std::as_bytes(std::span(bytes.data(), bytes.size()));
  for (auto _ : state) {
    fed::PartialSnapshot partial = fed::decode_partial(span);
    benchmark::DoNotOptimize(partial.header.records);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes.size()) *
                          state.iterations());
}
BENCHMARK(BM_PartialDecode)->Unit(benchmark::kMillisecond);

void BM_FedMerge(benchmark::State& state) {
  const std::size_t partitions = static_cast<std::size_t>(state.range(0));
  const std::vector<fed::PartialSnapshot> partials =
      cover_partials(partitions);
  for (auto _ : state) {
    std::vector<fed::LoadedPartial> parts;
    parts.reserve(partials.size());
    for (const fed::PartialSnapshot& p : partials) {
      parts.push_back(fed::LoadedPartial{p, "mem"});
    }
    fed::MergeResult merged = fed::merge_partials(std::move(parts));
    benchmark::DoNotOptimize(merged.snapshot.adoption.ever_registered);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(shared_capture().store.proxy.size() +
                                shared_capture().store.mme.size()) *
      state.iterations());
}
BENCHMARK(BM_FedMerge)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

#if defined(__unix__)

/// Internal entry of a re-executed partition process:
///   --partition-worker <id> <count> <bundle_dir> <partial_dir> <stats>
/// Replays the bundle as partition id/count, persists the partial, and
/// writes "<peak_rss_bytes> <wall_s> <records>" to the stats file.
int partition_worker(int argc, char** argv) {
  try {
    util::require(argc == 7, "--partition-worker needs 5 operands");
    const std::size_t id = static_cast<std::size_t>(std::stoull(argv[2]));
    const std::size_t count = static_cast<std::size_t>(std::stoull(argv[3]));
    const std::filesystem::path bundle = argv[4];
    const std::filesystem::path partial_dir = argv[5];
    const std::filesystem::path stats_path = argv[6];

    const simnet::SimConfig cfg =
        simnet::load_config_file(bundle / "generator.cfg");
    const live::LiveOptions opt = partition_options(
        cfg, cfg.observation_days, cfg.observation_days - cfg.detailed_days,
        id, count);

    // Streaming filtered load: this process only ever materializes the
    // records its partition owns (fed/feed_filter.h), which is exactly
    // the per-process memory win the sweep measures.
    const auto t0 = std::chrono::steady_clock::now();
    const fed::PartitionFeed feed =
        fed::load_partition_feed(bundle, id, count);
    live::LiveEngine engine(feed.devices, opt);
    fed::replay_partition_feed(feed, engine);
    const live::LiveSnapshot snap = engine.stop();
    const fed::PartialSnapshot partial = fed::make_partial(snap, opt);
    const std::uint64_t pushed = feed.feed_records;
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    fed::write_partial_file(
        partial_dir / fed::partial_file_name(partial.header.partition_id,
                                             partial.header.partition_count,
                                             partial.header.epoch),
        partial);

    std::FILE* stats = std::fopen(stats_path.c_str(), "w");
    util::require(stats != nullptr, "cannot write worker stats file");
    std::fprintf(stats, "%zu %.9f %llu\n", bench::own_peak_rss_bytes(), wall,
                 static_cast<unsigned long long>(pushed));
    std::fclose(stats);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "partition worker error: %s\n", e.what());
    return 1;
  }
}

/// One worker process: fork + exec self, wait, parse its stats file.
struct WorkerStats {
  std::size_t peak_rss_bytes = 0;
  double wall_s = 0.0;
  std::uint64_t records = 0;
};

WorkerStats run_worker_process(const char* self, std::size_t id,
                               std::size_t count,
                               const std::filesystem::path& bundle,
                               const std::filesystem::path& partial_dir,
                               const std::filesystem::path& stats_path) {
  const std::string id_s = std::to_string(id);
  const std::string count_s = std::to_string(count);
  const std::string bundle_s = bundle.string();
  const std::string dir_s = partial_dir.string();
  const std::string stats_s = stats_path.string();
  const pid_t pid = fork();
  util::require(pid >= 0, "fork failed");
  if (pid == 0) {
    const char* args[] = {self,           "--partition-worker",
                          id_s.c_str(),   count_s.c_str(),
                          bundle_s.c_str(), dir_s.c_str(),
                          stats_s.c_str(), nullptr};
    execv(self, const_cast<char* const*>(args));
    std::perror("execv");
    _exit(127);
  }
  int status = 0;
  util::require(waitpid(pid, &status, 0) == pid, "waitpid failed");
  util::require(WIFEXITED(status) && WEXITSTATUS(status) == 0,
                "partition worker " + id_s + "/" + count_s + " failed");
  WorkerStats stats;
  std::FILE* in = std::fopen(stats_s.c_str(), "r");
  util::require(in != nullptr, "missing worker stats file");
  unsigned long long rss = 0;
  unsigned long long records = 0;
  const int fields =
      std::fscanf(in, "%llu %lf %llu", &rss, &stats.wall_s, &records);
  std::fclose(in);
  util::require(fields == 3, "malformed worker stats file");
  stats.peak_rss_bytes = static_cast<std::size_t>(rss);
  stats.records = records;
  return stats;
}

/// --emit-json mode: real-process partition sweep -> BENCH_fed.json.
int emit_json(const std::string& path, const char* self) {
  using Clock = std::chrono::steady_clock;
  const std::vector<std::size_t> partition_counts = {1, 2, 4, 8};

  const simnet::SimResult& sim = shared_capture();
  const std::filesystem::path work =
      std::filesystem::temp_directory_path() /
      ("wearscope_perf_fed_" + std::to_string(getpid()));
  const std::filesystem::path bundle = work / "bundle";
  std::filesystem::create_directories(bundle);
  trace::save_bundle(sim.store, bundle);
  simnet::save_config_file(sim.config, bundle / "generator.cfg");
  const std::uint64_t records =
      sim.store.proxy.size() + sim.store.mme.size();

  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"perf_fed\",\n");
  bench::emit_hardware_concurrency(out);
  std::fprintf(out, "  \"records\": %llu,\n",
               static_cast<unsigned long long>(records));
  std::fprintf(out, "  \"worker_shards\": %zu,\n", kWorkerShards);
  std::fprintf(out, "  \"partitions\": [\n");
  int rc = 0;
  for (std::size_t i = 0; i < partition_counts.size(); ++i) {
    const std::size_t count = partition_counts[i];
    const std::filesystem::path partial_dir =
        work / ("partials_" + std::to_string(count));
    std::filesystem::create_directories(partial_dir);

    std::vector<std::size_t> rss;
    double max_wall = 0.0;
    for (std::size_t id = 0; id < count; ++id) {
      const WorkerStats stats = run_worker_process(
          self, id, count, bundle, partial_dir,
          work / ("stats_" + std::to_string(count) + "_" +
                  std::to_string(id)));
      rss.push_back(stats.peak_rss_bytes);
      max_wall = std::max(max_wall, stats.wall_s);
    }

    std::vector<std::filesystem::path> paths;
    for (const auto& entry :
         std::filesystem::directory_iterator(partial_dir)) {
      paths.push_back(entry.path());
    }
    std::sort(paths.begin(), paths.end());
    const Clock::time_point t0 = Clock::now();
    const fed::MergeResult merged =
        fed::merge_partials(fed::load_partials(paths, count));
    const double merge_wall =
        std::chrono::duration<double>(Clock::now() - t0).count();
    util::require(merged.snapshot.records == records,
                  "federated merge lost records");

    const double ingest_rate =
        max_wall > 0.0 ? static_cast<double>(records) / max_wall : 0.0;
    const double merge_rate =
        merge_wall > 0.0 ? static_cast<double>(records) / merge_wall : 0.0;
    const std::size_t max_rss = *std::max_element(rss.begin(), rss.end());
    std::fprintf(out,
                 "    {\"partitions\": %zu, "
                 "\"ingest_records_per_sec\": %.0f, "
                 "\"merge_wall_s\": %.6f, "
                 "\"merge_records_per_sec\": %.0f, "
                 "\"max_partition_peak_rss_bytes\": %zu, "
                 "\"partition_peak_rss_bytes\": [",
                 count, ingest_rate, merge_wall, merge_rate, max_rss);
    for (std::size_t r = 0; r < rss.size(); ++r) {
      std::fprintf(out, "%zu%s", rss[r], r + 1 < rss.size() ? ", " : "");
    }
    std::fprintf(out, "]}%s\n",
                 i + 1 < partition_counts.size() ? "," : "");
    std::printf("partitions=%zu: ingest %.0f rec/s (as-if-parallel), merge "
                "%.0f rec/s, max partition RSS %.1f MB\n",
                count, ingest_rate, merge_rate,
                static_cast<double>(max_rss) / 1e6);
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::filesystem::remove_all(work);
  std::printf("wrote %s\n", path.c_str());
  return rc;
}

#endif  // defined(__unix__)

}  // namespace

int main(int argc, char** argv) {
#if defined(__unix__)
  if (argc > 1 && std::strcmp(argv[1], "--partition-worker") == 0) {
    return partition_worker(argc, argv);
  }
  // Re-exec through /proc/self/exe when available: argv[0] may be a bare
  // name resolved via PATH, which execv cannot use.
  static std::string self =
      std::filesystem::exists("/proc/self/exe") ? "/proc/self/exe" : argv[0];
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--emit-json", 11) == 0) {
      const char* eq = std::strchr(argv[i], '=');
      try {
        return emit_json(eq != nullptr ? eq + 1 : "BENCH_fed.json",
                         self.c_str());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
      }
    }
  }
#else
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--emit-json", 11) == 0 ||
        std::strcmp(argv[i], "--partition-worker") == 0) {
      std::fprintf(stderr,
                   "error: the partition-process sweep needs fork/exec "
                   "(unix only)\n");
      return 1;
    }
  }
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
