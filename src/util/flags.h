// A tiny command-line flag parser for examples and bench harnesses.
// Supports `--name=value`, `--name value` and boolean `--name` forms.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace wearscope::util {

/// Registers typed flags, parses argv, and renders --help text.
class FlagParser {
 public:
  /// `program_description` is printed at the top of --help.
  explicit FlagParser(std::string program_description);

  /// Registers flags. The pointee holds the default and receives the parsed
  /// value; it must outlive parse().
  void add_int(std::string name, std::int64_t* value, std::string help);
  void add_double(std::string name, double* value, std::string help);
  void add_string(std::string name, std::string* value, std::string help);
  void add_bool(std::string name, bool* value, std::string help);

  /// Parses argv. Returns false (after printing help) when --help is given.
  /// Throws ConfigError on unknown flags or unparsable values.
  bool parse(int argc, const char* const* argv);

  /// The formatted help text.
  [[nodiscard]] std::string help() const;

 private:
  struct Flag {
    std::string help;
    bool is_bool = false;
    std::function<void(std::string_view)> set;
    std::string default_repr;
  };

  void add(std::string name, Flag flag);

  std::string description_;
  std::map<std::string, Flag> flags_;
};

}  // namespace wearscope::util
