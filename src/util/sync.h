// Annotated synchronization primitives.
//
// std::mutex cannot carry Clang thread-safety attributes, so the project's
// concurrent modules use these thin wrappers instead: util::Mutex is a
// std::mutex that the analysis can track, util::MutexLock is the annotated
// lock_guard, and util::CondVar is a condition variable that waits on a
// util::Mutex directly (std::condition_variable_any treats it as a
// BasicLockable).  All wrappers are zero-overhead in production: every
// method is an inlined forward to the std counterpart behind one
// null-pointer check of the scheduling hook (util/sched_hook.h).
//
// Under a deterministic scheduler (src/sched) the blocking operations are
// virtualized instead: acquisition spins through try_lock with the
// scheduler parking the thread between attempts, and CondVar::wait parks
// on the scheduler rather than the OS, so which thread proceeds at every
// contention point is a replayable decision instead of an OS accident.
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>

#include "util/sched_hook.h"
#include "util/thread_annotations.h"

namespace wearscope::util {

/// std::mutex with a capability annotation the analysis can follow.
class WS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() WS_ACQUIRE() {
    if (sched::Hook* h = sched::current()) {
      h->point(sched::Op::kMutexLock,
               reinterpret_cast<std::uintptr_t>(this));
      // Virtualized acquisition: never park in the OS while managed —
      // the holder needs the scheduler token to ever reach unlock().
      while (!m_.try_lock())
        h->block(sched::Op::kMutexLock,
                 reinterpret_cast<std::uintptr_t>(this));
      return;
    }
    m_.lock();
  }
  void unlock() WS_RELEASE() {
    m_.unlock();
    if (sched::Hook* h = sched::current())
      h->unblock(sched::Op::kMutexLock,
                 reinterpret_cast<std::uintptr_t>(this), /*all=*/true);
  }
  bool try_lock() WS_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::mutex m_;
};

/// Scoped lock: acquires in the constructor, releases in the destructor.
class WS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) WS_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() WS_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Test-and-set spinlock for critical sections of a few instructions (a
/// pointer swap, a refcount bump) where parking would cost more than the
/// work it guards.  Carries the same capability annotation as Mutex so
/// WS_GUARDED_BY applies.  Both ends of every critical section use
/// acquire/release, so the handoff between threads is a happens-before
/// edge ThreadSanitizer can follow — unlike libstdc++'s
/// atomic<shared_ptr>, whose reader path unlocks with a relaxed RMW.
class WS_CAPABILITY("mutex") SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() WS_ACQUIRE() {
    if (sched::Hook* h = sched::current()) {
      h->point(sched::Op::kSpinLock,
               reinterpret_cast<std::uintptr_t>(this));
      // Spinning would livelock under the scheduler (the holder cannot
      // run while we hold the token), so park between attempts instead.
      while (locked_.exchange(true, std::memory_order_acquire))
        h->block(sched::Op::kSpinLock,
                 reinterpret_cast<std::uintptr_t>(this));
      return;
    }
    while (locked_.exchange(true, std::memory_order_acquire)) {
      // Busy-wait: holders leave within a handful of instructions.
    }
  }
  void unlock() WS_RELEASE() {
    locked_.store(false, std::memory_order_release);
    if (sched::Hook* h = sched::current())
      h->unblock(sched::Op::kSpinLock,
                 reinterpret_cast<std::uintptr_t>(this), /*all=*/true);
  }

 private:
  std::atomic<bool> locked_{false};
};

/// Scoped SpinLock holder, mirroring MutexLock.
class WS_SCOPED_CAPABILITY SpinLockGuard {
 public:
  explicit SpinLockGuard(SpinLock& lock) WS_ACQUIRE(lock) : lock_(lock) {
    lock_.lock();
  }
  ~SpinLockGuard() WS_RELEASE() { lock_.unlock(); }

  SpinLockGuard(const SpinLockGuard&) = delete;
  SpinLockGuard& operator=(const SpinLockGuard&) = delete;

 private:
  SpinLock& lock_;
};

/// Condition variable that waits on util::Mutex.  wait() requires the
/// mutex held (enforced by the analysis); the callee unlocks while parked
/// and relocks before returning, exactly like std::condition_variable.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mutex) WS_REQUIRES(mutex) {
    if (sched::Hook* h = sched::current()) {
      // Virtualized park: the unlock-then-park pair is atomic with respect
      // to other managed threads (the caller holds the scheduler token
      // until block() releases it), exactly matching condvar semantics.
      mutex.unlock();
      h->block(sched::Op::kCvWait, reinterpret_cast<std::uintptr_t>(this));
      mutex.lock();
      return;
    }
    cv_.wait(mutex);
  }

  template <typename Predicate>
  void wait(Mutex& mutex, Predicate pred) WS_REQUIRES(mutex) {
    if (sched::Hook* h = sched::current()) {
      while (!pred()) {
        mutex.unlock();
        h->block(sched::Op::kCvWait,
                 reinterpret_cast<std::uintptr_t>(this));
        mutex.lock();
      }
      return;
    }
    cv_.wait(mutex, std::move(pred));
  }

  void notify_one() noexcept {
    cv_.notify_one();
    if (sched::Hook* h = sched::current())
      h->unblock(sched::Op::kCvNotify,
                 reinterpret_cast<std::uintptr_t>(this), /*all=*/false);
  }
  void notify_all() noexcept {
    cv_.notify_all();
    if (sched::Hook* h = sched::current())
      h->unblock(sched::Op::kCvNotify,
                 reinterpret_cast<std::uintptr_t>(this), /*all=*/true);
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace wearscope::util
