// Annotated synchronization primitives.
//
// std::mutex cannot carry Clang thread-safety attributes, so the project's
// concurrent modules use these thin wrappers instead: util::Mutex is a
// std::mutex that the analysis can track, util::MutexLock is the annotated
// lock_guard, and util::CondVar is a condition variable that waits on a
// util::Mutex directly (std::condition_variable_any treats it as a
// BasicLockable).  All wrappers are zero-overhead: every method is a
// single inlined forward to the std counterpart.
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace wearscope::util {

/// std::mutex with a capability annotation the analysis can follow.
class WS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() WS_ACQUIRE() { m_.lock(); }
  void unlock() WS_RELEASE() { m_.unlock(); }
  bool try_lock() WS_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::mutex m_;
};

/// Scoped lock: acquires in the constructor, releases in the destructor.
class WS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) WS_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() WS_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Test-and-set spinlock for critical sections of a few instructions (a
/// pointer swap, a refcount bump) where parking would cost more than the
/// work it guards.  Carries the same capability annotation as Mutex so
/// WS_GUARDED_BY applies.  Both ends of every critical section use
/// acquire/release, so the handoff between threads is a happens-before
/// edge ThreadSanitizer can follow — unlike libstdc++'s
/// atomic<shared_ptr>, whose reader path unlocks with a relaxed RMW.
class WS_CAPABILITY("mutex") SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() WS_ACQUIRE() {
    while (locked_.exchange(true, std::memory_order_acquire)) {
      // Busy-wait: holders leave within a handful of instructions.
    }
  }
  void unlock() WS_RELEASE() {
    locked_.store(false, std::memory_order_release);
  }

 private:
  std::atomic<bool> locked_{false};
};

/// Scoped SpinLock holder, mirroring MutexLock.
class WS_SCOPED_CAPABILITY SpinLockGuard {
 public:
  explicit SpinLockGuard(SpinLock& lock) WS_ACQUIRE(lock) : lock_(lock) {
    lock_.lock();
  }
  ~SpinLockGuard() WS_RELEASE() { lock_.unlock(); }

  SpinLockGuard(const SpinLockGuard&) = delete;
  SpinLockGuard& operator=(const SpinLockGuard&) = delete;

 private:
  SpinLock& lock_;
};

/// Condition variable that waits on util::Mutex.  wait() requires the
/// mutex held (enforced by the analysis); the callee unlocks while parked
/// and relocks before returning, exactly like std::condition_variable.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mutex) WS_REQUIRES(mutex) { cv_.wait(mutex); }

  template <typename Predicate>
  void wait(Mutex& mutex, Predicate pred) WS_REQUIRES(mutex) {
    cv_.wait(mutex, std::move(pred));
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace wearscope::util
