#include "util/csv.h"

#include "util/error.h"

namespace wearscope::util {

std::string csv_escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out += '"';
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::vector<std::string> csv_parse_line(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
    ++i;
  }
  if (in_quotes) throw ParseError("csv: unterminated quoted field");
  fields.push_back(std::move(current));
  return fields;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) *out_ << ',';
    *out_ << csv_escape(fields[i]);
  }
  *out_ << '\n';
}

}  // namespace wearscope::util
