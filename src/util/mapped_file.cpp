#include "util/mapped_file.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#include "util/error.h"

#if defined(__unix__) || defined(__APPLE__)
#define WEARSCOPE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define WEARSCOPE_HAVE_MMAP 0
#endif

namespace wearscope::util {

namespace {

[[noreturn]] void fail(const char* action,
                       const std::filesystem::path& path) {
  const int err = errno;
  throw IoError(std::string(action) + " failed: " + path.string() + " (" +
                (err != 0 ? std::strerror(err) : "unknown error") + ")");
}

}  // namespace

MappedFile::MappedFile(const std::filesystem::path& path, MapMode mode) {
#if WEARSCOPE_HAVE_MMAP
  if (mode == MapMode::kAuto) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) fail("open", path);
    struct stat st {};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      fail("fstat", path);
    }
    const auto size = static_cast<std::size_t>(st.st_size);
    if (size == 0) {
      ::close(fd);
      return;  // empty file: empty span, nothing to map
    }
    void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);  // the mapping keeps its own reference
    if (addr == MAP_FAILED) fail("mmap", path);
    data_ = static_cast<const std::byte*>(addr);
    size_ = size;
    mapped_ = true;
    return;
  }
#else
  (void)mode;  // only the fallback exists on this platform
#endif
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("open", path);
  in.seekg(0, std::ios::end);
  const std::streampos end = in.tellg();
  if (end == std::streampos(-1)) fail("seek", path);
  in.seekg(0);
  owned_.resize(static_cast<std::size_t>(end));
  if (!owned_.empty()) {
    in.read(reinterpret_cast<char*>(owned_.data()),
            static_cast<std::streamsize>(owned_.size()));
    if (in.gcount() != static_cast<std::streamsize>(owned_.size()))
      fail("read", path);
  }
  data_ = owned_.data();
  size_ = owned_.size();
}

MappedFile::~MappedFile() { reset(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      mapped_(other.mapped_),
      owned_(std::move(other.owned_)) {
  if (!mapped_ && !owned_.empty()) data_ = owned_.data();
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this == &other) return *this;
  reset();
  data_ = other.data_;
  size_ = other.size_;
  mapped_ = other.mapped_;
  owned_ = std::move(other.owned_);
  if (!mapped_ && !owned_.empty()) data_ = owned_.data();
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
  return *this;
}

void MappedFile::reset() noexcept {
#if WEARSCOPE_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<std::byte*>(data_), size_);
  }
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  owned_.clear();
}

}  // namespace wearscope::util
