// Simulation calendar.
//
// The study window mirrors the paper: five months of summary statistics from
// mid-December 2017 to mid-May 2018 (153 days), with full logs retained for
// the final seven weeks.  Timestamps are plain seconds since the start of the
// observation window (not wall-clock epochs) so that arithmetic stays trivial
// and platform-independent; helpers convert to calendar features.
#pragma once

#include <cstdint>
#include <string>

namespace wearscope::util {

/// Seconds since the start of the observation window (2017-12-15 00:00 local).
using SimTime = std::int64_t;

inline constexpr SimTime kSecondsPerMinute = 60;
inline constexpr SimTime kSecondsPerHour = 3600;
inline constexpr SimTime kSecondsPerDay = 86'400;
inline constexpr SimTime kSecondsPerWeek = 7 * kSecondsPerDay;

/// Total length of the paper's observation window, in days.
inline constexpr int kObservationDays = 153;  // mid-Dec 2017 .. mid-May 2018
/// Length of the detailed-log window at the end of the observation period.
inline constexpr int kDetailedWeeks = 7;
inline constexpr int kDetailedDays = kDetailedWeeks * 7;
/// First day (0-based) of the detailed seven-week window.
inline constexpr int kDetailedStartDay = kObservationDays - kDetailedDays;

/// Day of week. Day 0 of the window (2017-12-15) was a Friday.
enum class Weekday : std::uint8_t {
  kMonday = 0,
  kTuesday,
  kWednesday,
  kThursday,
  kFriday,
  kSaturday,
  kSunday,
};

/// 0-based day index of a timestamp within the observation window.
constexpr int day_of(SimTime t) noexcept {
  return static_cast<int>(t / kSecondsPerDay);
}

/// Hour of day in [0, 24).
constexpr int hour_of(SimTime t) noexcept {
  return static_cast<int>((t % kSecondsPerDay) / kSecondsPerHour);
}

/// 0-based week index within the observation window.
constexpr int week_of(SimTime t) noexcept {
  return static_cast<int>(t / kSecondsPerWeek);
}

/// Weekday of a 0-based day index (day 0 = Friday).
constexpr Weekday weekday_of_day(int day_index) noexcept {
  // Friday is index 4 in our Monday-based enum.
  return static_cast<Weekday>((day_index + 4) % 7);
}

/// Weekday of a timestamp.
constexpr Weekday weekday_of(SimTime t) noexcept {
  return weekday_of_day(day_of(t));
}

/// True for Saturday/Sunday.
constexpr bool is_weekend_day(int day_index) noexcept {
  const Weekday w = weekday_of_day(day_index);
  return w == Weekday::kSaturday || w == Weekday::kSunday;
}

/// True for timestamps falling on Saturday/Sunday.
constexpr bool is_weekend(SimTime t) noexcept {
  return is_weekend_day(day_of(t));
}

/// Timestamp of midnight starting `day_index`.
constexpr SimTime day_start(int day_index) noexcept {
  return static_cast<SimTime>(day_index) * kSecondsPerDay;
}

/// Three-letter English weekday name ("Mon".."Sun").
std::string weekday_name(Weekday w);

/// Human-readable "dayNNN hh:mm:ss" rendering of a timestamp.
std::string format_sim_time(SimTime t);

/// Parses a stream-time duration: "90", "90s", "15m", "6h" or "1d" into
/// seconds.  Throws ConfigError naming `flag` on bad input (CLI flags like
/// --snapshot-every share this).
SimTime parse_duration_s(const std::string& text, const std::string& flag);

}  // namespace wearscope::util
