// LEB128 varints and zigzag transforms for the columnar v3 trace format.
//
// The v3 column codec (trace/columnar_io) stores timestamps as zigzag'd
// deltas and counters/dictionary indices as plain varints, so the common
// small values take one byte instead of eight.  Encoding appends to the
// same scratch-string the block writers use; decoding reads through
// util::MemorySpanDecoder so bounds violations throw the same ParseError
// (with byte offset) as every other corrupt-input path.
//
// A u64 varint is at most 10 bytes; an 11th continuation byte can only
// come from corruption and is rejected rather than silently wrapped.
#pragma once

#include <cstdint>
#include <string>

#include "util/error.h"
#include "util/span_decoder.h"

namespace wearscope::util {

/// Longest legal LEB128 encoding of a u64 (ceil(64 / 7) bytes).
inline constexpr int kMaxVarintBytes = 10;

/// Appends the LEB128 encoding of `v` to `out`.
inline void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

/// Reads one LEB128 varint.  Throws ParseError past the span end (via the
/// decoder) or after kMaxVarintBytes continuation bytes (corrupt input).
[[nodiscard]] inline std::uint64_t get_varint(MemorySpanDecoder& dec) {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 7 * kMaxVarintBytes; shift += 7) {
    const std::uint8_t byte = dec.get_u8();
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
  }
  throw ParseError("varint: more than " + std::to_string(kMaxVarintBytes) +
                   " bytes at byte " + std::to_string(dec.offset()));
}

/// Maps signed to unsigned so small-magnitude values (either sign) stay
/// small: 0,-1,1,-2,... -> 0,1,2,3,...
[[nodiscard]] constexpr std::uint64_t zigzag_encode(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

/// Inverse of zigzag_encode.
[[nodiscard]] constexpr std::int64_t zigzag_decode(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

}  // namespace wearscope::util
