// Small string utilities: tokenization, trimming, case folding, and the
// hostname-suffix matching used by the app-signature tables.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace wearscope::util {

/// Splits `text` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view text, char sep);

/// Joins `parts` with `sep` between elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text) noexcept;

/// ASCII lower-casing.
std::string to_lower(std::string_view text);

/// DNS-aware suffix match: true when `host` equals `suffix` or ends with
/// "." + suffix (so "api.fitbit.com" matches "fitbit.com" but
/// "notfitbit.com" does not). Comparison is case-insensitive.
bool host_matches_suffix(std::string_view host, std::string_view suffix);

/// Heuristic registrable domain: last two labels of the host, or last three
/// when the TLD is a two-part public suffix such as "co.uk"
/// ("cdn.ads.example.co.uk" -> "example.co.uk").
std::string registrable_domain(std::string_view host);

/// True when `host` contains `token` as a complete dot-separated label
/// ("ads.server.com" contains label "ads"; "roads.server.com" does not).
bool has_label(std::string_view host, std::string_view token);

}  // namespace wearscope::util
