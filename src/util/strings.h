// Small string utilities: tokenization, trimming, case folding, and the
// hostname-suffix matching used by the app-signature tables.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace wearscope::util {

/// Transparent (heterogeneous) hash for unordered containers keyed by
/// std::string but probed with string_view / char* — lookups build no
/// temporary std::string.  Use with std::equal_to<> as the key comparator.
struct StringHash {
  using is_transparent = void;
  [[nodiscard]] std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

/// Splits `text` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view text, char sep);

/// Joins `parts` with `sep` between elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text) noexcept;

/// ASCII lower-casing.
std::string to_lower(std::string_view text);

/// ASCII lower-casing into a caller-owned scratch buffer (capacity is
/// reused across calls, so steady state allocates nothing). Returns a view
/// of `out`, valid until `out` is next modified.
std::string_view to_lower_into(std::string_view text, std::string& out);

/// DNS-aware suffix match: true when `host` equals `suffix` or ends with
/// "." + suffix (so "api.fitbit.com" matches "fitbit.com" but
/// "notfitbit.com" does not). Comparison is case-insensitive.
bool host_matches_suffix(std::string_view host, std::string_view suffix);

/// Heuristic registrable domain: last two labels of the host, or last three
/// when the TLD is a two-part public suffix such as "co.uk"
/// ("cdn.ads.example.co.uk" -> "example.co.uk").
std::string registrable_domain(std::string_view host);

/// Allocation-free registrable_domain over an already lower-cased, trimmed
/// host. The registrable domain is always a dot-suffix of the host, so the
/// result is a view into `host_lower` (valid as long as its storage).
std::string_view registrable_domain_of_lower(
    std::string_view host_lower) noexcept;

/// True when `host` contains `token` as a complete dot-separated label
/// ("ads.server.com" contains label "ads"; "roads.server.com" does not).
bool has_label(std::string_view host, std::string_view token);

/// Allocation-free has_label over an already lower-cased host and an
/// already lower-cased, non-empty token.
bool has_label_lower(std::string_view host_lower,
                     std::string_view token_lower) noexcept;

}  // namespace wearscope::util
