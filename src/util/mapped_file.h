// Read-only memory-mapped file with a portable read-whole-file fallback.
//
// The blocked trace reader wants the entire log addressable as one
// contiguous std::span so frame scanning and parallel block decode are
// plain pointer arithmetic.  On POSIX platforms the file is mmap(2)'ed
// (MAP_PRIVATE, PROT_READ): the kernel pages data in on demand and the
// page cache is shared across concurrent decoders.  Everywhere else — or
// when the caller forces it — the file is read into an owned buffer, which
// is byte-for-byte indistinguishable to consumers (`bytes()` is the whole
// interface).  Empty files map to an empty span without touching mmap.
#pragma once

#include <cstddef>
#include <filesystem>
#include <span>
#include <vector>

namespace wearscope::util {

/// How MappedFile acquires the file contents.
enum class MapMode {
  kAuto,           ///< mmap when the platform supports it, else read.
  kReadWholeFile,  ///< Always read into an owned buffer (fallback path).
};

/// Immutable view of one whole file.  Move-only; the span returned by
/// bytes() is valid for the lifetime of the object.
class MappedFile {
 public:
  /// Opens and maps (or reads) `path`.  Throws util::IoError with
  /// errno/strerror context when the file cannot be opened, sized or
  /// mapped.
  explicit MappedFile(const std::filesystem::path& path,
                      MapMode mode = MapMode::kAuto);
  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;

  /// The file contents, start to end.
  [[nodiscard]] std::span<const std::byte> bytes() const noexcept {
    return {data_, size_};
  }

  /// Total size in bytes.
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// True when backed by an actual memory mapping (false on the
  /// read-whole-file fallback and for empty files).
  [[nodiscard]] bool mapped() const noexcept { return mapped_; }

 private:
  void reset() noexcept;

  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  std::vector<std::byte> owned_;  ///< Fallback storage (empty when mapped).
};

}  // namespace wearscope::util
