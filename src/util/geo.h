// Minimal geodesy for antenna placement and displacement analysis.
#pragma once

namespace wearscope::util {

/// A WGS84-style geographic coordinate in decimal degrees.
struct GeoPoint {
  double lat_deg = 0.0;  ///< Latitude, degrees north.
  double lon_deg = 0.0;  ///< Longitude, degrees east.

  friend bool operator==(const GeoPoint&, const GeoPoint&) = default;
};

/// Great-circle distance between two points in kilometres (haversine on a
/// 6371 km sphere — exact enough for antenna-sector geometry).
double haversine_km(const GeoPoint& a, const GeoPoint& b) noexcept;

/// Point reached from `origin` travelling `distance_km` along `bearing_deg`
/// (clockwise from north) on the sphere.
GeoPoint destination(const GeoPoint& origin, double bearing_deg,
                     double distance_km) noexcept;

}  // namespace wearscope::util
