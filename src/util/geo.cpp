#include "util/geo.h"

#include <cmath>
#include <numbers>

namespace wearscope::util {

namespace {
constexpr double kEarthRadiusKm = 6371.0;

constexpr double rad(double deg) noexcept {
  return deg * std::numbers::pi / 180.0;
}
constexpr double deg(double r) noexcept {
  return r * 180.0 / std::numbers::pi;
}
}  // namespace

double haversine_km(const GeoPoint& a, const GeoPoint& b) noexcept {
  const double phi1 = rad(a.lat_deg);
  const double phi2 = rad(b.lat_deg);
  const double dphi = rad(b.lat_deg - a.lat_deg);
  const double dlam = rad(b.lon_deg - a.lon_deg);
  const double s = std::sin(dphi / 2) * std::sin(dphi / 2) +
                   std::cos(phi1) * std::cos(phi2) * std::sin(dlam / 2) *
                       std::sin(dlam / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(s)));
}

GeoPoint destination(const GeoPoint& origin, double bearing_deg,
                     double distance_km) noexcept {
  const double delta = distance_km / kEarthRadiusKm;
  const double theta = rad(bearing_deg);
  const double phi1 = rad(origin.lat_deg);
  const double lam1 = rad(origin.lon_deg);
  const double phi2 = std::asin(std::sin(phi1) * std::cos(delta) +
                                std::cos(phi1) * std::sin(delta) *
                                    std::cos(theta));
  const double lam2 =
      lam1 + std::atan2(std::sin(theta) * std::sin(delta) * std::cos(phi1),
                        std::cos(delta) - std::sin(phi1) * std::sin(phi2));
  return GeoPoint{deg(phi2), deg(lam2)};
}

}  // namespace wearscope::util
