// Zero-copy little-endian primitive decoder over an in-memory byte span.
//
// Mirrors the API of trace::BinaryDecoder (get_u8 .. get_string, at_eof,
// offset) but reads straight out of a std::span<const std::byte> — no
// std::istream, no virtual dispatch, no per-primitive branching beyond a
// single bounds check.  This is the hot decode path for mmap'ed trace
// logs: the blocked v2 reader hands each worker a subspan of one block
// payload and decodes records with plain pointer arithmetic.
//
// Every failure throws util::ParseError carrying the byte offset, exactly
// like the stream decoder, so the lenient readers treat both identically.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "util/error.h"

namespace wearscope::util {

/// Bounds-checked little-endian reader over borrowed memory.  The span
/// must outlive the decoder (the mapped file or scratch buffer owns it).
class MemorySpanDecoder {
 public:
  explicit MemorySpanDecoder(std::span<const std::byte> bytes) noexcept
      : bytes_(bytes) {}

  [[nodiscard]] std::uint8_t get_u8() {
    need(1, "u8");
    return static_cast<std::uint8_t>(bytes_[offset_++]);
  }

  [[nodiscard]] std::uint16_t get_u16() {
    need(2, "u16");
    const std::uint16_t v = static_cast<std::uint16_t>(
        byte_at(0) | (static_cast<std::uint16_t>(byte_at(1)) << 8));
    offset_ += 2;
    return v;
  }

  [[nodiscard]] std::uint32_t get_u32() {
    need(4, "u32");
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | byte_at(i);
    offset_ += 4;
    return v;
  }

  [[nodiscard]] std::uint64_t get_u64() {
    need(8, "u64");
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | byte_at(i);
    offset_ += 8;
    return v;
  }

  [[nodiscard]] std::int64_t get_i64() {
    return static_cast<std::int64_t>(get_u64());
  }

  [[nodiscard]] double get_f64() { return std::bit_cast<double>(get_u64()); }

  /// Reads a u16-length-prefixed string.  The claimed length is checked
  /// against the remaining span *before* any allocation, so a corrupt
  /// prefix fails cleanly instead of over-reading.
  [[nodiscard]] std::string get_string() {
    const std::uint64_t prefix_at = offset_;
    const std::uint16_t len = get_u16();
    if (len == 0) return {};
    if (remaining() < len) {
      throw ParseError("binary log: string length " + std::to_string(len) +
                       " exceeds " + std::to_string(remaining()) +
                       " remaining bytes (corrupt length prefix at byte " +
                       std::to_string(prefix_at) + ")");
    }
    std::string s(reinterpret_cast<const char*>(bytes_.data() + offset_),
                  len);
    offset_ += len;
    return s;
  }

  /// Borrows the next `n` bytes without copying and advances past them.
  [[nodiscard]] std::span<const std::byte> take(std::size_t n) {
    need(n, "span");
    const std::span<const std::byte> view = bytes_.subspan(offset_, n);
    offset_ += n;
    return view;
  }

  /// True when every byte has been consumed.
  [[nodiscard]] bool at_eof() const noexcept {
    return offset_ >= bytes_.size();
  }

  /// Bytes successfully consumed so far.
  [[nodiscard]] std::uint64_t offset() const noexcept { return offset_; }

  /// Bytes still unread.
  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - offset_;
  }

 private:
  void need(std::size_t n, const char* what) const {
    if (remaining() < n) {
      throw ParseError("binary log: truncated " + std::string(what) +
                       " at byte " + std::to_string(offset_));
    }
  }

  [[nodiscard]] std::uint32_t byte_at(int i) const noexcept {
    return static_cast<std::uint32_t>(
        bytes_[offset_ + static_cast<std::size_t>(i)]);
  }

  std::span<const std::byte> bytes_;
  std::size_t offset_ = 0;
};

}  // namespace wearscope::util
