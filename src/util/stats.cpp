#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/error.h"

namespace wearscope::util {

void OnlineStats::add(double x) noexcept {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double quantile_sorted(std::span<const double> sorted, double q) noexcept {
  if (sorted.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double quantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  return quantile_sorted(values, q);
}

double mean(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

double median(std::vector<double> values) { return quantile(std::move(values), 0.5); }

Ecdf::Ecdf(std::vector<double> sample) : sorted_(std::move(sample)) {
  std::sort(sorted_.begin(), sorted_.end());
  mean_ = util::mean(sorted_);
}

double Ecdf::at(double x) const noexcept {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::quantile(double q) const noexcept {
  return quantile_sorted(sorted_, q);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0.0) {
  require(bins >= 1, "Histogram: need at least one bin");
  require(lo < hi, "Histogram: lo must be < hi");
}

void Histogram::add(double x, double weight) noexcept {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::int64_t>(std::floor((x - lo_) / width));
  idx = std::clamp<std::int64_t>(idx, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

double Histogram::bin_lo(std::size_t i) const noexcept {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

std::vector<double> Histogram::normalized() const {
  std::vector<double> out(counts_.size(), 0.0);
  if (total_ <= 0.0) return out;
  for (std::size_t i = 0; i < counts_.size(); ++i) out[i] = counts_[i] / total_;
  return out;
}

double shannon_entropy(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (const double w : weights)
    if (w > 0.0) total += w;
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (const double w : weights) {
    if (w <= 0.0) continue;
    const double p = w / total;
    h -= p * std::log2(p);
  }
  return h;
}

double pearson(std::span<const double> x, std::span<const double> y) {
  require(x.size() == y.size(), "pearson: size mismatch");
  const std::size_t n = x.size();
  if (n < 2) return 0.0;
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> fractional_ranks(std::span<const double> values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    const double mid = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 +
                       1.0;  // 1-based mid rank
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = mid;
    i = j + 1;
  }
  return ranks;
}

double spearman(std::span<const double> x, std::span<const double> y) {
  require(x.size() == y.size(), "spearman: size mismatch");
  const std::vector<double> rx = fractional_ranks(x);
  const std::vector<double> ry = fractional_ranks(y);
  return pearson(rx, ry);
}

BinnedRelation binned_relation(std::span<const double> x,
                               std::span<const double> y,
                               std::size_t buckets) {
  require(x.size() == y.size(), "binned_relation: size mismatch");
  BinnedRelation rel;
  if (x.empty() || buckets == 0) return rel;
  std::vector<std::size_t> order(x.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return x[a] < x[b]; });
  // Boundary-based equal-population buckets (sizes differ by at most one);
  // a floor-division scheme would leave a tiny high-leverage remainder
  // bucket at the extreme of the x range.
  buckets = std::min(buckets, x.size());
  for (std::size_t b = 0; b < buckets; ++b) {
    const std::size_t start = b * x.size() / buckets;
    const std::size_t end = (b + 1) * x.size() / buckets;
    if (start == end) continue;
    OnlineStats sx;
    OnlineStats sy;
    for (std::size_t k = start; k < end; ++k) {
      sx.add(x[order[k]]);
      sy.add(y[order[k]]);
    }
    rel.x_centers.push_back(sx.mean());
    rel.y_means.push_back(sy.mean());
    rel.n.push_back(end - start);
  }
  return rel;
}

}  // namespace wearscope::util
