// Descriptive statistics used throughout generation, analysis and testing:
// running moments, quantiles, empirical CDFs, histograms, Shannon entropy
// and correlation coefficients.  All functions are pure and allocation-light.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace wearscope::util {

/// Numerically stable running mean/variance/min/max (Welford's algorithm).
class OnlineStats {
 public:
  /// Folds one observation into the accumulator.
  void add(double x) noexcept;

  /// Merges another accumulator (parallel-friendly, Chan et al.).
  void merge(const OnlineStats& other) noexcept;

  /// Number of observations added so far.
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  /// Arithmetic mean; 0 when empty.
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Population variance; 0 with fewer than 2 observations.
  [[nodiscard]] double variance() const noexcept;
  /// Population standard deviation.
  [[nodiscard]] double stddev() const noexcept;
  /// Smallest observation; +inf when empty.
  [[nodiscard]] double min() const noexcept { return min_; }
  /// Largest observation; -inf when empty.
  [[nodiscard]] double max() const noexcept { return max_; }
  /// Sum of all observations.
  [[nodiscard]] double sum() const noexcept {
    return mean_ * static_cast<double>(count_);
  }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 1e308 * 10;   // +inf without <limits> in the header
  double max_ = -1e308 * 10;  // -inf
};

/// Linear-interpolated quantile of *sorted* data, q in [0, 1].
/// Returns 0 for empty input.
double quantile_sorted(std::span<const double> sorted, double q) noexcept;

/// Sorts a copy of `values` and returns the q-quantile.
double quantile(std::vector<double> values, double q);

/// Arithmetic mean; 0 for empty input.
double mean(std::span<const double> values) noexcept;

/// Median (allocates a sorted copy).
double median(std::vector<double> values);

/// Empirical cumulative distribution function over a sample.
/// Built once, then evaluated at arbitrary points; also exposes the sorted
/// sample for quantile queries and plotting.
class Ecdf {
 public:
  Ecdf() = default;
  /// Builds the ECDF from an arbitrary-order sample.
  explicit Ecdf(std::vector<double> sample);

  /// Fraction of the sample <= x. 0 for empty ECDFs.
  [[nodiscard]] double at(double x) const noexcept;
  /// Inverse ECDF: smallest sample value v with at(v) >= q.
  [[nodiscard]] double quantile(double q) const noexcept;
  /// Sample size.
  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }
  /// The sorted sample (ascending).
  [[nodiscard]] const std::vector<double>& sorted() const noexcept {
    return sorted_;
  }
  /// Sample mean.
  [[nodiscard]] double mean() const noexcept { return mean_; }

 private:
  std::vector<double> sorted_;
  double mean_ = 0.0;
};

/// Fixed-width linear histogram over [lo, hi); out-of-range values clamp to
/// the edge bins so no observation is silently dropped.
class Histogram {
 public:
  /// `bins` must be >= 1 and lo < hi.
  Histogram(double lo, double hi, std::size_t bins);

  /// Adds an observation with optional weight.
  void add(double x, double weight = 1.0) noexcept;

  /// Count (total weight) in bin `i`.
  [[nodiscard]] double bin_count(std::size_t i) const noexcept {
    return counts_[i];
  }
  /// Inclusive lower edge of bin `i`.
  [[nodiscard]] double bin_lo(std::size_t i) const noexcept;
  /// Number of bins.
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  /// Total weight added.
  [[nodiscard]] double total() const noexcept { return total_; }
  /// Bin counts normalized to fractions of the total (all zeros when empty).
  [[nodiscard]] std::vector<double> normalized() const;

 private:
  double lo_;
  double hi_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

/// Shannon entropy (in bits) of a discrete distribution given by
/// non-negative weights; weights are normalized internally.
/// Returns 0 for empty or degenerate input.
double shannon_entropy(std::span<const double> weights) noexcept;

/// Pearson linear correlation coefficient; 0 when either side is constant
/// or the series are shorter than 2. Requires equal lengths.
double pearson(std::span<const double> x, std::span<const double> y);

/// Spearman rank correlation (Pearson over fractional ranks, mid-rank ties).
double spearman(std::span<const double> x, std::span<const double> y);

/// Fractional ranks of `values` (1-based, ties get the mid rank).
std::vector<double> fractional_ranks(std::span<const double> values);

/// Bucket means of y grouped by x-deciles — used to render "metric A vs
/// metric B" scatter relations (Fig. 3d / 4d style) as a compact series.
struct BinnedRelation {
  std::vector<double> x_centers;  ///< Mean x within each bucket.
  std::vector<double> y_means;    ///< Mean y within each bucket.
  std::vector<std::size_t> n;     ///< Observations per bucket.
};

/// Computes BinnedRelation with `buckets` equal-population x-buckets.
BinnedRelation binned_relation(std::span<const double> x,
                               std::span<const double> y,
                               std::size_t buckets);

}  // namespace wearscope::util
