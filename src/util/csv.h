// RFC-4180-ish CSV reading/writing used for the text form of the trace logs
// and for exporting figure data.  Quoting is applied only when needed; the
// reader handles quoted fields with embedded separators, quotes and newlines
// already folded out (records are line-oriented in our logs).
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace wearscope::util {

/// Escapes one field per RFC 4180 (quotes applied only when necessary).
std::string csv_escape(std::string_view field);

/// Parses one CSV record (a single line, no embedded newlines).
/// Throws ParseError on unterminated quotes.
std::vector<std::string> csv_parse_line(std::string_view line);

/// Streaming CSV writer.  Not thread-safe; one writer per stream.
class CsvWriter {
 public:
  /// Writes to `out`, which must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Writes one record and a trailing newline.
  void write_row(const std::vector<std::string>& fields);

  /// Convenience for heterogeneous rows: stringifies each argument.
  template <typename... Ts>
  void row(const Ts&... fields) {
    std::vector<std::string> v;
    v.reserve(sizeof...(fields));
    (v.push_back(stringify(fields)), ...);
    write_row(v);
  }

 private:
  static std::string stringify(const std::string& s) { return s; }
  static std::string stringify(const char* s) { return s; }
  static std::string stringify(std::string_view s) { return std::string(s); }
  template <typename T>
  static std::string stringify(const T& value) {
    return std::to_string(value);
  }

  std::ostream* out_;
};

}  // namespace wearscope::util
