#include "util/sched_hook.h"

namespace wearscope::util::sched {

namespace detail {
std::atomic<Hook*> g_hook{nullptr};
}  // namespace detail

const char* op_name(Op op) noexcept {
  switch (op) {
    case Op::kRingPush: return "ring-push";
    case Op::kRingCommit: return "ring-commit";
    case Op::kRingPop: return "ring-pop";
    case Op::kRingClose: return "ring-close";
    case Op::kMutexLock: return "mutex-lock";
    case Op::kSpinLock: return "spin-lock";
    case Op::kCvWait: return "cv-wait";
    case Op::kCvNotify: return "cv-notify";
    case Op::kBarrierDeposit: return "barrier-deposit";
    case Op::kBarrierWait: return "barrier-wait";
    case Op::kStorePublish: return "store-publish";
    case Op::kStoreRead: return "store-read";
    case Op::kJoin: return "join";
    case Op::kUserPoint: return "user-point";
  }
  return "?";
}

Hook* install(Hook* hook) noexcept {
  return detail::g_hook.exchange(hook, std::memory_order_acq_rel);
}

}  // namespace wearscope::util::sched
