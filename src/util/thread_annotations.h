// Clang thread-safety analysis annotations (-Wthread-safety).
//
// The macros expand to Clang's capability attributes when the compiler
// supports them and to nothing otherwise (GCC builds see plain C++), so
// annotated code carries its locking contract in the signature at zero
// runtime cost:
//
//   util::Mutex mutex_;
//   std::map<K, V> table_ WS_GUARDED_BY(mutex_);
//   void rebuild() WS_REQUIRES(mutex_);
//   void refresh() WS_EXCLUDES(mutex_);
//
// Under clang++ with -Wthread-safety (wired up by the top-level
// CMakeLists.txt when WEARSCOPE_LINT is ON), touching `table_` without
// holding `mutex_`, or calling rebuild() unlocked, is a compile error.
// See src/util/sync.h for the annotated Mutex/MutexLock/CondVar wrappers
// these attributes attach to.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define WS_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef WS_THREAD_ANNOTATION
#define WS_THREAD_ANNOTATION(x)  // expands to nothing outside Clang
#endif

/// Marks a type as a lockable capability ("mutex" names it in diagnostics).
#define WS_CAPABILITY(x) WS_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define WS_SCOPED_CAPABILITY WS_THREAD_ANNOTATION(scoped_lockable)

/// Member may only be touched while holding the given mutex.
#define WS_GUARDED_BY(x) WS_THREAD_ANNOTATION(guarded_by(x))

/// Pointee may only be touched while holding the given mutex.
#define WS_PT_GUARDED_BY(x) WS_THREAD_ANNOTATION(pt_guarded_by(x))

/// Caller must hold the given mutex(es) when invoking this function.
#define WS_REQUIRES(...) WS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the mutex(es) and returns with them held.
#define WS_ACQUIRE(...) WS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the mutex(es) the caller held.
#define WS_RELEASE(...) WS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the mutex iff it returns the given value.
#define WS_TRY_ACQUIRE(...) \
  WS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the given mutex(es) (deadlock guard).
#define WS_EXCLUDES(...) WS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the given mutex.
#define WS_RETURN_CAPABILITY(x) WS_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis inside one function body.
#define WS_NO_THREAD_SAFETY_ANALYSIS \
  WS_THREAD_ANNOTATION(no_thread_safety_analysis)
