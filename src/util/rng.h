// Deterministic pseudo-random number generation and sampling.
//
// All stochastic behaviour in wearscope flows through Pcg32 so that a given
// seed reproduces the exact same synthetic ISP trace on every platform.
// std::mt19937 with std::*_distribution is deliberately avoided: the standard
// distributions are implementation-defined, which would make golden tests and
// paper-calibration checks non-portable (CppCoreGuidelines ES.?? portability
// spirit; the generator itself is the PCG-XSH-RR 64/32 reference algorithm).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace wearscope::util {

/// PCG-XSH-RR 64/32 pseudo-random generator (O'Neill 2014) with a suite of
/// portable sampling helpers.  Cheap to copy; fork() derives independent
/// substreams for per-user / per-day determinism.
class Pcg32 {
 public:
  /// Seeds the generator. `seq` selects one of 2^63 independent streams.
  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t seq = 0xda3e39cb94b95bdbULL) noexcept;

  /// Next 32 uniformly distributed bits.
  std::uint32_t next_u32() noexcept;

  /// Next 64 uniformly distributed bits (two draws).
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// True with probability `p` (clamped to [0, 1]).
  bool bernoulli(double p) noexcept;

  /// Standard normal variate (Box-Muller, one value per call).
  double normal() noexcept;

  /// Normal variate with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Log-normal variate: exp(N(mu, sigma)). `mu`/`sigma` act on the log scale.
  double lognormal(double mu, double sigma) noexcept;

  /// Exponential variate with the given rate (mean 1/rate).
  double exponential(double rate) noexcept;

  /// Poisson variate. Uses Knuth's method for small means and a normal
  /// approximation above `mean > 64` (adequate for workload modelling).
  std::uint32_t poisson(double mean) noexcept;

  /// Zipf-distributed rank in [0, n) with exponent `s` (> 0).
  /// Sampled by inversion over the precomputable harmonic weights is too
  /// costly per call, so this uses rejection-inversion (Hörmann 1996-lite).
  std::uint32_t zipf(std::uint32_t n, double s) noexcept;

  /// Picks an index in [0, weights.size()) proportionally to `weights`.
  /// Linear scan; use DiscreteSampler for repeated draws from one table.
  std::size_t weighted_index(std::span<const double> weights) noexcept;

  /// Fisher-Yates shuffle of `values`.
  template <typename T>
  void shuffle(std::vector<T>& values) noexcept {
    for (std::size_t i = values.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  /// Derives a statistically independent generator keyed by `stream_key`.
  /// Used to give each (user, day) its own stream so that changing one
  /// user's parameters never perturbs another user's trace.
  [[nodiscard]] Pcg32 fork(std::uint64_t stream_key) const noexcept;

  /// The raw internal state; exposed for testing determinism only.
  [[nodiscard]] std::uint64_t state() const noexcept { return state_; }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

/// Alias-method sampler for repeated draws from a fixed discrete
/// distribution in O(1) per draw (Walker 1977 / Vose 1991).
class DiscreteSampler {
 public:
  DiscreteSampler() = default;

  /// Builds the alias tables. `weights` must be non-empty with a positive sum;
  /// negative weights are rejected.
  explicit DiscreteSampler(std::span<const double> weights);

  /// Draws an index in [0, size()).
  std::size_t sample(Pcg32& rng) const noexcept;

  /// Number of outcomes.
  [[nodiscard]] std::size_t size() const noexcept { return prob_.size(); }

  /// Normalized probability of outcome `i` (for inspection/testing).
  [[nodiscard]] double probability(std::size_t i) const noexcept {
    return normalized_[i];
  }

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
  std::vector<double> normalized_;
};

/// SplitMix64 step — a strong 64-bit mixing function. Used to hash stream
/// keys and to derive substream seeds.
std::uint64_t splitmix64(std::uint64_t x) noexcept;

}  // namespace wearscope::util
