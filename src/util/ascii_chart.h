// Terminal rendering of figure series: horizontal bar charts (optionally on
// a log scale, matching the paper's log-axis figures), line sparklines for
// hourly curves, and aligned tables.  Used by examples and bench harnesses.
#pragma once

#include <string>
#include <vector>

namespace wearscope::util {

/// One labelled value of a bar chart.
struct Bar {
  std::string label;
  double value = 0.0;
};

/// Renders `bars` as a fixed-width horizontal bar chart.
/// With `log_scale`, bar lengths are proportional to log10(value/min_pos),
/// mirroring the paper's log-scaled popularity plots; non-positive values
/// render as empty bars.
std::string bar_chart(const std::vector<Bar>& bars, std::size_t width = 48,
                      bool log_scale = false);

/// Renders an hourly (or other x-indexed) series as a block sparkline.
std::string sparkline(const std::vector<double>& values);

/// Renders a table with a header row; columns are padded to equal width.
std::string table(const std::vector<std::string>& header,
                  const std::vector<std::vector<std::string>>& rows);

/// Formats a double with `digits` significant decimals, trimming zeros.
std::string format_num(double value, int digits = 3);

}  // namespace wearscope::util
