#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <numeric>

#include "util/error.h"

namespace wearscope::util {

namespace {
constexpr std::uint64_t kPcgMultiplier = 6364136223846793005ULL;
}  // namespace

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t seq) noexcept
    : state_(0), inc_((seq << 1u) | 1u) {
  next_u32();
  state_ += seed;
  next_u32();
}

std::uint32_t Pcg32::next_u32() noexcept {
  const std::uint64_t old = state_;
  state_ = old * kPcgMultiplier + inc_;
  const auto xorshifted =
      static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  const auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

std::uint64_t Pcg32::next_u64() noexcept {
  return (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
}

double Pcg32::next_double() noexcept {
  // 53 random bits mapped into [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Pcg32::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  if (lo >= hi) return lo;
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  // Debiased modulo via rejection sampling on the top of the range.
  const std::uint64_t threshold = (0ULL - range) % range;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return lo + static_cast<std::int64_t>(r % range);
  }
}

double Pcg32::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

bool Pcg32::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Pcg32::normal() noexcept {
  // Box-Muller; we intentionally discard the second variate to keep the
  // generator stateless with respect to caching (simplifies fork()).
  double u1 = next_double();
  while (u1 <= 0.0) u1 = next_double();
  const double u2 = next_double();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Pcg32::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Pcg32::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Pcg32::exponential(double rate) noexcept {
  double u = next_double();
  while (u <= 0.0) u = next_double();
  return -std::log(u) / rate;
}

std::uint32_t Pcg32::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    const double v = normal(mean, std::sqrt(mean));
    return v <= 0.0 ? 0u : static_cast<std::uint32_t>(std::lround(v));
  }
  // Knuth's product method.
  const double limit = std::exp(-mean);
  std::uint32_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= next_double();
  } while (p > limit);
  return k - 1;
}

std::uint32_t Pcg32::zipf(std::uint32_t n, double s) noexcept {
  if (n <= 1) return 0;
  // Rejection-inversion using the integral of x^-s as the envelope.
  const double nd = static_cast<double>(n);
  if (std::abs(s - 1.0) < 1e-9) s = 1.0 + 1e-9;
  const double one_minus_s = 1.0 - s;
  const double h_n = (std::pow(nd + 0.5, one_minus_s) -
                      std::pow(0.5, one_minus_s)) /
                     one_minus_s;
  for (;;) {
    const double u = next_double() * h_n +
                     std::pow(0.5, one_minus_s) / one_minus_s;
    const double x = std::pow(u * one_minus_s, 1.0 / one_minus_s);
    const auto k = static_cast<std::uint32_t>(
        std::clamp(x + 0.5, 1.0, nd));
    const double top = std::pow(static_cast<double>(k), -s);
    const double envelope =
        std::pow(std::max(0.5, static_cast<double>(k) - 0.5), -s);
    if (next_double() * envelope <= top) return k - 1;
  }
}

std::size_t Pcg32::weighted_index(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (const double w : weights) total += std::max(0.0, w);
  if (total <= 0.0) return 0;
  double target = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= std::max(0.0, weights[i]);
    if (target < 0.0) return i;
  }
  return weights.size() - 1;
}

Pcg32 Pcg32::fork(std::uint64_t stream_key) const noexcept {
  const std::uint64_t mixed = splitmix64(state_ ^ splitmix64(stream_key));
  return Pcg32(mixed, splitmix64(mixed ^ inc_));
}

DiscreteSampler::DiscreteSampler(std::span<const double> weights) {
  require(!weights.empty(), "DiscreteSampler: weights must be non-empty");
  double total = 0.0;
  for (const double w : weights) {
    require(w >= 0.0, "DiscreteSampler: weights must be non-negative");
    total += w;
  }
  require(total > 0.0, "DiscreteSampler: weights must have a positive sum");

  const std::size_t n = weights.size();
  normalized_.resize(n);
  for (std::size_t i = 0; i < n; ++i) normalized_[i] = weights[i] / total;

  // Vose's alias method.
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i)
    scaled[i] = normalized_[i] * static_cast<double>(n);

  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(
        static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (const std::uint32_t i : large) prob_[i] = 1.0;
  for (const std::uint32_t i : small) prob_[i] = 1.0;
}

std::size_t DiscreteSampler::sample(Pcg32& rng) const noexcept {
  const auto n = prob_.size();
  const auto i = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
  return rng.next_double() < prob_[i] ? i : alias_[i];
}

}  // namespace wearscope::util
