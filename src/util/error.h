// Error-handling primitives shared by every wearscope module.
//
// Following the C++ Core Guidelines (E.2, E.3) we use exceptions for error
// handling and reserve assertions for programming errors.  All exceptions
// thrown by this project derive from wearscope::util::Error so callers can
// catch project failures distinctly from standard-library ones.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace wearscope::util {

/// Base class of every exception thrown by wearscope libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an on-disk or in-memory trace is malformed.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// Thrown when a configuration value is out of its documented domain.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// Thrown on I/O failures (file not found, short read, write failure).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// Precondition check: throws ConfigError when `condition` is false.
/// Use for validating caller-supplied configuration and arguments.
inline void require(bool condition, std::string_view message) {
  if (!condition) throw ConfigError(std::string(message));
}

/// Internal invariant check: throws std::logic_error when violated.
/// Use for conditions that indicate a bug in wearscope itself.
inline void ensure(bool condition, std::string_view message) {
  if (!condition) throw std::logic_error(std::string(message));
}

}  // namespace wearscope::util
