// Scheduling hooks for deterministic interleaving exploration.
//
// The concurrency primitives in util/sync.h, live/ring_buffer.h and the
// snapshot/serving layers call these hooks at every named choice point
// (mutex acquire, condvar park/notify, ring push/pop/close, barrier
// deposit, snapshot publish/read).  In production nothing is installed:
// current() is a single relaxed-ish atomic load of a null pointer and the
// inline helpers fall through — the hot paths are untouched.
//
// When sched::Scheduler (src/sched) installs itself, every hooked thread
// becomes a *managed* thread: exactly one managed thread runs between two
// choice points, the scheduler picks which one proceeds at every point,
// and blocking operations are virtualized (a parked thread waits on the
// scheduler, not the OS), so a whole run is a pure function of the
// scheduler's decision sequence.  That is what makes a failing schedule
// replayable from its seed + decision string.
//
// The hook interface is deliberately tiny and lives in util so that the
// lowest-level primitives can call it without depending on the harness.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

namespace wearscope::util::sched {

/// What kind of choice point the calling thread is standing on.  Purely
/// informational for traces and independence classification; blocking is
/// keyed on the object address, not the op.
enum class Op : std::uint8_t {
  kRingPush = 0,    ///< RingBuffer::push attempt (loop entry).
  kRingCommit,      ///< RingBuffer element commit (index publish).
  kRingPop,         ///< RingBuffer::pop attempt (loop entry).
  kRingClose,       ///< RingBuffer::close entry.
  kMutexLock,       ///< util::Mutex acquire.
  kSpinLock,        ///< util::SpinLock acquire.
  kCvWait,          ///< CondVar park (virtualized wait).
  kCvNotify,        ///< CondVar notify releasing parked waiters.
  kBarrierDeposit,  ///< SnapshotCoordinator::deposit entry.
  kBarrierWait,     ///< SnapshotCoordinator::wait_for entry.
  kStorePublish,    ///< SnapshotStore::publish entry / slot swap.
  kStoreRead,       ///< SnapshotStore::latest/at_epoch/retained_epochs.
  kJoin,            ///< join_gate park awaiting a managed thread's exit.
  kUserPoint,       ///< Model-defined choice point (sched scenarios).
};

/// Short stable label for trace output ("ring-push", "cv-wait", ...).
[[nodiscard]] const char* op_name(Op op) noexcept;

/// The scheduler side of the hook protocol.  All methods are called from
/// the managed threads themselves; implementations must be safe to enter
/// from any thread and must never call back into hooked primitives.
class Hook {
 public:
  virtual ~Hook() = default;

  /// Preemption point: the calling thread offers the scheduler a chance to
  /// run someone else.  Returns once the scheduler selects this thread.
  virtual void point(Op op, std::uintptr_t obj) = 0;

  /// The calling thread cannot proceed until `obj` is released/notified
  /// (mutex held elsewhere, condvar park, ...).  Returns once another
  /// thread called unblock(obj, ...) *and* the scheduler selected this
  /// thread again.
  virtual void block(Op op, std::uintptr_t obj) = 0;

  /// Marks threads blocked on `obj` runnable again: the oldest waiter when
  /// `all` is false (condvar notify_one), every waiter otherwise (mutex
  /// release, notify_all).  Does not yield — the caller keeps running.
  virtual void unblock(Op op, std::uintptr_t obj, bool all) = 0;

  /// Registers the calling thread as managed under `name` and parks it
  /// until the scheduler first selects it.  Called at the top of every
  /// managed thread body (see ShardWorker::start).
  virtual void thread_started(const char* name) = 0;

  /// Deregisters the calling thread (its body returned), wakes any thread
  /// gated on join_gate(this thread) and hands the token to the next
  /// runnable thread.
  virtual void thread_finished() = 0;

  /// Creator-side spawn handshake: returns once the thread identified by
  /// `id` has registered via thread_started().  Keeps the caller's token;
  /// this pins the instant new threads enter the candidate set to a fixed
  /// program point, which replay determinism depends on.
  virtual void await_thread_start(std::thread::id id) = 0;

  /// Join gate: parks the calling thread until the managed thread `id` has
  /// finished (no-op when `id` is unknown or already finished), so the
  /// std::thread::join that follows returns without stalling the harness.
  virtual void join_gate(std::thread::id id) = 0;
};

namespace detail {
/// The installed hook; null in production.
extern std::atomic<Hook*> g_hook;
}  // namespace detail

/// Installs `hook` (null to uninstall) and returns the previous one.
/// Installation is not itself synchronized against running managed
/// threads: install before spawning them, uninstall after joining them.
Hook* install(Hook* hook) noexcept;

/// The installed hook, or null.  The inline null check below is the entire
/// production cost of the hook layer.
[[nodiscard]] inline Hook* current() noexcept {
  return detail::g_hook.load(std::memory_order_acquire);
}

/// Fires a preemption point when a scheduler is attached.
inline void point(Op op, const void* obj) {
  if (Hook* h = current())
    h->point(op, reinterpret_cast<std::uintptr_t>(obj));
}

/// Spawn handshake helper (creator side); no-op without a scheduler.
inline void await_thread_start(std::thread::id id) {
  if (Hook* h = current()) h->await_thread_start(id);
}

/// Join gate helper; no-op without a scheduler.
inline void join_gate(std::thread::id id) {
  if (Hook* h = current()) h->join_gate(id);
}

/// Registration helper for managed thread bodies.
inline void thread_started(const char* name) {
  if (Hook* h = current()) h->thread_started(name);
}

/// Deregistration helper for managed thread bodies.
inline void thread_finished() {
  if (Hook* h = current()) h->thread_finished();
}

}  // namespace wearscope::util::sched
