#include "util/sim_time.h"

#include <array>
#include <cstdio>

namespace wearscope::util {

std::string weekday_name(Weekday w) {
  static constexpr std::array<const char*, 7> kNames = {
      "Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"};
  return kNames[static_cast<std::size_t>(w)];
}

std::string format_sim_time(SimTime t) {
  const int day = day_of(t);
  const auto rem = t - day_start(day);
  const int h = static_cast<int>(rem / kSecondsPerHour);
  const int m = static_cast<int>((rem % kSecondsPerHour) / kSecondsPerMinute);
  const int s = static_cast<int>(rem % kSecondsPerMinute);
  char buf[48];
  std::snprintf(buf, sizeof(buf), "day%03d %02d:%02d:%02d (%s)", day, h, m, s,
                weekday_name(weekday_of(t)).c_str());
  return buf;
}

}  // namespace wearscope::util
