#include "util/sim_time.h"

#include <array>
#include <cstdio>

#include "util/error.h"

namespace wearscope::util {

std::string weekday_name(Weekday w) {
  static constexpr std::array<const char*, 7> kNames = {
      "Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"};
  return kNames[static_cast<std::size_t>(w)];
}

std::string format_sim_time(SimTime t) {
  const int day = day_of(t);
  const auto rem = t - day_start(day);
  const int h = static_cast<int>(rem / kSecondsPerHour);
  const int m = static_cast<int>((rem % kSecondsPerHour) / kSecondsPerMinute);
  const int s = static_cast<int>(rem % kSecondsPerMinute);
  char buf[48];
  std::snprintf(buf, sizeof(buf), "day%03d %02d:%02d:%02d (%s)", day, h, m, s,
                weekday_name(weekday_of(t)).c_str());
  return buf;
}

SimTime parse_duration_s(const std::string& text, const std::string& flag) {
  require(!text.empty(), flag + ": empty value");
  SimTime scale = 1;
  std::string digits = text;
  switch (text.back()) {
    case 'd': scale = kSecondsPerDay; break;
    case 'h': scale = kSecondsPerHour; break;
    case 'm': scale = kSecondsPerMinute; break;
    case 's': scale = 1; break;
    default:
      if (text.back() < '0' || text.back() > '9') {
        throw ConfigError(flag + ": unknown suffix in '" + text +
                          "' (use s, m, h or d)");
      }
  }
  if (scale != 1 || text.back() == 's') digits.pop_back();
  try {
    return static_cast<SimTime>(std::stoll(digits)) * scale;
  } catch (const std::exception&) {
    throw ConfigError(flag + ": cannot parse '" + text + "'");
  }
}

}  // namespace wearscope::util
