#include "util/strings.h"

#include <algorithm>
#include <array>
#include <cctype>

namespace wearscope::util {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view text) noexcept {
  const auto is_space = [](char c) {
    return std::isspace(static_cast<unsigned char>(c)) != 0;
  };
  while (!text.empty() && is_space(text.front())) text.remove_prefix(1);
  while (!text.empty() && is_space(text.back())) text.remove_suffix(1);
  return text;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool host_matches_suffix(std::string_view host, std::string_view suffix) {
  if (suffix.empty() || host.size() < suffix.size()) return false;
  const std::string h = to_lower(host);
  const std::string s = to_lower(suffix);
  if (h == s) return true;
  if (h.size() > s.size() && h.compare(h.size() - s.size(), s.size(), s) == 0 &&
      h[h.size() - s.size() - 1] == '.') {
    return true;
  }
  return false;
}

std::string registrable_domain(std::string_view host) {
  static constexpr std::array<std::string_view, 6> kTwoPartSuffixes = {
      "co.uk", "com.au", "co.jp", "com.br", "co.nz", "org.uk"};
  const std::string h = to_lower(trim(host));
  const std::vector<std::string> labels = split(h, '.');
  if (labels.size() <= 2) return h;
  const std::string tail2 = labels[labels.size() - 2] + "." + labels.back();
  const bool two_part =
      std::find(kTwoPartSuffixes.begin(), kTwoPartSuffixes.end(), tail2) !=
      kTwoPartSuffixes.end();
  const std::size_t keep = two_part ? 3 : 2;
  if (labels.size() <= keep) return h;
  std::string out;
  for (std::size_t i = labels.size() - keep; i < labels.size(); ++i) {
    if (!out.empty()) out += '.';
    out += labels[i];
  }
  return out;
}

bool has_label(std::string_view host, std::string_view token) {
  if (token.empty()) return false;
  const std::string h = to_lower(host);
  const std::string t = to_lower(token);
  for (const std::string& label : split(h, '.')) {
    if (label == t) return true;
  }
  return false;
}

}  // namespace wearscope::util
