#include "util/strings.h"

#include <algorithm>
#include <array>
#include <cctype>

namespace wearscope::util {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view text) noexcept {
  const auto is_space = [](char c) {
    return std::isspace(static_cast<unsigned char>(c)) != 0;
  };
  while (!text.empty() && is_space(text.front())) text.remove_prefix(1);
  while (!text.empty() && is_space(text.back())) text.remove_suffix(1);
  return text;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view to_lower_into(std::string_view text, std::string& out) {
  out.assign(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool host_matches_suffix(std::string_view host, std::string_view suffix) {
  if (suffix.empty() || host.size() < suffix.size()) return false;
  const std::string h = to_lower(host);
  const std::string s = to_lower(suffix);
  if (h == s) return true;
  if (h.size() > s.size() && h.compare(h.size() - s.size(), s.size(), s) == 0 &&
      h[h.size() - s.size() - 1] == '.') {
    return true;
  }
  return false;
}

std::string registrable_domain(std::string_view host) {
  const std::string h = to_lower(trim(host));
  return std::string(registrable_domain_of_lower(h));
}

std::string_view registrable_domain_of_lower(
    std::string_view host_lower) noexcept {
  static constexpr std::array<std::string_view, 6> kTwoPartSuffixes = {
      "co.uk", "com.au", "co.jp", "com.br", "co.nz", "org.uk"};
  // Fewer than two dots: the host is its own registrable domain.
  const std::size_t last = host_lower.rfind('.');
  if (last == std::string_view::npos || last == 0) return host_lower;
  const std::size_t second = host_lower.rfind('.', last - 1);
  if (second == std::string_view::npos) return host_lower;
  const std::string_view tail2 = host_lower.substr(second + 1);
  if (std::find(kTwoPartSuffixes.begin(), kTwoPartSuffixes.end(), tail2) ==
      kTwoPartSuffixes.end()) {
    return tail2;
  }
  // Two-part public suffix: keep three labels when the host has them.
  if (second == 0) return host_lower;
  const std::size_t third = host_lower.rfind('.', second - 1);
  if (third == std::string_view::npos) return host_lower;
  return host_lower.substr(third + 1);
}

bool has_label(std::string_view host, std::string_view token) {
  if (token.empty()) return false;
  const std::string h = to_lower(host);
  const std::string t = to_lower(token);
  return has_label_lower(h, t);
}

bool has_label_lower(std::string_view host_lower,
                     std::string_view token_lower) noexcept {
  if (token_lower.empty()) return false;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= host_lower.size(); ++i) {
    if (i == host_lower.size() || host_lower[i] == '.') {
      if (host_lower.substr(start, i - start) == token_lower) return true;
      start = i + 1;
    }
  }
  return false;
}

}  // namespace wearscope::util
