#include "util/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace wearscope::util {

std::string format_num(double value, int digits) {
  char buf[64];
  if (value != 0.0 && (std::fabs(value) >= 1e6 || std::fabs(value) < 1e-3)) {
    std::snprintf(buf, sizeof(buf), "%.*g", digits + 2, value);
    return buf;
  }
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  std::string s = buf;
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

std::string bar_chart(const std::vector<Bar>& bars, std::size_t width,
                      bool log_scale) {
  if (bars.empty()) return "(empty)\n";
  std::size_t label_width = 0;
  double max_v = 0.0;
  double min_pos = 0.0;
  for (const Bar& b : bars) {
    label_width = std::max(label_width, b.label.size());
    max_v = std::max(max_v, b.value);
    if (b.value > 0.0 && (min_pos == 0.0 || b.value < min_pos))
      min_pos = b.value;
  }
  std::string out;
  for (const Bar& b : bars) {
    double frac = 0.0;
    if (b.value > 0.0 && max_v > 0.0) {
      if (log_scale && max_v > min_pos) {
        frac = std::log10(b.value / min_pos) / std::log10(max_v / min_pos);
        frac = std::max(frac, 0.02);  // positive values always visible
      } else {
        frac = b.value / max_v;
      }
    }
    const auto len = static_cast<std::size_t>(
        std::lround(frac * static_cast<double>(width)));
    out += b.label;
    out.append(label_width - b.label.size() + 1, ' ');
    out += '|';
    out.append(len, '#');
    out.append(width - len + 1, ' ');
    out += format_num(b.value);
    out += '\n';
  }
  return out;
}

std::string sparkline(const std::vector<double>& values) {
  static const char* kBlocks[] = {" ", ".", ":", "-", "=", "+", "*", "#", "@"};
  if (values.empty()) return "";
  const double max_v = *std::max_element(values.begin(), values.end());
  std::string out;
  for (const double v : values) {
    std::size_t idx = 0;
    if (max_v > 0.0 && v > 0.0) {
      idx = static_cast<std::size_t>(std::lround(v / max_v * 8.0));
      idx = std::clamp<std::size_t>(idx, 1, 8);
    }
    out += kBlocks[idx];
  }
  return out;
}

std::string table(const std::vector<std::string>& header,
                  const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(header.size(), 0);
  for (std::size_t c = 0; c < header.size(); ++c)
    widths[c] = header[c].size();
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }
  const auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      line += cell;
      line.append(widths[c] - cell.size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };
  std::string out = render_row(header);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule.append(widths[c], '-');
    rule.append(2, ' ');
  }
  while (!rule.empty() && rule.back() == ' ') rule.pop_back();
  out += rule + "\n";
  for (const auto& row : rows) out += render_row(row);
  return out;
}

}  // namespace wearscope::util
