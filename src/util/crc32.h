// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte spans.
//
// Used by the blocked trace format (trace/block_io) to frame-check every
// block payload: a flipped bit anywhere in a block fails its checksum, so
// the lenient reader can quarantine exactly one block and resync at the
// next frame header instead of abandoning the whole file tail.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace wearscope::util {

/// CRC-32 of `bytes` (init 0xFFFFFFFF, final xor 0xFFFFFFFF — the zlib
/// convention, so crc32({}) == 0).
[[nodiscard]] std::uint32_t crc32(std::span<const std::byte> bytes) noexcept;

/// Incremental form: feed `crc32_update(seed, chunk)` the running value
/// (start from 0) to checksum data that arrives in pieces.
[[nodiscard]] std::uint32_t crc32_update(
    std::uint32_t crc, std::span<const std::byte> bytes) noexcept;

}  // namespace wearscope::util
