#include "util/crc32.h"

#include <array>

namespace wearscope::util {

namespace {

/// Slicing-by-8 lookup tables for the reflected polynomial, built once at
/// static-init time.  Table 0 is the classic byte-at-a-time table; table j
/// advances a byte j positions through the CRC register, letting the hot
/// loop fold 8 input bytes per iteration instead of 1 — block checksums
/// sit on the bundle-load critical path, so the ~6x matters.
using CrcTables = std::array<std::array<std::uint32_t, 256>, 8>;

const CrcTables kCrcTables = [] {
  CrcTables tables{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][n] = c;
  }
  for (std::uint32_t n = 0; n < 256; ++n) {
    for (std::size_t j = 1; j < tables.size(); ++j) {
      tables[j][n] =
          (tables[j - 1][n] >> 8) ^ tables[0][tables[j - 1][n] & 0xFFu];
    }
  }
  return tables;
}();

/// Endian-independent unaligned little-endian 32-bit load (compiles to a
/// single mov on little-endian targets).
inline std::uint32_t load_le32(const std::byte* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

std::uint32_t crc32_update(std::uint32_t crc,
                           std::span<const std::byte> bytes) noexcept {
  const auto& t = kCrcTables;
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  const std::byte* p = bytes.data();
  std::size_t len = bytes.size();
  while (len >= 8) {
    const std::uint32_t lo = c ^ load_le32(p);
    const std::uint32_t hi = load_le32(p + 4);
    c = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^ t[5][(lo >> 16) & 0xFFu] ^
        t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^ t[2][(hi >> 8) & 0xFFu] ^
        t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    p += 8;
    len -= 8;
  }
  for (; len > 0; ++p, --len) {
    c = t[0][(c ^ static_cast<std::uint32_t>(*p)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(std::span<const std::byte> bytes) noexcept {
  return crc32_update(0, bytes);
}

}  // namespace wearscope::util
