#include "util/flags.h"

#include <charconv>
#include <cstdio>
#include <utility>

#include "util/error.h"

namespace wearscope::util {

FlagParser::FlagParser(std::string program_description)
    : description_(std::move(program_description)) {}

void FlagParser::add(std::string name, Flag flag) {
  require(!flags_.contains(name), "duplicate flag --" + name);
  flags_.emplace(std::move(name), std::move(flag));
}

void FlagParser::add_int(std::string name, std::int64_t* value,
                         std::string help) {
  Flag f;
  f.help = std::move(help);
  f.default_repr = std::to_string(*value);
  f.set = [value, name](std::string_view text) {
    std::int64_t parsed = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), parsed);
    require(ec == std::errc{} && ptr == text.data() + text.size(),
            "flag --" + name + ": expected integer, got '" +
                std::string(text) + "'");
    *value = parsed;
  };
  add(std::move(name), std::move(f));
}

void FlagParser::add_double(std::string name, double* value,
                            std::string help) {
  Flag f;
  f.help = std::move(help);
  f.default_repr = std::to_string(*value);
  f.set = [value, name](std::string_view text) {
    try {
      std::size_t used = 0;
      const double parsed = std::stod(std::string(text), &used);
      require(used == text.size(), "trailing characters");
      *value = parsed;
    } catch (const std::exception&) {
      throw ConfigError("flag --" + name + ": expected number, got '" +
                        std::string(text) + "'");
    }
  };
  add(std::move(name), std::move(f));
}

void FlagParser::add_string(std::string name, std::string* value,
                            std::string help) {
  Flag f;
  f.help = std::move(help);
  f.default_repr = *value;
  f.set = [value](std::string_view text) { *value = std::string(text); };
  add(std::move(name), std::move(f));
}

void FlagParser::add_bool(std::string name, bool* value, std::string help) {
  Flag f;
  f.help = std::move(help);
  f.is_bool = true;
  f.default_repr = *value ? "true" : "false";
  f.set = [value, name](std::string_view text) {
    if (text.empty() || text == "true" || text == "1") {
      *value = true;
    } else if (text == "false" || text == "0") {
      *value = false;
    } else {
      throw ConfigError("flag --" + name + ": expected boolean, got '" +
                        std::string(text) + "'");
    }
  };
  add(std::move(name), std::move(f));
}

bool FlagParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help().c_str(), stdout);
      return false;
    }
    require(arg.starts_with("--"), "unexpected argument '" + std::string(arg) +
                                       "' (flags start with --)");
    arg.remove_prefix(2);
    std::string name;
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      name = std::string(arg.substr(0, eq));
      value = std::string(arg.substr(eq + 1));
      has_value = true;
    } else {
      name = std::string(arg);
    }
    const auto it = flags_.find(name);
    require(it != flags_.end(), "unknown flag --" + name);
    if (!has_value && !it->second.is_bool) {
      require(i + 1 < argc, "flag --" + name + " requires a value");
      value = argv[++i];
      has_value = true;
    }
    it->second.set(value);
  }
  return true;
}

std::string FlagParser::help() const {
  std::string out = description_ + "\n\nFlags:\n";
  for (const auto& [name, flag] : flags_) {
    out += "  --" + name + (flag.is_bool ? "" : "=<value>") + "\n        " +
           flag.help + " (default: " + flag.default_repr + ")\n";
  }
  return out;
}

}  // namespace wearscope::util
