// Count-min sketch + bounded heavy-hitter tracking.
//
// CountMin (Cormode & Muthukrishnan): depth d = 4 rows of width w = 8192
// counters; an item's estimate is the minimum of its d counters, an
// overestimate by at most (e/w) * total_count with probability
// 1 - e^-d.  Merging is element-wise addition, so per-shard sketches
// combine exactly.
//
// HeavyHitters pairs the sketch with a bounded candidate table: keys seen
// so far keep their exact counts while the table has room (default 4096
// entries); when full, the smallest candidate is evicted and survives
// only inside the count-min counters.  As long as the number of distinct
// keys stays at or below the capacity — true for the host dictionaries
// the live layer tracks — top(k) is exact, and therefore trivially a
// superset of the exact top-k (the gate in docs/DESIGN.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace wearscope::sketch {

/// Bounded-memory frequency estimator over 64-bit-hashed items.
class CountMin {
 public:
  CountMin(std::size_t depth = 4, std::size_t width = 8192);

  /// Adds `count` to the item with the given (well-mixed) hash.
  void add_hashed(std::uint64_t hash, std::uint64_t count = 1);

  /// Estimated count of the item (never an underestimate).
  [[nodiscard]] std::uint64_t estimate(std::uint64_t hash) const;

  /// Element-wise sum; `other` must share depth and width.
  void merge(const CountMin& other);

  /// Bytes held by the counter table.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return table_.size() * sizeof(std::uint64_t);
  }

  [[nodiscard]] std::size_t depth() const noexcept { return depth_; }
  [[nodiscard]] std::size_t width() const noexcept { return width_; }
  /// Raw counter table (depth rows of width counters) — the sketch's
  /// whole state, exposed for serialization (fed/partial_io).
  [[nodiscard]] const std::vector<std::uint64_t>& table() const noexcept {
    return table_;
  }

  /// Rebuilds a sketch from serialized dimensions and counters.  Throws
  /// util::ConfigError when `table` is not depth x width.
  [[nodiscard]] static CountMin from_table(std::size_t depth,
                                           std::size_t width,
                                           std::vector<std::uint64_t> table);

 private:
  std::size_t depth_ = 0;
  std::size_t width_ = 0;
  std::vector<std::uint64_t> table_;  ///< depth_ rows of width_ counters.
};

/// Top-k tracker over string keys, bounded by `capacity` candidates.
class HeavyHitters {
 public:
  explicit HeavyHitters(std::size_t capacity = 4096);

  /// Observes `count` occurrences of `key`.
  void add(std::string_view key, std::uint64_t count = 1);

  /// The k heaviest keys, by count descending then key ascending (a total
  /// order, so output never depends on hash iteration).
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> top(
      std::size_t k) const;

  /// Number of candidates currently tracked.
  [[nodiscard]] std::size_t size() const noexcept {
    return candidates_.size();
  }

  /// Folds `other`'s candidates and counters into this tracker.
  void merge(const HeavyHitters& other);

  /// Bytes held (counter table + candidate strings, approximate).
  [[nodiscard]] std::size_t memory_bytes() const;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// The backing count-min sketch (for serialization).
  [[nodiscard]] const CountMin& counters() const noexcept { return counts_; }
  /// Every tracked candidate sorted by key — a deterministic byte layout
  /// for serialization, independent of hash iteration order.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
  sorted_candidates() const;

  /// Rebuilds a tracker from serialized state.  Throws util::ConfigError
  /// when more candidates arrive than `capacity` admits.
  [[nodiscard]] static HeavyHitters from_state(
      std::size_t capacity, CountMin counters,
      std::vector<std::pair<std::string, std::uint64_t>> candidates);

 private:
  /// Drops the smallest candidate (called when over capacity).
  void evict();

  std::size_t capacity_ = 0;
  CountMin counts_;
  std::unordered_map<std::string, std::uint64_t> candidates_;
};

}  // namespace wearscope::sketch
