#include "sketch/countmin.h"

#include <algorithm>

#include "sketch/hashing.h"
#include "util/error.h"

namespace wearscope::sketch {

namespace {

/// Independent per-row hash: remix the item hash with the row index.
[[nodiscard]] std::uint64_t row_hash(std::uint64_t hash, std::size_t row) {
  return mix64(hash + 0x9e3779b97f4a7c15ull * (row + 1));
}

}  // namespace

CountMin::CountMin(std::size_t depth, std::size_t width)
    : depth_(depth), width_(width), table_(depth * width, 0) {
  util::require(depth >= 1 && width >= 16, "count-min: bad dimensions");
}

void CountMin::add_hashed(std::uint64_t hash, std::uint64_t count) {
  for (std::size_t row = 0; row < depth_; ++row)
    table_[row * width_ + row_hash(hash, row) % width_] += count;
}

std::uint64_t CountMin::estimate(std::uint64_t hash) const {
  std::uint64_t best = ~std::uint64_t{0};
  for (std::size_t row = 0; row < depth_; ++row)
    best = std::min(best, table_[row * width_ + row_hash(hash, row) % width_]);
  return best;
}

CountMin CountMin::from_table(std::size_t depth, std::size_t width,
                              std::vector<std::uint64_t> table) {
  CountMin sketch(depth, width);
  util::require(table.size() == depth * width,
                "count-min: serialized table is not depth x width");
  sketch.table_ = std::move(table);
  return sketch;
}

void CountMin::merge(const CountMin& other) {
  util::require(depth_ == other.depth_ && width_ == other.width_,
                "count-min: merge dimensions differ");
  for (std::size_t i = 0; i < table_.size(); ++i) table_[i] += other.table_[i];
}

HeavyHitters::HeavyHitters(std::size_t capacity) : capacity_(capacity) {
  util::require(capacity >= 1, "heavy-hitters: capacity must be >= 1");
}

void HeavyHitters::add(std::string_view key, std::uint64_t count) {
  const std::uint64_t h = hash_bytes(key);
  counts_.add_hashed(h, count);
  std::string owned(key);
  const auto it = candidates_.find(owned);
  if (it != candidates_.end()) {
    it->second += count;
    return;
  }
  if (candidates_.size() < capacity_) {
    // Room left: track the exact running count.  While the distinct-key
    // count stays at or below capacity nothing is ever evicted, so every
    // candidate count is exact.
    candidates_.emplace(std::move(owned), count);
    return;
  }
  // Table full: admit at the (over-)estimate and drop the smallest.
  candidates_.emplace(std::move(owned), counts_.estimate(h));
  evict();
}

void HeavyHitters::evict() {
  while (candidates_.size() > capacity_) {
    // Smallest count, largest key: the exact inverse of the top() order,
    // so eviction never depends on hash iteration either.
    auto victim = candidates_.begin();
    for (auto it = candidates_.begin(); it != candidates_.end(); ++it) {
      if (it->second < victim->second ||
          (it->second == victim->second && it->first > victim->first)) {
        victim = it;
      }
    }
    candidates_.erase(victim);
  }
}

std::vector<std::pair<std::string, std::uint64_t>> HeavyHitters::top(
    std::size_t k) const {
  std::vector<std::pair<std::string, std::uint64_t>> all(candidates_.begin(),
                                                         candidates_.end());
  std::sort(all.begin(), all.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (all.size() > k) all.resize(k);
  return all;
}

void HeavyHitters::merge(const HeavyHitters& other) {
  util::require(capacity_ == other.capacity_,
                "heavy-hitters: merge capacities differ");
  counts_.merge(other.counts_);
  // Fold candidates in sorted order so any evictions below are the same
  // for every merge of the same two states.
  std::vector<std::pair<std::string, std::uint64_t>> theirs(
      other.candidates_.begin(), other.candidates_.end());
  std::sort(theirs.begin(), theirs.end());
  for (auto& [key, count] : theirs) {
    const auto it = candidates_.find(key);
    if (it != candidates_.end()) {
      it->second += count;
    } else {
      candidates_.emplace(std::move(key), count);
    }
  }
  evict();
}

std::vector<std::pair<std::string, std::uint64_t>>
HeavyHitters::sorted_candidates() const {
  std::vector<std::pair<std::string, std::uint64_t>> all(candidates_.begin(),
                                                         candidates_.end());
  std::sort(all.begin(), all.end());
  return all;
}

HeavyHitters HeavyHitters::from_state(
    std::size_t capacity, CountMin counters,
    std::vector<std::pair<std::string, std::uint64_t>> candidates) {
  HeavyHitters tracker(capacity);
  util::require(candidates.size() <= capacity,
                "heavy-hitters: serialized candidates exceed capacity");
  tracker.counts_ = std::move(counters);
  for (auto& [key, count] : candidates) {
    util::require(tracker.candidates_.emplace(std::move(key), count).second,
                  "heavy-hitters: serialized candidate key repeated");
  }
  return tracker;
}

std::size_t HeavyHitters::memory_bytes() const {
  std::size_t bytes = counts_.memory_bytes();
  // Commutative sum: iteration order cannot reach the total.
  // wearscope-lint: allow(unordered-flow)
  for (const auto& [key, count] : candidates_)
    bytes += key.size() + sizeof(count);
  return bytes;
}

}  // namespace wearscope::sketch
