// t-digest quantile sketch (Dunning & Ertl), merging-digest variant.
//
// Centroid sizes follow the arcsine scale function k(q) =
// delta/(2*pi) * asin(2q - 1), which keeps centroids tiny near both
// tails and coarse in the middle — quantile error is relative to
// q(1 - q), so p50/p95/p99 all come out tight.  At the default
// compression delta = 200 the digest holds at most ~2*delta centroids
// (~a few KiB) no matter how many values stream in; the live sketch gate
// (docs/DESIGN.md) budgets 1% relative error on p50/p95/p99 of
// transaction sizes.
//
// Incoming values buffer until kBufferLimit and then merge in one sorted
// sweep; merge(other) folds a second digest in the same way, so
// per-shard digests combine deterministically (estimates depend only on
// the value stream and the merge order, both fixed by the caller).
#pragma once

#include <cstddef>
#include <vector>

namespace wearscope::sketch {

/// Serializable state of a (compressed) TDigest: what fed/partial_io
/// writes to disk.  `means`/`weights` are the sorted centroid list after
/// a compression sweep, so restoring and re-freezing is a fixed point.
struct TDigestState {
  double compression = 200.0;
  double min = 0.0;
  double max = 0.0;
  bool empty = true;
  std::vector<double> means;
  std::vector<double> weights;  ///< Parallel to `means`.
};

/// Bounded-memory quantile estimator over doubles.
class TDigest {
 public:
  /// Larger compression = more centroids = tighter quantiles.
  explicit TDigest(double compression = 200.0);

  /// Observes `value` with the given weight (weight >= 1).
  void add(double value, double weight = 1.0);

  /// Folds `other` into this digest.
  void merge(const TDigest& other);

  /// Estimated q-quantile (q in [0, 1]); 0 for an empty digest.
  [[nodiscard]] double quantile(double q) const;

  /// Total weight observed.
  [[nodiscard]] double count() const;

  /// Bytes held by the centroid and buffer arrays.
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

  /// Flushes the buffer and snapshots the full digest state (for
  /// serialization).  state() then from_state() round-trips exactly.
  [[nodiscard]] TDigestState state() const;

  /// Rebuilds a digest from serialized state.  Throws util::ConfigError
  /// on mismatched mean/weight lengths or an out-of-range compression.
  [[nodiscard]] static TDigest from_state(const TDigestState& state);

 private:
  struct Centroid {
    double mean = 0.0;
    double weight = 0.0;
  };

  /// Sorts buffered points into the centroid list (see the scale
  /// function above); const because quantile() must flush lazily.
  void compress() const;

  double compression_ = 200.0;
  mutable std::vector<Centroid> centroids_;  ///< Sorted by mean.
  mutable std::vector<Centroid> buffer_;     ///< Unmerged recent points.
  mutable double total_weight_ = 0.0;        ///< Weight inside centroids_.
  double min_ = 0.0;                         ///< Smallest value observed.
  double max_ = 0.0;                         ///< Largest value observed.
  bool empty_ = true;
};

}  // namespace wearscope::sketch
