// HyperLogLog distinct-value estimator (Flajolet et al. 2007, with the
// linear-counting small-range correction).
//
// Fixed precision p = 12: 4096 one-byte registers, standard error
// 1.04 / sqrt(4096) ~= 1.63%.  The live sketch gate (docs/DESIGN.md)
// budgets 2% relative error on distinct-user counts, leaving slack over
// the theoretical bound.  Memory is a flat 4 KiB per sketch regardless of
// stream cardinality — that is the whole point: the live shards swap
// O(users) hash sets for these.
//
// Merging two sketches (register-wise max) gives exactly the sketch of
// the union of their streams, so per-shard sketches combine loss-free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sketch/hashing.h"

namespace wearscope::sketch {

/// Register-index bits; 2^12 registers.
inline constexpr int kHllPrecision = 12;

/// Bounded-memory distinct counter over 64-bit items.
class Hll {
 public:
  Hll();

  /// Observes one item (hashed internally with mix64).
  void add(std::uint64_t item) { add_hashed(mix64(item)); }

  /// Observes an already well-mixed 64-bit hash (e.g. hash_bytes output).
  void add_hashed(std::uint64_t hash);

  /// Estimated number of distinct items observed.
  [[nodiscard]] double estimate() const;

  /// Union: after this call the sketch estimates `*this`'s stream joined
  /// with `other`'s.
  void merge(const Hll& other);

  /// Bytes held (the register array).
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return registers_.size();
  }

  /// Raw register array — the sketch's whole state, exposed so the
  /// federation layer (fed/partial_io) can serialize it byte for byte.
  [[nodiscard]] const std::vector<std::uint8_t>& registers() const noexcept {
    return registers_;
  }

  /// Rebuilds a sketch from a serialized register array.  Throws
  /// util::ConfigError unless `registers` holds exactly 2^kHllPrecision
  /// entries (the only state this precision can have produced).
  [[nodiscard]] static Hll from_registers(std::vector<std::uint8_t> registers);

 private:
  std::vector<std::uint8_t> registers_;  ///< 2^kHllPrecision rank maxima.
};

}  // namespace wearscope::sketch
