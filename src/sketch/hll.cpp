#include "sketch/hll.h"

#include <bit>
#include <cmath>
#include <utility>

#include "util/error.h"

namespace wearscope::sketch {

namespace {

constexpr std::size_t kRegisters = std::size_t{1} << kHllPrecision;

/// Bias-correction constant alpha_m for m >= 128.
constexpr double alpha() {
  return 0.7213 / (1.0 + 1.079 / static_cast<double>(kRegisters));
}

}  // namespace

Hll::Hll() : registers_(kRegisters, 0) {}

void Hll::add_hashed(std::uint64_t hash) {
  const std::size_t idx =
      static_cast<std::size_t>(hash >> (64 - kHllPrecision));
  // Rank = position of the first set bit in the remaining 52 bits,
  // counting from 1; an all-zero suffix ranks one past its width.
  const std::uint64_t rest = hash << kHllPrecision;
  const int rank =
      rest == 0 ? (64 - kHllPrecision + 1) : std::countl_zero(rest) + 1;
  if (registers_[idx] < rank) registers_[idx] = static_cast<std::uint8_t>(rank);
}

double Hll::estimate() const {
  double inverse_sum = 0.0;
  std::size_t zeros = 0;
  for (const std::uint8_t r : registers_) {
    inverse_sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) ++zeros;
  }
  const double m = static_cast<double>(kRegisters);
  const double raw = alpha() * m * m / inverse_sum;
  // Small-range correction: linear counting while any register is empty
  // and the raw estimate is below 2.5m.
  if (raw <= 2.5 * m && zeros > 0)
    return m * std::log(m / static_cast<double>(zeros));
  return raw;
}

Hll Hll::from_registers(std::vector<std::uint8_t> registers) {
  util::require(registers.size() == kRegisters,
                "hll: serialized register count does not match precision");
  Hll sketch;
  sketch.registers_ = std::move(registers);
  return sketch;
}

void Hll::merge(const Hll& other) {
  for (std::size_t i = 0; i < kRegisters; ++i) {
    if (registers_[i] < other.registers_[i])
      registers_[i] = other.registers_[i];
  }
}

}  // namespace wearscope::sketch
