#include "sketch/tdigest.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace wearscope::sketch {

namespace {

/// Buffered points merged per compression sweep.
constexpr std::size_t kBufferLimit = 512;

constexpr double kPi = 3.14159265358979323846;

}  // namespace

TDigest::TDigest(double compression) : compression_(compression) {
  util::require(compression >= 20.0, "t-digest: compression must be >= 20");
  centroids_.reserve(static_cast<std::size_t>(2.0 * compression) + 8);
  buffer_.reserve(kBufferLimit);
}

void TDigest::add(double value, double weight) {
  if (empty_) {
    min_ = max_ = value;
    empty_ = false;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  buffer_.push_back(Centroid{value, weight});
  if (buffer_.size() >= kBufferLimit) compress();
}

void TDigest::merge(const TDigest& other) {
  if (other.empty_) return;
  other.compress();
  if (empty_) {
    min_ = other.min_;
    max_ = other.max_;
    empty_ = false;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (const Centroid& c : other.centroids_) {
    buffer_.push_back(c);
    if (buffer_.size() >= kBufferLimit) compress();
  }
}

double TDigest::count() const {
  double buffered = 0.0;
  for (const Centroid& c : buffer_) buffered += c.weight;
  return total_weight_ + buffered;
}

std::size_t TDigest::memory_bytes() const noexcept {
  return (centroids_.capacity() + buffer_.capacity()) * sizeof(Centroid);
}

TDigestState TDigest::state() const {
  compress();
  TDigestState state;
  state.compression = compression_;
  state.min = min_;
  state.max = max_;
  state.empty = empty_;
  state.means.reserve(centroids_.size());
  state.weights.reserve(centroids_.size());
  for (const Centroid& c : centroids_) {
    state.means.push_back(c.mean);
    state.weights.push_back(c.weight);
  }
  return state;
}

TDigest TDigest::from_state(const TDigestState& state) {
  util::require(state.means.size() == state.weights.size(),
                "t-digest: serialized mean/weight lengths differ");
  util::require(!state.empty || state.means.empty(),
                "t-digest: serialized empty digest carries centroids");
  TDigest digest(state.compression);
  digest.min_ = state.min;
  digest.max_ = state.max;
  digest.empty_ = state.empty;
  digest.centroids_.reserve(state.means.size());
  for (std::size_t i = 0; i < state.means.size(); ++i) {
    digest.centroids_.push_back(Centroid{state.means[i], state.weights[i]});
    digest.total_weight_ += state.weights[i];
  }
  return digest;
}

void TDigest::compress() const {
  if (buffer_.empty()) return;
  centroids_.insert(centroids_.end(), buffer_.begin(), buffer_.end());
  buffer_.clear();
  // Stable sort: equal means merge in arrival order, keeping the sweep
  // deterministic for any input permutation of equal values.
  std::stable_sort(centroids_.begin(), centroids_.end(),
                   [](const Centroid& a, const Centroid& b) {
                     return a.mean < b.mean;
                   });
  double total = 0.0;
  for (const Centroid& c : centroids_) total += c.weight;

  const auto k_of = [this](double q) {
    return compression_ / (2.0 * kPi) * std::asin(2.0 * q - 1.0);
  };

  std::vector<Centroid> merged;
  merged.reserve(centroids_.size());
  Centroid cur = centroids_.front();
  double weight_before = 0.0;  // total weight already emitted
  double k_lo = k_of(0.0);
  for (std::size_t i = 1; i < centroids_.size(); ++i) {
    const Centroid& next = centroids_[i];
    const double proposed = cur.weight + next.weight;
    const double q_hi = (weight_before + proposed) / total;
    if (k_of(q_hi) - k_lo <= 1.0) {
      cur.mean = (cur.mean * cur.weight + next.mean * next.weight) / proposed;
      cur.weight = proposed;
    } else {
      merged.push_back(cur);
      weight_before += cur.weight;
      k_lo = k_of(weight_before / total);
      cur = next;
    }
  }
  merged.push_back(cur);
  centroids_ = std::move(merged);
  total_weight_ = total;
}

double TDigest::quantile(double q) const {
  compress();
  if (centroids_.empty()) return 0.0;
  if (centroids_.size() == 1) return centroids_.front().mean;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * total_weight_;

  // Centroid i sits at the midpoint of its weight span; interpolate
  // linearly between neighbouring midpoints, anchored at min/max.
  double cum = 0.0;
  double prev_center = 0.0;
  double prev_mean = min_;
  for (const Centroid& c : centroids_) {
    const double center = cum + c.weight / 2.0;
    if (target < center) {
      const double span = center - prev_center;
      const double frac = span > 0.0 ? (target - prev_center) / span : 0.0;
      return prev_mean + frac * (c.mean - prev_mean);
    }
    prev_center = center;
    prev_mean = c.mean;
    cum += c.weight;
  }
  const double span = total_weight_ - prev_center;
  const double frac =
      span > 0.0 ? (target - prev_center) / span : 1.0;
  return prev_mean + frac * (max_ - prev_mean);
}

}  // namespace wearscope::sketch
