// Shared hash primitives for the bounded-memory sketches.
//
// All sketches hash through these two functions so estimates are
// reproducible across platforms and runs: mix64 is the splitmix64
// finalizer (the same bit-mixer par::shard_of builds on) and hash_bytes
// is FNV-1a folded through it.  Nothing here is seeded from the
// environment — a sketch fed the same stream always holds the same state.
#pragma once

#include <cstdint>
#include <string_view>

namespace wearscope::sketch {

/// splitmix64 finalizer: a cheap, well-distributed 64 -> 64 bit mix.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// FNV-1a over the bytes, finalized with mix64 (FNV alone is too weak in
/// the low bits for register selection).  `seed` derives independent hash
/// functions for the count-min rows.
[[nodiscard]] constexpr std::uint64_t hash_bytes(
    std::string_view bytes, std::uint64_t seed = 0) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull ^ seed;
  for (const char ch : bytes) {
    h ^= static_cast<std::uint8_t>(ch);
    h *= 0x100000001b3ull;
  }
  return mix64(h);
}

}  // namespace wearscope::sketch
