// Retention cohorts — an extension of Fig. 2(b).
//
// The paper compares only the first week against the last.  Cohort
// analysis generalizes: group wearable users by the week their device first
// registered, then track each cohort's weekly survival (fraction still
// registering N weeks after adoption).  This is the natural next question
// an ISP asks ("do later adopters churn faster?") and needs nothing beyond
// the same MME log.
#pragma once

#include <vector>

#include "core/context.h"
#include "core/report.h"

namespace wearscope::core {

/// One adoption-week cohort.
struct Cohort {
  int adoption_week = 0;        ///< Week of first registration.
  std::size_t size = 0;         ///< Users adopting in that week.
  /// survival[k] = fraction of the cohort registering in week
  /// adoption_week + k (survival[0] == 1 by construction).
  std::vector<double> survival;
};

/// Structured results of the retention analysis.
struct RetentionResult {
  std::vector<Cohort> cohorts;  ///< Ordered by adoption week.
  /// Mean survival at 4 / 8 / 12 weeks after adoption, across cohorts
  /// that are observable that long.
  double survival_4w = 0.0;
  double survival_8w = 0.0;
  double survival_12w = 0.0;
};

/// Runs the analysis over the full observation window.
RetentionResult analyze_retention(const AnalysisContext& ctx);

/// Renders the retention curves with sanity checks.
FigureData figure_retention(const RetentionResult& r);

}  // namespace wearscope::core
