// Fig. 4(c,d) — mobility analysis over the detailed window (§4.4):
//   (c) per-user max displacement (furthest two antennas of a day) CDFs for
//       wearable users vs all users; dwell-normalized location entropy;
//       the 60%-single-location statistic;
//   (d) max displacement vs hourly transaction activity.
#pragma once

#include "core/context.h"
#include "core/report.h"
#include "util/stats.h"

namespace wearscope::core {

/// How location entropy weighs a user's visited sectors.
enum class EntropyNorm {
  kDwellWeighted,  ///< Paper's definition: weight by time spent per sector.
  kVisitCount,     ///< Naive: weight by number of MME events per sector.
};

/// Shannon entropy (bits) of one user's visited locations within the
/// detailed window, under the chosen normalization.
double user_location_entropy(const AnalysisContext& ctx, const UserView& user,
                             EntropyNorm norm = EntropyNorm::kDwellWeighted);

/// Structured results of the mobility analysis.
struct MobilityResult {
  util::Ecdf wearable_displacement_km;  ///< Per wearable user (daily mean).
  util::Ecdf all_displacement_km;       ///< Per user, everyone.
  double wearable_mean_km = 0.0;        ///< Paper: ~20-31 km.
  double all_mean_km = 0.0;             ///< Paper: ~16 km.
  double displacement_ratio = 0.0;      ///< Paper: ~2x.
  double frac_under_30km = 0.0;         ///< Paper: 90% under 30 km.
  double wearable_entropy_bits = 0.0;   ///< Dwell-weighted Shannon entropy.
  double all_entropy_bits = 0.0;
  double entropy_ratio = 0.0;           ///< Paper: +70% => ~1.7.
  double single_location_fraction = 0.0;  ///< Paper: 60%.
  /// Non-stationary comparison (max displacement > 0 only).
  double nonstationary_ratio = 0.0;     ///< Still > 1 per the paper.

  util::BinnedRelation displacement_vs_txns;  ///< Fig. 4d.
  double mobility_activity_corr = 0.0;        ///< Spearman (user level).
  /// Correlation of the binned curve itself (what Fig. 4d displays);
  /// far more stable than the user-level rank statistic.
  double binned_trend_corr = 0.0;
};

/// Runs the analysis over the detailed window.
MobilityResult analyze_mobility(const AnalysisContext& ctx);

/// Renders Fig. 4(c) with its checks.
FigureData figure4c(const MobilityResult& r);
/// Renders Fig. 4(d) with its checks.
FigureData figure4d(const MobilityResult& r);

}  // namespace wearscope::core
