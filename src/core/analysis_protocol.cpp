#include "core/analysis_protocol.h"

#include <algorithm>

namespace wearscope::core {

ProtocolResult analyze_protocol(const AnalysisContext& ctx) {
  ProtocolResult res;

  struct Raw {
    double http_txns = 0.0;
    double https_txns = 0.0;
    double http_bytes = 0.0;
    double https_bytes = 0.0;
  };
  std::array<Raw, appdb::kCategoryCount> per_category{};
  Raw total;

  for (const UserView* u : ctx.wearable_users()) {
    for (std::size_t i = 0; i < u->wearable_txns.size(); ++i) {
      const trace::ProxyRecord* r = u->wearable_txns[i];
      if (!ctx.in_detailed_window(r->timestamp)) continue;
      const bool http = r->protocol == trace::Protocol::kHttp;
      const auto bytes = static_cast<double>(r->bytes_total());
      (http ? total.http_txns : total.https_txns) += 1.0;
      (http ? total.http_bytes : total.https_bytes) += bytes;
      const auto cat =
          ctx.signatures().app_category(u->wearable_classes[i].app);
      if (!cat) continue;
      Raw& c = per_category[static_cast<std::size_t>(*cat)];
      (http ? c.http_txns : c.https_txns) += 1.0;
      (http ? c.http_bytes : c.https_bytes) += bytes;
    }
  }

  res.http_txns = total.http_txns;
  res.https_txns = total.https_txns;
  const double all_txns = total.http_txns + total.https_txns;
  const double all_bytes = total.http_bytes + total.https_bytes;
  if (all_txns > 0.0) res.https_txn_share = total.https_txns / all_txns;
  if (all_bytes > 0.0) res.https_data_share = total.https_bytes / all_bytes;

  const double overall_http =
      all_txns > 0.0 ? total.http_txns / all_txns : 0.0;
  for (const appdb::Category cat : appdb::all_categories()) {
    const Raw& c = per_category[static_cast<std::size_t>(cat)];
    const double txns = c.http_txns + c.https_txns;
    if (txns <= 0.0) continue;
    CategoryProtocolMix mix;
    mix.category = cat;
    mix.txns = txns;
    mix.http_txn_share = c.http_txns / txns;
    const double bytes = c.http_bytes + c.https_bytes;
    if (bytes > 0.0) mix.http_data_share = c.http_bytes / bytes;
    if (mix.http_txn_share > 2.0 * overall_http && txns >= 50.0) {
      res.plaintext_laggards.push_back(cat);
    }
    res.by_category.push_back(mix);
  }
  std::sort(res.by_category.begin(), res.by_category.end(),
            [](const CategoryProtocolMix& a, const CategoryProtocolMix& b) {
              return a.http_txn_share > b.http_txn_share;
            });
  return res;
}

FigureData figure_protocol(const ProtocolResult& r) {
  FigureData fig;
  fig.id = "protocol";
  fig.title = "HTTP vs HTTPS in wearable traffic (HTTPS readiness)";
  Series s;
  s.name = "http_txn_share_by_category";
  for (const CategoryProtocolMix& m : r.by_category) {
    s.labels.push_back(std::string(appdb::category_name(m.category)));
    s.y.push_back(m.http_txn_share);
  }
  fig.series.push_back(std::move(s));

  // By 2018 the wearable app ecosystem was largely TLS, with plaintext
  // remnants in weather/news-style content fetches (the authors' HTTPS
  // paper motivates exactly this measurement).
  fig.checks.push_back(make_check("HTTPS transaction share (dominant)", 0.93,
                                  r.https_txn_share, 0.85, 1.0));
  fig.checks.push_back(make_check("HTTPS data share (dominant)", 0.93,
                                  r.https_data_share, 0.80, 1.0));
  fig.checks.push_back(make_check(
      "plaintext HTTP still observable", 1.0,
      r.http_txns > 0.0 ? 1.0 : 0.0, 1.0, 1.0));
  fig.notes.push_back(
      "extension: the paper's infrastructure separates HTTP/HTTPS (§3.3) "
      "but never reports the split; the authors' prior work (\"Are "
      "Wearables Ready for HTTPS?\") motivates it");
  return fig;
}

}  // namespace wearscope::core
