// Fig. 7 — transactions and data during a single app usage (§5.2), using
// the paper's 60-second-gap sessionization.
#pragma once

#include <string>
#include <vector>

#include "core/context.h"
#include "core/report.h"

namespace wearscope::core {

/// Per-usage aggregates of one app.
struct PerUsageStats {
  appdb::AppId app = kUnknownApp;
  std::string name;
  double mean_txns_per_usage = 0.0;
  double mean_kb_per_usage = 0.0;
  double mean_duration_s = 0.0;  ///< §5.2: media usages run longer.
  std::size_t usages = 0;
};

/// Structured results of the per-usage analysis.
struct UsageResult {
  /// Apps sorted by descending data per usage (Fig. 7 ordering).
  std::vector<PerUsageStats> apps;
};

/// Runs the analysis over the detailed window (columnar kernel: dense
/// app-id-indexed accumulation instead of a hash map).
UsageResult analyze_usage(const AnalysisContext& ctx);

/// Hash-map reference implementation; kept for the differential tests and
/// BENCH_columnar.  Output matches analyze_usage whenever no two apps tie
/// exactly on mean KB per usage (the sort key).
UsageResult analyze_usage_rows(const AnalysisContext& ctx);

/// Renders Fig. 7 with its checks.
FigureData figure7(const UsageResult& r);

}  // namespace wearscope::core
