#include "core/analysis_activity.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

namespace wearscope::core {

ActivityResult analyze_activity_rows(const AnalysisContext& ctx) {
  ActivityResult res;
  const int weeks = ctx.detailed_weeks();

  std::vector<double> days_per_week;
  std::vector<double> hours_per_day;
  std::vector<double> txn_sizes;
  std::vector<double> hourly_txns;
  std::vector<double> hourly_bytes;
  std::vector<double> rel_hours;  // per user: mean active hours/day
  std::vector<double> rel_txns;   // per user: mean txns per active hour

  for (const UserView* u : ctx.wearable_users()) {
    // Per-day distinct hours and per-(day,hour) counts for this user.
    std::map<int, std::set<int>> day_hours;
    std::unordered_map<int, double> hour_txn_count;   // day*24+h -> txns
    std::unordered_map<int, double> hour_byte_count;  // day*24+h -> bytes
    for (const trace::ProxyRecord* r : u->wearable_txns) {
      if (!ctx.in_detailed_window(r->timestamp)) continue;
      const int day = util::day_of(r->timestamp);
      const int hour = util::hour_of(r->timestamp);
      day_hours[day].insert(hour);
      hour_txn_count[day * 24 + hour] += 1.0;
      hour_byte_count[day * 24 + hour] +=
          static_cast<double>(r->bytes_total());
      txn_sizes.push_back(static_cast<double>(r->bytes_total()));
    }
    if (day_hours.empty()) continue;  // registered but silent in window

    days_per_week.push_back(static_cast<double>(day_hours.size()) /
                            std::max(1, weeks));
    double hour_sum = 0.0;
    for (const auto& [day, hours] : day_hours)
      hour_sum += static_cast<double>(hours.size());
    const double mean_hours =
        hour_sum / static_cast<double>(day_hours.size());
    hours_per_day.push_back(mean_hours);

    // Emit per-slot values in slot order, not hash order: these vectors
    // reach the report ECDFs and must not depend on bucket layout.  Both
    // maps always hold the same keys (filled by the same record).
    std::vector<int> slots;
    slots.reserve(hour_txn_count.size());
    for (const auto& [slot, n] : hour_txn_count) slots.push_back(slot);
    std::sort(slots.begin(), slots.end());
    double txn_sum = 0.0;
    for (const int slot : slots) {
      const double n = hour_txn_count.at(slot);
      hourly_txns.push_back(n);
      txn_sum += n;
    }
    for (const int slot : slots)
      hourly_bytes.push_back(hour_byte_count.at(slot));

    rel_hours.push_back(mean_hours);
    rel_txns.push_back(txn_sum / std::max(1.0, hour_sum));
  }

  res.active_days_per_week = util::Ecdf(std::move(days_per_week));
  res.active_hours_per_day = util::Ecdf(hours_per_day);
  res.mean_active_days = res.active_days_per_week.mean();
  res.mean_active_hours = res.active_hours_per_day.mean();
  if (!hours_per_day.empty()) {
    res.frac_over_10h = 1.0 - res.active_hours_per_day.at(10.0);
    res.frac_under_5h = res.active_hours_per_day.at(5.0 - 1e-9);
  }

  res.txn_size_bytes = util::Ecdf(std::move(txn_sizes));
  res.hourly_txns_per_user = util::Ecdf(std::move(hourly_txns));
  res.hourly_bytes_per_user = util::Ecdf(std::move(hourly_bytes));
  res.mean_txn_bytes = res.txn_size_bytes.mean();
  res.median_txn_bytes = res.txn_size_bytes.quantile(0.5);
  res.frac_txn_under_10kb = res.txn_size_bytes.at(10'000.0);

  res.txns_vs_hours = util::binned_relation(rel_hours, rel_txns, 10);
  res.correlation = util::pearson(rel_hours, rel_txns);
  res.binned_trend_corr = util::pearson(res.txns_vs_hours.x_centers,
                                        res.txns_vs_hours.y_means);
  return res;
}

ActivityResult analyze_activity(const AnalysisContext& ctx) {
  ActivityResult res;
  const int weeks = ctx.detailed_weeks();
  const trace::ProxyColumns& pc = ctx.store().proxy_columns();

  std::vector<double> days_per_week;
  std::vector<double> hours_per_day;
  std::vector<double> txn_sizes;
  std::vector<double> hourly_txns;
  std::vector<double> hourly_bytes;
  std::vector<double> rel_hours;  // per user: mean active hours/day
  std::vector<double> rel_txns;   // per user: mean txns per active hour

  // Per-user scratch, reused across users.  A user's wearable rows are
  // time-sorted, so the (day, hour) slot is nondecreasing along them: the
  // row version's per-slot hash maps collapse into run accumulation, and
  // slots complete already in the sorted order the report needs.  The
  // detailed window is a time-suffix of each user's rows, so one binary
  // search replaces the per-row window test — rows before the window are
  // never touched.
  std::vector<double> slot_txns;
  std::vector<double> slot_bytes;
  const util::SimTime window_start = ctx.detailed_start();

  for (const UserView* u : ctx.wearable_users()) {
    slot_txns.clear();
    slot_bytes.clear();
    std::int64_t prev_slot = -1;
    int prev_day = -1;
    std::size_t distinct_days = 0;
    double cur_txns = 0.0;
    double cur_bytes = 0.0;
    const auto first_in_window = std::partition_point(
        u->wearable_rows.begin(), u->wearable_rows.end(),
        [&](std::uint32_t row) { return pc.timestamp[row] < window_start; });
    for (auto it = first_in_window; it != u->wearable_rows.end(); ++it) {
      const std::uint32_t row = *it;
      const util::SimTime t = pc.timestamp[row];
      const int day = util::day_of(t);
      const std::int64_t slot =
          static_cast<std::int64_t>(day) * 24 + util::hour_of(t);
      if (slot != prev_slot) {
        if (prev_slot >= 0) {
          slot_txns.push_back(cur_txns);
          slot_bytes.push_back(cur_bytes);
        }
        prev_slot = slot;
        cur_txns = 0.0;
        cur_bytes = 0.0;
        if (day != prev_day) {
          prev_day = day;
          ++distinct_days;
        }
      }
      const double bytes = static_cast<double>(pc.bytes_total[row]);
      cur_txns += 1.0;
      cur_bytes += bytes;
      txn_sizes.push_back(bytes);
    }
    if (prev_slot >= 0) {
      slot_txns.push_back(cur_txns);
      slot_bytes.push_back(cur_bytes);
    }
    if (distinct_days == 0) continue;  // registered but silent in window

    days_per_week.push_back(static_cast<double>(distinct_days) /
                            std::max(1, weeks));
    // Every distinct slot is one distinct (day, hour): the summed
    // hours-per-day count is the slot count.
    const double hour_sum = static_cast<double>(slot_txns.size());
    const double mean_hours =
        hour_sum / static_cast<double>(distinct_days);
    hours_per_day.push_back(mean_hours);

    double txn_sum = 0.0;
    for (const double n : slot_txns) {
      hourly_txns.push_back(n);
      txn_sum += n;
    }
    for (const double b : slot_bytes) hourly_bytes.push_back(b);

    rel_hours.push_back(mean_hours);
    rel_txns.push_back(txn_sum / std::max(1.0, hour_sum));
  }

  res.active_days_per_week = util::Ecdf(std::move(days_per_week));
  res.active_hours_per_day = util::Ecdf(hours_per_day);
  res.mean_active_days = res.active_days_per_week.mean();
  res.mean_active_hours = res.active_hours_per_day.mean();
  if (!hours_per_day.empty()) {
    res.frac_over_10h = 1.0 - res.active_hours_per_day.at(10.0);
    res.frac_under_5h = res.active_hours_per_day.at(5.0 - 1e-9);
  }

  res.txn_size_bytes = util::Ecdf(std::move(txn_sizes));
  res.hourly_txns_per_user = util::Ecdf(std::move(hourly_txns));
  res.hourly_bytes_per_user = util::Ecdf(std::move(hourly_bytes));
  res.mean_txn_bytes = res.txn_size_bytes.mean();
  res.median_txn_bytes = res.txn_size_bytes.quantile(0.5);
  res.frac_txn_under_10kb = res.txn_size_bytes.at(10'000.0);

  res.txns_vs_hours = util::binned_relation(rel_hours, rel_txns, 10);
  res.correlation = util::pearson(rel_hours, rel_txns);
  res.binned_trend_corr = util::pearson(res.txns_vs_hours.x_centers,
                                        res.txns_vs_hours.y_means);
  return res;
}

namespace {

Series ecdf_series(const char* name, const util::Ecdf& e,
                   std::size_t points = 64) {
  Series s;
  s.name = name;
  if (e.size() == 0) return s;
  for (std::size_t i = 0; i <= points; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(points);
    s.x.push_back(e.quantile(q));
    s.y.push_back(q);
  }
  return s;
}

}  // namespace

FigureData figure3b(const ActivityResult& r) {
  FigureData fig;
  fig.id = "fig3b";
  fig.title = "Active days per week and active hours per day (CDFs)";
  fig.series.push_back(
      ecdf_series("active_days_per_week_cdf", r.active_days_per_week));
  fig.series.push_back(
      ecdf_series("active_hours_per_day_cdf", r.active_hours_per_day));
  fig.checks.push_back(make_check("mean active days per week", 1.0,
                                  r.mean_active_days, 0.6, 1.6));
  fig.checks.push_back(make_check("mean active hours per day", 3.0,
                                  r.mean_active_hours, 2.0, 4.5));
  fig.checks.push_back(make_check("users active > 10 h/day", 0.07,
                                  r.frac_over_10h, 0.02, 0.13));
  fig.checks.push_back(make_check("users active < 5 h/day", 0.80,
                                  r.frac_under_5h, 0.70, 0.92));
  return fig;
}

FigureData figure3c(const ActivityResult& r) {
  FigureData fig;
  fig.id = "fig3c";
  fig.title = "Transaction sizes and hourly per-user data/transactions";
  fig.series.push_back(ecdf_series("txn_size_bytes_cdf", r.txn_size_bytes));
  fig.series.push_back(
      ecdf_series("hourly_txns_per_user_cdf", r.hourly_txns_per_user));
  fig.series.push_back(
      ecdf_series("hourly_bytes_per_user_cdf", r.hourly_bytes_per_user));
  // The mean of the heavy-tailed size distribution is volatile at small
  // sample sizes; the median check below is the sharp one.
  fig.checks.push_back(make_check("mean transaction size (KB)", 3.0,
                                  r.mean_txn_bytes / 1000.0, 1.5, 9.0));
  fig.checks.push_back(make_check("median transaction size (KB)", 3.0,
                                  r.median_txn_bytes / 1000.0, 1.0, 6.0));
  fig.checks.push_back(make_check("transactions under 10 KB", 0.80,
                                  r.frac_txn_under_10kb, 0.70, 0.92));
  return fig;
}

FigureData figure3d(const ActivityResult& r) {
  FigureData fig;
  fig.id = "fig3d";
  fig.title = "Hourly transactions vs daily active hours";
  Series s;
  s.name = "txns_per_hour_vs_active_hours";
  s.x = r.txns_vs_hours.x_centers;
  s.y = r.txns_vs_hours.y_means;
  fig.series.push_back(std::move(s));
  fig.checks.push_back(make_check(
      "correlation active-hours vs txns/hour (positive)", 0.5, r.correlation,
      0.15, 1.0));
  fig.notes.push_back(
      "the paper reports a clear positive relation; no coefficient given");
  return fig;
}

}  // namespace wearscope::core
