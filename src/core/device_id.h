// SIM-enabled wearable identification (paper §3.2).
//
// Method, exactly as the authors describe: (1) prepare a curated list of
// SIM-enabled wearable device models available in the country, (2) resolve
// those models to IMEI TAC ranges through the Device database, (3) search
// for those TACs in the traffic logs of the other two vantage points.
//
// The curated model list lives HERE, in the analysis layer — the DeviceDB
// itself carries no wearable flag.
#pragma once

#include <span>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "trace/records.h"

namespace wearscope::core {

/// Kind assigned to a device TAC by the classifier.
enum class DeviceKind : std::uint8_t {
  kSimWearable = 0,  ///< TAC of a model on the curated wearable list.
  kOther,            ///< Any other known device (phones, tablets, ...).
  kUnknown,          ///< TAC absent from the Device database.
};

/// The curated model list: (manufacturer, model) pairs of SIM-enabled
/// wearables sold in the country (the operator does not support the Apple
/// Watch 3, so the list is Samsung/LG/Huawei — §3.2).
struct WearableModelEntry {
  std::string_view manufacturer;
  std::string_view model;
};

/// Built-in curated list used by the study.
std::span<const WearableModelEntry> curated_wearable_models();

/// TAC-based device classifier built from a DeviceDB snapshot.
class DeviceClassifier {
 public:
  /// Builds the TAC sets by joining `devices` against the curated list.
  /// `models` defaults to curated_wearable_models().
  explicit DeviceClassifier(
      const std::vector<trace::DeviceRecord>& devices,
      std::span<const WearableModelEntry> models = curated_wearable_models());

  /// Ablation: a naive classifier that flags EVERY device of the listed
  /// manufacturers as a wearable (what you would get from manufacturer
  /// TAC-prefix ranges without a curated model list).  Massively
  /// over-matches: those vendors also sell the country's phones.
  static DeviceClassifier from_manufacturers(
      const std::vector<trace::DeviceRecord>& devices,
      std::span<const std::string_view> manufacturers);

  /// Classifies one TAC.
  [[nodiscard]] DeviceKind classify(trace::Tac tac) const;

  /// True when `tac` belongs to a curated wearable model.
  [[nodiscard]] bool is_wearable(trace::Tac tac) const {
    return classify(tac) == DeviceKind::kSimWearable;
  }

  /// All wearable TACs found in the DeviceDB.
  [[nodiscard]] const std::unordered_set<trace::Tac>& wearable_tacs()
      const noexcept {
    return wearable_tacs_;
  }

  /// Number of DeviceDB rows inspected.
  [[nodiscard]] std::size_t device_rows() const noexcept {
    return known_tacs_.size();
  }

 private:
  std::unordered_set<trace::Tac> wearable_tacs_;
  std::unordered_set<trace::Tac> known_tacs_;
};

}  // namespace wearscope::core
