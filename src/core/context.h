// AnalysisContext: the shared, pre-indexed view of one capture.
//
// Built once from a TraceStore, it performs the expensive joins every
// analysis needs: device classification (TAC -> wearable?), per-user record
// grouping, app attribution of wearable traffic, usage sessionization, and
// MME-based positioning.  Analyses then read these indexes; none of them
// ever sees generator ground truth.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "appdb/app_catalog.h"
#include "core/app_id.h"
#include "core/device_id.h"
#include "core/sessionize.h"
#include "trace/store.h"
#include "util/sim_time.h"

namespace wearscope::core {

/// Knobs of the analysis itself (the study parameters, not the generator's).
struct AnalysisOptions {
  /// Length of the observation window in days (the analysts know their
  /// own collection schedule).
  int observation_days = util::kObservationDays;
  /// First day of the detailed-log window.
  int detailed_start_day = util::kObservationDays - 21;
  /// Usage sessionization gap (paper: 60 s).
  util::SimTime usage_gap_s = kDefaultUsageGapS;
  /// Temporal-proximity window for third-party app attribution.
  util::SimTime attribution_window_s = 120;
  /// Fraction of signature rules retained (coverage ablation); 1 = all.
  double signature_coverage = 1.0;
  /// Long-tail size of the analyst's app knowledge base. Must describe the
  /// world at least as richly as the traffic (defaults match appdb).
  std::uint32_t long_tail_apps = 150;
  /// Worker threads for the batch pipeline (context indexing and the
  /// analysis passes). 1 = the sequential reference path; any N produces
  /// bitwise-identical output (see docs/DESIGN.md, determinism contract).
  int threads = 1;
};

/// Everything the analyses know about one subscriber.
struct UserView {
  trace::UserId user_id = 0;
  bool has_wearable = false;  ///< Observed with a wearable TAC (MME/proxy).
  /// Time-sorted wearable-TAC transactions.
  std::vector<const trace::ProxyRecord*> wearable_txns;
  /// Row indices into the store's proxy log/columns, index-aligned with
  /// wearable_txns; the columnar kernels stream the column vectors through
  /// these instead of chasing the row pointers.
  std::vector<std::uint32_t> wearable_rows;
  /// Per-record attribution, index-aligned with wearable_txns.
  std::vector<EndpointClass> wearable_classes;
  /// Reconstructed wearable app usages (sessionized).
  std::vector<Usage> usages;
  /// Time-sorted non-wearable (phone etc.) transactions.
  std::vector<const trace::ProxyRecord*> phone_txns;
  /// Time-sorted MME events (all of the user's devices).
  std::vector<const trace::MmeRecord*> mme;
};

/// The shared analysis state.
class AnalysisContext {
 public:
  /// Indexes `store` (which must outlive the context).
  AnalysisContext(const trace::TraceStore& store, AnalysisOptions options);

  [[nodiscard]] const trace::TraceStore& store() const noexcept {
    return *store_;
  }
  [[nodiscard]] const AnalysisOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] const DeviceClassifier& devices() const noexcept {
    return *devices_;
  }
  [[nodiscard]] const AppSignatureTable& signatures() const noexcept {
    return *signatures_;
  }

  /// All users observed anywhere in the logs.
  [[nodiscard]] const std::vector<UserView>& users() const noexcept {
    return users_;
  }
  /// Users observed with a SIM-wearable (the study population).
  [[nodiscard]] std::span<const UserView* const> wearable_users()
      const noexcept {
    return wearable_users_;
  }
  /// The remaining customers (no wearable TAC ever seen).
  [[nodiscard]] std::span<const UserView* const> other_users()
      const noexcept {
    return other_users_;
  }

  /// User lookup; nullptr when the id never appears in the logs.
  [[nodiscard]] const UserView* find_user(trace::UserId id) const;

  /// Sector the user was attached to at time `t` (nearest MME event at or
  /// before t; falls back to the first event after). nullopt when the user
  /// has no MME records.
  [[nodiscard]] std::optional<trace::SectorId> sector_at(const UserView& user,
                                                         util::SimTime t) const;

  /// First timestamp of the detailed-log window.
  [[nodiscard]] util::SimTime detailed_start() const noexcept {
    return util::day_start(options_.detailed_start_day);
  }

  /// True when `t` falls inside the detailed window.
  [[nodiscard]] bool in_detailed_window(util::SimTime t) const noexcept {
    return t >= detailed_start();
  }

  /// Number of whole weeks in the detailed window.
  [[nodiscard]] int detailed_weeks() const noexcept {
    return (options_.observation_days - options_.detailed_start_day) / 7;
  }

 private:
  const trace::TraceStore* store_;
  AnalysisOptions options_;
  std::unique_ptr<appdb::AppCatalog> knowledge_base_;
  std::unique_ptr<DeviceClassifier> devices_;
  std::unique_ptr<AppSignatureTable> signatures_;
  std::vector<UserView> users_;
  std::vector<const UserView*> wearable_users_;
  std::vector<const UserView*> other_users_;
  std::unordered_map<trace::UserId, std::size_t> user_index_;
};

}  // namespace wearscope::core
