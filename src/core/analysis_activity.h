// Fig. 3(b,c,d) — microscopic user activity over the detailed window:
//   (b) CDFs of active days per week and active hours per day;
//   (c) CDFs of transaction sizes and of hourly per-user data/transactions;
//   (d) the relation between hourly transactions and daily active hours.
#pragma once

#include <vector>

#include "core/context.h"
#include "core/report.h"
#include "util/stats.h"

namespace wearscope::core {

/// Structured results of the microscopic activity analysis (§4.3).
struct ActivityResult {
  // ---- Fig. 3b ------------------------------------------------------------
  util::Ecdf active_days_per_week;  ///< Per transacting user.
  util::Ecdf active_hours_per_day;  ///< Per transacting user (mean/day).
  double mean_active_days = 0.0;    ///< Paper: ~1 day/week.
  double mean_active_hours = 0.0;   ///< Paper: ~3 h/day.
  double frac_over_10h = 0.0;       ///< Paper: 7%.
  double frac_under_5h = 0.0;       ///< Paper: 80%.

  // ---- Fig. 3c ------------------------------------------------------------
  util::Ecdf txn_size_bytes;        ///< Per transaction.
  util::Ecdf hourly_txns_per_user;  ///< Per (user, active hour).
  util::Ecdf hourly_bytes_per_user;
  double mean_txn_bytes = 0.0;      ///< Paper: ~3 KB.
  double median_txn_bytes = 0.0;
  double frac_txn_under_10kb = 0.0; ///< Paper: 80%.

  // ---- Fig. 3d ------------------------------------------------------------
  util::BinnedRelation txns_vs_hours;  ///< x: active h/day, y: txns/hour.
  double correlation = 0.0;            ///< Pearson, user level.
  /// Correlation of the binned curve (what Fig. 3d displays).
  double binned_trend_corr = 0.0;
};

/// Runs the analysis over the detailed window (wearable traffic only;
/// columnar kernel: monotone-slot run accumulation, no per-user maps).
ActivityResult analyze_activity(const AnalysisContext& ctx);

/// Row-layout reference implementation, bitwise-identical to
/// analyze_activity; kept for the differential tests and BENCH_columnar.
ActivityResult analyze_activity_rows(const AnalysisContext& ctx);

/// Renders Fig. 3(b) with its checks.
FigureData figure3b(const ActivityResult& r);
/// Renders Fig. 3(c) with its checks.
FigureData figure3c(const ActivityResult& r);
/// Renders Fig. 3(d) with its checks.
FigureData figure3d(const ActivityResult& r);

}  // namespace wearscope::core
