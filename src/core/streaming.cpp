#include "core/streaming.h"

#include <algorithm>

#include "util/error.h"
#include "util/stats.h"

namespace wearscope::core {

StreamingAdoption::StreamingAdoption(const DeviceClassifier& devices,
                                     int observation_days)
    : devices_(&devices), observation_days_(observation_days) {
  util::require(observation_days > 0,
                "StreamingAdoption: observation_days must be positive");
  daily_counts_.assign(static_cast<std::size_t>(observation_days), 0);
}

void StreamingAdoption::roll_to(int day) {
  if (day == current_day_) return;
  util::require(day > current_day_,
                "StreamingAdoption: records must arrive in day order");
  if (current_day_ >= 0 && current_day_ < observation_days_) {
    daily_counts_[static_cast<std::size_t>(current_day_)] =
        current_day_users_.size();
  }
  current_day_users_.clear();
  current_day_ = day;
}

void StreamingAdoption::on_mme(const trace::MmeRecord& record) {
  ++consumed_;
  if (!devices_->is_wearable(record.tac)) return;
  const int day = util::day_of(record.timestamp);
  if (day < 0 || day >= observation_days_) return;
  roll_to(day);
  current_day_users_.insert(record.user_id);
  ever_registered_.insert(record.user_id);
  if (day < 7) first_week_.insert(record.user_id);
  if (day >= observation_days_ - 7) last_week_.insert(record.user_id);
}

void StreamingAdoption::on_proxy(const trace::ProxyRecord& record) {
  ++consumed_;
  if (!devices_->is_wearable(record.tac)) return;
  ever_transacted_.insert(record.user_id);
}

AdoptionTally StreamingAdoption::tally() const {
  AdoptionTally t;
  t.observation_days = observation_days_;
  t.consumed = consumed_;
  t.daily_counts = daily_counts_;
  if (current_day_ >= 0 && current_day_ < observation_days_) {
    t.daily_counts[static_cast<std::size_t>(current_day_)] =
        current_day_users_.size();
  }
  t.ever_registered = ever_registered_.size();
  t.ever_transacted = ever_transacted_.size();
  t.first_week = first_week_.size();
  t.last_week = last_week_.size();
  // Set-intersection count is commutative: iteration order cannot reach
  // the emitted value.
  // wearscope-lint: allow(unordered-flow)
  for (const trace::UserId u : first_week_) {
    if (last_week_.contains(u)) ++t.both_weeks;
  }
  return t;
}

AdoptionResult StreamingAdoption::finalize() const {
  return tally().finalize();
}

void AdoptionTally::merge(const AdoptionTally& other) {
  if (observation_days == 0 && daily_counts.empty()) {
    *this = other;
    return;
  }
  util::require(other.observation_days == observation_days &&
                    other.daily_counts.size() == daily_counts.size(),
                "AdoptionTally::merge: mismatched observation windows");
  consumed += other.consumed;
  for (std::size_t d = 0; d < daily_counts.size(); ++d) {
    daily_counts[d] += other.daily_counts[d];
  }
  ever_registered += other.ever_registered;
  ever_transacted += other.ever_transacted;
  first_week += other.first_week;
  last_week += other.last_week;
  both_weeks += other.both_weeks;
}

AdoptionResult AdoptionTally::finalize() const {
  AdoptionResult res;
  const std::vector<std::size_t>& counts = daily_counts;

  res.ever_registered = ever_registered;
  res.ever_transacted = ever_transacted;
  if (ever_registered > 0) {
    res.ever_transacting_fraction = static_cast<double>(ever_transacted) /
                                    static_cast<double>(ever_registered);
  }

  const double last =
      counts.empty() ? 0.0 : static_cast<double>(counts.back());
  res.daily_registered_norm.reserve(counts.size());
  for (const std::size_t c : counts) {
    res.daily_registered_norm.push_back(
        last > 0.0 ? static_cast<double>(c) / last : 0.0);
  }

  util::OnlineStats first_avg;
  util::OnlineStats last_avg;
  for (int d = 0; d < 7 && d < observation_days; ++d)
    first_avg.add(static_cast<double>(counts[static_cast<std::size_t>(d)]));
  for (int d = std::max(0, observation_days - 7); d < observation_days; ++d)
    last_avg.add(static_cast<double>(counts[static_cast<std::size_t>(d)]));
  if (first_avg.mean() > 0.0) {
    res.total_growth = last_avg.mean() / first_avg.mean() - 1.0;
    res.monthly_growth =
        res.total_growth / (static_cast<double>(observation_days) / 30.4);
  }

  const std::size_t both = both_weeks;
  const std::size_t uni = first_week + last_week - both;
  if (uni > 0) {
    res.still_active_share =
        static_cast<double>(both) / static_cast<double>(uni);
    res.gone_share =
        static_cast<double>(first_week - both) / static_cast<double>(uni);
    res.new_share =
        static_cast<double>(last_week - both) / static_cast<double>(uni);
  }
  if (first_week > 0) {
    res.churned_of_initial = static_cast<double>(first_week - both) /
                             static_cast<double>(first_week);
  }
  return res;
}

}  // namespace wearscope::core
