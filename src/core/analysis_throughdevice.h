// §6 (conclusion) — Through-Device wearables: fingerprinting smartphone
// traffic for wearable-vendor endpoints (Fitbit, Xiaomi) and the wearable
// endpoints of companion apps (AccuWeather, Strava, Runtastic), then
// comparing detected users' macroscopic behaviour with SIM-enabled users.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "core/context.h"
#include "core/report.h"

namespace wearscope::core {

/// Structured results of the through-device study.
struct ThroughDeviceResult {
  /// Users without a SIM wearable whose phone traffic matched a signature.
  std::size_t detected_users = 0;
  /// Matches per fingerprint (index-aligned with companion_signatures()).
  std::vector<std::size_t> per_signature;
  std::vector<std::string> signature_names;
  /// Macroscopic comparison (detected TD users vs SIM-wearable owners).
  double daily_txn_ratio = 0.0;      ///< TD/SIM phone txns per day.
  double daily_bytes_ratio = 0.0;    ///< TD/SIM phone bytes per day.
  double entropy_ratio = 0.0;        ///< TD/SIM location entropy.
  /// Hourly phone-transaction profiles (normalized shares) and their
  /// correlation — the "similar macroscopic behaviour" claim made precise.
  std::array<double, 24> td_hourly{};
  std::array<double, 24> sim_hourly{};
  double diurnal_similarity = 0.0;   ///< Pearson of the two profiles.
};

/// Runs the study over the detailed window.
ThroughDeviceResult analyze_throughdevice(const AnalysisContext& ctx);

/// Renders the §6 comparison with its checks.
FigureData figure_sec6(const ThroughDeviceResult& r);

}  // namespace wearscope::core
