#include "core/analysis_comparison.h"

#include <algorithm>

namespace wearscope::core {

namespace {

struct UserTotals {
  double bytes = 0.0;
  double txns = 0.0;
  double wearable_bytes = 0.0;
};

UserTotals totals_of(const AnalysisContext& ctx, const UserView& u) {
  UserTotals t;
  for (const trace::ProxyRecord* r : u.wearable_txns) {
    if (!ctx.in_detailed_window(r->timestamp)) continue;
    t.bytes += static_cast<double>(r->bytes_total());
    t.wearable_bytes += static_cast<double>(r->bytes_total());
    t.txns += 1.0;
  }
  for (const trace::ProxyRecord* r : u.phone_txns) {
    if (!ctx.in_detailed_window(r->timestamp)) continue;
    t.bytes += static_cast<double>(r->bytes_total());
    t.txns += 1.0;
  }
  return t;
}

Series ecdf_series(const char* name, const util::Ecdf& e,
                   std::size_t points = 64) {
  Series s;
  s.name = name;
  if (e.size() == 0) return s;
  for (std::size_t i = 0; i <= points; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(points);
    s.x.push_back(e.quantile(q));
    s.y.push_back(q);
  }
  return s;
}

}  // namespace

ComparisonResult analyze_comparison(const AnalysisContext& ctx) {
  ComparisonResult res;
  const double days = ctx.options().observation_days -
                      ctx.options().detailed_start_day;

  std::vector<double> owner_daily;
  std::vector<double> other_daily;
  std::vector<double> shares;
  double owner_bytes = 0.0;
  double owner_txns = 0.0;
  double other_bytes = 0.0;
  double other_txns = 0.0;

  for (const UserView& u : ctx.users()) {
    const UserTotals t = totals_of(ctx, u);
    if (t.txns <= 0.0) continue;
    if (u.has_wearable) {
      owner_daily.push_back(t.bytes / days);
      owner_bytes += t.bytes;
      owner_txns += t.txns;
      if (t.wearable_bytes > 0.0 && t.bytes > 0.0)
        shares.push_back(t.wearable_bytes / t.bytes);
    } else {
      other_daily.push_back(t.bytes / days);
      other_bytes += t.bytes;
      other_txns += t.txns;
    }
  }

  const std::size_t n_owner = owner_daily.size();
  const std::size_t n_other = other_daily.size();
  if (n_owner > 0 && n_other > 0) {
    res.data_ratio = (owner_bytes / static_cast<double>(n_owner)) /
                     (other_bytes / static_cast<double>(n_other));
    res.txn_ratio = (owner_txns / static_cast<double>(n_owner)) /
                    (other_txns / static_cast<double>(n_other));
  }

  // Normalize by the global maximum user, as the paper does.
  double max_daily = 0.0;
  for (const double v : owner_daily) max_daily = std::max(max_daily, v);
  for (const double v : other_daily) max_daily = std::max(max_daily, v);
  if (max_daily > 0.0) {
    for (double& v : owner_daily) v /= max_daily;
    for (double& v : other_daily) v /= max_daily;
  }
  res.owner_daily_bytes_norm = util::Ecdf(std::move(owner_daily));
  res.other_daily_bytes_norm = util::Ecdf(std::move(other_daily));

  res.wearable_share = util::Ecdf(shares);
  if (!shares.empty()) {
    res.median_wearable_share = res.wearable_share.quantile(0.5);
    res.frac_share_over_3pct = 1.0 - res.wearable_share.at(0.03);
  }
  return res;
}

FigureData figure4a(const ComparisonResult& r) {
  FigureData fig;
  fig.id = "fig4a";
  fig.title = "Per-user daily traffic: wearable owners vs remaining users";
  fig.series.push_back(
      ecdf_series("owner_daily_bytes_norm_cdf", r.owner_daily_bytes_norm));
  fig.series.push_back(
      ecdf_series("other_daily_bytes_norm_cdf", r.other_daily_bytes_norm));
  fig.checks.push_back(make_check("owners' data inflation", 1.26,
                                  r.data_ratio, 1.10, 1.45));
  fig.checks.push_back(make_check("owners' transaction inflation", 1.48,
                                  r.txn_ratio, 1.25, 1.75));
  return fig;
}

FigureData figure4b(const ComparisonResult& r) {
  FigureData fig;
  fig.id = "fig4b";
  fig.title = "Wearable share of an owner's total traffic";
  fig.series.push_back(ecdf_series("wearable_share_cdf", r.wearable_share));
  fig.checks.push_back(make_check(
      "median wearable/total traffic ratio (~1e-3)", 0.001,
      r.median_wearable_share, 0.0001, 0.01));
  // Tail statistic: a handful of heavy wearable users decide it, so the
  // band is generous around the paper's 10%.
  fig.checks.push_back(make_check("users with >= 3% wearable share", 0.10,
                                  r.frac_share_over_3pct, 0.03, 0.20));
  fig.notes.push_back(
      "the paper says wearable traffic is 'three magnitudes smaller' than "
      "the owner's overall traffic; we check the median per-user ratio");
  return fig;
}

}  // namespace wearscope::core
