// Figure data model: every analysis produces a FigureData — named series
// (the lines/bars of the paper's figure) plus Checks comparing measured
// statistics against the paper's published claims with acceptance bands.
// Benches print these; EXPERIMENTS.md is generated from them.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace wearscope::core {

/// One plotted series: either label-indexed bars (labels non-empty) or an
/// x/y curve (labels empty, x parallel to y).
struct Series {
  std::string name;
  std::vector<std::string> labels;  ///< Bar labels (categorical series).
  std::vector<double> x;            ///< X values (numeric series).
  std::vector<double> y;            ///< Values, parallel to labels or x.
};

/// One paper-claim validation.
struct Check {
  std::string claim;     ///< e.g. "only 34% of users transmit data".
  double paper = 0.0;    ///< The value the paper reports.
  double measured = 0.0; ///< What our pipeline recovered.
  double lo = 0.0;       ///< Acceptance band (inclusive).
  double hi = 0.0;

  /// True when measured lies inside [lo, hi].
  [[nodiscard]] bool pass() const noexcept {
    return measured >= lo && measured <= hi;
  }
};

/// The regenerated content of one paper figure.
struct FigureData {
  std::string id;     ///< e.g. "fig3b".
  std::string title;  ///< Human-readable caption.
  std::vector<Series> series;
  std::vector<Check> checks;
  std::vector<std::string> notes;  ///< Substitutions/assumptions worth noting.

  /// True when every check passes.
  [[nodiscard]] bool all_pass() const noexcept;

  /// Renders the checks (and series heads) as aligned text.
  [[nodiscard]] std::string to_text() const;

  /// Writes each series as `<dir>/<id>_<series>.csv` (label/x, y columns).
  void write_csv(const std::filesystem::path& dir) const;
};

/// Convenience constructor for a check.
Check make_check(std::string claim, double paper, double measured, double lo,
                 double hi);

}  // namespace wearscope::core
