// Streaming counterpart of analyze_activity() (Fig. 3b/c/d): single-pass,
// per-user microscopic activity counters over the detailed window.
//
// Feed time-ordered proxy records one at a time; finalize() reproduces the
// batch ActivityResult from the same capture *bitwise*.  ECDF-derived
// statistics are order-free because util::Ecdf canonicalizes sample order.
// The two Fig. 3d correlation scalars are order-*sensitive* — the batch
// iterates users in proxy-log appearance order, and binned_relation breaks
// ties in x by input position — so each on_proxy() call takes the record's
// global stream position and finalize() replays the batch's exact user
// order from the per-user first-appearance sequence.  The result is
// independent of how users were partitioned across instances.
//
// Memory: O(users x active day-hours in the detailed window), one sequence
// number per distinct proxy user, plus one double per detailed-window
// transaction for the exact size ECDF.  A deployment that cannot afford
// the latter would swap in a quantile sketch; we keep the exact sample so
// streaming/batch equivalence stays testable to the bit.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "core/analysis_activity.h"
#include "core/device_id.h"
#include "trace/records.h"

namespace wearscope::core {

/// Mergeable state of one StreamingActivity instance.  Partitions must be
/// user-disjoint (each user's records all land on one instance): merging
/// then concatenates per-user states without collisions and the merged
/// finalize() is independent of the partitioning.
struct ActivityTally {
  /// Per-user activity in the detailed window.
  struct UserActivity {
    /// day -> distinct active hours (ordered like the batch temporaries).
    std::map<int, std::set<int>> day_hours;
    /// day*24+hour -> transactions / bytes in that hour.
    std::unordered_map<int, double> hour_txns;
    std::unordered_map<int, double> hour_bytes;
  };

  int observation_days = 0;
  int detailed_start_day = 0;
  std::unordered_map<trace::UserId, UserActivity> users;
  /// user -> stream position of their first proxy record (any TAC, any
  /// window — mirroring how the batch context slots users).  Drives the
  /// finalize() iteration order.
  std::unordered_map<trace::UserId, std::uint64_t> first_seen;
  /// Size of every detailed-window wearable transaction, in bytes.
  std::vector<double> txn_sizes;

  /// Adds a user-disjoint partition's tally into this one.
  /// Throws util::ConfigError on window mismatch or a shared user id
  /// (which would mean the partitioner broke the shard-by-user invariant).
  void merge(ActivityTally other);

  /// Reproduces analyze_activity() over everything consumed so far.
  [[nodiscard]] ActivityResult finalize() const;
};

/// Online Fig. 3b/c/d counters for one user partition.
class StreamingActivity {
 public:
  /// `devices` must outlive the counter.  `detailed_start_day` and
  /// `observation_days` describe the analysis window exactly as
  /// AnalysisOptions does.
  StreamingActivity(const DeviceClassifier& devices, int observation_days,
                    int detailed_start_day);

  /// Feeds one proxy transaction (non-wearable TACs and records before the
  /// detailed window are ignored, mirroring the batch analysis).  `seq` is
  /// the record's position in the global proxy stream — any strictly
  /// monotone stamp works; it only has to order first appearances the way
  /// the batch context does.
  void on_proxy(const trace::ProxyRecord& record, std::uint64_t seq);

  /// Snapshots the counters into a mergeable tally.
  [[nodiscard]] const ActivityTally& tally() const noexcept {
    return tally_;
  }

  /// Convenience: finalize the local partition alone.
  [[nodiscard]] ActivityResult finalize() const { return tally_.finalize(); }

 private:
  const DeviceClassifier* devices_;
  util::SimTime detailed_start_ = 0;
  ActivityTally tally_;
};

}  // namespace wearscope::core
