#include "core/report_markdown.h"

#include "util/ascii_chart.h"

namespace wearscope::core {

namespace {

/// Escapes the characters that would break a Markdown table cell.
std::string escape_cell(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '|') out += "\\|";
    else if (c == '\n') out += ' ';
    else out += c;
  }
  return out;
}

}  // namespace

std::string to_markdown(const StudyReport& report, const MarkdownMeta& meta) {
  std::string md = "# " + meta.title + "\n\n";
  if (!meta.preset.empty() || !meta.seed.empty()) {
    md += "Run: ";
    if (!meta.preset.empty()) md += "preset `" + meta.preset + "`";
    if (!meta.seed.empty()) md += ", seed `" + meta.seed + "`";
    md += ".\n\n";
  }
  if (!meta.extra.empty()) md += meta.extra + "\n\n";

  std::size_t total = 0;
  std::size_t passed = 0;
  for (const FigureData& fig : report.figures) {
    md += "## " + fig.id + " — " + fig.title + "\n\n";
    if (!fig.checks.empty()) {
      md += "| claim | paper | measured | band | verdict |\n";
      md += "|---|---|---|---|---|\n";
      for (const Check& c : fig.checks) {
        ++total;
        if (c.pass()) ++passed;
        md += "| " + escape_cell(c.claim) + " | " + util::format_num(c.paper) +
              " | " + util::format_num(c.measured) + " | [" +
              util::format_num(c.lo) + ", " + util::format_num(c.hi) + "] | " +
              (c.pass() ? "PASS" : "**FAIL**") + " |\n";
      }
      md += "\n";
    }
    for (const std::string& note : fig.notes) {
      md += "> " + note + "\n";
    }
    if (!fig.notes.empty()) md += "\n";
  }

  md += "## Summary\n\n";
  md += std::to_string(passed) + " of " + std::to_string(total) +
        " paper-claim checks passed.\n";
  return md;
}

}  // namespace wearscope::core
