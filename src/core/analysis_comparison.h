// Fig. 4(a,b) — traffic comparison between wearable owners and the
// remaining customers over the detailed window:
//   (a) per-user daily traffic CDFs (owners generate +26% data, +48%
//       transactions);
//   (b) the per-owner ratio of wearable-device traffic to total traffic
//       (~3 orders of magnitude; 10% of users above 3%).
#pragma once

#include "core/context.h"
#include "core/report.h"
#include "util/stats.h"

namespace wearscope::core {

/// Structured results of the owner-vs-rest traffic comparison (§4.3).
struct ComparisonResult {
  /// Per-user mean daily bytes, normalized by the maximum user (the paper
  /// normalizes for ISP confidentiality).
  util::Ecdf owner_daily_bytes_norm;
  util::Ecdf other_daily_bytes_norm;
  double data_ratio = 0.0;  ///< mean(owner bytes)/mean(other bytes), ~1.26.
  double txn_ratio = 0.0;   ///< mean(owner txns)/mean(other txns), ~1.48.

  util::Ecdf wearable_share;       ///< Per transacting owner: wear/total.
  double median_wearable_share = 0.0;  ///< ~1e-3 ("three magnitudes").
  double frac_share_over_3pct = 0.0;   ///< ~0.10.
};

/// Runs the analysis over the detailed window.
ComparisonResult analyze_comparison(const AnalysisContext& ctx);

/// Renders Fig. 4(a) with its checks.
FigureData figure4a(const ComparisonResult& r);
/// Renders Fig. 4(b) with its checks.
FigureData figure4b(const ComparisonResult& r);

}  // namespace wearscope::core
