#include "core/report.h"

#include <algorithm>
#include <fstream>

#include "util/ascii_chart.h"
#include "util/csv.h"
#include "util/error.h"

namespace wearscope::core {

bool FigureData::all_pass() const noexcept {
  return std::all_of(checks.begin(), checks.end(),
                     [](const Check& c) { return c.pass(); });
}

std::string FigureData::to_text() const {
  std::string out = "== " + id + ": " + title + " ==\n";
  if (!checks.empty()) {
    std::vector<std::vector<std::string>> rows;
    rows.reserve(checks.size());
    for (const Check& c : checks) {
      rows.push_back({c.claim, util::format_num(c.paper),
                      util::format_num(c.measured),
                      "[" + util::format_num(c.lo) + ", " +
                          util::format_num(c.hi) + "]",
                      c.pass() ? "PASS" : "FAIL"});
    }
    out += util::table({"claim", "paper", "measured", "band", "verdict"},
                       rows);
  }
  for (const std::string& n : notes) out += "note: " + n + "\n";
  return out;
}

void FigureData::write_csv(const std::filesystem::path& dir) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) throw util::IoError("cannot create directory: " + dir.string());
  for (const Series& s : series) {
    std::string fname = id + "_" + s.name;
    std::replace_if(
        fname.begin(), fname.end(),
        [](char c) { return c == ' ' || c == '/' || c == '%'; }, '_');
    std::ofstream f(dir / (fname + ".csv"));
    if (!f) throw util::IoError("cannot open csv for writing: " + fname);
    util::CsvWriter w(f);
    if (!s.labels.empty()) {
      w.row("label", "value");
      for (std::size_t i = 0; i < s.labels.size(); ++i)
        w.row(s.labels[i], s.y[i]);
    } else {
      w.row("x", "y");
      for (std::size_t i = 0; i < s.x.size(); ++i) w.row(s.x[i], s.y[i]);
    }
  }
}

Check make_check(std::string claim, double paper, double measured, double lo,
                 double hi) {
  Check c;
  c.claim = std::move(claim);
  c.paper = paper;
  c.measured = measured;
  c.lo = lo;
  c.hi = hi;
  return c;
}

}  // namespace wearscope::core
