#include "core/analysis_usage.h"

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

namespace wearscope::core {

namespace {

/// Per-app accumulator shared by both kernel variants.
struct RawUsage {
  double txns = 0.0;
  double bytes = 0.0;
  double duration_s = 0.0;
  std::size_t usages = 0;
};

/// Means + figure ordering from the accumulated (app, RawUsage) pairs.
template <typename Pairs>
UsageResult finish_usage(const AnalysisContext& ctx, const Pairs& pairs) {
  UsageResult res;
  for (const auto& [app, a] : pairs) {
    if (a.usages == 0) continue;
    PerUsageStats s;
    s.app = app;
    s.name = std::string(ctx.signatures().app_name(app));
    s.usages = a.usages;
    s.mean_txns_per_usage = a.txns / static_cast<double>(a.usages);
    s.mean_kb_per_usage = a.bytes / static_cast<double>(a.usages) / 1000.0;
    s.mean_duration_s = a.duration_s / static_cast<double>(a.usages);
    res.apps.push_back(std::move(s));
  }
  std::sort(res.apps.begin(), res.apps.end(),
            [](const PerUsageStats& a, const PerUsageStats& b) {
              return a.mean_kb_per_usage > b.mean_kb_per_usage;
            });
  return res;
}

}  // namespace

UsageResult analyze_usage_rows(const AnalysisContext& ctx) {
  std::unordered_map<appdb::AppId, RawUsage> raw;
  for (const UserView* u : ctx.wearable_users()) {
    for (const Usage& usage : u->usages) {
      if (!ctx.in_detailed_window(usage.start)) continue;
      if (usage.app == kUnknownApp) continue;
      RawUsage& a = raw[usage.app];
      a.txns += usage.transactions;
      a.bytes += static_cast<double>(usage.bytes);
      a.duration_s += static_cast<double>(usage.duration_s());
      a.usages += 1;
    }
  }
  return finish_usage(ctx, raw);
}

UsageResult analyze_usage(const AnalysisContext& ctx) {
  // App ids are small catalog indexes (kUnknownApp aside), so a dense
  // grow-on-demand vector replaces the hash map: one indexed add per
  // usage, no hashing, and the finish pass walks apps in id order.
  std::vector<RawUsage> raw;
  for (const UserView* u : ctx.wearable_users()) {
    for (const Usage& usage : u->usages) {
      if (!ctx.in_detailed_window(usage.start)) continue;
      if (usage.app == kUnknownApp) continue;
      if (usage.app >= raw.size()) raw.resize(usage.app + 1);
      RawUsage& a = raw[usage.app];
      a.txns += usage.transactions;
      a.bytes += static_cast<double>(usage.bytes);
      a.duration_s += static_cast<double>(usage.duration_s());
      a.usages += 1;
    }
  }
  std::vector<std::pair<appdb::AppId, RawUsage>> pairs;
  pairs.reserve(raw.size());
  for (std::size_t app = 0; app < raw.size(); ++app) {
    if (raw[app].usages > 0)
      pairs.emplace_back(static_cast<appdb::AppId>(app), raw[app]);
  }
  return finish_usage(ctx, pairs);
}

FigureData figure7(const UsageResult& r) {
  FigureData fig;
  fig.id = "fig7";
  fig.title = "Transactions and data during a single usage";
  // Fig. 7 plots the 50 named apps; the generated long tail stays out.
  std::vector<const PerUsageStats*> named;
  for (const PerUsageStats& s : r.apps) {
    if (!s.name.starts_with("LongTail-") && s.name != "Unknown")
      named.push_back(&s);
  }
  Series txns;
  Series data;
  Series durations;
  txns.name = "transactions_per_usage";
  data.name = "data_kb_per_usage";
  durations.name = "usage_duration_s";
  for (const PerUsageStats* s : named) {
    txns.labels.push_back(s->name);
    txns.y.push_back(s->mean_txns_per_usage);
    data.labels.push_back(s->name);
    data.y.push_back(s->mean_kb_per_usage);
    durations.labels.push_back(s->name);
    durations.y.push_back(s->mean_duration_s);
  }
  fig.series = {std::move(txns), std::move(data), std::move(durations)};

  const auto rank = [&](std::string_view name) -> double {
    for (std::size_t i = 0; i < named.size(); ++i)
      if (named[i]->name == name) return static_cast<double>(i);
    return 1e6;
  };
  // Communication/streaming apps dominate per-usage data (paper: WhatsApp,
  // Deezer, Snapchat lead Fig. 7).
  const double best_media = std::min(
      {rank("WhatsApp"), rank("Deezer"), rank("Snapchat"), rank("Netflix"),
       rank("Spotify")});
  fig.checks.push_back(make_check(
      "best media app rank by data/usage (top 5)", 0, best_media, 0, 5));
  // Payment/notification micro-interactions sit in the long tail.
  const double pay =
      std::min(rank("Samsung-Pay"), rank("Android-Pay"));
  fig.checks.push_back(make_check(
      "payment apps in the bottom half", static_cast<double>(named.size()),
      pay, static_cast<double>(named.size()) / 2.0, 1e6));
  // §5.2 attributes the media apps' volume to "the longer duration of
  // usage": the top-data app must also run meaningfully longer sessions
  // than a notification-style app.
  const auto duration_of = [&](std::string_view name) -> double {
    for (const PerUsageStats* s : named)
      if (s->name == name) return s->mean_duration_s;
    return 0.0;
  };
  if (!named.empty() && duration_of("Weather") > 0.0) {
    fig.checks.push_back(make_check(
        "top media app usage duration vs Weather (longer)", 3.0,
        named.front()->mean_duration_s / duration_of("Weather"), 1.3, 50.0));
  }
  if (!named.empty()) {
    double min_kb = named.back()->mean_kb_per_usage;
    min_kb = std::max(min_kb, 0.1);
    fig.checks.push_back(make_check(
        "per-usage data spread max/min (orders of magnitude)", 1000.0,
        named.front()->mean_kb_per_usage / min_kb, 30.0, 1e6));
  }
  return fig;
}

}  // namespace wearscope::core
