// App identification from SNI/URL (paper §3.3) and endpoint classification
// into Application / Utilities / Advertising / Analytics (paper §5.2).
//
// The signature table maps DNS suffixes to apps; it is built from the
// lab-derived knowledge base (appdb) *minus* the apps whose endpoints the
// authors never mapped — so a realistic share of traffic stays Unknown.
// Third-party hosts (CDNs, ad networks, analytics) are never app
// signatures; they are attributed to an app by temporal proximity within a
// user's stream ("map a set of connections in the same timeframe with a
// given app"), mirroring the paper's method.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <string>
#include <string_view>
#include <vector>

#include "appdb/app_catalog.h"
#include "appdb/categories.h"
#include "appdb/third_party.h"
#include "trace/records.h"
#include "util/strings.h"

namespace wearscope::core {

/// Sentinel app id for traffic that could not be attributed to any app.
inline constexpr appdb::AppId kUnknownApp = 0xffffffff;

/// Endpoint classification of one transaction (Fig. 8 plus Unknown-app
/// first-party fallout).
struct EndpointClass {
  appdb::TransactionClass cls = appdb::TransactionClass::kApplication;
  /// App whose signature matched; kUnknownApp when none (always
  /// kUnknownApp for third-party classes — those belong to no single app).
  appdb::AppId app = kUnknownApp;

  friend bool operator==(const EndpointClass&,
                         const EndpointClass&) = default;
};

/// Suffix-rule signature table.
class AppSignatureTable {
 public:
  /// Builds rules from the knowledge base: one suffix rule per first-party
  /// domain of every app flagged `in_signature_table`.
  /// `coverage` in (0, 1] keeps only that fraction of the rules (used by
  /// the signature-coverage ablation); 1.0 keeps all.
  explicit AppSignatureTable(const appdb::AppCatalog& catalog,
                             double coverage = 1.0);

  /// Classifies a host: app signature -> Application with the app id;
  /// known third-party pools (or ad/analytics-looking labels) -> their
  /// class; anything else -> Application with kUnknownApp.
  [[nodiscard]] EndpointClass classify_host(std::string_view host) const;

  /// Direct signature lookup; nullopt when no app rule matches.
  [[nodiscard]] std::optional<appdb::AppId> match_app(
      std::string_view host) const;

  /// App display name ("Unknown" for kUnknownApp).
  [[nodiscard]] std::string_view app_name(appdb::AppId id) const;

  /// Google Play category of an app (nullopt for kUnknownApp).
  [[nodiscard]] std::optional<appdb::Category> app_category(
      appdb::AppId id) const;

  /// Number of suffix rules installed.
  [[nodiscard]] std::size_t rule_count() const noexcept {
    return rules_.size();
  }

  /// Number of distinct apps with at least one rule (precomputed).
  [[nodiscard]] std::size_t mapped_app_count() const noexcept {
    return mapped_app_count_;
  }

 private:
  /// Heterogeneous-lookup index: probed with string_view suffixes of the
  /// host, so the per-suffix std::string of the old hot path is gone.
  using SuffixIndex =
      std::unordered_map<std::string, appdb::AppId, util::StringHash,
                         std::equal_to<>>;

  /// Direct + registrable-domain match over an already lower-cased host;
  /// kUnknownApp when nothing (unambiguous) matches.
  [[nodiscard]] appdb::AppId match_app_lower(
      std::string_view host_lower) const;

  struct Rule {
    std::string suffix;
    appdb::AppId app;
  };
  std::vector<Rule> rules_;
  SuffixIndex rule_index_;
  /// Registrable-domain fallback: kUnknownApp marks an ambiguous domain
  /// (two apps share it, e.g. googleapis.com) that must NOT match.
  SuffixIndex registrable_index_;
  std::vector<std::string> app_names_;
  std::vector<appdb::Category> app_categories_;
  std::size_t mapped_app_count_ = 0;
};

/// Memoizing wrapper over AppSignatureTable::classify_host.  Hosts repeat
/// heavily across transactions, so per-shard workers keep one of these and
/// classify each distinct host once.  Pure cache: results are identical to
/// the uncached table.  Not thread-safe — one instance per shard/worker.
class HostClassCache {
 public:
  /// `table` must outlive the cache.
  explicit HostClassCache(const AppSignatureTable& table) : table_(&table) {}

  /// Memoized classify_host.
  [[nodiscard]] EndpointClass classify(std::string_view host);

  /// Distinct hosts seen so far.
  [[nodiscard]] std::size_t distinct_hosts() const noexcept {
    return memo_.size();
  }
  /// Lookups served from the memo.
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }

 private:
  const AppSignatureTable* table_;
  std::unordered_map<std::string, EndpointClass, util::StringHash,
                     std::equal_to<>>
      memo_;
  std::uint64_t hits_ = 0;
};

/// Attributes every proxy record of one user to an app id, combining direct
/// signature matches with temporal proximity for third-party endpoints.
///
/// `records` must be the time-sorted proxy records of a single user.
/// Returns one EndpointClass per record, index-aligned.
std::vector<EndpointClass> attribute_user_stream(
    const AppSignatureTable& table,
    std::span<const trace::ProxyRecord* const> records,
    util::SimTime proximity_window_s = 120);

/// Cached overload: identical output, but host classification goes through
/// `cache`, which persists across calls (one cache per shard/worker).
std::vector<EndpointClass> attribute_user_stream(
    HostClassCache& cache,
    std::span<const trace::ProxyRecord* const> records,
    util::SimTime proximity_window_s = 120);

}  // namespace wearscope::core
