// App identification from SNI/URL (paper §3.3) and endpoint classification
// into Application / Utilities / Advertising / Analytics (paper §5.2).
//
// The signature table maps DNS suffixes to apps; it is built from the
// lab-derived knowledge base (appdb) *minus* the apps whose endpoints the
// authors never mapped — so a realistic share of traffic stays Unknown.
// Third-party hosts (CDNs, ad networks, analytics) are never app
// signatures; they are attributed to an app by temporal proximity within a
// user's stream ("map a set of connections in the same timeframe with a
// given app"), mirroring the paper's method.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <string>
#include <string_view>
#include <vector>

#include "appdb/app_catalog.h"
#include "appdb/categories.h"
#include "appdb/third_party.h"
#include "trace/records.h"

namespace wearscope::core {

/// Sentinel app id for traffic that could not be attributed to any app.
inline constexpr appdb::AppId kUnknownApp = 0xffffffff;

/// Endpoint classification of one transaction (Fig. 8 plus Unknown-app
/// first-party fallout).
struct EndpointClass {
  appdb::TransactionClass cls = appdb::TransactionClass::kApplication;
  /// App whose signature matched; kUnknownApp when none (always
  /// kUnknownApp for third-party classes — those belong to no single app).
  appdb::AppId app = kUnknownApp;
};

/// Suffix-rule signature table.
class AppSignatureTable {
 public:
  /// Builds rules from the knowledge base: one suffix rule per first-party
  /// domain of every app flagged `in_signature_table`.
  /// `coverage` in (0, 1] keeps only that fraction of the rules (used by
  /// the signature-coverage ablation); 1.0 keeps all.
  explicit AppSignatureTable(const appdb::AppCatalog& catalog,
                             double coverage = 1.0);

  /// Classifies a host: app signature -> Application with the app id;
  /// known third-party pools (or ad/analytics-looking labels) -> their
  /// class; anything else -> Application with kUnknownApp.
  [[nodiscard]] EndpointClass classify_host(std::string_view host) const;

  /// Direct signature lookup; nullopt when no app rule matches.
  [[nodiscard]] std::optional<appdb::AppId> match_app(
      std::string_view host) const;

  /// App display name ("Unknown" for kUnknownApp).
  [[nodiscard]] std::string_view app_name(appdb::AppId id) const;

  /// Google Play category of an app (nullopt for kUnknownApp).
  [[nodiscard]] std::optional<appdb::Category> app_category(
      appdb::AppId id) const;

  /// Number of suffix rules installed.
  [[nodiscard]] std::size_t rule_count() const noexcept {
    return rules_.size();
  }

  /// Number of distinct apps with at least one rule.
  [[nodiscard]] std::size_t mapped_app_count() const noexcept;

 private:
  struct Rule {
    std::string suffix;
    appdb::AppId app;
  };
  std::vector<Rule> rules_;
  std::unordered_map<std::string, appdb::AppId> rule_index_;
  /// Registrable-domain fallback: kUnknownApp marks an ambiguous domain
  /// (two apps share it, e.g. googleapis.com) that must NOT match.
  std::unordered_map<std::string, appdb::AppId> registrable_index_;
  std::vector<std::string> app_names_;
  std::vector<appdb::Category> app_categories_;
};

/// Attributes every proxy record of one user to an app id, combining direct
/// signature matches with temporal proximity for third-party endpoints.
///
/// `records` must be the time-sorted proxy records of a single user.
/// Returns one EndpointClass per record, index-aligned.
std::vector<EndpointClass> attribute_user_stream(
    const AppSignatureTable& table,
    std::span<const trace::ProxyRecord* const> records,
    util::SimTime proximity_window_s = 120);

}  // namespace wearscope::core
