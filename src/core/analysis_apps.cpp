#include "core/analysis_apps.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "util/stats.h"

namespace wearscope::core {

namespace {

struct RawAppAgg {
  std::unordered_set<std::uint64_t> user_days;  ///< (user, day) pairs.
  std::unordered_set<trace::UserId> users;
  double usages = 0.0;
  double txns = 0.0;
  double bytes = 0.0;
};

}  // namespace

AppPopularityResult analyze_apps(const AnalysisContext& ctx) {
  AppPopularityResult res;

  std::unordered_map<appdb::AppId, RawAppAgg> agg;
  double unknown_txns = 0.0;
  double total_txns = 0.0;

  std::vector<double> apps_per_user;
  std::size_t day_count = 0;
  std::size_t one_app_days = 0;

  for (const UserView* u : ctx.wearable_users()) {
    std::set<appdb::AppId> user_apps;
    std::map<int, std::set<appdb::AppId>> apps_by_day;
    for (std::size_t i = 0; i < u->wearable_txns.size(); ++i) {
      const trace::ProxyRecord* r = u->wearable_txns[i];
      if (!ctx.in_detailed_window(r->timestamp)) continue;
      total_txns += 1.0;
      const appdb::AppId app = u->wearable_classes[i].app;
      if (app == kUnknownApp) {
        unknown_txns += 1.0;
        continue;
      }
      RawAppAgg& a = agg[app];
      const int day = util::day_of(r->timestamp);
      a.user_days.insert((u->user_id << 10) ^
                         static_cast<std::uint64_t>(day));
      a.users.insert(u->user_id);
      a.txns += 1.0;
      a.bytes += static_cast<double>(r->bytes_total());
      user_apps.insert(app);
      apps_by_day[day].insert(app);
    }
    for (const Usage& usage : u->usages) {
      if (!ctx.in_detailed_window(usage.start)) continue;
      if (usage.app == kUnknownApp) continue;
      agg[usage.app].usages += 1.0;
    }
    if (!user_apps.empty())
      apps_per_user.push_back(static_cast<double>(user_apps.size()));
    for (const auto& [day, day_apps] : apps_by_day) {
      ++day_count;
      if (day_apps.size() == 1) ++one_app_days;
    }
  }

  if (total_txns > 0.0) res.unknown_traffic_fraction = unknown_txns / total_txns;

  // Totals for share normalization ("percentage of daily total of all
  // applications").
  double total_user_days = 0.0;
  double total_used_days_rate = 0.0;
  double total_usages = 0.0;
  double total_app_txns = 0.0;
  double total_bytes = 0.0;
  for (const auto& [app, a] : agg) {
    total_user_days += static_cast<double>(a.user_days.size());
    total_used_days_rate += static_cast<double>(a.user_days.size()) /
                            static_cast<double>(a.users.size());
    total_usages += a.usages;
    total_app_txns += a.txns;
    total_bytes += a.bytes;
  }

  for (const auto& [app, a] : agg) {
    AppStats s;
    s.app = app;
    s.name = std::string(ctx.signatures().app_name(app));
    if (total_user_days > 0.0)
      s.user_share_pct =
          100.0 * static_cast<double>(a.user_days.size()) / total_user_days;
    if (total_used_days_rate > 0.0)
      s.used_days_pct = 100.0 *
                        (static_cast<double>(a.user_days.size()) /
                         static_cast<double>(a.users.size())) /
                        total_used_days_rate;
    if (total_usages > 0.0) s.usage_share_pct = 100.0 * a.usages / total_usages;
    if (total_app_txns > 0.0) s.txn_share_pct = 100.0 * a.txns / total_app_txns;
    if (total_bytes > 0.0) s.data_share_pct = 100.0 * a.bytes / total_bytes;
    res.apps.push_back(std::move(s));
  }
  std::sort(res.apps.begin(), res.apps.end(),
            [](const AppStats& a, const AppStats& b) {
              return a.user_share_pct > b.user_share_pct;
            });

  res.mean_apps_per_user = util::mean(apps_per_user);
  if (!apps_per_user.empty()) {
    const util::Ecdf e(apps_per_user);
    res.frac_users_under_20 = e.at(20.0 - 1e-9);
    res.max_apps_per_user = e.sorted().back();
  }
  if (day_count > 0) {
    res.one_app_day_fraction =
        static_cast<double>(one_app_days) / static_cast<double>(day_count);
  }
  return res;
}

namespace {

/// True for the 50 apps the paper names in Fig. 5 (the generated long tail
/// uses the reserved "LongTail-" prefix).
bool is_named_app(const AppStats& a) {
  return !a.name.starts_with("LongTail-") && a.name != "Unknown";
}

/// The named apps of `apps`, order preserved (descending user share).
std::vector<const AppStats*> named_only(const std::vector<AppStats>& apps) {
  std::vector<const AppStats*> out;
  for (const AppStats& a : apps)
    if (is_named_app(a)) out.push_back(&a);
  return out;
}

/// Rank of an app name among the named apps; large sentinel when absent.
std::size_t rank_of(const std::vector<const AppStats*>& apps,
                    std::string_view name) {
  for (std::size_t i = 0; i < apps.size(); ++i) {
    if (apps[i]->name == name) return i;
  }
  return 1'000'000;
}

Series bars(const char* name, const std::vector<const AppStats*>& apps,
            double AppStats::* field, std::size_t limit = 50) {
  Series s;
  s.name = name;
  for (std::size_t i = 0; i < apps.size() && i < limit; ++i) {
    s.labels.push_back(apps[i]->name);
    s.y.push_back(*apps[i].*field);
  }
  return s;
}

}  // namespace

FigureData figure5a(const AppPopularityResult& r) {
  FigureData fig;
  fig.id = "fig5a";
  fig.title = "App popularity: daily associated users and app-used days";
  const std::vector<const AppStats*> named = named_only(r.apps);
  fig.series.push_back(
      bars("daily_associated_users_pct", named, &AppStats::user_share_pct));
  fig.series.push_back(
      bars("app_used_days_per_user_pct", named, &AppStats::used_days_pct));

  const std::size_t weather = rank_of(named, "Weather");
  const std::size_t accu = rank_of(named, "Accuweather");
  const std::size_t gmaps = rank_of(named, "Google-Maps");
  const std::size_t pay = std::min(rank_of(named, "Samsung-Pay"),
                                   rank_of(named, "Android-Pay"));
  fig.checks.push_back(make_check("Weather app rank (1st)", 0,
                                  static_cast<double>(weather), 0, 2));
  fig.checks.push_back(make_check("Accuweather rank (3rd)", 2,
                                  static_cast<double>(accu), 0, 6));
  fig.checks.push_back(make_check("Google-Maps rank (2nd)", 1,
                                  static_cast<double>(gmaps), 0, 5));
  fig.checks.push_back(make_check("best payment-app rank (top 10)", 8,
                                  static_cast<double>(pay), 0, 14));
  if (named.size() >= 20) {
    const double decay =
        named.front()->user_share_pct /
        std::max(1e-9, named[19]->user_share_pct);
    fig.checks.push_back(make_check(
        "popularity decay: rank1/rank20 users (exponential)", 20.0, decay,
        5.0, 500.0));
  }
  // §4.3 per-user app statistics ride along with Fig. 5a.
  fig.checks.push_back(make_check("mean apps observed per user", 8.0,
                                  r.mean_apps_per_user, 1.5, 12.0));
  fig.checks.push_back(make_check("users with < 20 apps", 0.90,
                                  r.frac_users_under_20, 0.85, 1.0));
  fig.checks.push_back(make_check("days running a single app", 0.93,
                                  r.one_app_day_fraction, 0.85, 0.99));
  fig.notes.push_back(
      "the paper counts installed Internet-capable apps; passive traffic "
      "only reveals apps actually used on cellular, so the observed mean "
      "sits below the installed mean");
  return fig;
}

FigureData figure5b(const AppPopularityResult& r) {
  FigureData fig;
  fig.id = "fig5b";
  fig.title = "Frequency of app usage, transactions and data per day";
  const std::vector<const AppStats*> named = named_only(r.apps);
  fig.series.push_back(
      bars("frequency_of_usage_pct", named, &AppStats::usage_share_pct));
  fig.series.push_back(
      bars("transactions_pct", named, &AppStats::txn_share_pct));
  fig.series.push_back(bars("data_pct", named, &AppStats::data_share_pct));

  const auto find = [&](std::string_view name) -> const AppStats* {
    for (const AppStats& a : r.apps)
      if (a.name == name) return &a;
    return nullptr;
  };
  if (const AppStats* wa = find("WhatsApp"); wa != nullptr &&
                                             wa->txn_share_pct > 0.0) {
    fig.checks.push_back(make_check(
        "WhatsApp data share / txn share (media-heavy, >1)", 3.0,
        wa->data_share_pct / wa->txn_share_pct, 1.2, 60.0));
  }
  if (const AppStats* ms = find("Messenger"); ms != nullptr &&
                                              ms->data_share_pct > 0.0) {
    fig.checks.push_back(make_check(
        "Messenger txn share / data share (notification-heavy, >1)", 3.0,
        ms->txn_share_pct / ms->data_share_pct, 1.2, 60.0));
  }
  if (const AppStats* we = find("Weather"); we != nullptr) {
    fig.checks.push_back(make_check("Weather transaction share (high)", 15.0,
                                    we->txn_share_pct, 5.0, 45.0));
  }
  return fig;
}

}  // namespace wearscope::core
