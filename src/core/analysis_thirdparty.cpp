#include "core/analysis_thirdparty.h"

#include <unordered_set>

namespace wearscope::core {

ThirdPartyResult analyze_thirdparty(const AnalysisContext& ctx) {
  ThirdPartyResult res;
  struct Raw {
    std::unordered_set<trace::UserId> users;
    double txns = 0.0;
    double bytes = 0.0;
  };
  std::array<Raw, appdb::kTransactionClassCount> raw{};

  for (const UserView* u : ctx.wearable_users()) {
    for (std::size_t i = 0; i < u->wearable_txns.size(); ++i) {
      const trace::ProxyRecord* r = u->wearable_txns[i];
      if (!ctx.in_detailed_window(r->timestamp)) continue;
      Raw& a = raw[static_cast<std::size_t>(u->wearable_classes[i].cls)];
      a.users.insert(u->user_id);
      a.txns += 1.0;
      a.bytes += static_cast<double>(r->bytes_total());
    }
  }

  double total_users = 0.0;
  double total_txns = 0.0;
  double total_bytes = 0.0;
  for (const Raw& a : raw) {
    total_users += static_cast<double>(a.users.size());
    total_txns += a.txns;
    total_bytes += a.bytes;
  }
  for (std::size_t c = 0; c < appdb::kTransactionClassCount; ++c) {
    ClassStats s;
    s.cls = static_cast<appdb::TransactionClass>(c);
    if (total_users > 0.0)
      s.user_share_pct =
          100.0 * static_cast<double>(raw[c].users.size()) / total_users;
    if (total_txns > 0.0) s.txn_share_pct = 100.0 * raw[c].txns / total_txns;
    if (total_bytes > 0.0)
      s.data_share_pct = 100.0 * raw[c].bytes / total_bytes;
    res.classes[c] = s;
  }

  const double app_bytes =
      raw[static_cast<std::size_t>(appdb::TransactionClass::kApplication)]
          .bytes;
  const double third_bytes =
      raw[static_cast<std::size_t>(appdb::TransactionClass::kUtilities)].bytes +
      raw[static_cast<std::size_t>(appdb::TransactionClass::kAdvertising)]
          .bytes +
      raw[static_cast<std::size_t>(appdb::TransactionClass::kAnalytics)].bytes;
  if (third_bytes > 0.0) res.app_over_thirdparty_data = app_bytes / third_bytes;
  return res;
}

FigureData figure8(const ThirdPartyResult& r) {
  FigureData fig;
  fig.id = "fig8";
  fig.title = "Applications and the services (transaction classes)";
  Series users;
  Series freq;
  Series data;
  users.name = "users_pct";
  freq.name = "frequency_pct";
  data.name = "data_pct";
  for (const ClassStats& s : r.classes) {
    const std::string label{appdb::transaction_class_name(s.cls)};
    users.labels.push_back(label);
    users.y.push_back(s.user_share_pct);
    freq.labels.push_back(label);
    freq.y.push_back(s.txn_share_pct);
    data.labels.push_back(label);
    data.y.push_back(s.data_share_pct);
  }
  fig.series = {std::move(users), std::move(freq), std::move(data)};

  fig.checks.push_back(make_check(
      "first-party/third-party data ratio (same order of magnitude)", 3.0,
      r.app_over_thirdparty_data, 0.5, 10.0));
  const double ads =
      r.classes[static_cast<std::size_t>(appdb::TransactionClass::kAdvertising)]
          .data_share_pct;
  const double analytics =
      r.classes[static_cast<std::size_t>(appdb::TransactionClass::kAnalytics)]
          .data_share_pct;
  fig.checks.push_back(make_check("advertising data share > 0.5%", 3.0, ads,
                                  0.5, 30.0));
  fig.checks.push_back(make_check("analytics data share > 0.5%", 3.0,
                                  analytics, 0.5, 30.0));
  return fig;
}

}  // namespace wearscope::core
