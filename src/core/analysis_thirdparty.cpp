#include "core/analysis_thirdparty.h"

#include <cstdint>
#include <unordered_set>

namespace wearscope::core {

namespace {

/// Per-class accumulation shared by both kernels: distinct-user count,
/// transactions and bytes.
struct RawClass {
  std::size_t users = 0;
  double txns = 0.0;
  double bytes = 0.0;
};

/// Shares + ratio from the accumulated per-class counters.
ThirdPartyResult finish_thirdparty(
    const std::array<RawClass, appdb::kTransactionClassCount>& raw) {
  ThirdPartyResult res;
  double total_users = 0.0;
  double total_txns = 0.0;
  double total_bytes = 0.0;
  for (const RawClass& a : raw) {
    total_users += static_cast<double>(a.users);
    total_txns += a.txns;
    total_bytes += a.bytes;
  }
  for (std::size_t c = 0; c < appdb::kTransactionClassCount; ++c) {
    ClassStats s;
    s.cls = static_cast<appdb::TransactionClass>(c);
    if (total_users > 0.0)
      s.user_share_pct =
          100.0 * static_cast<double>(raw[c].users) / total_users;
    if (total_txns > 0.0) s.txn_share_pct = 100.0 * raw[c].txns / total_txns;
    if (total_bytes > 0.0)
      s.data_share_pct = 100.0 * raw[c].bytes / total_bytes;
    res.classes[c] = s;
  }

  const double app_bytes =
      raw[static_cast<std::size_t>(appdb::TransactionClass::kApplication)]
          .bytes;
  const double third_bytes =
      raw[static_cast<std::size_t>(appdb::TransactionClass::kUtilities)].bytes +
      raw[static_cast<std::size_t>(appdb::TransactionClass::kAdvertising)]
          .bytes +
      raw[static_cast<std::size_t>(appdb::TransactionClass::kAnalytics)].bytes;
  if (third_bytes > 0.0) res.app_over_thirdparty_data = app_bytes / third_bytes;
  return res;
}

}  // namespace

ThirdPartyResult analyze_thirdparty_rows(const AnalysisContext& ctx) {
  struct Raw {
    std::unordered_set<trace::UserId> users;
    double txns = 0.0;
    double bytes = 0.0;
  };
  std::array<Raw, appdb::kTransactionClassCount> sets{};

  for (const UserView* u : ctx.wearable_users()) {
    for (std::size_t i = 0; i < u->wearable_txns.size(); ++i) {
      const trace::ProxyRecord* r = u->wearable_txns[i];
      if (!ctx.in_detailed_window(r->timestamp)) continue;
      Raw& a = sets[static_cast<std::size_t>(u->wearable_classes[i].cls)];
      a.users.insert(u->user_id);
      a.txns += 1.0;
      a.bytes += static_cast<double>(r->bytes_total());
    }
  }
  std::array<RawClass, appdb::kTransactionClassCount> raw{};
  for (std::size_t c = 0; c < appdb::kTransactionClassCount; ++c) {
    raw[c].users = sets[c].users.size();
    raw[c].txns = sets[c].txns;
    raw[c].bytes = sets[c].bytes;
  }
  return finish_thirdparty(raw);
}

ThirdPartyResult analyze_thirdparty(const AnalysisContext& ctx) {
  // Each user appears once in wearable_users(), so per-class distinct-user
  // sets collapse into a per-user seen flag per class: the inner loop reads
  // only the timestamp/byte columns and the attribution array.
  const trace::ProxyColumns& pc = ctx.store().proxy_columns();
  std::array<RawClass, appdb::kTransactionClassCount> raw{};

  for (const UserView* u : ctx.wearable_users()) {
    std::array<bool, appdb::kTransactionClassCount> seen{};
    for (std::size_t i = 0; i < u->wearable_rows.size(); ++i) {
      const std::uint32_t row = u->wearable_rows[i];
      if (!ctx.in_detailed_window(pc.timestamp[row])) continue;
      const auto c = static_cast<std::size_t>(u->wearable_classes[i].cls);
      RawClass& a = raw[c];
      if (!seen[c]) {
        seen[c] = true;
        ++a.users;
      }
      a.txns += 1.0;
      a.bytes += static_cast<double>(pc.bytes_total[row]);
    }
  }
  return finish_thirdparty(raw);
}

FigureData figure8(const ThirdPartyResult& r) {
  FigureData fig;
  fig.id = "fig8";
  fig.title = "Applications and the services (transaction classes)";
  Series users;
  Series freq;
  Series data;
  users.name = "users_pct";
  freq.name = "frequency_pct";
  data.name = "data_pct";
  for (const ClassStats& s : r.classes) {
    const std::string label{appdb::transaction_class_name(s.cls)};
    users.labels.push_back(label);
    users.y.push_back(s.user_share_pct);
    freq.labels.push_back(label);
    freq.y.push_back(s.txn_share_pct);
    data.labels.push_back(label);
    data.y.push_back(s.data_share_pct);
  }
  fig.series = {std::move(users), std::move(freq), std::move(data)};

  fig.checks.push_back(make_check(
      "first-party/third-party data ratio (same order of magnitude)", 3.0,
      r.app_over_thirdparty_data, 0.5, 10.0));
  const double ads =
      r.classes[static_cast<std::size_t>(appdb::TransactionClass::kAdvertising)]
          .data_share_pct;
  const double analytics =
      r.classes[static_cast<std::size_t>(appdb::TransactionClass::kAnalytics)]
          .data_share_pct;
  fig.checks.push_back(make_check("advertising data share > 0.5%", 3.0, ads,
                                  0.5, 30.0));
  fig.checks.push_back(make_check("analytics data share > 0.5%", 3.0,
                                  analytics, 0.5, 30.0));
  return fig;
}

}  // namespace wearscope::core
