#include "core/analysis_cohorts.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

namespace wearscope::core {

CohortResult analyze_cohorts(const AnalysisContext& ctx) {
  CohortResult res;

  struct Raw {
    trace::Tac tac = 0;
    std::string manufacturer;
    std::string os;
    std::set<trace::UserId> users;
    std::set<trace::UserId> active_users;
    double txns = 0.0;
    double bytes = 0.0;
    std::set<std::uint64_t> active_user_days;
  };
  // Key by model name: several TACs may belong to one commercial model.
  std::map<std::string, Raw> raw;

  // TAC -> DeviceDB row index for this capture (the DeviceDB is tiny).
  std::unordered_map<trace::Tac, const trace::DeviceRecord*> device_index;
  device_index.reserve(ctx.store().devices.size());
  for (const trace::DeviceRecord& d : ctx.store().devices) {
    device_index.emplace(d.tac, &d);
  }
  const auto model_of = [&](trace::Tac tac) -> const trace::DeviceRecord* {
    const auto it = device_index.find(tac);
    return it == device_index.end() ? nullptr : it->second;
  };

  for (const UserView& u : ctx.users()) {
    // Registration: any wearable-TAC MME event counts the user into the
    // model cohort (full window, like the adoption analysis).
    for (const trace::MmeRecord* r : u.mme) {
      if (!ctx.devices().is_wearable(r->tac)) continue;
      const trace::DeviceRecord* d = model_of(r->tac);
      if (d == nullptr) continue;
      Raw& a = raw[d->model];
      if (a.users.empty()) {
        a.tac = d->tac;
        a.manufacturer = d->manufacturer;
        a.os = d->os;
      }
      a.users.insert(u.user_id);
    }
    // Traffic: detailed window.
    for (const trace::ProxyRecord* r : u.wearable_txns) {
      const trace::DeviceRecord* d = model_of(r->tac);
      if (d == nullptr) continue;
      Raw& a = raw[d->model];
      a.active_users.insert(u.user_id);
      if (!ctx.in_detailed_window(r->timestamp)) continue;
      a.txns += 1.0;
      a.bytes += static_cast<double>(r->bytes_total());
      a.active_user_days.insert((u.user_id << 10) ^
                                static_cast<std::uint64_t>(
                                    util::day_of(r->timestamp)));
    }
  }

  double total_users = 0.0;
  std::map<std::string, double> by_vendor;
  for (auto& [model, a] : raw) {
    ModelCohort c;
    c.tac = a.tac;
    c.model = model;
    c.manufacturer = a.manufacturer;
    c.os = a.os;
    c.users = a.users.size();
    c.active_users = a.active_users.size();
    c.txns = a.txns;
    c.bytes = a.bytes;
    if (!a.active_users.empty()) {
      c.mean_active_days = static_cast<double>(a.active_user_days.size()) /
                           static_cast<double>(a.active_users.size());
    }
    total_users += static_cast<double>(c.users);
    by_vendor[c.manufacturer] += static_cast<double>(c.users);
    res.models.push_back(std::move(c));
  }
  std::sort(res.models.begin(), res.models.end(),
            [](const ModelCohort& a, const ModelCohort& b) {
              return a.users > b.users;
            });

  for (const auto& [vendor, users] : by_vendor) {
    res.manufacturer_share.emplace_back(
        vendor, total_users > 0.0 ? users / total_users : 0.0);
  }
  std::sort(res.manufacturer_share.begin(), res.manufacturer_share.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  for (const auto& [vendor, share] : res.manufacturer_share) {
    if (vendor == "Samsung" || vendor == "LG") res.samsung_lg_share += share;
  }
  return res;
}

FigureData figure_cohorts(const CohortResult& r) {
  FigureData fig;
  fig.id = "cohorts";
  fig.title = "Wearable users by device model (§4.1 vendor mix)";
  Series users;
  users.name = "users_per_model";
  Series bytes;
  bytes.name = "bytes_per_model";
  for (const ModelCohort& c : r.models) {
    users.labels.push_back(c.manufacturer + " " + c.model);
    users.y.push_back(static_cast<double>(c.users));
    bytes.labels.push_back(c.manufacturer + " " + c.model);
    bytes.y.push_back(c.bytes);
  }
  fig.series = {std::move(users), std::move(bytes)};

  fig.checks.push_back(make_check(
      "Samsung + LG user share (\"most users\", §4.1)", 0.85,
      r.samsung_lg_share, 0.70, 1.0));
  fig.checks.push_back(make_check(
      "distinct wearable models observed", 6,
      static_cast<double>(r.models.size()), 3, 12));
  fig.notes.push_back(
      "extension beyond the paper's figures: §4.1 only remarks that most "
      "users run LG/Samsung watches");
  return fig;
}

}  // namespace wearscope::core
