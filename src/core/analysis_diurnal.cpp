#include "core/analysis_diurnal.h"

#include <algorithm>
#include <cstdint>

#include <unordered_set>

namespace wearscope::core {

namespace {

/// Accumulates one metric into (hour, daykind) cells and normalizes by the
/// average weekly total, matching the figure's normalization.
struct HourAccumulator {
  HourProfile weekday{};
  HourProfile weekend{};
  double total = 0.0;
  int weekday_days = 0;
  int weekend_days = 0;

  void add(util::SimTime t, double amount) {
    const int h = util::hour_of(t);
    auto& prof = util::is_weekend(t) ? weekend : weekday;
    prof[static_cast<std::size_t>(h)] += amount;
    total += amount;
  }

  /// Normalizes to per-day averages over the weekly total.
  void finalize(int weeks) {
    if (total <= 0.0 || weeks <= 0) return;
    const double weekly_total = total / weeks;
    for (std::size_t h = 0; h < 24; ++h) {
      // Average day of each kind, as share of the average weekly total.
      weekday[h] = weekday[h] / std::max(1, weekday_days) / weekly_total;
      weekend[h] = weekend[h] / std::max(1, weekend_days) / weekly_total;
    }
  }
};

Series to_series(const char* name, const HourProfile& p) {
  Series s;
  s.name = name;
  for (int h = 0; h < 24; ++h) {
    s.x.push_back(h);
    s.y.push_back(p[static_cast<std::size_t>(h)]);
  }
  return s;
}

}  // namespace

DiurnalResult analyze_diurnal_rows(const AnalysisContext& ctx) {
  DiurnalResult res;
  const int weeks = ctx.detailed_weeks();

  HourAccumulator users_acc;
  HourAccumulator data_acc;
  HourAccumulator txns_acc;
  for (int d = ctx.options().detailed_start_day;
       d < ctx.options().observation_days; ++d) {
    (util::is_weekend_day(d) ? users_acc.weekend_days
                             : users_acc.weekday_days)++;
  }
  data_acc.weekday_days = txns_acc.weekday_days = users_acc.weekday_days;
  data_acc.weekend_days = txns_acc.weekend_days = users_acc.weekend_days;

  // Distinct active users per (day, hour) / per day / per week.
  std::unordered_set<std::uint64_t> seen_day_hour;  // user ^ day ^ hour key
  std::unordered_set<std::uint64_t> seen_day;
  std::unordered_set<std::uint64_t> seen_week;
  std::array<std::size_t, 2> weekly_bytes{};  // [weekday, weekend] wearable
  std::array<std::size_t, 2> weekly_bytes_all{};
  std::array<double, 7> dow_txns{};       // Mon..Sun wearable transactions
  std::array<double, 7> dow_user_days{};  // Mon..Sun distinct active users

  for (const UserView* u : ctx.wearable_users()) {
    for (const trace::ProxyRecord* r : u->wearable_txns) {
      if (!ctx.in_detailed_window(r->timestamp)) continue;
      const int day = util::day_of(r->timestamp);
      const int hour = util::hour_of(r->timestamp);
      const std::uint64_t day_hour_key =
          (u->user_id << 16) ^ static_cast<std::uint64_t>(day * 24 + hour);
      if (seen_day_hour.insert(day_hour_key).second) {
        users_acc.add(r->timestamp, 1.0);
      }
      if (seen_day.insert((u->user_id << 12) ^
                          static_cast<std::uint64_t>(day))
              .second) {
        dow_user_days[static_cast<std::size_t>(
            util::weekday_of_day(day))] += 1.0;
      }
      seen_week.insert((u->user_id << 8) ^
                       static_cast<std::uint64_t>(util::week_of(r->timestamp)));
      data_acc.add(r->timestamp, static_cast<double>(r->bytes_total()));
      txns_acc.add(r->timestamp, 1.0);
      weekly_bytes[util::is_weekend(r->timestamp) ? 1 : 0] +=
          r->bytes_total();
      dow_txns[static_cast<std::size_t>(util::weekday_of(r->timestamp))] +=
          1.0;
    }
  }
  // Total traffic (wearable + everything else) for the relative-usage
  // comparison of §4.2.
  for (const trace::ProxyRecord& r : ctx.store().proxy) {
    if (!ctx.in_detailed_window(r.timestamp)) continue;
    weekly_bytes_all[util::is_weekend(r.timestamp) ? 1 : 0] += r.bytes_total();
  }

  users_acc.finalize(weeks);
  data_acc.finalize(weeks);
  txns_acc.finalize(weeks);
  res.users_weekday = users_acc.weekday;
  res.users_weekend = users_acc.weekend;
  res.data_weekday = data_acc.weekday;
  res.data_weekend = data_acc.weekend;
  res.txns_weekday = txns_acc.weekday;
  res.txns_weekend = txns_acc.weekend;

  if (!seen_week.empty()) {
    // days in window = weeks * 7; mean distinct users per day over mean
    // distinct users per week.
    const double per_day =
        static_cast<double>(seen_day.size()) / (weeks * 7.0);
    const double per_week = static_cast<double>(seen_week.size()) / weeks;
    if (per_week > 0.0) res.daily_active_fraction = per_day / per_week;
  }

  double wd_morning = 0.0;
  double we_morning = 0.0;
  for (std::size_t h = 6; h < 9; ++h) {
    wd_morning += res.users_weekday[h];
    we_morning += res.users_weekend[h];
  }
  if (we_morning > 0.0) res.commute_bump_ratio = wd_morning / we_morning;

  double dow_total = 0.0;
  for (const double v : dow_txns) dow_total += v;
  if (dow_total > 0.0) {
    for (std::size_t d = 0; d < 7; ++d)
      res.dow_txn_share[d] = dow_txns[d] / dow_total;
  }
  double ud_min = 1e300;
  double ud_max = 0.0;
  for (const double v : dow_user_days) {
    ud_min = std::min(ud_min, v);
    ud_max = std::max(ud_max, v);
  }
  if (ud_min > 0.0) res.day_of_week_spread = ud_max / ud_min;

  if (weekly_bytes_all[0] > 0 && weekly_bytes_all[1] > 0 &&
      weekly_bytes[0] > 0) {
    const double wd_share = static_cast<double>(weekly_bytes[0]) /
                            static_cast<double>(weekly_bytes_all[0]);
    const double we_share = static_cast<double>(weekly_bytes[1]) /
                            static_cast<double>(weekly_bytes_all[1]);
    res.weekend_relative_usage = we_share / wd_share;
  }
  return res;
}

DiurnalResult analyze_diurnal(const AnalysisContext& ctx) {
  DiurnalResult res;
  const int weeks = ctx.detailed_weeks();
  const trace::ProxyColumns& pc = ctx.store().proxy_columns();

  HourAccumulator users_acc;
  HourAccumulator data_acc;
  HourAccumulator txns_acc;
  for (int d = ctx.options().detailed_start_day;
       d < ctx.options().observation_days; ++d) {
    (util::is_weekend_day(d) ? users_acc.weekend_days
                             : users_acc.weekday_days)++;
  }
  data_acc.weekday_days = txns_acc.weekday_days = users_acc.weekday_days;
  data_acc.weekend_days = txns_acc.weekend_days = users_acc.weekend_days;

  // The row version dedups (user, day-hour) / (user, day) / (user, week)
  // in global hash sets.  A user's wearable rows are time-sorted, so each
  // of those keys is nondecreasing along them: "first time seen" is just
  // "different from the previous one", per user.
  std::size_t user_days = 0;   // == seen_day.size() of the row version
  std::size_t user_weeks = 0;  // == seen_week.size()
  std::array<std::size_t, 2> weekly_bytes{};  // [weekday, weekend] wearable
  std::array<std::size_t, 2> weekly_bytes_all{};
  std::array<double, 7> dow_txns{};       // Mon..Sun wearable transactions
  std::array<double, 7> dow_user_days{};  // Mon..Sun distinct active users

  for (const UserView* u : ctx.wearable_users()) {
    std::int64_t prev_slot = -1;
    int prev_day = -1;
    int prev_week = -1;
    for (const std::uint32_t row : u->wearable_rows) {
      const util::SimTime t = pc.timestamp[row];
      if (!ctx.in_detailed_window(t)) continue;
      const int day = util::day_of(t);
      const std::int64_t slot =
          static_cast<std::int64_t>(day) * 24 + util::hour_of(t);
      if (slot != prev_slot) {
        prev_slot = slot;
        users_acc.add(t, 1.0);
      }
      if (day != prev_day) {
        prev_day = day;
        ++user_days;
        dow_user_days[static_cast<std::size_t>(
            util::weekday_of_day(day))] += 1.0;
      }
      const int week = util::week_of(t);
      if (week != prev_week) {
        prev_week = week;
        ++user_weeks;
      }
      const std::uint64_t bytes = pc.bytes_total[row];
      data_acc.add(t, static_cast<double>(bytes));
      txns_acc.add(t, 1.0);
      weekly_bytes[util::is_weekend(t) ? 1 : 0] += bytes;
      dow_txns[static_cast<std::size_t>(util::weekday_of(t))] += 1.0;
    }
  }
  // Total traffic (wearable + everything else) for the relative-usage
  // comparison of §4.2, straight off the timestamp and byte columns.
  for (std::size_t i = 0; i < pc.size(); ++i) {
    if (!ctx.in_detailed_window(pc.timestamp[i])) continue;
    weekly_bytes_all[util::is_weekend(pc.timestamp[i]) ? 1 : 0] +=
        pc.bytes_total[i];
  }

  users_acc.finalize(weeks);
  data_acc.finalize(weeks);
  txns_acc.finalize(weeks);
  res.users_weekday = users_acc.weekday;
  res.users_weekend = users_acc.weekend;
  res.data_weekday = data_acc.weekday;
  res.data_weekend = data_acc.weekend;
  res.txns_weekday = txns_acc.weekday;
  res.txns_weekend = txns_acc.weekend;

  if (user_weeks > 0) {
    // days in window = weeks * 7; mean distinct users per day over mean
    // distinct users per week.
    const double per_day = static_cast<double>(user_days) / (weeks * 7.0);
    const double per_week = static_cast<double>(user_weeks) / weeks;
    if (per_week > 0.0) res.daily_active_fraction = per_day / per_week;
  }

  double wd_morning = 0.0;
  double we_morning = 0.0;
  for (std::size_t h = 6; h < 9; ++h) {
    wd_morning += res.users_weekday[h];
    we_morning += res.users_weekend[h];
  }
  if (we_morning > 0.0) res.commute_bump_ratio = wd_morning / we_morning;

  double dow_total = 0.0;
  for (const double v : dow_txns) dow_total += v;
  if (dow_total > 0.0) {
    for (std::size_t d = 0; d < 7; ++d)
      res.dow_txn_share[d] = dow_txns[d] / dow_total;
  }
  double ud_min = 1e300;
  double ud_max = 0.0;
  for (const double v : dow_user_days) {
    ud_min = std::min(ud_min, v);
    ud_max = std::max(ud_max, v);
  }
  if (ud_min > 0.0) res.day_of_week_spread = ud_max / ud_min;

  if (weekly_bytes_all[0] > 0 && weekly_bytes_all[1] > 0 &&
      weekly_bytes[0] > 0) {
    const double wd_share = static_cast<double>(weekly_bytes[0]) /
                            static_cast<double>(weekly_bytes_all[0]);
    const double we_share = static_cast<double>(weekly_bytes[1]) /
                            static_cast<double>(weekly_bytes_all[1]);
    res.weekend_relative_usage = we_share / wd_share;
  }
  return res;
}

FigureData figure3a(const DiurnalResult& r) {
  FigureData fig;
  fig.id = "fig3a";
  fig.title = "Hourly wearable usage (share of weekly total)";
  fig.series.push_back(to_series("active_users_weekday", r.users_weekday));
  fig.series.push_back(to_series("active_users_weekend", r.users_weekend));
  fig.series.push_back(to_series("data_weekday", r.data_weekday));
  fig.series.push_back(to_series("data_weekend", r.data_weekend));
  fig.series.push_back(to_series("transactions_weekday", r.txns_weekday));
  fig.series.push_back(to_series("transactions_weekend", r.txns_weekend));
  fig.checks.push_back(make_check(
      "share of weekly actives active on a given day", 0.35,
      r.daily_active_fraction, 0.25, 0.50));
  fig.checks.push_back(make_check(
      "weekday/weekend commute-morning user ratio (>1)", 1.5,
      r.commute_bump_ratio, 1.1, 5.0));
  fig.checks.push_back(make_check(
      "relative wearable usage weekend vs weekday (>1)", 1.1,
      r.weekend_relative_usage, 1.0, 2.5));
  // §4.2: activity is "evenly spread across days of the week" — the
  // busiest weekday attracts at most ~1.6x the quietest one's users.
  fig.checks.push_back(make_check(
      "day-of-week active-user spread (max/min, even)", 1.2,
      r.day_of_week_spread, 1.0, 1.8));
  Series dow;
  dow.name = "txn_share_by_day_of_week";
  for (int d = 0; d < 7; ++d) {
    dow.labels.push_back(
        util::weekday_name(static_cast<util::Weekday>(d)));
    dow.y.push_back(r.dow_txn_share[static_cast<std::size_t>(d)]);
  }
  fig.series.push_back(std::move(dow));
  return fig;
}

}  // namespace wearscope::core
