// Streaming (single-pass, bounded-memory) analyses.
//
// The real collection infrastructure cannot hold five months of a tier-1
// ISP's logs in memory; summary statistics such as Fig. 2's daily adoption
// counters are maintained online at the vantage points (paper §3.1).  This
// header provides the streaming counterpart of analyze_adoption(): feed it
// time-ordered records one at a time (e.g. straight from a
// trace::BinaryLogReader) and finalize at the end of the window.
//
// Memory: O(users) for the presence sets plus O(days) counters — never
// O(records).
#pragma once

#include <unordered_set>
#include <vector>

#include "core/analysis_adoption.h"
#include "core/device_id.h"
#include "trace/records.h"

namespace wearscope::core {

/// Mergeable summary of one StreamingAdoption instance.  When the record
/// stream is partitioned by user (every user's records land on exactly one
/// counter, as live::IngestRouter guarantees), tallies from the partitions
/// merge into the tally of the whole stream *exactly*: distinct-user sets
/// are disjoint across partitions, so all set cardinalities simply add.
struct AdoptionTally {
  int observation_days = 0;
  std::uint64_t consumed = 0;
  /// Per-day distinct users, with the in-flight day already folded in.
  std::vector<std::size_t> daily_counts;
  std::size_t ever_registered = 0;
  std::size_t ever_transacted = 0;
  std::size_t first_week = 0;
  std::size_t last_week = 0;
  /// |first_week ∩ last_week| (computable per user partition).
  std::size_t both_weeks = 0;

  /// Adds a user-disjoint partition's tally into this one.
  /// Throws util::ConfigError on mismatched observation windows.
  void merge(const AdoptionTally& other);

  /// Produces the AdoptionResult analyze_adoption() computes from an
  /// in-memory capture — identical arithmetic, shard-count independent.
  [[nodiscard]] AdoptionResult finalize() const;
};

/// Online Fig. 2 counters. Records may arrive in any order within a day,
/// but days must not interleave backwards by more than the out-of-order
/// tolerance of the feeding reader (our logs are fully time-sorted).
class StreamingAdoption {
 public:
  /// `devices` must outlive the counter. `observation_days` bounds the
  /// per-day vectors.
  StreamingAdoption(const DeviceClassifier& devices, int observation_days);

  /// Feeds one MME event (any device; non-wearable TACs are ignored).
  void on_mme(const trace::MmeRecord& record);

  /// Feeds one proxy transaction (any device; only wearable TACs count).
  void on_proxy(const trace::ProxyRecord& record);

  /// Produces the same AdoptionResult analyze_adoption() computes from an
  /// in-memory capture.
  [[nodiscard]] AdoptionResult finalize() const;

  /// Snapshots the counters into a mergeable tally (shard workers call
  /// this at snapshot barriers; the coordinator merges across shards).
  [[nodiscard]] AdoptionTally tally() const;

  /// Number of records consumed (both feeds).
  [[nodiscard]] std::uint64_t records_consumed() const noexcept {
    return consumed_;
  }

 private:
  const DeviceClassifier* devices_;
  int observation_days_;
  std::uint64_t consumed_ = 0;

  // Per-day distinct-user tracking with one rolling set: logs are
  // time-sorted, so once the day advances the previous day's set is frozen
  // into a plain count.
  int current_day_ = -1;
  std::unordered_set<trace::UserId> current_day_users_;
  std::vector<std::size_t> daily_counts_;

  std::unordered_set<trace::UserId> first_week_;
  std::unordered_set<trace::UserId> last_week_;
  std::unordered_set<trace::UserId> ever_registered_;
  std::unordered_set<trace::UserId> ever_transacted_;

  void roll_to(int day);
};

}  // namespace wearscope::core
