// Markdown rendering of a StudyReport: the paper-vs-measured tables of
// EXPERIMENTS.md, generated straight from a run so the document can never
// drift from the code.
#pragma once

#include <string>

#include "core/pipeline.h"

namespace wearscope::core {

/// Context lines placed at the top of the generated document.
struct MarkdownMeta {
  std::string title = "WearScope reproduction report";
  std::string preset;   ///< e.g. "standard".
  std::string seed;     ///< e.g. "42".
  std::string extra;    ///< Free-form paragraph (optional).
};

/// Renders the whole report: one section per figure with a
/// claim/paper/measured/band/verdict table, the figure notes, and a final
/// tally of passed checks.
std::string to_markdown(const StudyReport& report, const MarkdownMeta& meta);

}  // namespace wearscope::core
