// Protocol mix — an extension connecting to the authors' prior work
// ("Are Wearables Ready for HTTPS?", Kolamunna et al. 2017, cited in §2):
// how much wearable traffic still travels over plaintext HTTP, overall and
// per app category.  The proxy log distinguishes the two directly (§3.3:
// SNI for HTTPS, full URL for HTTP).
#pragma once

#include <array>
#include <vector>

#include "appdb/categories.h"
#include "core/context.h"
#include "core/report.h"

namespace wearscope::core {

/// HTTP/HTTPS split of one category.
struct CategoryProtocolMix {
  appdb::Category category = appdb::Category::kTools;
  double http_txn_share = 0.0;  ///< Fraction of the category's transactions.
  double http_data_share = 0.0; ///< Fraction of the category's bytes.
  double txns = 0.0;            ///< Total transactions (for weighting).
};

/// Structured results of the protocol analysis (wearable traffic only,
/// detailed window).
struct ProtocolResult {
  double https_txn_share = 0.0;   ///< Overall HTTPS transaction share.
  double https_data_share = 0.0;  ///< Overall HTTPS byte share.
  double http_txns = 0.0;
  double https_txns = 0.0;
  /// Per-category splits, ordered by descending plaintext share.
  std::vector<CategoryProtocolMix> by_category;
  /// Categories whose plaintext share exceeds twice the overall rate
  /// (the "laggards" a security follow-up would name).
  std::vector<appdb::Category> plaintext_laggards;
};

/// Runs the analysis over the detailed window.
ProtocolResult analyze_protocol(const AnalysisContext& ctx);

/// Renders the protocol-mix breakdown with its checks.
FigureData figure_protocol(const ProtocolResult& r);

}  // namespace wearscope::core
