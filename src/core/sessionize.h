// Usage sessionization (paper §5.1): "the number of internet transactions
// made by the app within a single usage (i.e., until when the two
// consecutive transactions are made at least one minute apart)".
//
// A usage therefore groups a user's consecutive same-app transactions whose
// inter-arrival gaps stay below the threshold (default 60 s).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "appdb/app_catalog.h"
#include "core/app_id.h"
#include "trace/records.h"
#include "util/sim_time.h"

namespace wearscope::core {

/// One reconstructed app usage of one user.
struct Usage {
  trace::UserId user_id = 0;
  appdb::AppId app = kUnknownApp;
  util::SimTime start = 0;
  util::SimTime end = 0;
  std::uint32_t transactions = 0;
  std::uint64_t bytes = 0;

  /// Usage duration in seconds.
  [[nodiscard]] util::SimTime duration_s() const noexcept {
    return end - start;
  }
};

/// Default sessionization gap from the paper's definition.
inline constexpr util::SimTime kDefaultUsageGapS = 60;

/// Groups one user's time-sorted records into usages.
///
/// `records` are the user's proxy records in timestamp order;
/// `apps` the per-record attribution (index-aligned, from
/// attribute_user_stream).  Transactions attributed to different apps open
/// separate concurrent usages; unknown-app transactions form their own
/// usages under kUnknownApp.
std::vector<Usage> sessionize_user(
    std::span<const trace::ProxyRecord* const> records,
    std::span<const EndpointClass> apps,
    util::SimTime gap_s = kDefaultUsageGapS);

}  // namespace wearscope::core
