#include "core/app_id.h"

#include <algorithm>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>

#include "util/strings.h"

// (registrable_domain lives in util/strings.h)

namespace wearscope::core {

namespace {

/// Third-party pool with heterogeneous lookup: suffix membership tests
/// probe with string_view, allocating nothing.
using DomainPool =
    std::unordered_set<std::string, util::StringHash, std::equal_to<>>;

DomainPool make_pool(std::span<const std::string_view> domains) {
  DomainPool out;
  out.reserve(domains.size());
  for (const std::string_view d : domains) out.insert(util::to_lower(d));
  return out;
}

const DomainPool& utilities_pool() {
  static const DomainPool pool = make_pool(appdb::utility_domains());
  return pool;
}
const DomainPool& advertising_pool() {
  static const DomainPool pool = make_pool(appdb::advertising_domains());
  return pool;
}
const DomainPool& analytics_pool() {
  static const DomainPool pool = make_pool(appdb::analytics_domains());
  return pool;
}

/// Calls `fn(suffix)` for every dot-suffix of `host_lower`
/// ("a.b.c" -> "a.b.c", "b.c", "c") until fn returns true.
template <typename Fn>
bool for_each_suffix(std::string_view host_lower, Fn&& fn) {
  std::string_view s = host_lower;
  for (;;) {
    if (fn(s)) return true;
    const auto dot = s.find('.');
    if (dot == std::string_view::npos) return false;
    s.remove_prefix(dot + 1);
  }
}

bool pool_matches(std::string_view host_lower, const DomainPool& pool) {
  return for_each_suffix(host_lower, [&](std::string_view s) {
    return pool.contains(s);
  });
}

/// Reusable lower-case scratch: classification runs once per proxy
/// transaction, so the buffer is thread-local rather than per-call — the
/// hot path allocates only while a host longer than any prior one grows
/// the capacity.
std::string& lower_scratch() {
  static thread_local std::string buf;
  return buf;
}

}  // namespace

AppSignatureTable::AppSignatureTable(const appdb::AppCatalog& catalog,
                                     double coverage) {
  app_names_.reserve(catalog.size());
  app_categories_.reserve(catalog.size());
  std::size_t rule_total = 0;
  for (const appdb::AppInfo& app : catalog.apps()) {
    if (app.in_signature_table) rule_total += app.domains.size();
  }
  const auto rule_budget = static_cast<std::size_t>(
      static_cast<double>(rule_total) * std::clamp(coverage, 0.0, 1.0));

  for (const appdb::AppInfo& app : catalog.apps()) {
    app_names_.push_back(app.name);
    app_categories_.push_back(app.category);
    if (!app.in_signature_table) continue;
    for (const std::string& domain : app.domains) {
      if (rules_.size() >= rule_budget) break;
      const std::string suffix = util::to_lower(domain);
      rules_.push_back(Rule{suffix, app.id});
      rule_index_.emplace(suffix, app.id);
      // Registrable-domain fallback (matches coarsened/anonymized hosts):
      // a domain shared by several apps is ambiguous and never matches.
      const std::string reg = util::registrable_domain(suffix);
      const auto [it, inserted] = registrable_index_.emplace(reg, app.id);
      if (!inserted && it->second != app.id) it->second = kUnknownApp;
    }
  }

  // Distinct mapped apps, precomputed so the accessor is O(1).
  std::vector<appdb::AppId> ids;
  ids.reserve(rules_.size());
  for (const Rule& r : rules_) ids.push_back(r.app);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  mapped_app_count_ = ids.size();
}

appdb::AppId AppSignatureTable::match_app_lower(
    std::string_view host_lower) const {
  appdb::AppId found = kUnknownApp;
  for_each_suffix(host_lower, [&](std::string_view s) {
    const auto it = rule_index_.find(s);
    if (it == rule_index_.end()) return false;
    found = it->second;
    return true;
  });
  if (found != kUnknownApp) return found;
  // Fallback for coarsened hosts (e.g. an anonymized trace where
  // "api.weather.com" became "weather.com"): match by registrable domain
  // when exactly one app owns it.
  const auto it =
      registrable_index_.find(util::registrable_domain_of_lower(host_lower));
  if (it != registrable_index_.end() && it->second != kUnknownApp) {
    return it->second;
  }
  return kUnknownApp;
}

std::optional<appdb::AppId> AppSignatureTable::match_app(
    std::string_view host) const {
  const std::string_view lower = util::to_lower_into(host, lower_scratch());
  const appdb::AppId found = match_app_lower(lower);
  if (found == kUnknownApp) return std::nullopt;
  return found;
}

EndpointClass AppSignatureTable::classify_host(std::string_view host) const {
  const std::string_view lower = util::to_lower_into(host, lower_scratch());
  if (const appdb::AppId app = match_app_lower(lower); app != kUnknownApp) {
    return EndpointClass{appdb::TransactionClass::kApplication, app};
  }
  if (pool_matches(lower, utilities_pool())) {
    return EndpointClass{appdb::TransactionClass::kUtilities, kUnknownApp};
  }
  if (pool_matches(lower, advertising_pool()) ||
      util::has_label_lower(lower, "ads") ||
      util::has_label_lower(lower, "adserver")) {
    return EndpointClass{appdb::TransactionClass::kAdvertising, kUnknownApp};
  }
  if (pool_matches(lower, analytics_pool()) ||
      util::has_label_lower(lower, "analytics") ||
      util::has_label_lower(lower, "metrics") ||
      util::has_label_lower(lower, "telemetry")) {
    return EndpointClass{appdb::TransactionClass::kAnalytics, kUnknownApp};
  }
  // Unmatched hosts are treated as first-party servers of unmapped apps.
  return EndpointClass{appdb::TransactionClass::kApplication, kUnknownApp};
}

std::string_view AppSignatureTable::app_name(appdb::AppId id) const {
  if (id == kUnknownApp || id >= app_names_.size()) return "Unknown";
  return app_names_[id];
}

std::optional<appdb::Category> AppSignatureTable::app_category(
    appdb::AppId id) const {
  if (id == kUnknownApp || id >= app_categories_.size()) return std::nullopt;
  return app_categories_[id];
}

EndpointClass HostClassCache::classify(std::string_view host) {
  const auto it = memo_.find(host);
  if (it != memo_.end()) {
    ++hits_;
    return it->second;
  }
  const EndpointClass cls = table_->classify_host(host);
  memo_.emplace(std::string(host), cls);
  return cls;
}

namespace {

/// Shared attribution pass, parameterized on the host classifier so the
/// cached and uncached entry points stay byte-identical in behavior.
template <typename ClassifyFn>
std::vector<EndpointClass> attribute_stream_impl(
    std::span<const trace::ProxyRecord* const> records,
    util::SimTime proximity_window_s, ClassifyFn&& classify) {
  std::vector<EndpointClass> out;
  out.reserve(records.size());
  for (const trace::ProxyRecord* r : records) {
    out.push_back(classify(r->host));
  }
  // Temporal-proximity attribution pass: third-party transactions inherit
  // the app of the nearest direct signature match within the window
  // (paper §3.3: "map a set of connections in the same timeframe with a
  // given app").
  std::vector<std::size_t> anchors;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out[i].app != kUnknownApp) anchors.push_back(i);
  }
  if (anchors.empty()) return out;
  std::size_t a = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out[i].app != kUnknownApp) continue;
    if (out[i].cls == appdb::TransactionClass::kApplication) continue;
    while (a + 1 < anchors.size() &&
           std::llabs(records[anchors[a + 1]]->timestamp -
                      records[i]->timestamp) <=
               std::llabs(records[anchors[a]]->timestamp -
                          records[i]->timestamp)) {
      ++a;
    }
    const util::SimTime gap = std::llabs(records[anchors[a]]->timestamp -
                                         records[i]->timestamp);
    if (gap <= proximity_window_s) out[i].app = out[anchors[a]].app;
  }
  return out;
}

}  // namespace

std::vector<EndpointClass> attribute_user_stream(
    const AppSignatureTable& table,
    std::span<const trace::ProxyRecord* const> records,
    util::SimTime proximity_window_s) {
  return attribute_stream_impl(
      records, proximity_window_s,
      [&table](const std::string& host) { return table.classify_host(host); });
}

std::vector<EndpointClass> attribute_user_stream(
    HostClassCache& cache,
    std::span<const trace::ProxyRecord* const> records,
    util::SimTime proximity_window_s) {
  return attribute_stream_impl(
      records, proximity_window_s,
      [&cache](const std::string& host) { return cache.classify(host); });
}

}  // namespace wearscope::core
