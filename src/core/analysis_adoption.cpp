#include "core/analysis_adoption.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "util/stats.h"

namespace wearscope::core {

AdoptionResult analyze_adoption_rows(const AnalysisContext& ctx) {
  AdoptionResult res;
  const int days = ctx.options().observation_days;

  // Distinct wearable users registered per day, from wearable-TAC MME rows.
  std::vector<std::unordered_set<trace::UserId>> daily(
      static_cast<std::size_t>(days));
  std::unordered_set<trace::UserId> first_week;
  std::unordered_set<trace::UserId> last_week;
  std::unordered_set<trace::UserId> ever;
  for (const trace::MmeRecord& r : ctx.store().mme) {
    if (!ctx.devices().is_wearable(r.tac)) continue;
    const int d = util::day_of(r.timestamp);
    if (d < 0 || d >= days) continue;
    daily[static_cast<std::size_t>(d)].insert(r.user_id);
    ever.insert(r.user_id);
    if (d < 7) first_week.insert(r.user_id);
    if (d >= days - 7) last_week.insert(r.user_id);
  }

  std::unordered_set<trace::UserId> transacted;
  for (const UserView* u : ctx.wearable_users()) {
    if (!u->wearable_txns.empty()) transacted.insert(u->user_id);
  }

  res.ever_registered = ever.size();
  res.ever_transacted = transacted.size();
  res.ever_transacting_fraction =
      ever.empty() ? 0.0
                   : static_cast<double>(transacted.size()) /
                         static_cast<double>(ever.size());

  const double last_count =
      daily.empty() ? 0.0 : static_cast<double>(daily.back().size());
  res.daily_registered_norm.reserve(daily.size());
  for (const auto& day_users : daily) {
    res.daily_registered_norm.push_back(
        last_count > 0.0 ? static_cast<double>(day_users.size()) / last_count
                         : 0.0);
  }

  // Growth: first-week average vs last-week average of the daily counts.
  util::OnlineStats first_avg;
  util::OnlineStats last_avg;
  for (int d = 0; d < 7 && d < days; ++d)
    first_avg.add(static_cast<double>(daily[static_cast<std::size_t>(d)].size()));
  for (int d = std::max(0, days - 7); d < days; ++d)
    last_avg.add(static_cast<double>(daily[static_cast<std::size_t>(d)].size()));
  if (first_avg.mean() > 0.0) {
    res.total_growth = last_avg.mean() / first_avg.mean() - 1.0;
    res.monthly_growth = res.total_growth / (static_cast<double>(days) / 30.4);
  }

  // Fig. 2b shares.  The intersection count is a pure set cardinality —
  // order-independent, so hash-order iteration is sound here.
  std::size_t both = 0;
  // wearscope-lint: allow(unordered-emit)
  for (const trace::UserId u : first_week)
    if (last_week.contains(u)) ++both;
  const std::size_t uni = first_week.size() + last_week.size() - both;
  if (uni > 0) {
    res.still_active_share = static_cast<double>(both) / static_cast<double>(uni);
    res.gone_share =
        static_cast<double>(first_week.size() - both) / static_cast<double>(uni);
    res.new_share =
        static_cast<double>(last_week.size() - both) / static_cast<double>(uni);
  }
  if (!first_week.empty()) {
    res.churned_of_initial = static_cast<double>(first_week.size() - both) /
                             static_cast<double>(first_week.size());
  }
  return res;
}

AdoptionResult analyze_adoption(const AnalysisContext& ctx) {
  AdoptionResult res;
  const int days = ctx.options().observation_days;

  // The MME log is globally time-sorted, so each day is one contiguous run
  // of rows whose end is one binary search over the timestamp column — no
  // per-row day arithmetic.  Wearable classification is one flag per
  // TAC-dictionary entry.  Distinct-user accounting is a dense last-seen-day
  // stamp per user when the id space is compact (the generator hands out
  // sequential ids); otherwise it falls back to per-day sort+unique.  Both
  // paths compute the same exact cardinalities, so reports stay bitwise
  // identical to the row kernel.
  const trace::MmeColumns& mc = ctx.store().mme_columns();
  std::vector<std::uint8_t> wearable(mc.tacs.size());
  for (std::size_t k = 0; k < mc.tacs.size(); ++k)
    wearable[k] = ctx.devices().is_wearable(mc.tacs[k]) ? 1 : 0;

  const std::size_t n = mc.size();
  std::vector<std::size_t> daily_count(static_cast<std::size_t>(days), 0);
  std::size_t ever_count = 0;
  std::size_t fw_count = 0;
  std::size_t lw_count = 0;
  std::size_t both = 0;

  trace::UserId umin = ~trace::UserId{0};
  trace::UserId umax = 0;
  for (const trace::UserId u : mc.user_id) {
    umin = std::min(umin, u);
    umax = std::max(umax, u);
  }
  const bool dense = n > 0 && umax - umin <= n + 1024;

  const auto day_end = [&](std::size_t i, int d) {
    const auto it = std::lower_bound(
        mc.timestamp.begin() + static_cast<std::ptrdiff_t>(i),
        mc.timestamp.end(), util::day_start(d + 1));
    return static_cast<std::size_t>(it - mc.timestamp.begin());
  };

  if (dense) {
    // One int32 stamp + one membership-bit byte per user id in the range:
    // a day's distinct count increments exactly once per (user, day), and
    // the ever/first-week/last-week cardinalities are bit tallies at the
    // end.  No hashing, no sorting.
    const std::size_t range = static_cast<std::size_t>(umax - umin) + 1;
    std::vector<std::int32_t> last_day(range, -1);
    std::vector<std::uint8_t> flags(range, 0);
    std::size_t i = 0;
    while (i < n) {
      const int d = util::day_of(mc.timestamp[i]);
      const std::size_t j = day_end(i, d);
      if (d >= 0 && d < days) {
        const auto day_bits = static_cast<std::uint8_t>(
            1 | (d < 7 ? 2 : 0) | (d >= days - 7 ? 4 : 0));
        std::size_t today = 0;
        for (std::size_t k = i; k < j; ++k) {
          if (wearable[mc.tac_id[k]] == 0) continue;
          const auto u = static_cast<std::size_t>(mc.user_id[k] - umin);
          if (last_day[u] == d) continue;
          last_day[u] = d;
          flags[u] |= day_bits;
          ++today;
        }
        daily_count[static_cast<std::size_t>(d)] = today;
      }
      i = j;
    }
    for (const std::uint8_t f : flags) {
      ever_count += f & 1;
      fw_count += (f >> 1) & 1;
      lw_count += (f >> 2) & 1;
      both += static_cast<std::size_t>((f & 6) == 6);
    }
  } else {
    std::vector<trace::UserId> ever;
    std::vector<trace::UserId> first_week;
    std::vector<trace::UserId> last_week;
    std::vector<trace::UserId> seg;
    std::size_t i = 0;
    while (i < n) {
      const int d = util::day_of(mc.timestamp[i]);
      const std::size_t j = day_end(i, d);
      if (d >= 0 && d < days) {
        seg.clear();
        for (std::size_t k = i; k < j; ++k) {
          if (wearable[mc.tac_id[k]] != 0) seg.push_back(mc.user_id[k]);
        }
        if (!seg.empty()) {
          std::sort(seg.begin(), seg.end());
          seg.erase(std::unique(seg.begin(), seg.end()), seg.end());
          daily_count[static_cast<std::size_t>(d)] = seg.size();
          ever.insert(ever.end(), seg.begin(), seg.end());
          if (d < 7)
            first_week.insert(first_week.end(), seg.begin(), seg.end());
          if (d >= days - 7)
            last_week.insert(last_week.end(), seg.begin(), seg.end());
        }
      }
      i = j;
    }
    const auto sort_unique = [](std::vector<trace::UserId>& v) {
      std::sort(v.begin(), v.end());
      v.erase(std::unique(v.begin(), v.end()), v.end());
    };
    sort_unique(ever);
    sort_unique(first_week);
    sort_unique(last_week);
    ever_count = ever.size();
    fw_count = first_week.size();
    lw_count = last_week.size();
    // Linear intersection count over the two sorted vectors.
    auto a = first_week.begin();
    auto b = last_week.begin();
    while (a != first_week.end() && b != last_week.end()) {
      if (*a < *b) {
        ++a;
      } else if (*b < *a) {
        ++b;
      } else {
        ++both;
        ++a;
        ++b;
      }
    }
  }

  // wearable_users() holds each user once, so the transacted "set" is a
  // plain count.
  std::size_t transacted = 0;
  for (const UserView* u : ctx.wearable_users())
    if (!u->wearable_txns.empty()) ++transacted;

  res.ever_registered = ever_count;
  res.ever_transacted = transacted;
  res.ever_transacting_fraction =
      ever_count == 0 ? 0.0
                      : static_cast<double>(transacted) /
                            static_cast<double>(ever_count);

  const double last_count =
      daily_count.empty() ? 0.0
                          : static_cast<double>(daily_count.back());
  res.daily_registered_norm.reserve(daily_count.size());
  for (const std::size_t c : daily_count) {
    res.daily_registered_norm.push_back(
        last_count > 0.0 ? static_cast<double>(c) / last_count : 0.0);
  }

  // Growth: first-week average vs last-week average of the daily counts.
  util::OnlineStats first_avg;
  util::OnlineStats last_avg;
  for (int d = 0; d < 7 && d < days; ++d)
    first_avg.add(
        static_cast<double>(daily_count[static_cast<std::size_t>(d)]));
  for (int d = std::max(0, days - 7); d < days; ++d)
    last_avg.add(
        static_cast<double>(daily_count[static_cast<std::size_t>(d)]));
  if (first_avg.mean() > 0.0) {
    res.total_growth = last_avg.mean() / first_avg.mean() - 1.0;
    res.monthly_growth = res.total_growth / (static_cast<double>(days) / 30.4);
  }

  // Fig. 2b shares, from the exact cardinalities tallied above.
  const std::size_t uni = fw_count + lw_count - both;
  if (uni > 0) {
    res.still_active_share = static_cast<double>(both) / static_cast<double>(uni);
    res.gone_share =
        static_cast<double>(fw_count - both) / static_cast<double>(uni);
    res.new_share =
        static_cast<double>(lw_count - both) / static_cast<double>(uni);
  }
  if (fw_count > 0) {
    res.churned_of_initial = static_cast<double>(fw_count - both) /
                             static_cast<double>(fw_count);
  }
  return res;
}

FigureData figure2a(const AdoptionResult& r) {
  FigureData fig;
  fig.id = "fig2a";
  fig.title = "Daily SIM-enabled wearable users registered (normalized)";
  Series s;
  s.name = "registered_users_norm";
  for (std::size_t d = 0; d < r.daily_registered_norm.size(); ++d) {
    s.x.push_back(static_cast<double>(d));
    s.y.push_back(r.daily_registered_norm[d]);
  }
  fig.series.push_back(std::move(s));
  fig.checks.push_back(make_check("total user growth over 5 months", 0.09,
                                  r.total_growth, 0.05, 0.14));
  fig.checks.push_back(make_check("monthly growth rate", 0.015,
                                  r.monthly_growth, 0.008, 0.028));
  fig.checks.push_back(make_check(
      "fraction of users ever transmitting data", 0.34,
      r.ever_transacting_fraction, 0.28, 0.40));
  fig.notes.push_back(
      "daily counts are distinct users with wearable-TAC MME registrations");
  return fig;
}

FigureData figure2b(const AdoptionResult& r) {
  FigureData fig;
  fig.id = "fig2b";
  fig.title = "First week vs last week wearable users";
  Series s;
  s.name = "user_share_of_union";
  s.labels = {"still-active", "gone", "new"};
  s.y = {r.still_active_share, r.gone_share, r.new_share};
  fig.series.push_back(std::move(s));
  fig.checks.push_back(make_check("users active in both weeks (share)", 0.77,
                                  r.still_active_share, 0.68, 0.88));
  fig.checks.push_back(make_check("initial users gone by last week", 0.07,
                                  r.churned_of_initial, 0.03, 0.12));
  return fig;
}

}  // namespace wearscope::core
