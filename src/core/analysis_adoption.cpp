#include "core/analysis_adoption.h"

#include <unordered_set>

#include "util/stats.h"

namespace wearscope::core {

AdoptionResult analyze_adoption(const AnalysisContext& ctx) {
  AdoptionResult res;
  const int days = ctx.options().observation_days;

  // Distinct wearable users registered per day, from wearable-TAC MME rows.
  std::vector<std::unordered_set<trace::UserId>> daily(
      static_cast<std::size_t>(days));
  std::unordered_set<trace::UserId> first_week;
  std::unordered_set<trace::UserId> last_week;
  std::unordered_set<trace::UserId> ever;
  for (const trace::MmeRecord& r : ctx.store().mme) {
    if (!ctx.devices().is_wearable(r.tac)) continue;
    const int d = util::day_of(r.timestamp);
    if (d < 0 || d >= days) continue;
    daily[static_cast<std::size_t>(d)].insert(r.user_id);
    ever.insert(r.user_id);
    if (d < 7) first_week.insert(r.user_id);
    if (d >= days - 7) last_week.insert(r.user_id);
  }

  std::unordered_set<trace::UserId> transacted;
  for (const UserView* u : ctx.wearable_users()) {
    if (!u->wearable_txns.empty()) transacted.insert(u->user_id);
  }

  res.ever_registered = ever.size();
  res.ever_transacted = transacted.size();
  res.ever_transacting_fraction =
      ever.empty() ? 0.0
                   : static_cast<double>(transacted.size()) /
                         static_cast<double>(ever.size());

  const double last_count =
      daily.empty() ? 0.0 : static_cast<double>(daily.back().size());
  res.daily_registered_norm.reserve(daily.size());
  for (const auto& day_users : daily) {
    res.daily_registered_norm.push_back(
        last_count > 0.0 ? static_cast<double>(day_users.size()) / last_count
                         : 0.0);
  }

  // Growth: first-week average vs last-week average of the daily counts.
  util::OnlineStats first_avg;
  util::OnlineStats last_avg;
  for (int d = 0; d < 7 && d < days; ++d)
    first_avg.add(static_cast<double>(daily[static_cast<std::size_t>(d)].size()));
  for (int d = std::max(0, days - 7); d < days; ++d)
    last_avg.add(static_cast<double>(daily[static_cast<std::size_t>(d)].size()));
  if (first_avg.mean() > 0.0) {
    res.total_growth = last_avg.mean() / first_avg.mean() - 1.0;
    res.monthly_growth = res.total_growth / (static_cast<double>(days) / 30.4);
  }

  // Fig. 2b shares.  The intersection count is a pure set cardinality —
  // order-independent, so hash-order iteration is sound here.
  std::size_t both = 0;
  // wearscope-lint: allow(unordered-emit)
  for (const trace::UserId u : first_week)
    if (last_week.contains(u)) ++both;
  const std::size_t uni = first_week.size() + last_week.size() - both;
  if (uni > 0) {
    res.still_active_share = static_cast<double>(both) / static_cast<double>(uni);
    res.gone_share =
        static_cast<double>(first_week.size() - both) / static_cast<double>(uni);
    res.new_share =
        static_cast<double>(last_week.size() - both) / static_cast<double>(uni);
  }
  if (!first_week.empty()) {
    res.churned_of_initial = static_cast<double>(first_week.size() - both) /
                             static_cast<double>(first_week.size());
  }
  return res;
}

FigureData figure2a(const AdoptionResult& r) {
  FigureData fig;
  fig.id = "fig2a";
  fig.title = "Daily SIM-enabled wearable users registered (normalized)";
  Series s;
  s.name = "registered_users_norm";
  for (std::size_t d = 0; d < r.daily_registered_norm.size(); ++d) {
    s.x.push_back(static_cast<double>(d));
    s.y.push_back(r.daily_registered_norm[d]);
  }
  fig.series.push_back(std::move(s));
  fig.checks.push_back(make_check("total user growth over 5 months", 0.09,
                                  r.total_growth, 0.05, 0.14));
  fig.checks.push_back(make_check("monthly growth rate", 0.015,
                                  r.monthly_growth, 0.008, 0.028));
  fig.checks.push_back(make_check(
      "fraction of users ever transmitting data", 0.34,
      r.ever_transacting_fraction, 0.28, 0.40));
  fig.notes.push_back(
      "daily counts are distinct users with wearable-TAC MME registrations");
  return fig;
}

FigureData figure2b(const AdoptionResult& r) {
  FigureData fig;
  fig.id = "fig2b";
  fig.title = "First week vs last week wearable users";
  Series s;
  s.name = "user_share_of_union";
  s.labels = {"still-active", "gone", "new"};
  s.y = {r.still_active_share, r.gone_share, r.new_share};
  fig.series.push_back(std::move(s));
  fig.checks.push_back(make_check("users active in both weeks (share)", 0.77,
                                  r.still_active_share, 0.68, 0.88));
  fig.checks.push_back(make_check("initial users gone by last week", 0.07,
                                  r.churned_of_initial, 0.03, 0.12));
  return fig;
}

}  // namespace wearscope::core
