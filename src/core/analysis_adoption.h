// Fig. 2 — user adoption of SIM-enabled wearables over the five-month
// summary window: daily registered-user counts (normalized, Fig. 2a) and
// first-week vs last-week presence (Fig. 2b), plus the "only 34% transmit
// any data" headline.
#pragma once

#include <vector>

#include "core/context.h"
#include "core/report.h"

namespace wearscope::core {

/// Structured results of the adoption analysis.
struct AdoptionResult {
  /// Per-day distinct wearable users registered with the MME, normalized
  /// by the final day's count (Fig. 2a's y-axis).
  std::vector<double> daily_registered_norm;
  /// Total relative growth across the window ((last wk - first wk)/first).
  double total_growth = 0.0;
  /// Monthly growth rate (total over window months).
  double monthly_growth = 0.0;
  /// Fraction of ever-registered users with >= 1 wearable transaction.
  double ever_transacting_fraction = 0.0;
  /// Fig. 2b shares relative to the first-week/last-week user union.
  double still_active_share = 0.0;
  double gone_share = 0.0;
  double new_share = 0.0;
  /// Fraction of first-week users missing in the last week ("7%").
  double churned_of_initial = 0.0;
  /// Raw counts backing the shares.
  std::size_t ever_registered = 0;
  std::size_t ever_transacted = 0;
};

/// Runs the analysis over the full observation window (columnar kernel:
/// day-segmented sort+unique over the MME columns).
AdoptionResult analyze_adoption(const AnalysisContext& ctx);

/// Row-layout reference implementation, bitwise-identical to
/// analyze_adoption; kept for the differential tests and BENCH_columnar.
AdoptionResult analyze_adoption_rows(const AnalysisContext& ctx);

/// Renders Fig. 2(a) with its checks.
FigureData figure2a(const AdoptionResult& r);
/// Renders Fig. 2(b) with its checks.
FigureData figure2b(const AdoptionResult& r);

}  // namespace wearscope::core
