#include "core/pipeline.h"

#include <functional>
#include <stdexcept>

#include "par/task_pool.h"

namespace wearscope::core {

Pipeline::Pipeline(const trace::TraceStore& store, AnalysisOptions options)
    : ctx_(store, options) {}

StudyReport Pipeline::run() const {
  StudyReport rep;
  // The analyses are independent reads of the (settled) context; each task
  // writes exactly one StudyReport field, so any execution order yields the
  // same report.  Figures are then rendered sequentially in the canonical
  // order below.
  par::TaskPool pool(static_cast<std::size_t>(ctx_.options().threads));
  pool.run({
      [&] { rep.adoption = analyze_adoption(ctx_); },
      [&] { rep.diurnal = analyze_diurnal(ctx_); },
      [&] { rep.activity = analyze_activity(ctx_); },
      [&] { rep.comparison = analyze_comparison(ctx_); },
      [&] { rep.mobility = analyze_mobility(ctx_); },
      [&] { rep.apps = analyze_apps(ctx_); },
      [&] { rep.categories = analyze_categories(ctx_); },
      [&] { rep.usage = analyze_usage(ctx_); },
      [&] { rep.thirdparty = analyze_thirdparty(ctx_); },
      [&] { rep.throughdevice = analyze_throughdevice(ctx_); },
      [&] { rep.cohorts = analyze_cohorts(ctx_); },
      [&] { rep.retention = analyze_retention(ctx_); },
      [&] { rep.protocol = analyze_protocol(ctx_); },
      [&] { rep.geography = analyze_geography(ctx_); },
  });

  rep.figures.push_back(figure2a(rep.adoption));
  rep.figures.push_back(figure2b(rep.adoption));
  rep.figures.push_back(figure3a(rep.diurnal));
  rep.figures.push_back(figure3b(rep.activity));
  rep.figures.push_back(figure3c(rep.activity));
  rep.figures.push_back(figure3d(rep.activity));
  rep.figures.push_back(figure4a(rep.comparison));
  rep.figures.push_back(figure4b(rep.comparison));
  rep.figures.push_back(figure4c(rep.mobility));
  rep.figures.push_back(figure4d(rep.mobility));
  rep.figures.push_back(figure5a(rep.apps));
  rep.figures.push_back(figure5b(rep.apps));
  rep.figures.push_back(figure6(rep.categories));
  rep.figures.push_back(figure7(rep.usage));
  rep.figures.push_back(figure8(rep.thirdparty));
  rep.figures.push_back(figure_sec6(rep.throughdevice));
  rep.figures.push_back(figure_cohorts(rep.cohorts));
  rep.figures.push_back(figure_retention(rep.retention));
  rep.figures.push_back(figure_protocol(rep.protocol));
  rep.figures.push_back(figure_geography(rep.geography));
  return rep;
}

const FigureData& StudyReport::figure(std::string_view id) const {
  const auto rebuild = [this] {
    figure_index_.clear();
    figure_index_.reserve(figures.size());
    for (std::size_t i = 0; i < figures.size(); ++i) {
      figure_index_.emplace(figures[i].id, i);
    }
  };
  if (figure_index_.size() != figures.size()) rebuild();
  auto it = figure_index_.find(id);
  // Same-size mutation (an id edited in place) leaves a stale entry; the
  // id check below catches it and forces one rebuild.
  if (it != figure_index_.end() && figures[it->second].id != id) {
    rebuild();
    it = figure_index_.find(id);
  }
  if (it == figure_index_.end() || figures[it->second].id != id) {
    throw std::out_of_range("unknown figure id: " + std::string(id));
  }
  return figures[it->second];
}

std::string StudyReport::to_text() const {
  std::string out;
  for (const FigureData& f : figures) {
    out += f.to_text();
    out += '\n';
  }
  if (quarantine.any()) {
    out += trace::to_text(quarantine);
    out += '\n';
  }
  return out;
}

std::size_t StudyReport::failed_checks() const noexcept {
  std::size_t failed = 0;
  for (const FigureData& f : figures) {
    for (const Check& c : f.checks) {
      if (!c.pass()) ++failed;
    }
  }
  return failed;
}

}  // namespace wearscope::core
