#include "core/sessionize.h"

#include <algorithm>
#include <unordered_map>

#include "util/error.h"

namespace wearscope::core {

std::vector<Usage> sessionize_user(
    std::span<const trace::ProxyRecord* const> records,
    std::span<const EndpointClass> apps, util::SimTime gap_s) {
  util::require(records.size() == apps.size(),
                "sessionize_user: records/apps size mismatch");
  std::vector<Usage> closed;
  // One open usage per app (usages of different apps may interleave).
  std::unordered_map<appdb::AppId, Usage> open;

  for (std::size_t i = 0; i < records.size(); ++i) {
    const trace::ProxyRecord& r = *records[i];
    const appdb::AppId app = apps[i].app;
    auto it = open.find(app);
    if (it != open.end() && r.timestamp - it->second.end > gap_s) {
      closed.push_back(it->second);
      open.erase(it);
      it = open.end();
    }
    if (it == open.end()) {
      Usage u;
      u.user_id = r.user_id;
      u.app = app;
      u.start = r.timestamp;
      u.end = r.timestamp;
      it = open.emplace(app, u).first;
    }
    Usage& u = it->second;
    u.end = std::max(u.end, r.timestamp);
    u.transactions += 1;
    u.bytes += r.bytes_total();
  }
  for (auto& [app, usage] : open) closed.push_back(usage);
  std::sort(closed.begin(), closed.end(),
            [](const Usage& a, const Usage& b) { return a.start < b.start; });
  return closed;
}

}  // namespace wearscope::core
