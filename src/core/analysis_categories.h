// Fig. 6 — daily popularity of Google-Play app categories (§5.1): share of
// associated users, frequency of usage, transactions and data for each of
// the 15 categories.
#pragma once

#include <array>
#include <vector>

#include "appdb/categories.h"
#include "core/context.h"
#include "core/report.h"

namespace wearscope::core {

/// Aggregates of one category (shares are % of the daily total).
struct CategoryStats {
  appdb::Category category = appdb::Category::kTools;
  double user_share_pct = 0.0;
  double usage_share_pct = 0.0;
  double txn_share_pct = 0.0;
  double data_share_pct = 0.0;
};

/// Structured results of the category analysis.
struct CategoryResult {
  /// One entry per category, sorted by descending user share.
  std::vector<CategoryStats> by_users;
  /// Rank position of each category in the user ranking (enum-indexed).
  std::array<std::size_t, appdb::kCategoryCount> user_rank{};
};

/// Runs the analysis over the detailed window.
CategoryResult analyze_categories(const AnalysisContext& ctx);

/// Renders Fig. 6(a-d) with its checks.
FigureData figure6(const CategoryResult& r);

}  // namespace wearscope::core
