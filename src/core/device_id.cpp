#include "core/device_id.h"

#include <array>

#include "util/strings.h"

namespace wearscope::core {

namespace {

/// The analyst-prepared list of SIM-enabled wearable models sold in the
/// country.  Deliberately written out by hand (not derived from appdb's
/// generator catalog): this mirrors how the authors compiled their list
/// from operator/vendor market data, and keeps the analysis honest.
constexpr std::array<WearableModelEntry, 7> kCuratedWearables = {{
    {"Samsung", "Gear S2 classic 3G"},
    {"Samsung", "Gear S3 frontier LTE"},
    {"Samsung", "Gear S 750"},
    {"LG", "Watch Urbane 2nd Edition LTE"},
    {"LG", "Watch Sport"},
    {"Huawei", "Watch 2 Pro LTE"},
    // Listed for completeness: not yet carried by this operator, so it
    // never appears in the DeviceDB (the Apple Watch 3 case of §3.2).
    {"Apple", "Watch Series 3 Cellular"},
}};

}  // namespace

std::span<const WearableModelEntry> curated_wearable_models() {
  return kCuratedWearables;
}

DeviceClassifier::DeviceClassifier(
    const std::vector<trace::DeviceRecord>& devices,
    std::span<const WearableModelEntry> models) {
  for (const trace::DeviceRecord& row : devices) {
    known_tacs_.insert(row.tac);
    for (const WearableModelEntry& entry : models) {
      if (util::to_lower(row.manufacturer) ==
              util::to_lower(entry.manufacturer) &&
          util::to_lower(row.model) == util::to_lower(entry.model)) {
        wearable_tacs_.insert(row.tac);
        break;
      }
    }
  }
}

DeviceClassifier DeviceClassifier::from_manufacturers(
    const std::vector<trace::DeviceRecord>& devices,
    std::span<const std::string_view> manufacturers) {
  DeviceClassifier c(devices, {});
  for (const trace::DeviceRecord& row : devices) {
    for (const std::string_view m : manufacturers) {
      if (util::to_lower(row.manufacturer) == util::to_lower(m)) {
        c.wearable_tacs_.insert(row.tac);
        break;
      }
    }
  }
  return c;
}

DeviceKind DeviceClassifier::classify(trace::Tac tac) const {
  if (wearable_tacs_.contains(tac)) return DeviceKind::kSimWearable;
  if (known_tacs_.contains(tac)) return DeviceKind::kOther;
  return DeviceKind::kUnknown;
}

}  // namespace wearscope::core
