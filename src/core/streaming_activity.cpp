#include "core/streaming_activity.h"

#include <algorithm>
#include <limits>

#include "util/error.h"
#include "util/sim_time.h"

namespace wearscope::core {

StreamingActivity::StreamingActivity(const DeviceClassifier& devices,
                                     int observation_days,
                                     int detailed_start_day)
    : devices_(&devices) {
  util::require(observation_days > 0 && detailed_start_day >= 0 &&
                    detailed_start_day < observation_days,
                "StreamingActivity: bad observation window");
  tally_.observation_days = observation_days;
  tally_.detailed_start_day = detailed_start_day;
  detailed_start_ = util::day_start(detailed_start_day);
}

void StreamingActivity::on_proxy(const trace::ProxyRecord& record,
                                 std::uint64_t seq) {
  // Every proxy record slots its user, exactly like the batch context —
  // the iteration order of finalize() depends on it.
  tally_.first_seen.try_emplace(record.user_id, seq);
  if (!devices_->is_wearable(record.tac)) return;
  if (record.timestamp < detailed_start_) return;
  const int day = util::day_of(record.timestamp);
  const int hour = util::hour_of(record.timestamp);
  ActivityTally::UserActivity& u = tally_.users[record.user_id];
  u.day_hours[day].insert(hour);
  u.hour_txns[day * 24 + hour] += 1.0;
  u.hour_bytes[day * 24 + hour] += static_cast<double>(record.bytes_total());
  tally_.txn_sizes.push_back(static_cast<double>(record.bytes_total()));
}

void ActivityTally::merge(ActivityTally other) {
  if (users.empty() && first_seen.empty() && txn_sizes.empty() &&
      observation_days == 0) {
    *this = std::move(other);
    return;
  }
  util::require(other.observation_days == observation_days &&
                    other.detailed_start_day == detailed_start_day,
                "ActivityTally::merge: mismatched observation windows");
  for (auto& [id, activity] : other.users) {
    const bool inserted = users.emplace(id, std::move(activity)).second;
    util::require(inserted,
                  "ActivityTally::merge: user present in two partitions "
                  "(shard-by-user invariant broken)");
  }
  for (const auto& [id, seq] : other.first_seen) {
    const bool inserted = first_seen.emplace(id, seq).second;
    util::require(inserted,
                  "ActivityTally::merge: user present in two partitions "
                  "(shard-by-user invariant broken)");
  }
  txn_sizes.insert(txn_sizes.end(), other.txn_sizes.begin(),
                   other.txn_sizes.end());
}

ActivityResult ActivityTally::finalize() const {
  // Mirrors analyze_activity() line for line, including its user iteration
  // order: the batch walks users by first appearance in the proxy log, and
  // binned_relation's tie-breaking makes the Fig. 3d scalars depend on
  // that order, so we replay it from the first_seen stamps (user id breaks
  // the never-occurring tie, keeping the order total either way).
  ActivityResult res;
  const int weeks = (observation_days - detailed_start_day) / 7;

  std::vector<double> days_per_week;
  std::vector<double> hours_per_day;
  std::vector<double> hourly_txns;
  std::vector<double> hourly_bytes;
  std::vector<double> rel_hours;
  std::vector<double> rel_txns;

  std::vector<trace::UserId> ids;
  ids.reserve(users.size());
  for (const auto& [id, activity] : users) ids.push_back(id);
  const auto order_of = [&](trace::UserId id) {
    const auto it = first_seen.find(id);
    return it != first_seen.end() ? it->second
                                  : std::numeric_limits<std::uint64_t>::max();
  };
  std::sort(ids.begin(), ids.end(), [&](trace::UserId a, trace::UserId b) {
    const std::uint64_t oa = order_of(a);
    const std::uint64_t ob = order_of(b);
    return oa != ob ? oa < ob : a < b;
  });

  for (const trace::UserId id : ids) {
    const UserActivity& u = users.at(id);
    if (u.day_hours.empty()) continue;

    days_per_week.push_back(static_cast<double>(u.day_hours.size()) /
                            std::max(1, weeks));
    double hour_sum = 0.0;
    for (const auto& [day, hours] : u.day_hours)
      hour_sum += static_cast<double>(hours.size());
    const double mean_hours =
        hour_sum / static_cast<double>(u.day_hours.size());
    hours_per_day.push_back(mean_hours);

    // Emit per-slot values in slot order, not hash order — the same
    // canonicalization analyze_activity() applies, which keeps the two
    // pipelines bitwise-identical for any bucket layout.
    std::vector<int> slots;
    slots.reserve(u.hour_txns.size());
    for (const auto& [slot, n] : u.hour_txns) slots.push_back(slot);
    std::sort(slots.begin(), slots.end());
    double txn_sum = 0.0;
    for (const int slot : slots) {
      const double n = u.hour_txns.at(slot);
      hourly_txns.push_back(n);
      txn_sum += n;
    }
    for (const int slot : slots) hourly_bytes.push_back(u.hour_bytes.at(slot));

    rel_hours.push_back(mean_hours);
    rel_txns.push_back(txn_sum / std::max(1.0, hour_sum));
  }

  res.active_days_per_week = util::Ecdf(std::move(days_per_week));
  res.active_hours_per_day = util::Ecdf(hours_per_day);
  res.mean_active_days = res.active_days_per_week.mean();
  res.mean_active_hours = res.active_hours_per_day.mean();
  if (!hours_per_day.empty()) {
    res.frac_over_10h = 1.0 - res.active_hours_per_day.at(10.0);
    res.frac_under_5h = res.active_hours_per_day.at(5.0 - 1e-9);
  }

  res.txn_size_bytes = util::Ecdf(txn_sizes);
  res.hourly_txns_per_user = util::Ecdf(std::move(hourly_txns));
  res.hourly_bytes_per_user = util::Ecdf(std::move(hourly_bytes));
  res.mean_txn_bytes = res.txn_size_bytes.mean();
  res.median_txn_bytes = res.txn_size_bytes.quantile(0.5);
  res.frac_txn_under_10kb = res.txn_size_bytes.at(10'000.0);

  res.txns_vs_hours = util::binned_relation(rel_hours, rel_txns, 10);
  res.correlation = util::pearson(rel_hours, rel_txns);
  res.binned_trend_corr = util::pearson(res.txns_vs_hours.x_centers,
                                        res.txns_vs_hours.y_means);
  return res;
}

}  // namespace wearscope::core
