// Fig. 3(a) — macroscopic hourly usage of SIM-enabled wearables over the
// detailed window: average share of active users, data and transactions per
// hour of day, split weekday vs weekend; plus the "35% of weekly actives
// are active on a given day" statistic and the weekend-share comparison
// against the remaining customers (§4.2).
#pragma once

#include <array>

#include "core/context.h"
#include "core/report.h"

namespace wearscope::core {

/// Hour-of-day profile of one metric (normalized to the weekly total).
using HourProfile = std::array<double, 24>;

/// Structured results of the diurnal analysis.
struct DiurnalResult {
  HourProfile users_weekday{};
  HourProfile users_weekend{};
  HourProfile data_weekday{};
  HourProfile data_weekend{};
  HourProfile txns_weekday{};
  HourProfile txns_weekend{};
  /// Mean (distinct active users per day) / (distinct active per week).
  double daily_active_fraction = 0.0;
  /// Weekday-morning-commute (6-9 am) user share divided by the weekend's.
  double commute_bump_ratio = 0.0;
  /// Wearable share of total traffic on weekends divided by weekdays
  /// (> 1: wearables relatively busier on weekends, §4.2).
  double weekend_relative_usage = 0.0;
  /// Max/min ratio of active wearable user-days across the seven days of
  /// the week (§4.2: activity is "evenly spread across days"); user-days
  /// rather than raw transactions so one hyper-active user cannot skew a
  /// weekday.
  double day_of_week_spread = 0.0;
  /// Per-day-of-week transaction totals (Mon..Sun), normalized to shares.
  std::array<double, 7> dow_txn_share{};
};

/// Runs the analysis over the detailed window (columnar kernel: per-user
/// monotone slot/day/week dedup instead of global hash sets).
DiurnalResult analyze_diurnal(const AnalysisContext& ctx);

/// Row-layout reference implementation, bitwise-identical to
/// analyze_diurnal; kept for the differential tests and BENCH_columnar.
DiurnalResult analyze_diurnal_rows(const AnalysisContext& ctx);

/// Renders Fig. 3(a) with its checks.
FigureData figure3a(const DiurnalResult& r);

}  // namespace wearscope::core
