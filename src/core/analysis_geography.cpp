#include "core/analysis_geography.h"

#include <algorithm>
#include <map>

#include "util/geo.h"

namespace wearscope::core {

GeographyResult analyze_geography(const AnalysisContext& ctx,
                                  double cluster_radius_km) {
  GeographyResult res;

  // 1. Greedy proximity clustering of sectors into areas.  Sector counts
  //    are small (hundreds), so the quadratic scan is fine.
  const std::vector<trace::SectorInfo>& sectors = ctx.store().sectors;
  std::map<trace::SectorId, std::size_t> area_of;
  std::vector<AreaStats> areas;
  std::vector<util::GeoPoint> centroids;
  for (const trace::SectorInfo& s : sectors) {
    std::size_t best = areas.size();
    double best_d = cluster_radius_km;
    for (std::size_t a = 0; a < areas.size(); ++a) {
      const double d = util::haversine_km(centroids[a], s.position);
      if (d < best_d) {
        best = a;
        best_d = d;
      }
    }
    if (best == areas.size()) {
      AreaStats area;
      area.area_id = areas.size();
      area.center = s.position;
      areas.push_back(area);
      centroids.push_back(s.position);
    }
    // Running centroid update keeps clusters centred as they grow.
    AreaStats& area = areas[best];
    const double n = static_cast<double>(area.sectors);
    centroids[best].lat_deg =
        (centroids[best].lat_deg * n + s.position.lat_deg) / (n + 1.0);
    centroids[best].lon_deg =
        (centroids[best].lon_deg * n + s.position.lon_deg) / (n + 1.0);
    area.center = centroids[best];
    area.sectors += 1;
    area_of[s.sector_id] = best;
  }

  // 2. Home-anchor every user to their max-dwell sector.
  for (const UserView& u : ctx.users()) {
    std::map<trace::SectorId, double> dwell;
    const trace::MmeRecord* prev = nullptr;
    for (const trace::MmeRecord* r : u.mme) {
      if (!ctx.in_detailed_window(r->timestamp)) continue;
      if (prev != nullptr &&
          util::day_of(prev->timestamp) == util::day_of(r->timestamp)) {
        dwell[prev->sector_id] +=
            static_cast<double>(r->timestamp - prev->timestamp);
      }
      prev = r;
    }
    if (dwell.empty()) continue;
    trace::SectorId home = dwell.begin()->first;
    double best = 0.0;
    for (const auto& [sector, t] : dwell) {
      if (t > best) {
        best = t;
        home = sector;
      }
    }
    const auto it = area_of.find(home);
    if (it == area_of.end()) continue;
    AreaStats& area = areas[it->second];
    area.users += 1;
    if (u.has_wearable) area.wearable_users += 1;
  }

  // 3. Urban/rural split: the user-densest half of the areas vs the rest.
  std::sort(areas.begin(), areas.end(),
            [](const AreaStats& a, const AreaStats& b) {
              return a.users > b.users;
            });
  std::size_t urban_users = 0;
  std::size_t urban_wearables = 0;
  std::size_t rural_users = 0;
  std::size_t rural_wearables = 0;
  for (std::size_t a = 0; a < areas.size(); ++a) {
    if (a < (areas.size() + 1) / 2) {
      urban_users += areas[a].users;
      urban_wearables += areas[a].wearable_users;
    } else {
      rural_users += areas[a].users;
      rural_wearables += areas[a].wearable_users;
    }
  }
  if (urban_users > 0) {
    res.urban_adoption = static_cast<double>(urban_wearables) /
                         static_cast<double>(urban_users);
  }
  if (rural_users > 0) {
    res.rural_adoption = static_cast<double>(rural_wearables) /
                         static_cast<double>(rural_users);
  }
  res.areas = std::move(areas);
  return res;
}

FigureData figure_geography(const GeographyResult& r) {
  FigureData fig;
  fig.id = "geography";
  fig.title = "Spatial adoption: wearable users per coverage area";
  Series users;
  users.name = "users_per_area";
  Series rate;
  rate.name = "adoption_rate_per_area";
  for (const AreaStats& a : r.areas) {
    const std::string label = "area" + std::to_string(a.area_id) + " (" +
                              std::to_string(a.sectors) + " sectors)";
    users.labels.push_back(label);
    users.y.push_back(static_cast<double>(a.users));
    rate.labels.push_back(label);
    rate.y.push_back(a.adoption_rate());
  }
  fig.series = {std::move(users), std::move(rate)};

  fig.checks.push_back(make_check(
      "multiple coverage areas resolved", 6,
      static_cast<double>(r.areas.size()), 2, 1000));
  // The generator places owners by the same population process as
  // everyone else: adoption rates must be broadly uniform in space (no
  // artificial urban bias), within sampling noise.
  if (r.rural_adoption > 0.0) {
    fig.checks.push_back(make_check(
        "urban/rural adoption ratio (spatially uniform)", 1.0,
        r.urban_adoption / r.rural_adoption, 0.5, 2.0));
  }
  fig.notes.push_back(
      "extension: the paper never maps its users; the MME + sector data "
      "supports it directly (home = max-dwell sector)");
  return fig;
}

}  // namespace wearscope::core
