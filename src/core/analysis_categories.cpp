#include "core/analysis_categories.h"

#include <algorithm>
#include <unordered_set>

namespace wearscope::core {

CategoryResult analyze_categories(const AnalysisContext& ctx) {
  CategoryResult res;

  struct Raw {
    std::unordered_set<std::uint64_t> user_days;
    double usages = 0.0;
    double txns = 0.0;
    double bytes = 0.0;
  };
  std::array<Raw, appdb::kCategoryCount> raw{};

  for (const UserView* u : ctx.wearable_users()) {
    for (std::size_t i = 0; i < u->wearable_txns.size(); ++i) {
      const trace::ProxyRecord* r = u->wearable_txns[i];
      if (!ctx.in_detailed_window(r->timestamp)) continue;
      const auto cat = ctx.signatures().app_category(u->wearable_classes[i].app);
      if (!cat) continue;
      Raw& a = raw[static_cast<std::size_t>(*cat)];
      a.user_days.insert((u->user_id << 10) ^
                         static_cast<std::uint64_t>(util::day_of(r->timestamp)));
      a.txns += 1.0;
      a.bytes += static_cast<double>(r->bytes_total());
    }
    for (const Usage& usage : u->usages) {
      if (!ctx.in_detailed_window(usage.start)) continue;
      const auto cat = ctx.signatures().app_category(usage.app);
      if (!cat) continue;
      raw[static_cast<std::size_t>(*cat)].usages += 1.0;
    }
  }

  double total_users = 0.0;
  double total_usages = 0.0;
  double total_txns = 0.0;
  double total_bytes = 0.0;
  for (const Raw& a : raw) {
    total_users += static_cast<double>(a.user_days.size());
    total_usages += a.usages;
    total_txns += a.txns;
    total_bytes += a.bytes;
  }

  for (const appdb::Category c : appdb::all_categories()) {
    const Raw& a = raw[static_cast<std::size_t>(c)];
    CategoryStats s;
    s.category = c;
    if (total_users > 0.0)
      s.user_share_pct =
          100.0 * static_cast<double>(a.user_days.size()) / total_users;
    if (total_usages > 0.0) s.usage_share_pct = 100.0 * a.usages / total_usages;
    if (total_txns > 0.0) s.txn_share_pct = 100.0 * a.txns / total_txns;
    if (total_bytes > 0.0) s.data_share_pct = 100.0 * a.bytes / total_bytes;
    res.by_users.push_back(s);
  }
  std::sort(res.by_users.begin(), res.by_users.end(),
            [](const CategoryStats& a, const CategoryStats& b) {
              return a.user_share_pct > b.user_share_pct;
            });
  for (std::size_t i = 0; i < res.by_users.size(); ++i) {
    res.user_rank[static_cast<std::size_t>(res.by_users[i].category)] = i;
  }
  return res;
}

FigureData figure6(const CategoryResult& r) {
  FigureData fig;
  fig.id = "fig6";
  fig.title = "Daily popularity of app categories (users/usage/txns/data)";
  Series users;
  Series usage;
  Series txns;
  Series data;
  users.name = "associated_users_pct";
  usage.name = "frequency_of_usage_pct";
  txns.name = "transactions_pct";
  data.name = "data_pct";
  for (const CategoryStats& s : r.by_users) {
    const std::string label{appdb::category_name(s.category)};
    users.labels.push_back(label);
    users.y.push_back(s.user_share_pct);
    usage.labels.push_back(label);
    usage.y.push_back(s.usage_share_pct);
    txns.labels.push_back(label);
    txns.y.push_back(s.txn_share_pct);
    data.labels.push_back(label);
    data.y.push_back(s.data_share_pct);
  }
  fig.series = {std::move(users), std::move(usage), std::move(txns),
                std::move(data)};

  const auto rank = [&](appdb::Category c) {
    return static_cast<double>(r.user_rank[static_cast<std::size_t>(c)]);
  };
  fig.checks.push_back(make_check("Communication user rank (1st)", 0,
                                  rank(appdb::Category::kCommunication), 0,
                                  1));
  fig.checks.push_back(make_check("Shopping user rank (2nd)", 1,
                                  rank(appdb::Category::kShopping), 0, 4));
  fig.checks.push_back(make_check("Social user rank (3rd)", 2,
                                  rank(appdb::Category::kSocial), 0, 5));
  fig.checks.push_back(make_check("Weather user rank (4th)", 3,
                                  rank(appdb::Category::kWeather), 0, 5));
  fig.checks.push_back(make_check(
      "Health-Fitness near the bottom (>= 12th)", 13,
      rank(appdb::Category::kHealthFitness), 11, 14));
  fig.checks.push_back(make_check("Lifestyle near the bottom (>= 12th)", 14,
                                  rank(appdb::Category::kLifestyle), 11, 14));
  fig.notes.push_back(
      "Health & Fitness ranks low on cellular because those apps sync over "
      "WiFi (paper conjecture, modelled explicitly)");
  return fig;
}

}  // namespace wearscope::core
