// Fig. 5 — per-app popularity and usage over the detailed window (§5.1):
//   (a) daily associated users and app-used days per user;
//   (b) frequency of usage, transactions and data per day;
// plus the §4.3 per-user app statistics (apps observed per user, one-app
// days).
#pragma once

#include <string>
#include <vector>

#include "core/context.h"
#include "core/report.h"

namespace wearscope::core {

/// Aggregates of one app across the study population.
struct AppStats {
  appdb::AppId app = kUnknownApp;
  std::string name;
  double user_share_pct = 0.0;   ///< Avg daily associated users [% of total].
  double used_days_pct = 0.0;    ///< Avg app-used days per user [% of total].
  double usage_share_pct = 0.0;  ///< Usages per day [% of total].
  double txn_share_pct = 0.0;    ///< Transactions per day [% of total].
  double data_share_pct = 0.0;   ///< Bytes per day [% of total].
};

/// Structured results of the app-popularity analysis.
struct AppPopularityResult {
  /// Apps sorted by descending user share (the Fig. 5a ordering).
  std::vector<AppStats> apps;
  /// Fraction of wearable traffic attributed to no app.
  double unknown_traffic_fraction = 0.0;

  // ---- §4.3 per-user app statistics --------------------------------------
  double mean_apps_per_user = 0.0;   ///< Paper: 8 installed (we observe use).
  double frac_users_under_20 = 0.0;  ///< Paper: 90%.
  double max_apps_per_user = 0.0;    ///< Paper: heavy users > 100.
  double one_app_day_fraction = 0.0; ///< Paper: 93% run one app per day.
};

/// Runs the analysis over the detailed window.
AppPopularityResult analyze_apps(const AnalysisContext& ctx);

/// Renders Fig. 5(a) with its checks.
FigureData figure5a(const AppPopularityResult& r);
/// Renders Fig. 5(b) with its checks.
FigureData figure5b(const AppPopularityResult& r);

}  // namespace wearscope::core
