#include "core/context.h"

#include <algorithm>

#include "util/error.h"

namespace wearscope::core {

AnalysisContext::AnalysisContext(const trace::TraceStore& store,
                                 AnalysisOptions options)
    : store_(&store), options_(options) {
  util::require(options_.observation_days > 0 &&
                    options_.detailed_start_day >= 0 &&
                    options_.detailed_start_day < options_.observation_days,
                "analysis options: bad observation window");
  util::require(store.is_sorted(),
                "analysis context requires time-sorted logs");

  knowledge_base_ =
      std::make_unique<appdb::AppCatalog>(options_.long_tail_apps);
  devices_ = std::make_unique<DeviceClassifier>(store.devices);
  signatures_ = std::make_unique<AppSignatureTable>(
      *knowledge_base_, options_.signature_coverage);

  // Group records by user (logs are time-sorted, so per-user vectors stay
  // time-sorted too).
  std::unordered_map<trace::UserId, std::size_t> index;
  const auto user_slot = [&](trace::UserId id) -> UserView& {
    const auto [it, inserted] = index.emplace(id, users_.size());
    if (inserted) {
      users_.emplace_back();
      users_.back().user_id = id;
    }
    return users_[it->second];
  };

  for (const trace::ProxyRecord& r : store.proxy) {
    UserView& u = user_slot(r.user_id);
    if (devices_->is_wearable(r.tac)) {
      u.has_wearable = true;
      u.wearable_txns.push_back(&r);
    } else {
      u.phone_txns.push_back(&r);
    }
  }
  for (const trace::MmeRecord& r : store.mme) {
    UserView& u = user_slot(r.user_id);
    u.mme.push_back(&r);
    if (devices_->is_wearable(r.tac)) u.has_wearable = true;
  }

  // Attribute and sessionize wearable traffic.
  for (UserView& u : users_) {
    if (u.wearable_txns.empty()) continue;
    u.wearable_classes = attribute_user_stream(
        *signatures_, u.wearable_txns, options_.attribution_window_s);
    u.usages =
        sessionize_user(u.wearable_txns, u.wearable_classes,
                        options_.usage_gap_s);
  }

  user_index_ = std::move(index);
  for (const UserView& u : users_) {
    (u.has_wearable ? wearable_users_ : other_users_).push_back(&u);
  }
}

const UserView* AnalysisContext::find_user(trace::UserId id) const {
  const auto it = user_index_.find(id);
  return it == user_index_.end() ? nullptr : &users_[it->second];
}

std::optional<trace::SectorId> AnalysisContext::sector_at(
    const UserView& user, util::SimTime t) const {
  if (user.mme.empty()) return std::nullopt;
  // Binary search the last event with timestamp <= t.
  const auto it = std::upper_bound(
      user.mme.begin(), user.mme.end(), t,
      [](util::SimTime value, const trace::MmeRecord* r) {
        return value < r->timestamp;
      });
  if (it == user.mme.begin()) return (*it)->sector_id;
  return (*(it - 1))->sector_id;
}

}  // namespace wearscope::core
