#include "core/context.h"

#include <algorithm>
#include <cstddef>

#include "par/shard.h"
#include "par/task_pool.h"
#include "util/error.h"

namespace wearscope::core {

namespace {

/// One shard's private view of the grouping pass.  Shards are keyed by
/// par::shard_of(user_id), so every record of a user lands in exactly one
/// shard and the per-user vectors are built with no cross-shard writes.
struct UserShard {
  std::unordered_map<trace::UserId, std::size_t> index;
  std::vector<UserView> users;
  /// Global first-appearance position of each user (proxy record i -> i,
  /// mme record j -> proxy_count + j), index-aligned with `users`.  The
  /// merge sorts on it to reproduce the sequential discovery order.
  std::vector<std::size_t> first_pos;
};

}  // namespace

AnalysisContext::AnalysisContext(const trace::TraceStore& store,
                                 AnalysisOptions options)
    : store_(&store), options_(options) {
  util::require(options_.observation_days > 0 &&
                    options_.detailed_start_day >= 0 &&
                    options_.detailed_start_day < options_.observation_days,
                "analysis options: bad observation window");
  util::require(options_.threads >= 1, "analysis options: threads must be >= 1");
  util::require(store.is_sorted(),
                "analysis context requires time-sorted logs");
  util::require(store.proxy.size() <= 0xffffffffull,
                "analysis context: proxy log exceeds 2^32 rows");
  // The store's lookup indexes build lazily on first find_*; force them now
  // so concurrent analyses only ever read them.
  store.rebuild_indexes();

  knowledge_base_ =
      std::make_unique<appdb::AppCatalog>(options_.long_tail_apps);
  devices_ = std::make_unique<DeviceClassifier>(store.devices);
  signatures_ = std::make_unique<AppSignatureTable>(
      *knowledge_base_, options_.signature_coverage);

  par::TaskPool pool(static_cast<std::size_t>(options_.threads));
  const std::size_t shards = pool.threads();

  // Column views: the grouping pass below and the rewritten analysis
  // kernels stream these dense vectors instead of the row structs.
  store.build_columns(&pool);
  const trace::ProxyColumns& pcols = store.proxy_columns();
  const trace::MmeColumns& mcols = store.mme_columns();

  // Wearable classification per TAC-dictionary entry: one DeviceDB hash
  // lookup per distinct TAC instead of one per record.
  std::vector<std::uint8_t> proxy_wearable(pcols.tacs.size());
  for (std::size_t k = 0; k < pcols.tacs.size(); ++k)
    proxy_wearable[k] = devices_->is_wearable(pcols.tacs[k]) ? 1 : 0;
  std::vector<std::uint8_t> mme_wearable(mcols.tacs.size());
  for (std::size_t k = 0; k < mcols.tacs.size(); ++k)
    mme_wearable[k] = devices_->is_wearable(mcols.tacs[k]) ? 1 : 0;

  // Phase 1 — sharded per-user grouping.  Each shard scans the full
  // time-sorted streams and keeps only its users, so per-user vectors stay
  // time-sorted exactly as in the sequential single pass.  The scan reads
  // only the user_id and tac_id columns; record pointers are recovered by
  // row index.
  std::vector<UserShard> shard_state(shards);
  {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      tasks.push_back([&store, &pcols, &mcols, &proxy_wearable, &mme_wearable,
                       &shard_state, s, shards] {
        UserShard& shard = shard_state[s];
        const auto user_slot = [&shard](trace::UserId id,
                                        std::size_t pos) -> UserView& {
          const auto [it, inserted] = shard.index.emplace(id, shard.users.size());
          if (inserted) {
            shard.users.emplace_back();
            shard.users.back().user_id = id;
            shard.first_pos.push_back(pos);
          }
          return shard.users[it->second];
        };
        for (std::size_t i = 0; i < pcols.size(); ++i) {
          if (par::shard_of(pcols.user_id[i], shards) != s) continue;
          UserView& u = user_slot(pcols.user_id[i], i);
          if (proxy_wearable[pcols.tac_id[i]] != 0) {
            u.has_wearable = true;
            u.wearable_txns.push_back(&store.proxy[i]);
            u.wearable_rows.push_back(static_cast<std::uint32_t>(i));
          } else {
            u.phone_txns.push_back(&store.proxy[i]);
          }
        }
        for (std::size_t j = 0; j < mcols.size(); ++j) {
          if (par::shard_of(mcols.user_id[j], shards) != s) continue;
          UserView& u = user_slot(mcols.user_id[j], store.proxy.size() + j);
          u.mme.push_back(&store.mme[j]);
          if (mme_wearable[mcols.tac_id[j]] != 0) u.has_wearable = true;
        }
      });
    }
    pool.run(std::move(tasks));
  }

  // Phase 2 — ordered merge.  First-appearance positions are unique across
  // shards (each stream position belongs to one user, hence one shard), so
  // sorting on them reconstructs the order a single sequential scan would
  // have discovered the users in — for ANY shard count.
  struct MergeKey {
    std::size_t first_pos;
    std::size_t shard;
    std::size_t local;
  };
  std::vector<MergeKey> order;
  std::size_t total_users = 0;
  for (const UserShard& shard : shard_state) total_users += shard.users.size();
  order.reserve(total_users);
  for (std::size_t s = 0; s < shards; ++s) {
    for (std::size_t i = 0; i < shard_state[s].users.size(); ++i) {
      order.push_back(MergeKey{shard_state[s].first_pos[i], s, i});
    }
  }
  std::sort(order.begin(), order.end(),
            [](const MergeKey& a, const MergeKey& b) {
              return a.first_pos < b.first_pos;
            });
  users_.reserve(total_users);
  user_index_.reserve(total_users);
  for (const MergeKey& key : order) {
    user_index_.emplace(shard_state[key.shard].users[key.local].user_id,
                        users_.size());
    users_.push_back(std::move(shard_state[key.shard].users[key.local]));
  }
  shard_state.clear();

  // Phase 3 — attribution + sessionization over contiguous user slices.
  // Each slice writes only its own users; the per-slice host cache is a
  // pure memo over classify_host, so results match the uncached path.
  pool.for_slices(users_.size(),
                  [this](std::size_t lo, std::size_t hi, std::size_t) {
                    HostClassCache cache(*signatures_);
                    for (std::size_t i = lo; i < hi; ++i) {
                      UserView& u = users_[i];
                      if (u.wearable_txns.empty()) continue;
                      u.wearable_classes = attribute_user_stream(
                          cache, u.wearable_txns,
                          options_.attribution_window_s);
                      u.usages = sessionize_user(u.wearable_txns,
                                                 u.wearable_classes,
                                                 options_.usage_gap_s);
                    }
                  });

  // Phase 4 — population partition (order-preserving, sequential).
  for (const UserView& u : users_) {
    (u.has_wearable ? wearable_users_ : other_users_).push_back(&u);
  }
}

const UserView* AnalysisContext::find_user(trace::UserId id) const {
  const auto it = user_index_.find(id);
  return it == user_index_.end() ? nullptr : &users_[it->second];
}

std::optional<trace::SectorId> AnalysisContext::sector_at(
    const UserView& user, util::SimTime t) const {
  if (user.mme.empty()) return std::nullopt;
  // Binary search the last event with timestamp <= t.
  const auto it = std::upper_bound(
      user.mme.begin(), user.mme.end(), t,
      [](util::SimTime value, const trace::MmeRecord* r) {
        return value < r->timestamp;
      });
  if (it == user.mme.begin()) return (*it)->sector_id;
  return (*(it - 1))->sector_id;
}

}  // namespace wearscope::core
