// Fig. 8 — transaction classes of wearable traffic (§5.2): share of unique
// users, frequency of usage and data exchanged with Application (first
// party), Utilities (CDNs), Advertising and Analytics endpoints.
#pragma once

#include <array>

#include "appdb/third_party.h"
#include "core/context.h"
#include "core/report.h"

namespace wearscope::core {

/// Shares of one transaction class (as % of the daily total).
struct ClassStats {
  appdb::TransactionClass cls = appdb::TransactionClass::kApplication;
  double user_share_pct = 0.0;
  double txn_share_pct = 0.0;
  double data_share_pct = 0.0;
};

/// Structured results of the third-party analysis.
struct ThirdPartyResult {
  std::array<ClassStats, appdb::kTransactionClassCount> classes{};
  /// First-party over third-party (Utilities+Ads+Analytics) data ratio;
  /// the paper observes "the same order of magnitude".
  double app_over_thirdparty_data = 0.0;
};

/// Runs the analysis over the detailed window (wearable traffic only;
/// columnar kernel: per-user class flags instead of per-class user sets).
ThirdPartyResult analyze_thirdparty(const AnalysisContext& ctx);

/// Row-layout reference implementation, bitwise-identical to
/// analyze_thirdparty; kept for the differential tests and BENCH_columnar.
ThirdPartyResult analyze_thirdparty_rows(const AnalysisContext& ctx);

/// Renders Fig. 8 with its checks.
FigureData figure8(const ThirdPartyResult& r);

}  // namespace wearscope::core
