// Device-model cohorts (§4.1: "Currently, most users are using LG and
// Samsung SIM-enabled watches").  Joins wearable traffic against the
// DeviceDB to break users, activity and volume down by watch model and
// manufacturer — the kind of per-vendor report an ISP analyst produces
// next once the aggregate study exists.
#pragma once

#include <string>
#include <vector>

#include "core/context.h"
#include "core/report.h"

namespace wearscope::core {

/// Aggregates of one wearable model.
struct ModelCohort {
  trace::Tac tac = 0;           ///< Representative TAC (first seen).
  std::string model;
  std::string manufacturer;
  std::string os;
  std::size_t users = 0;        ///< Distinct users ever registered.
  std::size_t active_users = 0; ///< Users with >= 1 wearable transaction.
  double txns = 0.0;            ///< Wearable transactions (detailed window).
  double bytes = 0.0;           ///< Wearable bytes (detailed window).
  double mean_active_days = 0.0;  ///< Mean active days per active user.
};

/// Structured results of the cohort analysis.
struct CohortResult {
  /// Cohorts sorted by descending user count (models merged across their
  /// TAC allocations).
  std::vector<ModelCohort> models;
  /// Per-manufacturer share of wearable users (label, fraction).
  std::vector<std::pair<std::string, double>> manufacturer_share;
  /// Combined user share of Samsung + LG (§4.1: they dominate).
  double samsung_lg_share = 0.0;
};

/// Runs the analysis (registration over the full window, traffic over the
/// detailed window).
CohortResult analyze_cohorts(const AnalysisContext& ctx);

/// Renders the cohort breakdown with its checks.
FigureData figure_cohorts(const CohortResult& r);

}  // namespace wearscope::core
