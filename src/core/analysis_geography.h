// Spatial adoption — an extension the MME + sector data makes free:
// where do SIM-wearable users live?  Users are anchored to the sector they
// spend most dwell time at (their "home" sector), sectors cluster into
// coverage areas by proximity, and adoption density is compared across
// dense (urban) and sparse (rural) areas.
#pragma once

#include <vector>

#include "core/context.h"
#include "core/report.h"

namespace wearscope::core {

/// One spatial cluster of sectors (roughly: a city).
struct AreaStats {
  std::size_t area_id = 0;
  util::GeoPoint center;           ///< Mean position of member sectors.
  std::size_t sectors = 0;
  std::size_t users = 0;           ///< Users home-anchored here.
  std::size_t wearable_users = 0;  ///< Of which SIM-wearable owners.
  /// Wearable share among the area's users.
  [[nodiscard]] double adoption_rate() const noexcept {
    return users > 0 ? static_cast<double>(wearable_users) /
                           static_cast<double>(users)
                     : 0.0;
  }
};

/// Structured results of the spatial analysis.
struct GeographyResult {
  /// Areas ordered by descending user count.
  std::vector<AreaStats> areas;
  /// Adoption rate in the densest half of the areas vs the sparsest half
  /// (urban vs rural proxy).
  double urban_adoption = 0.0;
  double rural_adoption = 0.0;
};

/// Runs the analysis over the detailed window (everyone has phone MME
/// there, so home anchoring covers the whole subscriber sample).
/// `cluster_radius_km` merges sectors closer than this into one area.
GeographyResult analyze_geography(const AnalysisContext& ctx,
                                  double cluster_radius_km = 25.0);

/// Renders the spatial breakdown with sanity checks.
FigureData figure_geography(const GeographyResult& r);

}  // namespace wearscope::core
