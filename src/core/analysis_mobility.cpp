#include "core/analysis_mobility.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <unordered_map>

#include "util/geo.h"

namespace wearscope::core {

namespace {

/// Per-user mobility aggregates extracted from the MME log.
struct UserMobility {
  double mean_daily_max_displacement_km = 0.0;
  double entropy_bits = 0.0;
  bool has_mme = false;
};

UserMobility mobility_of(const AnalysisContext& ctx, const UserView& u) {
  UserMobility out;
  // Visited sectors per day plus dwell time per sector.
  std::map<int, std::vector<const trace::MmeRecord*>> by_day;
  for (const trace::MmeRecord* r : u.mme) {
    if (!ctx.in_detailed_window(r->timestamp)) continue;
    by_day[util::day_of(r->timestamp)].push_back(r);
  }
  if (by_day.empty()) return out;
  out.has_mme = true;

  std::unordered_map<trace::SectorId, double> dwell_s;
  util::OnlineStats daily_disp;
  for (const auto& [day, events] : by_day) {
    // Dwell: each event holds until the next one (or midnight).
    const util::SimTime day_end = util::day_start(day + 1);
    for (std::size_t i = 0; i < events.size(); ++i) {
      const util::SimTime until =
          i + 1 < events.size() ? events[i + 1]->timestamp : day_end;
      dwell_s[events[i]->sector_id] +=
          static_cast<double>(std::max<util::SimTime>(0, until - events[i]->timestamp));
    }
    // Max pairwise distance among the day's distinct sectors.
    std::set<trace::SectorId> sectors;
    for (const trace::MmeRecord* e : events) sectors.insert(e->sector_id);
    double best = 0.0;
    for (auto i = sectors.begin(); i != sectors.end(); ++i) {
      const auto pi = ctx.store().find_sector(*i);
      if (!pi) continue;
      for (auto j = std::next(i); j != sectors.end(); ++j) {
        const auto pj = ctx.store().find_sector(*j);
        if (!pj) continue;
        best = std::max(best, util::haversine_km(pi->position, pj->position));
      }
    }
    daily_disp.add(best);
  }
  out.mean_daily_max_displacement_km = daily_disp.mean();

  // Dwell-normalized Shannon entropy of visited locations (the paper
  // normalizes "by the time a user stays in a single location").
  std::vector<double> dwells;
  dwells.reserve(dwell_s.size());
  // Entropy is a commutative sum over the dwell weights, so hash-map
  // iteration order cannot reach the emitted value.
  // wearscope-lint: allow(unordered-flow)
  for (const auto& [sector, t] : dwell_s) dwells.push_back(t);
  out.entropy_bits = util::shannon_entropy(dwells);
  return out;
}

}  // namespace

double user_location_entropy(const AnalysisContext& ctx, const UserView& user,
                             EntropyNorm norm) {
  std::map<trace::SectorId, double> weight;
  const trace::MmeRecord* prev = nullptr;
  for (const trace::MmeRecord* r : user.mme) {
    if (!ctx.in_detailed_window(r->timestamp)) continue;
    if (norm == EntropyNorm::kVisitCount) {
      weight[r->sector_id] += 1.0;
    } else if (prev != nullptr &&
               util::day_of(prev->timestamp) == util::day_of(r->timestamp)) {
      weight[prev->sector_id] +=
          static_cast<double>(r->timestamp - prev->timestamp);
    }
    prev = r;
  }
  std::vector<double> w;
  w.reserve(weight.size());
  for (const auto& [sector, v] : weight) w.push_back(v);
  return util::shannon_entropy(w);
}

namespace {

Series ecdf_series(const char* name, const util::Ecdf& e,
                   std::size_t points = 64) {
  Series s;
  s.name = name;
  if (e.size() == 0) return s;
  for (std::size_t i = 0; i <= points; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(points);
    s.x.push_back(e.quantile(q));
    s.y.push_back(q);
  }
  return s;
}

}  // namespace

MobilityResult analyze_mobility(const AnalysisContext& ctx) {
  MobilityResult res;

  std::vector<double> wear_disp;
  std::vector<double> all_disp;
  std::vector<double> wear_disp_nonzero;
  std::vector<double> all_disp_nonzero;
  util::OnlineStats wear_entropy;
  util::OnlineStats all_entropy;
  std::vector<double> rel_disp;
  std::vector<double> rel_txns;

  std::size_t transacting = 0;
  std::size_t single_location = 0;

  for (const UserView& u : ctx.users()) {
    const UserMobility m = mobility_of(ctx, u);
    if (!m.has_mme) continue;
    all_disp.push_back(m.mean_daily_max_displacement_km);
    all_entropy.add(m.entropy_bits);
    if (m.mean_daily_max_displacement_km > 0.0)
      all_disp_nonzero.push_back(m.mean_daily_max_displacement_km);

    if (u.has_wearable) {
      wear_disp.push_back(m.mean_daily_max_displacement_km);
      wear_entropy.add(m.entropy_bits);
      if (m.mean_daily_max_displacement_km > 0.0)
        wear_disp_nonzero.push_back(m.mean_daily_max_displacement_km);

      // Fig. 4d: displacement vs wearable transactions per active hour.
      std::set<int> active_hours;
      std::size_t txns = 0;
      std::set<trace::SectorId> txn_sectors;
      for (std::size_t i = 0; i < u.wearable_txns.size(); ++i) {
        const trace::ProxyRecord* r = u.wearable_txns[i];
        if (!ctx.in_detailed_window(r->timestamp)) continue;
        ++txns;
        active_hours.insert(util::day_of(r->timestamp) * 24 +
                            util::hour_of(r->timestamp));
        if (const auto sec = ctx.sector_at(u, r->timestamp))
          txn_sectors.insert(*sec);
      }
      if (txns > 0) {
        ++transacting;
        if (txn_sectors.size() <= 1) ++single_location;
        // The activity-mobility relation is evaluated on users with a
        // minimally meaningful sample (>= 5 transactions): one-off users
        // contribute pure noise to the hourly rate.
        if (txns >= 5) {
          rel_disp.push_back(m.mean_daily_max_displacement_km);
          rel_txns.push_back(static_cast<double>(txns) /
                             static_cast<double>(active_hours.size()));
        }
      }
    }
  }

  res.wearable_displacement_km = util::Ecdf(wear_disp);
  res.all_displacement_km = util::Ecdf(all_disp);
  res.wearable_mean_km = res.wearable_displacement_km.mean();
  res.all_mean_km = res.all_displacement_km.mean();
  if (res.all_mean_km > 0.0)
    res.displacement_ratio = res.wearable_mean_km / res.all_mean_km;
  if (res.wearable_displacement_km.size() > 0)
    res.frac_under_30km = res.wearable_displacement_km.at(30.0);

  res.wearable_entropy_bits = wear_entropy.mean();
  res.all_entropy_bits = all_entropy.mean();
  if (res.all_entropy_bits > 0.0)
    res.entropy_ratio = res.wearable_entropy_bits / res.all_entropy_bits;

  if (transacting > 0) {
    res.single_location_fraction = static_cast<double>(single_location) /
                                   static_cast<double>(transacting);
  }
  const double wear_nz = util::mean(wear_disp_nonzero);
  const double all_nz = util::mean(all_disp_nonzero);
  if (all_nz > 0.0) res.nonstationary_ratio = wear_nz / all_nz;

  // Bin users by displacement and average their hourly activity (the
  // figure's reading direction: farther-ranging users transact more).
  res.displacement_vs_txns = util::binned_relation(rel_disp, rel_txns, 10);
  res.mobility_activity_corr = util::spearman(rel_disp, rel_txns);
  // Trend statistic on log-activity: per-user transaction rates are
  // heavy-tailed, so raw bin means are hostage to a single whale.
  std::vector<double> log_txns;
  log_txns.reserve(rel_txns.size());
  for (const double v : rel_txns) log_txns.push_back(std::log10(1.0 + v));
  const util::BinnedRelation log_rel =
      util::binned_relation(rel_disp, log_txns, 10);
  res.binned_trend_corr =
      util::pearson(log_rel.x_centers, log_rel.y_means);
  return res;
}

FigureData figure4c(const MobilityResult& r) {
  FigureData fig;
  fig.id = "fig4c";
  fig.title = "Max displacement: wearable users vs all users";
  fig.series.push_back(
      ecdf_series("wearable_displacement_km_cdf", r.wearable_displacement_km));
  fig.series.push_back(
      ecdf_series("all_users_displacement_km_cdf", r.all_displacement_km));
  fig.checks.push_back(make_check("wearable users' mean displacement (km)",
                                  20.0, r.wearable_mean_km, 10.0, 36.0));
  fig.checks.push_back(make_check(
      "wearable/all displacement ratio (~2x)", 1.94, r.displacement_ratio,
      1.4, 2.7));
  fig.checks.push_back(make_check("wearable users moving < 30 km", 0.90,
                                  r.frac_under_30km, 0.75, 0.97));
  // The paper's entropy normalization is described only loosely ("by the
  // time a user stays in a single location"); the band tolerates definition
  // drift around the +70% headline.
  fig.checks.push_back(make_check("location entropy ratio (+70%)", 1.7,
                                  r.entropy_ratio, 1.25, 2.3));
  fig.checks.push_back(make_check(
      "users transacting from a single location", 0.60,
      r.single_location_fraction, 0.48, 0.72));
  fig.checks.push_back(make_check(
      "non-stationary displacement ratio (> 1)", 1.5, r.nonstationary_ratio,
      1.1, 2.7));
  return fig;
}

FigureData figure4d(const MobilityResult& r) {
  FigureData fig;
  fig.id = "fig4d";
  fig.title = "Max displacement vs hourly wearable activity";
  Series s;
  s.name = "txns_per_hour_by_displacement";  // x: km, y: txns/hour
  s.x = r.displacement_vs_txns.x_centers;
  s.y = r.displacement_vs_txns.y_means;
  fig.series.push_back(std::move(s));
  // The paper presents the relation as binned means; the binned curve's
  // trend is the stable statistic (user-level rank correlation is shown in
  // the harness output as supplementary detail).
  fig.checks.push_back(make_check(
      "mobility-activity binned trend (positive)", 0.8, r.binned_trend_corr,
      0.2, 1.0));
  return fig;
}

}  // namespace wearscope::core
