#include "core/analysis_throughdevice.h"

#include <map>
#include <set>
#include <span>
#include <unordered_set>

#include "util/stats.h"
#include "util/strings.h"

namespace wearscope::core {

namespace {

/// Dwell-weighted location entropy of one user within the window.
double entropy_of(const AnalysisContext& ctx, const UserView& u) {
  std::map<trace::SectorId, double> dwell;
  const trace::MmeRecord* prev = nullptr;
  for (const trace::MmeRecord* r : u.mme) {
    if (!ctx.in_detailed_window(r->timestamp)) continue;
    if (prev != nullptr && util::day_of(prev->timestamp) ==
                               util::day_of(r->timestamp)) {
      dwell[prev->sector_id] +=
          static_cast<double>(r->timestamp - prev->timestamp);
    }
    prev = r;
  }
  std::vector<double> w;
  w.reserve(dwell.size());
  for (const auto& [sector, t] : dwell) w.push_back(t);
  return util::shannon_entropy(w);
}

}  // namespace

ThroughDeviceResult analyze_throughdevice(const AnalysisContext& ctx) {
  ThroughDeviceResult res;
  const auto sigs = appdb::companion_signatures();
  res.per_signature.assign(sigs.size(), 0);
  for (const appdb::CompanionSignature& s : sigs)
    res.signature_names.push_back(s.wearable);

  const double days = ctx.options().observation_days -
                      ctx.options().detailed_start_day;

  // Medians rather than means: per-user traffic is heavy-tailed and the
  // detected-TD sample is small, so a single whale would swamp a mean.
  std::vector<double> td_txns;
  std::vector<double> td_bytes;
  std::vector<double> td_entropy;
  std::vector<double> sim_txns;
  std::vector<double> sim_bytes;
  std::vector<double> sim_entropy;

  std::array<double, 24> td_hours{};
  std::array<double, 24> sim_hours{};

  for (const UserView& u : ctx.users()) {
    double txns = 0.0;
    double bytes = 0.0;
    std::array<double, 24> hours{};
    std::set<std::size_t> matched;
    for (const trace::ProxyRecord* r : u.phone_txns) {
      if (!ctx.in_detailed_window(r->timestamp)) continue;
      txns += 1.0;
      bytes += static_cast<double>(r->bytes_total());
      hours[static_cast<std::size_t>(util::hour_of(r->timestamp))] += 1.0;
      for (std::size_t s = 0; s < sigs.size(); ++s) {
        for (const std::string& d : sigs[s].domains) {
          if (util::host_matches_suffix(r->host, d)) {
            matched.insert(s);
            break;
          }
        }
      }
    }
    if (u.has_wearable) {
      sim_txns.push_back(txns / days);
      sim_bytes.push_back(bytes / days);
      sim_entropy.push_back(entropy_of(ctx, u));
      for (std::size_t h = 0; h < 24; ++h) sim_hours[h] += hours[h];
    } else if (!matched.empty()) {
      ++res.detected_users;
      for (const std::size_t s : matched) ++res.per_signature[s];
      td_txns.push_back(txns / days);
      td_bytes.push_back(bytes / days);
      td_entropy.push_back(entropy_of(ctx, u));
      for (std::size_t h = 0; h < 24; ++h) td_hours[h] += hours[h];
    }
  }

  const double sim_txn_med = util::median(sim_txns);
  const double sim_byte_med = util::median(sim_bytes);
  const double sim_entropy_med = util::median(sim_entropy);
  if (sim_txn_med > 0.0)
    res.daily_txn_ratio = util::median(td_txns) / sim_txn_med;
  if (sim_byte_med > 0.0)
    res.daily_bytes_ratio = util::median(td_bytes) / sim_byte_med;
  if (sim_entropy_med > 0.0)
    res.entropy_ratio = util::median(td_entropy) / sim_entropy_med;

  // Normalize the hourly profiles to shares and correlate them.
  const auto normalize = [](std::array<double, 24>& h) {
    double total = 0.0;
    for (const double v : h) total += v;
    if (total > 0.0) {
      for (double& v : h) v /= total;
    }
  };
  normalize(td_hours);
  normalize(sim_hours);
  res.td_hourly = td_hours;
  res.sim_hourly = sim_hours;
  res.diurnal_similarity = util::pearson(
      std::span<const double>(td_hours.data(), td_hours.size()),
      std::span<const double>(sim_hours.data(), sim_hours.size()));
  return res;
}

FigureData figure_sec6(const ThroughDeviceResult& r) {
  FigureData fig;
  fig.id = "sec6";
  fig.title = "Through-Device wearable fingerprinting (conclusion)";
  Series s;
  s.name = "detected_users_per_signature";
  for (std::size_t i = 0; i < r.per_signature.size(); ++i) {
    s.labels.push_back(r.signature_names[i]);
    s.y.push_back(static_cast<double>(r.per_signature[i]));
  }
  fig.series.push_back(std::move(s));
  Series td_prof;
  td_prof.name = "td_hourly_txn_share";
  Series sim_prof;
  sim_prof.name = "sim_hourly_txn_share";
  for (int h = 0; h < 24; ++h) {
    td_prof.x.push_back(h);
    td_prof.y.push_back(r.td_hourly[static_cast<std::size_t>(h)]);
    sim_prof.x.push_back(h);
    sim_prof.y.push_back(r.sim_hourly[static_cast<std::size_t>(h)]);
  }
  fig.series.push_back(std::move(td_prof));
  fig.series.push_back(std::move(sim_prof));

  fig.checks.push_back(make_check(
      "TD/SIM diurnal profile correlation (similar shape)", 0.9,
      r.diurnal_similarity, 0.6, 1.0));
  fig.checks.push_back(make_check("fingerprinted TD users found (> 0)", 1.0,
                                  r.detected_users > 0 ? 1.0 : 0.0, 1.0,
                                  1.0));
  fig.checks.push_back(make_check(
      "TD/SIM daily phone transactions (similar behaviour)", 1.0,
      r.daily_txn_ratio, 0.6, 1.8));
  // Wide band: the fingerprinted sample is only ~16% of TD users, so the
  // median of per-user heavy-tailed volumes is noisy at small scale.
  fig.checks.push_back(make_check(
      "TD/SIM daily phone bytes (similar behaviour)", 1.0,
      r.daily_bytes_ratio, 0.45, 1.9));
  fig.checks.push_back(make_check(
      "TD/SIM location entropy (similar mobility)", 1.0, r.entropy_ratio,
      0.6, 1.5));
  fig.notes.push_back(
      "the paper estimates fingerprints cover ~16% of Through-Device users "
      "via market reports; coverage cannot be measured from traffic alone");
  return fig;
}

}  // namespace wearscope::core
