// End-to-end analysis pipeline: TraceStore in, every figure of the paper
// out.  This is the top-level public API most users want:
//
//   wearscope::core::Pipeline pipeline(store, options);
//   wearscope::core::StudyReport report = pipeline.run();
//   std::cout << report.to_text();
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "core/analysis_activity.h"
#include "core/analysis_adoption.h"
#include "core/analysis_apps.h"
#include "core/analysis_categories.h"
#include "core/analysis_cohorts.h"
#include "core/analysis_comparison.h"
#include "core/analysis_diurnal.h"
#include "core/analysis_geography.h"
#include "core/analysis_mobility.h"
#include "core/analysis_protocol.h"
#include "core/analysis_retention.h"
#include "core/analysis_thirdparty.h"
#include "core/analysis_throughdevice.h"
#include "core/analysis_usage.h"
#include "core/context.h"
#include "core/report.h"
#include "trace/quarantine.h"
#include "util/strings.h"

namespace wearscope::core {

/// Results of the whole study: structured per-analysis results plus the
/// rendered figures with their paper-claim checks.
struct StudyReport {
  AdoptionResult adoption;
  DiurnalResult diurnal;
  ActivityResult activity;
  ComparisonResult comparison;
  MobilityResult mobility;
  AppPopularityResult apps;
  CategoryResult categories;
  UsageResult usage;
  ThirdPartyResult thirdparty;
  ThroughDeviceResult throughdevice;
  CohortResult cohorts;             ///< Extension: §4.1 vendor mix.
  RetentionResult retention;        ///< Extension: cohort survival.
  ProtocolResult protocol;          ///< Extension: HTTPS readiness.
  GeographyResult geography;        ///< Extension: spatial adoption.
  std::vector<FigureData> figures;  ///< fig2a..fig8 + sec6 + extensions.
  /// Input-quality accounting: what the loaders/sanitizer quarantined
  /// before analysis.  The pipeline itself never drops records — callers
  /// (tools, chaos harness) fill this in from the lenient load path so the
  /// report discloses how much of the capture survived.
  trace::QuarantineStats quarantine;

  /// Figure by id ("fig4c"); throws std::out_of_range when unknown.
  /// O(1) after the first call (a lazy id -> index map is built then and
  /// rebuilt whenever `figures` has changed size).  The first call after a
  /// mutation is not thread-safe; concurrent lookups on a settled report
  /// are fine.
  [[nodiscard]] const FigureData& figure(std::string_view id) const;

  /// Renders every figure's checks.
  [[nodiscard]] std::string to_text() const;

  /// Count of failed checks across all figures.
  [[nodiscard]] std::size_t failed_checks() const noexcept;

 private:
  /// Lazy figure-id lookup cache; valid while its size matches `figures`.
  mutable std::unordered_map<std::string, std::size_t, util::StringHash,
                             std::equal_to<>>
      figure_index_;
};

/// Runs every analysis over one capture.
class Pipeline {
 public:
  /// `store` must stay alive while run() executes.
  Pipeline(const trace::TraceStore& store, AnalysisOptions options);

  /// Executes all analyses and renders all figures.
  [[nodiscard]] StudyReport run() const;

  /// The shared context (exposed for custom analyses and tests).
  [[nodiscard]] const AnalysisContext& context() const noexcept {
    return ctx_;
  }

 private:
  AnalysisContext ctx_;
};

}  // namespace wearscope::core
