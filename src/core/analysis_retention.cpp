#include "core/analysis_retention.h"

#include <algorithm>
#include <map>
#include <set>

namespace wearscope::core {

RetentionResult analyze_retention(const AnalysisContext& ctx) {
  RetentionResult res;
  const int weeks = ctx.options().observation_days / 7;
  if (weeks <= 0) return res;

  // Week-presence bitsets per wearable user.
  struct Presence {
    int first_week = 1 << 30;
    std::set<int> weeks;
  };
  std::map<trace::UserId, Presence> users;
  for (const trace::MmeRecord& r : ctx.store().mme) {
    if (!ctx.devices().is_wearable(r.tac)) continue;
    const int w = util::week_of(r.timestamp);
    if (w < 0 || w >= weeks) continue;
    Presence& p = users[r.user_id];
    p.first_week = std::min(p.first_week, w);
    p.weeks.insert(w);
  }

  // Cohort = adoption week; survival over subsequent observable weeks.
  std::map<int, std::vector<const Presence*>> cohorts;
  for (const auto& [id, p] : users) cohorts[p.first_week].push_back(&p);

  for (const auto& [week, members] : cohorts) {
    Cohort c;
    c.adoption_week = week;
    c.size = members.size();
    const int horizon = weeks - week;
    c.survival.resize(static_cast<std::size_t>(horizon), 0.0);
    for (const Presence* p : members) {
      for (const int w : p->weeks) {
        c.survival[static_cast<std::size_t>(w - week)] += 1.0;
      }
    }
    for (double& v : c.survival) v /= static_cast<double>(c.size);
    res.cohorts.push_back(std::move(c));
  }

  const auto mean_survival_at = [&](int k) {
    double sum = 0.0;
    std::size_t n = 0;
    for (const Cohort& c : res.cohorts) {
      if (static_cast<int>(c.survival.size()) > k && c.size >= 5) {
        sum += c.survival[static_cast<std::size_t>(k)];
        ++n;
      }
    }
    return n > 0 ? sum / static_cast<double>(n) : 0.0;
  };
  res.survival_4w = mean_survival_at(4);
  res.survival_8w = mean_survival_at(8);
  res.survival_12w = mean_survival_at(12);
  return res;
}

FigureData figure_retention(const RetentionResult& r) {
  FigureData fig;
  fig.id = "retention";
  fig.title = "Adoption-week cohort survival (extension of Fig. 2b)";
  // The first (pre-window) cohort's survival curve is the headline series.
  if (!r.cohorts.empty()) {
    Series s;
    s.name = "cohort_week0_survival";
    const Cohort& first = r.cohorts.front();
    for (std::size_t k = 0; k < first.survival.size(); ++k) {
      s.x.push_back(static_cast<double>(k));
      s.y.push_back(first.survival[k]);
    }
    fig.series.push_back(std::move(s));
  }
  Series sizes;
  sizes.name = "cohort_sizes";
  for (const Cohort& c : r.cohorts) {
    sizes.labels.push_back("wk" + std::to_string(c.adoption_week));
    sizes.y.push_back(static_cast<double>(c.size));
  }
  fig.series.push_back(std::move(sizes));

  // The registered base is sticky: with ~93% daily registration and 7%
  // five-month churn, week-level survival stays high.
  fig.checks.push_back(make_check("mean 4-week survival (sticky base)", 0.97,
                                  r.survival_4w, 0.85, 1.0));
  fig.checks.push_back(make_check("mean 12-week survival", 0.95,
                                  r.survival_12w, 0.80, 1.0));
  fig.checks.push_back(make_check(
      "survival decays monotonically (4w >= 12w)", 1.0,
      r.survival_4w >= r.survival_12w - 1e-9 ? 1.0 : 0.0, 1.0, 1.0));
  fig.notes.push_back(
      "extension beyond the paper: Fig. 2b only contrasts the first and "
      "last weeks; cohorts expose when the 7% abandonment happens");
  return fig;
}

}  // namespace wearscope::core
