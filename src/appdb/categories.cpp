#include "appdb/categories.h"

namespace wearscope::appdb {

namespace {
constexpr std::array<std::string_view, kCategoryCount> kNames = {
    "Communication",  "Shopping",      "Social",
    "Weather",        "Music-Audio",   "Sports",
    "News-Magazines", "Entertainment", "Productivity",
    "Maps-Navigation", "Tools",        "Travel-Local",
    "Finance",        "Health-Fitness", "Lifestyle"};
}  // namespace

std::string_view category_name(Category c) noexcept {
  return kNames[static_cast<std::size_t>(c)];
}

std::optional<Category> parse_category(std::string_view name) noexcept {
  for (std::size_t i = 0; i < kNames.size(); ++i) {
    if (kNames[i] == name) return static_cast<Category>(i);
  }
  return std::nullopt;
}

}  // namespace wearscope::appdb
