// Google Play Store app categories used by the paper's Fig. 6 (15 classes).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace wearscope::appdb {

/// The 15 Google-Play categories the paper aggregates apps into (Fig. 6).
enum class Category : std::uint8_t {
  kCommunication = 0,
  kShopping,
  kSocial,
  kWeather,
  kMusicAudio,
  kSports,
  kNewsMagazines,
  kEntertainment,
  kProductivity,
  kMapsNavigation,
  kTools,
  kTravelLocal,
  kFinance,
  kHealthFitness,
  kLifestyle,
};

/// Number of categories.
inline constexpr std::size_t kCategoryCount = 15;

/// All categories in enum order (handy for iteration and plotting).
constexpr std::array<Category, kCategoryCount> all_categories() {
  return {Category::kCommunication, Category::kShopping,
          Category::kSocial,        Category::kWeather,
          Category::kMusicAudio,    Category::kSports,
          Category::kNewsMagazines, Category::kEntertainment,
          Category::kProductivity,  Category::kMapsNavigation,
          Category::kTools,         Category::kTravelLocal,
          Category::kFinance,       Category::kHealthFitness,
          Category::kLifestyle};
}

/// Display name matching the figure labels (e.g. "Music-Audio").
std::string_view category_name(Category c) noexcept;

/// Parses a display name back to the enum; nullopt for unknown names.
std::optional<Category> parse_category(std::string_view name) noexcept;

}  // namespace wearscope::appdb
