#include "appdb/traffic_profile.h"

namespace wearscope::appdb {

namespace {

// Calibration notes (paper targets):
//  * Fig. 3(c): the all-app transaction-size distribution must be sharply
//    centred around 3 KB with ~80% of transactions below 10 KB.  Because
//    notification/weather/payment apps dominate transaction *counts*, their
//    log-mu sits near ln(2..4 KB) while media classes sit far in the tail.
//  * Fig. 7: per-usage volume = transactions_per_usage * E[bytes] must span
//    from ~1 KB (payments) to ~1 MB (WhatsApp/Deezer/Snapchat class).
//  * Fig. 8: third-party mixes put Utilities/Advertising/Analytics traffic
//    within one order of magnitude of first-party Application traffic.
constexpr TrafficProfile kProfiles[kProfileKindCount] = {
    // kNotification: many pushes, ~1.5 KB each, a whiff of analytics.
    {ProfileKind::kNotification,
     /*usages_per_active_hour=*/2.2, /*transactions_per_usage=*/3.0,
     /*intra_usage_gap_s=*/7.0,
     /*bytes_log_mu=*/7.35, /*bytes_log_sigma=*/0.65,
     /*uplink_fraction=*/0.25, /*duration_mean_ms=*/220.0,
     /*http_fraction=*/0.02,
     {/*utilities=*/0.08, /*advertising=*/0.03, /*analytics=*/0.10}},
    // kWeatherPoll: periodic forecast fetches, ~4 KB payloads, ad-funded.
    {ProfileKind::kWeatherPoll,
     /*usages_per_active_hour=*/1.6, /*transactions_per_usage=*/4.0,
     /*intra_usage_gap_s=*/6.0,
     /*bytes_log_mu=*/8.25, /*bytes_log_sigma=*/0.55,
     /*uplink_fraction=*/0.10, /*duration_mean_ms=*/300.0,
     /*http_fraction=*/0.10,
     {/*utilities=*/0.15, /*advertising=*/0.12, /*analytics=*/0.10}},
    // kPayment: micro-interactions, sub-KB, near-zero third parties.
    {ProfileKind::kPayment,
     /*usages_per_active_hour=*/1.1, /*transactions_per_usage=*/2.0,
     /*intra_usage_gap_s=*/5.0,
     /*bytes_log_mu=*/6.70, /*bytes_log_sigma=*/0.50,
     /*uplink_fraction=*/0.45, /*duration_mean_ms=*/450.0,
     /*http_fraction=*/0.0,
     {/*utilities=*/0.03, /*advertising=*/0.0, /*analytics=*/0.05}},
    // kMessagingMedia: chats plus media blobs -> heavy per-usage volume.
    {ProfileKind::kMessagingMedia,
     /*usages_per_active_hour=*/1.2, /*transactions_per_usage=*/7.0,
     /*intra_usage_gap_s=*/9.0,
     /*bytes_log_mu=*/8.80, /*bytes_log_sigma=*/1.20,
     /*uplink_fraction=*/0.40, /*duration_mean_ms=*/600.0,
     /*http_fraction=*/0.0,
     {/*utilities=*/0.12, /*advertising=*/0.01, /*analytics=*/0.05}},
    // kStreaming: few long sessions, bulk bytes mostly from CDNs.
    {ProfileKind::kStreaming,
     /*usages_per_active_hour=*/1.0, /*transactions_per_usage=*/6.0,
     /*intra_usage_gap_s=*/12.0,
     /*bytes_log_mu=*/9.20, /*bytes_log_sigma=*/1.05,
     /*uplink_fraction=*/0.04, /*duration_mean_ms=*/2500.0,
     /*http_fraction=*/0.03,
     {/*utilities=*/0.38, /*advertising=*/0.04, /*analytics=*/0.06}},
    // kBrowsing: feeds and pages, ad-and-analytics heavy.
    {ProfileKind::kBrowsing,
     /*usages_per_active_hour=*/1.4, /*transactions_per_usage=*/6.0,
     /*intra_usage_gap_s=*/10.0,
     /*bytes_log_mu=*/8.30, /*bytes_log_sigma=*/0.95,
     /*uplink_fraction=*/0.12, /*duration_mean_ms=*/500.0,
     /*http_fraction=*/0.08,
     {/*utilities=*/0.20, /*advertising=*/0.14, /*analytics=*/0.12}},
    // kMaps: tile bursts while on the move.
    {ProfileKind::kMaps,
     /*usages_per_active_hour=*/1.3, /*transactions_per_usage=*/5.0,
     /*intra_usage_gap_s=*/8.0,
     /*bytes_log_mu=*/8.60, /*bytes_log_sigma=*/0.85,
     /*uplink_fraction=*/0.08, /*duration_mean_ms=*/420.0,
     /*http_fraction=*/0.04,
     {/*utilities=*/0.22, /*advertising=*/0.02, /*analytics=*/0.08}},
    // kSync: periodic state sync, moderate payloads.
    {ProfileKind::kSync,
     /*usages_per_active_hour=*/1.1, /*transactions_per_usage=*/3.0,
     /*intra_usage_gap_s=*/6.0,
     /*bytes_log_mu=*/8.80, /*bytes_log_sigma=*/1.10,
     /*uplink_fraction=*/0.55, /*duration_mean_ms=*/700.0,
     /*http_fraction=*/0.0,
     {/*utilities=*/0.10, /*advertising=*/0.0, /*analytics=*/0.07}},
    // kVoiceAssistant: short query/response round-trips.
    {ProfileKind::kVoiceAssistant,
     /*usages_per_active_hour=*/1.2, /*transactions_per_usage=*/3.0,
     /*intra_usage_gap_s=*/5.0,
     /*bytes_log_mu=*/8.50, /*bytes_log_sigma=*/0.85,
     /*uplink_fraction=*/0.50, /*duration_mean_ms=*/650.0,
     /*http_fraction=*/0.0,
     {/*utilities=*/0.10, /*advertising=*/0.01, /*analytics=*/0.08}},
};

constexpr std::array<std::string_view, kProfileKindCount> kKindNames = {
    "notification", "weather-poll", "payment",
    "messaging-media", "streaming", "browsing",
    "maps", "sync", "voice-assistant"};

}  // namespace

const TrafficProfile& profile_for(ProfileKind kind) noexcept {
  return kProfiles[static_cast<std::size_t>(kind)];
}

std::string_view profile_kind_name(ProfileKind kind) noexcept {
  return kKindNames[static_cast<std::size_t>(kind)];
}

}  // namespace wearscope::appdb
