#include "appdb/device_models.h"

namespace wearscope::appdb {

DeviceModelCatalog::DeviceModelCatalog(bool include_apple_watch) {
  using enum DeviceClass;
  // TACs are synthetic but follow the real 8-digit format with the
  // 35/86 reporting-body prefixes.  The operator in the paper supported
  // mostly Samsung/LG wearables (no Apple Watch 3 yet), which the shares
  // reflect.
  models_ = {
      // --- SIM-enabled wearables -------------------------------------
      {"Gear S2 classic 3G", "Samsung", "Tizen", kSimWearable,
       {35293208}, 0.18},
      {"Gear S3 frontier LTE", "Samsung", "Tizen", kSimWearable,
       {35254208, 35254209}, 0.34},
      {"Gear S 750", "Samsung", "Tizen", kSimWearable, {35688904}, 0.08},
      {"Watch Urbane 2nd Edition LTE", "LG", "Android Wear", kSimWearable,
       {35909306}, 0.22},
      {"Watch Sport", "LG", "Android Wear", kSimWearable, {35909307}, 0.10},
      {"Watch 2 Pro LTE", "Huawei", "Android Wear", kSimWearable,
       {86723403}, 0.08},
      // --- Smartphones -----------------------------------------------
      {"iPhone 7", "Apple", "iOS", kSmartphone, {35332008, 35332009}, 0.16},
      {"iPhone 8", "Apple", "iOS", kSmartphone, {35274309}, 0.10},
      {"iPhone X", "Apple", "iOS", kSmartphone, {35274409}, 0.08},
      {"Galaxy S7", "Samsung", "Android", kSmartphone, {35565907}, 0.14},
      {"Galaxy S8", "Samsung", "Android", kSmartphone,
       {35831108, 35831109}, 0.15},
      {"Galaxy S9", "Samsung", "Android", kSmartphone, {35226910}, 0.07},
      {"P10", "Huawei", "Android", kSmartphone, {86475103}, 0.09},
      {"Mi 6", "Xiaomi", "Android", kSmartphone, {86171203}, 0.06},
      {"G6", "LG", "Android", kSmartphone, {35440107}, 0.05},
      {"Xperia XZ1", "Sony", "Android", kSmartphone, {35479308}, 0.05},
      {"Redmi Note 4", "Xiaomi", "Android", kSmartphone, {86342903}, 0.05},
      // --- Feature phones / tablets / M2M (classification noise) ------
      {"3310 3G", "Nokia", "S30+", kFeaturePhone, {35670108}, 0.6},
      {"GS160", "Alcatel", "KaiOS", kFeaturePhone, {35401607}, 0.4},
      {"iPad Pro", "Apple", "iOS", kTablet, {35982106}, 0.5},
      {"Galaxy Tab S3", "Samsung", "Android", kTablet, {35894607}, 0.5},
      {"LE910", "Telit", "M2M-FW", kM2mModule, {35791005}, 0.5},
      {"EC25", "Quectel", "M2M-FW", kM2mModule, {86672103}, 0.5},
  };
  if (include_apple_watch) {
    models_.push_back({"Watch Series 3 Cellular", "Apple", "watchOS",
                       kSimWearable, {kAppleWatchTac}, 0.0});
    // Market share 0: pre-launch adopters never draw it; the launch logic
    // in Population assigns it explicitly by date.
  }
}

std::vector<const DeviceModel*> DeviceModelCatalog::models_of(
    DeviceClass c) const {
  std::vector<const DeviceModel*> out;
  for (const DeviceModel& m : models_) {
    if (m.device_class == c) out.push_back(&m);
  }
  return out;
}

std::optional<DeviceClass> DeviceModelCatalog::class_of_tac(
    trace::Tac tac) const {
  const DeviceModel* m = model_of_tac(tac);
  if (m == nullptr) return std::nullopt;
  return m->device_class;
}

const DeviceModel* DeviceModelCatalog::model_of_tac(trace::Tac tac) const {
  for (const DeviceModel& m : models_) {
    for (const trace::Tac t : m.tacs) {
      if (t == tac) return &m;
    }
  }
  return nullptr;
}

std::vector<trace::DeviceRecord> DeviceModelCatalog::to_device_records()
    const {
  std::vector<trace::DeviceRecord> out;
  for (const DeviceModel& m : models_) {
    for (const trace::Tac t : m.tacs) {
      out.push_back(trace::DeviceRecord{t, m.model, m.manufacturer, m.os});
    }
  }
  return out;
}

}  // namespace wearscope::appdb
