#include "appdb/app_catalog.h"

#include <array>
#include <cmath>

#include "util/rng.h"

namespace wearscope::appdb {

namespace {

using enum Category;
using enum ProfileKind;

/// Catalog row for the 50 named apps, in the exact Fig. 5(a) order
/// (descending daily-associated-users rank).
struct NamedApp {
  std::string_view name;
  Category category;
  ProfileKind profile;
  double daily_use_multiplier;
  bool wifi_preferred;
  std::initializer_list<std::string_view> domains;
};

// Category assignments follow the Google Play Store listing of the era; the
// two tap-and-go payment apps are filed under Shopping, which is what makes
// Shopping the #2 category of Fig. 6 despite Ebay/Amazon's mid-table ranks.
const std::array<NamedApp, 50> kNamedApps = {{
    {"Weather", kWeather, kWeatherPoll, 2.2, false,
     {"api.weather.com", "dsx.weather.com"}},
    {"Google-Maps", kMapsNavigation, kMaps, 1.2, false,
     {"maps.googleapis.com", "roads.googleapis.com"}},
    {"Accuweather", kWeather, kWeatherPoll, 2.0, false,
     {"api.accuweather.com", "vortex.accuweather.com"}},
    {"Flipboard", kNewsMagazines, kBrowsing, 0.85, false,
     {"fbprod.flipboard.com", "ad.flipboard.example"}},
    {"YouTube", kEntertainment, kStreaming, 1.1, false,
     {"youtubei.googleapis.com", "googlevideo.com"}},
    {"Messenger", kCommunication, kNotification, 2.1, false,
     {"edge-chat.messenger.com", "api.messenger.com"}},
    {"Google-App", kTools, kVoiceAssistant, 1.5, false,
     {"clients3.google.com", "assistant.googleapis.com"}},
    {"Facebook", kSocial, kBrowsing, 1.6, false,
     {"graph.facebook.com", "edge-mqtt.facebook.com"}},
    {"Samsung-Pay", kShopping, kPayment, 1.9, false,
     {"pay.samsung.com", "eu-api.mpay.samsung.com"}},
    {"Android-Pay", kShopping, kPayment, 1.9, false,
     {"wallet.googleapis.com", "androidpay.googleapis.com"}},
    {"Roaming-App", kTools, kNotification, 1.2, false,
     {"roaming.carrier.example", "selfcare.carrier.example"}},
    {"WhatsApp", kCommunication, kMessagingMedia, 1.9, false,
     {"e1.whatsapp.net", "mmg.whatsapp.net", "g.whatsapp.net"}},
    {"Outlook", kProductivity, kNotification, 1.7, false,
     {"outlook.office365.com", "substrate.office.com"}},
    {"Street-View", kTravelLocal, kMaps, 0.8, false,
     {"streetview.googleapis.com", "geo0.ggpht.example"}},
    {"MMS", kCommunication, kNotification, 1.3, false,
     {"mms.carrier.example", "mmsc.carrier.example"}},
    {"Twitter", kSocial, kBrowsing, 1.4, false,
     {"api.twitter.com", "pbs.twimg.com"}},
    {"Skype", kCommunication, kMessagingMedia, 1.2, false,
     {"api.skype.com", "edge.skype.com"}},
    {"S-Voice", kTools, kVoiceAssistant, 1.2, false,
     {"svoice.samsungosp.com", "api.svoice.samsung.example"}},
    {"Ebay", kShopping, kBrowsing, 1.25, false,
     {"api.ebay.com", "i.ebayimg.com"}},
    {"Spotify", kMusicAudio, kStreaming, 1.2, false,
     {"api.spotify.com", "audio-fa.scdn.co", "spclient.wg.spotify.com"}},
    {"News-App-1", kNewsMagazines, kBrowsing, 0.9, false,
     {"api.newsapp1.example", "img.newsapp1.example"}},
    {"Opera-Mini", kCommunication, kBrowsing, 1.1, false,
     {"global.opera-mini.net", "api.opera.com"}},
    {"Dropbox", kProductivity, kSync, 1.0, false,
     {"api.dropboxapi.com", "content.dropboxapi.com"}},
    {"News-App-3", kNewsMagazines, kBrowsing, 0.85, false,
     {"api.newsapp3.example"}},
    {"Snapchat", kSocial, kMessagingMedia, 1.4, false,
     {"app.snapchat.com", "gcp.api.snapchat.com"}},
    {"OneDrive", kProductivity, kSync, 1.0, false,
     {"api.onedrive.com", "storage.live.com"}},
    {"Amazon", kShopping, kBrowsing, 1.15, false,
     {"msh.amazon.com", "images-eu.ssl-images-amazon.com"}},
    {"PayPal", kFinance, kPayment, 1.1, false,
     {"api.paypal.com", "t.paypal.com"}},
    {"Metro", kTravelLocal, kMaps, 1.1, false,
     {"api.metro-transit.example", "tiles.metro-transit.example"}},
    {"Tools-App-2", kTools, kNotification, 1.0, false,
     {"api.toolsapp2.example"}},
    {"Bank-App-1", kFinance, kPayment, 1.0, false,
     {"mobile.bankapp1.example", "api.bankapp1.example"}},
    {"S-Health", kHealthFitness, kSync, 1.0, true,
     {"shealth.samsunghealth.com", "api.samsunghealth.example"}},
    {"Deezer", kMusicAudio, kStreaming, 1.1, false,
     {"api.deezer.com", "cdns-preview.dzcdn.net", "media.deezer.com"}},
    {"Viber", kCommunication, kMessagingMedia, 1.0, false,
     {"api.viber.com", "media.viber.com"}},
    {"Netflix", kEntertainment, kStreaming, 0.9, false,
     {"api-global.netflix.com", "nflxvideo.net"}},
    {"Tools-App-1", kTools, kNotification, 0.9, false,
     {"api.toolsapp1.example"}},
    {"Travel-App", kTravelLocal, kBrowsing, 0.6, false,
     {"api.travelapp.example", "booking.travelapp.example"}},
    {"News-App-2", kNewsMagazines, kBrowsing, 0.8, false,
     {"api.newsapp2.example"}},
    {"Golf-NAVI", kSports, kMaps, 0.7, false,
     {"api.golfnavi.example", "maps.golfnavi.example"}},
    {"Navigation-App", kMapsNavigation, kMaps, 0.8, false,
     {"api.navigationapp.example", "tiles.navigationapp.example"}},
    {"TrueCaller", kCommunication, kNotification, 1.2, false,
     {"api4.truecaller.com", "search5.truecaller.com"}},
    {"Reddit", kSocial, kBrowsing, 1.0, false,
     {"oauth.reddit.com", "gateway.reddit.com"}},
    {"Uber", kMapsNavigation, kMaps, 0.7, false,
     {"cn-geo1.uber.com", "api.uber.com"}},
    {"Bank-App-2", kFinance, kPayment, 0.9, false,
     {"mobile.bankapp2.example"}},
    {"Nike-Running", kSports, kSync, 0.8, true,
     {"api.nike.com", "events.nike.com"}},
    {"Sweatcoin", kHealthFitness, kSync, 0.9, true,
     {"api.sweatco.in"}},
    {"Daily-Star", kNewsMagazines, kBrowsing, 0.8, false,
     {"api.dailystar.example", "img.dailystar.example"}},
    {"Badoo", kLifestyle, kBrowsing, 0.8, false,
     {"api.badoo.com", "us1.badoo.com"}},
    {"Bank-App-3", kFinance, kPayment, 0.8, false,
     {"mobile.bankapp3.example"}},
    {"TV-Guide", kEntertainment, kBrowsing, 0.8, false,
     {"api.tvguide.example", "images.tvguide.example"}},
}};

/// Category mix of the long tail.  Chosen so that summing per-app activity
/// over whole categories reproduces Fig. 6's ordering (Communication,
/// Shopping, Social, Weather on top; Health-Fitness and Lifestyle at the
/// bottom) even though, e.g., the top Sports apps individually rank low in
/// Fig. 5: the Sports/Music categories are fat with minor apps.
constexpr std::array<double, kCategoryCount> kTailCategoryWeights = {
    /*Communication=*/0.24, /*Shopping=*/0.19, /*Social=*/0.16,
    /*Weather=*/0.01,       /*Music-Audio=*/0.12, /*Sports=*/0.11,
    /*News-Magazines=*/0.03, /*Entertainment=*/0.04, /*Productivity=*/0.02,
    /*Maps-Navigation=*/0.015, /*Tools=*/0.025, /*Travel-Local=*/0.02,
    /*Finance=*/0.015,       /*Health-Fitness=*/0.01, /*Lifestyle=*/0.005};

/// Default profile kind of a long-tail app in each category.
constexpr std::array<ProfileKind, kCategoryCount> kTailProfiles = {
    kNotification,  // Communication
    kBrowsing,      // Shopping
    kBrowsing,      // Social
    kWeatherPoll,   // Weather
    kStreaming,     // Music-Audio
    kBrowsing,      // Sports
    kBrowsing,      // News-Magazines
    kStreaming,     // Entertainment
    kSync,          // Productivity
    kMaps,          // Maps-Navigation
    kNotification,  // Tools
    kBrowsing,      // Travel-Local
    kPayment,       // Finance
    kSync,          // Health-Fitness
    kBrowsing,      // Lifestyle
};

/// Popularity of Fig. 5(a) rank r (0-based): exponential decay spanning
/// roughly three decades across the 50 named apps, matching the log-scale
/// span of the figure.
double named_popularity(std::size_t rank) {
  return std::pow(10.0, -2.8 * static_cast<double>(rank) / 49.0);
}

}  // namespace

AppCatalog::AppCatalog(std::size_t long_tail_count) {
  apps_.reserve(kNamedApps.size() + long_tail_count);

  for (std::size_t i = 0; i < kNamedApps.size(); ++i) {
    const NamedApp& n = kNamedApps[i];
    AppInfo app;
    app.id = static_cast<AppId>(apps_.size());
    app.name = std::string(n.name);
    app.category = n.category;
    app.profile = n.profile;
    app.popularity_weight = named_popularity(i);
    app.daily_use_multiplier = n.daily_use_multiplier;
    app.wifi_preferred = n.wifi_preferred;
    for (const std::string_view d : n.domains) app.domains.emplace_back(d);
    app.in_signature_table = true;
    apps_.push_back(std::move(app));
  }

  // Long tail: deterministic regardless of caller seeds (the catalog is a
  // fixed knowledge base, not a random object).
  util::Pcg32 rng(0xA99DBULL, 0x5EEDULL);
  const util::DiscreteSampler category_sampler(kTailCategoryWeights);
  // The tail carries substantial aggregate weight (roughly comparable to
  // the named apps combined): Fig. 6's category ranking only reproduces if
  // whole categories are fat with minor apps the paper never names.
  const double tail_top = 0.12;
  for (std::size_t i = 0; i < long_tail_count; ++i) {
    AppInfo app;
    app.id = static_cast<AppId>(apps_.size());
    app.name = "LongTail-App-" + std::to_string(i + 1);
    const auto cat_idx = category_sampler.sample(rng);
    app.category = static_cast<Category>(cat_idx);
    app.profile = kTailProfiles[cat_idx];
    // Tail decays one further decade over its length, below the last
    // named app.
    app.popularity_weight =
        tail_top *
        std::pow(10.0, -1.0 * static_cast<double>(i + 1) /
                           static_cast<double>(long_tail_count));
    app.daily_use_multiplier = rng.uniform(0.5, 1.2);
    app.wifi_preferred = app.category == kHealthFitness;
    app.domains.push_back("api.tailapp" + std::to_string(i + 1) + ".example");
    if (rng.bernoulli(0.4)) {
      app.domains.push_back("img.tailapp" + std::to_string(i + 1) +
                            ".example");
    }
    // A quarter of the tail is missing from the curated signature table,
    // modelling the authors' necessarily incomplete app mapping.
    app.in_signature_table = (i % 4) != 3;
    apps_.push_back(std::move(app));
  }

  popularity_weights_.reserve(apps_.size());
  for (const AppInfo& a : apps_) popularity_weights_.push_back(a.popularity_weight);
}

std::optional<AppId> AppCatalog::find_by_name(std::string_view name) const {
  for (const AppInfo& a : apps_) {
    if (a.name == name) return a.id;
  }
  return std::nullopt;
}

std::span<const CompanionSignature> companion_signatures() {
  static const std::vector<CompanionSignature> kSignatures = {
      {"Fitbit",
       {"api.fitbit.com", "android-cdn-api.fitbit.com"},
       /*device_specific=*/true},
      {"Xiaomi-Band",
       {"api-mifit.huami.com", "api-watch.huami.com"},
       /*device_specific=*/true},
      {"AccuWeather-Wear", {"wearable.accuweather.com"},
       /*device_specific=*/false},
      {"Strava-Wear", {"wear.strava.com"}, /*device_specific=*/false},
      {"Runtastic-Wear", {"wear.runtastic.com"}, /*device_specific=*/false},
  };
  return kSignatures;
}

}  // namespace wearscope::appdb
