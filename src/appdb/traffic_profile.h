// Per-app-class traffic behaviour parameters.
//
// These profiles encode the qualitative behaviours the paper attributes to
// app classes (§5): notification apps make many tiny transactions; messaging
// and streaming apps move orders of magnitude more bytes per usage; payment
// apps perform micro-interactions; health apps prefer WiFi for bulk sync.
// The parameters are calibration targets for Fig. 3(c) (3 KB median
// transaction, 80% < 10 KB) and Fig. 7 (per-usage transactions vs data).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace wearscope::appdb {

/// Behavioural classes of wearable/smartphone apps.
enum class ProfileKind : std::uint8_t {
  kNotification = 0,   ///< Messenger, Outlook, MMS: frequent tiny pushes.
  kWeatherPoll,        ///< Weather apps: periodic small forecast fetches.
  kPayment,            ///< Tap-and-go payments: rare, tiny, bursty.
  kMessagingMedia,     ///< WhatsApp, Snapchat, Viber: chat + media blobs.
  kStreaming,          ///< Deezer, Spotify, Netflix, YouTube: bulk media.
  kBrowsing,           ///< Social/news/shopping feeds: medium pages.
  kMaps,               ///< Navigation: tile/route bursts while moving.
  kSync,               ///< Dropbox, OneDrive, S-Health: periodic sync.
  kVoiceAssistant,     ///< S-Voice, Google App: short query round-trips.
};

/// Number of profile kinds.
inline constexpr std::size_t kProfileKindCount = 9;

/// Probabilities that one transaction of an app goes to each third-party
/// service class instead of the app's first-party servers (paper Fig. 8).
struct ThirdPartyMix {
  double utilities = 0.0;    ///< CDNs and generic infrastructure.
  double advertising = 0.0;  ///< Ad networks.
  double analytics = 0.0;    ///< Analytics/telemetry services.

  /// Fraction of transactions left for first-party servers.
  [[nodiscard]] constexpr double application() const noexcept {
    return 1.0 - utilities - advertising - analytics;
  }
};

/// Stochastic traffic parameters of one behavioural class.
struct TrafficProfile {
  ProfileKind kind = ProfileKind::kNotification;
  /// Mean number of usages in one active hour (Poisson, >= one forced
  /// usage when the app is selected for the hour).
  double usages_per_active_hour = 1.0;
  /// Mean transactions within one usage (geometric-ish via Poisson + 1).
  double transactions_per_usage = 3.0;
  /// Mean gap between transactions inside a usage, seconds (< 60 so the
  /// paper's sessionization rule reconstructs usages).
  double intra_usage_gap_s = 8.0;
  /// Log-scale location of the per-transaction byte volume (lognormal).
  double bytes_log_mu = 8.0;
  /// Log-scale spread of the per-transaction byte volume.
  double bytes_log_sigma = 1.0;
  /// Fraction of a transaction's bytes flowing uplink.
  double uplink_fraction = 0.15;
  /// Mean transaction duration in milliseconds (exponential).
  double duration_mean_ms = 350.0;
  /// Fraction of transactions using plain HTTP (rest are HTTPS+SNI).
  double http_fraction = 0.05;
  /// Third-party service traffic mix.
  ThirdPartyMix third_party;
};

/// The built-in profile table for `kind`.
const TrafficProfile& profile_for(ProfileKind kind) noexcept;

/// Display name of a profile kind (for reports/tests).
std::string_view profile_kind_name(ProfileKind kind) noexcept;

}  // namespace wearscope::appdb
