// The application knowledge base.
//
// Contains the 50 apps named in the paper's Fig. 5 (anonymized names kept as
// printed: News-App-1, Bank-App-2, ...) with their Google-Play categories,
// behavioural traffic profiles and first-party domains, plus a configurable
// "long tail" of minor apps that (a) lets per-user install counts exceed 100
// as observed in §4.3, (b) reconciles Fig. 5's per-app ranking with Fig. 6's
// per-category ranking (categories aggregate many apps below the top-50),
// and (c) produces realistic unknown-domain fallout for the signature table.
//
// The catalog is shared knowledge: the generator draws behaviour from it and
// the analysis builds its signature table from it (minus the deliberately
// unmapped tail), mirroring how the authors built mappings from lab
// experiments and Androlyzer rather than from the ISP's ground truth.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "appdb/categories.h"
#include "appdb/traffic_profile.h"

namespace wearscope::appdb {

/// Index of an app within its catalog.
using AppId = std::uint32_t;

/// Static description of one application.
struct AppInfo {
  AppId id = 0;
  std::string name;             ///< Figure label, e.g. "Samsung-Pay".
  Category category = Category::kTools;
  ProfileKind profile = ProfileKind::kNotification;
  /// Relative likelihood of being installed on a wearable (drives Fig. 5a).
  double popularity_weight = 1.0;
  /// Multiplier on the chance the app is used on a given active day
  /// (notification apps run daily; travel apps only occasionally).
  double daily_use_multiplier = 1.0;
  /// True for apps that defer bulk traffic to WiFi (paper §5.1 notes
  /// Health & Fitness apps sync over WiFi, depressing their cellular rank).
  bool wifi_preferred = false;
  /// First-party domains (the "Application" class of Fig. 8).
  std::vector<std::string> domains;
  /// False for long-tail apps deliberately absent from the curated
  /// signature table (unknown traffic in the analysis).
  bool in_signature_table = true;
};

/// The full application catalog: 50 named apps + generated long tail.
class AppCatalog {
 public:
  /// Builds the catalog with `long_tail_count` minor apps appended after
  /// the 50 named ones. Half of the tail is signature-mapped.
  explicit AppCatalog(std::size_t long_tail_count = 150);

  /// All apps, ordered by descending popularity (named apps first, in the
  /// exact Fig. 5(a) order).
  [[nodiscard]] std::span<const AppInfo> apps() const noexcept {
    return apps_;
  }

  /// Number of apps.
  [[nodiscard]] std::size_t size() const noexcept { return apps_.size(); }

  /// App by id (id == index).
  [[nodiscard]] const AppInfo& app(AppId id) const { return apps_.at(id); }

  /// Case-sensitive name lookup; nullopt when absent.
  [[nodiscard]] std::optional<AppId> find_by_name(std::string_view name) const;

  /// Number of named (paper Fig. 5) apps at the front of apps().
  [[nodiscard]] static constexpr std::size_t named_app_count() { return 50; }

  /// Install-popularity weights, index-aligned with apps().
  [[nodiscard]] const std::vector<double>& popularity_weights() const noexcept {
    return popularity_weights_;
  }

 private:
  std::vector<AppInfo> apps_;
  std::vector<double> popularity_weights_;
};

/// Signature of a Through-Device wearable in smartphone-relayed traffic
/// (paper §6): either a device vendor's cloud endpoints (Fitbit, Xiaomi) or
/// the wearable-specific endpoints of companion apps (AccuWeather, Strava,
/// Runtastic).
struct CompanionSignature {
  std::string wearable;             ///< e.g. "Fitbit", "Xiaomi-Band".
  std::vector<std::string> domains; ///< Domains only wearable owners hit.
  bool device_specific = true;      ///< False for app-level fingerprints.
};

/// The built-in through-device fingerprint list used in the conclusion.
std::span<const CompanionSignature> companion_signatures();

}  // namespace wearscope::appdb
