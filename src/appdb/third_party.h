// Third-party service domains (paper §5.2, Fig. 8).
//
// The paper classifies transaction endpoints into four classes following
// Seneviratne et al. [17]: Application (first-party), Utilities (CDNs and
// generic infrastructure), Advertising (ad networks) and Analytics
// (telemetry/audience services).  This header provides the shared domain
// pools: the generator draws third-party endpoints from them, and the
// analysis classifies domains against them.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace wearscope::appdb {

/// Endpoint classes of one HTTP(S) transaction (Fig. 8 x-axis).
enum class TransactionClass : std::uint8_t {
  kApplication = 0,  ///< First-party app servers.
  kUtilities,        ///< CDNs / generic infrastructure.
  kAdvertising,      ///< Ad networks.
  kAnalytics,        ///< Analytics and telemetry services.
};

/// Number of transaction classes.
inline constexpr std::size_t kTransactionClassCount = 4;

/// Display name matching the figure labels.
std::string_view transaction_class_name(TransactionClass c) noexcept;

/// Registrable domains of content-delivery networks and generic
/// infrastructure providers (the "Utilities" class).
std::span<const std::string_view> utility_domains() noexcept;

/// Registrable domains of advertisement networks.
std::span<const std::string_view> advertising_domains() noexcept;

/// Registrable domains of analytics/telemetry services.
std::span<const std::string_view> analytics_domains() noexcept;

}  // namespace wearscope::appdb
