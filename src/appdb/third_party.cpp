#include "appdb/third_party.h"

#include <array>

namespace wearscope::appdb {

namespace {

constexpr std::array<std::string_view, 10> kUtilities = {
    "akamaiedge.net",    "akamaitechnologies.com", "cloudfront.net",
    "fastly.net",        "edgekey.net",            "googleusercontent.com",
    "gstatic.com",       "amazonaws.com",          "azureedge.net",
    "cdn77.org"};

constexpr std::array<std::string_view, 10> kAdvertising = {
    "doubleclick.net",  "googlesyndication.com", "googleadservices.com",
    "adnxs.com",        "admob.com",             "mopub.com",
    "inmobi.com",       "smartadserver.com",     "criteo.com",
    "adcolony.com"};

constexpr std::array<std::string_view, 10> kAnalytics = {
    "google-analytics.com", "crashlytics.com",  "flurry.com",
    "appsflyer.com",        "mixpanel.com",     "adjust.com",
    "scorecardresearch.com", "branch.io",       "amplitude.com",
    "newrelic.com"};

constexpr std::array<std::string_view, kTransactionClassCount> kClassNames = {
    "Application", "Utilities", "Advertising", "Analytics"};

}  // namespace

std::string_view transaction_class_name(TransactionClass c) noexcept {
  return kClassNames[static_cast<std::size_t>(c)];
}

std::span<const std::string_view> utility_domains() noexcept {
  return kUtilities;
}

std::span<const std::string_view> advertising_domains() noexcept {
  return kAdvertising;
}

std::span<const std::string_view> analytics_domains() noexcept {
  return kAnalytics;
}

}  // namespace wearscope::appdb
