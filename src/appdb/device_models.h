// Device-model catalog with IMEI Type Allocation Codes.
//
// Mirrors the ISP Device database of §3.1/§3.2: every commercial model has
// one or more 8-digit TACs; the DB maps TAC -> (model, manufacturer, OS)
// but does NOT carry a "wearable" flag — deciding which models are
// SIM-enabled wearables is the analyst's job (core::DeviceClassifier keeps
// the curated model list, exactly as the authors prepared one).
//
// The ground-truth class here is used only by the generator to decide which
// population segment carries which device.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "trace/records.h"

namespace wearscope::appdb {

/// Ground-truth device segment (generator-side only; never in the logs).
enum class DeviceClass : std::uint8_t {
  kSimWearable = 0,  ///< Stand-alone cellular smartwatch.
  kSmartphone,
  kFeaturePhone,
  kTablet,
  kM2mModule,        ///< Telemetry modem (classification-noise realism).
};

/// One commercial device model.
struct DeviceModel {
  std::string model;         ///< e.g. "Gear S3 frontier LTE".
  std::string manufacturer;  ///< e.g. "Samsung".
  std::string os;            ///< e.g. "Tizen".
  DeviceClass device_class = DeviceClass::kSmartphone;
  std::vector<trace::Tac> tacs;  ///< TACs allocated to this model.
  /// Relative market share within its class (drives generator sampling).
  double market_share = 1.0;
};

/// The built-in device-model catalog.
class DeviceModelCatalog {
 public:
  /// `include_apple_watch` adds the Apple Watch Series 3 Cellular to the
  /// catalog (and hence the DeviceDB); by default the operator does not
  /// carry it (paper §3.2), so the model exists only on the analysts'
  /// curated list.
  explicit DeviceModelCatalog(bool include_apple_watch = false);

  /// TAC allocated to the Apple Watch Series 3 when included.
  static constexpr trace::Tac kAppleWatchTac = 35274501;

  /// All models.
  [[nodiscard]] std::span<const DeviceModel> models() const noexcept {
    return models_;
  }

  /// Models restricted to one ground-truth class.
  [[nodiscard]] std::vector<const DeviceModel*> models_of(
      DeviceClass c) const;

  /// Ground truth: the class owning `tac`; nullopt for unknown TACs.
  [[nodiscard]] std::optional<DeviceClass> class_of_tac(trace::Tac tac) const;

  /// Model owning `tac`; nullptr when unknown.
  [[nodiscard]] const DeviceModel* model_of_tac(trace::Tac tac) const;

  /// Renders the catalog as DeviceDB rows (one per TAC) — what the ISP's
  /// Device database exposes to the analysis.
  [[nodiscard]] std::vector<trace::DeviceRecord> to_device_records() const;

 private:
  std::vector<DeviceModel> models_;
};

}  // namespace wearscope::appdb
