// Daily human-mobility model.
//
// Each (user, day) gets an itinerary of sector visits: overnight at the home
// sector, a weekday commute to the work sector (producing the 6-9 am /
// 4-8 pm bumps of Fig. 3a), errands within the user's roaming radius, and
// occasional inter-city trips.  Wearable owners receive larger radii
// (Fig. 4c: ~2x max displacement, +70% location entropy).
//
// The itinerary serves two consumers: MME record emission, and locating the
// user when a transaction must be stamped with a position.
#pragma once

#include <vector>

#include "simnet/config.h"
#include "simnet/geography.h"
#include "simnet/population.h"
#include "trace/records.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace wearscope::simnet {

/// One stay at a sector, starting at an absolute timestamp.
struct ItineraryLeg {
  util::SimTime start = 0;
  trace::SectorId sector = 0;
};

/// A whole day's sequence of stays (legs are start-ordered; each lasts
/// until the next leg or midnight).
struct DayItinerary {
  int day = 0;
  std::vector<ItineraryLeg> legs;

  /// Sector the user occupies at absolute time `t` (clamps to the first
  /// leg before its start). Requires at least one leg.
  [[nodiscard]] trace::SectorId sector_at(util::SimTime t) const;

  /// Distinct sectors visited.
  [[nodiscard]] std::vector<trace::SectorId> distinct_sectors() const;
};

/// Builds itineraries and MME logs.
class MobilityModel {
 public:
  MobilityModel(const SimConfig& config, const Geography& geography);

  /// Deterministic itinerary for (subscriber, day); forked off `rng`.
  [[nodiscard]] DayItinerary build_day(const Subscriber& sub, int day,
                                       util::Pcg32& rng) const;

  /// Appends the MME events of `itinerary` for the device `tac` of `sub`
  /// to `out`: an attach on the first leg, a handover per sector change,
  /// and periodic tracking-area updates (TAU keep-alives) every
  /// `tau_interval_s` of stationary dwell, as a real MME would log.
  void emit_mme(const DayItinerary& itinerary, const Subscriber& sub,
                trace::Tac tac, std::vector<trace::MmeRecord>& out,
                util::SimTime tau_interval_s = 6 * util::kSecondsPerHour) const;

  /// Max displacement (km) across the itinerary's sectors — ground-truth
  /// counterpart of the Fig. 4c metric (used in calibration tests only).
  [[nodiscard]] double max_displacement_km(const DayItinerary& it) const;

 private:
  const SimConfig* config_;
  const Geography* geography_;
};

}  // namespace wearscope::simnet
