// Per-day traffic generation.
//
// Wearable side: decides registration (MME presence), daily activity, the
// day's app set ("93% run only one app per day"), per-hour usages and the
// transactions inside each usage (inter-transaction gaps < 60 s so the
// paper's sessionization recovers usages).  Endpoints are drawn from the
// app's first-party domains or its third-party mix (CDN/ads/analytics).
//
// Phone side: coarser foreground-traffic records calibrated so wearable
// owners produce +26% data / +48% transactions vs control users (Fig. 4a)
// and the wearable/total volume ratio sits near 1e-3 (Fig. 4b).  Phones of
// fingerprintable Through-Device users additionally emit companion-app
// sync traffic (conclusion §6).
#pragma once

#include <vector>

#include "appdb/app_catalog.h"
#include "simnet/config.h"
#include "simnet/mobility.h"
#include "simnet/population.h"
#include "trace/records.h"
#include "util/rng.h"

namespace wearscope::simnet {

/// Cheap per-day decisions shared by the summary pass (five months) and the
/// detailed pass (last weeks): both must agree on who registers and who
/// transacts, so both derive from the same forked RNG stream.
struct WearableDayPlan {
  bool registered = false;  ///< Appears in the MME log today.
  bool active = false;      ///< Generates at least one transaction today.
  std::vector<int> active_hours;  ///< Hours of day with usage (if active).
};

/// Generates wearable and phone traffic records.
class TrafficModel {
 public:
  TrafficModel(const SimConfig& config, const appdb::AppCatalog& apps);

  /// Deterministic day plan for a wearable owner. `rng` must be the
  /// canonical (user, day) plan stream (see Simulator).
  [[nodiscard]] WearableDayPlan plan_wearable_day(const Subscriber& sub,
                                                  int day,
                                                  util::Pcg32& rng) const;

  /// Materializes the wearable's proxy transactions for an active day.
  void generate_wearable_day(const Subscriber& sub,
                             const WearableDayPlan& plan,
                             const DayItinerary& itinerary, util::Pcg32& rng,
                             std::vector<trace::ProxyRecord>& out) const;

  /// Materializes the smartphone's proxy transactions for one day.
  void generate_phone_day(const Subscriber& sub, int day,
                          const DayItinerary& itinerary, util::Pcg32& rng,
                          std::vector<trace::ProxyRecord>& out) const;

  /// Per-user mean active hours per day (Fig. 3b mixture; exposed for
  /// calibration tests).
  [[nodiscard]] double mean_active_hours_of(const Subscriber& sub) const;

 private:
  /// Emits the transactions of one app usage starting at `start`; stops
  /// at `end_limit` (the day boundary) so a late usage cannot bleed into
  /// the next day's activity accounting.
  void emit_usage(const Subscriber& sub, const appdb::AppInfo& app,
                  util::SimTime start, util::SimTime end_limit,
                  double intensity, trace::Tac tac, util::Pcg32& rng,
                  std::vector<trace::ProxyRecord>& out) const;

  /// Picks today's distinct wearable app set.
  [[nodiscard]] std::vector<appdb::AppId> pick_day_apps(
      const Subscriber& sub, util::Pcg32& rng) const;

  /// Draws one endpoint host (+ optional path) for a transaction of `app`.
  struct Endpoint {
    std::string host;
    std::string path;
    bool is_http = false;
    double bytes_scale = 1.0;
  };
  [[nodiscard]] Endpoint pick_endpoint(const appdb::AppInfo& app,
                                       util::Pcg32& rng) const;

  const SimConfig* config_;
  const appdb::AppCatalog* apps_;
};

}  // namespace wearscope::simnet
