#include "simnet/config_io.h"

#include <charconv>
#include <fstream>
#include <functional>
#include <map>
#include <ostream>
#include <sstream>

#include "util/error.h"
#include "util/strings.h"

namespace wearscope::simnet {

namespace {

/// One serializable knob: a printer and a parser bound to a SimConfig field.
struct Knob {
  std::function<std::string(const SimConfig&)> print;
  std::function<void(SimConfig&, std::string_view)> parse;
};

template <typename T>
T parse_number(std::string_view text, const std::string& key) {
  if constexpr (std::is_floating_point_v<T>) {
    try {
      std::size_t used = 0;
      const double v = std::stod(std::string(text), &used);
      util::require(used == text.size(), "trailing characters");
      return static_cast<T>(v);
    } catch (const std::exception&) {
      throw util::ParseError("config: bad numeric value for '" + key + "': " +
                             std::string(text));
    }
  } else {
    T v{};
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), v);
    if (ec != std::errc{} || ptr != text.data() + text.size()) {
      throw util::ParseError("config: bad integer value for '" + key + "': " +
                             std::string(text));
    }
    return v;
  }
}

template <typename T>
Knob make_knob(T SimConfig::* field, const std::string& key) {
  Knob k;
  k.print = [field](const SimConfig& c) {
    if constexpr (std::is_floating_point_v<T>) {
      std::ostringstream os;
      os << c.*field;
      return os.str();
    } else {
      return std::to_string(c.*field);
    }
  };
  k.parse = [field, key](SimConfig& c, std::string_view text) {
    c.*field = parse_number<T>(text, key);
  };
  return k;
}

/// Ordered knob table (order defines the file layout).
const std::vector<std::pair<std::string, Knob>>& knob_table() {
  static const std::vector<std::pair<std::string, Knob>> table = {
      {"seed", make_knob(&SimConfig::seed, "seed")},
      {"threads", make_knob(&SimConfig::threads, "threads")},
      {"wearable_users", make_knob(&SimConfig::wearable_users, "wearable_users")},
      {"control_users", make_knob(&SimConfig::control_users, "control_users")},
      {"through_device_users",
       make_knob(&SimConfig::through_device_users, "through_device_users")},
      {"observation_days",
       make_knob(&SimConfig::observation_days, "observation_days")},
      {"detailed_days", make_knob(&SimConfig::detailed_days, "detailed_days")},
      {"cities", make_knob(&SimConfig::cities, "cities")},
      {"sectors_per_city",
       make_knob(&SimConfig::sectors_per_city, "sectors_per_city")},
      {"country_lat", make_knob(&SimConfig::country_lat, "country_lat")},
      {"country_lon", make_knob(&SimConfig::country_lon, "country_lon")},
      {"country_extent_deg",
       make_knob(&SimConfig::country_extent_deg, "country_extent_deg")},
      {"monthly_growth", make_knob(&SimConfig::monthly_growth, "monthly_growth")},
      {"churn_fraction", make_knob(&SimConfig::churn_fraction, "churn_fraction")},
      {"daily_register_prob",
       make_knob(&SimConfig::daily_register_prob, "daily_register_prob")},
      {"silent_user_fraction",
       make_knob(&SimConfig::silent_user_fraction, "silent_user_fraction")},
      {"mean_active_days_per_week",
       make_knob(&SimConfig::mean_active_days_per_week,
                 "mean_active_days_per_week")},
      {"mean_active_hours",
       make_knob(&SimConfig::mean_active_hours, "mean_active_hours")},
      {"wearable_txn_per_hour",
       make_knob(&SimConfig::wearable_txn_per_hour, "wearable_txn_per_hour")},
      {"phone_txn_per_day",
       make_knob(&SimConfig::phone_txn_per_day, "phone_txn_per_day")},
      {"phone_bytes_log_mu",
       make_knob(&SimConfig::phone_bytes_log_mu, "phone_bytes_log_mu")},
      {"phone_bytes_log_sigma",
       make_knob(&SimConfig::phone_bytes_log_sigma, "phone_bytes_log_sigma")},
      {"owner_data_multiplier",
       make_knob(&SimConfig::owner_data_multiplier, "owner_data_multiplier")},
      {"owner_txn_multiplier",
       make_knob(&SimConfig::owner_txn_multiplier, "owner_txn_multiplier")},
      {"commute_log_mu_km",
       make_knob(&SimConfig::commute_log_mu_km, "commute_log_mu_km")},
      {"commute_log_sigma",
       make_knob(&SimConfig::commute_log_sigma, "commute_log_sigma")},
      {"owner_mobility_multiplier",
       make_knob(&SimConfig::owner_mobility_multiplier,
                 "owner_mobility_multiplier")},
      {"trip_probability",
       make_knob(&SimConfig::trip_probability, "trip_probability")},
      {"home_user_fraction",
       make_knob(&SimConfig::home_user_fraction, "home_user_fraction")},
      {"apps_log_mu", make_knob(&SimConfig::apps_log_mu, "apps_log_mu")},
      {"apps_log_sigma", make_knob(&SimConfig::apps_log_sigma, "apps_log_sigma")},
      {"extra_apps_per_day",
       make_knob(&SimConfig::extra_apps_per_day, "extra_apps_per_day")},
      {"long_tail_apps", make_knob(&SimConfig::long_tail_apps, "long_tail_apps")},
      {"fingerprintable_fraction",
       make_knob(&SimConfig::fingerprintable_fraction,
                 "fingerprintable_fraction")},
      {"apple_watch_launch_day",
       make_knob(&SimConfig::apple_watch_launch_day,
                 "apple_watch_launch_day")},
      {"launch_adoption_boost",
       make_knob(&SimConfig::launch_adoption_boost, "launch_adoption_boost")},
      {"apple_watch_share",
       make_knob(&SimConfig::apple_watch_share, "apple_watch_share")},
      {"launch_extra_adopters",
       make_knob(&SimConfig::launch_extra_adopters, "launch_extra_adopters")},
  };
  return table;
}

}  // namespace

void write_config(const SimConfig& cfg, std::ostream& out) {
  out << "# wearscope generator configuration\n"
      << "# (see src/simnet/config.h for the paper claim behind each knob)\n";
  for (const auto& [key, knob] : knob_table()) {
    out << key << " = " << knob.print(cfg) << '\n';
  }
}

SimConfig read_config(std::istream& in) {
  std::map<std::string, const Knob*> index;
  for (const auto& [key, knob] : knob_table()) index.emplace(key, &knob);

  SimConfig cfg;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::string_view trimmed = util::trim(line);
    if (trimmed.empty()) continue;
    const auto eq = trimmed.find('=');
    if (eq == std::string_view::npos) {
      throw util::ParseError("config line " + std::to_string(line_no) +
                             ": expected 'key = value'");
    }
    const std::string key{util::trim(trimmed.substr(0, eq))};
    const std::string_view value = util::trim(trimmed.substr(eq + 1));
    const auto it = index.find(key);
    if (it == index.end()) {
      throw util::ParseError("config line " + std::to_string(line_no) +
                             ": unknown key '" + key + "'");
    }
    it->second->parse(cfg, value);
  }
  cfg.validate();
  return cfg;
}

void save_config_file(const SimConfig& cfg,
                      const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out) throw util::IoError("cannot open config for writing: " +
                                path.string());
  write_config(cfg, out);
  out.flush();
  if (!out) throw util::IoError("config write failed: " + path.string());
}

SimConfig load_config_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw util::IoError("cannot open config: " + path.string());
  return read_config(in);
}

}  // namespace wearscope::simnet
