// Hour-of-day activity weights (Fig. 3a calibration).
//
// Weekdays show commute bumps at 6-9 am and 4-8 pm; weekends flatten the
// morning bump and shift activity later.  Wearable curves differ from
// smartphone curves in the evenings/weekends (the paper observes the
// *relative* wearable share is higher there).
#pragma once

#include <array>
#include <span>

namespace wearscope::simnet {

/// 24 relative weights (not normalized) of activity for each hour.
using HourWeights = std::array<double, 24>;

/// Wearable activity weights for weekdays.
const HourWeights& wearable_weekday_weights() noexcept;
/// Wearable activity weights for weekends.
const HourWeights& wearable_weekend_weights() noexcept;
/// Smartphone activity weights for weekdays.
const HourWeights& phone_weekday_weights() noexcept;
/// Smartphone activity weights for weekends.
const HourWeights& phone_weekend_weights() noexcept;

/// Convenience dispatch on device kind and day kind.
const HourWeights& hour_weights(bool wearable, bool weekend) noexcept;

}  // namespace wearscope::simnet
