// Subscriber population: who owns which devices, when they adopted them,
// how engaged and how mobile they are, and which apps they installed.
//
// All per-user parameters are ground truth internal to the generator; the
// analysis pipeline must rediscover the aggregate statistics from the logs.
#pragma once

#include <cstdint>
#include <vector>

#include "appdb/app_catalog.h"
#include "appdb/device_models.h"
#include "simnet/config.h"
#include "simnet/geography.h"
#include "trace/records.h"
#include "util/rng.h"

namespace wearscope::simnet {

/// Population segment of a subscriber.
enum class Segment : std::uint8_t {
  kWearableOwner = 0,  ///< Smartphone + SIM-enabled wearable.
  kControl,            ///< Smartphone only (the "remaining customers").
  kThroughDevice,      ///< Smartphone + Bluetooth-tethered wearable.
};

/// One subscriber with all generator-side ground truth.
struct Subscriber {
  trace::UserId user_id = 0;
  Segment segment = Segment::kControl;

  // Devices.
  trace::Tac phone_tac = 0;
  trace::Tac wearable_tac = 0;  ///< 0 unless segment == kWearableOwner.
  /// Index into appdb::companion_signatures() for fingerprintable
  /// Through-Device users; -1 otherwise.
  int companion_signature = -1;

  // Adoption & churn (wearable owners; day indexes into the observation
  // window).  adoption_day <= 0 means "owned before the window started".
  int adoption_day = 0;
  int churn_day = 1 << 30;  ///< Day the wearable goes dark (INT-ish max).

  // Wearable cellular capability/behaviour.
  bool silent = false;        ///< Registers but never transacts (§4.1).
  bool home_user = false;     ///< Transacts from a single anchor (§4.4).
  double engagement = 1.0;    ///< Scales wearable activity (days/hours/txns).
  double phone_engagement = 1.0;  ///< Scales smartphone traffic (unit mean).
  double tech_multiplier = 1.0;  ///< Owners' demographics boost (§4.3).

  // Mobility anchors.
  std::uint32_t home_city = 0;
  trace::SectorId home_sector = 0;
  trace::SectorId work_sector = 0;
  std::vector<trace::SectorId> errand_sectors;
  double mobility_level = 1.0;  ///< Scales errand/trip radii.

  // Installed Internet-capable apps (wearable side / phone side).
  std::vector<appdb::AppId> wearable_apps;
  std::vector<appdb::AppId> phone_apps;

  /// Per-user RNG stream key (derived once, reused per day).
  std::uint64_t rng_key = 0;

  /// True when the wearable is adopted and not yet churned on `day`.
  [[nodiscard]] bool wearable_alive(int day) const noexcept {
    return segment == Segment::kWearableOwner && day >= adoption_day &&
           day < churn_day;
  }
};

/// Builds the full population deterministically from the config.
class Population {
 public:
  Population(const SimConfig& config, const Geography& geography,
             const appdb::AppCatalog& apps,
             const appdb::DeviceModelCatalog& devices, util::Pcg32 rng);

  /// All subscribers; wearable owners first, then control, then
  /// through-device.
  [[nodiscard]] const std::vector<Subscriber>& subscribers() const noexcept {
    return subscribers_;
  }

  /// Subscribers of one segment (spans into subscribers()).
  [[nodiscard]] std::vector<const Subscriber*> of_segment(Segment s) const;

 private:
  void build_wearable_owner(Subscriber& sub, const SimConfig& config,
                            const Geography& geography,
                            const appdb::AppCatalog& apps, util::Pcg32& rng);
  void assign_mobility(Subscriber& sub, double radius_multiplier,
                       const Geography& geography, util::Pcg32& rng);

  const SimConfig* config_ = nullptr;
  std::vector<appdb::AppId> sample_apps(const appdb::AppCatalog& apps,
                                        std::size_t count, util::Pcg32& rng);

  std::vector<Subscriber> subscribers_;
  util::DiscreteSampler app_sampler_;
  std::vector<const appdb::DeviceModel*> wearable_models_;
  std::vector<const appdb::DeviceModel*> phone_models_;
  util::DiscreteSampler wearable_model_sampler_;
  util::DiscreteSampler phone_model_sampler_;
};

}  // namespace wearscope::simnet
