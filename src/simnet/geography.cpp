#include "simnet/geography.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace wearscope::simnet {

Geography::Geography(const SimConfig& config, util::Pcg32 rng) {
  const auto n_cities = config.cities;
  cities_.reserve(n_cities);

  // Place city centres uniformly in the country box but keep a minimum
  // spacing so inter-city trips register as large displacements.
  const double min_spacing_deg = config.country_extent_deg /
                                 (2.0 * std::sqrt(static_cast<double>(n_cities)));
  for (std::uint32_t c = 0; c < n_cities; ++c) {
    util::GeoPoint center;
    for (int attempt = 0; attempt < 64; ++attempt) {
      center.lat_deg =
          config.country_lat + rng.uniform(0.0, config.country_extent_deg);
      center.lon_deg =
          config.country_lon + rng.uniform(0.0, config.country_extent_deg);
      const bool clear = std::all_of(
          cities_.begin(), cities_.end(), [&](const City& other) {
            return std::abs(other.center.lat_deg - center.lat_deg) +
                       std::abs(other.center.lon_deg - center.lon_deg) >
                   min_spacing_deg;
          });
      if (clear) break;
    }
    City city;
    city.id = c;
    city.center = center;
    // Zipf population by rank; the capital dominates.
    city.population_weight = 1.0 / static_cast<double>(c + 1);
    city.radius_km = 4.0 + 10.0 * city.population_weight;
    cities_.push_back(std::move(city));
  }

  // Sector count per city scales with population weight (at least 2).
  trace::SectorId next_id = 1;
  for (City& city : cities_) {
    const auto count = std::max<std::uint32_t>(
        2, static_cast<std::uint32_t>(std::lround(
               static_cast<double>(config.sectors_per_city) * 2.0 *
               city.population_weight)));
    for (std::uint32_t s = 0; s < count; ++s) {
      // Denser towards the centre: radius ~ sqrt-biased draw.
      const double r = city.radius_km * std::sqrt(rng.next_double());
      const double bearing = rng.uniform(0.0, 360.0);
      trace::SectorInfo sector;
      sector.sector_id = next_id++;
      sector.position = util::destination(city.center, bearing, r);
      city.sector_ids.push_back(sector.sector_id);
      sector_city_.push_back(city.id);
      sectors_.push_back(sector);
    }
  }

  std::vector<double> weights;
  weights.reserve(cities_.size());
  for (const City& c : cities_) weights.push_back(c.population_weight);
  city_sampler_ = util::DiscreteSampler(weights);
}

const util::GeoPoint& Geography::sector_position(trace::SectorId id) const {
  util::require(id >= 1 && id <= sectors_.size(),
                "geography: unknown sector id");
  return sectors_[id - 1].position;
}

const City& Geography::city_of_sector(trace::SectorId id) const {
  util::require(id >= 1 && id <= sectors_.size(),
                "geography: unknown sector id");
  return cities_[sector_city_[id - 1]];
}

std::uint32_t Geography::sample_city(util::Pcg32& rng) const {
  return static_cast<std::uint32_t>(city_sampler_.sample(rng));
}

trace::SectorId Geography::sample_sector_in_city(std::uint32_t city_id,
                                                 util::Pcg32& rng) const {
  const City& city = cities_.at(city_id);
  const auto idx = static_cast<std::size_t>(rng.uniform_int(
      0, static_cast<std::int64_t>(city.sector_ids.size()) - 1));
  return city.sector_ids[idx];
}

trace::SectorId Geography::sample_sector_near(std::uint32_t city_id,
                                              const util::GeoPoint& anchor,
                                              double radius_km,
                                              util::Pcg32& rng) const {
  const City& city = cities_.at(city_id);
  std::vector<trace::SectorId> close;
  for (const trace::SectorId id : city.sector_ids) {
    if (util::haversine_km(sector_position(id), anchor) <= radius_km)
      close.push_back(id);
  }
  if (!close.empty()) {
    const auto idx = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(close.size()) - 1));
    return close[idx];
  }
  // Fall back to the nearest sector of the city.
  trace::SectorId best = city.sector_ids.front();
  double best_d = util::haversine_km(sector_position(best), anchor);
  for (const trace::SectorId id : city.sector_ids) {
    const double d = util::haversine_km(sector_position(id), anchor);
    if (d < best_d) {
      best = id;
      best_d = d;
    }
  }
  return best;
}

}  // namespace wearscope::simnet
