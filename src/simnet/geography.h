// Synthetic country geography: Zipf-sized cities scattered over a bounding
// box, each covered by antenna sectors whose density follows population.
// Sector positions are what the mobility analyses see (via SectorInfo), so
// displacement distances in kilometres come out geographically meaningful.
#pragma once

#include <cstdint>
#include <vector>

#include "simnet/config.h"
#include "trace/records.h"
#include "util/geo.h"
#include "util/rng.h"

namespace wearscope::simnet {

/// One synthetic city.
struct City {
  std::uint32_t id = 0;
  util::GeoPoint center;
  double population_weight = 1.0;  ///< Zipf by rank.
  double radius_km = 8.0;          ///< Urban radius holding its sectors.
  /// Sector ids belonging to this city (indexes into Geography::sectors).
  std::vector<trace::SectorId> sector_ids;
};

/// The generated radio-access layout.
class Geography {
 public:
  /// Builds cities and sectors deterministically from `config` and `rng`.
  Geography(const SimConfig& config, util::Pcg32 rng);

  /// All cities, most populous first.
  [[nodiscard]] const std::vector<City>& cities() const noexcept {
    return cities_;
  }

  /// All sectors (the antenna database handed to the analysis).
  [[nodiscard]] const std::vector<trace::SectorInfo>& sectors() const noexcept {
    return sectors_;
  }

  /// Position of a sector id (must exist).
  [[nodiscard]] const util::GeoPoint& sector_position(
      trace::SectorId id) const;

  /// City owning a sector id (must exist).
  [[nodiscard]] const City& city_of_sector(trace::SectorId id) const;

  /// Samples a home city proportionally to population.
  [[nodiscard]] std::uint32_t sample_city(util::Pcg32& rng) const;

  /// Samples a sector within city `city_id`.
  [[nodiscard]] trace::SectorId sample_sector_in_city(
      std::uint32_t city_id, util::Pcg32& rng) const;

  /// Samples a sector of `city_id` within `radius_km` of `anchor`;
  /// falls back to the nearest sector when none qualifies.
  [[nodiscard]] trace::SectorId sample_sector_near(
      std::uint32_t city_id, const util::GeoPoint& anchor, double radius_km,
      util::Pcg32& rng) const;

 private:
  std::vector<City> cities_;
  std::vector<trace::SectorInfo> sectors_;
  std::vector<std::uint32_t> sector_city_;  ///< sector idx -> city id
  util::DiscreteSampler city_sampler_;
};

}  // namespace wearscope::simnet
