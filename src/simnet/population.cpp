#include "simnet/population.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/error.h"

namespace wearscope::simnet {

namespace {

/// Share of wearable owners who adopted before the observation window;
/// combined with in-window adoption and churn this yields the paper's
/// +9%-in-5-months registered-user growth (Fig. 2a derivation in DESIGN.md).
constexpr double kPreWindowAdoptionShare = 0.86;

/// Picks a TAC uniformly among a model's allocations.
trace::Tac pick_tac(const appdb::DeviceModel& model, util::Pcg32& rng) {
  const auto idx = static_cast<std::size_t>(rng.uniform_int(
      0, static_cast<std::int64_t>(model.tacs.size()) - 1));
  return model.tacs[idx];
}

}  // namespace

Population::Population(const SimConfig& config, const Geography& geography,
                       const appdb::AppCatalog& apps,
                       const appdb::DeviceModelCatalog& devices,
                       util::Pcg32 rng)
    : config_(&config), app_sampler_(apps.popularity_weights()) {
  wearable_models_ = devices.models_of(appdb::DeviceClass::kSimWearable);
  phone_models_ = devices.models_of(appdb::DeviceClass::kSmartphone);
  util::ensure(!wearable_models_.empty() && !phone_models_.empty(),
               "device catalog lacks wearable or phone models");
  std::vector<double> ws;
  for (const auto* m : wearable_models_) ws.push_back(m->market_share);
  wearable_model_sampler_ = util::DiscreteSampler(ws);
  ws.clear();
  for (const auto* m : phone_models_) ws.push_back(m->market_share);
  phone_model_sampler_ = util::DiscreteSampler(ws);

  const std::size_t total = config.wearable_users + config.control_users +
                            config.through_device_users;
  subscribers_.reserve(total);

  trace::UserId next_id = 1'000'001;
  for (std::size_t i = 0; i < total; ++i) {
    Subscriber sub;
    sub.user_id = next_id++;
    sub.rng_key = util::splitmix64(config.seed ^ (sub.user_id * 0x9E37ULL));
    util::Pcg32 user_rng = rng.fork(sub.rng_key);

    if (i < config.wearable_users) {
      sub.segment = Segment::kWearableOwner;
    } else if (i < config.wearable_users + config.control_users) {
      sub.segment = Segment::kControl;
    } else {
      sub.segment = Segment::kThroughDevice;
    }

    // Everyone has a smartphone (the paper's "remaining customers" are
    // mostly smartphone-equipped).
    sub.phone_tac =
        pick_tac(*phone_models_[phone_model_sampler_.sample(user_rng)],
                 user_rng);

    // Smartphone traffic engagement is independent of wearable engagement
    // (unit mean for every segment; segment multipliers are applied in the
    // traffic model).
    sub.phone_engagement = user_rng.lognormal(-0.28, 0.75);

    // Home city and anchors.
    sub.home_city = geography.sample_city(user_rng);
    sub.home_sector = geography.sample_sector_in_city(sub.home_city, user_rng);

    switch (sub.segment) {
      case Segment::kWearableOwner: {
        build_wearable_owner(sub, config, geography, apps, user_rng);
        break;
      }
      case Segment::kControl: {
        sub.tech_multiplier = 1.0;
        sub.engagement = sub.phone_engagement;
        assign_mobility(sub, 1.0, geography, user_rng);
        break;
      }
      case Segment::kThroughDevice: {
        // "Relatively modern smartphones", behaviour similar to owners.
        sub.tech_multiplier = 1.0 + (config.owner_data_multiplier - 1.0) * 0.8;
        sub.engagement = sub.phone_engagement;
        assign_mobility(sub, config.owner_mobility_multiplier * 0.9, geography,
                        user_rng);
        if (user_rng.bernoulli(config.fingerprintable_fraction)) {
          const auto sigs = appdb::companion_signatures();
          sub.companion_signature = static_cast<int>(user_rng.uniform_int(
              0, static_cast<std::int64_t>(sigs.size()) - 1));
        }
        break;
      }
    }

    // Phone app set (used for phone traffic host selection).
    const auto phone_app_count = static_cast<std::size_t>(std::clamp(
        user_rng.lognormal(3.1, 0.5), 4.0, static_cast<double>(apps.size())));
    sub.phone_apps = sample_apps(apps, phone_app_count, user_rng);

    subscribers_.push_back(std::move(sub));
  }

  // Churn: 7% of the users already present in the first week abandon the
  // wearable during the window (Fig. 2b).
  util::Pcg32 churn_rng = rng.fork(0xC0FFEEULL);
  for (Subscriber& sub : subscribers_) {
    if (sub.segment != Segment::kWearableOwner || sub.adoption_day > 7)
      continue;
    if (churn_rng.bernoulli(config.churn_fraction)) {
      const int lo = config.observation_days / 3;
      const int hi = config.observation_days - 8;
      sub.churn_day = static_cast<int>(churn_rng.uniform_int(lo, hi));
    }
  }
}

void Population::build_wearable_owner(Subscriber& sub, const SimConfig& config,
                                      const Geography& geography,
                                      const appdb::AppCatalog& apps,
                                      util::Pcg32& rng) {
  // Adoption trajectory (Fig. 2a): most owners pre-date the window; the
  // rest arrive uniformly, producing the ~1.5%/month ramp.  With the
  // Apple-Watch-launch scenario enabled, post-launch days attract
  // `launch_adoption_boost` times the adopters (the sharper increase the
  // paper's conclusion anticipates).
  const int launch = config.apple_watch_launch_day;
  if (launch >= 1 && rng.bernoulli(config.launch_extra_adopters)) {
    // New demand created by the launch itself: these users only adopt
    // because the Apple Watch became available.
    sub.adoption_day = static_cast<int>(
        rng.uniform_int(launch, config.observation_days - 1));
  } else if (rng.bernoulli(kPreWindowAdoptionShare)) {
    sub.adoption_day = 0;
  } else if (launch >= 1) {
    const double pre_w = static_cast<double>(launch - 1);
    const double post_w =
        static_cast<double>(config.observation_days - launch) *
        config.launch_adoption_boost;
    if (rng.bernoulli(post_w / std::max(1.0, pre_w + post_w))) {
      sub.adoption_day = static_cast<int>(
          rng.uniform_int(launch, config.observation_days - 1));
    } else {
      sub.adoption_day =
          static_cast<int>(rng.uniform_int(1, std::max(1, launch - 1)));
    }
  } else {
    sub.adoption_day = static_cast<int>(
        rng.uniform_int(1, config.observation_days - 1));
  }

  // Device choice: post-launch adopters may pick the newly supported
  // Apple Watch; everyone else draws from the incumbent catalog.
  if (launch >= 0 && sub.adoption_day >= launch &&
      rng.bernoulli(config.apple_watch_share)) {
    sub.wearable_tac = appdb::DeviceModelCatalog::kAppleWatchTac;
  } else {
    sub.wearable_tac = pick_tac(
        *wearable_models_[wearable_model_sampler_.sample(rng)], rng);
  }

  sub.silent = rng.bernoulli(config.silent_user_fraction);
  sub.home_user = rng.bernoulli(config.home_user_fraction);

  // Engagement: lognormal with unit mean; drives active-day probability
  // and transaction rate.  Heavy users (the 7% active > 10 h/day of
  // Fig. 3b) come from an explicit mixture component.
  sub.engagement = rng.bernoulli(0.10) ? rng.uniform(2.8, 5.5)
                                       : rng.lognormal(-0.245, 0.7);

  // Demographics: owners are the tech-savvy segment (§4.3) — more phone
  // data and transactions than control users.
  sub.tech_multiplier =
      config.owner_data_multiplier * rng.lognormal(-0.02, 0.2);

  // Mobility: owners roam about twice as far (Fig. 4c); the more active
  // hours a user clocks, the farther they range (Fig. 4d).
  const double activity_link = 0.40 + 0.60 * std::min(sub.engagement, 2.5);
  assign_mobility(sub, config.owner_mobility_multiplier * activity_link,
                  geography, rng);

  // Installed Internet-capable wearable apps: mean ~8, 90% < 20, rare
  // >100 (§4.3).
  const auto app_count = static_cast<std::size_t>(std::clamp(
      rng.lognormal(config.apps_log_mu, config.apps_log_sigma), 1.0,
      static_cast<double>(apps.size())));
  sub.wearable_apps = sample_apps(apps, app_count, rng);
}

void Population::assign_mobility(Subscriber& sub, double radius_multiplier,
                                 const Geography& geography,
                                 util::Pcg32& rng) {
  sub.mobility_level = radius_multiplier * rng.lognormal(0.0, 0.28);

  // Work anchor: log-normal commute distance scaled by mobility.
  const double commute_km =
      rng.lognormal(config_->commute_log_mu_km, config_->commute_log_sigma) *
      std::max(0.35, sub.mobility_level);
  const double bearing = rng.uniform(0.0, 360.0);
  const util::GeoPoint home = geography.sector_position(sub.home_sector);
  const util::GeoPoint work_anchor = util::destination(home, bearing, commute_km);
  sub.work_sector = geography.sample_sector_near(sub.home_city, work_anchor,
                                                 4.0, rng);

  // Errand anchors within the roaming radius: roamers accumulate more
  // distinct haunts, which is what drives the +70% location entropy.
  const auto errands = static_cast<std::size_t>(std::clamp<std::int64_t>(
      std::lround(sub.mobility_level * 2.0) + rng.uniform_int(0, 1), 1, 9));
  for (std::size_t e = 0; e < errands; ++e) {
    const double r = rng.exponential(1.0 / (4.0 * std::max(0.35, sub.mobility_level)));
    const util::GeoPoint anchor =
        util::destination(home, rng.uniform(0.0, 360.0), r);
    sub.errand_sectors.push_back(
        geography.sample_sector_near(sub.home_city, anchor, 5.0, rng));
  }
}

std::vector<appdb::AppId> Population::sample_apps(
    const appdb::AppCatalog& apps, std::size_t count, util::Pcg32& rng) {
  count = std::min(count, apps.size());
  std::unordered_set<appdb::AppId> chosen;
  std::vector<appdb::AppId> out;
  out.reserve(count);
  // Rejection sampling over the popularity-weighted alias table; bail into
  // sequential fill if the set is nearly exhausted.
  std::size_t attempts = 0;
  while (out.size() < count && attempts < count * 64) {
    ++attempts;
    const auto id = static_cast<appdb::AppId>(app_sampler_.sample(rng));
    if (chosen.insert(id).second) out.push_back(id);
  }
  for (appdb::AppId id = 0; out.size() < count; ++id) {
    if (chosen.insert(id).second) out.push_back(id);
  }
  return out;
}

std::vector<const Subscriber*> Population::of_segment(Segment s) const {
  std::vector<const Subscriber*> out;
  for (const Subscriber& sub : subscribers_) {
    if (sub.segment == s) out.push_back(&sub);
  }
  return out;
}

}  // namespace wearscope::simnet
