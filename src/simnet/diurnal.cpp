#include "simnet/diurnal.h"

namespace wearscope::simnet {

namespace {

// Hours:                      0    1    2    3    4    5    6    7    8
//                             9   10   11   12   13   14   15   16   17
//                            18   19   20   21   22   23
constexpr HourWeights kWearableWeekday = {
    0.25, 0.15, 0.10, 0.08, 0.10, 0.30, 0.90, 1.40, 1.30,
    1.00, 0.95, 0.95, 1.00, 0.95, 0.90, 0.95, 1.25, 1.45,
    1.40, 1.20, 1.00, 0.80, 0.55, 0.35};

constexpr HourWeights kWearableWeekend = {
    0.35, 0.22, 0.15, 0.10, 0.08, 0.12, 0.30, 0.55, 0.85,
    1.10, 1.20, 1.20, 1.15, 1.10, 1.05, 1.05, 1.10, 1.15,
    1.25, 1.25, 1.15, 1.00, 0.75, 0.50};

constexpr HourWeights kPhoneWeekday = {
    0.30, 0.18, 0.12, 0.10, 0.12, 0.28, 0.70, 1.10, 1.15,
    1.05, 1.00, 1.00, 1.05, 1.00, 0.98, 1.00, 1.10, 1.20,
    1.15, 1.05, 0.95, 0.80, 0.60, 0.40};

constexpr HourWeights kPhoneWeekend = {
    0.38, 0.25, 0.16, 0.12, 0.10, 0.14, 0.30, 0.50, 0.75,
    0.95, 1.05, 1.05, 1.05, 1.00, 0.95, 0.95, 1.00, 1.05,
    1.05, 1.05, 1.00, 0.90, 0.70, 0.48};

}  // namespace

const HourWeights& wearable_weekday_weights() noexcept {
  return kWearableWeekday;
}
const HourWeights& wearable_weekend_weights() noexcept {
  return kWearableWeekend;
}
const HourWeights& phone_weekday_weights() noexcept { return kPhoneWeekday; }
const HourWeights& phone_weekend_weights() noexcept { return kPhoneWeekend; }

const HourWeights& hour_weights(bool wearable, bool weekend) noexcept {
  if (wearable) {
    return weekend ? kWearableWeekend : kWearableWeekday;
  }
  return weekend ? kPhoneWeekend : kPhoneWeekday;
}

}  // namespace wearscope::simnet
