// Plain-text (key = value) persistence of SimConfig, used by the CLI tools
// so that a generation run is fully described by one artifact that can be
// versioned and replayed.
//
// Format: one `key = value` pair per line; `#` starts a comment; unknown
// keys are rejected (typos must not silently fall back to defaults).
#pragma once

#include <filesystem>
#include <iosfwd>
#include <string>

#include "simnet/config.h"

namespace wearscope::simnet {

/// Writes every knob of `cfg` with a short comment per section.
void write_config(const SimConfig& cfg, std::ostream& out);

/// Parses a config written by write_config (or by hand). Starts from the
/// defaults, so partial files are valid. Throws util::ParseError on unknown
/// keys or unparsable values; the result is validate()d before returning.
SimConfig read_config(std::istream& in);

/// File convenience wrappers. Throw util::IoError on filesystem failures.
void save_config_file(const SimConfig& cfg, const std::filesystem::path& path);
SimConfig load_config_file(const std::filesystem::path& path);

}  // namespace wearscope::simnet
