#include "simnet/mobility.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace wearscope::simnet {

namespace {
constexpr util::SimTime kHour = util::kSecondsPerHour;
}

trace::SectorId DayItinerary::sector_at(util::SimTime t) const {
  util::ensure(!legs.empty(), "itinerary has no legs");
  trace::SectorId current = legs.front().sector;
  for (const ItineraryLeg& leg : legs) {
    if (leg.start > t) break;
    current = leg.sector;
  }
  return current;
}

std::vector<trace::SectorId> DayItinerary::distinct_sectors() const {
  std::vector<trace::SectorId> out;
  for (const ItineraryLeg& leg : legs) {
    if (std::find(out.begin(), out.end(), leg.sector) == out.end())
      out.push_back(leg.sector);
  }
  return out;
}

MobilityModel::MobilityModel(const SimConfig& config,
                             const Geography& geography)
    : config_(&config), geography_(&geography) {}

DayItinerary MobilityModel::build_day(const Subscriber& sub, int day,
                                      util::Pcg32& rng) const {
  DayItinerary it;
  it.day = day;
  const util::SimTime base = util::day_start(day);
  const bool weekend = util::is_weekend_day(day);

  it.legs.push_back({base, sub.home_sector});

  // Rare inter-city trip: spend the day in another city.  Scales
  // superlinearly with the roaming level so sedentary users almost never
  // trip while wearable owners do noticeably more often.
  const double trip_p =
      config_->trip_probability *
      std::clamp(sub.mobility_level * sub.mobility_level / 1.5, 0.15, 4.0);
  if (rng.bernoulli(trip_p) && geography_->cities().size() > 1) {
    std::uint32_t dest_city = sub.home_city;
    for (int attempt = 0; attempt < 8 && dest_city == sub.home_city;
         ++attempt) {
      dest_city = geography_->sample_city(rng);
    }
    if (dest_city != sub.home_city) {
      const util::SimTime leave = base + 7 * kHour +
                                  rng.uniform_int(0, 2 * kHour);
      const trace::SectorId there =
          geography_->sample_sector_in_city(dest_city, rng);
      it.legs.push_back({leave, there});
      // Maybe wander within the destination city.
      if (rng.bernoulli(0.5)) {
        it.legs.push_back({leave + 4 * kHour,
                           geography_->sample_sector_in_city(dest_city, rng)});
      }
      const util::SimTime back = base + 19 * kHour +
                                 rng.uniform_int(0, 2 * kHour);
      it.legs.push_back({back, sub.home_sector});
      return it;
    }
  }

  // Commute propensity grows mildly with roaming level: sedentary users
  // stay home more often, widening the owner/control entropy gap.
  const double commute_p =
      std::clamp(0.55 + 0.07 * sub.mobility_level, 0.4, 0.8);
  if (!weekend && rng.bernoulli(commute_p)) {
    // Commuting day: morning leg 6-9 am, return 4-8 pm (Fig. 3a bumps).
    const util::SimTime leave = base + 6 * kHour +
                                rng.uniform_int(0, 3 * kHour);
    it.legs.push_back({leave, sub.work_sector});
    // Lunchtime errand near work occasionally.
    if (!sub.errand_sectors.empty() && rng.bernoulli(0.25)) {
      const auto idx = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(sub.errand_sectors.size()) - 1));
      it.legs.push_back({base + 12 * kHour + rng.uniform_int(0, kHour),
                         sub.errand_sectors[idx]});
      it.legs.push_back({base + 13 * kHour + rng.uniform_int(0, kHour),
                         sub.work_sector});
    }
    const util::SimTime back = base + 16 * kHour +
                               rng.uniform_int(0, 4 * kHour);
    // Evening errand on the way home (roamers stop by more often).
    const double evening_errand_p =
        std::clamp(0.06 + 0.13 * sub.mobility_level, 0.0, 0.55);
    if (!sub.errand_sectors.empty() && rng.bernoulli(evening_errand_p)) {
      const auto idx = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(sub.errand_sectors.size()) - 1));
      it.legs.push_back({back, sub.errand_sectors[idx]});
      it.legs.push_back({back + kHour + rng.uniform_int(0, kHour),
                         sub.home_sector});
    } else {
      it.legs.push_back({back, sub.home_sector});
    }
  } else {
    // Non-commuting day: errand count grows with the user's roaming level.
    const auto n_errands = static_cast<int>(rng.uniform_int(
        0, 1 + std::lround(std::min(sub.mobility_level * 1.4, 4.5))));
    util::SimTime t = base + 9 * kHour + rng.uniform_int(0, 3 * kHour);
    for (int e = 0; e < n_errands && !sub.errand_sectors.empty(); ++e) {
      const auto idx = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(sub.errand_sectors.size()) - 1));
      it.legs.push_back({t, sub.errand_sectors[idx]});
      // Roamers linger longer away from home (drives the entropy gap).
      const util::SimTime linger = static_cast<util::SimTime>(
          std::lround(std::min(sub.mobility_level, 3.0) * kHour / 2));
      t += kHour + linger + rng.uniform_int(0, 2 * kHour);
      it.legs.push_back({t, sub.home_sector});
      t += kHour + rng.uniform_int(0, 2 * kHour);
      if (t >= base + 21 * kHour) break;
    }
  }

  std::stable_sort(it.legs.begin(), it.legs.end(),
                   [](const ItineraryLeg& a, const ItineraryLeg& b) {
                     return a.start < b.start;
                   });
  // An itinerary never leaks into the next day: every leg must start
  // strictly before midnight (the next day re-attaches at home anyway).
  const util::SimTime day_end = base + util::kSecondsPerDay;
  std::erase_if(it.legs,
                [&](const ItineraryLeg& leg) { return leg.start >= day_end; });
  return it;
}

void MobilityModel::emit_mme(const DayItinerary& itinerary,
                             const Subscriber& sub, trace::Tac tac,
                             std::vector<trace::MmeRecord>& out,
                             util::SimTime tau_interval_s) const {
  bool first = true;
  trace::SectorId prev = 0;
  util::SimTime last_event = 0;
  const util::SimTime day_end =
      util::day_start(itinerary.day) + util::kSecondsPerDay;
  const auto emit_taus_until = [&](util::SimTime until) {
    if (tau_interval_s <= 0 || first) return;
    while (last_event + tau_interval_s < until) {
      last_event += tau_interval_s;
      out.push_back(
          {last_event, sub.user_id, tac, trace::MmeEvent::kTau, prev});
    }
  };
  for (const ItineraryLeg& leg : itinerary.legs) {
    emit_taus_until(leg.start);
    if (first) {
      out.push_back({leg.start, sub.user_id, tac, trace::MmeEvent::kAttach,
                     leg.sector});
      first = false;
    } else if (leg.sector != prev) {
      out.push_back({leg.start, sub.user_id, tac, trace::MmeEvent::kHandover,
                     leg.sector});
    } else {
      continue;  // same-sector leg: no new event, TAU cadence unchanged
    }
    prev = leg.sector;
    last_event = leg.start;
  }
  emit_taus_until(day_end);
}

double MobilityModel::max_displacement_km(const DayItinerary& it) const {
  const std::vector<trace::SectorId> sectors = it.distinct_sectors();
  double best = 0.0;
  for (std::size_t i = 0; i < sectors.size(); ++i) {
    for (std::size_t j = i + 1; j < sectors.size(); ++j) {
      best = std::max(best, util::haversine_km(
                                geography_->sector_position(sectors[i]),
                                geography_->sector_position(sectors[j])));
    }
  }
  return best;
}

}  // namespace wearscope::simnet
