// Simulation configuration: population sizes, observation window, and the
// behavioural calibration knobs that target the paper's published statistics.
//
// Every default below is a calibration target lifted from the paper; the
// comment next to each knob names the claim it serves.  The analysis pipeline
// never reads this struct — it must recover these numbers from the logs.
#pragma once

#include <cstdint>

#include "util/sim_time.h"

namespace wearscope::simnet {

/// Full generator configuration. Value-semantic; validate() before use.
struct SimConfig {
  // ---- Scale -----------------------------------------------------------
  /// Master seed; equal seeds give byte-identical traces.
  std::uint64_t seed = 42;
  /// Worker threads for trace generation. 0 = one per hardware core.
  /// The output is byte-identical for ANY thread count: every (user, day)
  /// draws from its own forked RNG stream and records are merged in user
  /// order before the canonical time sort.
  std::uint32_t threads = 0;
  /// SIM-enabled wearable owners ("order of thousands", §3.2).
  std::uint32_t wearable_users = 1000;
  /// Control sample of the remaining ISP customers (stands in for the
  /// "tens of millions"; only relative statistics are reported).
  std::uint32_t control_users = 3200;
  /// Through-Device wearable owners (conclusion §6).
  std::uint32_t through_device_users = 250;

  // ---- Observation window (paper §3.1) -----------------------------------
  /// Summary-statistics span: five months, mid-Dec 2017 .. mid-May 2018.
  int observation_days = util::kObservationDays;
  /// Detailed-log span at the end of the window ("last seven weeks").
  /// Smaller values speed up tests; must be a multiple of 7 and fit the
  /// observation window.
  int detailed_days = 21;

  // ---- Geography ---------------------------------------------------------
  /// Number of cities in the synthetic country.
  std::uint32_t cities = 12;
  /// Antenna sectors per city, scaled by city population rank.
  std::uint32_t sectors_per_city = 24;
  /// Bounding box (degrees) the country occupies.
  double country_lat = 40.0;
  double country_lon = -3.5;
  double country_extent_deg = 5.0;

  // ---- Adoption (Fig. 2) --------------------------------------------------
  /// Monthly growth of the SIM-wearable base: "1.5% per month, 9% in 5
  /// months".
  double monthly_growth = 0.015;
  /// Fraction of first-week users gone by the last week ("7% abandon").
  double churn_fraction = 0.07;
  /// Daily probability that an adopted, unchurned wearable registers with
  /// the MME at all (watch switched on).
  double daily_register_prob = 0.93;

  // ---- Wearable cellular activity (Fig. 2a, §4.1: "only 34% transmit") ----
  /// Fraction of wearable users with no usable data path (no plan, or
  /// WiFi-only habits): they register but never transact.
  double silent_user_fraction = 0.655;
  /// Probability that a data-capable user is active on a given day,
  /// modulated per user; targets "active about 1 day a week" (§4.3).
  double mean_active_days_per_week = 1.0;
  /// Mean active hours on an active day; targets "3 hours per day", with
  /// 80% below 5 h and 7% above 10 h (Fig. 3b).
  double mean_active_hours = 3.0;

  // ---- Traffic (Fig. 3c/4a/4b) --------------------------------------------
  /// Mean wearable transactions per active hour (Fig. 3c reports the
  /// hourly per-user transaction distribution).
  double wearable_txn_per_hour = 9.0;
  /// Mean smartphone foreground transactions per day (coarse: each
  /// record aggregates a fetch burst; Fig. 4 uses only relative volumes).
  double phone_txn_per_day = 12.0;
  /// Log-mu of per-transaction phone bytes (lognormal). Calibrated with
  /// sigma so owners' wearable/total traffic ratio lands near 1e-3
  /// (Fig. 4b).
  double phone_bytes_log_mu = 13.6;  // ~e^13.6 = 0.8 MB
  double phone_bytes_log_sigma = 1.1;
  /// Data/transaction inflation of wearable *owners*' overall traffic vs
  /// control users: "26% more data, 48% more transactions" (§4.3).
  double owner_data_multiplier = 1.26;
  double owner_txn_multiplier = 1.48;

  // ---- Mobility (Fig. 4c/4d) ----------------------------------------------
  /// Log-mu/sigma of the control users' home-work distance (km).
  double commute_log_mu_km = 1.3;  // ~3.7 km median
  double commute_log_sigma = 0.75;
  /// Multiplier on wearable owners' commute/errand radius: targets the
  /// "31 km vs 16 km" max-displacement gap and the +70% location entropy.
  double owner_mobility_multiplier = 2.8;
  /// Probability of a long trip (inter-city) on any day.
  double trip_probability = 0.012;
  /// Fraction of data-active wearable users whose usage happens at a
  /// single anchor location ("60% transmit from one location", §4.4).
  double home_user_fraction = 0.60;

  // ---- Apps (Fig. 5/6/7, §4.3) ---------------------------------------------
  /// Log-mu/sigma of per-user installed Internet-capable wearable apps:
  /// mean ~8, 90% < 20, heavy tail past 100 (§4.3).
  double apps_log_mu = 1.79;  // median ~6
  double apps_log_sigma = 0.85;
  /// Mean number of *extra* distinct apps run on an active day beyond the
  /// first ("93% run only one app per day").
  double extra_apps_per_day = 0.08;
  /// Long-tail catalog size appended after the 50 named apps.
  std::uint32_t long_tail_apps = 150;

  // ---- Extension: Apple Watch launch (paper §6 expects a "sharper
  // increase once the Apple watch is supported by this ISP") ---------------
  /// Day the operator starts supporting the Apple Watch; -1 disables the
  /// scenario (the paper's status quo).
  int apple_watch_launch_day = -1;
  /// Multiplier on the in-window adoption rate after the launch day.
  double launch_adoption_boost = 3.0;
  /// Share of post-launch adopters choosing the Apple Watch.
  double apple_watch_share = 0.55;
  /// Fraction of the owner population that adopts *only because of* the
  /// launch (new demand on top of the organic ramp).
  double launch_extra_adopters = 0.12;

  // ---- Through-Device (conclusion §6) --------------------------------------
  /// Fraction of Through-Device users carrying a fingerprintable device or
  /// wearable-enabled app ("~16% of total Through-Device users").
  double fingerprintable_fraction = 0.16;

  /// Throws util::ConfigError when any knob is out of its documented
  /// domain (negative counts, detailed window not fitting, etc.).
  void validate() const;

  /// Small preset for unit tests (hundreds of users, two weeks).
  static SimConfig small();
  /// Default preset used by the figure benches.
  static SimConfig standard();
  /// Full-fidelity preset mirroring the paper's seven-week window.
  static SimConfig paper();
};

}  // namespace wearscope::simnet
