#include "simnet/config.h"

#include "util/error.h"

namespace wearscope::simnet {

void SimConfig::validate() const {
  using util::require;
  require(threads <= 256, "config: threads out of range [0, 256]");
  require(wearable_users > 0, "config: wearable_users must be positive");
  require(control_users > 0, "config: control_users must be positive");
  require(observation_days >= 14, "config: observation_days must be >= 14");
  require(detailed_days >= 7, "config: detailed_days must be >= 7");
  require(detailed_days % 7 == 0,
          "config: detailed_days must be a multiple of 7");
  require(detailed_days <= observation_days,
          "config: detailed window exceeds observation window");
  require(cities >= 1, "config: need at least one city");
  require(sectors_per_city >= 2, "config: need at least two sectors per city");
  require(monthly_growth >= 0.0 && monthly_growth < 0.5,
          "config: monthly_growth out of range [0, 0.5)");
  require(churn_fraction >= 0.0 && churn_fraction < 1.0,
          "config: churn_fraction out of range [0, 1)");
  require(daily_register_prob > 0.0 && daily_register_prob <= 1.0,
          "config: daily_register_prob out of range (0, 1]");
  require(silent_user_fraction >= 0.0 && silent_user_fraction < 1.0,
          "config: silent_user_fraction out of range [0, 1)");
  require(mean_active_days_per_week > 0.0 && mean_active_days_per_week <= 7.0,
          "config: mean_active_days_per_week out of range (0, 7]");
  require(mean_active_hours > 0.0 && mean_active_hours <= 24.0,
          "config: mean_active_hours out of range (0, 24]");
  require(wearable_txn_per_hour > 0.0,
          "config: wearable_txn_per_hour must be positive");
  require(phone_txn_per_day > 0.0,
          "config: phone_txn_per_day must be positive");
  require(owner_data_multiplier > 0.0 && owner_txn_multiplier > 0.0,
          "config: owner multipliers must be positive");
  require(owner_mobility_multiplier > 0.0,
          "config: owner_mobility_multiplier must be positive");
  require(trip_probability >= 0.0 && trip_probability <= 1.0,
          "config: trip_probability out of range [0, 1]");
  require(home_user_fraction >= 0.0 && home_user_fraction <= 1.0,
          "config: home_user_fraction out of range [0, 1]");
  require(extra_apps_per_day >= 0.0,
          "config: extra_apps_per_day must be non-negative");
  require(fingerprintable_fraction >= 0.0 && fingerprintable_fraction <= 1.0,
          "config: fingerprintable_fraction out of range [0, 1]");
  require(apple_watch_launch_day < observation_days,
          "config: apple_watch_launch_day beyond the observation window");
  require(launch_adoption_boost >= 1.0,
          "config: launch_adoption_boost must be >= 1");
  require(apple_watch_share >= 0.0 && apple_watch_share <= 1.0,
          "config: apple_watch_share out of range [0, 1]");
  require(launch_extra_adopters >= 0.0 && launch_extra_adopters < 0.9,
          "config: launch_extra_adopters out of range [0, 0.9)");
}

SimConfig SimConfig::small() {
  SimConfig c;
  c.wearable_users = 300;
  c.control_users = 900;
  c.through_device_users = 70;
  c.detailed_days = 14;
  c.cities = 6;
  c.sectors_per_city = 12;
  c.long_tail_apps = 120;
  return c;
}

SimConfig SimConfig::standard() { return SimConfig{}; }

SimConfig SimConfig::paper() {
  SimConfig c;
  c.wearable_users = 4000;
  c.control_users = 8000;
  c.through_device_users = 1200;
  c.detailed_days = 49;
  return c;
}

}  // namespace wearscope::simnet
