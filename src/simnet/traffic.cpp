#include "simnet/traffic.h"

#include <algorithm>
#include <cmath>

#include "appdb/third_party.h"
#include "appdb/traffic_profile.h"
#include "simnet/diurnal.h"
#include "util/error.h"

namespace wearscope::simnet {

namespace {

constexpr util::SimTime kHour = util::kSecondsPerHour;

/// Hour mask applied to "home users" (§4.4: 60% of data-active users
/// transact from a single location): their usage concentrates in the hours
/// the itinerary puts them at home.
constexpr std::array<double, 24> kHomeHourMask = {
    1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 0.05, 0.0, 0.0, 0.0, 0.0, 0.0,
    0.0, 0.0, 0.0, 0.0, 0.0, 0.05, 0.10, 0.35, 0.80, 1.0, 1.0, 1.0};

/// Subdomain prefixes used when materializing third-party hosts.
constexpr std::array<std::string_view, 6> kThirdPartyPrefixes = {
    "api", "edge", "a1", "pixel", "s", "m"};

std::string third_party_host(appdb::TransactionClass cls, util::Pcg32& rng) {
  std::span<const std::string_view> pool;
  switch (cls) {
    case appdb::TransactionClass::kUtilities:
      pool = appdb::utility_domains();
      break;
    case appdb::TransactionClass::kAdvertising:
      pool = appdb::advertising_domains();
      break;
    case appdb::TransactionClass::kAnalytics:
      pool = appdb::analytics_domains();
      break;
    case appdb::TransactionClass::kApplication:
      util::ensure(false, "third_party_host called for first-party class");
  }
  const auto d = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1));
  const auto p = static_cast<std::size_t>(rng.uniform_int(
      0, static_cast<std::int64_t>(kThirdPartyPrefixes.size()) - 1));
  return std::string(kThirdPartyPrefixes[p]) + "." + std::string(pool[d]);
}

}  // namespace

TrafficModel::TrafficModel(const SimConfig& config,
                           const appdb::AppCatalog& apps)
    : config_(&config), apps_(&apps) {}

double TrafficModel::mean_active_hours_of(const Subscriber& sub) const {
  // Heavy-user mixture component (engagement drawn uniform in [2.8, 5.5])
  // maps to 8-16 h/day; the lognormal bulk maps to ~3 h/day on average
  // (Fig. 3b: mean 3 h, 80% < 5 h, 7% > 10 h).
  if (sub.engagement > 2.79) {
    return std::clamp(sub.engagement * 2.9, 8.0, 16.0);
  }
  // Dampened exponent keeps the bulk under 5 h/day (80% of users) while
  // the mixture's heavy component supplies the 7% above 10 h.
  return std::clamp(2.3 * std::pow(sub.engagement, 0.7), 0.5, 7.0);
}

WearableDayPlan TrafficModel::plan_wearable_day(const Subscriber& sub,
                                                int day,
                                                util::Pcg32& rng) const {
  WearableDayPlan plan;
  if (!sub.wearable_alive(day)) return plan;

  plan.registered = rng.bernoulli(config_->daily_register_prob);
  if (!plan.registered || sub.silent) return plan;

  // Active-day probability: targets "about 1 day a week" on average, with
  // per-user heterogeneity tied to engagement (dampened square root).
  // Activity clusters into "active weeks": a user engages the wearable in
  // bursts rather than uniformly (this is what makes ~35% of a week's
  // actives show up on any given day, Fig. 3a, while the long-run mean
  // stays at ~1 active day per week).
  const double week_active_p =
      std::clamp(0.5 * std::sqrt(sub.engagement), 0.05, 0.9);
  util::Pcg32 week_rng(util::splitmix64(
                           sub.rng_key ^
                           (static_cast<std::uint64_t>(day / 7) * 0x77EE4BULL)),
                       0x7EE6ULL);
  if (!week_rng.bernoulli(week_active_p)) return plan;

  // Weekends tilt slightly up for wearables (the paper observes a higher
  // *relative* wearable share on weekends/evenings, §4.2).
  const double weekend_tilt = util::is_weekend_day(day) ? 1.12 : 0.952;
  const double p_active =
      std::clamp((config_->mean_active_days_per_week / 7.0) *
                     std::sqrt(sub.engagement) * weekend_tilt / week_active_p,
                 0.02, 0.95);
  plan.active = rng.bernoulli(p_active);
  if (!plan.active) return plan;

  // Number of active hours today around the user's personal mean.
  const double h_mean = mean_active_hours_of(sub);
  const int n_hours = static_cast<int>(std::clamp(
      std::lround(rng.normal(h_mean, 0.3 * h_mean)), 1L, 18L));

  // Hour selection: diurnal curve (weekday/weekend shapes of Fig. 3a),
  // multiplied by the stay-at-home mask for single-location users.
  const HourWeights& base =
      hour_weights(/*wearable=*/true, util::is_weekend_day(day));
  std::array<double, 24> weights{};
  for (int h = 0; h < 24; ++h) {
    weights[static_cast<std::size_t>(h)] =
        base[static_cast<std::size_t>(h)] *
        (sub.home_user ? kHomeHourMask[static_cast<std::size_t>(h)] : 1.0);
  }
  std::array<bool, 24> chosen{};
  for (int k = 0; k < n_hours; ++k) {
    const std::size_t h = rng.weighted_index(weights);
    if (weights[h] <= 0.0) break;  // all hours exhausted
    chosen[h] = true;
    weights[h] = 0.0;
  }
  for (int h = 0; h < 24; ++h) {
    if (chosen[static_cast<std::size_t>(h)]) plan.active_hours.push_back(h);
  }
  if (plan.active_hours.empty()) plan.active = false;
  return plan;
}

std::vector<appdb::AppId> TrafficModel::pick_day_apps(
    const Subscriber& sub, util::Pcg32& rng) const {
  util::ensure(!sub.wearable_apps.empty(), "wearable owner has no apps");
  // Weight installed apps by popularity x daily-use multiplier, with
  // WiFi-preferring apps strongly damped on cellular (paper §5.1 notes
  // Health & Fitness sync waits for WiFi).
  // Which installed app a user actually reaches for depends on personal
  // affinity far more than on global chart position: global popularity
  // enters install choice (Population) at full strength but daily use only
  // with a dampened exponent.  WiFi-preferring apps are strongly damped on
  // cellular (paper §5.1 notes Health & Fitness sync waits for WiFi).
  std::vector<double> weights;
  weights.reserve(sub.wearable_apps.size());
  for (const appdb::AppId id : sub.wearable_apps) {
    const appdb::AppInfo& app = apps_->app(id);
    util::Pcg32 affinity_rng(
        util::splitmix64(sub.rng_key ^ (static_cast<std::uint64_t>(id) *
                                        0x51ED0031ULL)),
        0xAFF1ULL);
    const double affinity = affinity_rng.lognormal(0.0, 0.5);
    weights.push_back(std::pow(app.popularity_weight, 0.35) *
                      app.daily_use_multiplier * affinity *
                      (app.wifi_preferred ? 0.15 : 1.0));
  }
  // 1 + Poisson(extra) distinct apps today ("93% run only one app/day").
  const std::uint32_t extra = rng.poisson(config_->extra_apps_per_day);
  const std::size_t target = std::min<std::size_t>(
      sub.wearable_apps.size(), static_cast<std::size_t>(1 + extra));
  std::vector<appdb::AppId> day_apps;
  while (day_apps.size() < target) {
    const std::size_t idx = rng.weighted_index(weights);
    if (weights[idx] <= 0.0) break;
    day_apps.push_back(sub.wearable_apps[idx]);
    weights[idx] = 0.0;
  }
  if (day_apps.empty()) day_apps.push_back(sub.wearable_apps.front());
  return day_apps;
}

TrafficModel::Endpoint TrafficModel::pick_endpoint(const appdb::AppInfo& app,
                                                   util::Pcg32& rng) const {
  const appdb::TrafficProfile& prof = appdb::profile_for(app.profile);
  Endpoint ep;
  const double u = rng.next_double();
  const appdb::ThirdPartyMix& mix = prof.third_party;
  if (u < mix.utilities) {
    ep.host = third_party_host(appdb::TransactionClass::kUtilities, rng);
    // CDN transactions carry offloaded media: heavier than first-party.
    ep.bytes_scale = 1.6;
  } else if (u < mix.utilities + mix.advertising) {
    ep.host = third_party_host(appdb::TransactionClass::kAdvertising, rng);
    ep.bytes_scale = 0.8;
  } else if (u < mix.utilities + mix.advertising + mix.analytics) {
    ep.host = third_party_host(appdb::TransactionClass::kAnalytics, rng);
    ep.bytes_scale = 0.5;
  } else {
    const auto d = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(app.domains.size()) - 1));
    ep.host = app.domains[d];
    ep.bytes_scale = 1.0;
  }
  ep.is_http = rng.bernoulli(prof.http_fraction);
  if (ep.is_http) {
    ep.path = "/api/v" + std::to_string(rng.uniform_int(1, 3)) + "/r" +
              std::to_string(rng.uniform_int(1, 40));
  }
  return ep;
}

void TrafficModel::emit_usage(const Subscriber& sub,
                              const appdb::AppInfo& app, util::SimTime start,
                              util::SimTime end_limit, double intensity,
                              trace::Tac tac, util::Pcg32& rng,
                              std::vector<trace::ProxyRecord>& out) const {
  const appdb::TrafficProfile& prof = appdb::profile_for(app.profile);
  // Usage length is a property of the app class, not of the user: user
  // intensity scales how often usages happen, not how long they are.
  (void)intensity;
  const auto n_txn = static_cast<int>(
      1 + rng.poisson(std::max(0.0, prof.transactions_per_usage - 1.0)));
  util::SimTime t = start;
  for (int i = 0; i < n_txn; ++i) {
    if (t >= end_limit) break;
    const Endpoint ep = pick_endpoint(app, rng);
    trace::ProxyRecord r;
    r.timestamp = t;
    r.user_id = sub.user_id;
    r.tac = tac;
    r.protocol = ep.is_http ? trace::Protocol::kHttp : trace::Protocol::kHttps;
    r.host = ep.host;
    r.url_path = ep.path;
    const double bytes =
        rng.lognormal(prof.bytes_log_mu, prof.bytes_log_sigma) *
        ep.bytes_scale;
    const auto total = static_cast<std::uint64_t>(
        std::clamp(bytes, 64.0, 2.0e9));
    const double up_frac =
        std::clamp(prof.uplink_fraction * rng.lognormal(0.0, 0.3), 0.01, 0.9);
    r.bytes_up = static_cast<std::uint64_t>(static_cast<double>(total) * up_frac);
    r.bytes_down = total - r.bytes_up;
    r.duration_ms = static_cast<std::uint32_t>(
        std::clamp(rng.exponential(1.0 / prof.duration_mean_ms), 20.0, 60000.0));
    out.push_back(std::move(r));
    // Intra-usage gap: exponential, capped below the 60 s sessionization
    // threshold so one usage never splits (paper's definition §5.1).
    const double gap =
        std::min(55.0, rng.exponential(1.0 / prof.intra_usage_gap_s) + 0.5);
    t += static_cast<util::SimTime>(std::lround(gap));
  }
}

void TrafficModel::generate_wearable_day(
    const Subscriber& sub, const WearableDayPlan& plan,
    const DayItinerary& itinerary, util::Pcg32& rng,
    std::vector<trace::ProxyRecord>& out) const {
  if (!plan.active) return;
  const std::vector<appdb::AppId> day_apps = pick_day_apps(sub, rng);

  // Per-user transaction intensity: more active-hours per day <=> more
  // transactions per hour (drives the Fig. 3d correlation).
  const double h_mean = mean_active_hours_of(sub);
  const double intensity = std::clamp(
      0.4 + 0.6 * h_mean / std::max(0.5, config_->mean_active_hours), 0.4,
      3.4);

  std::vector<double> app_weights;
  app_weights.reserve(day_apps.size());
  for (const appdb::AppId id : day_apps)
    app_weights.push_back(apps_->app(id).popularity_weight);

  // Single-location users (§4.4) transact only while parked at their home
  // sector: remap any planned hour that the itinerary spends elsewhere to
  // an hour at home (late evening and night hours qualify on every day).
  std::vector<int> hours = plan.active_hours;
  const util::SimTime base = util::day_start(itinerary.day);
  if (sub.home_user) {
    // Candidate replacement hours: at home, weighted by the same diurnal
    // curve + home mask the planner used (a uniform pick would flatten the
    // weekday/weekend shape of Fig. 3a).
    const HourWeights& diurnal =
        hour_weights(/*wearable=*/true, util::is_weekend_day(itinerary.day));
    std::vector<int> home_hours;
    std::vector<double> home_weights;
    for (int h = 0; h < 24; ++h) {
      const util::SimTime mid = base + h * kHour + kHour / 2;
      if (itinerary.sector_at(mid) == sub.home_sector) {
        home_hours.push_back(h);
        home_weights.push_back(diurnal[static_cast<std::size_t>(h)] *
                               kHomeHourMask[static_cast<std::size_t>(h)]);
      }
    }
    if (!home_hours.empty()) {
      for (int& h : hours) {
        const util::SimTime mid = base + h * kHour + kHour / 2;
        if (itinerary.sector_at(mid) != sub.home_sector) {
          h = home_hours[rng.weighted_index(home_weights)];
        }
      }
    }
  }
  for (const int hour : hours) {
    // Which of today's apps acts this hour (usually there is only one).
    const appdb::AppInfo& app =
        apps_->app(day_apps[rng.weighted_index(app_weights)]);
    const appdb::TrafficProfile& prof = appdb::profile_for(app.profile);
    // Super-linear in intensity: engaged users not only spread over more
    // hours, they also pack each hour more densely (Fig. 3d/4d relations).
    const double usage_rate =
        prof.usages_per_active_hour * std::pow(intensity, 1.5);
    const auto usages = static_cast<int>(
        std::max<std::uint32_t>(1, rng.poisson(usage_rate)));
    for (int u = 0; u < usages; ++u) {
      util::SimTime start =
          base + hour * kHour + rng.uniform_int(0, kHour - 120);
      if (sub.home_user) {
        // Anchor the whole usage at the home sector: a start drawn just
        // before the return-home handover would otherwise leak a foreign
        // sector into this user's transaction history (§4.4's 60%
        // single-location statistic erodes over long windows otherwise).
        for (int attempt = 0;
             attempt < 6 && itinerary.sector_at(start) != sub.home_sector;
             ++attempt) {
          start = base + hour * kHour + rng.uniform_int(0, kHour - 120);
        }
        if (itinerary.sector_at(start) != sub.home_sector) continue;
      }
      emit_usage(sub, app, start, util::day_start(itinerary.day + 1),
                 intensity, sub.wearable_tac, rng, out);
    }
  }
  (void)itinerary;  // position is implied by the MME log at analysis time
}

void TrafficModel::generate_phone_day(
    const Subscriber& sub, int day, const DayItinerary& itinerary,
    util::Pcg32& rng, std::vector<trace::ProxyRecord>& out) const {
  // Phones are active nearly every day.
  if (!rng.bernoulli(0.96)) return;

  const bool owner = sub.segment == Segment::kWearableOwner;
  const bool through = sub.segment == Segment::kThroughDevice;

  // Owners make +48% transactions; volume inflation lands at +26% because
  // per-transaction bytes shrink by the ratio of the two multipliers.
  double txn_mult = sub.phone_engagement;
  double byte_mult = 1.0;
  if (owner) {
    // The wearable itself contributes the remaining transaction inflation
    // (owners' wearable transactions add ~0.27x of a control user's phone
    // transactions), so the phone side carries a reduced multiplier and
    // the *total* lands at the configured +48%.
    const double phone_txn_mult = config_->owner_txn_multiplier * 0.82;
    txn_mult *= phone_txn_mult;
    byte_mult *= sub.tech_multiplier / phone_txn_mult;
    // The heaviest wearable adopters offload real usage to the watch:
    // their phones run noticeably quieter (this is what produces the
    // "10% of users get >= 3% of their traffic from the wearable" tail).
    if (sub.engagement > 2.79) byte_mult *= 0.45;
  } else if (through) {
    txn_mult *= 1.0 + (config_->owner_txn_multiplier - 1.0) * 0.8;
    byte_mult *= sub.tech_multiplier /
                 (1.0 + (config_->owner_txn_multiplier - 1.0) * 0.8);
  }

  // Phones tilt the other way: slightly quieter on weekends.
  const double phone_tilt = util::is_weekend_day(day) ? 0.93 : 1.028;
  const auto n_txn =
      rng.poisson(config_->phone_txn_per_day * txn_mult * phone_tilt);
  if (n_txn == 0 && sub.companion_signature < 0) return;

  const HourWeights& hours =
      hour_weights(/*wearable=*/false, util::is_weekend_day(day));
  const util::SimTime base = util::day_start(day);
  std::vector<double> hour_w(hours.begin(), hours.end());

  for (std::uint32_t i = 0; i < n_txn; ++i) {
    const std::size_t hour = rng.weighted_index(hour_w);
    const util::SimTime t = base + static_cast<util::SimTime>(hour) * kHour +
                            rng.uniform_int(0, kHour - 1);
    const appdb::AppInfo& app = apps_->app(
        sub.phone_apps[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(sub.phone_apps.size()) - 1))]);
    const Endpoint ep = pick_endpoint(app, rng);
    trace::ProxyRecord r;
    r.timestamp = t;
    r.user_id = sub.user_id;
    r.tac = sub.phone_tac;
    r.protocol = ep.is_http ? trace::Protocol::kHttp : trace::Protocol::kHttps;
    r.host = ep.host;
    r.url_path = ep.path;
    // Phone records are coarse foreground bursts, not individual fetches.
    const double bytes = rng.lognormal(config_->phone_bytes_log_mu,
                                       config_->phone_bytes_log_sigma) *
                         byte_mult * ep.bytes_scale;
    const auto total = static_cast<std::uint64_t>(
        std::clamp(bytes, 256.0, 4.0e9));
    r.bytes_up = static_cast<std::uint64_t>(static_cast<double>(total) * 0.1);
    r.bytes_down = total - r.bytes_up;
    r.duration_ms = static_cast<std::uint32_t>(
        std::clamp(rng.exponential(1.0 / 900.0), 30.0, 120000.0));
    out.push_back(std::move(r));
  }

  // Companion sync traffic of fingerprintable Through-Device wearables:
  // periodic small uploads to the vendor/app wearable endpoints.
  if (sub.companion_signature >= 0) {
    const appdb::CompanionSignature& sig =
        appdb::companion_signatures()[static_cast<std::size_t>(
            sub.companion_signature)];
    const auto syncs = rng.poisson(5.0);
    for (std::uint32_t s = 0; s < syncs; ++s) {
      const std::size_t hour = rng.weighted_index(hour_w);
      trace::ProxyRecord r;
      r.timestamp = base + static_cast<util::SimTime>(hour) * kHour +
                    rng.uniform_int(0, kHour - 1);
      r.user_id = sub.user_id;
      r.tac = sub.phone_tac;
      r.protocol = trace::Protocol::kHttps;
      const auto d = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(sig.domains.size()) - 1));
      r.host = sig.domains[d];
      const auto total = static_cast<std::uint64_t>(
          std::clamp(rng.lognormal(8.3, 0.8), 256.0, 1.0e8));
      r.bytes_up = total * 6 / 10;  // mostly uplink: sensor sync
      r.bytes_down = total - r.bytes_up;
      r.duration_ms = static_cast<std::uint32_t>(
          std::clamp(rng.exponential(1.0 / 500.0), 30.0, 60000.0));
      out.push_back(std::move(r));
    }
  }
  (void)itinerary;
}

}  // namespace wearscope::simnet
