// End-to-end synthetic ISP capture.
//
// The simulator walks every day of the observation window:
//   * Wearable owners are simulated over all five months — their MME
//     registrations and (rare) proxy transactions are what Fig. 2's adoption
//     analysis consumes.
//   * Phones (owners, control, through-device) are simulated only inside the
//     detailed window at the end ("the full logs of the last seven weeks"),
//     which is also what every other figure uses.
//
// The output is a TraceStore — exactly the logs of the paper's three vantage
// points — plus the generator ground truth, which calibration tests may
// inspect but the analysis pipeline must never touch.
#pragma once

#include <vector>

#include "simnet/config.h"
#include "simnet/population.h"
#include "trace/store.h"

namespace wearscope::simnet {

/// Output of one simulation run.
struct SimResult {
  trace::TraceStore store;              ///< The vantage-point logs.
  std::vector<Subscriber> subscribers;  ///< Ground truth (tests only).
  int detailed_start_day = 0;           ///< First day with full logs.
  int observation_days = 0;             ///< Window length in days.
  SimConfig config;                     ///< Echo of the configuration.
};

/// Deterministic trace generator; equal configs give identical results.
class Simulator {
 public:
  /// Validates and stores the configuration.
  explicit Simulator(SimConfig config);

  /// Runs the full simulation and returns the capture.
  [[nodiscard]] SimResult run() const;

 private:
  SimConfig config_;
};

}  // namespace wearscope::simnet
