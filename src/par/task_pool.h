// wearscope::par — the deterministic task scheduler behind the batch path.
//
// A fixed-size pool of worker threads executing explicit task batches.
// Determinism is structural, not scheduled: callers hand the pool tasks
// that write disjoint state (one StudyReport field, one user shard, one
// contiguous user slice) and merge results in a fixed canonical order, so
// the output is bitwise identical for every thread count.  With
// `threads == 1` no worker thread is ever spawned and run() executes the
// batch inline in submission order — exactly the sequential code path.
//
// Threading contract: exactly one thread (the owner) calls run(); the
// owning thread participates as an executor, so a pool of N threads means
// N-1 parked workers plus the caller.  Tasks must not call back into the
// pool.  The first task exception is rethrown from run() after the whole
// batch has drained (with one thread it propagates immediately, like the
// plain loop it replaces).
#pragma once

#include <algorithm>
#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/sync.h"
#include "util/thread_annotations.h"

namespace wearscope::par {

/// Fixed-size thread pool executing explicit batches of independent tasks.
class TaskPool {
 public:
  /// `threads` >= 1 executors (clamped up to 1). Spawns `threads - 1`
  /// workers; they park until run() publishes a batch.
  explicit TaskPool(std::size_t threads);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Executor count (workers + the calling thread).
  [[nodiscard]] std::size_t threads() const noexcept { return threads_; }

  /// Executes every task and returns once all completed.  Tasks may run in
  /// any order and concurrently; with threads() == 1 they run inline in
  /// submission order.  Rethrows the first task exception after the batch
  /// drains.
  void run(std::vector<std::function<void()>> tasks);

  /// Splits [0, n) into at most threads() contiguous slices and runs
  /// `fn(begin, end, slice)` for each non-empty one.  `slice` indexes the
  /// slice (dense, in range order) so callers can keep per-slice scratch
  /// state; slices never overlap.
  template <typename Fn>
  void for_slices(std::size_t n, Fn&& fn) {
    const std::size_t slices = std::min(threads_, std::max<std::size_t>(n, 1));
    if (slices <= 1) {
      if (n > 0) fn(std::size_t{0}, n, std::size_t{0});
      return;
    }
    std::vector<std::function<void()>> tasks;
    tasks.reserve(slices);
    for (std::size_t s = 0; s < slices; ++s) {
      const std::size_t lo = s * n / slices;
      const std::size_t hi = (s + 1) * n / slices;
      if (lo == hi) continue;
      tasks.push_back([&fn, lo, hi, s] { fn(lo, hi, s); });
    }
    run(std::move(tasks));
  }

 private:
  void worker_loop();

  /// Runs one claimed task, records its exception (first wins) and
  /// signals batch completion.
  void execute_and_account(std::function<void()>& task);

  std::size_t threads_ = 1;
  util::Mutex mu_;
  util::CondVar work_cv_;  ///< Signals workers: batch published / stop.
  util::CondVar done_cv_;  ///< Signals run(): pending_ reached zero.
  std::vector<std::function<void()>>* batch_ WS_GUARDED_BY(mu_) = nullptr;
  std::size_t next_ WS_GUARDED_BY(mu_) = 0;
  std::size_t pending_ WS_GUARDED_BY(mu_) = 0;
  std::exception_ptr first_error_ WS_GUARDED_BY(mu_);
  bool stop_ WS_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace wearscope::par
