// Stable key -> shard assignment shared by every parallel subsystem.
//
// The split-mix finalizer gives an identical assignment on every platform
// and for every run, so sharded builds are reproducible; live::IngestRouter
// partitions its rings with it and core::AnalysisContext shards its
// per-user indexing the same way (the shard-by-user discipline: all state
// of one user lives on exactly one shard, so workers share nothing).
#pragma once

#include <cstddef>
#include <cstdint>

namespace wearscope::par {

/// Deterministic `key -> [0, shards)` hash. `shards` must be >= 1.
[[nodiscard]] constexpr std::size_t shard_of(std::uint64_t key,
                                             std::size_t shards) noexcept {
  std::uint64_t x = key + 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<std::size_t>(x % shards);
}

}  // namespace wearscope::par
