#include "par/task_pool.h"

#include "util/error.h"

namespace wearscope::par {

TaskPool::TaskPool(std::size_t threads)
    : threads_(std::max<std::size_t>(threads, 1)) {
  workers_.reserve(threads_ - 1);
  for (std::size_t i = 0; i + 1 < threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

TaskPool::~TaskPool() {
  {
    util::MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void TaskPool::worker_loop() {
  for (;;) {
    std::function<void()>* task = nullptr;
    {
      util::MutexLock lock(mu_);
      while (!stop_ && (batch_ == nullptr || next_ >= batch_->size())) {
        work_cv_.wait(mu_);
      }
      if (batch_ != nullptr && next_ < batch_->size()) {
        task = &(*batch_)[next_++];
      } else {
        return;  // stop_ set and no claimable work left.
      }
    }
    execute_and_account(*task);
  }
}

void TaskPool::execute_and_account(std::function<void()>& task) {
  std::exception_ptr error;
  try {
    task();
  } catch (...) {
    error = std::current_exception();
  }
  bool last = false;
  {
    util::MutexLock lock(mu_);
    if (error != nullptr && first_error_ == nullptr) first_error_ = error;
    last = --pending_ == 0;
  }
  if (last) done_cv_.notify_all();
}

void TaskPool::run(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (workers_.empty()) {
    // Single-thread reference path: inline, submission order, exceptions
    // propagate from the faulting task immediately.
    for (std::function<void()>& task : tasks) task();
    return;
  }

  {
    util::MutexLock lock(mu_);
    util::ensure(batch_ == nullptr, "TaskPool::run is not reentrant");
    batch_ = &tasks;
    next_ = 0;
    pending_ = tasks.size();
    first_error_ = nullptr;
  }
  work_cv_.notify_all();

  // The caller is the Nth executor: claim tasks until none remain.
  for (;;) {
    std::function<void()>* task = nullptr;
    {
      util::MutexLock lock(mu_);
      if (next_ < tasks.size()) task = &tasks[next_++];
    }
    if (task == nullptr) break;
    execute_and_account(*task);
  }

  std::exception_ptr error;
  {
    util::MutexLock lock(mu_);
    while (pending_ > 0) done_cv_.wait(mu_);
    batch_ = nullptr;
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error != nullptr) std::rethrow_exception(error);
}

}  // namespace wearscope::par
