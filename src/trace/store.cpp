#include "trace/store.h"

#include <algorithm>
#include <unordered_set>

namespace wearscope::trace {

void TraceStore::sort_by_time() {
  std::stable_sort(proxy.begin(), proxy.end(), ByTimeThenUser{});
  std::stable_sort(mme.begin(), mme.end(), ByTimeThenUser{});
  // Row indices shifted: any column transpose is stale.
  proxy_columns_ = ProxyColumns{};
  mme_columns_ = MmeColumns{};
  columns_built_ = false;
}

bool TraceStore::is_sorted() const noexcept {
  return std::is_sorted(proxy.begin(), proxy.end(), ByTimeThenUser{}) &&
         std::is_sorted(mme.begin(), mme.end(), ByTimeThenUser{});
}

TraceSummary TraceStore::summarize() const {
  TraceSummary s;
  s.proxy_records = proxy.size();
  s.mme_records = mme.size();
  s.devices = devices.size();
  s.sectors = sectors.size();

  std::unordered_set<UserId> proxy_users;
  std::unordered_set<UserId> mme_users;
  proxy_users.reserve(proxy.size());
  mme_users.reserve(mme.size());
  // Seed the time span from the first available record so the loops stay
  // branch-light (no per-record "first" flag).
  if (!proxy.empty()) {
    s.first_timestamp = proxy.front().timestamp;
    s.last_timestamp = proxy.front().timestamp;
  } else if (!mme.empty()) {
    s.first_timestamp = mme.front().timestamp;
    s.last_timestamp = mme.front().timestamp;
  }
  for (const ProxyRecord& r : proxy) {
    proxy_users.insert(r.user_id);
    s.total_bytes += r.bytes_total();
    s.first_timestamp = std::min(s.first_timestamp, r.timestamp);
    s.last_timestamp = std::max(s.last_timestamp, r.timestamp);
  }
  for (const MmeRecord& r : mme) {
    mme_users.insert(r.user_id);
    s.first_timestamp = std::min(s.first_timestamp, r.timestamp);
    s.last_timestamp = std::max(s.last_timestamp, r.timestamp);
  }
  s.distinct_proxy_users = proxy_users.size();
  s.distinct_mme_users = mme_users.size();
  return s;
}

void TraceStore::rebuild_indexes() const {
  device_index_.clear();
  sector_index_.clear();
  device_index_.reserve(devices.size());
  sector_index_.reserve(sectors.size());
  for (std::size_t i = 0; i < devices.size(); ++i)
    device_index_.emplace(devices[i].tac, i);
  for (std::size_t i = 0; i < sectors.size(); ++i)
    sector_index_.emplace(sectors[i].sector_id, i);
  indexes_built_ = true;
}

std::optional<DeviceRecord> TraceStore::find_device(Tac tac) const {
  if (!indexes_built_) rebuild_indexes();
  const auto it = device_index_.find(tac);
  if (it == device_index_.end()) return std::nullopt;
  return devices[it->second];
}

std::optional<SectorInfo> TraceStore::find_sector(SectorId id) const {
  if (!indexes_built_) rebuild_indexes();
  const auto it = sector_index_.find(id);
  if (it == sector_index_.end()) return std::nullopt;
  return sectors[it->second];
}

void TraceStore::build_columns(par::TaskPool* pool) const {
  if (columns_built_) return;
  proxy_columns_ = build_proxy_columns(proxy, pool);
  mme_columns_ = build_mme_columns(mme, pool);
  columns_built_ = true;
}

const ProxyColumns& TraceStore::proxy_columns() const {
  if (!columns_built_) build_columns();
  return proxy_columns_;
}

const MmeColumns& TraceStore::mme_columns() const {
  if (!columns_built_) build_columns();
  return mme_columns_;
}

}  // namespace wearscope::trace
