// Human-inspectable CSV form of the trace logs.  Each file starts with a
// header row naming the columns; readers validate the header so that a
// device table cannot be loaded as a proxy log.
#pragma once

#include <istream>
#include <ostream>
#include <vector>

#include "trace/quarantine.h"
#include "trace/records.h"

namespace wearscope::trace {

/// Streaming CSV writer for one record type (header row written eagerly).
template <typename Record>
class CsvLogWriter {
 public:
  explicit CsvLogWriter(std::ostream& out);
  /// Appends one record as a CSV row.
  void write(const Record& r);

 private:
  std::ostream* out_ = nullptr;
};

/// Streaming CSV reader for one record type.
/// Throws util::ParseError on header mismatch or malformed rows.
template <typename Record>
class CsvLogReader {
 public:
  explicit CsvLogReader(std::istream& in);
  /// Reads the next record; returns false at EOF. Blank lines are skipped.
  bool next(Record& out);

 private:
  std::istream* in_ = nullptr;
};

/// Lenient read of one whole CSV log with skip-and-count quarantine
/// semantics.  Unlike the binary format, CSV rows are line-framed, so a
/// malformed row is skipped *individually* (one `corrupt_rows` each) and
/// parsing resumes on the next line; only a rejected header abandons the
/// file (one `corrupt_files`).  Never throws ParseError.
template <typename Record>
std::vector<Record> read_csv_log_lenient(std::istream& in,
                                         QuarantineStats& quarantine);

extern template class CsvLogWriter<ProxyRecord>;
extern template class CsvLogWriter<MmeRecord>;
extern template class CsvLogWriter<DeviceRecord>;
extern template class CsvLogWriter<SectorInfo>;
extern template class CsvLogReader<ProxyRecord>;
extern template class CsvLogReader<MmeRecord>;
extern template class CsvLogReader<DeviceRecord>;
extern template class CsvLogReader<SectorInfo>;

}  // namespace wearscope::trace
