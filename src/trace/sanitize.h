// Stream sanitizer: record-level graceful degradation for hostile feeds.
//
// A live MME/proxy feed is delivered in *arrival order*, and real feeds
// re-deliver batches (duplicates), deliver them late (bounded reordering)
// and occasionally regress wildly (a middlebox replaying yesterday's
// spool).  The sanitizer normalizes an arrival-ordered capture into the
// canonical clean form both pipelines consume, with skip-and-count
// quarantine semantics:
//
//   * structurally invalid records (empty/non-printable proxy host) drop,
//   * records whose TAC is absent from the DeviceDB snapshot drop (no
//     downstream classification is possible without a DeviceDB row),
//   * exact re-deliveries drop (first copy wins),
//   * late arrivals within `reorder_window` records are re-sorted back
//     into place (counted as `reordered`, kept),
//   * arrivals older than anything already emitted from the window drop
//     as `regressions` (zero-allowed-lateness beyond the window).
//
// A clean, time-sorted capture passes through bit-identically with every
// counter zero — sanitization is idempotent and deterministic, which is
// what lets the chaos differential harness equate quarantine counters with
// injected fault counts exactly.
#pragma once

#include "trace/quarantine.h"
#include "trace/store.h"

namespace wearscope::trace {

/// Knobs of the record-level sanitizer.
struct SanitizeOptions {
  /// Late arrivals displaced by fewer than this many records are repaired
  /// (re-sorted); older ones are quarantined as regressions.
  std::size_t reorder_window = 64;
  /// Drop event records whose TAC has no DeviceDB row.
  bool drop_unknown_tac = true;
  /// Drop proxy records with an empty or non-printable host.
  bool drop_bad_host = true;
  /// Drop exact duplicate records (first delivery wins).
  bool drop_duplicates = true;
};

/// Sanitizes `store`'s proxy and MME logs in place (arrival order in, time
/// order out) and returns what was quarantined.  The devices/sectors tables
/// are left untouched; the DeviceDB snapshot in `store.devices` defines
/// which TACs are known.
QuarantineStats sanitize_store(TraceStore& store,
                               const SanitizeOptions& options = {});

/// True when `host` is acceptable to the sanitizer: non-empty, printable
/// ASCII only (the generator and every real SNI satisfy this).
[[nodiscard]] bool host_is_valid(const std::string& host) noexcept;

}  // namespace wearscope::trace
