#include "trace/sanitize.h"

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/rng.h"

namespace wearscope::trace {

namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) noexcept {
  return util::splitmix64(h ^ v);
}

std::uint64_t hash_of(const ProxyRecord& r) noexcept {
  std::uint64_t h = 0x50525859;  // "PRXY"
  h = mix(h, static_cast<std::uint64_t>(r.timestamp));
  h = mix(h, r.user_id);
  h = mix(h, r.tac);
  h = mix(h, static_cast<std::uint64_t>(r.protocol));
  h = mix(h, std::hash<std::string>{}(r.host));
  h = mix(h, std::hash<std::string>{}(r.url_path));
  h = mix(h, r.bytes_up);
  h = mix(h, r.bytes_down);
  h = mix(h, r.duration_ms);
  return h;
}

std::uint64_t hash_of(const MmeRecord& r) noexcept {
  std::uint64_t h = 0x4d4d4531;  // "MME1"
  h = mix(h, static_cast<std::uint64_t>(r.timestamp));
  h = mix(h, r.user_id);
  h = mix(h, r.tac);
  h = mix(h, static_cast<std::uint64_t>(r.event));
  h = mix(h, r.sector_id);
  return h;
}

/// Exact-duplicate detector: hash buckets with full-record equality on
/// collision, so a 64-bit hash collision can never drop a legitimate
/// record (that would silently break the chaos differential invariant).
template <typename Record>
class DedupSet {
 public:
  /// True when `r` was not seen before (and records it).
  bool insert(const Record& r) {
    std::vector<Record>& bucket = buckets_[hash_of(r)];
    for (const Record& seen : bucket) {
      if (seen == r) return false;
    }
    bucket.push_back(r);
    return true;
  }

 private:
  std::unordered_map<std::uint64_t, std::vector<Record>> buckets_;
};

/// Sanitizes one event log.  `validate` returns the quarantine counter to
/// bump for a structurally invalid record, or nullptr when it is fine.
template <typename Record, typename Validate>
std::vector<Record> sanitize_log(std::vector<Record>&& in,
                                 const SanitizeOptions& opt,
                                 QuarantineStats& q, Validate validate) {
  struct Pending {
    util::SimTime ts = 0;
    std::uint64_t seq = 0;
    Record rec;
  };
  // std::make_heap comparator: "later than" puts the earliest (ts, seq) at
  // the front.  A manual vector heap (instead of std::priority_queue) lets
  // the popped element be moved out rather than copied.
  struct Later {
    bool operator()(const Pending& a, const Pending& b) const noexcept {
      return a.ts != b.ts ? a.ts > b.ts : a.seq > b.seq;
    }
  };
  std::vector<Pending> window;
  const auto pop_earliest = [&window]() -> Record {
    std::pop_heap(window.begin(), window.end(), Later{});
    Record rec = std::move(window.back().rec);
    window.pop_back();
    return rec;
  };
  DedupSet<Record> seen;
  std::vector<Record> out;
  out.reserve(in.size());
  std::optional<util::SimTime> last_emitted;
  std::optional<util::SimTime> max_arrival;
  std::uint64_t seq = 0;

  for (Record& r : in) {
    const util::SimTime ts = r.timestamp;
    if (std::uint64_t* counter = validate(r)) {
      ++*counter;
      continue;
    }
    if (opt.drop_duplicates && !seen.insert(r)) {
      ++q.duplicates;
      continue;
    }
    if (last_emitted && ts < *last_emitted) {
      // Older than records already released from the reorder window: the
      // sorted prefix is published, so this can only be quarantined.
      ++q.regressions;
      continue;
    }
    if (max_arrival && ts < *max_arrival) ++q.reordered;
    max_arrival = max_arrival ? std::max(*max_arrival, ts) : ts;
    window.push_back(Pending{ts, seq++, std::move(r)});
    std::push_heap(window.begin(), window.end(), Later{});
    if (window.size() > opt.reorder_window) {
      last_emitted = window.front().ts;
      out.push_back(pop_earliest());
    }
  }
  while (!window.empty()) out.push_back(pop_earliest());
  return out;
}

}  // namespace

bool host_is_valid(const std::string& host) noexcept {
  if (host.empty()) return false;
  for (const char c : host) {
    if (c < 0x21 || c > 0x7e) return false;
  }
  return true;
}

QuarantineStats sanitize_store(TraceStore& store,
                               const SanitizeOptions& options) {
  QuarantineStats q;

  // The DeviceDB snapshot defines the known-TAC universe.  An empty
  // snapshot disables the filter: quarantining an entire capture because
  // the device table is missing would be degradation without the grace.
  std::unordered_set<Tac> known_tacs;
  known_tacs.reserve(store.devices.size());
  for (const DeviceRecord& d : store.devices) known_tacs.insert(d.tac);
  const bool check_tac = options.drop_unknown_tac && !known_tacs.empty();

  store.proxy = sanitize_log(
      std::move(store.proxy), options, q,
      [&](const ProxyRecord& r) -> std::uint64_t* {
        if (options.drop_bad_host && !host_is_valid(r.host))
          return &q.bad_host;
        if (check_tac && !known_tacs.contains(r.tac)) return &q.unknown_tac;
        return nullptr;
      });
  store.mme = sanitize_log(std::move(store.mme), options, q,
                           [&](const MmeRecord& r) -> std::uint64_t* {
                             if (check_tac && !known_tacs.contains(r.tac))
                               return &q.unknown_tac;
                             return nullptr;
                           });
  return q;
}

std::string to_text(const QuarantineStats& s) {
  if (!s.any()) return {};
  std::string out = "quarantine:\n";
  const auto line = [&](const char* what, std::uint64_t n) {
    if (n == 0) return;
    out += "  ";
    out += what;
    out += " : ";
    out += std::to_string(n);
    out += '\n';
  };
  line("corrupt files rejected   ", s.corrupt_files);
  line("corrupt binary tails     ", s.corrupt_tails);
  line("corrupt v2 blocks        ", s.corrupt_blocks);
  line("corrupt csv rows         ", s.corrupt_rows);
  line("duplicates dropped       ", s.duplicates);
  line("timestamp regressions    ", s.regressions);
  line("unknown TACs dropped     ", s.unknown_tac);
  line("bad hosts dropped        ", s.bad_host);
  line("late arrivals repaired   ", s.reordered);
  line("transient reads recovered", s.transient_retries);
  line("dropped after retries    ", s.dropped_after_retry);
  return out;
}

}  // namespace wearscope::trace
