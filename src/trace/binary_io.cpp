#include "trace/binary_io.h"

#include <array>
#include <bit>
#include <optional>
#include <utility>

#include "trace/record_codec.h"
#include "util/error.h"

namespace wearscope::trace {

void BinaryEncoder::put_u8(std::uint8_t v) {
  out_->put(static_cast<char>(v));
  if (!*out_) throw util::IoError("binary write failed");
}

void BinaryEncoder::put_u16(std::uint16_t v) {
  const std::array<char, 2> b = {static_cast<char>(v & 0xff),
                                 static_cast<char>((v >> 8) & 0xff)};
  out_->write(b.data(), b.size());
  if (!*out_) throw util::IoError("binary write failed");
}

void BinaryEncoder::put_u32(std::uint32_t v) {
  std::array<char, 4> b{};
  for (int i = 0; i < 4; ++i) b[static_cast<std::size_t>(i)] =
      static_cast<char>((v >> (8 * i)) & 0xff);
  out_->write(b.data(), b.size());
  if (!*out_) throw util::IoError("binary write failed");
}

void BinaryEncoder::put_u64(std::uint64_t v) {
  std::array<char, 8> b{};
  for (int i = 0; i < 8; ++i) b[static_cast<std::size_t>(i)] =
      static_cast<char>((v >> (8 * i)) & 0xff);
  out_->write(b.data(), b.size());
  if (!*out_) throw util::IoError("binary write failed");
}

void BinaryEncoder::put_i64(std::int64_t v) {
  put_u64(static_cast<std::uint64_t>(v));
}

void BinaryEncoder::put_f64(double v) {
  put_u64(std::bit_cast<std::uint64_t>(v));
}

void BinaryEncoder::put_string(const std::string& s) {
  util::require(s.size() <= 0xffff, "binary string field too long");
  put_u16(static_cast<std::uint16_t>(s.size()));
  out_->write(s.data(), static_cast<std::streamsize>(s.size()));
  if (!*out_) throw util::IoError("binary write failed");
}

std::uint8_t BinaryDecoder::get_u8() {
  const int c = in_->get();
  if (c == std::char_traits<char>::eof())
    throw util::ParseError("binary log: truncated record at byte " +
                           std::to_string(offset_));
  ++offset_;
  return static_cast<std::uint8_t>(c);
}

std::uint16_t BinaryDecoder::get_u16() {
  std::array<char, 2> b{};
  in_->read(b.data(), b.size());
  if (in_->gcount() != 2)
    throw util::ParseError("binary log: truncated u16 at byte " +
                           std::to_string(offset_));
  offset_ += 2;
  return static_cast<std::uint16_t>(
      static_cast<std::uint8_t>(b[0]) |
      (static_cast<std::uint16_t>(static_cast<std::uint8_t>(b[1])) << 8));
}

std::uint32_t BinaryDecoder::get_u32() {
  std::array<char, 4> b{};
  in_->read(b.data(), b.size());
  if (in_->gcount() != 4)
    throw util::ParseError("binary log: truncated u32 at byte " +
                           std::to_string(offset_));
  offset_ += 4;
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i)
    v = (v << 8) |
        static_cast<std::uint8_t>(b[static_cast<std::size_t>(i)]);
  return v;
}

std::uint64_t BinaryDecoder::get_u64() {
  std::array<char, 8> b{};
  in_->read(b.data(), b.size());
  if (in_->gcount() != 8)
    throw util::ParseError("binary log: truncated u64 at byte " +
                           std::to_string(offset_));
  offset_ += 8;
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i)
    v = (v << 8) |
        static_cast<std::uint8_t>(b[static_cast<std::size_t>(i)]);
  return v;
}

std::int64_t BinaryDecoder::get_i64() {
  return static_cast<std::int64_t>(get_u64());
}

double BinaryDecoder::get_f64() { return std::bit_cast<double>(get_u64()); }

std::string BinaryDecoder::get_string() {
  const std::uint64_t prefix_at = offset_;
  const std::uint16_t len = get_u16();
  if (len == 0) return {};
  // Clamp the claimed length against what the stream can actually deliver
  // before allocating: a corrupt prefix must fail cleanly, not commit
  // 64 KiB for a 5-byte tail.  Seekable streams (files, stringstreams —
  // every bundle source) know their remaining size; for the rare
  // non-seekable stream the post-read gcount check below still guards.
  const std::streampos pos = in_->tellg();
  if (pos != std::streampos(-1)) {
    in_->seekg(0, std::ios::end);
    const std::streampos end = in_->tellg();
    in_->seekg(pos);
    if (end != std::streampos(-1) &&
        static_cast<std::uint64_t>(end - pos) < len) {
      throw util::ParseError(
          "binary log: string length " + std::to_string(len) + " exceeds " +
          std::to_string(static_cast<std::uint64_t>(end - pos)) +
          " remaining bytes (corrupt length prefix at byte " +
          std::to_string(prefix_at) + ")");
    }
  }
  std::string s(len, '\0');
  in_->read(s.data(), len);
  if (in_->gcount() != static_cast<std::streamsize>(len))
    throw util::ParseError("binary log: truncated string at byte " +
                           std::to_string(offset_));
  offset_ += len;
  return s;
}

bool BinaryDecoder::at_eof() {
  return in_->peek() == std::char_traits<char>::eof();
}

template <typename Record>
BinaryLogWriter<Record>::BinaryLogWriter(std::ostream& out) : enc_(out) {
  enc_.put_u32(magic_of<Record>());
  enc_.put_u16(kBinaryFormatVersion);
  enc_.put_u16(0);  // reserved
}

template <typename Record>
void BinaryLogWriter<Record>::write(const Record& r) {
  encode_record(enc_, r);
  ++count_;
}

template <typename Record>
BinaryLogReader<Record>::BinaryLogReader(std::istream& in) : dec_(in) {
  const std::uint32_t magic = dec_.get_u32();
  if (magic != magic_of<Record>())
    throw util::ParseError("binary log: wrong magic (different record type?)");
  const std::uint16_t version = dec_.get_u16();
  if (version != kBinaryFormatVersion) {
    if (version == 2)
      throw util::ParseError(
          "binary log: blocked v2 log given to the v1 stream reader (load "
          "it via trace/block_io, which handles both versions)");
    throw util::ParseError("binary log: unsupported format version " +
                           std::to_string(version));
  }
  dec_.get_u16();  // reserved
}

template <typename Record>
bool BinaryLogReader<Record>::next(Record& out) {
  if (dec_.at_eof()) return false;
  decode_record(dec_, out);
  return true;
}

template <typename Record>
std::vector<Record> read_binary_log_lenient(std::istream& in,
                                            QuarantineStats& quarantine) {
  std::vector<Record> records;
  std::optional<BinaryLogReader<Record>> reader;
  try {
    reader.emplace(in);
  } catch (const util::ParseError&) {
    ++quarantine.corrupt_files;
    return records;
  }
  try {
    Record r;
    while (reader->next(r)) records.push_back(std::move(r));
  } catch (const util::ParseError&) {
    ++quarantine.corrupt_tails;
  }
  return records;
}

template std::vector<ProxyRecord> read_binary_log_lenient<ProxyRecord>(
    std::istream&, QuarantineStats&);
template std::vector<MmeRecord> read_binary_log_lenient<MmeRecord>(
    std::istream&, QuarantineStats&);
template std::vector<DeviceRecord> read_binary_log_lenient<DeviceRecord>(
    std::istream&, QuarantineStats&);
template std::vector<SectorInfo> read_binary_log_lenient<SectorInfo>(
    std::istream&, QuarantineStats&);

template class BinaryLogWriter<ProxyRecord>;
template class BinaryLogWriter<MmeRecord>;
template class BinaryLogWriter<DeviceRecord>;
template class BinaryLogWriter<SectorInfo>;
template class BinaryLogReader<ProxyRecord>;
template class BinaryLogReader<MmeRecord>;
template class BinaryLogReader<DeviceRecord>;
template class BinaryLogReader<SectorInfo>;

}  // namespace wearscope::trace
