#include "trace/columns.h"

#include <functional>
#include <unordered_map>
#include <utility>

#include "par/task_pool.h"

namespace wearscope::trace {

namespace {

/// Runs `batch` on `pool` (or inline when pool is null): same helper
/// shape as the blocked decode, same any-thread-count determinism —
/// every task writes only columns it owns.
void run_batch(std::vector<std::function<void()>> batch,
               par::TaskPool* pool) {
  if (pool == nullptr) {
    for (std::function<void()>& task : batch) task();
    return;
  }
  pool->run(std::move(batch));
}

}  // namespace

ProxyColumns build_proxy_columns(const std::vector<ProxyRecord>& rows,
                                 par::TaskPool* pool) {
  ProxyColumns cols;
  const std::size_t n = rows.size();
  std::vector<std::function<void()>> batch;
  batch.push_back([&rows, &cols, n] {
    cols.timestamp.resize(n);
    cols.user_id.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      cols.timestamp[i] = rows[i].timestamp;
      cols.user_id[i] = rows[i].user_id;
    }
  });
  batch.push_back([&rows, &cols, n] {
    cols.tac_id.resize(n);
    std::unordered_map<Tac, std::uint32_t> ids;
    for (std::size_t i = 0; i < n; ++i) {
      const auto next = static_cast<std::uint32_t>(cols.tacs.size());
      const auto [it, inserted] = ids.emplace(rows[i].tac, next);
      if (inserted) cols.tacs.push_back(rows[i].tac);
      cols.tac_id[i] = it->second;
    }
  });
  batch.push_back([&rows, &cols, n] {
    cols.host_id.resize(n);
    std::unordered_map<std::string, std::uint32_t> ids;
    for (std::size_t i = 0; i < n; ++i) {
      const auto next = static_cast<std::uint32_t>(cols.hosts.size());
      const auto [it, inserted] = ids.emplace(rows[i].host, next);
      if (inserted) cols.hosts.push_back(rows[i].host);
      cols.host_id[i] = it->second;
    }
  });
  batch.push_back([&rows, &cols, n] {
    cols.protocol.resize(n);
    cols.duration_ms.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      cols.protocol[i] = static_cast<std::uint8_t>(rows[i].protocol);
      cols.duration_ms[i] = rows[i].duration_ms;
    }
  });
  batch.push_back([&rows, &cols, n] {
    cols.bytes_up.resize(n);
    cols.bytes_down.resize(n);
    cols.bytes_total.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      cols.bytes_up[i] = rows[i].bytes_up;
      cols.bytes_down[i] = rows[i].bytes_down;
      cols.bytes_total[i] = rows[i].bytes_total();
    }
  });
  run_batch(std::move(batch), pool);
  return cols;
}

MmeColumns build_mme_columns(const std::vector<MmeRecord>& rows,
                             par::TaskPool* pool) {
  MmeColumns cols;
  const std::size_t n = rows.size();
  std::vector<std::function<void()>> batch;
  batch.push_back([&rows, &cols, n] {
    cols.timestamp.resize(n);
    cols.user_id.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      cols.timestamp[i] = rows[i].timestamp;
      cols.user_id[i] = rows[i].user_id;
    }
  });
  batch.push_back([&rows, &cols, n] {
    cols.tac_id.resize(n);
    std::unordered_map<Tac, std::uint32_t> ids;
    for (std::size_t i = 0; i < n; ++i) {
      const auto next = static_cast<std::uint32_t>(cols.tacs.size());
      const auto [it, inserted] = ids.emplace(rows[i].tac, next);
      if (inserted) cols.tacs.push_back(rows[i].tac);
      cols.tac_id[i] = it->second;
    }
  });
  batch.push_back([&rows, &cols, n] {
    cols.event.resize(n);
    cols.sector_id.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      cols.event[i] = static_cast<std::uint8_t>(rows[i].event);
      cols.sector_id[i] = rows[i].sector_id;
    }
  });
  run_batch(std::move(batch), pool);
  return cols;
}

}  // namespace wearscope::trace
