// Release-safe anonymization of trace bundles.
//
// The paper's data could only be held short-term at the middleboxes and
// published in aggregate (§3.5); an ISP sharing such traces externally
// would additionally (a) re-key subscriber identifiers with a keyed hash,
// (b) coarsen endpoint hosts to their registrable domain, (c) quantize
// timestamps, and (d) optionally drop the URL path entirely.  This module
// implements that pass such that every analysis of this library still runs
// on the anonymized capture (identifier joins survive re-keying, suffix
// signatures survive domain coarsening).
#pragma once

#include <cstdint>

#include "trace/store.h"

namespace wearscope::trace {

/// Anonymization policy knobs.
struct AnonymizePolicy {
  /// Secret key for the user-id hash; two bundles anonymized with the same
  /// key remain joinable, different keys are unlinkable.
  std::uint64_t key = 0;
  /// Round timestamps down to this granularity (seconds). 1 = keep exact.
  /// Coarser than the 60 s sessionization gap will distort Fig. 7.
  std::int64_t time_quantum_s = 1;
  /// Replace hosts by their registrable domain ("api.weather.com" ->
  /// "weather.com"). App signatures are suffix rules, so they still match.
  bool coarsen_hosts = true;
  /// Drop HTTP URL paths (the proxy's most sensitive field).
  bool drop_url_paths = true;
};

/// Applies `policy` in place. Device and sector tables are left untouched:
/// TACs identify models (not individuals) and sectors are infrastructure.
void anonymize(TraceStore& store, const AnonymizePolicy& policy);

/// The keyed user-id mapping used by anonymize() (exposed for tests and
/// for joining auxiliary data that was re-keyed with the same key).
UserId anonymize_user_id(UserId id, std::uint64_t key);

}  // namespace wearscope::trace
