// Persistence of a complete capture to a directory, mirroring how the
// measurement infrastructure stores one file per vantage point:
//
//   <dir>/proxy.(bin|csv)    transparent-proxy transaction log
//   <dir>/mme.(bin|csv)      MME mobility log
//   <dir>/devices.(bin|csv)  DeviceDB snapshot
//   <dir>/sectors.(bin|csv)  antenna-sector positions
#pragma once

#include <filesystem>
#include <string>

#include "trace/quarantine.h"
#include "trace/store.h"

namespace wearscope::trace {

/// Serialization format of a saved bundle.
enum class BundleFormat {
  kBinary,  ///< Compact length-delimited binary (default).
  kCsv,     ///< Header-validated CSV, one file per log.
};

/// Writes all four logs of `store` into `dir` (created if absent).
/// Throws util::IoError on filesystem failures.
void save_bundle(const TraceStore& store, const std::filesystem::path& dir,
                 BundleFormat format = BundleFormat::kBinary);

/// Loads a bundle previously written by save_bundle. The format is detected
/// from the file extensions present in `dir`.
/// Throws util::IoError when files are missing, util::ParseError when they
/// are malformed.
TraceStore load_bundle(const std::filesystem::path& dir);

/// Lenient variant for hostile captures: instead of aborting on the first
/// malformed byte, recovers every record it can and accounts for the rest
/// in `quarantine` (see trace/quarantine.h — rejected headers, abandoned
/// binary tails, skipped CSV rows).  Missing files still throw
/// util::IoError: an absent log is a deployment error, not line noise.
TraceStore load_bundle(const std::filesystem::path& dir,
                       QuarantineStats& quarantine);

}  // namespace wearscope::trace
