// Persistence of a complete capture to a directory, mirroring how the
// measurement infrastructure stores one file per vantage point:
//
//   <dir>/proxy.(bin|csv)    transparent-proxy transaction log
//   <dir>/mme.(bin|csv)      MME mobility log
//   <dir>/devices.(bin|csv)  DeviceDB snapshot
//   <dir>/sectors.(bin|csv)  antenna-sector positions
//
// Binary logs are written in the blocked v2 format by default
// (trace/block_io: CRC-framed blocks, mmap + parallel decode); v1 streams
// remain fully readable and can still be written for older consumers.
// When both <stem>.bin and <stem>.csv exist, the binary file wins and the
// loader says so on stderr — a silent preference bit us in the field.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "trace/block_io.h"
#include "trace/columnar_io.h"
#include "trace/quarantine.h"
#include "trace/store.h"

namespace wearscope::trace {

/// Serialization format of a saved bundle.
enum class BundleFormat {
  kBinary,  ///< Compact length-delimited binary (default).
  kCsv,     ///< Header-validated CSV, one file per log.
};

/// Writes all four logs of `store` into `dir` (created if absent).
/// `binary_version` selects the on-disk binary layout (3 = columnar v3,
/// 2 = blocked v2, 1 = legacy stream; ignored for CSV).  Throws
/// util::IoError on filesystem failures, with the OS errno explanation in
/// the message.
void save_bundle(const TraceStore& store, const std::filesystem::path& dir,
                 BundleFormat format = BundleFormat::kBinary,
                 std::uint16_t binary_version = kBinaryFormatV2);

/// Knobs for load_bundle.  With `threads > 1` every v2 block of every log
/// joins ONE task batch on a par::TaskPool (v1/CSV logs contribute one
/// whole-log task each); the loaded store is bitwise identical for any
/// thread count.  `use_mmap` false forces the portable read-whole-file
/// path (util::MapMode::kReadWholeFile) — same bytes, same result.
struct LoadOptions {
  int threads = 1;
  bool use_mmap = true;
};

/// Loads a bundle previously written by save_bundle. The format is detected
/// from the file extensions present in `dir` (binary version from the file
/// header — v1, v2 and v3 all load).
/// Throws util::IoError when files are missing, util::ParseError when they
/// are malformed.
TraceStore load_bundle(const std::filesystem::path& dir,
                       const LoadOptions& options);
TraceStore load_bundle(const std::filesystem::path& dir);

/// Lenient variant for hostile captures: instead of aborting on the first
/// malformed byte, recovers every record it can and accounts for the rest
/// in `quarantine` (see trace/quarantine.h — rejected headers, abandoned
/// v1 binary tails, quarantined v2 blocks, skipped CSV rows).  Missing
/// files still throw util::IoError: an absent log is a deployment error,
/// not line noise.
TraceStore load_bundle(const std::filesystem::path& dir,
                       QuarantineStats& quarantine,
                       const LoadOptions& options);
TraceStore load_bundle(const std::filesystem::path& dir,
                       QuarantineStats& quarantine);

/// What one log of a bundle looks like on disk, for operator audits
/// (`wearscope_inspect`): which file backs the stem, its format version
/// (0 = CSV), and how many blocks/records it claims.
struct BundleLogAudit {
  std::string stem;           ///< "proxy", "mme", "devices" or "sectors".
  std::string file;           ///< File name actually loaded, e.g. "proxy.bin".
  std::uint16_t version = 0;  ///< 3 = columnar, 2 = blocked, 1 = v1, 0 = CSV.
  std::uint64_t blocks = 0;   ///< v2 frames / v3 row groups (0 otherwise).
  std::uint64_t records = 0;  ///< Records a lenient reader would recover.
  /// v3 only: dictionary sizes and per-column compressed bytes (the
  /// column_bytes vector is empty for every other version).
  ColumnarLayoutInfo columnar;
};

/// Probes all four logs of a bundle without building a TraceStore.
/// Throws util::IoError on missing files, util::ParseError when a binary
/// header is not the expected record type at all.
std::vector<BundleLogAudit> audit_bundle(const std::filesystem::path& dir);

}  // namespace wearscope::trace
