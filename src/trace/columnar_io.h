// Columnar binary log format (on-disk version 3).
//
// v2 (trace/block_io) framed the v1 row encoding into CRC-checked blocks;
// the bytes inside a block are still one record after another, so a scan
// that wants only timestamps and byte counts drags every url_path through
// the cache with them.  v3 keeps the same 8-byte file header and the same
// block-granular quarantine contract but stores each row group as a
// struct-of-arrays: one contiguous, individually CRC-framed segment per
// column, with the repetitive columns squeezed down before they ever hit
// disk:
//
//   [magic u32][version=3 u16][reserved u16]            file header
//   3 dictionary sections, fixed order hosts/tacs/sectors {
//     [entry_count u32][byte_length u32][crc32 u32]     section header
//     [payload]                                         byte_length bytes
//   }
//   repeat {                                            row groups
//     [record_count u32][byte_length u32]               group header
//     per column, in schema order {
//       [byte_length u32][crc32 u32][payload]           column segment
//     }                                                 (sums to the group
//   }                                                    byte_length)
//
// Column encodings: timestamps are zigzag varint deltas (restarting from 0
// in every group, so groups decode independently); ids, byte counts and
// durations are plain varints; hosts, TACs and sector ids are varint
// indices into the file-level dictionaries; protocol/event stay one raw
// byte; free-form strings stay u16-length-prefixed; doubles stay 8 raw
// bytes.  The hosts dictionary payload is a string sequence, the tac and
// sector payloads are little-endian u32 arrays.
//
// Corruption semantics mirror v2 exactly, because the group headers chain
// the same way frame headers do: a bad column CRC, an out-of-range
// dictionary index, a varint overrun or a segment that does not consume
// exactly its byte_length quarantines ONE group (corrupt_blocks) and the
// reader resyncs at the next group header.  record_count > byte_length is
// still impossible (every column costs at least one byte per record) and
// skips the group without decoding.  Only the dictionaries are file-level
// state: a damaged dictionary section makes every index in the file
// meaningless, so a lenient reader quarantines the whole file
// (corrupt_files) rather than fabricating hosts.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "trace/block_io.h"
#include "trace/records.h"

namespace wearscope::par {
class TaskPool;
}  // namespace wearscope::par

namespace wearscope::trace {

/// On-disk version written by write_columnar_log.
inline constexpr std::uint16_t kBinaryFormatV3 = 3;

/// Bytes of one dictionary section header: entry_count + byte_length + crc.
inline constexpr std::size_t kDictHeaderBytes = 12;

/// Bytes of one row-group header: record_count + byte_length.
inline constexpr std::size_t kGroupHeaderBytes = 8;

/// Bytes of one column-segment header: byte_length + crc.
inline constexpr std::size_t kColumnHeaderBytes = 8;

/// Columns in the v3 schema of each record type (the per-group segment
/// count): ProxyRecord 9, MmeRecord 5, DeviceRecord 4, SectorInfo 3.
template <typename Record>
[[nodiscard]] constexpr std::size_t columnar_column_count();
template <>
constexpr std::size_t columnar_column_count<ProxyRecord>() { return 9; }
template <>
constexpr std::size_t columnar_column_count<MmeRecord>() { return 5; }
template <>
constexpr std::size_t columnar_column_count<DeviceRecord>() { return 4; }
template <>
constexpr std::size_t columnar_column_count<SectorInfo>() { return 3; }

/// File-level dictionaries of one v3 log, in first-appearance order over
/// the record vector the writer saw.  Record types that do not use a
/// dictionary leave it empty (the section is still written, 12 bytes).
struct ColumnDicts {
  std::vector<std::string> hosts;
  std::vector<std::uint32_t> tacs;
  std::vector<std::uint32_t> sectors;
};

/// One row group as located by the group scan (offsets into the group
/// chain, which starts AFTER the dictionary sections).
struct ColumnGroup {
  std::size_t payload_offset = 0;  ///< First column-segment header.
  std::uint32_t record_count = 0;
  std::uint32_t byte_length = 0;   ///< All column segments, headers included.
  /// False when the group header is impossible (record_count exceeds
  /// byte_length): the group is skipped, never decoded.
  bool header_ok = true;
};

/// Group index of one v3 group chain, same contract as BlockIndex.
struct ColumnGroupIndex {
  std::vector<ColumnGroup> groups;
  std::uint64_t total_records = 0;
  std::uint64_t corrupt_blocks = 0;
};

/// Scans the group chain (`chain` starts at the first group header, after
/// the dictionary sections) without touching payloads.  Strict: throws
/// util::ParseError on structural damage.  Lenient: skips impossible
/// group headers, counts a broken chain as one corrupt block and stops.
[[nodiscard]] ColumnGroupIndex scan_column_groups(
    std::span<const std::byte> chain, bool lenient);

/// What write_columnar_log produced (mirrors BlockLogWriter's counters).
struct ColumnarWriteInfo {
  std::uint64_t records = 0;
  std::uint64_t blocks = 0;  ///< Row groups written.
};

/// Writes `records` as one v3 log: two passes, the first building the
/// dictionaries in first-appearance order, the second encoding row groups
/// of up to `options.max_block_records` records (the byte target does not
/// apply: columns are encoded a whole group at a time).  Throws
/// util::IoError on write failure.
template <typename Record>
ColumnarWriteInfo write_columnar_log(std::ostream& out,
                                     const std::vector<Record>& records,
                                     BlockWriterOptions options = {});

/// A v3 log body being decoded with the same schedule/finalize split as
/// BlockedLogDecode: the constructor — sequential — parses the dictionary
/// sections and scans the group chain; schedule() appends one decode task
/// per group (tasks write disjoint slices of `out`); finalize() —
/// sequential, after the batch ran — compacts failed groups in order and
/// returns the corrupt-group count.
template <typename Record>
class ColumnarLogDecode {
 public:
  /// `body` is the log body after the 8-byte file header; it must stay
  /// alive (and unmoved) until finalize() returns.  Strict mode throws
  /// util::ParseError on damaged dictionaries or a damaged chain; lenient
  /// mode records the damage instead (see dicts_ok()).
  ColumnarLogDecode(std::span<const std::byte> body, bool lenient);

  /// False only in lenient mode, when a dictionary section was damaged:
  /// the whole file is unusable and the caller must count one
  /// corrupt_files (schedule()/finalize() degrade to no-ops).
  [[nodiscard]] bool dicts_ok() const noexcept { return dicts_ok_; }

  /// Claimed record total (the pre-size target).
  [[nodiscard]] std::uint64_t total_records() const noexcept {
    return index_.total_records;
  }
  /// Groups found by the scan.
  [[nodiscard]] const ColumnGroupIndex& index() const noexcept {
    return index_;
  }
  /// The parsed file-level dictionaries.
  [[nodiscard]] const ColumnDicts& dicts() const noexcept { return dicts_; }

  /// Resizes `out` and appends the per-group decode tasks to `batch`.
  void schedule(std::vector<Record>& out,
                std::vector<std::function<void()>>& batch);

  /// Compacts `out` (stable, group order) and returns corrupt groups
  /// (scan losses + decode/CRC failures).  Strict mode always returns 0 —
  /// failures have already thrown out of the batch.
  std::uint64_t finalize(std::vector<Record>& out);

 private:
  std::span<const std::byte> chain_;
  bool lenient_ = false;
  bool dicts_ok_ = true;
  ColumnDicts dicts_;
  ColumnGroupIndex index_;
  std::vector<std::uint64_t> group_base_;  ///< Slice start per group.
  /// Written concurrently, one slot per group, by the decode tasks.
  std::vector<std::uint8_t> group_done_;
};

/// Byte-level layout of one v3 log for operator audits (wearscope_inspect
/// prints dictionary sizes and per-column compressed bytes next to the
/// v2 blocks/records columns).  Produced by a lenient probe: the counts
/// describe what a lenient reader would address.
struct ColumnarLayoutInfo {
  std::uint64_t groups = 0;
  std::uint64_t records = 0;
  std::uint64_t dict_hosts = 0;    ///< Host dictionary entries.
  std::uint64_t dict_tacs = 0;     ///< TAC dictionary entries.
  std::uint64_t dict_sectors = 0;  ///< Sector dictionary entries.
  std::uint64_t dict_bytes = 0;    ///< Dictionary payload bytes (all three).
  /// Compressed payload bytes per column, schema order, summed over all
  /// addressable groups (segment headers excluded).
  std::vector<std::uint64_t> column_bytes;
};

/// Probes the layout of a v3 log body (after the 8-byte file header)
/// without decoding records.  Lenient: damage truncates the walk rather
/// than throwing.
template <typename Record>
[[nodiscard]] ColumnarLayoutInfo probe_columnar_layout(
    std::span<const std::byte> body);

extern template ColumnarWriteInfo write_columnar_log<ProxyRecord>(
    std::ostream&, const std::vector<ProxyRecord>&, BlockWriterOptions);
extern template ColumnarWriteInfo write_columnar_log<MmeRecord>(
    std::ostream&, const std::vector<MmeRecord>&, BlockWriterOptions);
extern template ColumnarWriteInfo write_columnar_log<DeviceRecord>(
    std::ostream&, const std::vector<DeviceRecord>&, BlockWriterOptions);
extern template ColumnarWriteInfo write_columnar_log<SectorInfo>(
    std::ostream&, const std::vector<SectorInfo>&, BlockWriterOptions);
extern template class ColumnarLogDecode<ProxyRecord>;
extern template class ColumnarLogDecode<MmeRecord>;
extern template class ColumnarLogDecode<DeviceRecord>;
extern template class ColumnarLogDecode<SectorInfo>;
extern template ColumnarLayoutInfo probe_columnar_layout<ProxyRecord>(
    std::span<const std::byte>);
extern template ColumnarLayoutInfo probe_columnar_layout<MmeRecord>(
    std::span<const std::byte>);
extern template ColumnarLayoutInfo probe_columnar_layout<DeviceRecord>(
    std::span<const std::byte>);
extern template ColumnarLayoutInfo probe_columnar_layout<SectorInfo>(
    std::span<const std::byte>);

}  // namespace wearscope::trace
