// In-memory struct-of-arrays views over the two event logs.
//
// The analysis kernels (core/analysis_*) spend their time streaming a few
// fields of millions of ProxyRecord/MmeRecord rows; the row layout drags
// two std::strings and every unused field through the cache per record.
// These views transpose the logs into dense per-field vectors once, so a
// kernel that wants timestamps and byte counts touches exactly those
// bytes.  Hosts and TACs are dictionary-coded in first-appearance order —
// the same order the v3 on-disk dictionaries use (trace/columnar_io) —
// which lets per-record string/hash work become a per-dictionary-entry
// precomputation (e.g. one wearable flag per TAC entry instead of one
// DeviceDB hash lookup per record).
//
// The views are built FROM the row vectors, for every input format, so
// v1/v2/v3 inputs produce identical columns and therefore identical
// reports.  Free-form strings (url_path) stay row-side: no rewritten
// kernel reads them.  Row vectors remain the mutation interface; call
// TraceStore::build_columns() after the store reaches its final order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/records.h"

namespace wearscope::par {
class TaskPool;
}  // namespace wearscope::par

namespace wearscope::trace {

/// Columnar transpose of a ProxyRecord vector.  Index i of every column
/// is row i of the source vector; `hosts`/`tacs` are the dictionaries the
/// *_id columns index, in first-appearance order.
struct ProxyColumns {
  std::vector<util::SimTime> timestamp;
  std::vector<UserId> user_id;
  std::vector<std::uint32_t> tac_id;    ///< Index into `tacs`.
  std::vector<std::uint8_t> protocol;   ///< Raw Protocol byte.
  std::vector<std::uint32_t> host_id;   ///< Index into `hosts`.
  std::vector<std::uint64_t> bytes_up;
  std::vector<std::uint64_t> bytes_down;
  std::vector<std::uint64_t> bytes_total;
  std::vector<std::uint32_t> duration_ms;
  std::vector<std::string> hosts;       ///< Host dictionary.
  std::vector<Tac> tacs;                ///< TAC dictionary.

  [[nodiscard]] std::size_t size() const noexcept { return timestamp.size(); }
};

/// Columnar transpose of an MmeRecord vector.  Sector ids stay raw (the
/// kernels use them as keys directly); TACs are dictionary-coded so the
/// wearable classification becomes a per-entry flag array.
struct MmeColumns {
  std::vector<util::SimTime> timestamp;
  std::vector<UserId> user_id;
  std::vector<std::uint32_t> tac_id;   ///< Index into `tacs`.
  std::vector<std::uint8_t> event;     ///< Raw MmeEvent byte.
  std::vector<SectorId> sector_id;
  std::vector<Tac> tacs;               ///< TAC dictionary.

  [[nodiscard]] std::size_t size() const noexcept { return timestamp.size(); }
};

/// Builds the transpose of `rows`.  The independent columns fill as
/// separate tasks on `pool` when given (nullptr == inline); the result is
/// bitwise identical for any pool size — each task owns whole columns.
[[nodiscard]] ProxyColumns build_proxy_columns(
    const std::vector<ProxyRecord>& rows, par::TaskPool* pool = nullptr);
[[nodiscard]] MmeColumns build_mme_columns(const std::vector<MmeRecord>& rows,
                                           par::TaskPool* pool = nullptr);

}  // namespace wearscope::trace
