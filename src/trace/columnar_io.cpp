#include "trace/columnar_io.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "trace/record_codec.h"
#include "util/crc32.h"
#include "util/span_decoder.h"
#include "util/varint.h"

namespace wearscope::trace {

namespace {

/// Largest value a varint-encoded u32 field may decode to.
constexpr std::uint64_t kMaxU32 = 0xffffffffULL;

[[nodiscard]] std::uint32_t narrow_u32(std::uint64_t v, const char* what) {
  if (v > kMaxU32)
    throw util::ParseError("columnar log: " + std::string(what) +
                           " varint exceeds u32");
  return static_cast<std::uint32_t>(v);
}

// ---------------------------------------------------------------------------
// Dictionaries
// ---------------------------------------------------------------------------

/// Write-side dictionary state: the first-appearance-ordered entry lists
/// plus the value->index maps the column encoders look up.
struct DictBuilder {
  ColumnDicts dicts;
  std::unordered_map<std::string, std::uint32_t> host_id;
  std::unordered_map<std::uint32_t, std::uint32_t> tac_id;
  std::unordered_map<std::uint32_t, std::uint32_t> sector_id;

  void intern_host(const std::string& host) {
    const auto id = static_cast<std::uint32_t>(dicts.hosts.size());
    if (host_id.emplace(host, id).second) dicts.hosts.push_back(host);
  }
  void intern_tac(std::uint32_t tac) {
    const auto id = static_cast<std::uint32_t>(dicts.tacs.size());
    if (tac_id.emplace(tac, id).second) dicts.tacs.push_back(tac);
  }
  void intern_sector(std::uint32_t sector) {
    const auto id = static_cast<std::uint32_t>(dicts.sectors.size());
    if (sector_id.emplace(sector, id).second) dicts.sectors.push_back(sector);
  }
};

void collect_dicts(const ProxyRecord& r, DictBuilder& b) {
  b.intern_host(r.host);
  b.intern_tac(r.tac);
}
void collect_dicts(const MmeRecord& r, DictBuilder& b) {
  b.intern_tac(r.tac);
  b.intern_sector(r.sector_id);
}
void collect_dicts(const DeviceRecord&, DictBuilder&) {}
void collect_dicts(const SectorInfo&, DictBuilder&) {}

void write_section(std::ostream& out, std::uint32_t entry_count,
                   const std::string& payload) {
  util::require(payload.size() <= kMaxU32,
                "columnar writer: dictionary section too large");
  std::string header;
  BufferEncoder enc(header);
  enc.put_u32(entry_count);
  enc.put_u32(static_cast<std::uint32_t>(payload.size()));
  enc.put_u32(util::crc32(std::as_bytes(
      std::span<const char>(payload.data(), payload.size()))));
  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!out) throw util::IoError("columnar write failed");
}

void write_dict_sections(std::ostream& out, const ColumnDicts& dicts) {
  std::string payload;
  BufferEncoder enc(payload);
  for (const std::string& host : dicts.hosts) enc.put_string(host);
  write_section(out, static_cast<std::uint32_t>(dicts.hosts.size()), payload);
  payload.clear();
  for (const std::uint32_t tac : dicts.tacs) enc.put_u32(tac);
  write_section(out, static_cast<std::uint32_t>(dicts.tacs.size()), payload);
  payload.clear();
  for (const std::uint32_t sector : dicts.sectors) enc.put_u32(sector);
  write_section(out, static_cast<std::uint32_t>(dicts.sectors.size()),
                payload);
}

/// Parses the three dictionary sections.  Strict: throws ParseError on any
/// damage.  Lenient: returns false (the caller quarantines the file).
bool parse_dicts(util::MemorySpanDecoder& dec, bool lenient,
                 ColumnDicts& dicts) {
  const auto fail = [lenient](const std::string& what) -> bool {
    if (!lenient) throw util::ParseError("columnar log: " + what);
    return false;
  };
  for (int section = 0; section < 3; ++section) {
    if (dec.remaining() < kDictHeaderBytes)
      return fail("truncated dictionary section header");
    const std::uint32_t entries = dec.get_u32();
    const std::uint32_t byte_length = dec.get_u32();
    const std::uint32_t crc = dec.get_u32();
    if (byte_length > dec.remaining())
      return fail("truncated dictionary payload");
    const std::span<const std::byte> payload = dec.take(byte_length);
    if (util::crc32(payload) != crc)
      return fail("dictionary section failed CRC");
    try {
      util::MemorySpanDecoder body(payload);
      if (section == 0) {
        dicts.hosts.reserve(entries);
        for (std::uint32_t i = 0; i < entries; ++i)
          dicts.hosts.push_back(body.get_string());
      } else {
        if (byte_length != static_cast<std::uint64_t>(entries) * 4)
          return fail("dictionary section length does not match entry count");
        std::vector<std::uint32_t>& entries_out =
            section == 1 ? dicts.tacs : dicts.sectors;
        entries_out.reserve(entries);
        for (std::uint32_t i = 0; i < entries; ++i)
          entries_out.push_back(body.get_u32());
      }
      if (!body.at_eof())
        return fail("dictionary section has trailing bytes");
      // fail() rethrows in strict mode; lenient dictionary damage is
      // accounted as corrupt_files by the caller (file-level state).
      // wearscope-lint: allow(quarantine-pairing)
    } catch (const util::ParseError&) {
      return fail("dictionary payload decode failed");
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Column encoders (schema order; see columnar_io.h for the layouts)
// ---------------------------------------------------------------------------

void encode_columns(const ProxyRecord* r, std::size_t n, const DictBuilder& b,
                    std::vector<std::string>& cols) {
  std::int64_t prev = 0;
  for (std::size_t i = 0; i < n; ++i) {
    util::put_varint(cols[0], util::zigzag_encode(r[i].timestamp - prev));
    prev = r[i].timestamp;
  }
  for (std::size_t i = 0; i < n; ++i) util::put_varint(cols[1], r[i].user_id);
  for (std::size_t i = 0; i < n; ++i)
    util::put_varint(cols[2], b.tac_id.at(r[i].tac));
  for (std::size_t i = 0; i < n; ++i)
    cols[3].push_back(static_cast<char>(r[i].protocol));
  for (std::size_t i = 0; i < n; ++i)
    util::put_varint(cols[4], b.host_id.at(r[i].host));
  BufferEncoder url(cols[5]);
  for (std::size_t i = 0; i < n; ++i) url.put_string(r[i].url_path);
  for (std::size_t i = 0; i < n; ++i) util::put_varint(cols[6], r[i].bytes_up);
  for (std::size_t i = 0; i < n; ++i)
    util::put_varint(cols[7], r[i].bytes_down);
  for (std::size_t i = 0; i < n; ++i)
    util::put_varint(cols[8], r[i].duration_ms);
}

void encode_columns(const MmeRecord* r, std::size_t n, const DictBuilder& b,
                    std::vector<std::string>& cols) {
  std::int64_t prev = 0;
  for (std::size_t i = 0; i < n; ++i) {
    util::put_varint(cols[0], util::zigzag_encode(r[i].timestamp - prev));
    prev = r[i].timestamp;
  }
  for (std::size_t i = 0; i < n; ++i) util::put_varint(cols[1], r[i].user_id);
  for (std::size_t i = 0; i < n; ++i)
    util::put_varint(cols[2], b.tac_id.at(r[i].tac));
  for (std::size_t i = 0; i < n; ++i)
    cols[3].push_back(static_cast<char>(r[i].event));
  for (std::size_t i = 0; i < n; ++i)
    util::put_varint(cols[4], b.sector_id.at(r[i].sector_id));
}

void encode_columns(const DeviceRecord* r, std::size_t n, const DictBuilder&,
                    std::vector<std::string>& cols) {
  for (std::size_t i = 0; i < n; ++i) util::put_varint(cols[0], r[i].tac);
  BufferEncoder model(cols[1]);
  for (std::size_t i = 0; i < n; ++i) model.put_string(r[i].model);
  BufferEncoder manufacturer(cols[2]);
  for (std::size_t i = 0; i < n; ++i)
    manufacturer.put_string(r[i].manufacturer);
  BufferEncoder os(cols[3]);
  for (std::size_t i = 0; i < n; ++i) os.put_string(r[i].os);
}

void encode_columns(const SectorInfo* r, std::size_t n, const DictBuilder&,
                    std::vector<std::string>& cols) {
  for (std::size_t i = 0; i < n; ++i)
    util::put_varint(cols[0], r[i].sector_id);
  BufferEncoder lat(cols[1]);
  for (std::size_t i = 0; i < n; ++i) lat.put_f64(r[i].position.lat_deg);
  BufferEncoder lon(cols[2]);
  for (std::size_t i = 0; i < n; ++i) lon.put_f64(r[i].position.lon_deg);
}

// ---------------------------------------------------------------------------
// Column decoders
// ---------------------------------------------------------------------------

/// Every column segment must be consumed exactly: trailing bytes mean the
/// count and the payload disagree, which is corruption, not slack.
void require_consumed(util::MemorySpanDecoder& dec) {
  if (!dec.at_eof())
    throw util::ParseError("columnar log: column segment has " +
                           std::to_string(dec.remaining()) +
                           " trailing bytes");
}

[[nodiscard]] std::uint32_t dict_index(util::MemorySpanDecoder& dec,
                                       std::size_t dict_size,
                                       const char* what) {
  const std::uint64_t idx = util::get_varint(dec);
  if (idx >= dict_size)
    throw util::ParseError("columnar log: " + std::string(what) + " index " +
                           std::to_string(idx) + " out of range (dictionary "
                           "has " + std::to_string(dict_size) + " entries)");
  return static_cast<std::uint32_t>(idx);
}

void decode_columns(std::span<const std::span<const std::byte>> cols,
                    const ColumnDicts& dicts, std::uint32_t n,
                    ProxyRecord* out) {
  {
    util::MemorySpanDecoder dec(cols[0]);
    std::int64_t prev = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      prev += util::zigzag_decode(util::get_varint(dec));
      out[i].timestamp = prev;
    }
    require_consumed(dec);
  }
  {
    util::MemorySpanDecoder dec(cols[1]);
    for (std::uint32_t i = 0; i < n; ++i)
      out[i].user_id = util::get_varint(dec);
    require_consumed(dec);
  }
  {
    util::MemorySpanDecoder dec(cols[2]);
    for (std::uint32_t i = 0; i < n; ++i)
      out[i].tac = dicts.tacs[dict_index(dec, dicts.tacs.size(), "tac")];
    require_consumed(dec);
  }
  {
    util::MemorySpanDecoder dec(cols[3]);
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint8_t proto = dec.get_u8();
      if (proto > 1)
        throw util::ParseError("columnar log: bad protocol byte");
      out[i].protocol = static_cast<Protocol>(proto);
    }
    require_consumed(dec);
  }
  {
    util::MemorySpanDecoder dec(cols[4]);
    for (std::uint32_t i = 0; i < n; ++i)
      out[i].host = dicts.hosts[dict_index(dec, dicts.hosts.size(), "host")];
    require_consumed(dec);
  }
  {
    util::MemorySpanDecoder dec(cols[5]);
    for (std::uint32_t i = 0; i < n; ++i) out[i].url_path = dec.get_string();
    require_consumed(dec);
  }
  {
    util::MemorySpanDecoder dec(cols[6]);
    for (std::uint32_t i = 0; i < n; ++i)
      out[i].bytes_up = util::get_varint(dec);
    require_consumed(dec);
  }
  {
    util::MemorySpanDecoder dec(cols[7]);
    for (std::uint32_t i = 0; i < n; ++i)
      out[i].bytes_down = util::get_varint(dec);
    require_consumed(dec);
  }
  {
    util::MemorySpanDecoder dec(cols[8]);
    for (std::uint32_t i = 0; i < n; ++i)
      out[i].duration_ms = narrow_u32(util::get_varint(dec), "duration_ms");
    require_consumed(dec);
  }
}

void decode_columns(std::span<const std::span<const std::byte>> cols,
                    const ColumnDicts& dicts, std::uint32_t n,
                    MmeRecord* out) {
  {
    util::MemorySpanDecoder dec(cols[0]);
    std::int64_t prev = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      prev += util::zigzag_decode(util::get_varint(dec));
      out[i].timestamp = prev;
    }
    require_consumed(dec);
  }
  {
    util::MemorySpanDecoder dec(cols[1]);
    for (std::uint32_t i = 0; i < n; ++i)
      out[i].user_id = util::get_varint(dec);
    require_consumed(dec);
  }
  {
    util::MemorySpanDecoder dec(cols[2]);
    for (std::uint32_t i = 0; i < n; ++i)
      out[i].tac = dicts.tacs[dict_index(dec, dicts.tacs.size(), "tac")];
    require_consumed(dec);
  }
  {
    util::MemorySpanDecoder dec(cols[3]);
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint8_t ev = dec.get_u8();
      if (ev > 3) throw util::ParseError("columnar log: bad event byte");
      out[i].event = static_cast<MmeEvent>(ev);
    }
    require_consumed(dec);
  }
  {
    util::MemorySpanDecoder dec(cols[4]);
    for (std::uint32_t i = 0; i < n; ++i)
      out[i].sector_id =
          dicts.sectors[dict_index(dec, dicts.sectors.size(), "sector")];
    require_consumed(dec);
  }
}

void decode_columns(std::span<const std::span<const std::byte>> cols,
                    const ColumnDicts&, std::uint32_t n, DeviceRecord* out) {
  {
    util::MemorySpanDecoder dec(cols[0]);
    for (std::uint32_t i = 0; i < n; ++i)
      out[i].tac = narrow_u32(util::get_varint(dec), "tac");
    require_consumed(dec);
  }
  {
    util::MemorySpanDecoder dec(cols[1]);
    for (std::uint32_t i = 0; i < n; ++i) out[i].model = dec.get_string();
    require_consumed(dec);
  }
  {
    util::MemorySpanDecoder dec(cols[2]);
    for (std::uint32_t i = 0; i < n; ++i)
      out[i].manufacturer = dec.get_string();
    require_consumed(dec);
  }
  {
    util::MemorySpanDecoder dec(cols[3]);
    for (std::uint32_t i = 0; i < n; ++i) out[i].os = dec.get_string();
    require_consumed(dec);
  }
}

void decode_columns(std::span<const std::span<const std::byte>> cols,
                    const ColumnDicts&, std::uint32_t n, SectorInfo* out) {
  {
    util::MemorySpanDecoder dec(cols[0]);
    for (std::uint32_t i = 0; i < n; ++i)
      out[i].sector_id = narrow_u32(util::get_varint(dec), "sector_id");
    require_consumed(dec);
  }
  {
    util::MemorySpanDecoder dec(cols[1]);
    for (std::uint32_t i = 0; i < n; ++i)
      out[i].position.lat_deg = dec.get_f64();
    require_consumed(dec);
  }
  {
    util::MemorySpanDecoder dec(cols[2]);
    for (std::uint32_t i = 0; i < n; ++i)
      out[i].position.lon_deg = dec.get_f64();
    require_consumed(dec);
  }
}

/// Decodes one row group into `out[0..record_count)`.  Returns true when
/// every column segment passes its CRC, decodes exactly record_count
/// values and consumes exactly its byte_length.
template <typename Record>
bool decode_column_group(std::span<const std::byte> payload,
                         const ColumnGroup& group, const ColumnDicts& dicts,
                         Record* out) noexcept {
  constexpr std::size_t kColumns = columnar_column_count<Record>();
  try {
    util::MemorySpanDecoder dec(payload);
    std::array<std::span<const std::byte>, kColumns> cols;
    for (std::size_t c = 0; c < kColumns; ++c) {
      const std::uint32_t byte_length = dec.get_u32();
      const std::uint32_t crc = dec.get_u32();
      cols[c] = dec.take(byte_length);
      if (util::crc32(cols[c]) != crc) return false;
    }
    if (!dec.at_eof()) return false;
    decode_columns(std::span<const std::span<const std::byte>>(cols),
                   dicts, group.record_count, out);
    return true;
    // The caller accounts every failed group as one quarantined unit
    // (ColumnarLogDecode::finalize), exactly like the v2 block decode;
    // nothing partial is kept, so no counter is touched here.
    // wearscope-lint: allow(quarantine-pairing)
  } catch (const util::ParseError&) {
    return false;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Group scan
// ---------------------------------------------------------------------------

ColumnGroupIndex scan_column_groups(std::span<const std::byte> chain,
                                    bool lenient) {
  ColumnGroupIndex index;
  util::MemorySpanDecoder dec(chain);
  while (!dec.at_eof()) {
    if (dec.remaining() < kGroupHeaderBytes) {
      if (!lenient)
        throw util::ParseError(
            "columnar log: truncated group header at byte " +
            std::to_string(dec.offset()));
      ++index.corrupt_blocks;  // the chain is broken; one group lost
      return index;
    }
    ColumnGroup group;
    group.record_count = dec.get_u32();
    group.byte_length = dec.get_u32();
    if (group.byte_length > dec.remaining()) {
      if (!lenient)
        throw util::ParseError(
            "columnar log: group claims " +
            std::to_string(group.byte_length) + " payload bytes but only " +
            std::to_string(dec.remaining()) + " remain (overlong "
            "byte_length at byte " +
            std::to_string(dec.offset() - kGroupHeaderBytes) + ")");
      ++index.corrupt_blocks;  // tail unaddressable past a broken length
      return index;
    }
    group.payload_offset = static_cast<std::size_t>(dec.offset());
    (void)dec.take(group.byte_length);
    // record_count > byte_length is impossible (every column costs at
    // least one byte per record): cap the pre-size allocation and skip
    // the group — the chain is intact, so the next group resyncs.
    if (group.record_count > group.byte_length) {
      if (!lenient)
        throw util::ParseError(
            "columnar log: group claims " +
            std::to_string(group.record_count) + " records in " +
            std::to_string(group.byte_length) + " bytes");
      group.header_ok = false;
      ++index.corrupt_blocks;
    } else {
      index.total_records += group.record_count;
    }
    index.groups.push_back(group);
  }
  return index;
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

template <typename Record>
ColumnarWriteInfo write_columnar_log(std::ostream& out,
                                     const std::vector<Record>& records,
                                     BlockWriterOptions options) {
  util::require(options.max_block_records > 0,
                "columnar writer: max_block_records must be positive");
  std::string header;
  BufferEncoder enc(header);
  enc.put_u32(magic_of<Record>());
  enc.put_u16(kBinaryFormatV3);
  enc.put_u16(0);  // reserved
  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  if (!out) throw util::IoError("columnar write failed");

  // Pass 1: intern every dictionary value in first-appearance order.
  DictBuilder builder;
  for (const Record& r : records) collect_dicts(r, builder);
  write_dict_sections(out, builder.dicts);

  // Pass 2: encode and flush fixed-size row groups.
  ColumnarWriteInfo info;
  info.records = records.size();
  std::vector<std::string> cols(columnar_column_count<Record>());
  for (std::size_t at = 0; at < records.size();
       at += options.max_block_records) {
    const std::size_t n =
        std::min(options.max_block_records, records.size() - at);
    for (std::string& col : cols) col.clear();
    encode_columns(records.data() + at, n, builder, cols);
    std::uint64_t group_bytes = 0;
    for (const std::string& col : cols)
      group_bytes += kColumnHeaderBytes + col.size();
    util::require(group_bytes <= kMaxU32,
                  "columnar writer: row group too large");
    std::string group_header;
    BufferEncoder ghe(group_header);
    ghe.put_u32(static_cast<std::uint32_t>(n));
    ghe.put_u32(static_cast<std::uint32_t>(group_bytes));
    out.write(group_header.data(),
              static_cast<std::streamsize>(group_header.size()));
    for (const std::string& col : cols) {
      std::string col_header;
      BufferEncoder che(col_header);
      che.put_u32(static_cast<std::uint32_t>(col.size()));
      che.put_u32(util::crc32(
          std::as_bytes(std::span<const char>(col.data(), col.size()))));
      out.write(col_header.data(),
                static_cast<std::streamsize>(col_header.size()));
      out.write(col.data(), static_cast<std::streamsize>(col.size()));
    }
    if (!out) throw util::IoError("columnar write failed");
    ++info.blocks;
  }
  return info;
}

// ---------------------------------------------------------------------------
// ColumnarLogDecode
// ---------------------------------------------------------------------------

template <typename Record>
ColumnarLogDecode<Record>::ColumnarLogDecode(std::span<const std::byte> body,
                                             bool lenient)
    : lenient_(lenient), dicts_ok_(true) {
  util::MemorySpanDecoder dec(body);
  if (!parse_dicts(dec, lenient, dicts_)) {
    dicts_ok_ = false;  // lenient only: strict parse_dicts throws
    return;
  }
  chain_ = body.subspan(static_cast<std::size_t>(dec.offset()));
  index_ = scan_column_groups(chain_, lenient);
  group_base_.reserve(index_.groups.size());
  std::uint64_t base = 0;
  for (const ColumnGroup& group : index_.groups) {
    group_base_.push_back(base);
    if (group.header_ok) base += group.record_count;
  }
  group_done_.assign(index_.groups.size(), 0);
}

template <typename Record>
void ColumnarLogDecode<Record>::schedule(
    std::vector<Record>& out, std::vector<std::function<void()>>& batch) {
  out.resize(static_cast<std::size_t>(index_.total_records));
  for (std::size_t i = 0; i < index_.groups.size(); ++i) {
    const ColumnGroup& group = index_.groups[i];
    if (!group.header_ok) continue;
    const std::span<const std::byte> payload =
        chain_.subspan(group.payload_offset, group.byte_length);
    Record* slice = out.data() + group_base_[i];
    std::uint8_t* done = &group_done_[i];
    const ColumnDicts* dicts = &dicts_;
    const bool lenient = lenient_;
    const std::size_t group_no = i;
    batch.push_back([payload, &group, slice, done, dicts, lenient, group_no] {
      const bool ok = decode_column_group(payload, group, *dicts, slice);
      if (!ok && !lenient)
        throw util::ParseError("columnar log: group " +
                               std::to_string(group_no) +
                               " failed CRC or column decode");
      *done = ok ? 1 : 0;
    });
  }
}

template <typename Record>
std::uint64_t ColumnarLogDecode<Record>::finalize(std::vector<Record>& out) {
  std::uint64_t corrupt = index_.corrupt_blocks;
  std::uint64_t write_pos = 0;
  for (std::size_t i = 0; i < index_.groups.size(); ++i) {
    const ColumnGroup& group = index_.groups[i];
    if (!group.header_ok) continue;
    if (group_done_[i] == 0) {
      ++corrupt;
      continue;
    }
    const std::uint64_t base = group_base_[i];
    if (write_pos != base) {
      std::move(out.begin() + static_cast<std::ptrdiff_t>(base),
                out.begin() +
                    static_cast<std::ptrdiff_t>(base + group.record_count),
                out.begin() + static_cast<std::ptrdiff_t>(write_pos));
    }
    write_pos += group.record_count;
  }
  out.resize(static_cast<std::size_t>(write_pos));
  return corrupt;
}

// ---------------------------------------------------------------------------
// Layout probe
// ---------------------------------------------------------------------------

template <typename Record>
ColumnarLayoutInfo probe_columnar_layout(std::span<const std::byte> body) {
  ColumnarLayoutInfo info;
  info.column_bytes.assign(columnar_column_count<Record>(), 0);
  util::MemorySpanDecoder dec(body);
  for (int section = 0; section < 3; ++section) {
    if (dec.remaining() < kDictHeaderBytes) return info;
    const std::uint32_t entries = dec.get_u32();
    const std::uint32_t byte_length = dec.get_u32();
    (void)dec.get_u32();  // crc: the probe reports layout, not validity
    if (byte_length > dec.remaining()) return info;
    (void)dec.take(byte_length);
    if (section == 0) info.dict_hosts = entries;
    if (section == 1) info.dict_tacs = entries;
    if (section == 2) info.dict_sectors = entries;
    info.dict_bytes += byte_length;
  }
  const std::span<const std::byte> chain =
      body.subspan(static_cast<std::size_t>(dec.offset()));
  const ColumnGroupIndex index = scan_column_groups(chain, /*lenient=*/true);
  info.groups = index.groups.size();
  info.records = index.total_records;
  for (const ColumnGroup& group : index.groups) {
    if (!group.header_ok) continue;
    util::MemorySpanDecoder seg(
        chain.subspan(group.payload_offset, group.byte_length));
    for (std::size_t c = 0; c < info.column_bytes.size(); ++c) {
      if (seg.remaining() < kColumnHeaderBytes) break;
      const std::uint32_t byte_length = seg.get_u32();
      (void)seg.get_u32();  // crc
      if (byte_length > seg.remaining()) break;
      (void)seg.take(byte_length);
      info.column_bytes[c] += byte_length;
    }
  }
  return info;
}

template ColumnarWriteInfo write_columnar_log<ProxyRecord>(
    std::ostream&, const std::vector<ProxyRecord>&, BlockWriterOptions);
template ColumnarWriteInfo write_columnar_log<MmeRecord>(
    std::ostream&, const std::vector<MmeRecord>&, BlockWriterOptions);
template ColumnarWriteInfo write_columnar_log<DeviceRecord>(
    std::ostream&, const std::vector<DeviceRecord>&, BlockWriterOptions);
template ColumnarWriteInfo write_columnar_log<SectorInfo>(
    std::ostream&, const std::vector<SectorInfo>&, BlockWriterOptions);
template class ColumnarLogDecode<ProxyRecord>;
template class ColumnarLogDecode<MmeRecord>;
template class ColumnarLogDecode<DeviceRecord>;
template class ColumnarLogDecode<SectorInfo>;
template ColumnarLayoutInfo probe_columnar_layout<ProxyRecord>(
    std::span<const std::byte>);
template ColumnarLayoutInfo probe_columnar_layout<MmeRecord>(
    std::span<const std::byte>);
template ColumnarLayoutInfo probe_columnar_layout<DeviceRecord>(
    std::span<const std::byte>);
template ColumnarLayoutInfo probe_columnar_layout<SectorInfo>(
    std::span<const std::byte>);

}  // namespace wearscope::trace
