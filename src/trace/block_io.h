// Blocked binary log format (on-disk version 2).
//
// v1 (trace/binary_io) streams records one primitive at a time through
// std::istream virtual dispatch and quarantines the whole file tail on one
// corrupt byte.  v2 keeps the identical record encoding but groups records
// into framed blocks behind the same 8-byte header:
//
//   [magic u32][version=2 u16][reserved u16]          file header
//   repeat {
//     [record_count u32][byte_length u32][crc32 u32]  frame header
//     [record_count v1-encoded records]               payload, byte_length
//   }                                                 bytes long
//
// Consequences the rest of the system builds on:
//
//   * the writer encodes into a per-block scratch buffer and issues two
//     ostream::writes per block (header + payload) instead of one per
//     primitive;
//   * the reader scans the frame index without touching payloads, pre-sizes
//     the destination vector, and decodes blocks concurrently on a
//     par::TaskPool — each task writes its own contiguous slice, so the
//     result is bitwise identical to the sequential decode for any thread
//     count (the same determinism contract as ParPipeline);
//   * corruption is block-granular: a bad CRC or an impossible frame header
//     quarantines ONE block (`QuarantineStats::corrupt_blocks`) and the
//     reader resyncs at the next frame header, because `byte_length` chains
//     frames together.  Only a broken chain (truncated tail, overlong
//     byte_length) loses the rest of the file — counted as one block.
//
// Block payloads are decoded with util::MemorySpanDecoder over an mmap'ed
// file (util::MappedFile), so the hot path does zero virtual calls and
// zero copies between the page cache and the record fields.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "trace/quarantine.h"
#include "trace/records.h"
#include "util/error.h"

namespace wearscope::par {
class TaskPool;
}  // namespace wearscope::par

namespace wearscope::trace {

/// On-disk version written by BlockLogWriter.
inline constexpr std::uint16_t kBinaryFormatV2 = 2;

/// Bytes of one frame header: record_count + byte_length + crc32.
inline constexpr std::size_t kFrameHeaderBytes = 12;

/// Little-endian primitive encoder appending to an in-memory scratch
/// buffer (exposed for tests).  Same API as BinaryEncoder, no streams.
class BufferEncoder {
 public:
  explicit BufferEncoder(std::string& out) : out_(&out) {}

  void put_u8(std::uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void put_u16(std::uint16_t v) {
    put_u8(static_cast<std::uint8_t>(v & 0xff));
    put_u8(static_cast<std::uint8_t>((v >> 8) & 0xff));
  }
  void put_u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      put_u8(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }
  void put_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      put_u8(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }
  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }
  void put_f64(double v) { put_u64(std::bit_cast<std::uint64_t>(v)); }
  /// u16 length prefix + bytes; strings over 65535 bytes are rejected.
  void put_string(const std::string& s) {
    util::require(s.size() <= 0xffff, "binary string field too long");
    put_u16(static_cast<std::uint16_t>(s.size()));
    out_->append(s);
  }

 private:
  std::string* out_ = nullptr;
};

/// Writer knobs: a block closes when either limit is reached.  The
/// defaults keep blocks around 256 KiB — big enough to amortize framing,
/// small enough that an 8-thread decode of any real log has work for
/// every thread and a corrupt block loses little.
struct BlockWriterOptions {
  std::size_t target_block_bytes = 256 * 1024;
  std::size_t max_block_records = 4096;
};

/// Typed v2 writer: header on construction, records buffered into a
/// scratch block, frames flushed wholesale.  Call finish() (or let the
/// destructor do it, swallowing errors) to flush the final partial block.
template <typename Record>
class BlockLogWriter {
 public:
  explicit BlockLogWriter(std::ostream& out, BlockWriterOptions options = {});
  ~BlockLogWriter();

  BlockLogWriter(const BlockLogWriter&) = delete;
  BlockLogWriter& operator=(const BlockLogWriter&) = delete;

  /// Appends one record to the current block.
  void write(const Record& r);

  /// Flushes the pending block and marks the log complete.  Idempotent.
  /// Throws util::IoError on write failure.
  void finish();

  /// Records written so far.
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  /// Frames flushed so far (the final count is valid after finish()).
  [[nodiscard]] std::uint64_t block_count() const noexcept { return blocks_; }

 private:
  void flush_block();

  std::ostream* out_ = nullptr;
  BlockWriterOptions options_;
  std::string scratch_;
  std::uint32_t pending_records_ = 0;
  std::uint64_t count_ = 0;
  std::uint64_t blocks_ = 0;
  bool finished_ = false;
};

/// One frame of a v2 log as located by the index scan.
struct BlockFrame {
  std::size_t payload_offset = 0;  ///< Into the log body (after the header).
  std::uint32_t record_count = 0;
  std::uint32_t byte_length = 0;
  std::uint32_t crc = 0;
  /// False when the frame header itself is impossible (record_count
  /// exceeds byte_length): the frame is skipped, never decoded.
  bool header_ok = true;
};

/// Frame index of one v2 log body: every addressable frame plus what the
/// scan had to give up on.
struct BlockIndex {
  std::vector<BlockFrame> frames;
  /// Sum of record_count over frames with header_ok (the pre-size target).
  std::uint64_t total_records = 0;
  /// Blocks lost at scan time: impossible frame headers plus one for a
  /// broken chain (truncated frame header/payload at the tail).
  std::uint64_t corrupt_blocks = 0;
};

/// Scans the frame chain of a v2 log body (`body` starts AFTER the 8-byte
/// file header) without decoding payloads.  Strict (`lenient == false`):
/// throws util::ParseError on any structural damage.  Lenient: skips
/// impossible frames when the chain allows it, counts a broken chain as
/// one corrupt block and stops — corruption never cascades past the scan.
[[nodiscard]] BlockIndex scan_block_index(std::span<const std::byte> body,
                                          bool lenient);

/// Summary of one binary log file for operator audits (wearscope_inspect).
struct BinaryLogInfo {
  std::uint16_t version = 0;   ///< 1, 2 or 3.
  std::uint64_t blocks = 0;    ///< v2 frames / v3 row groups; 0 for v1.
  std::uint64_t records = 0;   ///< v2/v3: claimed; v1: decoded count.
};

/// Probes a whole binary log (header included) of either version.
/// Throws util::ParseError when the header is not a `Record` log at all;
/// body damage is tolerated (the counts describe what a lenient reader
/// would recover).
template <typename Record>
[[nodiscard]] BinaryLogInfo probe_binary_log(std::span<const std::byte> bytes);

/// Validates the 8-byte file header of a `Record` log and returns its
/// version (1, 2 or 3).  Throws util::ParseError on a short buffer, wrong
/// magic or unknown version.  Cheap: touches only the first 8 bytes.
template <typename Record>
[[nodiscard]] std::uint16_t read_log_header(std::span<const std::byte> bytes);

/// Strict whole-log read from memory, v1/v2/v3 by header version.  v2
/// blocks and v3 row groups decode concurrently on `pool` when given
/// (nullptr == inline); the result is identical for every pool size.
/// Throws util::ParseError on any corruption.
template <typename Record>
[[nodiscard]] std::vector<Record> read_binary_log(
    std::span<const std::byte> bytes, par::TaskPool* pool = nullptr);

/// Lenient whole-log read from memory with skip-and-count quarantine:
/// a rejected header counts one `corrupt_files`; v1 body damage counts
/// one `corrupt_tails` (keeping the records before it); v2/v3 body damage
/// counts one `corrupt_blocks` per lost block or row group, keeping every
/// other one (a damaged v3 dictionary counts one `corrupt_files` — the
/// indices are meaningless without it).  Never throws ParseError.
template <typename Record>
[[nodiscard]] std::vector<Record> read_binary_log_lenient(
    std::span<const std::byte> bytes, QuarantineStats& quarantine,
    par::TaskPool* pool = nullptr);

// --- Bundle-loader building blocks ---------------------------------------
// load_bundle wants ALL blocks of ALL four logs in one task batch, so the
// schedule/finalize halves of the parallel decode are exposed here.

/// A v2 log whose frames have been scanned and whose destination has been
/// pre-sized: schedule() appends one decode task per frame to `batch`
/// (tasks write disjoint slices of `out` and the per-frame ok flags);
/// finalize() — sequential, after the batch ran — compacts failed blocks
/// out of `out` in frame order and returns the total corrupt-block count.
template <typename Record>
class BlockedLogDecode {
 public:
  /// `body` is the log body after the 8-byte header; it must stay alive
  /// (and unmoved) until finalize() returns.  `lenient` selects scan and
  /// decode behaviour: strict decode tasks throw on a bad block.
  BlockedLogDecode(std::span<const std::byte> body, bool lenient);

  /// Claimed record total (the pre-size target).
  [[nodiscard]] std::uint64_t total_records() const noexcept {
    return index_.total_records;
  }
  /// Frames found by the scan.
  [[nodiscard]] const BlockIndex& index() const noexcept { return index_; }

  /// Resizes `out` and appends the per-frame decode tasks to `batch`.
  void schedule(std::vector<Record>& out,
                std::vector<std::function<void()>>& batch);

  /// Compacts `out` (stable, frame order) and returns corrupt blocks
  /// (scan losses + decode/CRC failures).  Strict mode always returns 0 —
  /// failures have already thrown out of the batch.
  std::uint64_t finalize(std::vector<Record>& out);

 private:
  std::span<const std::byte> body_;
  bool lenient_ = false;
  BlockIndex index_;
  std::vector<std::uint64_t> frame_base_;  ///< Slice start per frame.
  /// Written concurrently, one slot per frame, by the decode tasks.
  std::vector<std::uint8_t> frame_done_;
};

extern template class BlockLogWriter<ProxyRecord>;
extern template class BlockLogWriter<MmeRecord>;
extern template class BlockLogWriter<DeviceRecord>;
extern template class BlockLogWriter<SectorInfo>;
extern template class BlockedLogDecode<ProxyRecord>;
extern template class BlockedLogDecode<MmeRecord>;
extern template class BlockedLogDecode<DeviceRecord>;
extern template class BlockedLogDecode<SectorInfo>;

}  // namespace wearscope::trace
