// Quarantine accounting for graceful degradation.
//
// Real vantage-point feeds are not clean: proxy logs arrive truncated,
// MME batches carry duplicates and out-of-order records, middleboxes stall
// and retry.  Instead of aborting on the first malformed byte, the lenient
// readers (trace/bundle), the stream sanitizer (trace/sanitize) and the
// live feed (live/replayer) *skip and count*: every record or file they
// give up on increments exactly one counter here, so "the ingest degraded
// gracefully" becomes a checkable number instead of a vibe.  The chaos
// differential harness (src/chaos) asserts these counters equal the number
// of injected faults bit-for-bit.
#pragma once

#include <cstdint>
#include <string>

namespace wearscope::trace {

/// Counters of everything the ingest path skipped instead of crashing on.
/// Each quarantined item increments exactly one counter; `reordered` is the
/// only non-drop counter (late arrivals repaired inside the reorder window
/// are kept).
struct QuarantineStats {
  // --- IO level (lenient bundle loading) -------------------------------
  std::uint64_t corrupt_files = 0;  ///< Header rejected; file yielded nothing.
  std::uint64_t corrupt_tails = 0;  ///< Mid-stream error; v1 binary tail dropped.
  std::uint64_t corrupt_blocks = 0;  ///< v2 blocks dropped (CRC/frame damage).
  std::uint64_t corrupt_rows = 0;   ///< CSV rows skipped individually.

  // --- Record level (stream sanitizer) ---------------------------------
  std::uint64_t duplicates = 0;     ///< Exact re-deliveries dropped.
  std::uint64_t regressions = 0;    ///< Timestamps too late to repair.
  std::uint64_t unknown_tac = 0;    ///< TAC absent from the DeviceDB.
  std::uint64_t bad_host = 0;       ///< Empty/non-printable proxy host.
  std::uint64_t reordered = 0;      ///< Late arrivals repaired (kept!).

  // --- Runtime level (live feed) ---------------------------------------
  std::uint64_t transient_retries = 0;    ///< Read retries that recovered.
  std::uint64_t dropped_after_retry = 0;  ///< Records lost to exhausted retries.

  /// Sum of every *dropped* item (reordered repairs and recovered retries
  /// are not drops).
  [[nodiscard]] std::uint64_t total_dropped() const noexcept {
    return corrupt_files + corrupt_tails + corrupt_blocks + corrupt_rows +
           duplicates + regressions + unknown_tac + bad_host +
           dropped_after_retry;
  }

  /// True when any counter is non-zero (including repairs/retries).
  [[nodiscard]] bool any() const noexcept {
    return total_dropped() + reordered + transient_retries > 0;
  }

  QuarantineStats& operator+=(const QuarantineStats& o) noexcept {
    corrupt_files += o.corrupt_files;
    corrupt_tails += o.corrupt_tails;
    corrupt_blocks += o.corrupt_blocks;
    corrupt_rows += o.corrupt_rows;
    duplicates += o.duplicates;
    regressions += o.regressions;
    unknown_tac += o.unknown_tac;
    bad_host += o.bad_host;
    reordered += o.reordered;
    transient_retries += o.transient_retries;
    dropped_after_retry += o.dropped_after_retry;
    return *this;
  }

  friend bool operator==(const QuarantineStats&,
                         const QuarantineStats&) = default;
};

/// Multi-line human-readable rendering (empty string when !stats.any()).
std::string to_text(const QuarantineStats& stats);

}  // namespace wearscope::trace
