#include "trace/csv_io.h"

#include <charconv>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/csv.h"
#include "util/error.h"

namespace wearscope::trace {

namespace {

template <typename Record>
const char* header_of();
template <>
const char* header_of<ProxyRecord>() {
  return "timestamp,user_id,tac,protocol,host,url_path,bytes_up,bytes_down,"
         "duration_ms";
}
template <>
const char* header_of<MmeRecord>() {
  return "timestamp,user_id,tac,event,sector_id";
}
template <>
const char* header_of<DeviceRecord>() {
  return "tac,model,manufacturer,os";
}
template <>
const char* header_of<SectorInfo>() {
  return "sector_id,lat_deg,lon_deg";
}

template <typename Int>
Int parse_int(const std::string& field, const char* what) {
  Int value{};
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc{} || ptr != field.data() + field.size())
    throw util::ParseError(std::string("csv log: bad ") + what + " '" + field +
                           "'");
  return value;
}

double parse_double(const std::string& field, const char* what) {
  try {
    std::size_t used = 0;
    const double v = std::stod(field, &used);
    if (used != field.size()) throw util::ParseError("");
    return v;
  } catch (const std::exception&) {
    throw util::ParseError(std::string("csv log: bad ") + what + " '" + field +
                           "'");
  }
}

void expect_fields(const std::vector<std::string>& f, std::size_t n,
                   const char* what) {
  if (f.size() != n)
    throw util::ParseError(std::string("csv log: ") + what + " row has " +
                           std::to_string(f.size()) + " fields, expected " +
                           std::to_string(n));
}

void write_record(std::ostream& out, const ProxyRecord& r) {
  util::CsvWriter w(out);
  w.row(r.timestamp, r.user_id, r.tac,
        r.protocol == Protocol::kHttp ? "http" : "https", r.host, r.url_path,
        r.bytes_up, r.bytes_down, r.duration_ms);
}

void parse_record(const std::vector<std::string>& f, ProxyRecord& r) {
  expect_fields(f, 9, "proxy");
  r.timestamp = parse_int<std::int64_t>(f[0], "timestamp");
  r.user_id = parse_int<std::uint64_t>(f[1], "user_id");
  r.tac = parse_int<std::uint32_t>(f[2], "tac");
  if (f[3] == "http") {
    r.protocol = Protocol::kHttp;
  } else if (f[3] == "https") {
    r.protocol = Protocol::kHttps;
  } else {
    throw util::ParseError("csv log: bad protocol '" + f[3] + "'");
  }
  r.host = f[4];
  r.url_path = f[5];
  r.bytes_up = parse_int<std::uint64_t>(f[6], "bytes_up");
  r.bytes_down = parse_int<std::uint64_t>(f[7], "bytes_down");
  r.duration_ms = parse_int<std::uint32_t>(f[8], "duration_ms");
}

const char* event_name(MmeEvent e) {
  switch (e) {
    case MmeEvent::kAttach:
      return "attach";
    case MmeEvent::kHandover:
      return "handover";
    case MmeEvent::kDetach:
      return "detach";
    case MmeEvent::kTau:
      return "tau";
  }
  return "attach";
}

MmeEvent parse_event(const std::string& s) {
  if (s == "attach") return MmeEvent::kAttach;
  if (s == "handover") return MmeEvent::kHandover;
  if (s == "detach") return MmeEvent::kDetach;
  if (s == "tau") return MmeEvent::kTau;
  throw util::ParseError("csv log: bad mme event '" + s + "'");
}

void write_record(std::ostream& out, const MmeRecord& r) {
  util::CsvWriter w(out);
  w.row(r.timestamp, r.user_id, r.tac, event_name(r.event), r.sector_id);
}

void parse_record(const std::vector<std::string>& f, MmeRecord& r) {
  expect_fields(f, 5, "mme");
  r.timestamp = parse_int<std::int64_t>(f[0], "timestamp");
  r.user_id = parse_int<std::uint64_t>(f[1], "user_id");
  r.tac = parse_int<std::uint32_t>(f[2], "tac");
  r.event = parse_event(f[3]);
  r.sector_id = parse_int<std::uint32_t>(f[4], "sector_id");
}

void write_record(std::ostream& out, const DeviceRecord& r) {
  util::CsvWriter w(out);
  w.row(r.tac, r.model, r.manufacturer, r.os);
}

void parse_record(const std::vector<std::string>& f, DeviceRecord& r) {
  expect_fields(f, 4, "device");
  r.tac = parse_int<std::uint32_t>(f[0], "tac");
  r.model = f[1];
  r.manufacturer = f[2];
  r.os = f[3];
}

void write_record(std::ostream& out, const SectorInfo& r) {
  util::CsvWriter w(out);
  char lat[32];
  char lon[32];
  std::snprintf(lat, sizeof(lat), "%.6f", r.position.lat_deg);
  std::snprintf(lon, sizeof(lon), "%.6f", r.position.lon_deg);
  w.row(r.sector_id, lat, lon);
}

void parse_record(const std::vector<std::string>& f, SectorInfo& r) {
  expect_fields(f, 3, "sector");
  r.sector_id = parse_int<std::uint32_t>(f[0], "sector_id");
  r.position.lat_deg = parse_double(f[1], "lat_deg");
  r.position.lon_deg = parse_double(f[2], "lon_deg");
}

}  // namespace

template <typename Record>
CsvLogWriter<Record>::CsvLogWriter(std::ostream& out) : out_(&out) {
  *out_ << header_of<Record>() << '\n';
}

template <typename Record>
void CsvLogWriter<Record>::write(const Record& r) {
  write_record(*out_, r);
}

template <typename Record>
CsvLogReader<Record>::CsvLogReader(std::istream& in) : in_(&in) {
  std::string header;
  if (!std::getline(*in_, header))
    throw util::ParseError("csv log: missing header row");
  if (!header.empty() && header.back() == '\r') header.pop_back();
  if (header != header_of<Record>())
    throw util::ParseError("csv log: unexpected header '" + header + "'");
}

template <typename Record>
bool CsvLogReader<Record>::next(Record& out) {
  std::string line;
  while (std::getline(*in_, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    parse_record(util::csv_parse_line(line), out);
    return true;
  }
  return false;
}

template <typename Record>
std::vector<Record> read_csv_log_lenient(std::istream& in,
                                         QuarantineStats& quarantine) {
  std::vector<Record> records;
  std::optional<CsvLogReader<Record>> reader;
  try {
    reader.emplace(in);
  } catch (const util::ParseError&) {
    ++quarantine.corrupt_files;
    return records;
  }
  for (;;) {
    Record r;
    try {
      if (!reader->next(r)) break;
    } catch (const util::ParseError&) {
      // next() consumed the offending line, so resuming is safe.
      ++quarantine.corrupt_rows;
      continue;
    }
    records.push_back(std::move(r));
  }
  return records;
}

template std::vector<ProxyRecord> read_csv_log_lenient<ProxyRecord>(
    std::istream&, QuarantineStats&);
template std::vector<MmeRecord> read_csv_log_lenient<MmeRecord>(
    std::istream&, QuarantineStats&);
template std::vector<DeviceRecord> read_csv_log_lenient<DeviceRecord>(
    std::istream&, QuarantineStats&);
template std::vector<SectorInfo> read_csv_log_lenient<SectorInfo>(
    std::istream&, QuarantineStats&);

template class CsvLogWriter<ProxyRecord>;
template class CsvLogWriter<MmeRecord>;
template class CsvLogWriter<DeviceRecord>;
template class CsvLogWriter<SectorInfo>;
template class CsvLogReader<ProxyRecord>;
template class CsvLogReader<MmeRecord>;
template class CsvLogReader<DeviceRecord>;
template class CsvLogReader<SectorInfo>;

}  // namespace wearscope::trace
