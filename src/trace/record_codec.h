// Field-level codec shared by every binary trace serializer.
//
// The byte layout of one record is defined exactly once here, templated on
// the encoder/decoder type, so the v1 stream reader (trace/binary_io), the
// v2 blocked reader (trace/block_io) and the zero-copy span decoder
// (util/span_decoder) can never disagree about what a record looks like on
// disk.  Encoders provide put_u8..put_string, decoders get_u8..get_string;
// all integers little-endian, strings u16-length-prefixed UTF-8.
#pragma once

#include <cstdint>

#include "trace/records.h"
#include "util/error.h"

namespace wearscope::trace {

/// Per-record-type magic so that a proxy log cannot be fed to an MME
/// reader.
template <typename Record>
constexpr std::uint32_t magic_of();
template <>
constexpr std::uint32_t magic_of<ProxyRecord>() {
  return 0x57505258;  // "WPRX"
}
template <>
constexpr std::uint32_t magic_of<MmeRecord>() {
  return 0x574d4d45;  // "WMME"
}
template <>
constexpr std::uint32_t magic_of<DeviceRecord>() {
  return 0x57444556;  // "WDEV"
}
template <>
constexpr std::uint32_t magic_of<SectorInfo>() {
  return 0x57534543;  // "WSEC"
}

template <typename Encoder>
void encode_record(Encoder& enc, const ProxyRecord& r) {
  enc.put_i64(r.timestamp);
  enc.put_u64(r.user_id);
  enc.put_u32(r.tac);
  enc.put_u8(static_cast<std::uint8_t>(r.protocol));
  enc.put_string(r.host);
  enc.put_string(r.url_path);
  enc.put_u64(r.bytes_up);
  enc.put_u64(r.bytes_down);
  enc.put_u32(r.duration_ms);
}

template <typename Decoder>
void decode_record(Decoder& dec, ProxyRecord& r) {
  r.timestamp = dec.get_i64();
  r.user_id = dec.get_u64();
  r.tac = dec.get_u32();
  const std::uint8_t proto = dec.get_u8();
  if (proto > 1) throw util::ParseError("proxy record: bad protocol byte");
  r.protocol = static_cast<Protocol>(proto);
  r.host = dec.get_string();
  r.url_path = dec.get_string();
  r.bytes_up = dec.get_u64();
  r.bytes_down = dec.get_u64();
  r.duration_ms = dec.get_u32();
}

template <typename Encoder>
void encode_record(Encoder& enc, const MmeRecord& r) {
  enc.put_i64(r.timestamp);
  enc.put_u64(r.user_id);
  enc.put_u32(r.tac);
  enc.put_u8(static_cast<std::uint8_t>(r.event));
  enc.put_u32(r.sector_id);
}

template <typename Decoder>
void decode_record(Decoder& dec, MmeRecord& r) {
  r.timestamp = dec.get_i64();
  r.user_id = dec.get_u64();
  r.tac = dec.get_u32();
  const std::uint8_t ev = dec.get_u8();
  if (ev > 3) throw util::ParseError("mme record: bad event byte");
  r.event = static_cast<MmeEvent>(ev);
  r.sector_id = dec.get_u32();
}

template <typename Encoder>
void encode_record(Encoder& enc, const DeviceRecord& r) {
  enc.put_u32(r.tac);
  enc.put_string(r.model);
  enc.put_string(r.manufacturer);
  enc.put_string(r.os);
}

template <typename Decoder>
void decode_record(Decoder& dec, DeviceRecord& r) {
  r.tac = dec.get_u32();
  r.model = dec.get_string();
  r.manufacturer = dec.get_string();
  r.os = dec.get_string();
}

template <typename Encoder>
void encode_record(Encoder& enc, const SectorInfo& r) {
  enc.put_u32(r.sector_id);
  enc.put_f64(r.position.lat_deg);
  enc.put_f64(r.position.lon_deg);
}

template <typename Decoder>
void decode_record(Decoder& dec, SectorInfo& r) {
  r.sector_id = dec.get_u32();
  r.position.lat_deg = dec.get_f64();
  r.position.lon_deg = dec.get_f64();
}

}  // namespace wearscope::trace
