#include "trace/bundle.h"

#include <fstream>

#include "trace/binary_io.h"
#include "trace/csv_io.h"
#include "util/error.h"

namespace wearscope::trace {

namespace {

template <typename Record>
void save_log(const std::vector<Record>& records,
              const std::filesystem::path& path, BundleFormat format) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw util::IoError("cannot open for writing: " + path.string());
  if (format == BundleFormat::kBinary) {
    BinaryLogWriter<Record> writer(out);
    for (const Record& r : records) writer.write(r);
  } else {
    CsvLogWriter<Record> writer(out);
    for (const Record& r : records) writer.write(r);
  }
  out.flush();
  if (!out) throw util::IoError("write failed: " + path.string());
}

template <typename Record>
std::vector<Record> load_log(const std::filesystem::path& dir,
                             const std::string& stem,
                             QuarantineStats* quarantine) {
  const std::filesystem::path bin = dir / (stem + ".bin");
  const std::filesystem::path csv = dir / (stem + ".csv");
  std::vector<Record> records;
  Record r;
  if (std::filesystem::exists(bin)) {
    std::ifstream in(bin, std::ios::binary);
    if (!in) throw util::IoError("cannot open: " + bin.string());
    if (quarantine != nullptr) {
      records = read_binary_log_lenient<Record>(in, *quarantine);
    } else {
      BinaryLogReader<Record> reader(in);
      while (reader.next(r)) records.push_back(r);
    }
  } else if (std::filesystem::exists(csv)) {
    std::ifstream in(csv);
    if (!in) throw util::IoError("cannot open: " + csv.string());
    if (quarantine != nullptr) {
      records = read_csv_log_lenient<Record>(in, *quarantine);
    } else {
      CsvLogReader<Record> reader(in);
      while (reader.next(r)) records.push_back(r);
    }
  } else {
    throw util::IoError("bundle log missing: " + (dir / stem).string() +
                        ".{bin,csv}");
  }
  return records;
}

TraceStore load_bundle_impl(const std::filesystem::path& dir,
                            QuarantineStats* quarantine) {
  TraceStore store;
  store.proxy = load_log<ProxyRecord>(dir, "proxy", quarantine);
  store.mme = load_log<MmeRecord>(dir, "mme", quarantine);
  store.devices = load_log<DeviceRecord>(dir, "devices", quarantine);
  store.sectors = load_log<SectorInfo>(dir, "sectors", quarantine);
  return store;
}

const char* extension(BundleFormat format) {
  return format == BundleFormat::kBinary ? ".bin" : ".csv";
}

}  // namespace

void save_bundle(const TraceStore& store, const std::filesystem::path& dir,
                 BundleFormat format) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) throw util::IoError("cannot create directory: " + dir.string());
  const std::string ext = extension(format);
  save_log(store.proxy, dir / ("proxy" + ext), format);
  save_log(store.mme, dir / ("mme" + ext), format);
  save_log(store.devices, dir / ("devices" + ext), format);
  save_log(store.sectors, dir / ("sectors" + ext), format);
}

TraceStore load_bundle(const std::filesystem::path& dir) {
  return load_bundle_impl(dir, nullptr);
}

TraceStore load_bundle(const std::filesystem::path& dir,
                       QuarantineStats& quarantine) {
  return load_bundle_impl(dir, &quarantine);
}

}  // namespace wearscope::trace
