#include "trace/bundle.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <optional>
#include <utility>

#include "par/task_pool.h"
#include "trace/binary_io.h"
#include "trace/csv_io.h"
#include "util/error.h"
#include "util/mapped_file.h"

namespace wearscope::trace {

namespace {

/// IoError carrying the failing path AND the OS errno explanation, so
/// "cannot open" tells the operator *why* (ENOENT vs EACCES vs EMFILE).
[[noreturn]] void fail_io(const std::string& action,
                          const std::filesystem::path& path) {
  const int err = errno;
  std::string msg = action + ": " + path.string();
  if (err != 0) {
    msg += " (";
    msg += std::strerror(err);
    msg += ")";
  }
  throw util::IoError(msg);
}

template <typename Record>
void save_log(const std::vector<Record>& records,
              const std::filesystem::path& path, BundleFormat format,
              std::uint16_t binary_version) {
  errno = 0;
  std::ofstream out(path, std::ios::binary);
  if (!out) fail_io("cannot open for writing", path);
  if (format == BundleFormat::kBinary) {
    if (binary_version == kBinaryFormatV3) {
      (void)write_columnar_log(out, records);
    } else if (binary_version == kBinaryFormatV2) {
      BlockLogWriter<Record> writer(out);
      for (const Record& r : records) writer.write(r);
      writer.finish();
    } else {
      BinaryLogWriter<Record> writer(out);
      for (const Record& r : records) writer.write(r);
    }
  } else {
    CsvLogWriter<Record> writer(out);
    for (const Record& r : records) writer.write(r);
  }
  out.flush();
  if (!out) fail_io("write failed", path);
}

[[noreturn]] void fail_missing(const std::filesystem::path& dir,
                               const std::string& stem) {
  throw util::IoError("bundle log missing: " + (dir / stem).string() +
                      ".{bin,csv}");
}

/// Emitted once per stem, at prepare time (sequential, fixed log order),
/// so the warning stream is deterministic.
void warn_dual_format(const std::filesystem::path& dir,
                      const std::string& stem) {
  std::cerr << "warning: both " << stem << ".bin and " << stem
            << ".csv exist in " << dir.string() << "; loading " << stem
            << ".bin (binary is preferred over csv)\n";
}

/// Per-log state of the one-batch bundle load.  prepare() — sequential —
/// maps the file, validates the header and appends this log's decode tasks
/// to the shared batch (one task per v2 block; one whole-log task for
/// v1/CSV, since those have no internal framing to split on).  After the
/// batch drains, finalize() — sequential again, called in fixed log
/// order — compacts v2 blocks and merges this log's quarantine counters,
/// keeping the accounting deterministic for every thread count.
template <typename Record>
class LogLoad {
 public:
  void prepare(const std::filesystem::path& dir, const std::string& stem,
               bool lenient, const LoadOptions& options,
               std::vector<std::function<void()>>& batch) {
    const std::filesystem::path bin = dir / (stem + ".bin");
    const std::filesystem::path csv = dir / (stem + ".csv");
    const bool have_bin = std::filesystem::exists(bin);
    const bool have_csv = std::filesystem::exists(csv);
    if (have_bin && have_csv) warn_dual_format(dir, stem);
    if (have_bin) {
      prepare_binary(bin, lenient, options, batch);
    } else if (have_csv) {
      prepare_csv(csv, lenient, batch);
    } else {
      fail_missing(dir, stem);
    }
  }

  /// Merges this log's quarantine counters into `quarantine` (lenient
  /// loads only) and hands over the records.
  std::vector<Record> finalize(QuarantineStats* quarantine) {
    if (decode_.has_value()) local_.corrupt_blocks += decode_->finalize(out_);
    if (columnar_.has_value())
      local_.corrupt_blocks += columnar_->finalize(out_);
    if (quarantine != nullptr) *quarantine += local_;
    decode_.reset();
    columnar_.reset();
    file_.reset();
    return std::move(out_);
  }

 private:
  void prepare_binary(const std::filesystem::path& bin, bool lenient,
                      const LoadOptions& options,
                      std::vector<std::function<void()>>& batch) {
    errno = 0;
    file_.emplace(bin, options.use_mmap ? util::MapMode::kAuto
                                        : util::MapMode::kReadWholeFile);
    const std::span<const std::byte> bytes = file_->bytes();
    std::uint16_t version = 0;
    if (lenient) {
      try {
        version = read_log_header<Record>(bytes);
      } catch (const util::ParseError&) {
        ++local_.corrupt_files;  // header rejected: nothing recoverable
        return;
      }
    } else {
      version = read_log_header<Record>(bytes);
    }
    if (version == kBinaryFormatV3) {
      columnar_.emplace(bytes.subspan(8), lenient);
      if (!columnar_->dicts_ok()) {
        ++local_.corrupt_files;  // indices are meaningless without dicts
        columnar_.reset();
        return;
      }
      columnar_->schedule(out_, batch);
      return;
    }
    if (version == kBinaryFormatV2) {
      decode_.emplace(bytes.subspan(8), lenient);
      decode_->schedule(out_, batch);
      return;
    }
    // v1 stream: one contiguous record run, decoded as a single task.
    batch.push_back([this, bytes, lenient] {
      if (lenient) {
        out_ = read_binary_log_lenient<Record>(bytes, local_, nullptr);
      } else {
        out_ = read_binary_log<Record>(bytes, nullptr);
      }
    });
  }

  void prepare_csv(const std::filesystem::path& csv, bool lenient,
                   std::vector<std::function<void()>>& batch) {
    csv_path_ = csv;
    batch.push_back([this, lenient] {
      errno = 0;
      std::ifstream in(csv_path_);
      if (!in) fail_io("cannot open", csv_path_);
      if (lenient) {
        out_ = read_csv_log_lenient<Record>(in, local_);
      } else {
        CsvLogReader<Record> reader(in);
        Record r;
        while (reader.next(r)) out_.push_back(r);
      }
    });
  }

  std::optional<util::MappedFile> file_;
  std::optional<BlockedLogDecode<Record>> decode_;
  std::optional<ColumnarLogDecode<Record>> columnar_;
  std::vector<Record> out_;
  QuarantineStats local_;
  std::filesystem::path csv_path_;
};

TraceStore load_bundle_impl(const std::filesystem::path& dir,
                            QuarantineStats* quarantine,
                            const LoadOptions& options) {
  util::require(options.threads >= 1, "load_bundle: threads must be >= 1");
  const bool lenient = quarantine != nullptr;
  LogLoad<ProxyRecord> proxy;
  LogLoad<MmeRecord> mme;
  LogLoad<DeviceRecord> devices;
  LogLoad<SectorInfo> sectors;
  // Phase 1 (sequential): map files, validate headers, scan v2 frame
  // indexes, pre-size destinations — and collect EVERY decode task of all
  // four logs into one flat batch, so a pool thread never idles while
  // another log still has blocks left.
  std::vector<std::function<void()>> batch;
  proxy.prepare(dir, "proxy", lenient, options, batch);
  mme.prepare(dir, "mme", lenient, options, batch);
  devices.prepare(dir, "devices", lenient, options, batch);
  sectors.prepare(dir, "sectors", lenient, options, batch);
  // Phase 2: drain the batch.  Tasks write disjoint slices (and their own
  // per-log counters), so any thread count produces the same bytes.
  par::TaskPool pool(static_cast<std::size_t>(options.threads));
  pool.run(std::move(batch));
  // Phase 3 (sequential, fixed order): compact v2 blocks and merge
  // quarantine accounting.
  TraceStore store;
  store.proxy = proxy.finalize(quarantine);
  store.mme = mme.finalize(quarantine);
  store.devices = devices.finalize(quarantine);
  store.sectors = sectors.finalize(quarantine);
  return store;
}

template <typename Record>
BundleLogAudit audit_log(const std::filesystem::path& dir,
                         const std::string& stem) {
  BundleLogAudit audit;
  audit.stem = stem;
  const std::filesystem::path bin = dir / (stem + ".bin");
  const std::filesystem::path csv = dir / (stem + ".csv");
  if (std::filesystem::exists(bin)) {
    audit.file = bin.filename().string();
    errno = 0;
    const util::MappedFile file(bin, util::MapMode::kAuto);
    const BinaryLogInfo info = probe_binary_log<Record>(file.bytes());
    audit.version = info.version;
    audit.blocks = info.blocks;
    audit.records = info.records;
    if (info.version == kBinaryFormatV3)
      audit.columnar = probe_columnar_layout<Record>(file.bytes().subspan(8));
  } else if (std::filesystem::exists(csv)) {
    audit.file = csv.filename().string();
    errno = 0;
    std::ifstream in(csv);
    if (!in) fail_io("cannot open", csv);
    QuarantineStats scratch;  // audit only reports; the load path accounts
    audit.records = read_csv_log_lenient<Record>(in, scratch).size();
  } else {
    fail_missing(dir, stem);
  }
  return audit;
}

const char* extension(BundleFormat format) {
  return format == BundleFormat::kBinary ? ".bin" : ".csv";
}

}  // namespace

void save_bundle(const TraceStore& store, const std::filesystem::path& dir,
                 BundleFormat format, std::uint16_t binary_version) {
  util::require(binary_version == 1 || binary_version == kBinaryFormatV2 ||
                    binary_version == kBinaryFormatV3,
                "save_bundle: binary version must be 1, 2 or 3");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec)
    throw util::IoError("cannot create directory: " + dir.string() + " (" +
                        ec.message() + ")");
  const std::string ext = extension(format);
  save_log(store.proxy, dir / ("proxy" + ext), format, binary_version);
  save_log(store.mme, dir / ("mme" + ext), format, binary_version);
  save_log(store.devices, dir / ("devices" + ext), format, binary_version);
  save_log(store.sectors, dir / ("sectors" + ext), format, binary_version);
}

TraceStore load_bundle(const std::filesystem::path& dir,
                       const LoadOptions& options) {
  return load_bundle_impl(dir, nullptr, options);
}

TraceStore load_bundle(const std::filesystem::path& dir) {
  return load_bundle_impl(dir, nullptr, LoadOptions{});
}

TraceStore load_bundle(const std::filesystem::path& dir,
                       QuarantineStats& quarantine,
                       const LoadOptions& options) {
  return load_bundle_impl(dir, &quarantine, options);
}

TraceStore load_bundle(const std::filesystem::path& dir,
                       QuarantineStats& quarantine) {
  return load_bundle_impl(dir, &quarantine, LoadOptions{});
}

std::vector<BundleLogAudit> audit_bundle(const std::filesystem::path& dir) {
  return {audit_log<ProxyRecord>(dir, "proxy"), audit_log<MmeRecord>(dir, "mme"),
          audit_log<DeviceRecord>(dir, "devices"),
          audit_log<SectorInfo>(dir, "sectors")};
}

}  // namespace wearscope::trace
