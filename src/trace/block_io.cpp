#include "trace/block_io.h"

#include <algorithm>
#include <array>
#include <utility>

#include "par/task_pool.h"
#include "trace/columnar_io.h"
#include "trace/record_codec.h"
#include "util/crc32.h"
#include "util/span_decoder.h"

namespace wearscope::trace {

namespace {

/// Encodes the three u32 fields of a frame header into `out`.
void encode_frame_header(std::array<char, kFrameHeaderBytes>& out,
                         std::uint32_t record_count, std::uint32_t byte_length,
                         std::uint32_t crc) {
  const auto put = [&out](std::size_t at, std::uint32_t v) {
    for (std::size_t i = 0; i < 4; ++i)
      out[at + i] = static_cast<char>((v >> (8 * i)) & 0xff);
  };
  put(0, record_count);
  put(4, byte_length);
  put(8, crc);
}

/// Strict/lenient shared header parse: returns the version, throws
/// ParseError on wrong magic, short header or unknown version.
template <typename Record>
std::uint16_t parse_file_header(util::MemorySpanDecoder& dec) {
  const std::uint32_t magic = dec.get_u32();
  if (magic != magic_of<Record>())
    throw util::ParseError("binary log: wrong magic (different record type?)");
  const std::uint16_t version = dec.get_u16();
  if (version != 1 && version != kBinaryFormatV2 &&
      version != kBinaryFormatV3)
    throw util::ParseError("binary log: unsupported format version " +
                           std::to_string(version));
  (void)dec.get_u16();  // reserved
  return version;
}

/// Decodes one frame payload into `out[0..record_count)`.  Returns true
/// when the CRC matches and exactly record_count records consume exactly
/// byte_length bytes.
template <typename Record>
bool decode_block(std::span<const std::byte> payload, const BlockFrame& frame,
                  Record* out) noexcept {
  if (util::crc32(payload) != frame.crc) return false;
  try {
    util::MemorySpanDecoder dec(payload);
    for (std::uint32_t i = 0; i < frame.record_count; ++i)
      decode_record(dec, out[i]);
    return dec.at_eof();
    // The caller accounts every failed block as one quarantined unit
    // (QuarantineStats::corrupt_blocks in BlockedLogDecode::finalize);
    // nothing partial is kept, so no counter is touched here.
    // wearscope-lint: allow(quarantine-pairing)
  } catch (const util::ParseError&) {
    return false;
  }
}

/// Sequential v1 body decode (records until EOF), shared by the strict
/// and lenient span readers.
template <typename Record>
void decode_v1_body(util::MemorySpanDecoder& dec, std::vector<Record>& out) {
  Record r;
  while (!dec.at_eof()) {
    decode_record(dec, r);
    out.push_back(std::move(r));
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// BlockLogWriter
// ---------------------------------------------------------------------------

template <typename Record>
BlockLogWriter<Record>::BlockLogWriter(std::ostream& out,
                                       BlockWriterOptions options)
    : out_(&out), options_(options) {
  util::require(options_.target_block_bytes > 0 &&
                    options_.max_block_records > 0,
                "block writer limits must be positive");
  std::string header;
  BufferEncoder enc(header);
  enc.put_u32(magic_of<Record>());
  enc.put_u16(kBinaryFormatV2);
  enc.put_u16(0);  // reserved
  out_->write(header.data(), static_cast<std::streamsize>(header.size()));
  if (!*out_) throw util::IoError("binary write failed");
}

template <typename Record>
BlockLogWriter<Record>::~BlockLogWriter() {
  try {
    finish();
  } catch (...) {
    // Destructors must not throw; call finish() explicitly to observe
    // write failures.
  }
}

template <typename Record>
void BlockLogWriter<Record>::write(const Record& r) {
  util::ensure(!finished_, "BlockLogWriter: write after finish");
  BufferEncoder enc(scratch_);
  encode_record(enc, r);
  ++pending_records_;
  ++count_;
  if (scratch_.size() >= options_.target_block_bytes ||
      pending_records_ >= options_.max_block_records) {
    flush_block();
  }
}

template <typename Record>
void BlockLogWriter<Record>::finish() {
  if (finished_) return;
  if (pending_records_ > 0) flush_block();
  finished_ = true;
}

template <typename Record>
void BlockLogWriter<Record>::flush_block() {
  const std::uint32_t crc = util::crc32(
      std::as_bytes(std::span<const char>(scratch_.data(), scratch_.size())));
  std::array<char, kFrameHeaderBytes> header{};
  encode_frame_header(header, pending_records_,
                      static_cast<std::uint32_t>(scratch_.size()), crc);
  out_->write(header.data(), static_cast<std::streamsize>(header.size()));
  out_->write(scratch_.data(), static_cast<std::streamsize>(scratch_.size()));
  if (!*out_) throw util::IoError("binary write failed");
  scratch_.clear();
  pending_records_ = 0;
  ++blocks_;
}

// ---------------------------------------------------------------------------
// Frame index scan
// ---------------------------------------------------------------------------

BlockIndex scan_block_index(std::span<const std::byte> body, bool lenient) {
  BlockIndex index;
  util::MemorySpanDecoder dec(body);
  while (!dec.at_eof()) {
    if (dec.remaining() < kFrameHeaderBytes) {
      if (!lenient)
        throw util::ParseError("blocked log: truncated frame header at byte " +
                               std::to_string(dec.offset()));
      ++index.corrupt_blocks;  // the chain is broken; one block lost
      return index;
    }
    BlockFrame frame;
    frame.record_count = dec.get_u32();
    frame.byte_length = dec.get_u32();
    frame.crc = dec.get_u32();
    if (frame.byte_length > dec.remaining()) {
      if (!lenient)
        throw util::ParseError(
            "blocked log: frame claims " + std::to_string(frame.byte_length) +
            " payload bytes but only " + std::to_string(dec.remaining()) +
            " remain (overlong byte_length at byte " +
            std::to_string(dec.offset() - kFrameHeaderBytes) + ")");
      ++index.corrupt_blocks;  // tail unaddressable past a broken length
      return index;
    }
    frame.payload_offset = static_cast<std::size_t>(dec.offset());
    (void)dec.take(frame.byte_length);
    // record_count > byte_length is impossible (every record is at least
    // one byte): cap the pre-size allocation at the file size and skip
    // the frame — the chain is still intact, so the next frame resyncs.
    if (frame.record_count > frame.byte_length) {
      if (!lenient)
        throw util::ParseError(
            "blocked log: frame claims " + std::to_string(frame.record_count) +
            " records in " + std::to_string(frame.byte_length) + " bytes");
      frame.header_ok = false;
      ++index.corrupt_blocks;
    } else {
      index.total_records += frame.record_count;
    }
    index.frames.push_back(frame);
  }
  return index;
}

// ---------------------------------------------------------------------------
// BlockedLogDecode
// ---------------------------------------------------------------------------

template <typename Record>
BlockedLogDecode<Record>::BlockedLogDecode(std::span<const std::byte> body,
                                           bool lenient)
    : body_(body), lenient_(lenient),
      index_(scan_block_index(body, lenient)) {
  frame_base_.reserve(index_.frames.size());
  std::uint64_t base = 0;
  for (const BlockFrame& frame : index_.frames) {
    frame_base_.push_back(base);
    if (frame.header_ok) base += frame.record_count;
  }
  frame_done_.assign(index_.frames.size(), 0);
}

template <typename Record>
void BlockedLogDecode<Record>::schedule(
    std::vector<Record>& out, std::vector<std::function<void()>>& batch) {
  out.resize(static_cast<std::size_t>(index_.total_records));
  for (std::size_t i = 0; i < index_.frames.size(); ++i) {
    const BlockFrame& frame = index_.frames[i];
    if (!frame.header_ok) continue;
    const std::span<const std::byte> payload =
        body_.subspan(frame.payload_offset, frame.byte_length);
    Record* slice = out.data() + frame_base_[i];
    std::uint8_t* done = &frame_done_[i];
    const bool lenient = lenient_;
    const std::size_t block_no = i;
    batch.push_back([payload, &frame, slice, done, lenient, block_no] {
      const bool ok = decode_block(payload, frame, slice);
      if (!ok && !lenient)
        throw util::ParseError("blocked log: block " +
                               std::to_string(block_no) +
                               " failed CRC or payload decode");
      *done = ok ? 1 : 0;
    });
  }
}

template <typename Record>
std::uint64_t BlockedLogDecode<Record>::finalize(std::vector<Record>& out) {
  std::uint64_t corrupt = index_.corrupt_blocks;
  std::uint64_t write_pos = 0;
  for (std::size_t i = 0; i < index_.frames.size(); ++i) {
    const BlockFrame& frame = index_.frames[i];
    if (!frame.header_ok) continue;
    if (frame_done_[i] == 0) {
      ++corrupt;
      continue;
    }
    const std::uint64_t base = frame_base_[i];
    if (write_pos != base) {
      std::move(out.begin() + static_cast<std::ptrdiff_t>(base),
                out.begin() +
                    static_cast<std::ptrdiff_t>(base + frame.record_count),
                out.begin() + static_cast<std::ptrdiff_t>(write_pos));
    }
    write_pos += frame.record_count;
  }
  out.resize(static_cast<std::size_t>(write_pos));
  return corrupt;
}

// ---------------------------------------------------------------------------
// Whole-log readers
// ---------------------------------------------------------------------------

namespace {

/// Runs `batch` on `pool` (or inline when pool is null / single-threaded).
void run_batch(std::vector<std::function<void()>> batch, par::TaskPool* pool) {
  if (batch.empty()) return;
  if (pool == nullptr) {
    for (std::function<void()>& task : batch) task();
    return;
  }
  pool->run(std::move(batch));
}

}  // namespace

template <typename Record>
std::vector<Record> read_binary_log(std::span<const std::byte> bytes,
                                    par::TaskPool* pool) {
  util::MemorySpanDecoder dec(bytes);
  const std::uint16_t version = parse_file_header<Record>(dec);
  std::vector<Record> out;
  if (version == 1) {
    decode_v1_body(dec, out);
    return out;
  }
  if (version == kBinaryFormatV3) {
    ColumnarLogDecode<Record> decode(bytes.subspan(8), /*lenient=*/false);
    std::vector<std::function<void()>> batch;
    decode.schedule(out, batch);
    run_batch(std::move(batch), pool);
    (void)decode.finalize(out);
    return out;
  }
  BlockedLogDecode<Record> decode(bytes.subspan(8), /*lenient=*/false);
  std::vector<std::function<void()>> batch;
  decode.schedule(out, batch);
  run_batch(std::move(batch), pool);
  (void)decode.finalize(out);
  return out;
}

template <typename Record>
std::vector<Record> read_binary_log_lenient(std::span<const std::byte> bytes,
                                            QuarantineStats& quarantine,
                                            par::TaskPool* pool) {
  std::vector<Record> out;
  std::uint16_t version = 0;
  util::MemorySpanDecoder dec(bytes);
  try {
    version = parse_file_header<Record>(dec);
  } catch (const util::ParseError&) {
    ++quarantine.corrupt_files;
    return out;
  }
  if (version == 1) {
    try {
      decode_v1_body(dec, out);
    } catch (const util::ParseError&) {
      // v1 records carry no framing: the tail is unrecoverable past the
      // first bad byte, mirroring the stream reader's semantics.
      ++quarantine.corrupt_tails;
    }
    return out;
  }
  if (version == kBinaryFormatV3) {
    ColumnarLogDecode<Record> decode(bytes.subspan(8), /*lenient=*/true);
    if (!decode.dicts_ok()) {
      ++quarantine.corrupt_files;  // indices are meaningless without dicts
      return out;
    }
    std::vector<std::function<void()>> batch;
    decode.schedule(out, batch);
    run_batch(std::move(batch), pool);
    quarantine.corrupt_blocks += decode.finalize(out);
    return out;
  }
  BlockedLogDecode<Record> decode(bytes.subspan(8), /*lenient=*/true);
  std::vector<std::function<void()>> batch;
  decode.schedule(out, batch);
  run_batch(std::move(batch), pool);
  quarantine.corrupt_blocks += decode.finalize(out);
  return out;
}

template <typename Record>
std::uint16_t read_log_header(std::span<const std::byte> bytes) {
  util::MemorySpanDecoder dec(bytes);
  return parse_file_header<Record>(dec);
}

template <typename Record>
BinaryLogInfo probe_binary_log(std::span<const std::byte> bytes) {
  util::MemorySpanDecoder dec(bytes);
  BinaryLogInfo info;
  info.version = parse_file_header<Record>(dec);
  if (info.version == kBinaryFormatV3) {
    const ColumnarLayoutInfo layout =
        probe_columnar_layout<Record>(bytes.subspan(8));
    info.blocks = layout.groups;
    info.records = layout.records;
    return info;
  }
  if (info.version == kBinaryFormatV2) {
    const BlockIndex index =
        scan_block_index(bytes.subspan(8), /*lenient=*/true);
    info.blocks = index.frames.size();
    info.records = index.total_records;
    return info;
  }
  try {
    Record r;
    while (!dec.at_eof()) {
      decode_record(dec, r);
      ++info.records;
    }
    // Audit context: report what a lenient reader would recover; the
    // quarantine accounting itself happens on the real load path.
    // wearscope-lint: allow(quarantine-pairing)
  } catch (const util::ParseError&) {
  }
  return info;
}

template class BlockLogWriter<ProxyRecord>;
template class BlockLogWriter<MmeRecord>;
template class BlockLogWriter<DeviceRecord>;
template class BlockLogWriter<SectorInfo>;
template class BlockedLogDecode<ProxyRecord>;
template class BlockedLogDecode<MmeRecord>;
template class BlockedLogDecode<DeviceRecord>;
template class BlockedLogDecode<SectorInfo>;

template std::vector<ProxyRecord> read_binary_log<ProxyRecord>(
    std::span<const std::byte>, par::TaskPool*);
template std::vector<MmeRecord> read_binary_log<MmeRecord>(
    std::span<const std::byte>, par::TaskPool*);
template std::vector<DeviceRecord> read_binary_log<DeviceRecord>(
    std::span<const std::byte>, par::TaskPool*);
template std::vector<SectorInfo> read_binary_log<SectorInfo>(
    std::span<const std::byte>, par::TaskPool*);

template std::vector<ProxyRecord> read_binary_log_lenient<ProxyRecord>(
    std::span<const std::byte>, QuarantineStats&, par::TaskPool*);
template std::vector<MmeRecord> read_binary_log_lenient<MmeRecord>(
    std::span<const std::byte>, QuarantineStats&, par::TaskPool*);
template std::vector<DeviceRecord> read_binary_log_lenient<DeviceRecord>(
    std::span<const std::byte>, QuarantineStats&, par::TaskPool*);
template std::vector<SectorInfo> read_binary_log_lenient<SectorInfo>(
    std::span<const std::byte>, QuarantineStats&, par::TaskPool*);

template std::uint16_t read_log_header<ProxyRecord>(std::span<const std::byte>);
template std::uint16_t read_log_header<MmeRecord>(std::span<const std::byte>);
template std::uint16_t read_log_header<DeviceRecord>(
    std::span<const std::byte>);
template std::uint16_t read_log_header<SectorInfo>(std::span<const std::byte>);

template BinaryLogInfo probe_binary_log<ProxyRecord>(
    std::span<const std::byte>);
template BinaryLogInfo probe_binary_log<MmeRecord>(std::span<const std::byte>);
template BinaryLogInfo probe_binary_log<DeviceRecord>(
    std::span<const std::byte>);
template BinaryLogInfo probe_binary_log<SectorInfo>(
    std::span<const std::byte>);

}  // namespace wearscope::trace
