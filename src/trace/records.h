// The log records produced by the three vantage points of the measurement
// infrastructure (paper §3.1, Fig. 1):
//
//   * the transparent Web-proxy       -> ProxyRecord   (one HTTP/S transaction)
//   * the MME                         -> MmeRecord     (attach/handover/detach)
//   * the Device database             -> DeviceRecord  (TAC -> model/OS/vendor)
//
// plus the antenna-sector database (SectorInfo) that maps sector ids to
// geographic positions for the mobility analyses.
//
// These records are the *only* interface between the synthetic ISP (simnet)
// and the analysis pipeline (core): the pipeline never sees ground truth.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "util/geo.h"
#include "util/sim_time.h"

namespace wearscope::trace {

/// Anonymized subscriber identifier (stable across vantage points, as the
/// ISP's anonymization in the paper preserves joinability).
using UserId = std::uint64_t;

/// Antenna sector identifier as tracked by the MME.
using SectorId = std::uint32_t;

/// IMEI Type Allocation Code: the first 8 digits of the IMEI, identifying
/// the device model. The DeviceDB is keyed by TAC.
using Tac = std::uint32_t;

/// Application-layer protocol observed by the transparent proxy.
enum class Protocol : std::uint8_t {
  kHttp = 0,   ///< Full URL visible.
  kHttps = 1,  ///< Only the TLS SNI visible.
};

/// One HTTP/HTTPS transaction logged by the transparent Web-proxy.
struct ProxyRecord {
  util::SimTime timestamp = 0;   ///< Transaction start time.
  UserId user_id = 0;            ///< Anonymized subscriber.
  Tac tac = 0;                   ///< TAC of the device that sent it.
  Protocol protocol = Protocol::kHttps;
  std::string host;              ///< SNI (HTTPS) or URL host (HTTP).
  std::string url_path;          ///< URL path; empty for HTTPS.
  std::uint64_t bytes_up = 0;    ///< Uplink payload bytes.
  std::uint64_t bytes_down = 0;  ///< Downlink payload bytes.
  std::uint32_t duration_ms = 0; ///< Transaction duration.

  /// Total payload volume of the transaction.
  [[nodiscard]] std::uint64_t bytes_total() const noexcept {
    return bytes_up + bytes_down;
  }

  friend bool operator==(const ProxyRecord&, const ProxyRecord&) = default;
};

/// MME signalling event kinds retained by the collection pipeline.
enum class MmeEvent : std::uint8_t {
  kAttach = 0,    ///< Device registered with the network.
  kHandover = 1,  ///< Device moved to a different sector.
  kDetach = 2,    ///< Device left the network.
  kTau = 3,       ///< Periodic tracking-area update (keep-alive).
};

/// One mobility-management event: "user u was at sector s at time t".
struct MmeRecord {
  util::SimTime timestamp = 0;
  UserId user_id = 0;
  Tac tac = 0;
  MmeEvent event = MmeEvent::kAttach;
  SectorId sector_id = 0;

  friend bool operator==(const MmeRecord&, const MmeRecord&) = default;
};

/// One row of the Device database: TAC -> commercial device description.
/// Note the DB does *not* say "this is a wearable"; classifying models is
/// the analyst's job (paper §3.2) and is done in core::DeviceClassifier.
struct DeviceRecord {
  Tac tac = 0;
  std::string model;         ///< e.g. "Gear S3 frontier LTE".
  std::string manufacturer;  ///< e.g. "Samsung".
  std::string os;            ///< e.g. "Tizen", "Android Wear", "iOS".

  friend bool operator==(const DeviceRecord&, const DeviceRecord&) = default;
};

/// One antenna sector with its geographic position.
struct SectorInfo {
  SectorId sector_id = 0;
  util::GeoPoint position;

  friend bool operator==(const SectorInfo&, const SectorInfo&) = default;
};

/// Orders records by (timestamp, user) — the canonical log order.
struct ByTimeThenUser {
  bool operator()(const ProxyRecord& a, const ProxyRecord& b) const noexcept {
    return a.timestamp != b.timestamp ? a.timestamp < b.timestamp
                                      : a.user_id < b.user_id;
  }
  bool operator()(const MmeRecord& a, const MmeRecord& b) const noexcept {
    return a.timestamp != b.timestamp ? a.timestamp < b.timestamp
                                      : a.user_id < b.user_id;
  }
};

}  // namespace wearscope::trace
