#include "trace/anonymize.h"

#include "util/error.h"
#include "util/rng.h"
#include "util/strings.h"

namespace wearscope::trace {

UserId anonymize_user_id(UserId id, std::uint64_t key) {
  // Two rounds of splitmix64 keyed on both sides: cheap, stable, and with
  // no practical way back to the subscriber id without the key.
  return util::splitmix64(util::splitmix64(id ^ key) ^ (key * 0x9E3779B97F4A7C15ULL));
}

void anonymize(TraceStore& store, const AnonymizePolicy& policy) {
  util::require(policy.time_quantum_s >= 1,
                "anonymize: time_quantum_s must be >= 1");
  const auto quantize = [&](util::SimTime t) {
    return t - (t % policy.time_quantum_s);
  };

  for (ProxyRecord& r : store.proxy) {
    r.user_id = anonymize_user_id(r.user_id, policy.key);
    r.timestamp = quantize(r.timestamp);
    if (policy.coarsen_hosts) r.host = util::registrable_domain(r.host);
    if (policy.drop_url_paths) r.url_path.clear();
  }
  for (MmeRecord& r : store.mme) {
    r.user_id = anonymize_user_id(r.user_id, policy.key);
    r.timestamp = quantize(r.timestamp);
  }
  // Quantization can reorder equal-timestamp records relative to the
  // (time, user) canonical order; restore it.
  store.sort_by_time();
}

}  // namespace wearscope::trace
