// Compact binary log format, on-disk version 1.
//
// Layout: an 8-byte header (4-byte magic identifying the record kind,
// 2-byte version, 2-byte reserved) followed by length-delimited records.
// All integers are little-endian regardless of host order; strings are
// u16-length-prefixed UTF-8.  The format is stream-oriented: readers pull one
// record at a time so multi-gigabyte logs never need to fit in memory.
//
// Version 2 (trace/block_io) keeps the identical record encoding but frames
// records into CRC-checked blocks for zero-copy mmap reads and parallel
// decode; the classes here remain the v1 reference codec (and the fallback
// writer for `--trace-format v1`).  The field-level layout both versions
// share lives in trace/record_codec.h.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "trace/quarantine.h"
#include "trace/records.h"

namespace wearscope::trace {

/// Current on-disk format version.
inline constexpr std::uint16_t kBinaryFormatVersion = 1;

/// Low-level little-endian primitive encoder (exposed for tests).
class BinaryEncoder {
 public:
  explicit BinaryEncoder(std::ostream& out) : out_(&out) {}

  void put_u8(std::uint8_t v);
  void put_u16(std::uint16_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i64(std::int64_t v);
  void put_f64(double v);
  /// Writes a u16 length prefix + bytes. Strings longer than 65535 bytes
  /// are rejected (no trace field is remotely that long).
  void put_string(const std::string& s);

 private:
  std::ostream* out_ = nullptr;
};

/// Low-level little-endian primitive decoder (exposed for tests).
/// Throws util::ParseError on short reads; every message carries the byte
/// offset at which decoding failed so corrupt captures are debuggable.
class BinaryDecoder {
 public:
  explicit BinaryDecoder(std::istream& in) : in_(&in) {}

  std::uint8_t get_u8();
  std::uint16_t get_u16();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  std::int64_t get_i64();
  double get_f64();
  /// Reads a u16-length-prefixed string.  The claimed length is clamped
  /// against the bytes the stream can still deliver *before* any
  /// allocation, so a corrupt length prefix fails with ParseError instead
  /// of over-reading or allocating on hostile input.
  std::string get_string();
  /// True when the stream has no more bytes (peeks).
  bool at_eof();
  /// Bytes successfully consumed so far.
  [[nodiscard]] std::uint64_t offset() const noexcept { return offset_; }

 private:
  std::istream* in_;
  std::uint64_t offset_ = 0;
};

/// Typed streaming writer: writes the header on construction, then one
/// record per write() call.
template <typename Record>
class BinaryLogWriter {
 public:
  explicit BinaryLogWriter(std::ostream& out);
  /// Appends one record.
  void write(const Record& r);
  /// Number of records written so far.
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

 private:
  BinaryEncoder enc_;
  std::uint64_t count_ = 0;
};

/// Typed streaming reader: validates the header on construction, then
/// yields records until EOF.
template <typename Record>
class BinaryLogReader {
 public:
  /// Throws util::ParseError when the header magic/version mismatch.
  explicit BinaryLogReader(std::istream& in);
  /// Reads the next record into `out`; returns false at clean EOF.
  /// Throws util::ParseError on truncated records.
  bool next(Record& out);

 private:
  BinaryDecoder dec_;
};

/// Lenient read of one whole binary log with skip-and-count quarantine
/// semantics: a rejected header counts one `corrupt_files` (nothing
/// recovered), a mid-stream parse error counts one `corrupt_tails` and
/// keeps every record decoded before it (binary records carry no
/// per-record framing, so resynchronising inside a corrupt tail is not
/// possible).  Never throws ParseError.
template <typename Record>
std::vector<Record> read_binary_log_lenient(std::istream& in,
                                            QuarantineStats& quarantine);

extern template class BinaryLogWriter<ProxyRecord>;
extern template class BinaryLogWriter<MmeRecord>;
extern template class BinaryLogWriter<DeviceRecord>;
extern template class BinaryLogWriter<SectorInfo>;
extern template class BinaryLogReader<ProxyRecord>;
extern template class BinaryLogReader<MmeRecord>;
extern template class BinaryLogReader<DeviceRecord>;
extern template class BinaryLogReader<SectorInfo>;

}  // namespace wearscope::trace
