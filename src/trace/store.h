// In-memory trace container shared by generator, serializers and analyses.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "trace/columns.h"
#include "trace/records.h"

namespace wearscope::par {
class TaskPool;
}  // namespace wearscope::par

namespace wearscope::trace {

/// Aggregate counters over a TraceStore (used in reports and sanity tests).
struct TraceSummary {
  std::size_t proxy_records = 0;
  std::size_t mme_records = 0;
  std::size_t devices = 0;
  std::size_t sectors = 0;
  std::size_t distinct_proxy_users = 0;
  std::size_t distinct_mme_users = 0;
  std::uint64_t total_bytes = 0;
  util::SimTime first_timestamp = 0;
  util::SimTime last_timestamp = 0;
};

/// Holds one complete capture: the three vantage-point logs plus the sector
/// database. Value-semantic; the analyses take it by const reference.
class TraceStore {
 public:
  std::vector<ProxyRecord> proxy;    ///< Transparent-proxy transaction log.
  std::vector<MmeRecord> mme;        ///< MME mobility log.
  std::vector<DeviceRecord> devices; ///< DeviceDB snapshot.
  std::vector<SectorInfo> sectors;   ///< Antenna-sector positions.

  /// Sorts both event logs into canonical (time, user) order.  Discards
  /// previously built column views (row indices shift).
  void sort_by_time();

  /// True when both event logs are in canonical order.
  [[nodiscard]] bool is_sorted() const noexcept;

  /// Computes aggregate counters (distinct users, volumes, time span).
  [[nodiscard]] TraceSummary summarize() const;

  /// DeviceDB lookup by TAC; nullopt for unknown TACs.
  [[nodiscard]] std::optional<DeviceRecord> find_device(Tac tac) const;

  /// Sector lookup by id; nullopt for unknown sectors.
  [[nodiscard]] std::optional<SectorInfo> find_sector(SectorId id) const;

  /// Builds (or rebuilds) the lookup indexes after mutating devices/sectors.
  void rebuild_indexes() const;

  /// Builds the struct-of-arrays views over both event logs (see
  /// trace/columns.h) unless already built.  Independent columns fill as
  /// separate tasks on `pool` when given; any pool size produces the same
  /// columns.  Lazy/mutable like rebuild_indexes: build after the rows
  /// reach their final order (sort_by_time invalidates).
  void build_columns(par::TaskPool* pool = nullptr) const;

  /// True once build_columns has run against the current row order.
  [[nodiscard]] bool columns_built() const noexcept { return columns_built_; }

  /// The column views; build_columns() is called on demand when needed.
  [[nodiscard]] const ProxyColumns& proxy_columns() const;
  [[nodiscard]] const MmeColumns& mme_columns() const;

 private:
  mutable std::unordered_map<Tac, std::size_t> device_index_;
  mutable std::unordered_map<SectorId, std::size_t> sector_index_;
  mutable bool indexes_built_ = false;
  mutable ProxyColumns proxy_columns_;
  mutable MmeColumns mme_columns_;
  mutable bool columns_built_ = false;
};

}  // namespace wearscope::trace
