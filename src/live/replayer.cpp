#include "live/replayer.h"

#include <chrono>
#include <thread>

#include "util/error.h"

namespace wearscope::live {

FeedReplayer::FeedReplayer(const trace::TraceStore& store,
                           ReplayOptions options)
    : store_(&store), opt_(options) {
  util::require(store.is_sorted(),
                "FeedReplayer: store must be time-sorted (sort_by_time)");
}

namespace {

// Pause before retry number `attempt` (0-based), growing geometrically and
// capped. A zero initial backoff disables sleeping entirely, which keeps
// fault-heavy tests fast without changing the accounting.
void backoff_sleep(const RetryPolicy& policy, std::uint32_t attempt) {
  if (policy.initial_backoff.count() <= 0) return;
  double us = static_cast<double>(policy.initial_backoff.count());
  for (std::uint32_t i = 0; i < attempt; ++i) us *= policy.backoff_multiplier;
  const double cap = static_cast<double>(policy.max_backoff.count());
  if (us > cap) us = cap;
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<std::int64_t>(us)));
}

}  // namespace

ReplayReport FeedReplayer::replay(LiveEngine& engine) const {
  using Clock = std::chrono::steady_clock;
  ReplayReport report;

  const std::vector<trace::ProxyRecord>& proxy = store_->proxy;
  const std::vector<trace::MmeRecord>& mme = store_->mme;
  std::size_t pi = 0;
  std::size_t mi = 0;
  const bool paced = opt_.speedup > 0.0;

  // Stream-time origin: the earliest record of either log.
  util::SimTime t0 = 0;
  if (!proxy.empty() && !mme.empty()) {
    t0 = std::min(proxy.front().timestamp, mme.front().timestamp);
  } else if (!proxy.empty()) {
    t0 = proxy.front().timestamp;
  } else if (!mme.empty()) {
    t0 = mme.front().timestamp;
  }
  util::SimTime next_snapshot =
      opt_.snapshot_every_s > 0 ? t0 + opt_.snapshot_every_s : 0;

  const Clock::time_point wall0 = Clock::now();
  std::uint64_t seq = 0;  // Feed position in merge order, both logs.
  while (pi < proxy.size() || mi < mme.size()) {
    // Ties replay the MME event first: a device registers with the network
    // before its traffic shows up at the proxy.
    const bool take_mme =
        mi < mme.size() &&
        (pi >= proxy.size() ||
         mme[mi].timestamp <= proxy[pi].timestamp);
    const util::SimTime ts =
        take_mme ? mme[mi].timestamp : proxy[pi].timestamp;

    if (opt_.snapshot_every_s > 0 && ts >= next_snapshot) {
      if (opt_.on_snapshot) {
        opt_.on_snapshot(engine.snapshot());
      } else {
        report.snapshots.push_back(engine.snapshot());
      }
      // Skip empty intervals so one quiet week costs one snapshot, not 168.
      while (next_snapshot <= ts) next_snapshot += opt_.snapshot_every_s;
    }
    if (paced) {
      const double wall_target =
          static_cast<double>(ts - t0) / opt_.speedup;
      std::this_thread::sleep_until(
          wall0 + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(wall_target)));
    }

    if (opt_.read_faults) {
      const std::uint32_t faults = opt_.read_faults(seq);
      if (faults > 0) {
        trace::QuarantineStats delta;
        if (faults >= opt_.retry.max_attempts) {
          // Retry budget exhausted: quarantine the record, keep the feed
          // alive. The failed attempts still cost their backoff pauses.
          for (std::uint32_t a = 0; a + 1 < opt_.retry.max_attempts; ++a)
            backoff_sleep(opt_.retry, a);
          delta.dropped_after_retry = 1;
          report.quarantine += delta;
          engine.add_quarantine(delta);
          if (take_mme) {
            ++mi;
          } else {
            ++pi;
          }
          ++seq;
          continue;
        }
        // Transient: the read succeeds on attempt `faults`.
        for (std::uint32_t a = 0; a < faults; ++a) backoff_sleep(opt_.retry, a);
        delta.transient_retries = faults;
        report.quarantine += delta;
        engine.add_quarantine(delta);
      }
    }

    const bool accepted =
        take_mme ? engine.push(mme[mi++]) : engine.push(proxy[pi++]);
    if (accepted) ++report.records_pushed;
    ++seq;
  }
  report.wall_seconds =
      std::chrono::duration<double>(Clock::now() - wall0).count();
  return report;
}

}  // namespace wearscope::live
