#include "live/replayer.h"

#include <chrono>
#include <thread>

#include "util/error.h"

namespace wearscope::live {

FeedReplayer::FeedReplayer(const trace::TraceStore& store,
                           ReplayOptions options)
    : store_(&store), opt_(options) {
  util::require(store.is_sorted(),
                "FeedReplayer: store must be time-sorted (sort_by_time)");
}

ReplayReport FeedReplayer::replay(LiveEngine& engine) const {
  using Clock = std::chrono::steady_clock;
  ReplayReport report;

  const std::vector<trace::ProxyRecord>& proxy = store_->proxy;
  const std::vector<trace::MmeRecord>& mme = store_->mme;
  std::size_t pi = 0;
  std::size_t mi = 0;
  const bool paced = opt_.speedup > 0.0;

  // Stream-time origin: the earliest record of either log.
  util::SimTime t0 = 0;
  if (!proxy.empty() && !mme.empty()) {
    t0 = std::min(proxy.front().timestamp, mme.front().timestamp);
  } else if (!proxy.empty()) {
    t0 = proxy.front().timestamp;
  } else if (!mme.empty()) {
    t0 = mme.front().timestamp;
  }
  util::SimTime next_snapshot =
      opt_.snapshot_every_s > 0 ? t0 + opt_.snapshot_every_s : 0;

  const Clock::time_point wall0 = Clock::now();
  while (pi < proxy.size() || mi < mme.size()) {
    // Ties replay the MME event first: a device registers with the network
    // before its traffic shows up at the proxy.
    const bool take_mme =
        mi < mme.size() &&
        (pi >= proxy.size() ||
         mme[mi].timestamp <= proxy[pi].timestamp);
    const util::SimTime ts =
        take_mme ? mme[mi].timestamp : proxy[pi].timestamp;

    if (opt_.snapshot_every_s > 0 && ts >= next_snapshot) {
      report.snapshots.push_back(engine.snapshot());
      // Skip empty intervals so one quiet week costs one snapshot, not 168.
      while (next_snapshot <= ts) next_snapshot += opt_.snapshot_every_s;
    }
    if (paced) {
      const double wall_target =
          static_cast<double>(ts - t0) / opt_.speedup;
      std::this_thread::sleep_until(
          wall0 + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(wall_target)));
    }

    const bool accepted =
        take_mme ? engine.push(mme[mi++]) : engine.push(proxy[pi++]);
    if (accepted) ++report.records_pushed;
  }
  report.wall_seconds =
      std::chrono::duration<double>(Clock::now() - wall0).count();
  return report;
}

}  // namespace wearscope::live
