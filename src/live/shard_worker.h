// One worker thread per shard: drains its ring, feeds its ShardStats, and
// deposits a state copy with the SnapshotCoordinator at every barrier.
#pragma once

#include <cstdint>
#include <thread>

#include "live/event.h"
#include "live/ring_buffer.h"
#include "live/shard_stats.h"
#include "live/snapshot.h"

namespace wearscope::live {

/// Owns the consumer thread of one shard ring.
class ShardWorker {
 public:
  /// `ring`, `coordinator` and the references inside `stats` must outlive
  /// the worker. The worker does not start until start() is called.
  ShardWorker(std::size_t index, RingBuffer<LiveEvent>& ring,
              ShardStats stats, SnapshotCoordinator& coordinator);
  ~ShardWorker();

  ShardWorker(const ShardWorker&) = delete;
  ShardWorker& operator=(const ShardWorker&) = delete;

  /// Spawns the consumer thread.
  void start();

  /// Joins the thread; returns once the ring is drained and closed.
  void join();

 private:
  void run();

  std::size_t index_ = 0;
  RingBuffer<LiveEvent>* ring_ = nullptr;
  ShardStats stats_;
  SnapshotCoordinator* coordinator_ = nullptr;
  std::thread thread_;
};

}  // namespace wearscope::live
