#include "live/shard_worker.h"

#include <utility>
#include <variant>

namespace wearscope::live {

ShardWorker::ShardWorker(std::size_t index, RingBuffer<LiveEvent>& ring,
                         ShardStats stats, SnapshotCoordinator& coordinator)
    : index_(index),
      ring_(&ring),
      stats_(std::move(stats)),
      coordinator_(&coordinator) {}

ShardWorker::~ShardWorker() { join(); }

void ShardWorker::start() {
  thread_ = std::thread([this] { run(); });
}

void ShardWorker::join() {
  if (thread_.joinable()) thread_.join();
}

void ShardWorker::run() {
  struct Visitor {
    ShardWorker* self = nullptr;
    void operator()(const StampedProxy& p) {
      self->stats_.on_proxy(p.record, p.seq);
    }
    void operator()(const trace::MmeRecord& r) { self->stats_.on_mme(r); }
    void operator()(const SnapshotBarrier& b) {
      self->coordinator_->deposit(b.epoch,
                                  self->stats_.snapshot(self->index_));
    }
  };
  LiveEvent event;
  while (ring_->pop(event)) {
    std::visit(Visitor{this}, event);
  }
}

}  // namespace wearscope::live
