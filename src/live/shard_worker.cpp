#include "live/shard_worker.h"

#include <string>
#include <utility>
#include <variant>

#include "util/sched_hook.h"

namespace wearscope::live {

ShardWorker::ShardWorker(std::size_t index, RingBuffer<LiveEvent>& ring,
                         ShardStats stats, SnapshotCoordinator& coordinator)
    : index_(index),
      ring_(&ring),
      stats_(std::move(stats)),
      coordinator_(&coordinator) {}

ShardWorker::~ShardWorker() { join(); }

void ShardWorker::start() {
  thread_ = std::thread([this] {
    // Under a deterministic scheduler this registers the worker and parks
    // it until first selected; without one both calls are no-ops.
    const std::string name = "shard-" + std::to_string(index_);
    util::sched::thread_started(name.c_str());
    run();
    util::sched::thread_finished();
  });
  // Spawn handshake: pins the instant the worker enters the scheduler's
  // candidate set to this program point (replay determinism).
  util::sched::await_thread_start(thread_.get_id());
}

void ShardWorker::join() {
  if (!thread_.joinable()) return;
  // Gate on the managed thread's exit first so the OS join below never
  // stalls the scheduler (the worker needs the token to finish draining).
  util::sched::join_gate(thread_.get_id());
  thread_.join();
}

void ShardWorker::run() {
  struct Visitor {
    ShardWorker* self = nullptr;
    void operator()(const StampedProxy& p) {
      self->stats_.on_proxy(p.record, p.seq);
    }
    void operator()(const trace::MmeRecord& r) { self->stats_.on_mme(r); }
    void operator()(const SnapshotBarrier& b) {
      self->coordinator_->deposit(b.epoch,
                                  self->stats_.snapshot(self->index_));
    }
  };
  LiveEvent event;
  while (ring_->pop(event)) {
    std::visit(Visitor{this}, event);
  }
}

}  // namespace wearscope::live
