#include "live/router.h"

#include "util/error.h"

namespace wearscope::live {

IngestRouter::IngestRouter(std::size_t shards, std::size_t ring_capacity) {
  util::require(shards >= 1, "IngestRouter: need at least one shard");
  rings_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    rings_.push_back(std::make_unique<RingBuffer<LiveEvent>>(ring_capacity));
  }
}

void IngestRouter::set_partition(std::size_t partition_id,
                                 std::size_t partition_count) {
  util::require(partition_count >= 1 && partition_id < partition_count,
                "IngestRouter: partition id out of range");
  util::require(next_proxy_seq_ == 0 && feed_records_ == 0,
                "IngestRouter: set_partition after records were routed");
  partition_id_ = partition_id;
  partition_count_ = partition_count;
}

bool IngestRouter::route(trace::ProxyRecord record) {
  ++feed_records_;
  if (partition_count_ > 1 &&
      shard_of(record.user_id, partition_count_) != partition_id_) {
    // Not ours — but the stamp space is the *global* proxy stream, so the
    // sequence advances exactly as it would in a single process.
    ++next_proxy_seq_;
    ++filtered_records_;
    return true;
  }
  const std::size_t shard = shard_of(record.user_id, rings_.size());
  StampedProxy stamped{next_proxy_seq_, std::move(record)};
  if (!rings_[shard]->push(LiveEvent(std::move(stamped)))) return false;
  ++next_proxy_seq_;
  return true;
}

bool IngestRouter::route(trace::MmeRecord record) {
  ++feed_records_;
  if (partition_count_ > 1 &&
      shard_of(record.user_id, partition_count_) != partition_id_) {
    ++filtered_records_;
    return true;
  }
  const std::size_t shard = shard_of(record.user_id, rings_.size());
  return rings_[shard]->push(LiveEvent(record));
}

void IngestRouter::skip_unowned(std::uint64_t proxy_records,
                                std::uint64_t mme_records) {
  next_proxy_seq_ += proxy_records;
  feed_records_ += proxy_records + mme_records;
  filtered_records_ += proxy_records + mme_records;
}

bool IngestRouter::broadcast_barrier(std::uint64_t epoch) {
  bool ok = true;
  for (const auto& ring : rings_) {
    ok = ring->push(LiveEvent(SnapshotBarrier{epoch})) && ok;
  }
  return ok;
}

void IngestRouter::close() {
  for (const auto& ring : rings_) ring->close();
}

RingStats IngestRouter::total_stats() const {
  RingStats total;
  for (const auto& ring : rings_) total += ring->stats();
  return total;
}

}  // namespace wearscope::live
