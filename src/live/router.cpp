#include "live/router.h"

#include "util/error.h"

namespace wearscope::live {

IngestRouter::IngestRouter(std::size_t shards, std::size_t ring_capacity) {
  util::require(shards >= 1, "IngestRouter: need at least one shard");
  rings_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    rings_.push_back(std::make_unique<RingBuffer<LiveEvent>>(ring_capacity));
  }
}

bool IngestRouter::route(trace::ProxyRecord record) {
  const std::size_t shard = shard_of(record.user_id, rings_.size());
  StampedProxy stamped{next_proxy_seq_, std::move(record)};
  if (!rings_[shard]->push(LiveEvent(std::move(stamped)))) return false;
  ++next_proxy_seq_;
  return true;
}

bool IngestRouter::route(trace::MmeRecord record) {
  const std::size_t shard = shard_of(record.user_id, rings_.size());
  return rings_[shard]->push(LiveEvent(record));
}

bool IngestRouter::broadcast_barrier(std::uint64_t epoch) {
  bool ok = true;
  for (const auto& ring : rings_) {
    ok = ring->push(LiveEvent(SnapshotBarrier{epoch})) && ok;
  }
  return ok;
}

void IngestRouter::close() {
  for (const auto& ring : rings_) ring->close();
}

RingStats IngestRouter::total_stats() const {
  RingStats total;
  for (const auto& ring : rings_) total += ring->stats();
  return total;
}

}  // namespace wearscope::live
