#include "live/engine.h"

#include "util/error.h"

namespace wearscope::live {

LiveEngine::LiveEngine(const std::vector<trace::DeviceRecord>& devices,
                       LiveOptions options)
    : opt_(options),
      catalog_(options.long_tail_apps),
      devices_(devices),
      signatures_(catalog_, options.signature_coverage),
      router_(options.shards, options.ring_capacity),
      coordinator_(options.shards, signatures_, options.capture_tallies) {
  util::require(opt_.observation_days > 0 && opt_.detailed_start_day >= 0 &&
                    opt_.detailed_start_day < opt_.observation_days,
                "LiveEngine: bad observation window");
  util::require(opt_.partition_count >= 1 &&
                    opt_.partition_id < opt_.partition_count,
                "LiveEngine: partition id out of range");
  router_.set_partition(opt_.partition_id, opt_.partition_count);
  workers_.reserve(router_.shards());
  for (std::size_t s = 0; s < router_.shards(); ++s) {
    workers_.push_back(std::make_unique<ShardWorker>(
        s, router_.ring(s),
        ShardStats(devices_, signatures_, opt_.observation_days,
                   opt_.detailed_start_day, opt_.usage_gap_s,
                   opt_.sketch_aggregates),
        coordinator_));
  }
  for (const auto& worker : workers_) worker->start();
}

LiveEngine::~LiveEngine() {
  if (!stopped_) stop();
}

bool LiveEngine::push(trace::ProxyRecord record) {
  return router_.route(std::move(record));
}

bool LiveEngine::push(trace::MmeRecord record) {
  return router_.route(record);
}

LiveSnapshot LiveEngine::snapshot() {
  util::require(!stopped_, "LiveEngine::snapshot: engine already stopped");
  const std::uint64_t epoch = next_epoch_++;
  router_.broadcast_barrier(epoch);
  LiveSnapshot snap = coordinator_.wait_for(epoch);
  snap.feed_records = router_.feed_records();
  snap.backpressure = router_.total_stats();
  snap.quarantine = quarantine_;
  return snap;
}

LiveSnapshot LiveEngine::stop() {
  if (stopped_) return *final_snapshot_;
  const std::uint64_t epoch = next_epoch_++;
  router_.broadcast_barrier(epoch);
  router_.close();
  LiveSnapshot snap = coordinator_.wait_for(epoch);
  for (const auto& worker : workers_) worker->join();
  snap.feed_records = router_.feed_records();
  snap.backpressure = router_.total_stats();
  snap.quarantine = quarantine_;
  stopped_ = true;
  final_snapshot_ = std::move(snap);
  return *final_snapshot_;
}

}  // namespace wearscope::live
