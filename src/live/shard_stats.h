// Per-shard streaming state of the live-ingest engine.
//
// A ShardStats instance is owned by exactly one ShardWorker thread and is
// only ever touched from that thread — the router's shard-by-user
// partitioning makes every per-user structure single-writer by
// construction, which is why none of this needs a lock.
//
// It wraps the core single-pass counters (StreamingAdoption for Fig. 2,
// StreamingActivity for Fig. 3b/c/d) and adds live-only app-popularity
// counters: per-app transactions/bytes/distinct-users plus an incremental
// 60 s sessionizer that counts app usages online (the paper's §5.1 usage
// definition, maintained with one "last transaction time" per (user, app)
// instead of a buffered record window).
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "appdb/third_party.h"
#include "core/app_id.h"
#include "core/device_id.h"
#include "core/streaming.h"
#include "core/streaming_activity.h"
#include "sketch/countmin.h"
#include "sketch/hll.h"
#include "sketch/tdigest.h"
#include "trace/records.h"

namespace wearscope::live {

/// Mergeable per-sector activity counters.  Shards partition users, not
/// sectors, so one sector accumulates contributions from many shards —
/// but the per-shard user sets behind the distinct counts are disjoint,
/// which is why merge() can simply add them.
struct SectorTally {
  struct Counter {
    std::uint64_t events = 0;          ///< All MME events at the sector.
    std::uint64_t attaches = 0;
    std::uint64_t handovers = 0;
    std::uint64_t wearable_events = 0; ///< Events from wearable TACs.
    std::uint64_t distinct_users = 0;  ///< Filled at snapshot time.
    std::uint64_t wearable_users = 0;  ///< Filled at snapshot time.
  };
  std::unordered_map<trace::SectorId, Counter> sectors;

  void merge(const SectorTally& other);
};

/// Mergeable per-app counters (user-disjoint partitions: distinct-user
/// counts simply add).
struct AppTally {
  struct Counter {
    std::uint64_t transactions = 0;
    std::uint64_t bytes = 0;
    std::uint64_t usages = 0;
    std::uint64_t distinct_users = 0;
  };
  /// Per first-party app (core::kUnknownApp buckets unattributed traffic).
  std::unordered_map<appdb::AppId, Counter> apps;
  /// Wearable transactions per endpoint class (Fig. 8 headline).
  std::array<std::uint64_t, appdb::kTransactionClassCount> class_txns{};

  void merge(const AppTally& other);
};

/// Bounded-memory replacement for the per-user exact state (engine sketch
/// mode, LiveOptions::sketch_aggregates).  Shards partition users, so the
/// per-shard sketches merge loss-free into the global stream's sketch:
/// HLL union is register-wise max, t-digest and count-min merges are
/// additive.  Error bounds are documented in docs/DESIGN.md: distinct
/// users within 2%, p50/p95/p99 within 1%, top-k apps a superset of the
/// exact top-k.
struct SketchTally {
  bool enabled = false;
  sketch::Hll registered_users;   ///< Distinct users with wearable MME events.
  sketch::Hll transacting_users;  ///< Distinct users with >= 1 wearable txn.
  /// Wearable transaction sizes (bytes), detailed window only — the same
  /// population as ActivityResult::txn_size_bytes, so the gate compares
  /// like with like.
  sketch::TDigest txn_sizes;
  sketch::HeavyHitters apps;      ///< Wearable app traffic, by transactions.

  void merge(const SketchTally& other);

  /// Bytes of sketch state held (the bounded footprint).
  [[nodiscard]] std::size_t memory_bytes() const;
};

/// One shard's contribution to an epoch snapshot. Cheap value type: the
/// worker copies its tallies at a barrier and hands them to the
/// SnapshotCoordinator.
struct ShardSnapshot {
  std::size_t shard = 0;
  std::uint64_t records = 0;  ///< Records this shard consumed so far.
  core::AdoptionTally adoption;
  core::ActivityTally activity;
  AppTally apps;
  SectorTally sectors;
  SketchTally sketch;
};

/// All streaming state of one shard.
class ShardStats {
 public:
  /// `devices` and `signatures` must outlive the stats (the engine owns
  /// both; they are immutable after construction, hence safe to share
  /// read-only across shards).  With `sketch_mode` set, every per-user
  /// structure is replaced by the bounded SketchTally: the shard holds
  /// O(sketch + apps + sectors) bytes however many users it sees, at the
  /// price of approximate distinct counts and quantiles (and no exact
  /// adoption/activity results or usage counts in the snapshot).
  ShardStats(const core::DeviceClassifier& devices,
             const core::AppSignatureTable& signatures, int observation_days,
             int detailed_start_day, util::SimTime usage_gap_s,
             bool sketch_mode = false);

  /// Feeds one proxy transaction; `seq` is the record's position in the
  /// global proxy stream (stamped by the router).
  void on_proxy(const trace::ProxyRecord& record, std::uint64_t seq);

  /// Feeds one MME event.
  void on_mme(const trace::MmeRecord& record);

  /// Copies the current state into a mergeable snapshot.
  [[nodiscard]] ShardSnapshot snapshot(std::size_t shard) const;

  /// Records consumed so far (both feeds).
  [[nodiscard]] std::uint64_t records_consumed() const noexcept {
    return consumed_;
  }

 private:
  const core::DeviceClassifier* devices_ = nullptr;
  const core::AppSignatureTable* signatures_ = nullptr;
  util::SimTime usage_gap_s_ = 0;
  util::SimTime detailed_start_ = 0;  ///< First second of the detailed window.
  bool sketch_mode_ = false;
  std::uint64_t consumed_ = 0;
  SketchTally sketch_;

  core::StreamingAdoption adoption_;
  core::StreamingActivity activity_;

  AppTally app_tally_;
  SectorTally sector_tally_;
  /// Distinct users per app (sizes exported into AppTally at snapshot).
  std::unordered_map<appdb::AppId, std::unordered_set<trace::UserId>>
      app_users_;
  /// Distinct users per sector: all users and the wearable subset (sizes
  /// exported into SectorTally at snapshot).
  std::unordered_map<trace::SectorId, std::unordered_set<trace::UserId>>
      sector_users_;
  std::unordered_map<trace::SectorId, std::unordered_set<trace::UserId>>
      sector_wearable_users_;
  /// Incremental sessionizer: (user, app) -> last transaction timestamp.
  std::unordered_map<trace::UserId,
                     std::unordered_map<appdb::AppId, util::SimTime>>
      last_txn_;
};

}  // namespace wearscope::live
