#include "live/shard_stats.h"

#include "util/sim_time.h"

namespace wearscope::live {

void SectorTally::merge(const SectorTally& other) {
  for (const auto& [sector, counter] : other.sectors) {
    Counter& mine = sectors[sector];
    mine.events += counter.events;
    mine.attaches += counter.attaches;
    mine.handovers += counter.handovers;
    mine.wearable_events += counter.wearable_events;
    mine.distinct_users += counter.distinct_users;
    mine.wearable_users += counter.wearable_users;
  }
}

void SketchTally::merge(const SketchTally& other) {
  enabled = enabled || other.enabled;
  registered_users.merge(other.registered_users);
  transacting_users.merge(other.transacting_users);
  txn_sizes.merge(other.txn_sizes);
  apps.merge(other.apps);
}

std::size_t SketchTally::memory_bytes() const {
  return registered_users.memory_bytes() + transacting_users.memory_bytes() +
         txn_sizes.memory_bytes() + apps.memory_bytes();
}

void AppTally::merge(const AppTally& other) {
  for (const auto& [app, counter] : other.apps) {
    Counter& mine = apps[app];
    mine.transactions += counter.transactions;
    mine.bytes += counter.bytes;
    mine.usages += counter.usages;
    mine.distinct_users += counter.distinct_users;
  }
  for (std::size_t c = 0; c < class_txns.size(); ++c) {
    class_txns[c] += other.class_txns[c];
  }
}

ShardStats::ShardStats(const core::DeviceClassifier& devices,
                       const core::AppSignatureTable& signatures,
                       int observation_days, int detailed_start_day,
                       util::SimTime usage_gap_s, bool sketch_mode)
    : devices_(&devices),
      signatures_(&signatures),
      usage_gap_s_(usage_gap_s),
      detailed_start_(util::day_start(detailed_start_day)),
      sketch_mode_(sketch_mode),
      adoption_(devices, observation_days),
      activity_(devices, observation_days, detailed_start_day) {
  sketch_.enabled = sketch_mode;
}

void ShardStats::on_proxy(const trace::ProxyRecord& record,
                          std::uint64_t seq) {
  ++consumed_;
  if (!sketch_mode_) {
    adoption_.on_proxy(record);
    activity_.on_proxy(record, seq);
  }

  if (!devices_->is_wearable(record.tac)) return;
  const core::EndpointClass cls = signatures_->classify_host(record.host);
  app_tally_.class_txns[static_cast<std::size_t>(cls.cls)] += 1;
  if (sketch_mode_) {
    sketch_.transacting_users.add(record.user_id);
    // Detailed window only: ActivityResult::txn_size_bytes covers exactly
    // this population, so the sketch gate compares like with like.
    if (record.timestamp >= detailed_start_) {
      sketch_.txn_sizes.add(static_cast<double>(record.bytes_total()));
    }
  }
  if (cls.cls != appdb::TransactionClass::kApplication) return;

  AppTally::Counter& counter = app_tally_.apps[cls.app];
  counter.transactions += 1;
  counter.bytes += record.bytes_total();
  if (sketch_mode_) {
    // Bounded tracking only: the app heavy-hitter table replaces the
    // per-app user sets and the per-(user, app) sessionizer state.
    sketch_.apps.add(signatures_->app_name(cls.app));
    return;
  }
  app_users_[cls.app].insert(record.user_id);

  // Incremental sessionization: a transaction more than `usage_gap_s_`
  // after the same (user, app)'s previous one opens a new usage.
  util::SimTime& last = last_txn_[record.user_id]
                            .try_emplace(cls.app, util::SimTime{-1})
                            .first->second;
  if (last < 0 || record.timestamp - last > usage_gap_s_) {
    counter.usages += 1;
  }
  last = record.timestamp;
}

void ShardStats::on_mme(const trace::MmeRecord& record) {
  ++consumed_;
  if (!sketch_mode_) adoption_.on_mme(record);

  SectorTally::Counter& sector = sector_tally_.sectors[record.sector_id];
  sector.events += 1;
  if (record.event == trace::MmeEvent::kAttach) sector.attaches += 1;
  if (record.event == trace::MmeEvent::kHandover) sector.handovers += 1;
  if (devices_->is_wearable(record.tac)) {
    sector.wearable_events += 1;
    if (sketch_mode_) sketch_.registered_users.add(record.user_id);
  }
  if (sketch_mode_) return;  // distinct-user sets are O(users)
  sector_users_[record.sector_id].insert(record.user_id);
  if (devices_->is_wearable(record.tac)) {
    sector_wearable_users_[record.sector_id].insert(record.user_id);
  }
}

ShardSnapshot ShardStats::snapshot(std::size_t shard) const {
  ShardSnapshot snap;
  snap.shard = shard;
  snap.records = consumed_;
  snap.adoption = adoption_.tally();
  snap.activity = activity_.tally();
  snap.apps = app_tally_;
  // Keyed writes into the (ordered) tally maps: each key is visited once,
  // so hash-map iteration order cannot reach the emitted value.
  // wearscope-lint: allow(unordered-flow)
  for (const auto& [app, users] : app_users_) {
    snap.apps.apps[app].distinct_users = users.size();
  }
  snap.sectors = sector_tally_;
  // Same keyed-write shape as above.  wearscope-lint: allow(unordered-flow)
  for (const auto& [sector, users] : sector_users_) {
    snap.sectors.sectors[sector].distinct_users = users.size();
  }
  // Same keyed-write shape as above.  wearscope-lint: allow(unordered-flow)
  for (const auto& [sector, users] : sector_wearable_users_) {
    snap.sectors.sectors[sector].wearable_users = users.size();
  }
  snap.sketch = sketch_;
  return snap;
}

}  // namespace wearscope::live
