// The unit of work flowing through the live-ingest engine: one vantage
// point record, or one control barrier injected by the snapshot
// coordinator.
#pragma once

#include <cstdint>
#include <variant>

#include "trace/records.h"

namespace wearscope::live {

/// Control event: "publish your state as epoch `epoch`, then continue".
/// The router broadcasts one barrier to every shard at the same stream
/// position, so the union of the shard states at a barrier is a consistent
/// prefix of the input stream (shard rings are FIFO).
struct SnapshotBarrier {
  std::uint64_t epoch = 0;
};

/// A proxy record plus its position in the global proxy stream.  The router
/// (single feed thread) stamps `seq` so shards can reconstruct the exact
/// user iteration order the batch AnalysisContext uses (first appearance in
/// the proxy log) — the last piece needed for bitwise batch equivalence.
struct StampedProxy {
  std::uint64_t seq = 0;
  trace::ProxyRecord record;
};

/// One element of a shard's ingest ring.
using LiveEvent =
    std::variant<StampedProxy, trace::MmeRecord, SnapshotBarrier>;

}  // namespace wearscope::live
