#include "live/snapshot.h"

#include <algorithm>

#include "util/error.h"
#include "util/sched_hook.h"

namespace wearscope::live {

SnapshotCoordinator::SnapshotCoordinator(
    std::size_t shards, const core::AppSignatureTable& signatures,
    bool capture_tallies)
    : shards_(shards),
      signatures_(&signatures),
      capture_tallies_(capture_tallies) {
  util::require(shards >= 1, "SnapshotCoordinator: need at least one shard");
}

void SnapshotCoordinator::deposit(std::uint64_t epoch, ShardSnapshot snap) {
  util::sched::point(util::sched::Op::kBarrierDeposit, this);
  util::MutexLock lock(mutex_);
  std::vector<ShardSnapshot>& parts = pending_[epoch];
  parts.push_back(std::move(snap));
  util::ensure(parts.size() <= shards_,
               "SnapshotCoordinator: more deposits than shards for an epoch");
  if (parts.size() == shards_) {
    LiveSnapshot merged = assemble(epoch, parts);
    pending_.erase(epoch);
    latest_ = merged;
    completed_.emplace(epoch, std::move(merged));
    assembled_.notify_all();
  }
}

LiveSnapshot SnapshotCoordinator::wait_for(std::uint64_t epoch) {
  util::sched::point(util::sched::Op::kBarrierWait, this);
  util::MutexLock lock(mutex_);
  assembled_.wait(mutex_, [&] { return completed_.contains(epoch); });
  const auto it = completed_.find(epoch);
  LiveSnapshot snap = std::move(it->second);
  completed_.erase(it);
  return snap;
}

std::optional<LiveSnapshot> SnapshotCoordinator::latest() const {
  util::MutexLock lock(mutex_);
  return latest_;
}

LiveSnapshot SnapshotCoordinator::assemble(
    std::uint64_t epoch, std::vector<ShardSnapshot>& parts) const {
  // Merge in shard order so the result is independent of deposit order.
  std::sort(parts.begin(), parts.end(),
            [](const ShardSnapshot& a, const ShardSnapshot& b) {
              return a.shard < b.shard;
            });

  LiveSnapshot snap;
  snap.epoch = epoch;
  core::AdoptionTally adoption;
  core::ActivityTally activity;
  AppTally apps;
  SectorTally sectors;
  SketchTally sketch;
  for (ShardSnapshot& part : parts) {
    snap.records += part.records;
    adoption.merge(part.adoption);
    activity.merge(std::move(part.activity));
    apps.merge(part.apps);
    sectors.merge(part.sectors);
    sketch.merge(part.sketch);
  }
  snap.adoption = adoption.finalize();
  snap.activity = activity.finalize();
  snap.class_txns = apps.class_txns;
  if (sketch.enabled) {
    snap.sketch.enabled = true;
    snap.sketch.registered_users = sketch.registered_users.estimate();
    snap.sketch.transacting_users = sketch.transacting_users.estimate();
    snap.sketch.txn_size_p50 = sketch.txn_sizes.quantile(0.50);
    snap.sketch.txn_size_p95 = sketch.txn_sizes.quantile(0.95);
    snap.sketch.txn_size_p99 = sketch.txn_sizes.quantile(0.99);
    snap.sketch.top_apps = sketch.apps.top(10);
    snap.sketch.memory_bytes = sketch.memory_bytes();
  }

  snap.apps.reserve(apps.apps.size());
  for (const auto& [app, counter] : apps.apps) {
    LiveSnapshot::AppRow row;
    row.app = app;
    row.name = std::string(signatures_->app_name(app));
    row.counter = counter;
    snap.apps.push_back(std::move(row));
  }
  std::sort(snap.apps.begin(), snap.apps.end(),
            [](const LiveSnapshot::AppRow& a, const LiveSnapshot::AppRow& b) {
              return a.counter.transactions != b.counter.transactions
                         ? a.counter.transactions > b.counter.transactions
                         : a.app < b.app;
            });

  snap.sectors.reserve(sectors.sectors.size());
  for (const auto& [sector, counter] : sectors.sectors) {
    snap.sectors.push_back(LiveSnapshot::SectorRow{sector, counter});
  }
  std::sort(snap.sectors.begin(), snap.sectors.end(),
            [](const LiveSnapshot::SectorRow& a,
               const LiveSnapshot::SectorRow& b) {
              return a.counter.events != b.counter.events
                         ? a.counter.events > b.counter.events
                         : a.sector < b.sector;
            });

  if (capture_tallies_) {
    auto tallies = std::make_shared<LiveSnapshot::TallySet>();
    tallies->adoption = std::move(adoption);
    tallies->activity = std::move(activity);
    tallies->apps = std::move(apps);
    tallies->sectors = std::move(sectors);
    tallies->sketch = std::move(sketch);
    snap.tallies = std::move(tallies);
  }
  return snap;
}

}  // namespace wearscope::live
