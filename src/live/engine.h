// wearscope::live — the concurrent live-ingest engine.
//
// The batch pipeline (core::Pipeline) buffers a whole capture and analyzes
// it after the fact; the paper's vantage points cannot do that — they run
// *online* against a tier-1 ISP's traffic.  LiveEngine is that online
// counterpart: a single feed thread pushes time-ordered records, an
// IngestRouter hash-partitions them by UserId across N shard workers, each
// worker maintains single-pass statistics for its user partition, and a
// SnapshotCoordinator merges the shards into consistent epoch snapshots on
// demand (or periodically, driven by FeedReplayer).
//
// Equivalence contract: after stop(), the final snapshot's AdoptionResult
// and ActivityResult are bit-identical to core::Pipeline's over the same
// capture, for ANY shard count — including the order-sensitive Fig. 3d
// correlations, which finalize() reproduces by replaying the batch's
// user-appearance order from router-stamped stream positions (see
// core/streaming_activity.h).
//
// Threading contract: exactly one thread calls push()/snapshot()/stop().
// Worker threads are internal; all shared state is either immutable after
// construction (DeviceClassifier, AppSignatureTable) or owned by exactly
// one thread (ShardStats), so the only synchronization on the hot path is
// the SPSC ring per shard.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "appdb/app_catalog.h"
#include "core/app_id.h"
#include "core/device_id.h"
#include "core/sessionize.h"
#include "live/router.h"
#include "live/shard_worker.h"
#include "live/snapshot.h"
#include "util/sim_time.h"

namespace wearscope::live {

/// Engine configuration.
struct LiveOptions {
  /// Worker shards (user partitions).
  std::size_t shards = 4;
  /// Events buffered per shard ring before the feed blocks.
  std::size_t ring_capacity = 4096;
  /// Analysis window, exactly as core::AnalysisOptions describes it.
  int observation_days = util::kObservationDays;
  int detailed_start_day = util::kDetailedStartDay;
  /// Usage sessionization gap (paper: 60 s).
  util::SimTime usage_gap_s = core::kDefaultUsageGapS;
  /// Knowledge-base size for the app signature table (matches
  /// AnalysisOptions::long_tail_apps).
  std::uint32_t long_tail_apps = 150;
  /// Fraction of signature rules retained.
  double signature_coverage = 1.0;
  /// Bounded-memory mode: shards keep HLL/t-digest/count-min sketches
  /// instead of per-user hash sets, so per-shard memory is O(sketch)
  /// however many users stream through.  Snapshots then carry
  /// LiveSnapshot::sketch (with the error bounds of docs/DESIGN.md) and
  /// no exact adoption/activity results, usage counts or per-app/sector
  /// distinct-user counts.
  bool sketch_aggregates = false;
  /// Multi-process partitioned mode: this engine owns the users whose
  /// par::shard_of(user, partition_count) == partition_id and filters
  /// everything else at the router (the proxy sequence still advances
  /// globally, so merged partials reproduce the single-process results
  /// bitwise — see fed/merge.h).  partition_count == 1 is the ordinary
  /// single-process engine.
  std::size_t partition_id = 0;
  std::size_t partition_count = 1;
  /// Keep each snapshot's merged pre-finalize tallies
  /// (LiveSnapshot::tallies) so fed/partial_io can serialize them.
  bool capture_tallies = false;
};

/// The live-ingest engine. Construction spawns the worker threads;
/// destruction stops and joins them.
class LiveEngine {
 public:
  /// `devices` is the DeviceDB snapshot used for wearable classification
  /// (copied; the engine keeps no reference to the caller's data).
  LiveEngine(const std::vector<trace::DeviceRecord>& devices,
             LiveOptions options);
  ~LiveEngine();

  LiveEngine(const LiveEngine&) = delete;
  LiveEngine& operator=(const LiveEngine&) = delete;

  /// Feeds one record, blocking when the target shard's ring is full.
  /// Returns false after stop().
  bool push(trace::ProxyRecord record);
  bool push(trace::MmeRecord record);

  /// Accounts a run of records owned by other partitions without routing
  /// them (IngestRouter::skip_unowned): a pre-filtered feed interleaves
  /// push() and skip_unowned() calls in feed order and ends up with the
  /// same router state as pushing everything through the filter.  Same
  /// threading contract as push().
  void skip_unowned(std::uint64_t proxy_records, std::uint64_t mme_records) {
    router_.skip_unowned(proxy_records, mme_records);
  }

  /// Takes a consistent snapshot covering every record pushed so far:
  /// broadcasts a barrier, blocks until all shards deposited, merges.
  /// Must not be called after stop().
  [[nodiscard]] LiveSnapshot snapshot();

  /// Accumulates feed-side quarantine counters (records the feed dropped
  /// or repaired before push()).  Subsequent snapshots carry the running
  /// total.  Same threading contract as push(): feed thread only.
  void add_quarantine(const trace::QuarantineStats& delta) {
    quarantine_ += delta;
  }
  /// Running feed-side quarantine total.
  [[nodiscard]] const trace::QuarantineStats& quarantine() const noexcept {
    return quarantine_;
  }

  /// Graceful drain-and-shutdown: barriers the final epoch, closes the
  /// rings, joins the workers, and returns the final snapshot (covering
  /// every record ever pushed). Idempotent — later calls return the same
  /// snapshot.
  LiveSnapshot stop();

  [[nodiscard]] const LiveOptions& options() const noexcept { return opt_; }
  [[nodiscard]] std::size_t shards() const noexcept {
    return router_.shards();
  }
  /// Aggregated ring backpressure counters.
  [[nodiscard]] RingStats backpressure() const {
    return router_.total_stats();
  }
  /// Epochs issued so far (snapshots taken + final).
  [[nodiscard]] std::uint64_t epochs_issued() const noexcept {
    return next_epoch_;
  }
  /// Records offered to the router so far (owned + partition-filtered).
  [[nodiscard]] std::uint64_t feed_records() const noexcept {
    return router_.feed_records();
  }
  /// Records filtered because another partition owns their user.
  [[nodiscard]] std::uint64_t filtered_records() const noexcept {
    return router_.filtered_records();
  }

 private:
  LiveOptions opt_;
  appdb::AppCatalog catalog_;
  core::DeviceClassifier devices_;
  core::AppSignatureTable signatures_;
  IngestRouter router_;
  SnapshotCoordinator coordinator_;
  std::vector<std::unique_ptr<ShardWorker>> workers_;
  std::uint64_t next_epoch_ = 0;
  bool stopped_ = false;
  trace::QuarantineStats quarantine_;
  std::optional<LiveSnapshot> final_snapshot_;
};

}  // namespace wearscope::live
