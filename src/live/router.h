// IngestRouter: the single entry point of the live engine's data plane.
//
// Partitions the incoming record stream across N shard rings by hashed
// UserId, so every user's records — and therefore all per-user state
// (presence sets, the incremental 60 s sessionizer, activity counters) —
// live on exactly one shard and never need cross-thread synchronization.
// This is the shard-by-user invariant the whole subsystem rests on; the
// merge paths (core::AdoptionTally, core::ActivityTally) check it.
//
// Exactly one thread (the feed) may call route()/broadcast_barrier()/
// close(): each ring is single-producer.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "live/event.h"
#include "live/ring_buffer.h"
#include "par/shard.h"

namespace wearscope::live {

/// Stable user -> shard assignment (split-mix finalizer; identical on every
/// platform and for every run, so snapshots are reproducible).  Shared with
/// the batch context build (par::shard_of), so live and batch partition
/// users identically.
[[nodiscard]] constexpr std::size_t shard_of(trace::UserId user,
                                             std::size_t shards) noexcept {
  return par::shard_of(user, shards);
}

/// Owns the shard rings and routes events into them.
class IngestRouter {
 public:
  /// `shards` >= 1 worker partitions, each with a ring of `ring_capacity`
  /// events.
  IngestRouter(std::size_t shards, std::size_t ring_capacity);

  /// Routes one record to its user's shard, blocking on backpressure.
  /// Returns false when the rings are already closed.  Proxy records are
  /// stamped with their global stream position (see StampedProxy).
  bool route(trace::ProxyRecord record);
  bool route(trace::MmeRecord record);

  /// Pushes a barrier for `epoch` into every ring (same stream position on
  /// each shard). Returns false when the rings are already closed.
  bool broadcast_barrier(std::uint64_t epoch);

  /// Closes every ring: workers drain what is buffered, then stop.
  void close();

  [[nodiscard]] std::size_t shards() const noexcept { return rings_.size(); }

  /// Shard `i`'s ring (workers consume from it).
  [[nodiscard]] RingBuffer<LiveEvent>& ring(std::size_t i) {
    return *rings_[i];
  }

  /// Aggregated backpressure counters over all rings.
  [[nodiscard]] RingStats total_stats() const;

 private:
  std::vector<std::unique_ptr<RingBuffer<LiveEvent>>> rings_;
  std::uint64_t next_proxy_seq_ = 0;  ///< Feed-thread only, like route().
};

}  // namespace wearscope::live
