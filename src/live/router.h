// IngestRouter: the single entry point of the live engine's data plane.
//
// Partitions the incoming record stream across N shard rings by hashed
// UserId, so every user's records — and therefore all per-user state
// (presence sets, the incremental 60 s sessionizer, activity counters) —
// live on exactly one shard and never need cross-thread synchronization.
// This is the shard-by-user invariant the whole subsystem rests on; the
// merge paths (core::AdoptionTally, core::ActivityTally) check it.
//
// Exactly one thread (the feed) may call route()/broadcast_barrier()/
// close(): each ring is single-producer.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "live/event.h"
#include "live/ring_buffer.h"
#include "par/shard.h"

namespace wearscope::live {

/// Stable user -> shard assignment (split-mix finalizer; identical on every
/// platform and for every run, so snapshots are reproducible).  Shared with
/// the batch context build (par::shard_of), so live and batch partition
/// users identically.
[[nodiscard]] constexpr std::size_t shard_of(trace::UserId user,
                                             std::size_t shards) noexcept {
  return par::shard_of(user, shards);
}

/// Owns the shard rings and routes events into them.
class IngestRouter {
 public:
  /// `shards` >= 1 worker partitions, each with a ring of `ring_capacity`
  /// events.
  IngestRouter(std::size_t shards, std::size_t ring_capacity);

  /// Restricts this router to one partition of a multi-process cover:
  /// records whose shard_of(user, partition_count) differs from
  /// partition_id are filtered (counted, never rung).  The proxy sequence
  /// still advances for filtered records, so the stamps owned records
  /// carry are their *global* stream positions — that is what makes the
  /// federated ActivityTally merge replay the single-process user order
  /// bitwise (core/streaming_activity.h).  Feed thread only, before any
  /// route() call.
  void set_partition(std::size_t partition_id, std::size_t partition_count);

  /// Routes one record to its user's shard, blocking on backpressure.
  /// Returns false when the rings are already closed.  Proxy records are
  /// stamped with their global stream position (see StampedProxy).
  /// Records outside the owned partition are filtered and report true.
  bool route(trace::ProxyRecord record);
  bool route(trace::MmeRecord record);

  /// Accounts a run of records owned by other partitions without touching
  /// the rings: the proxy sequence and the feed/filter counters advance
  /// exactly as `proxy_records` + `mme_records` filtered route() calls
  /// would, so a pre-filtered feed (fed::load_partition_feed) reproduces
  /// the stamps owned records carry bitwise.  Feed thread only.
  void skip_unowned(std::uint64_t proxy_records, std::uint64_t mme_records);

  /// Pushes a barrier for `epoch` into every ring (same stream position on
  /// each shard). Returns false when the rings are already closed.
  bool broadcast_barrier(std::uint64_t epoch);

  /// Closes every ring: workers drain what is buffered, then stop.
  void close();

  [[nodiscard]] std::size_t shards() const noexcept { return rings_.size(); }

  /// Shard `i`'s ring (workers consume from it).
  [[nodiscard]] RingBuffer<LiveEvent>& ring(std::size_t i) {
    return *rings_[i];
  }

  /// Aggregated backpressure counters over all rings.
  [[nodiscard]] RingStats total_stats() const;

  /// Records offered to route() so far (owned + filtered) — the full
  /// feed's length, identical across every partition of one cover.
  [[nodiscard]] std::uint64_t feed_records() const noexcept {
    return feed_records_;
  }
  /// Records filtered because another partition owns their user.
  [[nodiscard]] std::uint64_t filtered_records() const noexcept {
    return filtered_records_;
  }

 private:
  std::vector<std::unique_ptr<RingBuffer<LiveEvent>>> rings_;
  std::uint64_t next_proxy_seq_ = 0;  ///< Feed-thread only, like route().
  std::size_t partition_id_ = 0;      ///< Feed-thread only.
  std::size_t partition_count_ = 1;   ///< 1 = single-process (no filter).
  std::uint64_t feed_records_ = 0;    ///< Feed-thread only.
  std::uint64_t filtered_records_ = 0;  ///< Feed-thread only.
};

}  // namespace wearscope::live
