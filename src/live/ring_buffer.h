// Bounded single-producer/single-consumer ring buffer with blocking
// push/pop, cooperative shutdown, and explicit backpressure accounting.
//
// The fast path is lock-free: the producer owns `head_`, the consumer owns
// `tail_`, and each side only reads the other's index (classic SPSC ring).
// A mutex + condition variables exist only for the slow path — a side that
// finds the ring full/empty parks on its condvar, and the opposite side
// posts a wakeup only when the `*_waiting_` flag says someone is actually
// parked, so an uncontended stream never takes the lock after warm-up.
//
// The park/wake handshake is the store-buffering pattern: the waiter does
// W(waiting flag) then R(index), the other side does W(index) then
// R(waiting flag).  Both pairs use seq_cst so the outcome "waiter saw the
// stale index AND the publisher saw waiting == false" is impossible — one
// side always observes the other, which rules out the lost wakeup.
//
// Shutdown: close() wakes both sides; push() then refuses new elements
// (counted in stats().rejected) while pop() keeps draining until the ring
// is empty — no records are lost on a graceful drain.
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/error.h"
#include "util/sched_hook.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace wearscope::live {

/// Counters exposed by RingBuffer::stats(); totals since construction.
/// `producer_waits`/`consumer_waits` count *blocking episodes*, not parked
/// nanoseconds: they are the backpressure signal (a producer wait means the
/// shard is the bottleneck, a consumer wait means the feed is).
struct RingStats {
  std::uint64_t pushed = 0;          ///< Elements accepted by push().
  std::uint64_t popped = 0;          ///< Elements handed out by pop().
  std::uint64_t producer_waits = 0;  ///< push() found the ring full.
  std::uint64_t consumer_waits = 0;  ///< pop() found the ring empty.
  std::uint64_t rejected = 0;        ///< push() after close().

  RingStats& operator+=(const RingStats& o) noexcept {
    pushed += o.pushed;
    popped += o.popped;
    producer_waits += o.producer_waits;
    consumer_waits += o.consumer_waits;
    rejected += o.rejected;
    return *this;
  }
};

/// Bounded blocking SPSC queue.  Exactly one producer thread may call
/// push() and exactly one consumer thread may call pop(); close(), stats()
/// and size() are safe from anywhere.
template <typename T>
class RingBuffer {
 public:
  /// `capacity` must be >= 1 (capacity 1 is legal and heavily stress-tested:
  /// it degenerates into a rendezvous buffer).
  explicit RingBuffer(std::size_t capacity) : slots_(capacity) {
    util::require(capacity >= 1, "RingBuffer: capacity must be >= 1");
  }

  RingBuffer(const RingBuffer&) = delete;
  RingBuffer& operator=(const RingBuffer&) = delete;

  /// Blocks while the ring is full; returns false (and drops `value`) once
  /// the ring is closed.
  bool push(T value) WS_EXCLUDES(wait_mutex_) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    for (;;) {
      util::sched::point(util::sched::Op::kRingPush, this);
      if (closed_.load(std::memory_order_acquire)) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      if (head - tail_.load(std::memory_order_acquire) < slots_.size()) break;
      producer_waits_.fetch_add(1, std::memory_order_relaxed);
      util::MutexLock lock(wait_mutex_);
      producer_waiting_.store(true, std::memory_order_seq_cst);
      not_full_.wait(wait_mutex_, [&] {
        return closed_.load(std::memory_order_seq_cst) ||
               head - tail_.load(std::memory_order_seq_cst) < slots_.size();
      });
      producer_waiting_.store(false, std::memory_order_seq_cst);
    }
    // Choice point between the full/closed checks and the commit: lets the
    // explorer interleave close() into the publication window.
    util::sched::point(util::sched::Op::kRingCommit, this);
    slots_[head % slots_.size()] = std::move(value);
    head_.store(head + 1, std::memory_order_seq_cst);
    pushed_.fetch_add(1, std::memory_order_relaxed);
    wake(consumer_waiting_, not_empty_);
    return true;
  }

  /// Blocks while the ring is empty; returns false only when the ring is
  /// closed *and* fully drained.
  bool pop(T& out) WS_EXCLUDES(wait_mutex_) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    for (;;) {
      util::sched::point(util::sched::Op::kRingPop, this);
      if (head_.load(std::memory_order_acquire) != tail) break;
      if (closed_.load(std::memory_order_acquire)) {
        // Re-check after the closed flag: a final element may have been
        // published between the emptiness test and the flag read.
        if (head_.load(std::memory_order_seq_cst) == tail) return false;
        break;
      }
      consumer_waits_.fetch_add(1, std::memory_order_relaxed);
      util::MutexLock lock(wait_mutex_);
      consumer_waiting_.store(true, std::memory_order_seq_cst);
      not_empty_.wait(wait_mutex_, [&] {
        return closed_.load(std::memory_order_seq_cst) ||
               head_.load(std::memory_order_seq_cst) != tail;
      });
      consumer_waiting_.store(false, std::memory_order_seq_cst);
    }
    util::sched::point(util::sched::Op::kRingCommit, this);
    out = std::move(slots_[tail % slots_.size()]);
    tail_.store(tail + 1, std::memory_order_seq_cst);
    popped_.fetch_add(1, std::memory_order_relaxed);
    wake(producer_waiting_, not_full_);
    return true;
  }

  /// Stops the stream: subsequent push() calls fail fast, blocked callers
  /// on either side wake up, pop() drains the remaining elements.
  /// Idempotent; callable from any thread.
  void close() WS_EXCLUDES(wait_mutex_) {
    util::sched::point(util::sched::Op::kRingClose, this);
    {
      util::MutexLock lock(wait_mutex_);
      closed_.store(true, std::memory_order_seq_cst);
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  /// True once close() ran.
  [[nodiscard]] bool closed() const noexcept {
    return closed_.load(std::memory_order_acquire);
  }

  /// Elements currently buffered (racy by nature; exact when quiescent).
  [[nodiscard]] std::size_t size() const noexcept {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return head - tail;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

  /// Snapshot of the backpressure counters.
  [[nodiscard]] RingStats stats() const noexcept {
    RingStats s;
    s.pushed = pushed_.load(std::memory_order_relaxed);
    s.popped = popped_.load(std::memory_order_relaxed);
    s.producer_waits = producer_waits_.load(std::memory_order_relaxed);
    s.consumer_waits = consumer_waits_.load(std::memory_order_relaxed);
    s.rejected = rejected_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  /// Wakes the opposite side, but only when it advertised that it parked.
  /// The seq_cst flag load forms the second half of the store-buffering
  /// handshake described in the header comment.
  void wake(std::atomic<bool>& waiting_flag, util::CondVar& cv)
      WS_EXCLUDES(wait_mutex_) {
    if (waiting_flag.load(std::memory_order_seq_cst)) {
      // Taking the mutex orders this wakeup after the waiter either went
      // to sleep or re-checked its predicate — no notify can fall into
      // the gap between the two.
      { util::MutexLock lock(wait_mutex_); }
      cv.notify_one();
    }
  }

  std::vector<T> slots_;
  alignas(64) std::atomic<std::size_t> head_{0};  ///< Next write position.
  alignas(64) std::atomic<std::size_t> tail_{0};  ///< Next read position.
  std::atomic<bool> closed_{false};

  util::Mutex wait_mutex_;
  util::CondVar not_full_;
  util::CondVar not_empty_;
  std::atomic<bool> producer_waiting_{false};
  std::atomic<bool> consumer_waiting_{false};

  std::atomic<std::uint64_t> pushed_{0};
  std::atomic<std::uint64_t> popped_{0};
  std::atomic<std::uint64_t> producer_waits_{0};
  std::atomic<std::uint64_t> consumer_waits_{0};
  std::atomic<std::uint64_t> rejected_{0};
};

}  // namespace wearscope::live
