// Epoch snapshots: consistent merged views of all shard states.
//
// The engine broadcasts a SnapshotBarrier for epoch E through every shard
// ring (single producer => same stream position on each shard).  When a
// worker pops the barrier it deposits a copy of its state here; once all
// shards have deposited, the coordinator merges the user-disjoint tallies
// and finalizes them into the same result structures the batch pipeline
// produces.  The merged snapshot therefore corresponds to an exact prefix
// of the input stream — the records routed before the barrier — no matter
// how far individual shards had drained their rings when it was taken.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/analysis_activity.h"
#include "core/analysis_adoption.h"
#include "live/ring_buffer.h"
#include "live/shard_stats.h"
#include "trace/quarantine.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace wearscope::live {

/// One merged, finalized epoch snapshot.
struct LiveSnapshot {
  std::uint64_t epoch = 0;
  std::uint64_t records = 0;  ///< Records included in the cut (all shards).
  /// Records the feed offered to the router up to the cut — equals
  /// `records` in a single process; in partitioned mode it is the full
  /// feed's position while `records` counts only the owned partition
  /// (filled by the engine, not the merge).  The federated merge requires
  /// the owned counts of a cover to sum to exactly this.
  std::uint64_t feed_records = 0;
  core::AdoptionResult adoption;
  core::ActivityResult activity;
  /// Per-app rows sorted by (transactions desc, app id) — deterministic
  /// for every shard count.
  struct AppRow {
    appdb::AppId app = core::kUnknownApp;
    std::string name;
    AppTally::Counter counter;
  };
  std::vector<AppRow> apps;
  /// Per-sector activity sorted by (events desc, sector id) — deterministic
  /// for every shard count.
  struct SectorRow {
    trace::SectorId sector = 0;
    SectorTally::Counter counter;
  };
  std::vector<SectorRow> sectors;
  /// Wearable transactions per endpoint class (Application/Utilities/
  /// Advertising/Analytics).
  std::array<std::uint64_t, appdb::kTransactionClassCount> class_txns{};
  /// Sketch-mode summary, filled from the merged per-shard sketches when
  /// the engine runs with LiveOptions::sketch_aggregates (enabled stays
  /// false otherwise).  Error bounds: docs/DESIGN.md.
  struct SketchSummary {
    bool enabled = false;
    double registered_users = 0.0;   ///< HLL estimate (exact: adoption).
    double transacting_users = 0.0;  ///< HLL estimate.
    double txn_size_p50 = 0.0;       ///< t-digest quantiles (bytes).
    double txn_size_p95 = 0.0;
    double txn_size_p99 = 0.0;
    /// Heaviest apps by wearable transactions (top 10, count desc).
    std::vector<std::pair<std::string, std::uint64_t>> top_apps;
    /// Merged sketch footprint in bytes (the bounded-memory claim).
    std::size_t memory_bytes = 0;
  };
  SketchSummary sketch;
  /// Ring totals at assembly time (filled by the engine, not the merge).
  RingStats backpressure;
  /// Records the feed side quarantined before they ever reached a ring
  /// (filled by the engine from add_quarantine(), not the merge).
  trace::QuarantineStats quarantine;

  /// The *mergeable* state behind the finalized figures above: the
  /// shard-merged tallies, before finalize().  Federation serializes these
  /// (fed/partial_io) so partial snapshots from user-disjoint partitions
  /// can be combined exactly.  Only captured when the coordinator was
  /// built with capture_tallies (null otherwise — serving pays nothing).
  struct TallySet {
    core::AdoptionTally adoption;
    core::ActivityTally activity;
    AppTally apps;
    SectorTally sectors;
    SketchTally sketch;
  };
  std::shared_ptr<const TallySet> tallies;
};

/// Collects per-shard deposits and assembles epoch snapshots.
/// deposit() is called from worker threads, wait_for() from the control
/// thread; both are thread-safe.
class SnapshotCoordinator {
 public:
  /// `shards` contributions complete an epoch. `signatures` resolves app
  /// display names and must outlive the coordinator.  With
  /// `capture_tallies` every assembled snapshot keeps its merged
  /// pre-finalize tallies (LiveSnapshot::tallies) for partial-snapshot
  /// serialization.
  SnapshotCoordinator(std::size_t shards,
                      const core::AppSignatureTable& signatures,
                      bool capture_tallies = false);

  /// Adds one shard's contribution to `epoch`. The last deposit assembles
  /// the snapshot and wakes waiters.
  void deposit(std::uint64_t epoch, ShardSnapshot snap) WS_EXCLUDES(mutex_);

  /// Blocks until `epoch` is fully assembled and returns it (consuming the
  /// stored copy; latest() keeps serving it afterwards).
  [[nodiscard]] LiveSnapshot wait_for(std::uint64_t epoch)
      WS_EXCLUDES(mutex_);

  /// Most recently assembled snapshot, if any.
  [[nodiscard]] std::optional<LiveSnapshot> latest() const
      WS_EXCLUDES(mutex_);

 private:
  /// Runs under mutex_ (from the last deposit of an epoch).
  [[nodiscard]] LiveSnapshot assemble(std::uint64_t epoch,
                                      std::vector<ShardSnapshot>& parts) const
      WS_REQUIRES(mutex_);

  std::size_t shards_ = 0;
  const core::AppSignatureTable* signatures_ = nullptr;
  bool capture_tallies_ = false;

  mutable util::Mutex mutex_;
  util::CondVar assembled_;
  std::map<std::uint64_t, std::vector<ShardSnapshot>> pending_
      WS_GUARDED_BY(mutex_);
  std::map<std::uint64_t, LiveSnapshot> completed_ WS_GUARDED_BY(mutex_);
  std::optional<LiveSnapshot> latest_ WS_GUARDED_BY(mutex_);
};

}  // namespace wearscope::live
