// FeedReplayer: turns an on-disk capture back into a live feed.
//
// Replays a TraceStore's proxy and MME logs as one merged, time-ordered
// event stream into a LiveEngine — at real time (speedup 1), at a
// configurable multiple, or as fast as the engine accepts (speedup <= 0,
// the throughput-benchmark mode).  Optionally requests an engine snapshot
// every `snapshot_every_s` seconds of *stream* time, which makes periodic
// snapshots deterministic: epoch boundaries depend only on record
// timestamps, never on wall-clock scheduling.
//
// Transient faults: a real feed tap occasionally fails a read (stalled
// middlebox, flapping spool mount).  The replayer models that with a
// pluggable fault hook and bounded exponential-backoff retries: a record
// whose reads keep failing past `RetryPolicy::max_attempts` is quarantined
// (counted, skipped) instead of wedging the feed.  The hook is a pure
// function of the feed sequence number, so a given fault schedule drops
// exactly the same records on every run and for every shard count — the
// property the chaos differential harness (src/chaos) checks.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "live/engine.h"
#include "trace/quarantine.h"
#include "trace/store.h"

namespace wearscope::live {

/// Bounded retry with exponential backoff for transient feed-read faults.
struct RetryPolicy {
  /// Total read attempts per record before it is quarantined.
  std::uint32_t max_attempts = 4;
  /// Wall-clock pause before the first retry (0 disables sleeping).
  std::chrono::microseconds initial_backoff{50};
  /// Backoff growth per retry (initial, initial*m, initial*m^2, ...).
  double backoff_multiplier = 2.0;
  /// Upper bound on a single backoff pause.
  std::chrono::microseconds max_backoff{5000};
};

/// Replay configuration.
struct ReplayOptions {
  /// Stream-time / wall-time ratio; <= 0 replays as fast as possible.
  double speedup = 0.0;
  /// Request a snapshot whenever stream time crosses a multiple of this
  /// many seconds since the first record; 0 disables periodic snapshots.
  util::SimTime snapshot_every_s = 0;
  /// Retry policy for transient read faults.
  RetryPolicy retry;
  /// Transient-fault hook: how many times the read of feed record `seq`
  /// (merge order, counting both logs) fails before succeeding; 0 = clean.
  /// Unset = no faults.  Must be deterministic in `seq` (chaos::FaultPlan
  /// provides seeded schedules).
  std::function<std::uint32_t(std::uint64_t seq)> read_faults;
  /// Snapshot publication hook: when set, each periodic snapshot is handed
  /// here (from the feed thread, in epoch order) instead of being
  /// accumulated into ReplayReport::snapshots — the always-on serving
  /// layer (wearscope::serve::SnapshotStore::publish) hangs off this, so a
  /// long replay retains a bounded window instead of every epoch.
  std::function<void(LiveSnapshot snapshot)> on_snapshot;
};

/// What one replay() call did.
struct ReplayReport {
  std::uint64_t records_pushed = 0;
  double wall_seconds = 0.0;  ///< Push-loop wall time (excludes stop()).
  /// The periodic snapshots, in epoch order (empty when disabled or when
  /// ReplayOptions::on_snapshot consumed them).
  std::vector<LiveSnapshot> snapshots;
  /// Runtime quarantine: recovered retries and records dropped after the
  /// retry budget (also accumulated into the engine's snapshots).
  trace::QuarantineStats quarantine;
};

/// Replays one capture. The store must stay alive during replay() and must
/// be time-sorted (trace::TraceStore::sort_by_time).
class FeedReplayer {
 public:
  FeedReplayer(const trace::TraceStore& store, ReplayOptions options);

  /// Pushes every proxy/MME record into `engine` in timestamp order
  /// (ties: MME before proxy — registration precedes traffic).  Does NOT
  /// call engine.stop(); the caller decides when to drain.
  ReplayReport replay(LiveEngine& engine) const;

 private:
  const trace::TraceStore* store_ = nullptr;
  ReplayOptions opt_;
};

}  // namespace wearscope::live
