// FeedReplayer: turns an on-disk capture back into a live feed.
//
// Replays a TraceStore's proxy and MME logs as one merged, time-ordered
// event stream into a LiveEngine — at real time (speedup 1), at a
// configurable multiple, or as fast as the engine accepts (speedup <= 0,
// the throughput-benchmark mode).  Optionally requests an engine snapshot
// every `snapshot_every_s` seconds of *stream* time, which makes periodic
// snapshots deterministic: epoch boundaries depend only on record
// timestamps, never on wall-clock scheduling.
#pragma once

#include <vector>

#include "live/engine.h"
#include "trace/store.h"

namespace wearscope::live {

/// Replay configuration.
struct ReplayOptions {
  /// Stream-time / wall-time ratio; <= 0 replays as fast as possible.
  double speedup = 0.0;
  /// Request a snapshot whenever stream time crosses a multiple of this
  /// many seconds since the first record; 0 disables periodic snapshots.
  util::SimTime snapshot_every_s = 0;
};

/// What one replay() call did.
struct ReplayReport {
  std::uint64_t records_pushed = 0;
  double wall_seconds = 0.0;  ///< Push-loop wall time (excludes stop()).
  /// The periodic snapshots, in epoch order (empty when disabled).
  std::vector<LiveSnapshot> snapshots;
};

/// Replays one capture. The store must stay alive during replay() and must
/// be time-sorted (trace::TraceStore::sort_by_time).
class FeedReplayer {
 public:
  FeedReplayer(const trace::TraceStore& store, ReplayOptions options);

  /// Pushes every proxy/MME record into `engine` in timestamp order
  /// (ties: MME before proxy — registration precedes traffic).  Does NOT
  /// call engine.stop(); the caller decides when to drain.
  ReplayReport replay(LiveEngine& engine) const;

 private:
  const trace::TraceStore* store_;
  ReplayOptions opt_;
};

}  // namespace wearscope::live
