// wearscope::chaos — deterministic, seeded fault injection.
//
// A FaultPlan turns (seed, profile) into a reproducible set of faults at
// three levels of the ingest stack:
//
//   * byte level     — corrupted binary log images (truncation, length
//                      bombs, bad magic, bit flips) for trace/binary_io;
//   * record level   — duplicates, bounded reordering, timestamp
//                      regressions, unknown TACs and hostile SNIs spliced
//                      into a clean capture, for trace/sanitize;
//   * runtime level  — transient and permanent read failures against
//                      live::FeedReplayer, plus seeded stall/burst
//                      schedules for the ring-buffer stress tests.
//
// Every injector returns a manifest of exactly what it did, phrased in the
// same units as trace::QuarantineStats — that is what lets the differential
// harness (chaos/diff_runner.h) assert quarantine == injected *exactly*,
// not approximately.  All randomness flows through util::Pcg32 streams
// forked from the plan seed, so a (seed, profile) pair replays the same
// faults on every platform and every run.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "live/replayer.h"
#include "trace/quarantine.h"
#include "trace/store.h"
#include "util/rng.h"

namespace wearscope::chaos {

/// How many faults of each kind a plan injects.  Counts are requests; the
/// injectors clamp to what the input can absorb (e.g. a ten-record log
/// cannot host twenty disjoint swaps) and report actuals in the manifest.
struct FaultProfile {
  std::string name = "custom";

  // --- Record level (trace/sanitize) -----------------------------------
  std::uint32_t duplicates = 0;    ///< Exact re-deliveries spliced in.
  std::uint32_t regressions = 0;   ///< Wildly-late records spliced in.
  std::uint32_t unknown_tacs = 0;  ///< Records with TACs absent from DeviceDB.
  std::uint32_t bad_hosts = 0;     ///< Proxy records with hostile SNIs.
  std::uint32_t reorder_swaps = 0; ///< Adjacent swaps (repairable lateness).

  // --- Runtime level (live/replayer) -----------------------------------
  std::uint32_t transient_reads = 0;  ///< Records whose read fails, then
                                      ///< recovers within the retry budget.
  std::uint32_t permanent_reads = 0;  ///< Records failing past the budget.

  // --- Byte level (trace/binary_io fuzz corpus sizing) -----------------
  std::uint32_t truncations = 0;
  std::uint32_t length_bombs = 0;
  std::uint32_t bad_magics = 0;
  std::uint32_t bit_flips = 0;

  /// True when any record-level injector is active.
  [[nodiscard]] bool any_record_faults() const noexcept {
    return duplicates + regressions + unknown_tacs + bad_hosts +
               reorder_swaps >
           0;
  }
  /// True when any runtime-level injector is active.
  [[nodiscard]] bool any_runtime_faults() const noexcept {
    return transient_reads + permanent_reads > 0;
  }

  /// Named presets: "records", "records-heavy", "io", "transient",
  /// "runtime", "all".  Throws util::ConfigError for unknown names.
  static FaultProfile named(const std::string& name);
  /// The preset names, for --help text and sweeps.
  static std::vector<std::string> names();
};

/// What a plan actually injected, in quarantine units.
struct FaultManifest {
  /// The counters trace::sanitize_store / live::FeedReplayer must report
  /// for the injected faults — the exact-accounting contract.
  trace::QuarantineStats expected;
  /// Feed sequence numbers (merge order, both logs) whose reads fail past
  /// the retry budget; sorted ascending.  The differential runner removes
  /// exactly these records from the batch side.
  std::vector<std::uint64_t> permanent_fail_seqs;

  FaultManifest& operator+=(const FaultManifest& o) {
    expected += o.expected;
    permanent_fail_seqs.insert(permanent_fail_seqs.end(),
                               o.permanent_fail_seqs.begin(),
                               o.permanent_fail_seqs.end());
    return *this;
  }
};

// ---------------------------------------------------------------------------
// Byte level
// ---------------------------------------------------------------------------

/// A serialized binary log plus the offset of every record, so injectors
/// can aim at structure instead of guessing.
struct BinaryImage {
  std::string bytes;
  std::vector<std::size_t> record_offsets;  ///< First record at offset 8.
};

/// Serializes `records` through trace::BinaryLogWriter, tracking offsets.
template <typename Record>
BinaryImage image_of(const std::vector<Record>& records);

/// The byte-level injector kinds.
enum class ByteFaultKind {
  kTruncate,    ///< Cut the image mid-record.
  kLengthBomb,  ///< Overwrite a string length prefix with 0xFFFF.
  kBadMagic,    ///< Corrupt the file magic.
  kBitFlip,     ///< Flip 1..8 random bits anywhere (no exact accounting).
};

/// One corrupted image plus what the lenient reader must do with it.
struct ByteFault {
  ByteFaultKind kind = ByteFaultKind::kBitFlip;
  std::string bytes;                  ///< The corrupted image.
  std::size_t expected_survivors = 0; ///< Records the lenient read keeps.
  trace::QuarantineStats expected;    ///< corrupt_files / corrupt_tails.
  /// False for bit flips: the reader must merely survive (no crash, no
  /// UB, survivors <= input) — the damage is not structurally aimed.
  bool exact = true;
};

/// Applies one seeded fault of `kind` to a copy of `image`.  kLengthBomb
/// requires a ProxyRecord image (the only record type carrying strings at
/// a fixed offset); pass `proxy_layout = true` for those images.
ByteFault inject_bytes(const BinaryImage& image, ByteFaultKind kind,
                       util::Pcg32& rng, bool proxy_layout);

// ---------------------------------------------------------------------------
// Runtime level
// ---------------------------------------------------------------------------

/// A deterministic transient-read-failure schedule for FeedReplayer.
struct RuntimeFaults {
  /// Drop-in value for live::ReplayOptions::read_faults.
  std::function<std::uint32_t(std::uint64_t seq)> schedule;
  /// Sorted seqs that exhaust the retry budget (records lost).
  std::vector<std::uint64_t> permanent_seqs;
  /// Expected quarantine counters (transient_retries, dropped_after_retry).
  trace::QuarantineStats expected;
};

/// Seeded stall/burst schedule for ring-buffer stress tests: a pure
/// function of (seed, i), so producer and consumer threads need no shared
/// state to agree on it.
struct StallSchedule {
  std::uint64_t seed = 0;
  std::uint32_t stall_permille = 50;    ///< P(consumer stalls at pop i).
  std::uint32_t max_stall_us = 200;     ///< Stall length upper bound.
  std::uint32_t burst_permille = 80;    ///< P(producer bursts at push i).
  std::uint32_t max_burst = 32;         ///< Burst length upper bound.

  /// Consumer stall before pop #i, in microseconds (0 = no stall).
  [[nodiscard]] std::uint32_t stall_us(std::uint64_t i) const noexcept;
  /// Extra records the producer shoves back-to-back at push #i.
  [[nodiscard]] std::uint32_t burst_len(std::uint64_t i) const noexcept;
};

// ---------------------------------------------------------------------------
// The plan
// ---------------------------------------------------------------------------

/// A seeded, reproducible composition of the injectors above.
class FaultPlan {
 public:
  FaultPlan(std::uint64_t seed, FaultProfile profile);

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] const FaultProfile& profile() const noexcept {
    return profile_;
  }

  /// Record level: perturbs `store`'s proxy and MME logs in place from a
  /// clean time-sorted capture into a hostile arrival-ordered one, and
  /// returns the exact expected quarantine.  For the exactness contract
  /// the input must be duplicate-free and time-sorted (run
  /// trace::sanitize_store on it first); on arbitrary input the injection
  /// still works but the counts become lower bounds.
  FaultManifest inject_records(trace::TraceStore& store) const;

  /// Runtime level: a read-failure schedule for a feed of `feed_records`
  /// merged records, sized by the profile and bounded by `retry`.
  [[nodiscard]] RuntimeFaults runtime_faults(
      std::uint64_t feed_records, const live::RetryPolicy& retry) const;

  /// Byte level: the seeded fuzz corpus for one image — profile-sized
  /// counts of each ByteFaultKind.
  [[nodiscard]] std::vector<ByteFault> byte_corpus(const BinaryImage& image,
                                                   bool proxy_layout) const;

  /// The stress-test stall/burst schedule derived from this plan's seed.
  [[nodiscard]] StallSchedule stall_schedule() const;

 private:
  std::uint64_t seed_;
  FaultProfile profile_;
};

}  // namespace wearscope::chaos
