// The chaos differential harness.
//
// For any seeded FaultPlan, the batch pipeline and the live engine must
// tell the same story about the records that survive quarantine — and the
// quarantine counters must equal the injected fault counts *exactly*.
// run_differential() drives the whole contract over one clean capture:
//
//   1. canonicalize the capture (sort + sanitize — a clean capture is a
//      fixed point of the sanitizer);
//   2. inject the plan's record-level faults, sanitize the hostile copy,
//      and require (a) quarantine == manifest bit-for-bit, (b) the
//      surviving records == the canonical capture bit-for-bit;
//   3. run core::Pipeline over the survivors minus the plan's permanent
//      feed drops (the batch truth);
//   4. replay the survivors through LiveEngine at every requested shard
//      count, with the plan's transient/permanent read faults live, and
//      require adoption + activity to match the batch truth bitwise and
//      every snapshot's quarantine to equal injected counts exactly.
//
// A DiffReport with passed=false lists every mismatch as a human-readable
// string; tests assert on `passed` and print the strings.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "chaos/fault_plan.h"
#include "core/context.h"
#include "trace/quarantine.h"
#include "trace/store.h"

namespace wearscope::chaos {

/// Configuration of one differential run.
struct DiffOptions {
  std::uint64_t seed = 1;
  FaultProfile profile = FaultProfile::named("records");
  /// Every shard count the live side is checked at.
  std::vector<std::size_t> shard_counts = {1, 2, 4, 8};
  /// Analysis window shared by both sides.
  core::AnalysisOptions analysis;
  /// Ring capacity for the live engines (small values exercise
  /// backpressure during the differential itself).
  std::size_t ring_capacity = 1024;
};

/// Outcome of one differential run.
struct DiffReport {
  bool passed = false;
  /// Human-readable description of every divergence (empty when passed).
  std::vector<std::string> mismatches;
  /// What the sanitizer counted on the hostile copy.
  trace::QuarantineStats observed;
  /// What the plan injected (record + runtime level).
  FaultManifest manifest;
  /// Survivor counts after sanitization.
  std::size_t surviving_proxy = 0;
  std::size_t surviving_mme = 0;

  /// One-line summary for logs.
  [[nodiscard]] std::string summary() const;
};

/// Runs the full differential contract for (clean capture, seed, profile).
/// `clean` is copied; the capture needs a non-empty DeviceDB snapshot
/// (both the TAC filter and the live engine classify against it).
DiffReport run_differential(const trace::TraceStore& clean,
                            const DiffOptions& options);

}  // namespace wearscope::chaos
