#include "chaos/fault_plan.h"

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "trace/binary_io.h"
#include "trace/sanitize.h"
#include "util/error.h"

namespace wearscope::chaos {

namespace {

// Substream keys so each injector draws from an independent RNG stream:
// changing the duplicate count never perturbs which records get swapped.
constexpr std::uint64_t kStreamRecords = 0xC0FFEE01;
constexpr std::uint64_t kStreamRuntime = 0xC0FFEE02;
constexpr std::uint64_t kStreamBytes = 0xC0FFEE03;
constexpr std::uint64_t kStreamStalls = 0xC0FFEE04;

// Injected unknown TACs start far above anything a DeviceDB allocates.
constexpr std::uint32_t kUnknownTacBase = 0xDEAD0000;
// Regressed timestamps land this far before the capture start (plus a
// per-record offset so no two injected regressions are equal records).
constexpr std::int64_t kRegressionOffset = 10'000;

std::size_t draw_index(util::Pcg32& rng, std::size_t n) {
  return static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

/// Tracks which clean-log indices are already claimed by an injector.
/// Claims include both neighbours, which keeps victim sets not just
/// disjoint but non-adjacent — the property that makes each fault show up
/// as exactly one quarantine count (no swap can touch a duplicate victim,
/// no two insertions share an anchor).
class Reservation {
 public:
  bool take(std::size_t i, std::size_t span) {
    const std::size_t lo = i == 0 ? 0 : i - 1;
    for (std::size_t j = lo; j <= i + span; ++j) {
      if (used_.contains(j)) return false;
    }
    for (std::size_t j = lo; j <= i + span; ++j) used_.insert(j);
    return true;
  }

 private:
  std::unordered_set<std::size_t> used_;
};

template <typename Record>
struct Insertion {
  std::size_t anchor;  ///< Emitted right after clean index `anchor`.
  Record rec;
};

/// Corrupts one event log in place: applies `swaps` adjacent swaps and
/// splices in `dups` duplicates, `regressions` wildly-late records and the
/// pre-built `invalid` records (each of which the sanitizer must drop at
/// validation).  Returns via `expected` exactly what the sanitizer will
/// count.  `invalid` entries are anchored anywhere — they are quarantined
/// before they can influence dedup or reorder bookkeeping.
template <typename Record>
void corrupt_log(std::vector<Record>& log, util::Pcg32& rng,
                 std::uint32_t swaps, std::uint32_t dups,
                 std::uint32_t regressions, std::vector<Record> invalid,
                 std::size_t reorder_window, std::uint64_t& regression_salt,
                 trace::QuarantineStats& expected) {
  const std::size_t n = log.size();
  Reservation reserved;
  std::vector<std::size_t> swap_at;
  std::vector<Insertion<Record>> insertions;

  // Adjacent swaps of strictly-increasing pairs: one repairable late
  // arrival each (displacement 1 << reorder_window), zero drops.
  std::uint32_t done = 0;
  for (std::uint32_t attempt = 0; n >= 2 && done < swaps &&
                                  attempt < swaps * 64 + 256;
       ++attempt) {
    const std::size_t i = draw_index(rng, n - 1);
    if (!(log[i].timestamp < log[i + 1].timestamp)) continue;
    if (!reserved.take(i, 2)) continue;
    swap_at.push_back(i);
    ++done;
  }
  expected.reordered += done;

  // Duplicates: an exact copy emitted right after its original.
  done = 0;
  for (std::uint32_t attempt = 0; n >= 1 && done < dups &&
                                  attempt < dups * 64 + 256;
       ++attempt) {
    const std::size_t v = draw_index(rng, n);
    if (!reserved.take(v, 1)) continue;
    insertions.push_back({v, log[v]});
    ++done;
  }
  expected.duplicates += done;

  // Regressions: clones stamped far before the capture start, anchored
  // deep enough that the reorder window has already released records —
  // only then is "too late to repair" guaranteed rather than likely.
  done = 0;
  const std::size_t first_anchor = reorder_window + 1;
  for (std::uint32_t attempt = 0; n > first_anchor + 1 &&
                                  done < regressions &&
                                  attempt < regressions * 64 + 256;
       ++attempt) {
    const std::size_t a =
        first_anchor + draw_index(rng, n - first_anchor - 1);
    if (!reserved.take(a, 1)) continue;
    Record rec = log[a];
    rec.timestamp = log.front().timestamp - kRegressionOffset -
                    static_cast<std::int64_t>(regression_salt++);
    insertions.push_back({a, std::move(rec)});
    ++done;
  }
  expected.regressions += done;

  for (Record& rec : invalid) {
    insertions.push_back({n == 0 ? 0 : draw_index(rng, n), std::move(rec)});
  }

  for (const std::size_t i : swap_at) std::swap(log[i], log[i + 1]);

  std::stable_sort(insertions.begin(), insertions.end(),
                   [](const Insertion<Record>& a, const Insertion<Record>& b) {
                     return a.anchor < b.anchor;
                   });
  std::vector<Record> out;
  out.reserve(n + insertions.size());
  std::size_t next = 0;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(std::move(log[i]));
    while (next < insertions.size() && insertions[next].anchor == i) {
      out.push_back(std::move(insertions[next].rec));
      ++next;
    }
  }
  while (next < insertions.size()) {
    out.push_back(std::move(insertions[next].rec));
    ++next;
  }
  log = std::move(out);
}

}  // namespace

FaultProfile FaultProfile::named(const std::string& name) {
  FaultProfile p;
  p.name = name;
  if (name == "records") {
    p.duplicates = 7;
    p.regressions = 5;
    p.unknown_tacs = 6;
    p.bad_hosts = 4;
    p.reorder_swaps = 9;
    return p;
  }
  if (name == "records-heavy") {
    p.duplicates = 40;
    p.regressions = 25;
    p.unknown_tacs = 30;
    p.bad_hosts = 20;
    p.reorder_swaps = 60;
    return p;
  }
  if (name == "io") {
    p.truncations = 6;
    p.length_bombs = 4;
    p.bad_magics = 2;
    p.bit_flips = 12;
    return p;
  }
  if (name == "transient") {
    p.transient_reads = 12;
    return p;
  }
  if (name == "runtime") {
    p.transient_reads = 12;
    p.permanent_reads = 5;
    return p;
  }
  if (name == "all") {
    p.duplicates = 7;
    p.regressions = 5;
    p.unknown_tacs = 6;
    p.bad_hosts = 4;
    p.reorder_swaps = 9;
    p.transient_reads = 12;
    p.permanent_reads = 5;
    p.truncations = 6;
    p.length_bombs = 4;
    p.bad_magics = 2;
    p.bit_flips = 12;
    return p;
  }
  std::string known;
  for (const std::string& k : names()) {
    if (!known.empty()) known += ", ";
    known += k;
  }
  throw util::ConfigError("unknown chaos profile '" + name + "' (known: " +
                          known + ")");
}

std::vector<std::string> FaultProfile::names() {
  return {"records", "records-heavy", "io", "transient", "runtime", "all"};
}

template <typename Record>
BinaryImage image_of(const std::vector<Record>& records) {
  std::ostringstream out(std::ios::binary);
  trace::BinaryLogWriter<Record> writer(out);
  BinaryImage image;
  image.record_offsets.reserve(records.size());
  for (const Record& r : records) {
    image.record_offsets.push_back(static_cast<std::size_t>(out.tellp()));
    writer.write(r);
  }
  image.bytes = out.str();
  return image;
}

template BinaryImage image_of<trace::ProxyRecord>(
    const std::vector<trace::ProxyRecord>&);
template BinaryImage image_of<trace::MmeRecord>(
    const std::vector<trace::MmeRecord>&);

ByteFault inject_bytes(const BinaryImage& image, ByteFaultKind kind,
                       util::Pcg32& rng, bool proxy_layout) {
  const std::size_t n = image.record_offsets.size();
  ByteFault fault;
  fault.kind = kind;
  fault.bytes = image.bytes;
  switch (kind) {
    case ByteFaultKind::kTruncate: {
      util::require(n > 0, "inject_bytes: empty image cannot be truncated");
      const std::size_t k = draw_index(rng, n);
      const std::size_t begin = image.record_offsets[k];
      const std::size_t end =
          k + 1 < n ? image.record_offsets[k + 1] : image.bytes.size();
      // Cut strictly inside record k: everything before parses, record k
      // hits EOF mid-field, the tail is abandoned.
      const std::size_t cut = begin + 1 + draw_index(rng, end - begin - 1);
      fault.bytes.resize(cut);
      fault.expected_survivors = k;
      fault.expected.corrupt_tails = 1;
      break;
    }
    case ByteFaultKind::kLengthBomb: {
      util::require(proxy_layout && n > 0,
                    "inject_bytes: length bombs need a proxy image");
      // The host length prefix sits at a fixed offset inside a ProxyRecord:
      // i64 ts + u64 user + u32 tac + u8 protocol = 21 bytes.
      constexpr std::size_t kHostPrefix = 21;
      // 0xFFFF only guarantees a ParseError when the stream cannot deliver
      // 65535 more bytes; restrict victims to records close enough to EOF.
      std::vector<std::size_t> victims;
      for (std::size_t k = 0; k < n; ++k) {
        const std::size_t after = image.record_offsets[k] + kHostPrefix + 2;
        if (after <= image.bytes.size() &&
            image.bytes.size() - after < 0xFFFF) {
          victims.push_back(k);
        }
      }
      util::require(!victims.empty(),
                    "inject_bytes: no length-bomb victim close enough to EOF");
      const std::size_t k = victims[draw_index(rng, victims.size())];
      const std::size_t at = image.record_offsets[k] + kHostPrefix;
      fault.bytes[at] = static_cast<char>(0xFF);
      fault.bytes[at + 1] = static_cast<char>(0xFF);
      fault.expected_survivors = k;
      fault.expected.corrupt_tails = 1;
      break;
    }
    case ByteFaultKind::kBadMagic: {
      util::require(image.bytes.size() >= 4,
                    "inject_bytes: image too small for a header");
      const std::size_t at = draw_index(rng, 4);
      fault.bytes[at] = static_cast<char>(
          static_cast<unsigned char>(fault.bytes[at]) ^ 0xFFu);
      fault.expected_survivors = 0;
      fault.expected.corrupt_files = 1;
      break;
    }
    case ByteFaultKind::kBitFlip: {
      util::require(!image.bytes.empty(), "inject_bytes: empty image");
      const std::size_t flips = 1 + draw_index(rng, 8);
      for (std::size_t f = 0; f < flips; ++f) {
        const std::size_t at = draw_index(rng, fault.bytes.size());
        const auto bit =
            static_cast<unsigned char>(1u << draw_index(rng, 8));
        fault.bytes[at] = static_cast<char>(
            static_cast<unsigned char>(fault.bytes[at]) ^ bit);
      }
      fault.exact = false;
      break;
    }
  }
  return fault;
}

std::uint32_t StallSchedule::stall_us(std::uint64_t i) const noexcept {
  const std::uint64_t h =
      util::splitmix64(seed ^ 0x5354414C4Cull ^ util::splitmix64(i));
  if (h % 1000 >= stall_permille || max_stall_us == 0) return 0;
  return 1 + static_cast<std::uint32_t>((h >> 32) % max_stall_us);
}

std::uint32_t StallSchedule::burst_len(std::uint64_t i) const noexcept {
  const std::uint64_t h =
      util::splitmix64(seed ^ 0x4255525354ull ^ util::splitmix64(i));
  if (h % 1000 >= burst_permille || max_burst == 0) return 0;
  return 1 + static_cast<std::uint32_t>((h >> 32) % max_burst);
}

FaultPlan::FaultPlan(std::uint64_t seed, FaultProfile profile)
    : seed_(seed), profile_(std::move(profile)) {}

FaultManifest FaultPlan::inject_records(trace::TraceStore& store) const {
  util::Pcg32 rng = util::Pcg32(seed_).fork(kStreamRecords);
  FaultManifest manifest;
  const std::size_t window = trace::SanitizeOptions{}.reorder_window;
  std::uint64_t regression_salt = 0;
  std::uint64_t invalid_salt = 0;

  // Split requested counts across the two event logs; proxy takes the
  // remainder (it is the larger log in every realistic capture).
  const auto split_hi = [](std::uint32_t c) { return c - c / 2; };
  const auto split_lo = [](std::uint32_t c) { return c / 2; };

  // Invalid proxy records: hostile SNIs keep their (known) TAC so they hit
  // the bad-host counter; unknown-TAC clones keep a valid host.  Distinct
  // salts make every injected record unique.
  std::vector<trace::ProxyRecord> bad_proxy;
  if (!store.proxy.empty()) {
    for (std::uint32_t j = 0; j < profile_.bad_hosts; ++j) {
      trace::ProxyRecord r = store.proxy[draw_index(rng, store.proxy.size())];
      r.host = std::string("\x01") + "chaos-bad-sni-" +
               std::to_string(invalid_salt++);
      bad_proxy.push_back(std::move(r));
      ++manifest.expected.bad_host;
    }
    for (std::uint32_t j = 0; j < split_hi(profile_.unknown_tacs); ++j) {
      trace::ProxyRecord r = store.proxy[draw_index(rng, store.proxy.size())];
      r.tac = kUnknownTacBase + static_cast<std::uint32_t>(invalid_salt++);
      bad_proxy.push_back(std::move(r));
      ++manifest.expected.unknown_tac;
    }
  }
  std::vector<trace::MmeRecord> bad_mme;
  if (!store.mme.empty()) {
    for (std::uint32_t j = 0; j < split_lo(profile_.unknown_tacs); ++j) {
      trace::MmeRecord r = store.mme[draw_index(rng, store.mme.size())];
      r.tac = kUnknownTacBase + static_cast<std::uint32_t>(invalid_salt++);
      bad_mme.push_back(std::move(r));
      ++manifest.expected.unknown_tac;
    }
  }

  corrupt_log(store.proxy, rng, split_hi(profile_.reorder_swaps),
              split_hi(profile_.duplicates), split_hi(profile_.regressions),
              std::move(bad_proxy), window, regression_salt,
              manifest.expected);
  corrupt_log(store.mme, rng, split_lo(profile_.reorder_swaps),
              split_lo(profile_.duplicates), split_lo(profile_.regressions),
              std::move(bad_mme), window, regression_salt, manifest.expected);
  return manifest;
}

RuntimeFaults FaultPlan::runtime_faults(std::uint64_t feed_records,
                                        const live::RetryPolicy& retry) const {
  util::Pcg32 rng = util::Pcg32(seed_).fork(kStreamRuntime);
  RuntimeFaults rf;
  util::require(retry.max_attempts >= 2,
                "runtime_faults: retry budget must allow at least one retry");

  auto faults = std::make_shared<std::unordered_map<std::uint64_t,
                                                    std::uint32_t>>();
  const auto pick_seqs = [&](std::uint32_t want) {
    std::vector<std::uint64_t> seqs;
    for (std::uint32_t attempt = 0;
         feed_records > 0 && seqs.size() < want &&
         attempt < want * 64 + 256;
         ++attempt) {
      const auto s = static_cast<std::uint64_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(feed_records) - 1));
      if (faults->contains(s)) continue;
      (*faults)[s] = 0;  // reserve; count assigned by the caller
      seqs.push_back(s);
    }
    return seqs;
  };

  for (const std::uint64_t s : pick_seqs(profile_.transient_reads)) {
    const auto fails = static_cast<std::uint32_t>(rng.uniform_int(
        1, static_cast<std::int64_t>(retry.max_attempts) - 1));
    (*faults)[s] = fails;
    rf.expected.transient_retries += fails;
  }
  rf.permanent_seqs = pick_seqs(profile_.permanent_reads);
  for (const std::uint64_t s : rf.permanent_seqs) {
    (*faults)[s] = retry.max_attempts;
    ++rf.expected.dropped_after_retry;
  }
  std::sort(rf.permanent_seqs.begin(), rf.permanent_seqs.end());

  rf.schedule = [faults](std::uint64_t seq) -> std::uint32_t {
    const auto it = faults->find(seq);
    return it == faults->end() ? 0 : it->second;
  };
  return rf;
}

std::vector<ByteFault> FaultPlan::byte_corpus(const BinaryImage& image,
                                              bool proxy_layout) const {
  util::Pcg32 rng = util::Pcg32(seed_).fork(kStreamBytes);
  std::vector<ByteFault> corpus;
  const auto add = [&](ByteFaultKind kind, std::uint32_t count) {
    for (std::uint32_t j = 0; j < count; ++j) {
      corpus.push_back(inject_bytes(image, kind, rng, proxy_layout));
    }
  };
  add(ByteFaultKind::kTruncate, profile_.truncations);
  if (proxy_layout) add(ByteFaultKind::kLengthBomb, profile_.length_bombs);
  add(ByteFaultKind::kBadMagic, profile_.bad_magics);
  add(ByteFaultKind::kBitFlip, profile_.bit_flips);
  return corpus;
}

StallSchedule FaultPlan::stall_schedule() const {
  StallSchedule s;
  s.seed = util::splitmix64(seed_ ^ kStreamStalls);
  return s;
}

}  // namespace wearscope::chaos
