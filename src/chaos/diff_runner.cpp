#include "chaos/diff_runner.h"

#include <bit>
#include <unordered_set>
#include <utility>

#include "core/pipeline.h"
#include "live/engine.h"
#include "live/replayer.h"
#include "trace/sanitize.h"
#include "util/error.h"

namespace wearscope::chaos {

namespace {

/// Bitwise double equality (a != b would flag NaN == NaN as a mismatch,
/// and the equivalence contract is "same bits", not "close").
bool same_bits(double a, double b) noexcept {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

class Mismatches {
 public:
  explicit Mismatches(std::vector<std::string>& out) : out_(&out) {}

  void note(std::string text) { out_->push_back(std::move(text)); }

  void eq_u64(const std::string& what, std::uint64_t a, std::uint64_t b) {
    if (a != b) {
      note(what + ": " + std::to_string(a) + " != " + std::to_string(b));
    }
  }
  void eq_d(const std::string& what, double a, double b) {
    if (!same_bits(a, b)) {
      note(what + ": " + std::to_string(a) + " != " + std::to_string(b));
    }
  }
  void eq_ecdf(const std::string& what, const util::Ecdf& a,
               const util::Ecdf& b) {
    if (a.size() != b.size()) {
      eq_u64(what + ".size", a.size(), b.size());
      return;
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (!same_bits(a.sorted()[i], b.sorted()[i])) {
        note(what + "[" + std::to_string(i) + "]: " +
             std::to_string(a.sorted()[i]) + " != " +
             std::to_string(b.sorted()[i]));
        return;  // One divergent sample is enough signal per ECDF.
      }
    }
  }
  void eq_quarantine(const std::string& what, const trace::QuarantineStats& a,
                     const trace::QuarantineStats& b) {
    eq_u64(what + ".corrupt_files", a.corrupt_files, b.corrupt_files);
    eq_u64(what + ".corrupt_tails", a.corrupt_tails, b.corrupt_tails);
    eq_u64(what + ".corrupt_rows", a.corrupt_rows, b.corrupt_rows);
    eq_u64(what + ".duplicates", a.duplicates, b.duplicates);
    eq_u64(what + ".regressions", a.regressions, b.regressions);
    eq_u64(what + ".unknown_tac", a.unknown_tac, b.unknown_tac);
    eq_u64(what + ".bad_host", a.bad_host, b.bad_host);
    eq_u64(what + ".reordered", a.reordered, b.reordered);
    eq_u64(what + ".transient_retries", a.transient_retries,
           b.transient_retries);
    eq_u64(what + ".dropped_after_retry", a.dropped_after_retry,
           b.dropped_after_retry);
  }

 private:
  std::vector<std::string>* out_;
};

void compare_adoption(Mismatches& m, const std::string& label,
                      const core::AdoptionResult& a,
                      const core::AdoptionResult& b) {
  m.eq_u64(label + ".ever_registered", a.ever_registered, b.ever_registered);
  m.eq_u64(label + ".ever_transacted", a.ever_transacted, b.ever_transacted);
  m.eq_d(label + ".ever_transacting_fraction", a.ever_transacting_fraction,
         b.ever_transacting_fraction);
  m.eq_d(label + ".total_growth", a.total_growth, b.total_growth);
  m.eq_d(label + ".monthly_growth", a.monthly_growth, b.monthly_growth);
  m.eq_d(label + ".still_active_share", a.still_active_share,
         b.still_active_share);
  m.eq_d(label + ".gone_share", a.gone_share, b.gone_share);
  m.eq_d(label + ".new_share", a.new_share, b.new_share);
  m.eq_d(label + ".churned_of_initial", a.churned_of_initial,
         b.churned_of_initial);
  m.eq_u64(label + ".daily.size", a.daily_registered_norm.size(),
           b.daily_registered_norm.size());
  if (a.daily_registered_norm.size() == b.daily_registered_norm.size()) {
    for (std::size_t d = 0; d < a.daily_registered_norm.size(); ++d) {
      m.eq_d(label + ".daily[" + std::to_string(d) + "]",
             a.daily_registered_norm[d], b.daily_registered_norm[d]);
    }
  }
}

void compare_activity(Mismatches& m, const std::string& label,
                      const core::ActivityResult& a,
                      const core::ActivityResult& b) {
  m.eq_ecdf(label + ".active_days_per_week", a.active_days_per_week,
            b.active_days_per_week);
  m.eq_ecdf(label + ".active_hours_per_day", a.active_hours_per_day,
            b.active_hours_per_day);
  m.eq_ecdf(label + ".txn_size_bytes", a.txn_size_bytes, b.txn_size_bytes);
  m.eq_ecdf(label + ".hourly_txns_per_user", a.hourly_txns_per_user,
            b.hourly_txns_per_user);
  m.eq_ecdf(label + ".hourly_bytes_per_user", a.hourly_bytes_per_user,
            b.hourly_bytes_per_user);
  m.eq_d(label + ".mean_active_days", a.mean_active_days, b.mean_active_days);
  m.eq_d(label + ".mean_active_hours", a.mean_active_hours,
         b.mean_active_hours);
  m.eq_d(label + ".frac_over_10h", a.frac_over_10h, b.frac_over_10h);
  m.eq_d(label + ".frac_under_5h", a.frac_under_5h, b.frac_under_5h);
  m.eq_d(label + ".mean_txn_bytes", a.mean_txn_bytes, b.mean_txn_bytes);
  m.eq_d(label + ".median_txn_bytes", a.median_txn_bytes, b.median_txn_bytes);
  m.eq_d(label + ".frac_txn_under_10kb", a.frac_txn_under_10kb,
         b.frac_txn_under_10kb);
  m.eq_d(label + ".correlation", a.correlation, b.correlation);
  m.eq_d(label + ".binned_trend_corr", a.binned_trend_corr,
         b.binned_trend_corr);
}

void compare_snapshots(Mismatches& m, const std::string& label,
                       const live::LiveSnapshot& a,
                       const live::LiveSnapshot& b) {
  m.eq_u64(label + ".records", a.records, b.records);
  compare_adoption(m, label + ".adoption", a.adoption, b.adoption);
  compare_activity(m, label + ".activity", a.activity, b.activity);
  m.eq_u64(label + ".apps.size", a.apps.size(), b.apps.size());
  if (a.apps.size() == b.apps.size()) {
    for (std::size_t i = 0; i < a.apps.size(); ++i) {
      const std::string row = label + ".apps[" + std::to_string(i) + "]";
      m.eq_u64(row + ".app", a.apps[i].app, b.apps[i].app);
      m.eq_u64(row + ".transactions", a.apps[i].counter.transactions,
               b.apps[i].counter.transactions);
      m.eq_u64(row + ".usages", a.apps[i].counter.usages,
               b.apps[i].counter.usages);
      m.eq_u64(row + ".distinct_users", a.apps[i].counter.distinct_users,
               b.apps[i].counter.distinct_users);
    }
  }
  for (std::size_t c = 0; c < a.class_txns.size(); ++c) {
    m.eq_u64(label + ".class_txns[" + std::to_string(c) + "]",
             a.class_txns[c], b.class_txns[c]);
  }
}

/// The survivors minus the plan's permanent feed drops, removed in exactly
/// the order FeedReplayer walks the feed (ties: MME before proxy).
trace::TraceStore drop_permanent(const trace::TraceStore& canon,
                                 const std::vector<std::uint64_t>& seqs) {
  const std::unordered_set<std::uint64_t> drop(seqs.begin(), seqs.end());
  trace::TraceStore out;
  out.devices = canon.devices;
  out.sectors = canon.sectors;
  out.proxy.reserve(canon.proxy.size());
  out.mme.reserve(canon.mme.size());
  std::size_t pi = 0;
  std::size_t mi = 0;
  std::uint64_t seq = 0;
  while (pi < canon.proxy.size() || mi < canon.mme.size()) {
    const bool take_mme =
        mi < canon.mme.size() &&
        (pi >= canon.proxy.size() ||
         canon.mme[mi].timestamp <= canon.proxy[pi].timestamp);
    if (!drop.contains(seq)) {
      if (take_mme) {
        out.mme.push_back(canon.mme[mi]);
      } else {
        out.proxy.push_back(canon.proxy[pi]);
      }
    }
    take_mme ? ++mi : ++pi;
    ++seq;
  }
  return out;
}

}  // namespace

std::string DiffReport::summary() const {
  std::string s = passed ? "chaos diff PASSED" : "chaos diff FAILED";
  s += " (dropped " + std::to_string(observed.total_dropped()) +
       ", repaired " + std::to_string(observed.reordered) + ", survivors " +
       std::to_string(surviving_proxy) + "+" +
       std::to_string(surviving_mme) + ")";
  if (!passed) {
    s += ": " + std::to_string(mismatches.size()) + " mismatch(es), first: " +
         (mismatches.empty() ? std::string("?") : mismatches.front());
  }
  return s;
}

DiffReport run_differential(const trace::TraceStore& clean,
                            const DiffOptions& options) {
  util::require(!clean.devices.empty(),
                "run_differential: capture needs a DeviceDB snapshot");
  DiffReport rep;
  Mismatches m(rep.mismatches);
  const FaultPlan plan(options.seed, options.profile);

  // 1. Canonical capture: sorted + sanitized. Sanitizing a clean capture
  // is idempotent, so the canon is the fixed point both sides must reach.
  trace::TraceStore canon = clean;
  canon.sort_by_time();
  trace::sanitize_store(canon);

  // 2. Inject, sanitize, and hold the sanitizer to exact accounting.
  trace::TraceStore hostile = canon;
  rep.manifest = plan.inject_records(hostile);
  rep.observed = trace::sanitize_store(hostile);
  rep.surviving_proxy = hostile.proxy.size();
  rep.surviving_mme = hostile.mme.size();
  m.eq_quarantine("sanitize", rep.observed, rep.manifest.expected);
  m.eq_u64("survivors.proxy", hostile.proxy.size(), canon.proxy.size());
  m.eq_u64("survivors.mme", hostile.mme.size(), canon.mme.size());
  if (!(hostile.proxy == canon.proxy && hostile.mme == canon.mme)) {
    m.note("survivors differ from canonical capture record-for-record");
  }

  // 3. Runtime faults + the batch truth over what the live feed will keep.
  const live::RetryPolicy retry{
      .max_attempts = 4,
      .initial_backoff = std::chrono::microseconds(2),
      .backoff_multiplier = 2.0,
      .max_backoff = std::chrono::microseconds(50),
  };
  const std::uint64_t feed_records = canon.proxy.size() + canon.mme.size();
  const RuntimeFaults rf = plan.runtime_faults(feed_records, retry);
  rep.manifest.expected += rf.expected;
  rep.manifest.permanent_fail_seqs = rf.permanent_seqs;
  const trace::TraceStore batch_store =
      drop_permanent(canon, rf.permanent_seqs);
  const core::StudyReport batch =
      core::Pipeline(batch_store, options.analysis).run();
  const std::uint64_t expected_pushed =
      feed_records - rf.permanent_seqs.size();

  // 4. Live side, at every shard count, with the runtime faults active.
  live::LiveSnapshot reference;
  for (const std::size_t shards : options.shard_counts) {
    const std::string label =
        "shards=" + std::to_string(shards) + "/seed=" +
        std::to_string(options.seed) + "/" + options.profile.name;
    live::LiveOptions lopt;
    lopt.shards = shards;
    lopt.ring_capacity = options.ring_capacity;
    lopt.observation_days = options.analysis.observation_days;
    lopt.detailed_start_day = options.analysis.detailed_start_day;
    lopt.usage_gap_s = options.analysis.usage_gap_s;
    lopt.long_tail_apps = options.analysis.long_tail_apps;
    lopt.signature_coverage = options.analysis.signature_coverage;

    live::LiveEngine engine(canon.devices, lopt);
    engine.add_quarantine(rep.observed);  // As the tools surface it.
    live::ReplayOptions ropt;
    ropt.retry = retry;
    ropt.read_faults = rf.schedule;
    const live::ReplayReport replay =
        live::FeedReplayer(canon, ropt).replay(engine);
    const live::LiveSnapshot snap = engine.stop();

    m.eq_u64(label + ".records_pushed", replay.records_pushed,
             expected_pushed);
    m.eq_quarantine(label + ".replay.quarantine", replay.quarantine,
                    rf.expected);
    trace::QuarantineStats total = rep.observed;
    total += rf.expected;
    m.eq_quarantine(label + ".snapshot.quarantine", snap.quarantine, total);
    m.eq_u64(label + ".records", snap.records, expected_pushed);
    compare_adoption(m, label + ".adoption", snap.adoption, batch.adoption);
    compare_activity(m, label + ".activity", snap.activity, batch.activity);

    // Shard counts must also agree with each other on everything the
    // snapshot carries — including the per-app table and class mix the
    // batch comparison above does not cover.
    if (shards == options.shard_counts.front()) {
      reference = snap;
    } else {
      compare_snapshots(m, label + " vs shards=" +
                              std::to_string(options.shard_counts.front()),
                        snap, reference);
    }
  }

  rep.passed = rep.mismatches.empty();
  return rep;
}

}  // namespace wearscope::chaos
