#include "lint/linter.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>

#include "lint/callgraph.h"
#include "lint/flow_rules.h"
#include "lint/lexer.h"
#include "lint/rules.h"
#include "lint/symbols.h"
#include "util/error.h"

namespace wearscope::lint {

namespace {

using NameSet = std::set<std::string, std::less<>>;

[[nodiscard]] bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

/// Per-source derived data, computed once per run_lint() call.
struct PreparedFile {
  FileCtx ctx;
  NameSet own_unordered;  ///< Before the transitive-include union.
  NameSet provided;       ///< For include-hygiene lookups.
};

[[nodiscard]] PreparedFile prepare(const Source& source) {
  PreparedFile p;
  p.ctx.source = &source;
  p.ctx.tokens = lex(source.text);
  for (const Token& t : p.ctx.tokens) {
    switch (t.kind) {
      case TokenKind::kComment:
        break;
      case TokenKind::kDirective:
        p.ctx.directives.push_back(t);
        break;
      default:
        p.ctx.code.push_back(t);
    }
  }
  p.own_unordered = collect_unordered_names(p.ctx.code);
  p.ctx.ordered_names = collect_ordered_names(p.ctx.code);
  p.provided = collect_provided_names(p.ctx);
  return p;
}

/// Per-file suppression state parsed out of the comment tokens.
struct Suppressions {
  NameSet whole_file;                     ///< allow-file(rule)
  std::map<int, NameSet> by_line;         ///< allow(rule) effective lines
};

/// Extracts rule ids out of `allow(a, b)` starting at `open` (the '(').
void parse_rule_list(std::string_view text, std::size_t open, NameSet& out) {
  const std::size_t close = text.find(')', open);
  if (close == std::string_view::npos) return;
  std::string_view inner = text.substr(open + 1, close - open - 1);
  std::size_t i = 0;
  while (i < inner.size()) {
    while (i < inner.size() && (inner[i] == ' ' || inner[i] == ',')) ++i;
    std::size_t j = i;
    while (j < inner.size() && inner[j] != ' ' && inner[j] != ',') ++j;
    if (j > i) out.insert(std::string(inner.substr(i, j - i)));
    i = j;
  }
}

[[nodiscard]] Suppressions parse_suppressions(const FileCtx& ctx) {
  // Lines that hold at least one code token: a suppression comment alone
  // on its line covers the next line instead.
  std::set<int> code_lines;
  for (const Token& t : ctx.code) code_lines.insert(t.line);

  Suppressions s;
  for (const Token& t : ctx.tokens) {
    if (t.kind != TokenKind::kComment) continue;
    const std::size_t tag = t.text.find("wearscope-lint:");
    if (tag == std::string_view::npos) continue;
    const std::size_t file_tag = t.text.find("allow-file", tag);
    if (file_tag != std::string_view::npos) {
      const std::size_t open = t.text.find('(', file_tag);
      if (open != std::string_view::npos)
        parse_rule_list(t.text, open, s.whole_file);
      continue;
    }
    const std::size_t allow_tag = t.text.find("allow", tag);
    if (allow_tag == std::string_view::npos) continue;
    const std::size_t open = t.text.find('(', allow_tag);
    if (open == std::string_view::npos) continue;
    NameSet rules;
    parse_rule_list(t.text, open, rules);
    NameSet& slot = s.by_line[code_lines.contains(t.line) ? t.line
                                                          : t.line + 1];
    slot.insert(rules.begin(), rules.end());
  }
  return s;
}

[[nodiscard]] bool suppressed(const Suppressions& s, const Finding& f) {
  if (s.whole_file.contains(f.rule)) return true;
  const auto it = s.by_line.find(f.line);
  return it != s.by_line.end() && it->second.contains(f.rule);
}

void json_escape(std::ostream& os, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
             << "0123456789abcdef"[c & 0xf];
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

const std::vector<std::string>& all_rules() {
  static const std::vector<std::string> kRules = {
      "ambient-rand",   "guard-coverage",     "header-guard",
      "include-hygiene", "lock-order",        "pod-init",
      "quarantine-pairing", "unchecked-result", "unordered-emit",
      "unordered-flow", "wallclock"};
  return kRules;
}

std::vector<std::string> unknown_rules(const std::vector<std::string>& rules) {
  std::vector<std::string> bad;
  const std::vector<std::string>& valid = all_rules();
  for (const std::string& r : rules)
    if (std::find(valid.begin(), valid.end(), r) == valid.end())
      bad.push_back(r);
  return bad;
}

void Project::add(Source source) { sources_.push_back(std::move(source)); }

const Source* Project::resolve(std::string_view include_path) const {
  for (const Source& s : sources_) {
    if (s.path == include_path ||
        ends_with(s.path, std::string("/") + std::string(include_path)))
      return &s;
  }
  return nullptr;
}

namespace {

/// Every file lexed and analyzed, with the cross-file unordered-name
/// union already applied — the common substrate of run_lint and
/// dump_graph.
struct PreparedProject {
  std::vector<PreparedFile> files;
  std::map<const Source*, std::size_t> index;
};

[[nodiscard]] PreparedProject prepare_project(const Project& project) {
  PreparedProject prepared;
  const std::vector<Source>& sources = project.sources();
  prepared.files.reserve(sources.size());
  for (const Source& s : sources) {
    prepared.index.emplace(&s, prepared.files.size());
    prepared.files.push_back(prepare(s));
  }

  // Union unordered names over each file's transitive project includes, so
  // a container declared in a header is recognized in the .cpp that walks
  // it.  DFS with a visited set guards against include cycles.
  for (PreparedFile& f : prepared.files) {
    NameSet merged = f.own_unordered;
    std::set<std::size_t> visited;
    std::vector<std::size_t> stack = {prepared.index.at(f.ctx.source)};
    while (!stack.empty()) {
      const std::size_t at = stack.back();
      stack.pop_back();
      if (!visited.insert(at).second) continue;
      for (const IncludeLine& inc : quoted_includes(prepared.files[at].ctx)) {
        const Source* hit = project.resolve(inc.path);
        if (hit == nullptr) continue;
        const std::size_t next = prepared.index.at(hit);
        merged.insert(prepared.files[next].own_unordered.begin(),
                      prepared.files[next].own_unordered.end());
        stack.push_back(next);
      }
    }
    f.ctx.unordered_names = std::move(merged);
  }
  return prepared;
}

}  // namespace

std::vector<Finding> run_lint(const Project& project, const Options& options) {
  PreparedProject prepared = prepare_project(project);
  std::vector<PreparedFile>& files = prepared.files;
  std::map<const Source*, std::size_t>& index = prepared.index;

  const ProvidedLookup lookup = [&](std::string_view path) -> const NameSet* {
    const Source* hit = project.resolve(path);
    return hit == nullptr ? nullptr : &files[index.at(hit)].provided;
  };

  const auto enabled = [&](std::string_view rule) {
    if (options.only_rules.empty()) return true;
    return std::find(options.only_rules.begin(), options.only_rules.end(),
                     rule) != options.only_rules.end();
  };

  std::vector<Finding> raw;
  for (const PreparedFile& f : files) {
    if (enabled("wallclock")) check_wallclock(f.ctx, raw);
    if (enabled("ambient-rand")) check_ambient_rand(f.ctx, raw);
    if (enabled("unordered-emit")) check_unordered_emit(f.ctx, raw);
    if (enabled("quarantine-pairing")) check_quarantine_pairing(f.ctx, raw);
    if (enabled("header-guard")) check_header_guard(f.ctx, raw);
    if (enabled("include-hygiene")) check_include_hygiene(f.ctx, lookup, raw);
    if (enabled("pod-init")) check_pod_init(f.ctx, raw);
  }

  // Whole-program rules see every file at once; their findings are
  // anchored to (and suppressible in) individual files all the same.
  if (enabled("lock-order") || enabled("guard-coverage") ||
      enabled("unchecked-result") || enabled("unordered-flow")) {
    std::vector<const FileCtx*> ctxs;
    ctxs.reserve(files.size());
    for (const PreparedFile& f : files) ctxs.push_back(&f.ctx);
    const SymbolIndex symbols = SymbolIndex::build(std::move(ctxs));
    const CallGraph graph = CallGraph::build(symbols);
    if (enabled("lock-order")) check_lock_order(symbols, graph, raw);
    if (enabled("guard-coverage")) check_guard_coverage(symbols, raw);
    if (enabled("unchecked-result")) check_unchecked_result(symbols, raw);
    if (enabled("unordered-flow")) check_unordered_flow(symbols, graph, raw);
  }

  // A finding is filtered through the suppressions of the file it is
  // anchored in, wherever the rule that produced it ran.
  std::map<std::string, Suppressions, std::less<>> suppressions_by_path;
  for (const PreparedFile& f : files)
    suppressions_by_path.emplace(f.ctx.source->path,
                                 parse_suppressions(f.ctx));
  std::vector<Finding> findings;
  for (Finding& finding : raw) {
    const auto it = suppressions_by_path.find(finding.path);
    if (it != suppressions_by_path.end() && suppressed(it->second, finding))
      continue;
    findings.push_back(std::move(finding));
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  findings.erase(std::unique(findings.begin(), findings.end()),
                 findings.end());
  return findings;
}

std::string to_text(const std::vector<Finding>& findings) {
  std::ostringstream os;
  for (const Finding& f : findings)
    os << f.path << ":" << f.line << ": [" << f.rule << "] " << f.message
       << "\n";
  return os.str();
}

std::string to_json(const std::vector<Finding>& findings) {
  std::ostringstream os;
  os << "{\n  \"total_findings\": " << findings.size()
     << ",\n  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << (i == 0 ? "" : ",") << "\n    {\"path\": \"";
    json_escape(os, f.path);
    os << "\", \"line\": " << f.line << ", \"rule\": \"";
    json_escape(os, f.rule);
    os << "\", \"message\": \"";
    json_escape(os, f.message);
    os << "\"}";
  }
  os << (findings.empty() ? "]" : "\n  ]") << "\n}\n";
  return os.str();
}

std::string to_sarif(const std::vector<Finding>& findings) {
  std::ostringstream os;
  os << "{\n"
     << "  \"$schema\": "
        "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [{\n"
     << "    \"tool\": {\"driver\": {\"name\": \"wearscope_lint\", "
        "\"rules\": [";
  const std::vector<std::string>& rules = all_rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    os << (i == 0 ? "" : ", ") << "{\"id\": \"";
    json_escape(os, rules[i]);
    os << "\"}";
  }
  os << "]}},\n    \"results\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << (i == 0 ? "" : ",") << "\n      {\"ruleId\": \"";
    json_escape(os, f.rule);
    os << "\", \"level\": \"error\", \"message\": {\"text\": \"";
    json_escape(os, f.message);
    os << "\"}, \"locations\": [{\"physicalLocation\": "
          "{\"artifactLocation\": {\"uri\": \"";
    json_escape(os, f.path);
    os << "\"}, \"region\": {\"startLine\": " << f.line << "}}}]}";
  }
  os << (findings.empty() ? "]" : "\n    ]") << "\n  }]\n}\n";
  return os.str();
}

std::string dump_graph(const Project& project) {
  const PreparedProject prepared = prepare_project(project);
  std::vector<const FileCtx*> ctxs;
  ctxs.reserve(prepared.files.size());
  for (const PreparedFile& f : prepared.files) ctxs.push_back(&f.ctx);
  const SymbolIndex symbols = SymbolIndex::build(std::move(ctxs));
  const CallGraph graph = CallGraph::build(symbols);

  std::ostringstream os;
  os << "# classes (" << symbols.classes().size() << ")\n";
  for (const ClassSym& cls : symbols.classes()) {
    os << cls.name << "  " << symbols.files()[cls.file]->source->path << ":"
       << cls.line;
    if (cls.owns_lock()) os << "  [owns-lock]";
    os << "\n";
    for (const FieldSym& field : cls.fields) {
      os << "  ." << field.name;
      if (field.is_mutex) os << " [mutex]";
      if (field.is_atomic) os << " [atomic]";
      if (field.is_const) os << " [const]";
      if (!field.guarded_by.empty())
        os << " guarded_by(" << field.guarded_by << ")";
      os << "\n";
    }
  }
  os << "# functions (" << symbols.functions().size() << ")\n";
  for (std::size_t fi = 0; fi < symbols.functions().size(); ++fi) {
    const FunctionSym& fn = symbols.functions()[fi];
    os << fn.qualified() << "  "
       << symbols.files()[fn.file]->source->path << ":" << fn.line;
    for (const std::string& lock : fn.entry_locks)
      os << "  requires(" << lock << ")";
    os << "\n";
    for (const std::size_t callee : graph.callees(fi))
      os << "  -> " << symbols.functions()[callee].qualified() << "\n";
  }
  const std::vector<LockEdge> edges = collect_lock_edges(symbols, graph);
  os << "# lock-order edges (" << edges.size() << ")\n";
  for (const LockEdge& e : edges)
    os << e.from << " -> " << e.to << "  " << e.path << ":" << e.line
       << "\n";
  return os.str();
}

Project load_tree(const std::string& root,
                  const std::vector<std::string>& dirs) {
  namespace fs = std::filesystem;
  std::vector<std::string> rel_paths;
  for (const std::string& dir : dirs) {
    const fs::path base = fs::path(root) / dir;
    std::error_code ec;
    if (!fs::is_directory(base, ec))
      throw util::IoError("lint: not a directory: " + base.string());
    for (fs::recursive_directory_iterator it(base, ec), end;
         it != end && !ec; it.increment(ec)) {
      if (!it->is_regular_file()) continue;
      const std::string ext = it->path().extension().string();
      if (ext != ".h" && ext != ".hpp" && ext != ".cpp" && ext != ".cc")
        continue;
      rel_paths.push_back(
          fs::relative(it->path(), fs::path(root), ec).generic_string());
    }
    if (ec) throw util::IoError("lint: cannot walk " + base.string());
  }
  std::sort(rel_paths.begin(), rel_paths.end());

  Project project;
  for (const std::string& rel : rel_paths) {
    std::ifstream in(fs::path(root) / rel, std::ios::binary);
    if (!in) throw util::IoError("lint: cannot read " + rel);
    std::ostringstream text;
    text << in.rdbuf();
    project.add(Source{rel, text.str()});
  }
  return project;
}

}  // namespace wearscope::lint
