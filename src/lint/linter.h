// wearscope::lint — the project's determinism & concurrency invariant
// checker.
//
// WearScope's headline guarantee (bitwise batch/live equivalence, exact
// quarantine accounting under injected faults) rests on invariants that
// chaos runs and sanitizers only check *dynamically*.  This pass checks
// them statically, at lint time, as named suppressible rules.
//
// Per-file rules (token-stream, one file at a time):
//
//   wallclock           no ambient time in analysis code (time(), clock(),
//                       argless std::chrono::system_clock::now(), ...)
//   ambient-rand        no std::rand / std::random_device / std::mt19937 /
//                       std::*_distribution — randomness flows through
//                       util::Pcg32 forks keyed on stable identifiers
//   unordered-emit      no std::unordered_{map,set} iteration feeding
//                       Report/CSV/markdown emission without an
//                       intervening sort
//   quarantine-pairing  every catch of ParseError and every lenient-reader
//                       body must touch quarantine accounting (or rethrow)
//   header-guard        every header starts with #pragma once (or a
//                       classic include guard)
//   include-hygiene     project includes whose declared names are never
//                       referenced are flagged as unused
//   pod-init            scalar struct fields in trace/live/serve/sched/
//                       sketch/fed event types must have default
//                       initializers
//
// Whole-program rules (built on the cross-file symbol index and call
// graph, see symbols.h / callgraph.h — these see every file in the
// Project at once and resolve WS_* thread-safety annotations):
//
//   lock-order          cycles in the static lock-ordering graph (from
//                       nested MutexLock/SpinLockGuard scopes, WS_REQUIRES
//                       contracts, and lock acquisitions reachable through
//                       up to 3 call hops) are potential deadlocks — the
//                       static complement to the sched explorer's dynamic
//                       deadlock detection
//   guard-coverage      a field of a Mutex/SpinLock-owning class written
//                       by >= 2 member functions must carry WS_GUARDED_BY
//                       (or be atomic/const)
//   unchecked-result    a call to a project [[nodiscard]] function used as
//                       a bare expression statement discards its result
//   unordered-flow      interprocedural unordered-emit: a function that
//                       iterates an unordered container without sorting,
//                       whose return value reaches report/CSV/markdown
//                       emission through up to 3 call hops (closes the
//                       helper-function loophole of the per-file rule)
//
// A finding on line N is suppressed by `// wearscope-lint: allow(<rule>)`
// on line N or alone on line N-1; `// wearscope-lint: allow-file(<rule>)`
// anywhere suppresses the rule for the whole file.  Both forms accept a
// comma-separated rule list.  A whole-program finding is suppressed by
// the suppressions of the file it is anchored in.
//
// The linter runs on in-memory sources (no filesystem dependency), which
// is how tests/test_lint.cpp feeds it fixture code; load_tree() is the
// filesystem front end used by tools/wearscope_lint.cpp.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace wearscope::lint {

/// One source file handed to the linter. `path` is used for reporting and
/// for include resolution (suffix match), so fixture paths like
/// "src/core/foo.h" work without touching disk.
struct Source {
  std::string path;
  std::string text;
};

/// One rule violation.
struct Finding {
  std::string path;
  int line = 0;
  std::string rule;
  std::string message;

  friend bool operator==(const Finding&, const Finding&) = default;
};

/// Linter configuration.
struct Options {
  /// When non-empty, only these rule ids run.
  std::vector<std::string> only_rules;
};

/// All rule ids, in reporting order.
[[nodiscard]] const std::vector<std::string>& all_rules();

/// The subset of `rules` that are not valid rule ids (empty = all valid).
[[nodiscard]] std::vector<std::string> unknown_rules(
    const std::vector<std::string>& rules);

/// The project under analysis: every source is linted, and headers are
/// resolvable from each other by include-path suffix.
class Project {
 public:
  void add(Source source);

  /// Resolves `#include "include_path"` against the added sources; null
  /// when no source path ends with "/<include_path>".
  [[nodiscard]] const Source* resolve(std::string_view include_path) const;

  [[nodiscard]] const std::vector<Source>& sources() const noexcept {
    return sources_;
  }

 private:
  std::vector<Source> sources_;
};

/// Runs every (enabled) rule over every source; findings are sorted by
/// (path, line, rule) and already filtered through suppression comments.
[[nodiscard]] std::vector<Finding> run_lint(const Project& project,
                                            const Options& options = {});

/// "path:line: [rule] message" lines, one per finding.
[[nodiscard]] std::string to_text(const std::vector<Finding>& findings);

/// Machine-readable report for CI trend tracking:
/// {"total_findings": N, "findings": [{"path","line","rule","message"},...]}
[[nodiscard]] std::string to_json(const std::vector<Finding>& findings);

/// SARIF 2.1.0 report (one run, one result per finding) so CI can attach
/// findings inline to changed lines.
[[nodiscard]] std::string to_sarif(const std::vector<Finding>& findings);

/// Human-readable dump of the whole-program layer (indexed functions and
/// classes, call edges, lock-ordering edges) for debugging the flow rules.
[[nodiscard]] std::string dump_graph(const Project& project);

/// Loads every .h/.cpp under `root`/<dir> for each dir into a Project.
/// Throws util::IoError when a directory cannot be read.
[[nodiscard]] Project load_tree(const std::string& root,
                                const std::vector<std::string>& dirs);

}  // namespace wearscope::lint
