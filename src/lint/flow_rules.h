// Whole-program flow-aware rules, built on the symbol index and call
// graph.  Separate from rules.h so the per-file rules stay independent of
// the graph layer.
//
// All four rules follow the same philosophy as the index itself: when
// resolution is ambiguous the rule stays silent.  A flow finding must be
// actionable — it names the full chain (lock cycle, call path) that
// produced it.
#pragma once

#include <string>
#include <vector>

#include "lint/callgraph.h"
#include "lint/symbols.h"

namespace wearscope::lint {

/// One edge of the static lock-ordering graph: while holding `from`, the
/// program acquires `to` at `path`:`line`.  Lock names are canonical
/// ("Class::member_" or "fn()#local" for function-scoped locks).
struct LockEdge {
  std::string from;
  std::string to;
  std::string path;
  int line = 0;
};

/// The full lock-ordering graph (sorted, deduplicated) — exposed for
/// --graph-dump as well as the lock-order rule.
[[nodiscard]] std::vector<LockEdge> collect_lock_edges(
    const SymbolIndex& index, const CallGraph& graph);

/// lock-order: cycles in the lock-ordering graph are potential deadlocks.
void check_lock_order(const SymbolIndex& index, const CallGraph& graph,
                      std::vector<Finding>& out);

/// guard-coverage: a field of a lock-owning class written by two or more
/// member functions must be WS_GUARDED_BY-annotated (or atomic/const).
void check_guard_coverage(const SymbolIndex& index, std::vector<Finding>& out);

/// unchecked-result: a call to a project [[nodiscard]] function used as a
/// plain expression statement discards its result.
void check_unchecked_result(const SymbolIndex& index,
                            std::vector<Finding>& out);

/// unordered-flow: interprocedural unordered-emit — a function iterating
/// an unordered container, itself emission-free, whose return value can
/// reach an emitting caller within 3 call hops.
void check_unordered_flow(const SymbolIndex& index, const CallGraph& graph,
                          std::vector<Finding>& out);

}  // namespace wearscope::lint
