// Static call graph over a SymbolIndex.
//
// Edges come from name resolution on the token stream: an identifier in a
// function body directly applied to "(" that matches the unqualified name
// of an indexed function definition is an edge to *every* definition of
// that name (overloads and same-named methods of different classes are
// not disambiguated — the graph over-approximates, which is the safe
// direction for the flow rules built on it).  Calls to functions with no
// indexed body (std::, util:: declarations-only, macros) produce no edge.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "lint/symbols.h"

namespace wearscope::lint {

/// One resolved call expression inside a caller's body.
struct CallSite {
  std::size_t token = 0;  ///< Code-token index of the callee name.
  int line = 0;
  std::vector<std::size_t> callees;  ///< Indices into SymbolIndex::functions().
};

class CallGraph {
 public:
  [[nodiscard]] static CallGraph build(const SymbolIndex& index);

  /// Sorted, deduplicated callee function indices of function `fn`.
  [[nodiscard]] const std::vector<std::size_t>& callees(std::size_t fn) const {
    return callees_[fn];
  }
  /// Sorted, deduplicated caller function indices of function `fn`.
  [[nodiscard]] const std::vector<std::size_t>& callers(std::size_t fn) const {
    return callers_[fn];
  }
  /// Call sites inside `fn`'s body, in token order.
  [[nodiscard]] const std::vector<CallSite>& sites(std::size_t fn) const {
    return sites_[fn];
  }

 private:
  std::vector<std::vector<std::size_t>> callees_;
  std::vector<std::vector<std::size_t>> callers_;
  std::vector<std::vector<CallSite>> sites_;
};

}  // namespace wearscope::lint
