#include "lint/lexer.h"

#include <array>
#include <cctype>
#include <cstddef>
#include <string_view>

namespace wearscope::lint {

namespace {

[[nodiscard]] bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

[[nodiscard]] bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

[[nodiscard]] bool is_digit(char c) {
  return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

/// String-literal prefixes whose next character may open a raw string.
[[nodiscard]] bool is_raw_prefix(std::string_view ident) {
  return ident == "R" || ident == "u8R" || ident == "uR" || ident == "UR" ||
         ident == "LR";
}

/// Plain (non-raw) string/char prefixes: the quote belongs to the literal.
[[nodiscard]] bool is_literal_prefix(std::string_view ident) {
  return ident == "u8" || ident == "u" || ident == "U" || ident == "L";
}

constexpr std::array<std::string_view, 5> kPunct3 = {"<=>", "<<=", ">>=",
                                                     "...", "->*"};
constexpr std::array<std::string_view, 19> kPunct2 = {
    "::", "->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "|=", "&=", "^=", "##"};

class Lexer {
 public:
  explicit Lexer(std::string_view source) : src_(source) {}

  std::vector<Token> run() {
    std::vector<Token> tokens;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        at_line_start_ = true;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++pos_;
        continue;
      }
      const bool line_start = at_line_start_;
      at_line_start_ = false;
      if (c == '/' && peek(1) == '/') {
        tokens.push_back(line_comment());
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        tokens.push_back(block_comment());
        continue;
      }
      if (c == '#' && line_start) {
        tokens.push_back(directive());
        continue;
      }
      if (c == '"') {
        tokens.push_back(quoted(TokenKind::kString, '"'));
        continue;
      }
      if (c == '\'') {
        tokens.push_back(quoted(TokenKind::kCharLiteral, '\''));
        continue;
      }
      if (is_digit(c) || (c == '.' && is_digit(peek(1)))) {
        tokens.push_back(number());
        continue;
      }
      if (is_ident_start(c)) {
        Token t = identifier();
        // R"( ... )" and friends: the identifier was a literal prefix.
        if (pos_ < src_.size() && src_[pos_] == '"' && is_raw_prefix(t.text)) {
          tokens.push_back(raw_string(t));
          continue;
        }
        if (pos_ < src_.size() && is_literal_prefix(t.text) &&
            (src_[pos_] == '"' || src_[pos_] == '\'')) {
          const char q = src_[pos_];
          Token lit = quoted(
              q == '"' ? TokenKind::kString : TokenKind::kCharLiteral, q);
          lit.text = src_.substr(
              static_cast<std::size_t>(t.text.data() - src_.data()),
              t.text.size() + lit.text.size());
          lit.line = t.line;
          tokens.push_back(lit);
          continue;
        }
        tokens.push_back(t);
        continue;
      }
      tokens.push_back(punct());
    }
    return tokens;
  }

 private:
  [[nodiscard]] char peek(std::size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  [[nodiscard]] Token make(TokenKind kind, std::size_t begin, int line) const {
    return Token{kind, src_.substr(begin, pos_ - begin), line};
  }

  Token line_comment() {
    const std::size_t begin = pos_;
    const int line = line_;
    while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
    return make(TokenKind::kComment, begin, line);
  }

  Token block_comment() {
    const std::size_t begin = pos_;
    const int line = line_;
    pos_ += 2;
    while (pos_ < src_.size() &&
           !(src_[pos_] == '*' && peek(1) == '/')) {
      if (src_[pos_] == '\n') ++line_;
      ++pos_;
    }
    if (pos_ < src_.size()) pos_ += 2;
    return make(TokenKind::kComment, begin, line);
  }

  /// One logical preprocessor line; backslash continuations are consumed
  /// (the token text spans them).
  Token directive() {
    const std::size_t begin = pos_;
    const int line = line_;
    while (pos_ < src_.size() && src_[pos_] != '\n') {
      if (src_[pos_] == '\\' && peek(1) == '\n') {
        pos_ += 2;
        ++line_;
        continue;
      }
      ++pos_;
    }
    return make(TokenKind::kDirective, begin, line);
  }

  Token quoted(TokenKind kind, char quote) {
    const std::size_t begin = pos_;
    const int line = line_;
    ++pos_;  // opening quote
    while (pos_ < src_.size() && src_[pos_] != quote && src_[pos_] != '\n') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) ++pos_;
      ++pos_;
    }
    if (pos_ < src_.size() && src_[pos_] == quote) ++pos_;
    return make(kind, begin, line);
  }

  /// `prefix` is the already-lexed R/u8R/... identifier; cursor sits on '"'.
  Token raw_string(const Token& prefix) {
    const std::size_t begin =
        static_cast<std::size_t>(prefix.text.data() - src_.data());
    const int line = prefix.line;
    ++pos_;  // opening quote
    const std::size_t delim_begin = pos_;
    while (pos_ < src_.size() && src_[pos_] != '(') ++pos_;
    const std::string_view delim =
        src_.substr(delim_begin, pos_ - delim_begin);
    // Scan for )delim"
    while (pos_ < src_.size()) {
      if (src_[pos_] == '\n') ++line_;
      if (src_[pos_] == ')' &&
          src_.compare(pos_ + 1, delim.size(), delim) == 0 &&
          pos_ + 1 + delim.size() < src_.size() &&
          src_[pos_ + 1 + delim.size()] == '"') {
        pos_ += delim.size() + 2;
        break;
      }
      ++pos_;
    }
    return make(TokenKind::kString, begin, line);
  }

  Token number() {
    const std::size_t begin = pos_;
    const int line = line_;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (is_ident_char(c) || c == '.') {
        ++pos_;
        continue;
      }
      if (c == '\'' && is_ident_char(peek(1))) {  // digit separator
        pos_ += 2;
        continue;
      }
      if ((c == '+' || c == '-') && pos_ > begin) {
        const char prev = src_[pos_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          ++pos_;
          continue;
        }
      }
      break;
    }
    return make(TokenKind::kNumber, begin, line);
  }

  Token identifier() {
    const std::size_t begin = pos_;
    const int line = line_;
    while (pos_ < src_.size() && is_ident_char(src_[pos_])) ++pos_;
    return make(TokenKind::kIdentifier, begin, line);
  }

  Token punct() {
    const std::size_t begin = pos_;
    const int line = line_;
    for (const std::string_view op : kPunct3) {
      if (src_.compare(pos_, op.size(), op) == 0) {
        pos_ += op.size();
        return make(TokenKind::kPunct, begin, line);
      }
    }
    for (const std::string_view op : kPunct2) {
      if (src_.compare(pos_, op.size(), op) == 0) {
        pos_ += op.size();
        return make(TokenKind::kPunct, begin, line);
      }
    }
    ++pos_;
    return make(TokenKind::kPunct, begin, line);
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
};

}  // namespace

std::vector<Token> lex(std::string_view source) {
  return Lexer(source).run();
}

}  // namespace wearscope::lint
