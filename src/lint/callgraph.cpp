#include "lint/callgraph.h"

#include <algorithm>
#include <array>
#include <string_view>

namespace wearscope::lint {

namespace {

/// Identifiers that look like calls in the token stream but never are.
constexpr std::array<std::string_view, 14> kNotCalls = {
    "if",     "for",      "while",  "switch",        "catch", "return",
    "sizeof", "alignof",  "new",    "delete",        "assert",
    "defined", "decltype", "static_assert"};

[[nodiscard]] bool is_call_candidate(const Token& t) {
  if (t.kind != TokenKind::kIdentifier) return false;
  if (t.text.substr(0, 3) == "WS_") return false;
  for (const std::string_view k : kNotCalls)
    if (t.text == k) return false;
  return true;
}

}  // namespace

CallGraph CallGraph::build(const SymbolIndex& index) {
  CallGraph graph;
  const std::vector<FunctionSym>& fns = index.functions();
  graph.callees_.resize(fns.size());
  graph.callers_.resize(fns.size());
  graph.sites_.resize(fns.size());
  for (std::size_t fi = 0; fi < fns.size(); ++fi) {
    const FunctionSym& fn = fns[fi];
    const std::vector<Token>& c = index.files()[fn.file]->code;
    for (std::size_t k = fn.body_begin + 1; k + 1 < fn.body_end; ++k) {
      if (!is_call_candidate(c[k]) || !is_punct(c[k + 1], "(")) continue;
      const std::vector<std::size_t>* targets =
          index.functions_named(c[k].text);
      if (targets == nullptr) continue;
      CallSite site;
      site.token = k;
      site.line = c[k].line;
      for (const std::size_t ti : *targets)
        if (ti != fi) site.callees.push_back(ti);
      if (site.callees.empty()) continue;
      for (const std::size_t ti : site.callees)
        graph.callees_[fi].push_back(ti);
      graph.sites_[fi].push_back(std::move(site));
    }
    std::sort(graph.callees_[fi].begin(), graph.callees_[fi].end());
    graph.callees_[fi].erase(
        std::unique(graph.callees_[fi].begin(), graph.callees_[fi].end()),
        graph.callees_[fi].end());
  }
  for (std::size_t fi = 0; fi < fns.size(); ++fi)
    for (const std::size_t ti : graph.callees_[fi])
      graph.callers_[ti].push_back(fi);
  for (std::vector<std::size_t>& cs : graph.callers_) {
    std::sort(cs.begin(), cs.end());
    cs.erase(std::unique(cs.begin(), cs.end()), cs.end());
  }
  return graph;
}

}  // namespace wearscope::lint
