// Internal interface between the lint driver (linter.cpp) and the rule
// implementations (rules.cpp).  Everything here operates on token streams;
// nothing touches the filesystem, so fixture tests can exercise each rule
// with in-memory sources.
//
// Ordered std:: containers only in this module: the linter reports in
// sorted order and must itself pass its own unordered-emit rule.
#pragma once

#include <cstddef>
#include <functional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint/lexer.h"
#include "lint/linter.h"

namespace wearscope::lint {

/// Everything the rules know about one file, precomputed by the driver.
struct FileCtx {
  const Source* source = nullptr;
  std::vector<Token> tokens;      ///< Full stream (comments, directives).
  std::vector<Token> code;        ///< Code tokens only.
  std::vector<Token> directives;  ///< Preprocessor lines only.

  /// Names declared with std::unordered_* types, unioned over this file
  /// and its transitive project includes.
  std::set<std::string, std::less<>> unordered_names;
  /// Names declared in this file with ordered/sequence std:: types;
  /// shadows an identically-named unordered declaration from a header.
  std::set<std::string, std::less<>> ordered_names;
};

/// include path -> names that header provides, or null when unresolvable.
using ProvidedLookup =
    std::function<const std::set<std::string, std::less<>>*(std::string_view)>;

// --- Token helpers shared across the lint modules ----------------------
// (rules.cpp, symbols.cpp, flow_rules.cpp all walk the same streams.)

[[nodiscard]] bool is_ident(const Token& t, std::string_view s);
[[nodiscard]] bool is_punct(const Token& t, std::string_view s);

/// `i` points at "<": index just past the matching ">" (">>" closes two).
/// Bails at ";" or "{" so a stray comparison cannot eat the file.
[[nodiscard]] std::size_t skip_angles(const std::vector<Token>& c,
                                      std::size_t i);

/// `i` points at the opener: index just past its matching closer.
[[nodiscard]] std::size_t skip_balanced(const std::vector<Token>& c,
                                        std::size_t i, std::string_view open,
                                        std::string_view close);

/// Partner indices for the three bracket pairs: `paren[i]` is the index of
/// the token matching the "("/")" at i (-1 when unbalanced or not that
/// punctuator), same for bracket "[]" and brace "{}".  Lets analyses walk
/// token streams backwards over balanced groups.
struct TokenMatches {
  std::vector<std::ptrdiff_t> paren;
  std::vector<std::ptrdiff_t> bracket;
  std::vector<std::ptrdiff_t> brace;
};
[[nodiscard]] TokenMatches match_tokens(const std::vector<Token>& code);

/// True for identifiers that mark report/CSV/markdown emission (CsvWriter,
/// StudyReport, *Result, markdown helpers, stdio writers, ...).
[[nodiscard]] bool is_emission_marker(const Token& t);

/// True for the std sorting algorithms that launder hash order.
[[nodiscard]] bool is_sort_ident(const Token& t);

// --- Rules (ids as reported in findings) -------------------------------
void check_wallclock(const FileCtx& f, std::vector<Finding>& out);
void check_ambient_rand(const FileCtx& f, std::vector<Finding>& out);
void check_unordered_emit(const FileCtx& f, std::vector<Finding>& out);
void check_quarantine_pairing(const FileCtx& f, std::vector<Finding>& out);
void check_header_guard(const FileCtx& f, std::vector<Finding>& out);
void check_include_hygiene(const FileCtx& f, const ProvidedLookup& lookup,
                           std::vector<Finding>& out);
void check_pod_init(const FileCtx& f, std::vector<Finding>& out);

// --- Token-stream analyses shared by the driver ------------------------

/// Names declared with (or aliased to) std::unordered_* container types,
/// including functions returning them.
[[nodiscard]] std::set<std::string, std::less<>> collect_unordered_names(
    const std::vector<Token>& code);

/// Names declared with ordered std:: container types (std::-qualified).
[[nodiscard]] std::set<std::string, std::less<>> collect_ordered_names(
    const std::vector<Token>& code);

/// Namespace-scope names a header provides: type/alias/macro/function/
/// constant names.  Class and enum bodies are opaque (the outer name is
/// what an includer must reference anyway).
[[nodiscard]] std::set<std::string, std::less<>> collect_provided_names(
    const FileCtx& f);

/// Quoted `#include "..."` paths, in file order (with their lines).
struct IncludeLine {
  std::string path;
  int line = 0;
};
[[nodiscard]] std::vector<IncludeLine> quoted_includes(const FileCtx& f);

}  // namespace wearscope::lint
