// A lightweight C++ lexer for wearscope_lint.
//
// This is not a compiler front end: it tokenizes well enough to walk this
// project's own sources — identifiers, numbers, string/char literals
// (including raw strings), comments, preprocessor directives and the
// multi-character punctuators the rules care about (`::`, `<<`, ...).
// Comments and directives are kept as tokens so the rule engine can read
// suppression comments and `#include` lines without a second scan.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace wearscope::lint {

enum class TokenKind : std::uint8_t {
  kIdentifier,   ///< Keywords are not distinguished from identifiers.
  kNumber,       ///< Integer / floating literal, digit separators included.
  kString,       ///< Quoted literal, prefixes and raw strings included.
  kCharLiteral,  ///< 'x', '\n', ...
  kPunct,        ///< One punctuator (multi-char ops are one token).
  kComment,      ///< // or /* */, full text including the markers.
  kDirective,    ///< One logical preprocessor line, continuations joined.
};

/// One token. `text` views into the source buffer passed to lex(), which
/// must outlive the token vector.
struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string_view text;
  int line = 1;  ///< 1-based line of the token's first character.
};

/// Tokenizes `source`. Never throws: unrecognized bytes become single-char
/// punctuators, unterminated literals run to end of input.
[[nodiscard]] std::vector<Token> lex(std::string_view source);

}  // namespace wearscope::lint
