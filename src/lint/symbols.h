// Cross-file symbol index for wearscope::lint — the structural layer the
// flow-aware rules (flow_rules.h) and the call graph (callgraph.h) stand
// on.
//
// Built purely from the per-file token streams the per-file rules already
// use: no compiler front end, no filesystem.  For every file in the
// Project the index records
//
//   * class/struct definitions with their data members, including which
//     members are synchronization primitives (util::Mutex, util::SpinLock)
//     and which carry WS_GUARDED_BY annotations;
//   * method declarations' WS_REQUIRES / WS_ACQUIRE lock lists, so an
//     out-of-line `Class::method` definition inherits the contract its
//     in-class declaration spelled out;
//   * function definitions — free functions, in-class methods and
//     out-of-line `Class::method` bodies — with their token spans, so a
//     rule can walk exactly one function's body;
//   * the set of project function names declared [[nodiscard]].
//
// The parser is heuristic (it is linting this project, not arbitrary
// C++): lambdas, operator overloads and function-typed members are
// deliberately skipped, and anything ambiguous is left out of the index
// rather than guessed at — a missing symbol degrades a flow rule to
// silence, never to a false finding.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint/rules.h"

namespace wearscope::lint {

/// One data member of an indexed class.
struct FieldSym {
  std::string name;
  std::string guarded_by;  ///< WS_GUARDED_BY argument; empty = unannotated.
  int line = 0;
  bool is_mutex = false;   ///< util::Mutex / util::SpinLock typed.
  bool is_atomic = false;  ///< std::atomic<...> (self-synchronizing).
  bool is_const = false;   ///< `const` (immutable after construction).
};

/// One class/struct definition (nested classes index separately).
struct ClassSym {
  std::string name;
  std::size_t file = 0;  ///< Index into SymbolIndex::files().
  int line = 0;
  std::size_t body_begin = 0;  ///< Code-token index of '{'.
  std::size_t body_end = 0;    ///< Code-token index of the matching '}'.
  std::vector<FieldSym> fields;
  /// method name -> locks its in-class declaration WS_REQUIRES/WS_ACQUIREs.
  std::map<std::string, std::vector<std::string>, std::less<>>
      method_requires;

  [[nodiscard]] const FieldSym* field(std::string_view field_name) const;
  [[nodiscard]] bool owns_lock() const;
};

/// One function definition (a body, not a mere declaration).
struct FunctionSym {
  std::string name;        ///< Unqualified ("publish").
  std::string class_name;  ///< Enclosing or `X::`-qualifying class; may be
                           ///< empty (free function).
  std::size_t file = 0;    ///< Index into SymbolIndex::files().
  int line = 0;
  std::size_t decl_begin = 0;  ///< First declarator token (return type).
  std::size_t body_begin = 0;  ///< Code-token index of '{'.
  std::size_t body_end = 0;    ///< Code-token index of the matching '}'.
  /// Locks held on entry: WS_REQUIRES/WS_ACQUIRE on the definition plus
  /// the in-class declaration (raw argument spellings, uncanonicalized).
  std::vector<std::string> entry_locks;
  bool returns_void = false;

  [[nodiscard]] std::string qualified() const {
    return class_name.empty() ? name : class_name + "::" + name;
  }
};

/// The whole-Project symbol table.  Pointers into `files()` stay valid for
/// the index's lifetime; the FileCtx objects must outlive it.
class SymbolIndex {
 public:
  /// Indexes every file.  `files[i]` keeps position i in files().
  [[nodiscard]] static SymbolIndex build(
      std::vector<const FileCtx*> files);

  [[nodiscard]] const std::vector<const FileCtx*>& files() const noexcept {
    return files_;
  }
  [[nodiscard]] const std::vector<ClassSym>& classes() const noexcept {
    return classes_;
  }
  [[nodiscard]] const std::vector<FunctionSym>& functions() const noexcept {
    return functions_;
  }

  /// Indices into functions() with this unqualified name (sorted); null
  /// when the name resolves to nothing.
  [[nodiscard]] const std::vector<std::size_t>* functions_named(
      std::string_view name) const;

  /// Classes with this name (sorted indices into classes()); null when
  /// unknown.  Multiple hits are possible (same name in two namespaces).
  [[nodiscard]] const std::vector<std::size_t>* classes_named(
      std::string_view name) const;

  /// Innermost indexed class whose body span contains code token `k` of
  /// file `file`; null at namespace scope.
  [[nodiscard]] const ClassSym* enclosing_class(std::size_t file,
                                                std::size_t k) const;

  /// Innermost function whose body span contains code token `k` of file
  /// `file` (out-of-line definitions included); null outside any body.
  [[nodiscard]] const FunctionSym* enclosing_function(std::size_t file,
                                                      std::size_t k) const;

  /// Free (namespace-scope) project function names declared [[nodiscard]].
  [[nodiscard]] const std::set<std::string, std::less<>>& nodiscard_names()
      const noexcept {
    return nodiscard_;
  }

  /// [[nodiscard]] method names declared inside class `class_name`'s body;
  /// null when that class declares none.
  [[nodiscard]] const std::set<std::string, std::less<>>* nodiscard_methods(
      std::string_view class_name) const;

  /// True when file `file` itself declares free function `name`
  /// [[nodiscard]] — lets a same-file definition shadow an unrelated
  /// same-named nodiscard function from another file.
  [[nodiscard]] bool nodiscard_free_in(std::size_t file,
                                       std::string_view name) const;

 private:
  std::vector<const FileCtx*> files_;
  std::vector<ClassSym> classes_;
  std::vector<FunctionSym> functions_;
  std::map<std::string, std::vector<std::size_t>, std::less<>> fn_by_name_;
  std::map<std::string, std::vector<std::size_t>, std::less<>>
      class_by_name_;
  std::set<std::string, std::less<>> nodiscard_;
  std::map<std::string, std::set<std::string, std::less<>>, std::less<>>
      nodiscard_methods_;
  std::map<std::string, std::set<std::size_t>, std::less<>>
      nodiscard_free_files_;
};

}  // namespace wearscope::lint
