#include "lint/rules.h"

#include <array>
#include <cctype>
#include <cstddef>

namespace wearscope::lint {

bool is_ident(const Token& t, std::string_view s) {
  return t.kind == TokenKind::kIdentifier && t.text == s;
}

bool is_punct(const Token& t, std::string_view s) {
  return t.kind == TokenKind::kPunct && t.text == s;
}

std::size_t skip_angles(const std::vector<Token>& c, std::size_t i) {
  int depth = 0;
  for (; i < c.size(); ++i) {
    if (is_punct(c[i], "<")) {
      ++depth;
    } else if (is_punct(c[i], ">")) {
      if (--depth <= 0) return i + 1;
    } else if (is_punct(c[i], ">>")) {
      depth -= 2;
      if (depth <= 0) return i + 1;
    } else if (is_punct(c[i], ";") || is_punct(c[i], "{")) {
      return i;
    }
  }
  return i;
}

std::size_t skip_balanced(const std::vector<Token>& c, std::size_t i,
                          std::string_view open, std::string_view close) {
  int depth = 0;
  for (; i < c.size(); ++i) {
    if (is_punct(c[i], open)) ++depth;
    if (is_punct(c[i], close) && --depth == 0) return i + 1;
  }
  return i;
}

TokenMatches match_tokens(const std::vector<Token>& code) {
  TokenMatches m;
  m.paren.assign(code.size(), -1);
  m.bracket.assign(code.size(), -1);
  m.brace.assign(code.size(), -1);
  const auto pair_up = [&code](std::string_view open, std::string_view close,
                               std::vector<std::ptrdiff_t>& match) {
    std::vector<std::size_t> stack;
    for (std::size_t i = 0; i < code.size(); ++i) {
      if (is_punct(code[i], open)) {
        stack.push_back(i);
      } else if (is_punct(code[i], close) && !stack.empty()) {
        match[stack.back()] = static_cast<std::ptrdiff_t>(i);
        match[i] = static_cast<std::ptrdiff_t>(stack.back());
        stack.pop_back();
      }
    }
  };
  pair_up("(", ")", m.paren);
  pair_up("[", "]", m.bracket);
  pair_up("{", "}", m.brace);
  return m;
}

namespace {

using Code = std::vector<Token>;
using NameSet = std::set<std::string, std::less<>>;

[[nodiscard]] bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

[[nodiscard]] bool contains(std::string_view s, std::string_view needle) {
  return s.find(needle) != std::string_view::npos;
}

constexpr std::array<std::string_view, 4> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

constexpr std::array<std::string_view, 9> kOrderedTypes = {
    "map", "set", "multimap", "multiset", "vector",
    "array", "deque", "list", "string"};

[[nodiscard]] bool in_list(std::string_view s,
                           const auto& list) {
  for (const std::string_view e : list)
    if (s == e) return true;
  return false;
}

/// Fields of trace::QuarantineStats — touching one counts as accounting.
constexpr std::array<std::string_view, 11> kQuarantineCounters = {
    "corrupt_files", "corrupt_tails",     "corrupt_blocks",
    "corrupt_rows",  "duplicates",        "regressions",
    "unknown_tac",   "bad_host",          "reordered",
    "transient_retries", "dropped_after_retry"};

[[nodiscard]] bool mentions_quarantine(const Code& c, std::size_t begin,
                                       std::size_t end) {
  for (std::size_t i = begin; i < end && i < c.size(); ++i) {
    if (c[i].kind != TokenKind::kIdentifier) continue;
    if (contains(c[i].text, "quarantine") || contains(c[i].text, "Quarantine"))
      return true;
    if (in_list(c[i].text, kQuarantineCounters)) return true;
  }
  return false;
}

void add_finding(std::vector<Finding>& out, const FileCtx& f, int line,
                 std::string rule, std::string message) {
  out.push_back(Finding{f.source->path, line, std::move(rule),
                        std::move(message)});
}

/// After a container-type token (template args already skipped), capture
/// the declared name: skips cv/ref/pointer tokens, rejects qualified
/// names (`::iterator` and friends).
[[nodiscard]] const Token* declared_name(const Code& c, std::size_t i) {
  while (i < c.size() &&
         (is_punct(c[i], "&") || is_punct(c[i], "&&") || is_punct(c[i], "*") ||
          is_ident(c[i], "const")))
    ++i;
  if (i >= c.size() || c[i].kind != TokenKind::kIdentifier) return nullptr;
  if (i + 1 < c.size() && is_punct(c[i + 1], "::")) return nullptr;
  return &c[i];
}

}  // namespace

// ---------------------------------------------------------------------------
// Shared analyses
// ---------------------------------------------------------------------------

std::set<std::string, std::less<>> collect_unordered_names(const Code& c) {
  NameSet aliases;
  // Pass 1: `using Alias = ... unordered_* ... ;`
  for (std::size_t i = 0; i + 2 < c.size(); ++i) {
    if (!is_ident(c[i], "using") || c[i + 1].kind != TokenKind::kIdentifier ||
        !is_punct(c[i + 2], "="))
      continue;
    for (std::size_t j = i + 3; j < c.size() && !is_punct(c[j], ";"); ++j) {
      if (c[j].kind == TokenKind::kIdentifier &&
          in_list(c[j].text, kUnorderedTypes)) {
        aliases.insert(std::string(c[i + 1].text));
        break;
      }
    }
  }
  NameSet names = aliases;
  // Pass 2: declarations `unordered_map<K, V> name` (members, locals,
  // params, and functions returning unordered containers alike).
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (c[i].kind != TokenKind::kIdentifier) continue;
    const bool is_alias = aliases.contains(c[i].text);
    if (!is_alias && !in_list(c[i].text, kUnorderedTypes)) continue;
    std::size_t j = i + 1;
    if (j < c.size() && is_punct(c[j], "<")) j = skip_angles(c, j);
    if (const Token* name = declared_name(c, j))
      names.insert(std::string(name->text));
  }
  return names;
}

std::set<std::string, std::less<>> collect_ordered_names(const Code& c) {
  NameSet names;
  for (std::size_t i = 2; i < c.size(); ++i) {
    // Require std:: qualification: `map`/`set` alone are everyday words.
    if (c[i].kind != TokenKind::kIdentifier ||
        !in_list(c[i].text, kOrderedTypes) || !is_punct(c[i - 1], "::") ||
        !is_ident(c[i - 2], "std"))
      continue;
    std::size_t j = i + 1;
    if (j < c.size() && is_punct(c[j], "<")) j = skip_angles(c, j);
    if (const Token* name = declared_name(c, j))
      names.insert(std::string(name->text));
  }
  return names;
}

std::vector<IncludeLine> quoted_includes(const FileCtx& f) {
  std::vector<IncludeLine> out;
  for (const Token& d : f.directives) {
    std::string_view text = d.text;
    const std::size_t inc = text.find("include");
    if (inc == std::string_view::npos) continue;
    const std::size_t open = text.find('"', inc);
    if (open == std::string_view::npos) continue;
    const std::size_t close = text.find('"', open + 1);
    if (close == std::string_view::npos) continue;
    out.push_back(IncludeLine{
        std::string(text.substr(open + 1, close - open - 1)), d.line});
  }
  return out;
}

std::set<std::string, std::less<>> collect_provided_names(const FileCtx& f) {
  NameSet names;
  for (const Token& d : f.directives) {
    // `#define NAME ...` (and function-like macros).
    std::string_view text = d.text;
    const std::size_t def = text.find("define");
    if (def == std::string_view::npos || text.find('#') > def) continue;
    std::size_t i = def + 6;
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i])) != 0)
      ++i;
    std::size_t j = i;
    while (j < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[j])) != 0 ||
            text[j] == '_'))
      ++j;
    if (j > i) names.insert(std::string(text.substr(i, j - i)));
  }

  const Code& c = f.code;
  std::size_t i = 0;
  while (i < c.size()) {
    const Token& t = c[i];
    if (is_ident(t, "namespace")) {
      // Transparent scope: skip to the `{` (or `;` for aliases), then
      // keep walking inside.
      while (i < c.size() && !is_punct(c[i], "{") && !is_punct(c[i], ";"))
        ++i;
      ++i;
      continue;
    }
    if (is_ident(t, "template")) {
      ++i;
      if (i < c.size() && is_punct(c[i], "<")) i = skip_angles(c, i);
      continue;
    }
    if (is_ident(t, "using")) {
      if (i + 2 < c.size() && c[i + 1].kind == TokenKind::kIdentifier &&
          is_punct(c[i + 2], "="))
        names.insert(std::string(c[i + 1].text));
      while (i < c.size() && !is_punct(c[i], ";")) ++i;
      continue;
    }
    if (is_ident(t, "typedef")) {
      std::size_t last_ident = i;
      while (i < c.size() && !is_punct(c[i], ";")) {
        if (c[i].kind == TokenKind::kIdentifier) last_ident = i;
        ++i;
      }
      names.insert(std::string(c[last_ident].text));
      continue;
    }
    if (is_ident(t, "class") || is_ident(t, "struct") ||
        is_ident(t, "union") || is_ident(t, "enum")) {
      std::size_t j = i + 1;
      if (j < c.size() && is_ident(t, "enum") &&
          (is_ident(c[j], "class") || is_ident(c[j], "struct")))
        ++j;
      // Skip [[attributes]] and annotation macros (WS_CAPABILITY(...)).
      for (;;) {
        if (j + 1 < c.size() && is_punct(c[j], "[") && is_punct(c[j + 1], "[")) {
          while (j < c.size() && !is_punct(c[j], "]")) ++j;
          while (j < c.size() && is_punct(c[j], "]")) ++j;
          continue;
        }
        if (j + 1 < c.size() && c[j].kind == TokenKind::kIdentifier &&
            is_punct(c[j + 1], "(")) {
          j = skip_balanced(c, j + 1, "(", ")");
          continue;
        }
        break;
      }
      if (j < c.size() && c[j].kind == TokenKind::kIdentifier)
        names.insert(std::string(c[j].text));
      // Opaque body: the outer name is the referencable one.
      while (j < c.size() && !is_punct(c[j], "{") && !is_punct(c[j], ";")) ++j;
      i = j < c.size() && is_punct(c[j], "{") ? skip_balanced(c, j, "{", "}")
                                              : j + 1;
      continue;
    }
    if (is_punct(t, "(")) {
      if (i > 0 && c[i - 1].kind == TokenKind::kIdentifier)
        names.insert(std::string(c[i - 1].text));
      i = skip_balanced(c, i, "(", ")");
      continue;
    }
    if (is_punct(t, "{")) {
      if (i > 0 && c[i - 1].kind == TokenKind::kIdentifier)
        names.insert(std::string(c[i - 1].text));
      i = skip_balanced(c, i, "{", "}");
      continue;
    }
    if (is_punct(t, "=")) {
      if (i > 0 && c[i - 1].kind == TokenKind::kIdentifier)
        names.insert(std::string(c[i - 1].text));
      ++i;
      continue;
    }
    ++i;
  }
  return names;
}

// ---------------------------------------------------------------------------
// wallclock
// ---------------------------------------------------------------------------

namespace {

constexpr std::array<std::string_view, 8> kWallclockCalls = {
    "time",      "clock",  "gettimeofday", "localtime",
    "localtime_r", "gmtime", "mktime",       "ctime"};

}  // namespace

void check_wallclock(const FileCtx& f, std::vector<Finding>& out) {
  const Code& c = f.code;
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (c[i].kind != TokenKind::kIdentifier) continue;
    // std::chrono::system_clock::now() — ambient calendar time.
    if (c[i].text == "system_clock" && i + 4 < c.size() &&
        is_punct(c[i + 1], "::") && is_ident(c[i + 2], "now") &&
        is_punct(c[i + 3], "(") && is_punct(c[i + 4], ")")) {
      add_finding(out, f, c[i].line, "wallclock",
                  "std::chrono::system_clock::now() reads ambient wall-clock "
                  "time; results must be a function of the trace and seeds "
                  "(use record timestamps or steady_clock for durations)");
      continue;
    }
    if (!in_list(c[i].text, kWallclockCalls)) continue;
    if (i + 1 >= c.size() || !is_punct(c[i + 1], "(")) continue;
    if (i > 0 && (is_punct(c[i - 1], ".") || is_punct(c[i - 1], "->")))
      continue;  // member call on some project type
    if (i > 1 && is_punct(c[i - 1], "::") && !is_ident(c[i - 2], "std"))
      continue;  // qualified into a non-std namespace
    add_finding(out, f, c[i].line, "wallclock",
                "call to '" + std::string(c[i].text) +
                    "(' reads ambient wall-clock time, which breaks run-to-"
                    "run reproducibility");
  }
}

// ---------------------------------------------------------------------------
// ambient-rand
// ---------------------------------------------------------------------------

namespace {

constexpr std::array<std::string_view, 12> kRandEngines = {
    "random_device", "mt19937",        "mt19937_64",
    "minstd_rand",   "minstd_rand0",   "default_random_engine",
    "ranlux24",      "ranlux48",       "knuth_b",
    "ranlux24_base", "ranlux48_base",  "random_shuffle"};

constexpr std::array<std::string_view, 4> kRandCalls = {"rand", "srand",
                                                        "drand48", "lrand48"};

}  // namespace

void check_ambient_rand(const FileCtx& f, std::vector<Finding>& out) {
  const Code& c = f.code;
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (c[i].kind != TokenKind::kIdentifier) continue;
    const std::string_view id = c[i].text;
    if (in_list(id, kRandCalls)) {
      if (i + 1 >= c.size() || !is_punct(c[i + 1], "(")) continue;
      if (i > 0 && (is_punct(c[i - 1], ".") || is_punct(c[i - 1], "->")))
        continue;
      add_finding(out, f, c[i].line, "ambient-rand",
                  "'" + std::string(id) +
                      "(' draws from ambient process-global randomness; use "
                      "util::Pcg32 forks keyed on stable identifiers");
      continue;
    }
    if (in_list(id, kRandEngines) || ends_with(id, "_distribution")) {
      add_finding(
          out, f, c[i].line, "ambient-rand",
          "'" + std::string(id) +
              "' is non-reproducible across platforms or runs "
              "(std::*_distribution is implementation-defined; "
              "std::random_device is ambient); use util::Pcg32");
    }
  }
}

// ---------------------------------------------------------------------------
// unordered-emit
// ---------------------------------------------------------------------------

namespace {

constexpr std::array<std::string_view, 13> kEmissionIdents = {
    "CsvWriter", "ostream",    "cout",   "cerr",       "printf",
    "fprintf",   "fputs",      "puts",   "FigureData", "Series",
    "StudyReport", "LiveSnapshot", "snprintf"};

}  // namespace

bool is_emission_marker(const Token& t) {
  if (t.kind != TokenKind::kIdentifier) return false;
  return in_list(t.text, kEmissionIdents) || ends_with(t.text, "Result") ||
         contains(t.text, "markdown") || contains(t.text, "Markdown");
}

bool is_sort_ident(const Token& t) {
  return t.kind == TokenKind::kIdentifier &&
         (t.text == "sort" || t.text == "stable_sort" ||
          t.text == "nth_element" || t.text == "partial_sort");
}

namespace {

/// Innermost enclosing open-brace index for every token (-1 when at
/// namespace/class scope), plus the match for each brace.
struct BraceInfo {
  std::vector<std::ptrdiff_t> enclosing;  // per token
  std::vector<std::ptrdiff_t> match;      // open -> close, close -> open
};

[[nodiscard]] BraceInfo analyze_braces(const Code& c) {
  BraceInfo info;
  info.enclosing.assign(c.size(), -1);
  info.match.assign(c.size(), -1);
  std::vector<std::size_t> stack;
  for (std::size_t i = 0; i < c.size(); ++i) {
    info.enclosing[i] =
        stack.empty() ? -1 : static_cast<std::ptrdiff_t>(stack.back());
    if (is_punct(c[i], "{")) {
      stack.push_back(i);
    } else if (is_punct(c[i], "}") && !stack.empty()) {
      const std::size_t open = stack.back();
      stack.pop_back();
      info.match[open] = static_cast<std::ptrdiff_t>(i);
      info.match[i] = static_cast<std::ptrdiff_t>(open);
    }
  }
  return info;
}

/// A `{` opens a function-ish body when the tokens right before it walk
/// back to a `)` through declarator trivia (const, noexcept, trailing
/// return types, ctor init lists are already `)`-terminated).
[[nodiscard]] bool is_function_brace(const Code& c, std::size_t open) {
  std::size_t budget = 24;
  std::size_t i = open;
  while (i > 0 && budget-- > 0) {
    --i;
    const Token& t = c[i];
    if (is_punct(t, ")")) return true;
    const bool trivia =
        is_ident(t, "const") || is_ident(t, "noexcept") ||
        is_ident(t, "override") || is_ident(t, "final") ||
        is_ident(t, "mutable") || is_punct(t, "->") || is_punct(t, "::") ||
        is_punct(t, "<") || is_punct(t, ">") || is_punct(t, ">>") ||
        is_punct(t, "&") || is_punct(t, "&&") || is_punct(t, "*") ||
        is_punct(t, ",") || t.kind == TokenKind::kIdentifier ||
        t.kind == TokenKind::kNumber;
    if (!trivia) return false;
  }
  return false;
}

/// [begin, end] token span of the function definition containing token k:
/// outermost function-ish brace plus its declarator/return type.
struct Span {
  std::size_t begin = 0;
  std::size_t end = 0;
  bool found = false;
};

[[nodiscard]] Span function_span(const Code& c, const BraceInfo& braces,
                                 std::size_t k) {
  std::ptrdiff_t best = -1;
  for (std::ptrdiff_t open = braces.enclosing[k]; open >= 0;
       open = braces.enclosing[static_cast<std::size_t>(open)]) {
    if (is_function_brace(c, static_cast<std::size_t>(open))) best = open;
  }
  if (best < 0 || braces.match[static_cast<std::size_t>(best)] < 0)
    return {};
  // Walk back over the declarator to the previous statement boundary so
  // the span includes the return type (e.g. `ActivityResult`).
  std::size_t begin = static_cast<std::size_t>(best);
  while (begin > 0) {
    const Token& t = c[begin - 1];
    if (is_punct(t, ";") || is_punct(t, "}") || is_punct(t, "{")) break;
    --begin;
  }
  return Span{begin,
              static_cast<std::size_t>(
                  braces.match[static_cast<std::size_t>(best)]),
              true};
}

}  // namespace

void check_unordered_emit(const FileCtx& f, std::vector<Finding>& out) {
  const Code& c = f.code;
  if (f.unordered_names.empty()) return;
  const BraceInfo braces = analyze_braces(c);

  for (std::size_t i = 0; i + 1 < c.size(); ++i) {
    if (!is_ident(c[i], "for") || !is_punct(c[i + 1], "(")) continue;
    // Find the `:` of a range-for at paren depth 1 (skipping any C++20
    // init-statement semicolons and structured-binding brackets).
    int paren = 0;
    int bracket = 0;
    std::size_t colon = 0;
    std::size_t close = 0;
    for (std::size_t j = i + 1; j < c.size(); ++j) {
      if (is_punct(c[j], "(")) ++paren;
      if (is_punct(c[j], ")") && --paren == 0) {
        close = j;
        break;
      }
      if (is_punct(c[j], "[")) ++bracket;
      if (is_punct(c[j], "]")) --bracket;
      if (is_punct(c[j], ";") && paren == 1) colon = 0;  // init-statement
      if (colon == 0 && is_punct(c[j], ":") && paren == 1 && bracket == 0)
        colon = j;
    }
    if (colon == 0 || close == 0) continue;  // classic for / malformed

    // Does the range expression name an unordered container?
    std::string_view hit;
    for (std::size_t j = colon + 1; j < close; ++j) {
      if (c[j].kind != TokenKind::kIdentifier) continue;
      if (f.ordered_names.contains(c[j].text)) continue;  // local shadow
      if (f.unordered_names.contains(c[j].text)) {
        hit = c[j].text;
        break;
      }
    }
    if (hit.empty()) continue;

    const Span span = function_span(c, braces, i);
    if (!span.found) continue;
    bool emission = false;
    for (std::size_t j = span.begin; j <= span.end; ++j)
      if (is_emission_marker(c[j])) {
        emission = true;
        break;
      }
    if (!emission) continue;
    bool sorted = false;
    for (std::size_t j = i; j <= span.end; ++j)
      if (is_sort_ident(c[j])) {
        sorted = true;
        break;
      }
    if (sorted) continue;
    add_finding(out, f, c[i].line, "unordered-emit",
                "iteration over unordered container '" + std::string(hit) +
                    "' feeds report/CSV/markdown emission without an "
                    "intervening sort; hash order is not part of the "
                    "determinism contract");
  }
}

// ---------------------------------------------------------------------------
// quarantine-pairing
// ---------------------------------------------------------------------------

void check_quarantine_pairing(const FileCtx& f, std::vector<Finding>& out) {
  const Code& c = f.code;
  for (std::size_t i = 0; i + 1 < c.size(); ++i) {
    // catch (... ParseError ...) { ... } must account or rethrow.
    if (is_ident(c[i], "catch") && is_punct(c[i + 1], "(")) {
      const std::size_t close = skip_balanced(c, i + 1, "(", ")");
      bool parse_error = false;
      for (std::size_t j = i + 2; j + 1 < close; ++j)
        if (c[j].kind == TokenKind::kIdentifier &&
            contains(c[j].text, "ParseError"))
          parse_error = true;
      if (!parse_error || close >= c.size() || !is_punct(c[close], "{"))
        continue;
      const std::size_t body_end = skip_balanced(c, close, "{", "}");
      bool ok = mentions_quarantine(c, close, body_end);
      for (std::size_t j = close; j < body_end && !ok; ++j)
        if (is_ident(c[j], "throw")) ok = true;
      if (!ok)
        add_finding(out, f, c[i].line, "quarantine-pairing",
                    "catch of ParseError neither updates quarantine "
                    "accounting nor rethrows; skipped input must be counted "
                    "(trace::QuarantineStats)");
      continue;
    }
    // A *_lenient reader definition must account in its own body.
    if (c[i].kind == TokenKind::kIdentifier && contains(c[i].text, "lenient")) {
      std::size_t j = i + 1;
      if (j < c.size() && is_punct(c[j], "<")) j = skip_angles(c, j);
      if (j >= c.size() || !is_punct(c[j], "(")) continue;
      j = skip_balanced(c, j, "(", ")");
      while (j < c.size() &&
             (is_ident(c[j], "const") || is_ident(c[j], "noexcept")))
        ++j;
      if (j >= c.size() || !is_punct(c[j], "{")) continue;  // decl or call
      const std::size_t body_end = skip_balanced(c, j, "{", "}");
      if (!mentions_quarantine(c, j, body_end))
        add_finding(out, f, c[i].line, "quarantine-pairing",
                    "lenient reader '" + std::string(c[i].text) +
                        "' has no quarantine accounting; every skipped "
                        "record or early return must increment a "
                        "QuarantineStats counter");
    }
  }
}

// ---------------------------------------------------------------------------
// header-guard
// ---------------------------------------------------------------------------

namespace {

/// First directive word after '#', whitespace-tolerant (`#  pragma`).
[[nodiscard]] std::string_view directive_word(std::string_view text) {
  std::size_t i = text.find('#');
  if (i == std::string_view::npos) return {};
  ++i;
  while (i < text.size() &&
         std::isspace(static_cast<unsigned char>(text[i])) != 0)
    ++i;
  std::size_t j = i;
  while (j < text.size() &&
         std::isalpha(static_cast<unsigned char>(text[j])) != 0)
    ++j;
  return text.substr(i, j - i);
}

}  // namespace

void check_header_guard(const FileCtx& f, std::vector<Finding>& out) {
  if (!ends_with(f.source->path, ".h")) return;
  const Token* first = nullptr;
  const Token* second = nullptr;
  for (const Token& t : f.tokens) {
    if (t.kind == TokenKind::kComment) continue;
    if (first == nullptr) {
      first = &t;
    } else {
      second = &t;
      break;
    }
  }
  if (first == nullptr) return;  // empty header
  if (first->kind == TokenKind::kDirective) {
    const std::string_view word = directive_word(first->text);
    if (word == "pragma" && contains(first->text, "once")) return;
    if (word == "ifndef" && second != nullptr &&
        second->kind == TokenKind::kDirective &&
        directive_word(second->text) == "define")
      return;
  }
  add_finding(out, f, first->line, "header-guard",
              "header does not start with '#pragma once' (or a classic "
              "include guard)");
}

// ---------------------------------------------------------------------------
// include-hygiene
// ---------------------------------------------------------------------------

namespace {

[[nodiscard]] std::string_view path_stem(std::string_view path) {
  const std::size_t slash = path.rfind('/');
  if (slash != std::string_view::npos) path = path.substr(slash + 1);
  const std::size_t dot = path.rfind('.');
  return dot == std::string_view::npos ? path : path.substr(0, dot);
}

}  // namespace

void check_include_hygiene(const FileCtx& f, const ProvidedLookup& lookup,
                           std::vector<Finding>& out) {
  NameSet used;
  for (const Token& t : f.code)
    if (t.kind == TokenKind::kIdentifier) used.insert(std::string(t.text));
  // Macros referenced from other preprocessor lines count as uses.
  for (const Token& d : f.directives) {
    std::string_view text = d.text;
    std::size_t i = 0;
    while (i < text.size()) {
      if (std::isalpha(static_cast<unsigned char>(text[i])) != 0 ||
          text[i] == '_') {
        std::size_t j = i;
        while (j < text.size() &&
               (std::isalnum(static_cast<unsigned char>(text[j])) != 0 ||
                text[j] == '_'))
          ++j;
        used.insert(std::string(text.substr(i, j - i)));
        i = j;
      } else {
        ++i;
      }
    }
  }

  for (const IncludeLine& inc : quoted_includes(f)) {
    if (path_stem(inc.path) == path_stem(f.source->path))
      continue;  // a .cpp including its interface header
    const NameSet* provided = lookup(inc.path);
    if (provided == nullptr || provided->empty()) continue;
    bool referenced = false;
    for (const std::string& name : *provided)
      if (used.contains(name)) {
        referenced = true;
        break;
      }
    if (!referenced)
      add_finding(out, f, inc.line, "include-hygiene",
                  "include \"" + inc.path +
                      "\" is unused: nothing this header declares is "
                      "referenced here");
  }
}

// ---------------------------------------------------------------------------
// pod-init
// ---------------------------------------------------------------------------

namespace {

constexpr std::array<std::string_view, 26> kScalarTypes = {
    "bool",      "char",     "wchar_t",  "short",     "int",      "long",
    "unsigned",  "signed",   "float",    "double",    "size_t",   "ptrdiff_t",
    "int8_t",    "int16_t",  "int32_t",  "int64_t",   "uint8_t",  "uint16_t",
    "uint32_t",  "uint64_t", "intptr_t", "uintptr_t", "SimTime",  "UserId",
    "Tac",       "SectorId"};

constexpr std::array<std::string_view, 9> kMemberSkipKeywords = {
    "using",  "friend", "static", "typedef", "template",
    "struct", "class",  "enum",   "union"};

}  // namespace

void check_pod_init(const FileCtx& f, std::vector<Finding>& out) {
  const std::string& path = f.source->path;
  if (!contains(path, "trace/") && !contains(path, "live/") &&
      !contains(path, "serve/") && !contains(path, "sched/") &&
      !contains(path, "sketch/") && !contains(path, "fed/")) {
    return;
  }
  const Code& c = f.code;
  for (std::size_t i = 0; i + 1 < c.size(); ++i) {
    if (!is_ident(c[i], "struct") && !is_ident(c[i], "class")) continue;
    if (i > 0 && is_ident(c[i - 1], "enum")) continue;
    std::size_t j = i + 1;
    while (j + 1 < c.size() && c[j].kind == TokenKind::kIdentifier &&
           is_punct(c[j + 1], "("))
      j = skip_balanced(c, j + 1, "(", ")");  // annotation macro
    if (j >= c.size() || c[j].kind != TokenKind::kIdentifier) continue;
    ++j;
    while (j < c.size() && is_ident(c[j], "final")) ++j;
    if (j < c.size() && is_punct(c[j], ":"))  // base list
      while (j < c.size() && !is_punct(c[j], "{") && !is_punct(c[j], ";")) ++j;
    if (j >= c.size() || !is_punct(c[j], "{")) continue;  // fwd decl
    const std::size_t body_end = skip_balanced(c, j, "{", "}") - 1;

    // Member declarations at depth 1 of this body.
    std::size_t k = j + 1;
    while (k < body_end) {
      // Access labels.
      if ((is_ident(c[k], "public") || is_ident(c[k], "private") ||
           is_ident(c[k], "protected")) &&
          k + 1 < body_end && is_punct(c[k + 1], ":")) {
        k += 2;
        continue;
      }
      // Collect one declaration up to its ';' at this depth.
      std::vector<std::size_t> decl;
      bool has_paren = false;
      bool has_init = false;
      bool skip = false;
      while (k < body_end && !is_punct(c[k], ";")) {
        if (is_punct(c[k], "{")) {
          has_init = true;  // brace initializer (or a body we skip whole)
          k = skip_balanced(c, k, "{", "}");
          continue;
        }
        if (is_punct(c[k], "(")) {
          has_paren = true;
          k = skip_balanced(c, k, "(", ")");
          continue;
        }
        if (is_punct(c[k], "<")) {
          k = skip_angles(c, k);  // template args never type the member
          continue;
        }
        if (is_punct(c[k], "=")) has_init = true;
        if (c[k].kind == TokenKind::kIdentifier &&
            in_list(c[k].text, kMemberSkipKeywords))
          skip = true;
        decl.push_back(k);
        ++k;
      }
      ++k;  // past ';'
      if (skip || has_paren || has_init || decl.size() < 2) continue;
      bool scalar = false;
      for (std::size_t a = 0; a + 1 < decl.size(); ++a) {
        const Token& t = c[decl[a]];
        if (is_punct(t, "*") ||
            (t.kind == TokenKind::kIdentifier &&
             in_list(t.text, kScalarTypes)))
          scalar = true;
        if (is_punct(t, "&") || is_punct(t, "&&")) scalar = false;
      }
      if (!scalar) continue;
      const Token& name = c[decl.back()];
      if (name.kind != TokenKind::kIdentifier) continue;
      add_finding(out, f, name.line, "pod-init",
                  "scalar field '" + std::string(name.text) +
                      "' has no default initializer; uninitialized event "
                      "fields leak indeterminate bytes into snapshots");
    }
    i = body_end;
  }
}

}  // namespace wearscope::lint
