#include "lint/symbols.h"

#include <algorithm>
#include <array>
#include <utility>

namespace wearscope::lint {

namespace {

using Code = std::vector<Token>;

[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

/// Keywords that can precede a "(... ) {" shape without being a function.
constexpr std::array<std::string_view, 10> kNotFunctionNames = {
    "if",     "for",    "while", "switch",   "catch",
    "return", "sizeof", "new",   "delete",   "alignof"};

constexpr std::array<std::string_view, 5> kTypeIntroducers = {
    "class", "struct", "union", "enum", "namespace"};

constexpr std::array<std::string_view, 9> kMemberSkipKeywords = {
    "using",  "friend", "static", "typedef", "template",
    "struct", "class",  "enum",   "union"};

[[nodiscard]] bool in_list(std::string_view s, const auto& list) {
  for (const std::string_view e : list)
    if (s == e) return true;
  return false;
}

/// All `WS_REQUIRES(a, b)`-style arguments: the last identifier of every
/// comma-separated expression between `open` (the "(") and its match.
void collect_lock_args(const Code& c, std::size_t open, std::ptrdiff_t close,
                       std::vector<std::string>& out) {
  if (close < 0) return;
  std::string last;
  bool negated = false;  // `WS_REQUIRES(!m)` means must NOT hold m
  for (std::size_t i = open + 1; i < static_cast<std::size_t>(close); ++i) {
    if (c[i].kind == TokenKind::kIdentifier) last = std::string(c[i].text);
    if (is_punct(c[i], "!")) negated = true;
    if (is_punct(c[i], ",")) {
      if (!last.empty() && !negated) out.push_back(std::move(last));
      last.clear();
      negated = false;
    }
  }
  if (!last.empty() && !negated) out.push_back(std::move(last));
}

/// Walks one class body and fills fields + method_requires.  Modeled on
/// the pod-init member walker, but WS_* annotation macros are transparent
/// (their parens must not make a field look like a method) and in-class
/// method definition bodies terminate the declaration without a ';'.
void parse_members(const Code& c, const TokenMatches& matches, ClassSym& cls) {
  std::size_t k = cls.body_begin + 1;
  const std::size_t body_end = cls.body_end;
  while (k < body_end) {
    if ((is_ident(c[k], "public") || is_ident(c[k], "private") ||
         is_ident(c[k], "protected")) &&
        k + 1 < body_end && is_punct(c[k + 1], ":")) {
      k += 2;
      continue;
    }
    std::vector<std::size_t> decl;
    std::string guarded_by;
    std::string method_name;
    std::vector<std::string> requires_locks;
    bool has_paren = false;
    bool has_init = false;
    bool skip = false;
    std::size_t name_limit = 0;  ///< decl tokens before the initializer
    while (k < body_end) {
      const Token& t = c[k];
      if (is_punct(t, ";")) {
        ++k;
        break;
      }
      if (t.kind == TokenKind::kIdentifier && starts_with(t.text, "WS_")) {
        const bool call = k + 1 < body_end && is_punct(c[k + 1], "(");
        if (call) {
          if (t.text == "WS_GUARDED_BY" || t.text == "WS_PT_GUARDED_BY") {
            std::vector<std::string> args;
            collect_lock_args(c, k + 1, matches.paren[k + 1], args);
            if (!args.empty()) guarded_by = args.back();
          } else if (t.text == "WS_REQUIRES" || t.text == "WS_ACQUIRE") {
            collect_lock_args(c, k + 1, matches.paren[k + 1], requires_locks);
          }
          k = skip_balanced(c, k + 1, "(", ")");
        } else {
          ++k;
        }
        continue;
      }
      if (is_punct(t, "{")) {
        if (has_paren) {
          // In-class method definition: the body ends the declaration.
          k = skip_balanced(c, k, "{", "}");
          if (k < body_end && is_punct(c[k], ";")) ++k;
          break;
        }
        has_init = true;  // brace initializer (or a nested type's body)
        k = skip_balanced(c, k, "{", "}");
        continue;
      }
      if (is_punct(t, "(")) {
        if (!has_paren && method_name.empty() && !decl.empty() &&
            c[decl.back()].kind == TokenKind::kIdentifier)
          method_name = std::string(c[decl.back()].text);
        has_paren = true;
        k = skip_balanced(c, k, "(", ")");
        continue;
      }
      if (is_punct(t, "<")) {
        k = skip_angles(c, k);
        continue;
      }
      if (is_punct(t, "=") && !has_init) {
        has_init = true;
        name_limit = decl.size();  // the name precedes the initializer
      }
      if (t.kind == TokenKind::kIdentifier &&
          in_list(t.text, kMemberSkipKeywords))
        skip = true;
      decl.push_back(k);
      ++k;
    }
    if (!has_init || name_limit == 0) name_limit = decl.size();
    if (skip) continue;
    if (has_paren) {
      if (!method_name.empty() && !requires_locks.empty())
        cls.method_requires[method_name] = std::move(requires_locks);
      continue;
    }
    if (has_init && decl.empty()) continue;
    if (decl.size() < 2) continue;  // need at least a type and a name
    FieldSym field;
    for (std::size_t a = 0; a < name_limit; ++a) {
      const Token& t = c[decl[a]];
      if (t.kind != TokenKind::kIdentifier) continue;
      if (t.text == "Mutex" || t.text == "SpinLock") field.is_mutex = true;
      if (t.text == "atomic") field.is_atomic = true;
      if (t.text == "const") field.is_const = true;
    }
    // The declared name: the last identifier before any initializer
    // (bitfield widths and array extents lex as numbers, not identifiers).
    const auto name_it = std::find_if(
        decl.rend() - static_cast<std::ptrdiff_t>(name_limit), decl.rend(),
        [&](std::size_t idx) {
          return c[idx].kind == TokenKind::kIdentifier;
        });
    if (name_it == decl.rend()) continue;
    const Token& name = c[*name_it];
    // Reject qualified trailing names (`Foo::iterator` style artifacts).
    if (*name_it + 1 < c.size() && is_punct(c[*name_it + 1], "::")) continue;
    field.name = std::string(name.text);
    field.guarded_by = std::move(guarded_by);
    field.line = name.line;
    cls.fields.push_back(std::move(field));
  }
}

/// Scans one file for class/struct definitions (incl. nested ones).
void scan_classes(const FileCtx& f, std::size_t file_index,
                  const TokenMatches& matches,
                  std::vector<ClassSym>& out) {
  const Code& c = f.code;
  for (std::size_t i = 0; i + 1 < c.size(); ++i) {
    if (!is_ident(c[i], "struct") && !is_ident(c[i], "class")) continue;
    if (i > 0 && is_ident(c[i - 1], "enum")) continue;
    std::size_t j = i + 1;
    // Skip [[attributes]] and WS_* annotation macros before the name.
    for (;;) {
      if (j + 1 < c.size() && is_punct(c[j], "[") && is_punct(c[j + 1], "[")) {
        while (j < c.size() && !is_punct(c[j], "]")) ++j;
        while (j < c.size() && is_punct(c[j], "]")) ++j;
        continue;
      }
      if (j < c.size() && c[j].kind == TokenKind::kIdentifier &&
          starts_with(c[j].text, "WS_")) {
        if (j + 1 < c.size() && is_punct(c[j + 1], "(")) {
          j = skip_balanced(c, j + 1, "(", ")");
        } else {
          ++j;
        }
        continue;
      }
      break;
    }
    if (j >= c.size() || c[j].kind != TokenKind::kIdentifier) continue;
    ClassSym cls;
    cls.name = std::string(c[j].text);
    cls.line = c[j].line;
    cls.file = file_index;
    ++j;
    if (j < c.size() && is_punct(c[j], "<")) j = skip_angles(c, j);
    while (j < c.size() && is_ident(c[j], "final")) ++j;
    if (j < c.size() && is_punct(c[j], ":"))  // base list
      while (j < c.size() && !is_punct(c[j], "{") && !is_punct(c[j], ";")) ++j;
    if (j >= c.size() || !is_punct(c[j], "{")) continue;  // fwd decl
    if (matches.brace[j] < 0) continue;
    cls.body_begin = j;
    cls.body_end = static_cast<std::size_t>(matches.brace[j]);
    parse_members(c, matches, cls);
    out.push_back(std::move(cls));
  }
}

/// One [[nodiscard]] function declaration: the name and where it sits
/// (so the builder can tell class methods from free functions).
struct NodiscardDecl {
  std::size_t token = 0;
  std::string name;
};

/// Scans one file for [[nodiscard]]-declared function names.
void scan_nodiscard(const FileCtx& f, std::vector<NodiscardDecl>& out) {
  const Code& c = f.code;
  for (std::size_t i = 1; i < c.size(); ++i) {
    if (!is_ident(c[i], "nodiscard") || !is_punct(c[i - 1], "[")) continue;
    std::size_t j = i;
    while (j < c.size() &&
           !(is_punct(c[j], "]") && j + 1 < c.size() &&
             is_punct(c[j + 1], "]")))
      ++j;
    j += 2;
    // First identifier directly applied to "(" before the declaration
    // ends: that is the declared function's name.
    while (j < c.size()) {
      const Token& t = c[j];
      if (is_punct(t, ";") || is_punct(t, "{") || is_punct(t, "}")) break;
      if (is_ident(t, "operator")) break;  // conversion/overload: skip
      if (is_punct(t, "<")) {
        j = skip_angles(c, j);
        continue;
      }
      if (t.kind == TokenKind::kIdentifier && j + 1 < c.size() &&
          is_punct(c[j + 1], "(") && !starts_with(t.text, "WS_")) {
        out.push_back({j, std::string(t.text)});
        break;
      }
      ++j;
    }
  }
}

/// Walks back over one "<...>" template-argument group; `i` points at the
/// ">".  Returns the index before the matching "<" (best effort).
[[nodiscard]] std::ptrdiff_t skip_angles_back(const Code& c,
                                              std::ptrdiff_t i) {
  int depth = 0;
  for (; i >= 0; --i) {
    if (is_punct(c[static_cast<std::size_t>(i)], ">")) ++depth;
    if (is_punct(c[static_cast<std::size_t>(i)], ">>")) depth += 2;
    if (is_punct(c[static_cast<std::size_t>(i)], "<") && --depth <= 0)
      return i - 1;
    if (is_punct(c[static_cast<std::size_t>(i)], ";") ||
        is_punct(c[static_cast<std::size_t>(i)], "{") ||
        is_punct(c[static_cast<std::size_t>(i)], "}"))
      return i;  // bail: stray comparison, not template args
  }
  return i;
}

/// Scans one file for function definitions.
void scan_functions(const FileCtx& f, std::size_t file_index,
                    const TokenMatches& matches,
                    std::vector<FunctionSym>& out) {
  const Code& c = f.code;
  for (std::size_t b = 0; b < c.size(); ++b) {
    if (!is_punct(c[b], "{") || matches.brace[b] < 0) continue;
    // Walk back from the "{" over the declarator to the statement
    // boundary, collecting every balanced "(...)" group passed: the
    // earliest one is the parameter list (later ones are WS_* annotation
    // arguments or constructor-initializer calls).
    std::vector<std::size_t> groups;
    bool type_body = false;
    std::ptrdiff_t i = static_cast<std::ptrdiff_t>(b) - 1;
    while (i >= 0) {
      const Token& t = c[static_cast<std::size_t>(i)];
      if (is_punct(t, ")")) {
        const std::ptrdiff_t open = matches.paren[static_cast<std::size_t>(i)];
        if (open < 0) break;
        groups.push_back(static_cast<std::size_t>(open));
        i = open - 1;
        continue;
      }
      if (is_punct(t, "]")) {
        const std::ptrdiff_t open =
            matches.bracket[static_cast<std::size_t>(i)];
        if (open < 0) break;
        i = open - 1;
        continue;
      }
      if (is_punct(t, ">") || is_punct(t, ">>")) {
        i = skip_angles_back(c, i);
        continue;
      }
      if (is_punct(t, ";") || is_punct(t, "{") || is_punct(t, "}")) break;
      if (t.kind == TokenKind::kIdentifier && in_list(t.text, kTypeIntroducers))
        type_body = true;
      --i;
    }
    if (groups.empty() || type_body) continue;
    const std::size_t params = groups.back();
    if (params == 0) continue;
    std::size_t n = params - 1;  // candidate name token
    if (c[n].kind != TokenKind::kIdentifier) continue;
    if (in_list(c[n].text, kNotFunctionNames)) continue;
    if (starts_with(c[n].text, "WS_")) continue;
    if (n > 0 && is_ident(c[n - 1], "operator")) continue;

    FunctionSym fn;
    fn.name = std::string(c[n].text);
    fn.line = c[n].line;
    fn.file = file_index;
    std::size_t qual = n;  // token index where the name chain starts
    if (n > 0 && is_punct(c[n - 1], "~")) {
      fn.name = "~" + fn.name;
      qual = n - 1;
    }
    if (qual >= 2 && is_punct(c[qual - 1], "::") &&
        c[qual - 2].kind == TokenKind::kIdentifier)
      fn.class_name = std::string(c[qual - 2].text);
    fn.decl_begin = static_cast<std::size_t>(i + 1);
    fn.body_begin = b;
    fn.body_end = static_cast<std::size_t>(matches.brace[b]);

    // WS_REQUIRES/WS_ACQUIRE between the parameter list and the body.
    const std::ptrdiff_t params_close = matches.paren[params];
    for (std::size_t j = params_close < 0 ? b
                                          : static_cast<std::size_t>(
                                                params_close);
         j + 1 < b; ++j) {
      if (c[j].kind == TokenKind::kIdentifier &&
          (c[j].text == "WS_REQUIRES" || c[j].text == "WS_ACQUIRE") &&
          is_punct(c[j + 1], "("))
        collect_lock_args(c, j + 1, matches.paren[j + 1], fn.entry_locks);
    }

    // Return type: a bare `void` in the declarator (not `void*`).
    for (std::size_t j = fn.decl_begin; j < n; ++j) {
      if (is_ident(c[j], "void") &&
          !(j + 1 < n && is_punct(c[j + 1], "*"))) {
        fn.returns_void = true;
        break;
      }
      if (is_punct(c[j], "<")) j = skip_angles(c, j) - 1;
    }
    out.push_back(std::move(fn));
  }
}

}  // namespace

const FieldSym* ClassSym::field(std::string_view field_name) const {
  for (const FieldSym& f : fields)
    if (f.name == field_name) return &f;
  return nullptr;
}

bool ClassSym::owns_lock() const {
  for (const FieldSym& f : fields)
    if (f.is_mutex) return true;
  return false;
}

SymbolIndex SymbolIndex::build(std::vector<const FileCtx*> files) {
  SymbolIndex index;
  index.files_ = std::move(files);
  std::vector<std::vector<NodiscardDecl>> nodiscard_decls(
      index.files_.size());
  for (std::size_t fi = 0; fi < index.files_.size(); ++fi) {
    const FileCtx& ctx = *index.files_[fi];
    const TokenMatches matches = match_tokens(ctx.code);
    scan_classes(ctx, fi, matches, index.classes_);
    scan_functions(ctx, fi, matches, index.functions_);
    scan_nodiscard(ctx, nodiscard_decls[fi]);
  }
  // Classify [[nodiscard]] declarations now that class spans are known: a
  // declaration inside a class body is that class's method, everything
  // else is a free function.
  for (std::size_t fi = 0; fi < index.files_.size(); ++fi) {
    for (NodiscardDecl& decl : nodiscard_decls[fi]) {
      if (const ClassSym* cls = index.enclosing_class(fi, decl.token)) {
        index.nodiscard_methods_[cls->name].insert(std::move(decl.name));
      } else {
        index.nodiscard_free_files_[decl.name].insert(fi);
        index.nodiscard_.insert(std::move(decl.name));
      }
    }
  }
  for (std::size_t ci = 0; ci < index.classes_.size(); ++ci)
    index.class_by_name_[index.classes_[ci].name].push_back(ci);
  for (std::size_t ni = 0; ni < index.functions_.size(); ++ni) {
    FunctionSym& fn = index.functions_[ni];
    // An unqualified definition inside a class body is that class's
    // method (out-of-line definitions already carry the `X::` qualifier).
    if (fn.class_name.empty()) {
      if (const ClassSym* cls =
              index.enclosing_class(fn.file, fn.body_begin))
        fn.class_name = cls->name;
    }
    // The locking contract usually lives on the in-class declaration;
    // fold it into the definition's entry set.
    if (!fn.class_name.empty()) {
      if (const std::vector<std::size_t>* owners =
              index.classes_named(fn.class_name)) {
        for (const std::size_t ci : *owners) {
          const auto it =
              index.classes_[ci].method_requires.find(fn.name);
          if (it == index.classes_[ci].method_requires.end()) continue;
          for (const std::string& lock : it->second)
            if (std::find(fn.entry_locks.begin(), fn.entry_locks.end(),
                          lock) == fn.entry_locks.end())
              fn.entry_locks.push_back(lock);
        }
      }
    }
    index.fn_by_name_[fn.name].push_back(ni);
  }
  return index;
}

const std::vector<std::size_t>* SymbolIndex::functions_named(
    std::string_view name) const {
  const auto it = fn_by_name_.find(name);
  return it == fn_by_name_.end() ? nullptr : &it->second;
}

const std::vector<std::size_t>* SymbolIndex::classes_named(
    std::string_view name) const {
  const auto it = class_by_name_.find(name);
  return it == class_by_name_.end() ? nullptr : &it->second;
}

const FunctionSym* SymbolIndex::enclosing_function(std::size_t file,
                                                   std::size_t k) const {
  const FunctionSym* best = nullptr;
  for (const FunctionSym& fn : functions_) {
    if (fn.file != file || fn.body_begin >= k || fn.body_end <= k) continue;
    if (best == nullptr ||
        fn.body_end - fn.body_begin < best->body_end - best->body_begin)
      best = &fn;
  }
  return best;
}

const std::set<std::string, std::less<>>* SymbolIndex::nodiscard_methods(
    std::string_view class_name) const {
  const auto it = nodiscard_methods_.find(class_name);
  return it == nodiscard_methods_.end() ? nullptr : &it->second;
}

bool SymbolIndex::nodiscard_free_in(std::size_t file,
                                    std::string_view name) const {
  const auto it = nodiscard_free_files_.find(name);
  return it != nodiscard_free_files_.end() && it->second.contains(file);
}

const ClassSym* SymbolIndex::enclosing_class(std::size_t file,
                                             std::size_t k) const {
  const ClassSym* best = nullptr;
  for (const ClassSym& cls : classes_) {
    if (cls.file != file || cls.body_begin >= k || cls.body_end <= k)
      continue;
    if (best == nullptr ||
        cls.body_end - cls.body_begin < best->body_end - best->body_begin)
      best = &cls;
  }
  return best;
}

}  // namespace wearscope::lint
