#include "lint/flow_rules.h"

#include <algorithm>
#include <array>
#include <deque>
#include <map>
#include <set>
#include <string_view>
#include <utility>

namespace wearscope::lint {

namespace {

using Code = std::vector<Token>;
using NameSet = std::set<std::string, std::less<>>;

constexpr std::size_t kMaxHops = 3;  ///< Interprocedural search depth.

// --- Lock canonicalization ---------------------------------------------

/// One RAII guard statement (`MutexLock lock(expr);`) inside a body.
struct GuardStmt {
  std::size_t token = 0;  ///< Index of the MutexLock/SpinLockGuard ident.
  int line = 0;
  std::string raw;  ///< Last identifier of the guarded expression.
};

[[nodiscard]] std::vector<GuardStmt> find_guards(const Code& c,
                                                 const FunctionSym& fn) {
  std::vector<GuardStmt> out;
  for (std::size_t k = fn.body_begin + 1; k + 2 < fn.body_end; ++k) {
    if (!is_ident(c[k], "MutexLock") && !is_ident(c[k], "SpinLockGuard"))
      continue;
    if (c[k + 1].kind != TokenKind::kIdentifier || !is_punct(c[k + 2], "("))
      continue;
    const std::size_t close = skip_balanced(c, k + 2, "(", ")");
    GuardStmt g;
    g.token = k;
    g.line = c[k].line;
    for (std::size_t j = k + 3; j + 1 < close; ++j)
      if (c[j].kind == TokenKind::kIdentifier) g.raw = std::string(c[j].text);
    if (!g.raw.empty()) out.push_back(std::move(g));
  }
  return out;
}

/// Mutex/SpinLock objects declared as locals of `fn` (`util::Mutex m;`).
[[nodiscard]] NameSet local_locks(const Code& c, const FunctionSym& fn) {
  NameSet out;
  for (std::size_t k = fn.body_begin + 1; k + 2 < fn.body_end; ++k) {
    if (!is_ident(c[k], "Mutex") && !is_ident(c[k], "SpinLock")) continue;
    if (c[k + 1].kind != TokenKind::kIdentifier) continue;
    if (is_punct(c[k + 2], ";") || is_punct(c[k + 2], "{"))
      out.insert(std::string(c[k + 1].text));
  }
  return out;
}

/// lock member name -> names of classes owning a mutex field so named.
using MutexOwners = std::map<std::string, NameSet, std::less<>>;

[[nodiscard]] MutexOwners collect_mutex_owners(const SymbolIndex& index) {
  MutexOwners owners;
  for (const ClassSym& cls : index.classes())
    for (const FieldSym& f : cls.fields)
      if (f.is_mutex) owners[f.name].insert(cls.name);
  return owners;
}

/// Canonical name for a raw lock spelling seen inside `fn`, or "" when
/// resolution is ambiguous (the rule then skips the acquisition).
[[nodiscard]] std::string canon_lock(const SymbolIndex& index,
                                     const FunctionSym& fn,
                                     const NameSet& locals,
                                     const MutexOwners& owners,
                                     std::string_view raw) {
  if (!fn.class_name.empty()) {
    if (const std::vector<std::size_t>* cs =
            index.classes_named(fn.class_name)) {
      for (const std::size_t ci : *cs) {
        const FieldSym* field = index.classes()[ci].field(raw);
        if (field != nullptr && field->is_mutex)
          return fn.class_name + "::" + std::string(raw);
      }
    }
  }
  if (locals.find(raw) != locals.end())
    return fn.qualified() + "#" + std::string(raw);
  const auto it = owners.find(raw);
  if (it != owners.end() && it->second.size() == 1)
    return *it->second.begin() + "::" + std::string(raw);
  return {};
}

// --- Lock-ordering graph ------------------------------------------------

struct LockGraphInput {
  std::vector<std::vector<GuardStmt>> guards;      ///< Per function.
  std::vector<NameSet> locals;                     ///< Per function.
  std::vector<std::vector<std::string>> acquired;  ///< Canonical, direct.
  std::vector<std::vector<std::string>> entry;     ///< Canonical entry locks.
  MutexOwners owners;
};

[[nodiscard]] LockGraphInput prepare_locks(const SymbolIndex& index) {
  LockGraphInput in;
  in.owners = collect_mutex_owners(index);
  const std::vector<FunctionSym>& fns = index.functions();
  in.guards.resize(fns.size());
  in.locals.resize(fns.size());
  in.acquired.resize(fns.size());
  in.entry.resize(fns.size());
  for (std::size_t fi = 0; fi < fns.size(); ++fi) {
    const Code& c = index.files()[fns[fi].file]->code;
    in.guards[fi] = find_guards(c, fns[fi]);
    in.locals[fi] = local_locks(c, fns[fi]);
    for (const GuardStmt& g : in.guards[fi]) {
      std::string lock =
          canon_lock(index, fns[fi], in.locals[fi], in.owners, g.raw);
      if (!lock.empty()) in.acquired[fi].push_back(std::move(lock));
    }
    for (const std::string& raw : fns[fi].entry_locks) {
      std::string lock =
          canon_lock(index, fns[fi], in.locals[fi], in.owners, raw);
      if (!lock.empty()) in.entry[fi].push_back(std::move(lock));
    }
  }
  return in;
}

/// Locks `fn` may acquire itself or through callees within kMaxHops.
[[nodiscard]] NameSet transitive_acquires(const CallGraph& graph,
                                          const LockGraphInput& in,
                                          std::size_t fn) {
  NameSet out;
  std::set<std::size_t> seen{fn};
  std::deque<std::pair<std::size_t, std::size_t>> queue{{fn, 0}};
  while (!queue.empty()) {
    const auto [cur, depth] = queue.front();
    queue.pop_front();
    for (const std::string& lock : in.acquired[cur]) out.insert(lock);
    if (depth >= kMaxHops) continue;
    for (const std::size_t next : graph.callees(cur))
      if (seen.insert(next).second) queue.emplace_back(next, depth + 1);
  }
  return out;
}

}  // namespace

std::vector<LockEdge> collect_lock_edges(const SymbolIndex& index,
                                         const CallGraph& graph) {
  const LockGraphInput in = prepare_locks(index);
  const std::vector<FunctionSym>& fns = index.functions();
  std::vector<NameSet> reach(fns.size());
  for (std::size_t fi = 0; fi < fns.size(); ++fi)
    reach[fi] = transitive_acquires(graph, in, fi);

  std::vector<LockEdge> edges;
  const auto add_edges = [&edges](const std::vector<std::string>& held,
                                  const NameSet& acquired,
                                  const std::string& path, int line) {
    for (const std::string& h : held)
      for (const std::string& a : acquired)
        if (h != a) edges.push_back({h, a, path, line});
  };
  for (std::size_t fi = 0; fi < fns.size(); ++fi) {
    const FunctionSym& fn = fns[fi];
    const Code& c = index.files()[fn.file]->code;
    const std::string& path = index.files()[fn.file]->source->path;
    // Linear walk of the body: a brace-depth frame stack tracks which
    // guards are alive, so nesting (not mere textual order) makes edges.
    struct Frame {
      int depth = 0;
      std::string lock;
    };
    std::vector<Frame> held;
    for (const std::string& lock : in.entry[fi])
      held.push_back({0, lock});  // held for the whole body
    std::size_t next_guard = 0;
    auto site_it = graph.sites(fi).begin();
    const auto site_end = graph.sites(fi).end();
    int depth = 1;
    for (std::size_t k = fn.body_begin + 1; k < fn.body_end; ++k) {
      if (is_punct(c[k], "{")) ++depth;
      if (is_punct(c[k], "}")) {
        --depth;
        while (!held.empty() && held.back().depth > depth) held.pop_back();
      }
      if (next_guard < in.guards[fi].size() &&
          in.guards[fi][next_guard].token == k) {
        const GuardStmt& g = in.guards[fi][next_guard++];
        std::string lock =
            canon_lock(index, fn, in.locals[fi], in.owners, g.raw);
        if (!lock.empty()) {
          for (const Frame& f : held)
            if (f.lock != lock) edges.push_back({f.lock, lock, path, g.line});
          held.push_back({depth, std::move(lock)});
        }
      }
      while (site_it != site_end && site_it->token < k) ++site_it;
      if (site_it != site_end && site_it->token == k && !held.empty()) {
        std::vector<std::string> held_names;
        for (const Frame& f : held) held_names.push_back(f.lock);
        for (const std::size_t callee : site_it->callees)
          add_edges(held_names, reach[callee], path, c[k].line);
      }
    }
  }
  // Deduplicate by (from, to), keeping the lexically first location.
  std::sort(edges.begin(), edges.end(),
            [](const LockEdge& a, const LockEdge& b) {
              return std::tie(a.from, a.to, a.path, a.line) <
                     std::tie(b.from, b.to, b.path, b.line);
            });
  edges.erase(std::unique(edges.begin(), edges.end(),
                          [](const LockEdge& a, const LockEdge& b) {
                            return a.from == b.from && a.to == b.to;
                          }),
              edges.end());
  return edges;
}

void check_lock_order(const SymbolIndex& index, const CallGraph& graph,
                      std::vector<Finding>& out) {
  const std::vector<LockEdge> edges = collect_lock_edges(index, graph);
  // Tarjan over the (small) lock graph; any SCC of >= 2 locks is a cycle.
  std::vector<std::string> nodes;
  for (const LockEdge& e : edges) {
    nodes.push_back(e.from);
    nodes.push_back(e.to);
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  std::map<std::string, std::size_t, std::less<>> id;
  for (std::size_t i = 0; i < nodes.size(); ++i) id[nodes[i]] = i;
  std::vector<std::vector<std::size_t>> adj(nodes.size());
  for (const LockEdge& e : edges) adj[id[e.from]].push_back(id[e.to]);

  const std::size_t n = nodes.size();
  std::vector<std::size_t> idx(n, 0), low(n, 0);
  std::vector<bool> on_stack(n, false), visited(n, false);
  std::vector<std::size_t> stack;
  std::vector<std::vector<std::size_t>> sccs;
  std::size_t counter = 1;
  // Iterative Tarjan (explicit frame stack keeps it stack-safe).
  struct TFrame {
    std::size_t v = 0;
    std::size_t child = 0;
  };
  for (std::size_t root = 0; root < n; ++root) {
    if (visited[root]) continue;
    std::vector<TFrame> frames{{root, 0}};
    while (!frames.empty()) {
      TFrame& f = frames.back();
      const std::size_t v = f.v;
      if (f.child == 0) {
        visited[v] = true;
        idx[v] = low[v] = counter++;
        stack.push_back(v);
        on_stack[v] = true;
      }
      if (f.child < adj[v].size()) {
        const std::size_t w = adj[v][f.child++];
        if (!visited[w]) {
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          low[v] = std::min(low[v], idx[w]);
        }
        continue;
      }
      if (low[v] == idx[v]) {
        std::vector<std::size_t> scc;
        for (;;) {
          const std::size_t w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          scc.push_back(w);
          if (w == v) break;
        }
        if (scc.size() >= 2) sccs.push_back(std::move(scc));
      }
      frames.pop_back();
      if (!frames.empty())
        low[frames.back().v] = std::min(low[frames.back().v], low[v]);
    }
  }

  for (std::vector<std::size_t>& scc : sccs) {
    std::sort(scc.begin(), scc.end());
    const std::set<std::size_t> members(scc.begin(), scc.end());
    std::vector<const LockEdge*> cycle_edges;
    for (const LockEdge& e : edges)
      if (members.count(id[e.from]) != 0 && members.count(id[e.to]) != 0)
        cycle_edges.push_back(&e);
    std::sort(cycle_edges.begin(), cycle_edges.end(),
              [](const LockEdge* a, const LockEdge* b) {
                return std::tie(a->path, a->line, a->from, a->to) <
                       std::tie(b->path, b->line, b->from, b->to);
              });
    if (cycle_edges.empty()) continue;
    std::string msg = "potential deadlock: lock acquisition order cycle:";
    for (const LockEdge* e : cycle_edges) {
      msg += " " + e->from + " -> " + e->to + " (" + e->path + ":" +
             std::to_string(e->line) + ");";
    }
    msg.pop_back();  // trailing ';'
    const LockEdge* anchor = cycle_edges.front();
    out.push_back(
        Finding{anchor->path, anchor->line, "lock-order", std::move(msg)});
  }
}

// --- guard-coverage -----------------------------------------------------

namespace {

constexpr std::array<std::string_view, 14> kMutatingMethods = {
    "push_back", "emplace_back", "pop_back", "clear",   "erase",
    "insert",    "emplace",      "resize",   "assign",  "push",
    "pop",       "swap",         "reserve",  "splice"};

constexpr std::array<std::string_view, 11> kAssignOps = {
    "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="};

[[nodiscard]] bool in_sv_list(std::string_view s, const auto& list) {
  for (const std::string_view e : list)
    if (s == e) return true;
  return false;
}

/// True when `fn`'s body writes to member `field` (assignment, increment,
/// or a mutating container method call).
[[nodiscard]] bool writes_field(const Code& c, const FunctionSym& fn,
                                std::string_view field) {
  for (std::size_t k = fn.body_begin + 1; k + 1 < fn.body_end; ++k) {
    if (!is_ident(c[k], field)) continue;
    // `other.field` is a different object's member; `this->field` is ours.
    if (k > 0 && (is_punct(c[k - 1], ".") || is_punct(c[k - 1], "->")) &&
        !(k > 1 && is_ident(c[k - 2], "this")))
      continue;
    // Prefix increment/decrement (`++` lexes as two '+' tokens).
    if (k > 1 && ((is_punct(c[k - 1], "+") && is_punct(c[k - 2], "+")) ||
                  (is_punct(c[k - 1], "-") && is_punct(c[k - 2], "-"))))
      return true;
    std::size_t j = k + 1;
    while (j < fn.body_end && is_punct(c[j], "["))
      j = skip_balanced(c, j, "[", "]");
    if (j >= fn.body_end) continue;
    if (c[j].kind == TokenKind::kPunct && in_sv_list(c[j].text, kAssignOps))
      return true;
    if (j + 1 < fn.body_end &&
        ((is_punct(c[j], "+") && is_punct(c[j + 1], "+")) ||
         (is_punct(c[j], "-") && is_punct(c[j + 1], "-"))))
      return true;
    if ((is_punct(c[j], ".") || is_punct(c[j], "->")) && j + 2 < fn.body_end &&
        c[j + 1].kind == TokenKind::kIdentifier &&
        in_sv_list(c[j + 1].text, kMutatingMethods) && is_punct(c[j + 2], "("))
      return true;
  }
  return false;
}

}  // namespace

void check_guard_coverage(const SymbolIndex& index,
                          std::vector<Finding>& out) {
  for (const ClassSym& cls : index.classes()) {
    if (!cls.owns_lock()) continue;
    const std::string& path = index.files()[cls.file]->source->path;
    for (const FieldSym& field : cls.fields) {
      if (field.is_mutex || field.is_atomic || field.is_const ||
          !field.guarded_by.empty())
        continue;
      int writers = 0;
      for (const FunctionSym& fn : index.functions()) {
        if (fn.class_name != cls.name) continue;
        if (fn.name == cls.name || fn.name == "~" + cls.name)
          continue;  // construction/destruction is single-threaded
        if (writes_field(index.files()[fn.file]->code, fn, field.name))
          ++writers;
      }
      if (writers >= 2)
        out.push_back(Finding{
            path, field.line, "guard-coverage",
            "field '" + field.name + "' of lock-owning class '" + cls.name +
                "' is written by " + std::to_string(writers) +
                " member functions but has no WS_GUARDED_BY annotation"});
    }
  }
}

// --- unchecked-result ---------------------------------------------------

void check_unchecked_result(const SymbolIndex& index,
                            std::vector<Finding>& out) {
  for (std::size_t fi = 0; fi < index.files().size(); ++fi) {
    const FileCtx& file = *index.files()[fi];
    const Code& c = file.code;
    const TokenMatches matches = match_tokens(c);
    const auto tok = [&c](std::ptrdiff_t i) -> const Token& {
      return c[static_cast<std::size_t>(i)];
    };
    for (std::size_t k = 0; k + 1 < c.size(); ++k) {
      if (c[k].kind != TokenKind::kIdentifier || !is_punct(c[k + 1], "("))
        continue;
      const std::ptrdiff_t close = matches.paren[k + 1];
      if (close < 0 || static_cast<std::size_t>(close) + 1 >= c.size())
        continue;
      if (!is_punct(tok(close + 1), ";")) continue;
      // Resolve the call.  Only unambiguous receivers count: a free call,
      // an explicit `this->` call, or a `Qualifier::` call — a call on an
      // arbitrary object (`obj.f()`) is skipped because the receiver's
      // type is unknown to the token-level index.
      const std::string_view name = c[k].text;
      // A free function defined in this very file shadows an unrelated
      // same-named nodiscard function from elsewhere in the project.
      const auto free_nodiscard = [&](std::string_view n) {
        if (!index.nodiscard_names().contains(n)) return false;
        if (const std::vector<std::size_t>* cands = index.functions_named(n))
          for (const std::size_t ci : *cands) {
            const FunctionSym& cand = index.functions()[ci];
            if (cand.class_name.empty() && cand.file == fi)
              return index.nodiscard_free_in(fi, n);
          }
        return true;
      };
      bool is_nodiscard = false;
      std::ptrdiff_t head = static_cast<std::ptrdiff_t>(k) - 1;
      if (head >= 0 &&
          (is_punct(tok(head), ".") || is_punct(tok(head), "->"))) {
        if (head < 1 || !is_ident(tok(head - 1), "this")) continue;
        head -= 2;
        const FunctionSym* fn = index.enclosing_function(fi, k);
        if (fn == nullptr || fn->class_name.empty()) continue;
        const auto* methods = index.nodiscard_methods(fn->class_name);
        is_nodiscard = methods != nullptr && methods->contains(name);
      } else if (head >= 1 && is_punct(tok(head), "::") &&
                 tok(head - 1).kind == TokenKind::kIdentifier) {
        // Innermost qualifier decides: class method or namespaced free fn.
        const std::string_view qual = tok(head - 1).text;
        while (head >= 1 && is_punct(tok(head), "::") &&
               tok(head - 1).kind == TokenKind::kIdentifier)
          head -= 2;
        const auto* methods = index.nodiscard_methods(qual);
        is_nodiscard = (methods != nullptr && methods->contains(name)) ||
                       free_nodiscard(name);
      } else {
        // Unqualified: a free function, or an implicit-this method call
        // inside a member function.
        is_nodiscard = free_nodiscard(name);
        if (!is_nodiscard) {
          const FunctionSym* fn = index.enclosing_function(fi, k);
          if (fn != nullptr && !fn->class_name.empty()) {
            const auto* methods = index.nodiscard_methods(fn->class_name);
            is_nodiscard = methods != nullptr && methods->contains(name);
          }
        }
      }
      if (!is_nodiscard) continue;
      const bool statement_head =
          head < 0 || is_punct(tok(head), ";") || is_punct(tok(head), "{") ||
          is_punct(tok(head), "}") || is_punct(tok(head), ":");
      if (!statement_head) continue;
      out.push_back(Finding{
          file.source->path, c[k].line, "unchecked-result",
          "result of [[nodiscard]] function '" + std::string(name) +
              "' is discarded"});
    }
  }
}

// --- unordered-flow -----------------------------------------------------

namespace {

/// A range-for over an unordered-declared name in a function body that is
/// not followed by a sort before the body ends.
struct UnorderedLoop {
  std::size_t token = 0;
  int line = 0;
  std::string container;
};

[[nodiscard]] std::vector<UnorderedLoop> find_unordered_loops(
    const FileCtx& file, const FunctionSym& fn) {
  std::vector<UnorderedLoop> out;
  const Code& c = file.code;
  for (std::size_t k = fn.body_begin + 1; k + 1 < fn.body_end; ++k) {
    if (!is_ident(c[k], "for") || !is_punct(c[k + 1], "(")) continue;
    const std::size_t close = skip_balanced(c, k + 1, "(", ")");
    std::size_t colon = 0;
    for (std::size_t j = k + 2; j + 1 < close; ++j) {
      if (is_punct(c[j], "(")) {
        j = skip_balanced(c, j, "(", ")") - 1;
        continue;
      }
      if (is_punct(c[j], "[")) {
        j = skip_balanced(c, j, "[", "]") - 1;
        continue;
      }
      if (is_punct(c[j], ":")) {
        colon = j;
        break;
      }
    }
    if (colon == 0) continue;  // classic for, not range-for
    std::string name;
    for (std::size_t j = colon + 1; j + 1 < close; ++j)
      if (c[j].kind == TokenKind::kIdentifier) name = std::string(c[j].text);
    if (name.empty()) continue;
    if (file.unordered_names.find(name) == file.unordered_names.end())
      continue;
    if (file.ordered_names.find(name) != file.ordered_names.end())
      continue;  // shadowed by an ordered local declaration
    bool sorted_later = false;
    for (std::size_t j = k; j < fn.body_end; ++j)
      if (is_sort_ident(c[j])) {
        sorted_later = true;
        break;
      }
    if (sorted_later) continue;
    out.push_back({k, c[k].line, std::move(name)});
  }
  return out;
}

[[nodiscard]] bool emits_in_span(const Code& c, std::size_t begin,
                                 std::size_t end) {
  for (std::size_t k = begin; k < end && k < c.size(); ++k)
    if (is_emission_marker(c[k])) return true;
  return false;
}

}  // namespace

void check_unordered_flow(const SymbolIndex& index, const CallGraph& graph,
                          std::vector<Finding>& out) {
  const std::vector<FunctionSym>& fns = index.functions();
  for (std::size_t fi = 0; fi < fns.size(); ++fi) {
    const FunctionSym& fn = fns[fi];
    if (fn.returns_void) continue;
    const FileCtx& file = *index.files()[fn.file];
    const std::vector<UnorderedLoop> loops = find_unordered_loops(file, fn);
    if (loops.empty()) continue;
    // The per-file unordered-emit rule owns the same-function case.
    if (emits_in_span(file.code, fn.decl_begin, fn.body_end)) continue;
    // BFS up the caller graph: does the returned value reach an emitter?
    std::map<std::size_t, std::size_t> parent;  // callee-ward back-pointers
    std::deque<std::pair<std::size_t, std::size_t>> queue{{fi, 0}};
    std::set<std::size_t> seen{fi};
    std::size_t emitter = fns.size();
    std::size_t hops = 0;
    while (!queue.empty() && emitter == fns.size()) {
      const auto [cur, depth] = queue.front();
      queue.pop_front();
      if (depth >= kMaxHops) continue;
      for (const std::size_t caller : graph.callers(cur)) {
        if (!seen.insert(caller).second) continue;
        parent[caller] = cur;
        const FunctionSym& g = fns[caller];
        if (emits_in_span(index.files()[g.file]->code, g.body_begin + 1,
                          g.body_end)) {
          emitter = caller;
          hops = depth + 1;
          break;
        }
        queue.emplace_back(caller, depth + 1);
      }
    }
    if (emitter == fns.size()) continue;
    std::string chain = fns[emitter].qualified();
    for (std::size_t cur = emitter; cur != fi;) {
      cur = parent[cur];
      chain += " -> " + fns[cur].qualified();
    }
    const FunctionSym& g = fns[emitter];
    for (const UnorderedLoop& loop : loops)
      out.push_back(Finding{
          file.source->path, loop.line, "unordered-flow",
          "'" + fn.qualified() + "' iterates unordered '" + loop.container +
              "' without sorting and its result reaches emission in '" +
              g.qualified() + "' (" + index.files()[g.file]->source->path +
              ":" + std::to_string(g.line) + "), " + std::to_string(hops) +
              " call hop(s) away: " + chain});
  }
}

}  // namespace wearscope::lint
