// Batch references for the serving layer's equivalence gates.
//
// Two independent references pin down what a serve answer must equal:
//
//  * reference_snapshot() — a sequential, thread-free replay of the same
//    ShardStats/assemble machinery the concurrent engine runs (one shard,
//    fed in feed-merge order on the calling thread).  Any divergence from
//    a LiveEngine snapshot isolates a concurrency bug, because every
//    other ingredient is shared code.
//
//  * core::Pipeline (what wearscope_analyze runs) — the batch ground
//    truth for the figures both sides compute (adoption, activity,
//    quarantine).  verify_responses() renders serve answers from a served
//    snapshot AND from these references through the same byte-exact
//    formatters, and compares strings.
//
// prefix_store() cuts the capture at an epoch boundary (the first
// `records` events in feed-merge order), which is exactly the stream
// prefix a barrier snapshot covers — that is what makes per-epoch
// equivalence testable against the batch pipeline.
//
// reference_snapshot() is THE sequential-reference entry point: both
// `wearscope_serve --verify` (via verify_responses) and the deterministic
// interleaving harness (src/sched) compare concurrent snapshots against
// it, so there is exactly one definition of "what a barrier cut at N
// records must contain".  Its `records` parameter applies the same
// feed-merge-order prefix cut prefix_store() materializes, without
// copying the capture.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "live/engine.h"
#include "trace/store.h"

namespace wearscope::serve {

/// "No prefix cut": reference_snapshot covers the whole capture.
inline constexpr std::uint64_t kAllRecords =
    std::numeric_limits<std::uint64_t>::max();

/// The capture prefix a barrier at `records` covers: the first `records`
/// events of `store` in feed-merge order (timestamp order, MME before
/// proxy on ties — FeedReplayer's order), plus the full device/sector
/// databases.  `store` must be time-sorted.
[[nodiscard]] trace::TraceStore prefix_store(const trace::TraceStore& store,
                                             std::uint64_t records);

/// Sequential reference snapshot over the first `records` events of
/// `store` in feed-merge order (kAllRecords = the whole capture): one
/// ShardStats instance fed on the calling thread, assembled through the
/// same SnapshotCoordinator merge the engine uses.  `epoch` labels the
/// result; `quarantine` rides into the snapshot like
/// LiveEngine::add_quarantine.  This is the single sequential reference
/// the serving verify gate and the sched harness both compare against.
[[nodiscard]] live::LiveSnapshot reference_snapshot(
    const trace::TraceStore& store, const live::LiveOptions& options,
    std::uint64_t epoch = 0, const trace::QuarantineStats& quarantine = {},
    std::uint64_t records = kAllRecords);

/// One mismatch found by verify_responses().
struct VerifyMismatch {
  std::string query;  ///< The protocol line that diverged.
  std::string serve;  ///< The serving layer's response.
  std::string batch;  ///< The batch reference's response.
};

/// Renders the canonical query set (adoption, activity, quarantine,
/// top-apps K, sectors K) against `served` and against batch references
/// over `store`, byte-comparing each pair:
///   adoption/activity  vs core::Pipeline (wearscope_analyze),
///   top-apps/sectors/class-mix  vs reference_snapshot(),
///   quarantine  vs `expected_quarantine`, the feed-side accounting the
///   caller tracked independently of the engine's accumulation.
/// Returns every mismatch (empty = bitwise identical).
[[nodiscard]] std::vector<VerifyMismatch> verify_responses(
    const live::LiveSnapshot& served, const trace::TraceStore& store,
    const live::LiveOptions& options,
    const trace::QuarantineStats& expected_quarantine,
    std::size_t top_k = 10);

}  // namespace wearscope::serve
