// The always-on serving front ends: a newline-delimited query loop over
// stdio streams, and an optional localhost TCP listener speaking the same
// protocol (one query line in, one response line out).
//
// Threading: serve_stream() runs on the caller's thread.  The listener
// owns one accept thread plus one thread per connection; every connection
// shares the same QueryEngine, which is safe because answering only takes
// lock-free/immutable paths (see query_engine.h).  Ingest keeps running
// underneath — that is the point of the subsystem.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "serve/query_engine.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace wearscope::serve {

class LineServer {
 public:
  /// `engine` must outlive the server.
  explicit LineServer(QueryEngine& engine) : engine_(&engine) {}
  ~LineServer();

  LineServer(const LineServer&) = delete;
  LineServer& operator=(const LineServer&) = delete;

  /// Reads query lines from `in` until EOF, writing one response line per
  /// query to `out` (flushed per response — callers may be pipes).  Blank
  /// and "#"-comment lines produce no output.  Returns responses written.
  std::uint64_t serve_stream(std::FILE* in, std::FILE* out);

  /// Starts the TCP listener on 127.0.0.1:`port` (0 = kernel-assigned;
  /// read the result back with bound_port()).  Throws util::IoError when
  /// the socket cannot be bound.
  void start_listener(std::uint16_t port) WS_EXCLUDES(mutex_);

  /// Stops accepting, shuts down open connections and joins all listener
  /// threads.  Idempotent; also runs from the destructor.
  void stop_listener() WS_EXCLUDES(mutex_);

  /// Port the listener is bound to (0 when not listening).
  [[nodiscard]] std::uint16_t bound_port() const noexcept {
    return bound_port_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop();
  void serve_connection(int fd);

  QueryEngine* engine_ = nullptr;
  /// Atomic: the accept thread re-reads it each iteration while
  /// stop_listener() retires it from the caller's thread.
  std::atomic<int> listen_fd_{-1};
  std::atomic<std::uint16_t> bound_port_{0};
  std::thread accept_thread_;

  util::Mutex mutex_;
  std::vector<int> connection_fds_ WS_GUARDED_BY(mutex_);
  std::vector<std::thread> connection_threads_ WS_GUARDED_BY(mutex_);
  bool stopping_ WS_GUARDED_BY(mutex_) = false;
};

}  // namespace wearscope::serve
