#include "serve/server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "util/error.h"

namespace wearscope::serve {

LineServer::~LineServer() { stop_listener(); }

std::uint64_t LineServer::serve_stream(std::FILE* in, std::FILE* out) {
  std::uint64_t responses = 0;
  std::string line;
  int ch;
  while (true) {
    line.clear();
    while ((ch = std::fgetc(in)) != EOF && ch != '\n') {
      line += static_cast<char>(ch);
    }
    if (line.empty() && ch == EOF) break;
    const std::string response = engine_->answer(line);
    if (!response.empty()) {
      std::fputs(response.c_str(), out);
      std::fputc('\n', out);
      std::fflush(out);
      ++responses;
    }
    if (ch == EOF) break;
  }
  return responses;
}

void LineServer::start_listener(std::uint16_t port) {
  {
    util::MutexLock lock(mutex_);
    util::require(listen_fd_.load(std::memory_order_relaxed) < 0 && !stopping_,
                  "LineServer: listener already started");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw util::IoError("socket(): " + std::string(strerror(errno)));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, 16) < 0) {
    const std::string why = strerror(errno);
    ::close(fd);
    throw util::IoError("bind/listen 127.0.0.1:" + std::to_string(port) +
                        ": " + why);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    bound_port_.store(ntohs(bound.sin_port), std::memory_order_relaxed);
  }
  listen_fd_.store(fd, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void LineServer::accept_loop() {
  while (true) {
    // Re-read each iteration: stop_listener() retires the descriptor to
    // -1 before closing it, so a post-stop iteration fails fast instead
    // of accepting on a possibly-recycled fd number.
    const int listen_fd = listen_fd_.load(std::memory_order_acquire);
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) return;  // Listener shut down (or fatal error): stop.
    util::MutexLock lock(mutex_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    connection_fds_.push_back(fd);
    connection_threads_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void LineServer::serve_connection(int fd) {
  // A connection is a byte stream of query lines; answer line by line.
  std::string pending;
  char buf[4096];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n <= 0) break;
    pending.append(buf, static_cast<std::size_t>(n));
    std::size_t start = 0;
    std::size_t nl;
    while ((nl = pending.find('\n', start)) != std::string::npos) {
      std::string response =
          engine_->answer(std::string_view(pending).substr(start, nl - start));
      start = nl + 1;
      if (response.empty()) continue;
      response += '\n';
      std::size_t written = 0;
      while (written < response.size()) {
        const ssize_t w =
            ::write(fd, response.data() + written, response.size() - written);
        if (w <= 0) break;
        written += static_cast<std::size_t>(w);
      }
      if (written < response.size()) break;
    }
    pending.erase(0, start);
  }
  {
    // Deregister before close so stop_listener() never shuts down a
    // recycled descriptor.
    util::MutexLock lock(mutex_);
    std::erase(connection_fds_, fd);
  }
  ::close(fd);
}

void LineServer::stop_listener() {
  {
    util::MutexLock lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
    // Wake blocked reads so connection threads notice shutdown.
    for (const int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    // shutdown() wakes the accept thread if it is parked in accept();
    // the exchange above already hid the fd from further iterations.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    util::MutexLock lock(mutex_);
    threads.swap(connection_threads_);
    connection_fds_.clear();
  }
  for (std::thread& thread : threads) thread.join();
  bound_port_.store(0, std::memory_order_relaxed);
}

}  // namespace wearscope::serve
