// wearscope::serve — always-on query serving over live snapshots.
//
// SnapshotStore is the publication point between the live-ingest engine
// and the query side: the feed thread publishes immutable epoch snapshots,
// reader threads answer dashboard queries against them.  Publication is
// RCU-style double-buffered: each published snapshot is an immutable
// heap object behind a reference-counted pointer, and the "current"
// snapshot is swapped in through a spin-locked slot held for a pointer
// swap.  Readers acquire the current snapshot with one refcount bump
// under that slot lock — they never take the writer's window mutex,
// never observe a half-built snapshot, and keep whatever epoch they
// grabbed alive for as long as they hold the reference, even if the
// writer retires it from the retention window mid-query.  (See latest_
// below for why the slot is hand-rolled rather than
// std::atomic<std::shared_ptr>.)
//
// Retention: the store keeps the last `retain` snapshots (a bounded
// time-window of epochs) so queries can ask about recent history
// ("@epoch" queries).  The window is writer-maintained and guarded by a
// mutex that only the writer and the *historical*-lookup path touch; the
// latest-snapshot hot path stays mutex-free.
//
// Integrity: every ServedSnapshot carries a checksum folded over its
// scalar fields at publish time.  QueryEngine re-derives it on every
// answer; a mismatch would mean a torn or corrupted publication and turns
// into a query error instead of silently wrong figures (and the stress
// test asserts it never happens).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "live/snapshot.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace wearscope::serve {

/// One published epoch: an immutable LiveSnapshot plus serving metadata.
/// Never mutated after publish(); safe to read from any thread.
struct ServedSnapshot {
  live::LiveSnapshot snap;
  std::uint64_t publish_seq = 0;  ///< 1-based publication order.
  bool final_epoch = false;       ///< Published by the end-of-feed drain.
  std::uint64_t checksum = 0;     ///< fold() over the fields above.

  /// Order-independent integrity word over the snapshot's scalars and the
  /// row tallies (not a cryptographic hash; torn-read tripwire only).
  [[nodiscard]] static std::uint64_t fold(const live::LiveSnapshot& snap,
                                          std::uint64_t publish_seq,
                                          bool final_epoch);
};

/// Shared handle to one published snapshot.
using SnapshotRef = std::shared_ptr<const ServedSnapshot>;

/// The publication point. One writer thread calls publish(); any number
/// of reader threads call latest()/at_epoch()/retained_epochs().
class SnapshotStore {
 public:
  /// Retains the most recent `retain` snapshots for historical queries.
  explicit SnapshotStore(std::size_t retain = 64);

  /// Publishes one snapshot: wraps it, appends it to the retention window
  /// (evicting the oldest beyond capacity) and atomically swaps it in as
  /// the current epoch.  Writer thread only.  Returns the published ref.
  SnapshotRef publish(live::LiveSnapshot snap, bool final_epoch = false)
      WS_EXCLUDES(mutex_);

  /// The most recently published snapshot (nullptr before the first
  /// publish).  One refcount bump under the slot spinlock — held for a
  /// few instructions, never across the writer's window maintenance.
  [[nodiscard]] SnapshotRef latest() const WS_EXCLUDES(latest_lock_) {
    util::SpinLockGuard lock(latest_lock_);
    return latest_;
  }

  /// Historical lookup by engine epoch number; nullptr when the epoch was
  /// never published or has been evicted from the retention window.
  [[nodiscard]] SnapshotRef at_epoch(std::uint64_t epoch) const
      WS_EXCLUDES(mutex_);

  /// Epochs currently retained, oldest first.
  [[nodiscard]] std::vector<std::uint64_t> retained_epochs() const
      WS_EXCLUDES(mutex_);

  /// Snapshots published over the store's lifetime.
  [[nodiscard]] std::uint64_t published() const noexcept {
    return published_.load(std::memory_order_relaxed);
  }

  /// Retention capacity (the `retain` construction parameter).
  [[nodiscard]] std::size_t capacity() const noexcept { return retain_; }

 private:
  std::size_t retain_;
  std::atomic<std::uint64_t> published_{0};
  /// The RCU hot path: current snapshot, swapped by publish().
  ///
  /// Hand-rolled slot instead of std::atomic<std::shared_ptr>: libstdc++'s
  /// _Sp_atomic is itself a spinlock over a plain pointer pair, but its
  /// reader path unlocks with a *relaxed* fetch_sub, so there is no
  /// release edge from a reader's critical section to the next writer's
  /// plain pointer write — formally a data race on the pointer field, and
  /// ThreadSanitizer reports it as one.  util::SpinLock uses acquire/
  /// release on both ends, giving the same nanosecond-scale critical
  /// sections with a happens-before chain TSan can follow.
  mutable util::SpinLock latest_lock_;
  SnapshotRef latest_ WS_GUARDED_BY(latest_lock_);

  mutable util::Mutex mutex_;
  /// Retention window in publication order (back = newest).
  std::deque<SnapshotRef> window_ WS_GUARDED_BY(mutex_);
};

}  // namespace wearscope::serve
