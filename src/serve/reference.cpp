#include "serve/reference.h"

#include "appdb/app_catalog.h"
#include "core/pipeline.h"
#include "serve/query.h"
#include "util/error.h"

namespace wearscope::serve {

namespace {

/// Walks `store` in feed-merge order (timestamp order, MME before proxy on
/// ties — FeedReplayer's order), calling `on_mme` / `on_proxy` for each of
/// the first `records` events.  `on_proxy` receives the record's position
/// in the proxy stream, which is the seq the router would have stamped.
template <typename OnMme, typename OnProxy>
void walk_merge_order(const trace::TraceStore& store, std::uint64_t records,
                      OnMme&& on_mme, OnProxy&& on_proxy) {
  const std::vector<trace::ProxyRecord>& proxy = store.proxy;
  const std::vector<trace::MmeRecord>& mme = store.mme;
  std::size_t pi = 0;
  std::size_t mi = 0;
  std::uint64_t taken = 0;
  while (taken < records && (pi < proxy.size() || mi < mme.size())) {
    const bool take_mme =
        mi < mme.size() &&
        (pi >= proxy.size() || mme[mi].timestamp <= proxy[pi].timestamp);
    if (take_mme) {
      on_mme(mme[mi]);
      ++mi;
    } else {
      on_proxy(proxy[pi], static_cast<std::uint64_t>(pi));
      ++pi;
    }
    ++taken;
  }
  util::require(taken == records,
                "prefix cut asks for more records than the store holds");
}

}  // namespace

trace::TraceStore prefix_store(const trace::TraceStore& store,
                               std::uint64_t records) {
  util::require(store.is_sorted(),
                "prefix_store: store must be time-sorted (sort_by_time)");
  trace::TraceStore prefix;
  prefix.devices = store.devices;
  prefix.sectors = store.sectors;
  walk_merge_order(
      store, records,
      [&](const trace::MmeRecord& record) { prefix.mme.push_back(record); },
      [&](const trace::ProxyRecord& record, std::uint64_t) {
        prefix.proxy.push_back(record);
      });
  return prefix;
}

live::LiveSnapshot reference_snapshot(const trace::TraceStore& store,
                                      const live::LiveOptions& options,
                                      std::uint64_t epoch,
                                      const trace::QuarantineStats& quarantine,
                                      std::uint64_t records) {
  util::require(store.is_sorted(),
                "reference_snapshot: store must be time-sorted");
  const std::uint64_t total = store.proxy.size() + store.mme.size();
  const std::uint64_t cut = records == kAllRecords ? total : records;
  util::require(cut <= total,
                "reference_snapshot: prefix cut exceeds the capture");
  // The exact construction path LiveEngine takes, minus the threads.
  const appdb::AppCatalog catalog(options.long_tail_apps);
  const core::DeviceClassifier devices(store.devices);
  const core::AppSignatureTable signatures(catalog,
                                           options.signature_coverage);
  live::ShardStats stats(devices, signatures, options.observation_days,
                         options.detailed_start_day, options.usage_gap_s);
  walk_merge_order(
      store, cut,
      [&](const trace::MmeRecord& record) { stats.on_mme(record); },
      [&](const trace::ProxyRecord& record, std::uint64_t seq) {
        stats.on_proxy(record, seq);
      });
  live::SnapshotCoordinator coordinator(1, signatures);
  coordinator.deposit(epoch, stats.snapshot(0));
  live::LiveSnapshot snap = coordinator.wait_for(epoch);
  snap.quarantine = quarantine;
  return snap;
}

std::vector<VerifyMismatch> verify_responses(
    const live::LiveSnapshot& served, const trace::TraceStore& store,
    const live::LiveOptions& options,
    const trace::QuarantineStats& expected_quarantine, std::size_t top_k) {
  std::vector<VerifyMismatch> mismatches;
  const auto compare = [&](std::string query, std::string serve_line,
                           std::string batch_line) {
    if (serve_line != batch_line) {
      mismatches.push_back(VerifyMismatch{std::move(query),
                                          std::move(serve_line),
                                          std::move(batch_line)});
    }
  };

  // Batch ground truth: the figures wearscope_analyze computes.
  core::AnalysisOptions aopt;
  aopt.observation_days = options.observation_days;
  aopt.detailed_start_day = options.detailed_start_day;
  aopt.usage_gap_s = options.usage_gap_s;
  aopt.signature_coverage = options.signature_coverage;
  aopt.long_tail_apps = options.long_tail_apps;
  const core::Pipeline pipeline(store, aopt);
  const core::StudyReport batch = pipeline.run();

  compare("adoption",
          render_adoption(served.epoch, served.records, served.adoption),
          render_adoption(served.epoch, served.records, batch.adoption));
  // class_txns has no batch-report counterpart; the sequential reference
  // below covers it, so the batch comparison reuses the served tally and
  // pins the ActivityResult fields.
  compare("activity",
          render_activity(served.epoch, served.records, served.activity,
                          served.class_txns),
          render_activity(served.epoch, served.records, batch.activity,
                          served.class_txns));

  // Sequential same-machinery reference: pins the live-only tallies
  // (per-app counters, per-sector activity, class mix).
  const live::LiveSnapshot reference =
      reference_snapshot(store, options, served.epoch);
  compare("activity(class mix)",
          render_activity(served.epoch, served.records, served.activity,
                          served.class_txns),
          render_activity(served.epoch, served.records, served.activity,
                          reference.class_txns));
  compare("top-apps",
          render_top_apps(served.epoch, top_k, served.apps),
          render_top_apps(served.epoch, top_k, reference.apps));
  compare("sectors",
          render_sectors(served.epoch, top_k, served.sectors),
          render_sectors(served.epoch, top_k, reference.sectors));
  compare("quarantine",
          render_quarantine(served.epoch, served.quarantine),
          render_quarantine(served.epoch, expected_quarantine));
  return mismatches;
}

}  // namespace wearscope::serve
