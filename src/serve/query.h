// The serve query grammar and its deterministic renderers.
//
// The protocol is newline-delimited: one query per input line, exactly one
// response line per query.  Responses start with "OK <verb>" or
// "ERR <message>".  The grammar (tokens separated by spaces/tabs):
//
//   adoption [@EPOCH]            adoption headline + normalized daily curve
//   activity [@EPOCH]            Fig. 3 activity statistics
//   top-apps [K] [@EPOCH]        top K apps by wearable transactions
//   sectors [K] [@EPOCH]         top K antenna sectors by MME events
//   quarantine [@EPOCH]          feed/sanitizer quarantine counters
//   epochs                       retained epoch numbers, oldest first
//   stats                        serving counters (answered, errors, ...)
//   help                         one-line grammar summary
//
// "@EPOCH" (e.g. "@12") selects a retained historical epoch; omitted means
// the latest published snapshot.  K defaults to 10.
//
// Rendering is bitwise-deterministic: doubles are printed with "%.17g"
// (round-trip exact), every list is emitted from the snapshot's already
// canonically-sorted rows, and the same renderer is reused by the batch
// --verify path — so "serve output == batch output" is a plain string
// comparison.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "live/snapshot.h"
#include "trace/quarantine.h"

namespace wearscope::serve {

enum class QueryKind : std::uint8_t {
  kAdoption,
  kActivity,
  kTopApps,
  kSectors,
  kQuarantine,
  kEpochs,
  kStats,
  kHelp,
};

/// One parsed query.
struct Query {
  QueryKind kind = QueryKind::kHelp;
  std::size_t top_k = 10;               ///< top-apps / sectors only.
  std::optional<std::uint64_t> epoch;   ///< Unset = latest snapshot.
};

/// Result of parsing one line: either a query or a diagnostic.
struct ParsedQuery {
  std::optional<Query> query;
  std::string error;  ///< Set when `query` is empty.
};

/// Parses one protocol line.  Blank lines and "# comment" lines parse to
/// an empty optional with an empty error (callers skip them silently).
[[nodiscard]] ParsedQuery parse_query(std::string_view line);

/// The one-line grammar summary the "help" query answers with.
[[nodiscard]] std::string render_help();

// ---------------------------------------------------------------------------
// Renderers.  Each takes the result structures rather than a snapshot so
// the batch verify path can feed core::Pipeline output through the exact
// same bytes; epoch/records label the stream cut the figures describe.
// ---------------------------------------------------------------------------

[[nodiscard]] std::string render_adoption(std::uint64_t epoch,
                                          std::uint64_t records,
                                          const core::AdoptionResult& a);

[[nodiscard]] std::string render_activity(
    std::uint64_t epoch, std::uint64_t records, const core::ActivityResult& a,
    const std::array<std::uint64_t, appdb::kTransactionClassCount>&
        class_txns);

[[nodiscard]] std::string render_top_apps(
    std::uint64_t epoch, std::size_t k,
    std::span<const live::LiveSnapshot::AppRow> apps);

[[nodiscard]] std::string render_sectors(
    std::uint64_t epoch, std::size_t k,
    std::span<const live::LiveSnapshot::SectorRow> sectors);

[[nodiscard]] std::string render_quarantine(std::uint64_t epoch,
                                            const trace::QuarantineStats& q);

/// Dispatches a snapshot query to the renderer above (kAdoption, kActivity,
/// kTopApps, kSectors or kQuarantine; anything else is a logic error).
[[nodiscard]] std::string render_snapshot_query(const Query& query,
                                                const live::LiveSnapshot& s);

}  // namespace wearscope::serve
