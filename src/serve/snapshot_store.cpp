#include "serve/snapshot_store.h"

#include <bit>

#include "util/error.h"
#include "util/sched_hook.h"

namespace wearscope::serve {

namespace {

/// splitmix64 — cheap, well-mixed fold step.
[[nodiscard]] std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h += 0x9e3779b97f4a7c15ULL + v;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

[[nodiscard]] std::uint64_t mix_double(std::uint64_t h, double v) {
  return mix(h, std::bit_cast<std::uint64_t>(v));
}

}  // namespace

std::uint64_t ServedSnapshot::fold(const live::LiveSnapshot& snap,
                                   std::uint64_t publish_seq,
                                   bool final_epoch) {
  std::uint64_t h = mix(publish_seq, final_epoch ? 1 : 0);
  h = mix(h, snap.epoch);
  h = mix(h, snap.records);
  h = mix_double(h, snap.adoption.total_growth);
  h = mix_double(h, snap.adoption.monthly_growth);
  h = mix_double(h, snap.adoption.ever_transacting_fraction);
  h = mix(h, snap.adoption.ever_registered);
  h = mix(h, snap.adoption.ever_transacted);
  h = mix(h, snap.adoption.daily_registered_norm.size());
  for (const double day : snap.adoption.daily_registered_norm)
    h = mix_double(h, day);
  h = mix_double(h, snap.activity.mean_active_days);
  h = mix_double(h, snap.activity.mean_active_hours);
  h = mix_double(h, snap.activity.median_txn_bytes);
  h = mix_double(h, snap.activity.frac_txn_under_10kb);
  for (const std::uint64_t txns : snap.class_txns) h = mix(h, txns);
  h = mix(h, snap.apps.size());
  // snap.apps/snap.sectors are LiveSnapshot's canonically-sorted vectors
  // (the member names merely collide with the shard tallies' hash maps);
  // the fold must follow exactly that published order.
  // wearscope-lint: allow(unordered-emit)
  for (const live::LiveSnapshot::AppRow& row : snap.apps) {
    h = mix(h, row.app);
    h = mix(h, row.counter.transactions);
    h = mix(h, row.counter.bytes);
    h = mix(h, row.counter.usages);
    h = mix(h, row.counter.distinct_users);
  }
  h = mix(h, snap.sectors.size());
  // wearscope-lint: allow(unordered-emit)
  for (const live::LiveSnapshot::SectorRow& row : snap.sectors) {
    h = mix(h, row.sector);
    h = mix(h, row.counter.events);
    h = mix(h, row.counter.attaches);
    h = mix(h, row.counter.handovers);
    h = mix(h, row.counter.wearable_events);
    h = mix(h, row.counter.distinct_users);
    h = mix(h, row.counter.wearable_users);
  }
  h = mix(h, snap.quarantine.total_dropped());
  h = mix(h, snap.quarantine.reordered);
  h = mix(h, snap.quarantine.transient_retries);
  return h;
}

SnapshotStore::SnapshotStore(std::size_t retain) : retain_(retain) {
  util::require(retain >= 1, "SnapshotStore: need a retention window >= 1");
}

SnapshotRef SnapshotStore::publish(live::LiveSnapshot snap,
                                   bool final_epoch) {
  util::sched::point(util::sched::Op::kStorePublish, this);
  auto served = std::make_shared<ServedSnapshot>();
  served->publish_seq = published_.load(std::memory_order_relaxed) + 1;
  served->final_epoch = final_epoch;
  served->snap = std::move(snap);
  served->checksum =
      ServedSnapshot::fold(served->snap, served->publish_seq,
                           served->final_epoch);
  {
    util::MutexLock lock(mutex_);
    window_.push_back(served);
    while (window_.size() > retain_) window_.pop_front();
  }
  // Choice point in the window-updated-but-not-yet-current gap: lets the
  // explorer schedule readers between retention maintenance and the swap.
  util::sched::point(util::sched::Op::kStorePublish, this);
  // The slot swap makes the fully-built snapshot visible to latest()
  // readers; the previous ref is dropped outside the lock so a last-ref
  // destructor never runs inside the readers' critical section.
  SnapshotRef retired;
  {
    util::SpinLockGuard lock(latest_lock_);
    retired = std::move(latest_);
    latest_ = served;
  }
  published_.fetch_add(1, std::memory_order_relaxed);
  return served;
}

SnapshotRef SnapshotStore::at_epoch(std::uint64_t epoch) const {
  util::sched::point(util::sched::Op::kStoreRead, this);
  util::MutexLock lock(mutex_);
  // Newest-first: dashboards overwhelmingly ask about recent epochs.
  for (auto it = window_.rbegin(); it != window_.rend(); ++it) {
    if ((*it)->snap.epoch == epoch) return *it;
  }
  return nullptr;
}

std::vector<std::uint64_t> SnapshotStore::retained_epochs() const {
  util::sched::point(util::sched::Op::kStoreRead, this);
  util::MutexLock lock(mutex_);
  std::vector<std::uint64_t> epochs;
  epochs.reserve(window_.size());
  for (const SnapshotRef& snap : window_) epochs.push_back(snap->snap.epoch);
  return epochs;
}

}  // namespace wearscope::serve
